#include "exec/thread_pool.h"

#include <stdexcept>

namespace mclat::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one worker");
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::stopped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

std::size_t ThreadPool::hardware_jobs() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();  // packaged_task: exceptions are captured into the future
  }
}

}  // namespace mclat::exec
