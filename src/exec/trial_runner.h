// trial_runner.h — fan R independent replications across a thread pool,
// deterministically.
//
// A "trial" is any callable (trial_index, seed) -> T. The runner hands
// trial i the seed exec::trial_seed(base_seed, i) and returns the results
// *in trial order*, so downstream merges (Welford combination, CI pooling)
// see exactly the same sequence whether the trials ran on 1 thread or 16,
// and whichever finished first. That is the whole determinism story:
//
//   seeds   : pure function of (base_seed, index)   — no shared RNG state
//   results : collected by index, not by completion — no scheduling leak
//   merges  : Welford::merge is performed serially in index order
//
// jobs == 1 bypasses the pool entirely (no threads spawned), which keeps
// the serial path byte-for-byte identical to the pre-parallel code and
// makes it the golden reference the tests in tests/exec/ compare against.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "exec/seed_stream.h"
#include "exec/thread_pool.h"
#include "obs/recorder.h"

namespace mclat::exec {

struct TrialOptions {
  std::size_t jobs = 1;        ///< worker threads (>= 1)
  std::uint64_t base_seed = 1; ///< root of every per-trial seed stream
  /// Execution observability (null = zero cost): per-trial wall time
  /// ("exec.trial_wall_us"), trial/job counts, and pool busy fraction.
  /// These measure *real* time and are exempt from the determinism
  /// guarantee — exporters must keep "exec.*" out of golden comparisons.
  obs::Recorder recorder;
};

class TrialRunner {
 public:
  explicit TrialRunner(TrialOptions opt) : opt_(opt) {
    if (opt_.jobs == 0) {
      throw std::invalid_argument("TrialRunner: jobs must be >= 1");
    }
  }

  /// Runs `trials` replications of `fn(trial_index, seed)` and returns the
  /// results in trial order. The first trial (by index) that threw has its
  /// exception rethrown here; later trials still run to completion.
  template <class F>
  [[nodiscard]] auto run(std::uint64_t trials, F&& fn) const
      -> std::vector<std::invoke_result_t<F&, std::uint64_t, std::uint64_t>> {
    using T = std::invoke_result_t<F&, std::uint64_t, std::uint64_t>;
    using Clock = std::chrono::steady_clock;
    std::vector<T> out;
    out.reserve(trials);
    if (trials == 0) return out;
    // Per-trial wall times are collected into an index-addressed slot each
    // (no shared accumulator → no data race under the pool) and folded into
    // the recorder serially, in trial order, after every future resolved.
    const bool timed = opt_.recorder.enabled();
    std::vector<double> wall_us(timed ? trials : 0, 0.0);
    const auto timed_fn = [&fn, &wall_us, timed](std::uint64_t i,
                                                 std::uint64_t seed) {
      if (!timed) return fn(i, seed);
      const auto t0 = Clock::now();
      auto r = fn(i, seed);
      wall_us[i] = std::chrono::duration<double, std::micro>(Clock::now() - t0)
                       .count();
      return r;
    };
    // The worker count the pool is actually sized to below — not the
    // requested opt_.jobs, which may exceed the trial count (or be moot on
    // the serial path). The gauge and the busy-fraction denominator must
    // report this effective figure, or a 2-trial run under --jobs 16 would
    // claim a 16-wide pool running at ≤ 12.5% busy.
    const std::size_t effective_jobs =
        opt_.jobs == 1 || trials == 1
            ? 1
            : std::min<std::size_t>(opt_.jobs,
                                    static_cast<std::size_t>(trials));
    const auto t_start = Clock::now();
    if (opt_.jobs == 1 || trials == 1) {
      for (std::uint64_t i = 0; i < trials; ++i) {
        out.push_back(timed_fn(i, trial_seed(opt_.base_seed, i)));
      }
    } else {
      ThreadPool pool(opt_.jobs < trials ? opt_.jobs
                                         : static_cast<std::size_t>(trials));
      std::vector<std::future<T>> futures;
      futures.reserve(trials);
      for (std::uint64_t i = 0; i < trials; ++i) {
        futures.push_back(
            pool.submit([&timed_fn, i, seed = trial_seed(opt_.base_seed, i)] {
              return timed_fn(i, seed);
            }));
      }
      for (auto& f : futures) out.push_back(f.get());
    }
    if (timed) {
      const double elapsed_us =
          std::chrono::duration<double, std::micro>(Clock::now() - t_start)
              .count();
      obs::LatencyStat* wall = opt_.recorder.latency("exec.trial_wall_us");
      double busy_us = 0.0;
      for (const double w : wall_us) {
        wall->add(w);
        busy_us += w;
      }
      opt_.recorder.counter("exec.trials")->add(trials);
      opt_.recorder.gauge("exec.jobs")->set(
          static_cast<double>(effective_jobs));
      // Mean fraction of the pool's capacity that was actually running
      // trials: Σ trial wall time / (elapsed × effective workers).
      if (elapsed_us > 0.0) {
        opt_.recorder.gauge("exec.pool.busy_fraction")
            ->set(busy_us /
                  (elapsed_us * static_cast<double>(effective_jobs)));
      }
    }
    return out;
  }

  [[nodiscard]] const TrialOptions& options() const noexcept { return opt_; }

 private:
  TrialOptions opt_;
};

}  // namespace mclat::exec
