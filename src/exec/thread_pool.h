// thread_pool.h — a fixed-size worker pool for embarrassingly parallel
// replications.
//
// Deliberately minimal: a locked queue of type-erased jobs, N workers, and
// future-based result/exception propagation via std::packaged_task. There
// is no work stealing and no priorities — trial workloads here are seconds
// long, so queue contention is irrelevant and simplicity wins. Determinism
// of results is *not* the pool's job: callers derive all randomness from
// exec::trial_seed and merge results by trial index, so scheduling order
// cannot leak into any statistic.
//
// Shutdown semantics: shutdown() (or the destructor) drains every job that
// was already submitted, then joins the workers. Submitting after shutdown
// throws — a caller doing that has a lifecycle bug worth surfacing loudly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mclat::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; throws std::invalid_argument on 0).
  explicit ThreadPool(std::size_t threads = hardware_jobs());

  /// Drains outstanding jobs and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `f` and returns a future for its result. Exceptions thrown
  /// by `f` are captured and rethrown from future::get(). Throws
  /// std::runtime_error if the pool has been shut down.
  template <class F>
  [[nodiscard]] auto submit(F&& f)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Idempotent: finishes all submitted jobs, then joins the workers.
  void shutdown();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True once shutdown() has begun; further submits throw.
  [[nodiscard]] bool stopped() const;

  /// Reasonable default worker count: hardware_concurrency, floor 1.
  [[nodiscard]] static std::size_t hardware_jobs() noexcept;

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace mclat::exec
