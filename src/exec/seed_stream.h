// seed_stream.h — deterministic seed derivation for parallel replications.
//
// Every experiment in this repository must produce bit-identical results
// regardless of how many worker threads execute it and in which order the
// trials complete. The only way to get that is to make every random stream
// a pure function of (base seed, logical position) — never of thread id,
// completion order, or a shared generator that trials would race on.
//
// Two levels of derivation:
//
//   trial_seed(base, i)    the root seed of replication i — splitmix64 of
//                          base ^ i, so consecutive trial indices map to
//                          decorrelated 64-bit seeds;
//   stream_seed(seed, s)   a named sub-stream of one trial (the queueing
//                          simulation, the request-assembly resampler, ...).
//                          Distinct Stream tags land in distinct splitmix64
//                          orbits, so the old-style "seed ^ 0xfeed" tricks
//                          — which could collide with a sibling stream —
//                          are retired.
//
// splitmix64 is the finalizer of Steele, Lea & Flood's SplittableRandom
// (OOPSLA'14); it is a bijection on 64-bit words with full avalanche, which
// makes it the standard choice for turning structured integers (indices,
// tag sums) into seeds.
#pragma once

#include <cstdint>

namespace mclat::exec {

/// splitmix64 finalizer: bijective, full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Root seed of replication `trial_index` under `base_seed`. A pure
/// function of its arguments: thread count and scheduling cannot affect it.
[[nodiscard]] constexpr std::uint64_t trial_seed(
    std::uint64_t base_seed, std::uint64_t trial_index) noexcept {
  return splitmix64(base_seed ^ trial_index);
}

/// Named random sub-streams within one trial. Values are spread out so the
/// additive derivation below never maps two tags to the same input word.
enum class Stream : std::uint64_t {
  simulation = 0x1001,  ///< queueing-network event streams
  assembly = 0x2002,    ///< request-assembly resampling
  workload = 0x3003,    ///< trace/keyspace generation
};

/// Seed of a named sub-stream of a trial. Guarantees the simulation and
/// assembly RNGs of one trial can never collide (distinct tags → distinct
/// splitmix64 inputs → distinct outputs, splitmix64 being a bijection).
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t seed,
                                                  Stream stream) noexcept {
  return splitmix64(seed + 0x632BE59BD9B4E019ull *
                               static_cast<std::uint64_t>(stream));
}

}  // namespace mclat::exec
