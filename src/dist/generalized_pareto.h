// generalized_pareto.h — the paper's inter-arrival model (eq. 24).
//
// Atikoglu et al. (SIGMETRICS'12) found that key inter-arrival gaps at a
// Facebook Memcached server follow a Generalized Pareto distribution; the
// ICDCS'17 paper parameterises it by a burst degree ξ and an arrival rate λ:
//
//     T_X(t) = 1 - (1 + ξ λ' t / (1-ξ))^{-1/ξ},   mean = 1/λ'.
//
// This is a GP with location 0, shape ξ ∈ [0, 1) and scale σ = (1-ξ)/λ'.
// ξ = 0 degenerates to Exponential(λ') (the Poisson case); larger ξ gives a
// heavier tail, i.e. burstier arrivals. Moments: the mean is finite for
// ξ < 1 and the variance for ξ < 1/2 — the model only needs the mean, so the
// full ξ range the paper sweeps (up to 0.95) is supported.
#pragma once

#include "dist/distribution.h"

namespace mclat::dist {

class GeneralizedPareto final : public ContinuousDistribution {
 public:
  /// shape ξ ∈ [0, 1), scale σ > 0 (location fixed at 0).
  GeneralizedPareto(double shape, double scale);

  /// Paper parameterisation: burst degree ξ and mean gap 1/rate, i.e.
  /// σ = (1-ξ)/rate so that E[T_X] = 1/rate. This is eq. (24) with λ' = rate.
  [[nodiscard]] static GeneralizedPareto with_rate(double shape, double rate);

  /// Same, from the mean gap directly.
  [[nodiscard]] static GeneralizedPareto with_mean(double shape, double mean);

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;  // +inf for ξ >= 1/2
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DistributionPtr clone() const override;
  // laplace(): no closed form for ξ > 0 — inherits the numeric base
  // implementation (that is the whole reason mclat::math exists).

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace mclat::dist
