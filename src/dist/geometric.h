// geometric.h — the batch-size distribution X of the paper's GI^X/M/1 model.
//
// Concurrent key arrivals at a Memcached server are modelled as batches:
// with concurrency probability q, another key belongs to the same batch, so
//
//     P{X = n} = q^{n-1}(1 - q),  n = 1, 2, …   E[X] = 1/(1-q).
//
// The geometric batch size is what makes the batch-service transformation
// work: a geometric sum of iid Exponential(μ_S) service times is again
// exponential with rate (1-q)·μ_S, collapsing GI^X/M/1 to GI/M/1.
#pragma once

#include <cstdint>
#include <string>

#include "dist/rng.h"

namespace mclat::dist {

class GeometricBatch {
 public:
  /// q ∈ [0, 1): the probability that one more key arrives in the same batch.
  explicit GeometricBatch(double q);

  /// P{X = n} for n >= 1.
  [[nodiscard]] double pmf(std::uint64_t n) const;

  /// P{X <= n}.
  [[nodiscard]] double cdf(std::uint64_t n) const;

  /// E[X] = 1/(1-q).
  [[nodiscard]] double mean() const noexcept { return 1.0 / (1.0 - q_); }

  /// Var[X] = q/(1-q)².
  [[nodiscard]] double variance() const noexcept {
    return q_ / ((1.0 - q_) * (1.0 - q_));
  }

  /// Probability generating function E[z^X] = (1-q)z / (1 - qz) for |z| <= 1.
  [[nodiscard]] double pgf(double z) const;

  /// Draws a batch size (>= 1) by inversion.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] double q() const noexcept { return q_; }
  [[nodiscard]] std::string name() const;

 private:
  double q_;
};

}  // namespace mclat::dist
