#include "dist/deterministic.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::dist {

Deterministic::Deterministic(double value) : value_(value) {
  math::require(value >= 0.0, "Deterministic: value must be >= 0");
}

double Deterministic::pdf(double) const { return 0.0; }

double Deterministic::cdf(double t) const { return t >= value_ ? 1.0 : 0.0; }

double Deterministic::quantile(double p) const {
  math::require(p >= 0.0 && p < 1.0, "Deterministic::quantile: p in [0,1)");
  return value_;
}

double Deterministic::mean() const { return value_; }

double Deterministic::variance() const { return 0.0; }

double Deterministic::laplace(double s) const { return std::exp(-s * value_); }

double Deterministic::sample(Rng&) const { return value_; }

std::string Deterministic::name() const {
  return "Deterministic(" + std::to_string(value_) + ")";
}

DistributionPtr Deterministic::clone() const {
  return std::make_unique<Deterministic>(*this);
}

}  // namespace mclat::dist
