// mt64.h — a bit-identical reimplementation of std::mt19937_64.
//
// Same parameters, same seeding recurrence, same tempering, and therefore
// the same output stream as libstdc++'s std::mt19937_64 for every seed —
// verified draw-for-draw over tens of millions of outputs. The only
// difference is mechanical: libstdc++ regenerates the whole 312-word state
// lazily inside operator() through an out-of-line _M_gen_rand(), while this
// version keeps the refill loop local and the common path (temper one
// buffered word) inline. On the simulators' hot paths that is ~3x per draw
// (≈6 ns → ≈2 ns).
//
// Every golden file depends on this exact stream; treat any change here as a
// full golden regeneration.
#pragma once

#include <cstdint>

namespace mclat::dist {

/// Drop-in mt19937_64 engine (UniformRandomBitGenerator + identical stream).
class Mt64 {
 public:
  using result_type = std::uint64_t;

  static constexpr int kStateSize = 312;   // n
  static constexpr int kShiftSize = 156;   // m

  explicit Mt64(std::uint64_t seed = 5489ull) { this->seed(seed); }

  /// The standard MT19937-64 state initialisation (identical to
  /// std::mersenne_twister_engine::seed).
  void seed(std::uint64_t value) {
    x_[0] = value;
    for (int i = 1; i < kStateSize; ++i) {
      x_[i] = 6364136223846793005ull * (x_[i - 1] ^ (x_[i - 1] >> 62)) +
              static_cast<std::uint64_t>(i);
    }
    idx_ = kStateSize;  // force a refill on the first draw
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    if (idx_ >= kStateSize) refill();
    std::uint64_t y = x_[idx_++];
    y ^= (y >> 29) & 0x5555555555555555ull;
    y ^= (y << 17) & 0x71D67FFFEDA60000ull;
    y ^= (y << 37) & 0xFFF7EEE000000000ull;
    y ^= y >> 43;
    return y;
  }

 private:
  void refill() {
    constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ull;
    constexpr std::uint64_t kLowerMask = 0x7FFFFFFFull;
    constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ull;
    int k = 0;
    for (; k < kStateSize - kShiftSize; ++k) {
      const std::uint64_t y = (x_[k] & kUpperMask) | (x_[k + 1] & kLowerMask);
      x_[k] = x_[k + kShiftSize] ^ (y >> 1) ^ ((-(y & 1)) & kMatrixA);
    }
    for (; k < kStateSize - 1; ++k) {
      const std::uint64_t y = (x_[k] & kUpperMask) | (x_[k + 1] & kLowerMask);
      x_[k] =
          x_[k + (kShiftSize - kStateSize)] ^ (y >> 1) ^ ((-(y & 1)) & kMatrixA);
    }
    const std::uint64_t y =
        (x_[kStateSize - 1] & kUpperMask) | (x_[0] & kLowerMask);
    x_[kStateSize - 1] = x_[kShiftSize - 1] ^ (y >> 1) ^ ((-(y & 1)) & kMatrixA);
    idx_ = 0;
  }

  std::uint64_t x_[kStateSize];
  int idx_ = kStateSize;
};

}  // namespace mclat::dist
