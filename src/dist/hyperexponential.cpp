#include "dist/hyperexponential.h"

#include <cmath>
#include <numeric>

#include "math/numerics.h"

namespace mclat::dist {

HyperExponential::HyperExponential(std::vector<double> probs,
                                   std::vector<double> rates)
    : probs_(std::move(probs)), rates_(std::move(rates)) {
  math::require(!probs_.empty() && probs_.size() == rates_.size(),
                "HyperExponential: probs/rates size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    math::require(probs_[i] >= 0.0, "HyperExponential: negative probability");
    math::require(rates_[i] > 0.0, "HyperExponential: rate must be > 0");
    sum += probs_[i];
  }
  math::require(std::abs(sum - 1.0) < 1e-9,
                "HyperExponential: probabilities must sum to 1");
}

HyperExponential HyperExponential::fit_mean_scv(double mean, double scv) {
  math::require(mean > 0.0, "HyperExponential::fit_mean_scv: mean > 0");
  math::require(scv >= 1.0, "HyperExponential::fit_mean_scv: scv >= 1");
  if (scv == 1.0) {
    return HyperExponential({1.0}, {1.0 / mean});
  }
  // Balanced-means H₂: p1 = (1 + sqrt((scv-1)/(scv+1)))/2,
  // r1 = 2 p1 / mean, r2 = 2 (1-p1) / mean.
  const double w = std::sqrt((scv - 1.0) / (scv + 1.0));
  const double p1 = 0.5 * (1.0 + w);
  const double p2 = 1.0 - p1;
  return HyperExponential({p1, p2}, {2.0 * p1 / mean, 2.0 * p2 / mean});
}

double HyperExponential::pdf(double t) const {
  if (t < 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i] * rates_[i] * std::exp(-rates_[i] * t);
  }
  return acc;
}

double HyperExponential::cdf(double t) const {
  if (t < 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i] * -math::expm1_safe(-rates_[i] * t);
  }
  return acc;
}

double HyperExponential::mean() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) acc += probs_[i] / rates_[i];
  return acc;
}

double HyperExponential::variance() const {
  // E[T²] = Σ pᵢ · 2/rᵢ²
  double m2 = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    m2 += probs_[i] * 2.0 / (rates_[i] * rates_[i]);
  }
  const double m = mean();
  return m2 - m * m;
}

double HyperExponential::laplace(double s) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i] * rates_[i] / (rates_[i] + s);
  }
  return acc;
}

double HyperExponential::sample(Rng& rng) const {
  double u = rng.uniform();
  for (std::size_t i = 0; i + 1 < probs_.size(); ++i) {
    if (u < probs_[i]) return rng.exponential(rates_[i]);
    u -= probs_[i];
  }
  return rng.exponential(rates_.back());
}

std::string HyperExponential::name() const {
  return "HyperExponential(k=" + std::to_string(probs_.size()) + ")";
}

DistributionPtr HyperExponential::clone() const {
  return std::make_unique<HyperExponential>(*this);
}

}  // namespace mclat::dist
