#include "dist/empirical.h"

#include <algorithm>
#include <cmath>

#include "math/numerics.h"
#include "math/special.h"

namespace mclat::dist {

Empirical::Empirical(std::vector<double> sample) : sorted_(std::move(sample)) {
  math::require(!sorted_.empty(), "Empirical: sample must be nonempty");
  std::sort(sorted_.begin(), sorted_.end());
  double acc = 0.0;
  for (double x : sorted_) acc += x;
  mean_ = acc / static_cast<double>(sorted_.size());
  double sq = 0.0;
  for (double x : sorted_) sq += (x - mean_) * (x - mean_);
  var_ = sorted_.size() > 1 ? sq / static_cast<double>(sorted_.size() - 1) : 0.0;
}

double Empirical::cdf(double t) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), t);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Empirical::quantile(double p) const {
  math::require(p >= 0.0 && p <= 1.0, "Empirical::quantile: p in [0,1]");
  const std::size_t n = sorted_.size();
  if (n == 1) return sorted_[0];
  const double h = p * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted_[n - 1];
  const double frac = h - static_cast<double>(lo);
  return math::lerp(sorted_[lo], sorted_[lo + 1], frac);
}

double Empirical::mean_ci_halfwidth(double confidence) const {
  if (sorted_.size() < 2) return 0.0;
  const double n = static_cast<double>(sorted_.size());
  const double t = math::student_t_critical(n - 1.0, confidence);
  return t * std::sqrt(var_ / n);
}

}  // namespace mclat::dist
