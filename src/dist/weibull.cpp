#include "dist/weibull.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::dist {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  math::require(shape > 0.0, "Weibull: shape must be > 0");
  math::require(scale > 0.0, "Weibull: scale must be > 0");
}

Weibull Weibull::with_mean(double shape, double mean) {
  math::require(mean > 0.0, "Weibull::with_mean: mean must be > 0");
  const double g = std::tgamma(1.0 + 1.0 / shape);
  return Weibull(shape, mean / g);
}

double Weibull::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) return shape_ == 1.0 ? 1.0 / scale_ : (shape_ > 1.0 ? 0.0 : 0.0);
  const double z = t / scale_;
  return shape_ / scale_ * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -math::expm1_safe(-std::pow(t / scale_, shape_));
}

double Weibull::quantile(double p) const {
  math::require(p >= 0.0 && p < 1.0, "Weibull::quantile: p in [0,1)");
  return scale_ * std::pow(-math::log1p_safe(-p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

double Weibull::sample(Rng& rng) const { return quantile(rng.uniform()); }

std::string Weibull::name() const {
  return "Weibull(shape=" + std::to_string(shape_) +
         ", scale=" + std::to_string(scale_) + ")";
}

DistributionPtr Weibull::clone() const {
  return std::make_unique<Weibull>(*this);
}

}  // namespace mclat::dist
