#include "dist/distribution.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/integration.h"
#include "math/numerics.h"
#include "math/roots.h"

namespace mclat::dist {

double ContinuousDistribution::quantile(double p) const {
  math::require(p >= 0.0 && p < 1.0,
                "ContinuousDistribution::quantile: p must be in [0,1)");
  if (p == 0.0) return 0.0;
  // Bracket: grow the upper end until cdf exceeds p, then invert with Brent.
  double hi = std::max(mean(), 1e-12);
  for (int i = 0; i < 200 && cdf(hi) < p; ++i) hi *= 2.0;
  const auto f = [&](double t) { return cdf(t) - p; };
  const auto r = math::brent(f, 0.0, hi, {.x_tol = 1e-13, .f_tol = 1e-13});
  return r.x;
}

double ContinuousDistribution::laplace(double s) const {
  math::require(s >= 0.0, "ContinuousDistribution::laplace: s must be >= 0");
  if (s == 0.0) return 1.0;
  // E[e^{-sT}] = ∫₀^∞ e^{-st} pdf(t) dt. The integrand decays exponentially
  // in t even for heavy-tailed pdfs, so panel integration converges.
  const auto integrand = [&](double t) { return std::exp(-s * t) * pdf(t); };
  // 1e-10 relative keeps the δ-root accurate to ~1e-9 (tests pin 1e-7)
  // while costing several-fold fewer integrand evaluations than machine
  // precision would.
  return math::integrate_semi_infinite(integrand, 0.0,
                                       {.abs_tol = 1e-14, .rel_tol = 1e-10});
}

double ContinuousDistribution::sample(Rng& rng) const {
  return quantile(rng.uniform());
}

double ContinuousDistribution::scv() const {
  const double m = mean();
  const double v = variance();
  if (!(m > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  return v / (m * m);
}

}  // namespace mclat::dist
