// uniform.h — Uniform(a, b) on 0 <= a < b. A convenient low-variance,
// bounded arrival/service pattern for tests and pattern ablations; its
// Laplace transform (e^{-sa} - e^{-sb})/(s(b-a)) is closed-form.
#pragma once

#include "dist/distribution.h"

namespace mclat::dist {

class Uniform final : public ContinuousDistribution {
 public:
  Uniform(double a, double b);

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double laplace(double s) const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DistributionPtr clone() const override;

  [[nodiscard]] double lower() const noexcept { return a_; }
  [[nodiscard]] double upper() const noexcept { return b_; }

 private:
  double a_;
  double b_;
};

}  // namespace mclat::dist
