#include "dist/generalized_pareto.h"

#include <cmath>
#include <limits>

#include "math/numerics.h"

namespace mclat::dist {

GeneralizedPareto::GeneralizedPareto(double shape, double scale)
    : shape_(shape), scale_(scale) {
  math::require(shape >= 0.0 && shape < 1.0,
                "GeneralizedPareto: shape must be in [0,1)");
  math::require(scale > 0.0, "GeneralizedPareto: scale must be > 0");
}

GeneralizedPareto GeneralizedPareto::with_rate(double shape, double rate) {
  math::require(rate > 0.0, "GeneralizedPareto::with_rate: rate must be > 0");
  return GeneralizedPareto(shape, (1.0 - shape) / rate);
}

GeneralizedPareto GeneralizedPareto::with_mean(double shape, double mean) {
  math::require(mean > 0.0, "GeneralizedPareto::with_mean: mean must be > 0");
  return GeneralizedPareto(shape, (1.0 - shape) * mean);
}

double GeneralizedPareto::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (shape_ == 0.0) return std::exp(-t / scale_) / scale_;
  // f(t) = (1/σ)(1 + ξt/σ)^{-(1/ξ + 1)}
  return math::pow1p(shape_ * t / scale_, -(1.0 / shape_ + 1.0)) / scale_;
}

double GeneralizedPareto::cdf(double t) const {
  if (t < 0.0) return 0.0;
  if (shape_ == 0.0) return -math::expm1_safe(-t / scale_);
  return 1.0 - math::pow1p(shape_ * t / scale_, -1.0 / shape_);
}

double GeneralizedPareto::quantile(double p) const {
  math::require(p >= 0.0 && p < 1.0, "GeneralizedPareto::quantile: p in [0,1)");
  if (shape_ == 0.0) return -scale_ * math::log1p_safe(-p);
  // t = (σ/ξ)((1-p)^{-ξ} - 1)
  return scale_ / shape_ * math::expm1_safe(-shape_ * math::log1p_safe(-p));
}

double GeneralizedPareto::mean() const { return scale_ / (1.0 - shape_); }

double GeneralizedPareto::variance() const {
  if (shape_ >= 0.5) return std::numeric_limits<double>::infinity();
  const double d = 1.0 - shape_;
  return scale_ * scale_ / (d * d * (1.0 - 2.0 * shape_));
}

double GeneralizedPareto::sample(Rng& rng) const {
  return quantile(rng.uniform());
}

std::string GeneralizedPareto::name() const {
  return "GeneralizedPareto(shape=" + std::to_string(shape_) +
         ", scale=" + std::to_string(scale_) + ")";
}

DistributionPtr GeneralizedPareto::clone() const {
  return std::make_unique<GeneralizedPareto>(*this);
}

}  // namespace mclat::dist
