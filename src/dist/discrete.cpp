#include "dist/discrete.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/numerics.h"

namespace mclat::dist {

Discrete::Discrete(std::vector<double> weights) {
  math::require(!weights.empty(), "Discrete: weights must be nonempty");
  double sum = 0.0;
  for (double w : weights) {
    math::require(w >= 0.0 && std::isfinite(w),
                  "Discrete: weights must be finite and nonnegative");
    sum += w;
  }
  math::require(sum > 0.0, "Discrete: weights must have a positive sum");
  const std::size_t n = weights.size();
  prob_.resize(n);
  for (std::size_t i = 0; i < n; ++i) prob_[i] = weights[i] / sum;

  // Vose's alias method: split scaled probabilities into "small" (< 1) and
  // "large" (>= 1) worklists, pair each small cell with a large donor. The
  // pairing order (and therefore the exact u → category partition) is pinned
  // by the golden files — change it only with a full golden regeneration.
  cells_.assign(n, Cell{1.0, 0});
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = prob_[i] * static_cast<double>(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    cells_[s] = Cell{scaled[s], l};
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are 1.0 within rounding.
  for (const std::uint32_t i : large) cells_[i].accept = 1.0;
  for (const std::uint32_t i : small) cells_[i].accept = 1.0;
}

Discrete Discrete::uniform(std::size_t n) {
  return Discrete(std::vector<double>(n, 1.0));
}

double Discrete::pmf(std::size_t j) const {
  math::require(j < prob_.size(), "Discrete::pmf: index out of range");
  return prob_[j];
}

std::size_t Discrete::argmax() const {
  return static_cast<std::size_t>(
      std::max_element(prob_.begin(), prob_.end()) - prob_.begin());
}

std::string Discrete::name() const {
  return "Discrete(k=" + std::to_string(prob_.size()) + ")";
}

std::vector<double> skewed_load(std::size_t m, double p1) {
  math::require(m >= 1, "skewed_load: need at least one server");
  math::require(p1 >= 1.0 / static_cast<double>(m) && p1 < 1.0,
                "skewed_load: p1 must be in [1/m, 1)");
  std::vector<double> p(m, m > 1 ? (1.0 - p1) / static_cast<double>(m - 1) : 0.0);
  p[0] = p1;
  return p;
}

}  // namespace mclat::dist
