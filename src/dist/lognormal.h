// lognormal.h — LogNormal(μ, σ) on the log scale. A realistic model of
// value-size-dependent service times in key-value stores; used as a service
// pattern in extended experiments and as a numeric-Laplace stress case.
#pragma once

#include "dist/distribution.h"

namespace mclat::dist {

class LogNormal final : public ContinuousDistribution {
 public:
  /// mu_log / sigma_log are the mean/stddev of ln T; sigma_log > 0.
  LogNormal(double mu_log, double sigma_log);

  /// Moment-matched construction from the linear-scale mean and SCV > 0.
  [[nodiscard]] static LogNormal fit_mean_scv(double mean, double scv);

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DistributionPtr clone() const override;

  [[nodiscard]] double mu_log() const noexcept { return mu_; }
  [[nodiscard]] double sigma_log() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace mclat::dist
