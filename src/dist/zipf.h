// zipf.h — Zipf(s) key-popularity distribution over {0, …, n-1}.
//
// Key accesses in the Facebook trace are heavily skewed ("a small percentage
// of values are accessed quite frequently"); Zipf is the standard model for
// that skew and is what creates both the cache hit-rate curve (real-cache
// mode) and, combined with hashing, the unbalanced load {p_j}.
//
// Sampling uses Hörmann & Derflinger's rejection-inversion method, which is
// O(1) per draw with no per-key tables, so key spaces of 10⁸+ keys cost no
// memory. pmf/cdf use a lazily computed generalized harmonic number.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "dist/rng.h"

namespace mclat::dist {

class Zipf {
 public:
  /// n >= 1 items, exponent s > 0 (s = 1 is the classic Zipf law).
  Zipf(std::uint64_t n, double s);

  // Copies transfer whatever harmonic value the source has already cached
  // (the cache lives in a std::atomic, which is not copyable by default).
  Zipf(const Zipf& other) noexcept
      : n_(other.n_),
        s_(other.s_),
        h_integral_x1_(other.h_integral_x1_),
        h_integral_n_(other.h_integral_n_),
        s_over_points_(other.s_over_points_),
        harmonic_cache_(
            other.harmonic_cache_.load(std::memory_order_relaxed)) {}
  Zipf& operator=(const Zipf& other) noexcept {
    n_ = other.n_;
    s_ = other.s_;
    h_integral_x1_ = other.h_integral_x1_;
    h_integral_n_ = other.h_integral_n_;
    s_over_points_ = other.s_over_points_;
    harmonic_cache_.store(other.harmonic_cache_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    return *this;
  }

  /// P{K = k} for rank k ∈ [0, n) (rank 0 is the most popular key).
  [[nodiscard]] double pmf(std::uint64_t k) const;

  /// Expected fraction of accesses hitting the `m` most popular keys.
  [[nodiscard]] double head_mass(std::uint64_t m) const;

  /// Draws a rank in [0, n) by rejection-inversion (O(1) expected).
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double exponent() const noexcept { return s_; }
  [[nodiscard]] std::string name() const;

 private:
  // H(x) = ∫ x^{-s} dx antiderivative used by rejection-inversion.
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;
  /// Generalized harmonic number H_{n,s} = Σ_{k=1..n} k^{-s}.
  [[nodiscard]] double harmonic(std::uint64_t n) const;
  /// H_{n_,s}, computed lazily (it is O(n), far too slow to do eagerly for
  /// the 10⁸-key spaces sample() supports) and cached in an atomic so one
  /// Zipf shared across exec trial threads stays race-free: concurrent
  /// first callers recompute the same deterministic value and the relaxed
  /// store publishes it without tearing.
  [[nodiscard]] double harmonic_n() const;

  std::uint64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_over_points_;  // threshold used by the acceptance test
  mutable std::atomic<double> harmonic_cache_{-1.0};
};

}  // namespace mclat::dist
