// hyperexponential.h — probabilistic mixture of exponentials (H_k).
//
// The bursty-but-light-tailed counterpart to the Generalized Pareto: SCV > 1
// with a closed-form Laplace transform, which makes it (a) an independent
// cross-check for the numeric transform machinery and (b) the second arrival
// pattern in the burstiness ablation (A3 in DESIGN.md).
#pragma once

#include <vector>

#include "dist/distribution.h"

namespace mclat::dist {

class HyperExponential final : public ContinuousDistribution {
 public:
  /// Mixture with P{phase i} = probs[i] and Exponential(rates[i]) in phase i.
  /// probs must sum to 1 (±1e-9) and match rates in length.
  HyperExponential(std::vector<double> probs, std::vector<double> rates);

  /// Two-phase H₂ with prescribed mean and SCV >= 1, using balanced means
  /// (p₁/r₁ = p₂/r₂) — the standard moment-matching construction.
  [[nodiscard]] static HyperExponential fit_mean_scv(double mean, double scv);

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double laplace(double s) const override;  // Σ pᵢ rᵢ/(rᵢ+s)
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DistributionPtr clone() const override;

  [[nodiscard]] const std::vector<double>& probs() const noexcept {
    return probs_;
  }
  [[nodiscard]] const std::vector<double>& rates() const noexcept {
    return rates_;
  }

 private:
  std::vector<double> probs_;
  std::vector<double> rates_;
};

}  // namespace mclat::dist
