// exponential.h — the memoryless distribution. Service times at Memcached
// servers and at the backend database are exponential in the paper's model
// (M in GI^X/M/1 and M/M/1); exponential inter-arrivals make the arrival
// side Poisson (the paper's ξ = 0 case).
#pragma once

#include "dist/distribution.h"

namespace mclat::dist {

class Exponential final : public ContinuousDistribution {
 public:
  /// rate > 0; mean is 1/rate.
  explicit Exponential(double rate);

  /// Convenience factory from a mean.
  [[nodiscard]] static Exponential with_mean(double mean) {
    return Exponential(1.0 / mean);
  }

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double laplace(double s) const override;  // rate/(rate+s)
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DistributionPtr clone() const override;

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

}  // namespace mclat::dist
