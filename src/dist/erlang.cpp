#include "dist/erlang.h"

#include <cmath>

#include "math/numerics.h"
#include "math/special.h"

namespace mclat::dist {

Erlang::Erlang(int k, double rate) : k_(k), rate_(rate) {
  math::require(k >= 1, "Erlang: k must be >= 1");
  math::require(rate > 0.0, "Erlang: rate must be > 0");
}

Erlang Erlang::with_mean(int k, double mean) {
  math::require(mean > 0.0, "Erlang::with_mean: mean must be > 0");
  return Erlang(k, static_cast<double>(k) / mean);
}

double Erlang::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) return k_ == 1 ? rate_ : 0.0;
  // f(t) = r^k t^{k-1} e^{-rt} / (k-1)!  — evaluated in log space.
  const double lp = k_ * std::log(rate_) + (k_ - 1) * std::log(t) -
                    rate_ * t - std::lgamma(static_cast<double>(k_));
  return std::exp(lp);
}

double Erlang::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return math::gamma_p(static_cast<double>(k_), rate_ * t);
}

double Erlang::mean() const { return k_ / rate_; }

double Erlang::variance() const { return k_ / (rate_ * rate_); }

double Erlang::laplace(double s) const {
  return std::pow(rate_ / (rate_ + s), static_cast<double>(k_));
}

double Erlang::sample(Rng& rng) const {
  // Sum of k exponentials via product of uniforms (one log).
  double prod = 1.0;
  for (int i = 0; i < k_; ++i) prod *= rng.uniform_pos();
  return -std::log(prod) / rate_;
}

std::string Erlang::name() const {
  return "Erlang(k=" + std::to_string(k_) +
         ", rate=" + std::to_string(rate_) + ")";
}

DistributionPtr Erlang::clone() const {
  return std::make_unique<Erlang>(*this);
}

}  // namespace mclat::dist
