#include "dist/uniform.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::dist {

Uniform::Uniform(double a, double b) : a_(a), b_(b) {
  math::require(a >= 0.0 && a < b, "Uniform: need 0 <= a < b");
}

double Uniform::pdf(double t) const {
  return (t >= a_ && t <= b_) ? 1.0 / (b_ - a_) : 0.0;
}

double Uniform::cdf(double t) const {
  if (t < a_) return 0.0;
  if (t >= b_) return 1.0;
  return (t - a_) / (b_ - a_);
}

double Uniform::quantile(double p) const {
  math::require(p >= 0.0 && p < 1.0, "Uniform::quantile: p in [0,1)");
  return a_ + p * (b_ - a_);
}

double Uniform::mean() const { return 0.5 * (a_ + b_); }

double Uniform::variance() const { return math::sq(b_ - a_) / 12.0; }

double Uniform::laplace(double s) const {
  if (s == 0.0) return 1.0;
  return (std::exp(-s * a_) - std::exp(-s * b_)) / (s * (b_ - a_));
}

double Uniform::sample(Rng& rng) const { return rng.uniform(a_, b_); }

std::string Uniform::name() const {
  return "Uniform(" + std::to_string(a_) + "," + std::to_string(b_) + ")";
}

DistributionPtr Uniform::clone() const {
  return std::make_unique<Uniform>(*this);
}

}  // namespace mclat::dist
