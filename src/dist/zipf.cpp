#include "dist/zipf.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::dist {

Zipf::Zipf(std::uint64_t n, double s) : n_(n), s_(s) {
  math::require(n >= 1, "Zipf: n must be >= 1");
  math::require(s > 0.0, "Zipf: exponent must be > 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n_) + 0.5);
  s_over_points_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double Zipf::h_integral(double x) const {
  // ∫ t^{-s} dt = log(t) for s = 1, t^{1-s}/(1-s) otherwise; written via
  // expm1/log1p to stay accurate as s → 1.
  const double log_x = std::log(x);
  // helper: (e^{a·log_x} - 1)/a with a = 1 - s, continuous at a = 0.
  const double a = 1.0 - s_;
  const double t = a * log_x;
  if (std::abs(t) > 1e-8) return std::expm1(t) / a;
  // series fallback (also covers a == 0 exactly): log_x·(1 + t/2 + t²/6)
  return log_x * (1.0 + 0.5 * t + t * t / 6.0);
}

double Zipf::h(double x) const { return std::exp(-s_ * std::log(x)); }

double Zipf::h_integral_inverse(double x) const {
  const double a = 1.0 - s_;
  double t = x * a;
  if (t < -1.0) t = -1.0;  // clamp against rounding below the pole
  double log_res;
  if (std::abs(t) > 1e-8) {
    log_res = std::log1p(t) / a;
  } else {
    log_res = x * (1.0 - 0.5 * x * a + x * x * a * a / 3.0);
  }
  return std::exp(log_res);
}

double Zipf::harmonic(std::uint64_t n) const {
  double acc = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    acc += std::exp(-s_ * std::log(static_cast<double>(k)));
  }
  return acc;
}

double Zipf::harmonic_n() const {
  double h = harmonic_cache_.load(std::memory_order_relaxed);
  if (h < 0.0) {
    h = harmonic(n_);
    harmonic_cache_.store(h, std::memory_order_relaxed);
  }
  return h;
}

double Zipf::pmf(std::uint64_t k) const {
  math::require(k < n_, "Zipf::pmf: rank out of range");
  return std::exp(-s_ * std::log(static_cast<double>(k + 1))) / harmonic_n();
}

double Zipf::head_mass(std::uint64_t m) const {
  math::require(m <= n_, "Zipf::head_mass: m out of range");
  return harmonic(m) / harmonic_n();
}

std::uint64_t Zipf::sample(Rng& rng) const {
  // Hörmann & Derflinger (1996) rejection-inversion.
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_over_points_ ||
        u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;  // external ranks are 0-based
    }
  }
}

std::string Zipf::name() const {
  return "Zipf(n=" + std::to_string(n_) + ", s=" + std::to_string(s_) + ")";
}

}  // namespace mclat::dist
