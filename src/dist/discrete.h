// discrete.h — categorical distribution with O(1) sampling (Walker/Vose
// alias method).
//
// This is the {p_j} of the paper: the probability that a key lands on
// Memcached server S_j. The weighted key→server mapper in mclat::hashing and
// the Fig. 10 load-imbalance experiments both sample from it millions of
// times, so construction is O(n) and each draw consumes exactly one
// rng.uniform(): bucket = ⌊u·K⌋, coin = the fractional part — one comparison
// against the bucket's packed {accept, alias} cell, one cache line touched.
// The per-draw u → category mapping is pinned by the golden files; any
// change to it requires a full golden regeneration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/rng.h"

namespace mclat::dist {

class Discrete {
 public:
  /// Weights must be nonnegative with a positive sum; they are normalised
  /// internally.
  explicit Discrete(std::vector<double> weights);

  /// Uniform distribution over n categories.
  [[nodiscard]] static Discrete uniform(std::size_t n);

  /// P{J = j}.
  [[nodiscard]] double pmf(std::size_t j) const;

  /// Number of categories.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Index of the largest-probability category (the paper's p1 server).
  [[nodiscard]] std::size_t argmax() const;

  /// One alias-table bucket: the coin threshold and the donor category.
  /// Packed so a draw touches exactly one cell (one cache line) instead of
  /// parallel accept/alias arrays.
  struct Cell {
    double accept;        ///< coin < accept keeps the bucket's own category
    std::uint32_t alias;  ///< otherwise the paired donor category
  };

  /// Draws a category in O(1), consuming exactly one rng.uniform().
  [[nodiscard]] std::size_t sample(Rng& rng) const {
    return sample_at(rng.uniform());
  }

  /// The deterministic u → category map behind sample(): bucket = ⌊u·K⌋,
  /// coin = the fractional part, one compare against the bucket's cell.
  /// Exposed so property tests (and inverse-transform callers) can evaluate
  /// the exact partition sample() realises. u must be in [0, 1).
  [[nodiscard]] std::size_t sample_at(double u) const {
    const std::size_t n = cells_.size();
    const double scaled = u * static_cast<double>(n);
    std::size_t i = static_cast<std::size_t>(scaled);
    if (i >= n) i = n - 1;  // guard the scaled == n edge from rounding
    const double coin = scaled - static_cast<double>(i);
    const Cell& c = cells_[i];
    return coin < c.accept ? i : c.alias;
  }

  /// The normalised probability vector.
  [[nodiscard]] const std::vector<double>& probabilities() const noexcept {
    return prob_;
  }

  /// The alias table itself (bucket k covers u ∈ [k/K, (k+1)/K)); exposed
  /// for exact-partition validation in the property tests.
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept {
    return cells_;
  }

  [[nodiscard]] std::string name() const;

 private:
  std::vector<double> prob_;  // normalised weights
  std::vector<Cell> cells_;   // packed alias table, one cell per bucket
};

/// Builds the paper's Fig.-10 style skewed load vector: server 0 receives
/// fraction `p1` of the keys and the remaining (m-1) servers split the rest
/// evenly. Requires p1 ∈ [1/m, 1).
[[nodiscard]] std::vector<double> skewed_load(std::size_t m, double p1);

}  // namespace mclat::dist
