// discrete.h — categorical distribution with O(1) sampling (Walker/Vose
// alias method).
//
// This is the {p_j} of the paper: the probability that a key lands on
// Memcached server S_j. The weighted key→server mapper in mclat::hashing and
// the Fig. 10 load-imbalance experiments both sample from it millions of
// times, so construction is O(n) and each draw costs one uniform + one
// comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/rng.h"

namespace mclat::dist {

class Discrete {
 public:
  /// Weights must be nonnegative with a positive sum; they are normalised
  /// internally.
  explicit Discrete(std::vector<double> weights);

  /// Uniform distribution over n categories.
  [[nodiscard]] static Discrete uniform(std::size_t n);

  /// P{J = j}.
  [[nodiscard]] double pmf(std::size_t j) const;

  /// Number of categories.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Index of the largest-probability category (the paper's p1 server).
  [[nodiscard]] std::size_t argmax() const;

  /// Draws a category in O(1).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// The normalised probability vector.
  [[nodiscard]] const std::vector<double>& probabilities() const noexcept {
    return prob_;
  }

  [[nodiscard]] std::string name() const;

 private:
  std::vector<double> prob_;    // normalised weights
  std::vector<double> accept_;  // alias-table acceptance thresholds
  std::vector<std::uint32_t> alias_;
};

/// Builds the paper's Fig.-10 style skewed load vector: server 0 receives
/// fraction `p1` of the keys and the remaining (m-1) servers split the rest
/// evenly. Requires p1 ∈ [1/m, 1).
[[nodiscard]] std::vector<double> skewed_load(std::size_t m, double p1);

}  // namespace mclat::dist
