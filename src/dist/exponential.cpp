#include "dist/exponential.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::dist {

Exponential::Exponential(double rate) : rate_(rate) {
  math::require(rate > 0.0, "Exponential: rate must be > 0");
}

double Exponential::pdf(double t) const {
  return t < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * t);
}

double Exponential::cdf(double t) const {
  return t < 0.0 ? 0.0 : -math::expm1_safe(-rate_ * t);
}

double Exponential::quantile(double p) const {
  math::require(p >= 0.0 && p < 1.0, "Exponential::quantile: p in [0,1)");
  return -math::log1p_safe(-p) / rate_;
}

double Exponential::mean() const { return 1.0 / rate_; }

double Exponential::variance() const { return 1.0 / (rate_ * rate_); }

double Exponential::laplace(double s) const { return rate_ / (rate_ + s); }

double Exponential::sample(Rng& rng) const { return rng.exponential(rate_); }

std::string Exponential::name() const {
  return "Exponential(rate=" + std::to_string(rate_) + ")";
}

DistributionPtr Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

}  // namespace mclat::dist
