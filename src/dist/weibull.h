// weibull.h — Weibull(k, σ). Covers both smoother-than-exponential (k > 1)
// and heavier-tailed (k < 1) regimes with closed-form CDF and quantile but a
// numeric Laplace transform — a good stress test for the δ-solver and a
// third pattern in the arrival ablation.
#pragma once

#include "dist/distribution.h"

namespace mclat::dist {

class Weibull final : public ContinuousDistribution {
 public:
  /// shape k > 0, scale σ > 0; cdf(t) = 1 - exp(-(t/σ)^k).
  Weibull(double shape, double scale);

  /// Weibull with prescribed shape and mean (scale solved from Γ(1+1/k)).
  [[nodiscard]] static Weibull with_mean(double shape, double mean);

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DistributionPtr clone() const override;

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace mclat::dist
