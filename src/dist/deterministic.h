// deterministic.h — a point mass at a fixed value.
//
// Models the constant network latency of Theorem 1 part (1) and serves as
// the zero-variance endpoint in arrival/service pattern sweeps. Note the CDF
// is a step, so pdf() returns 0 everywhere except an (unrepresentable)
// impulse; the Laplace transform e^{-sv} is exact and overridden.
#pragma once

#include "dist/distribution.h"

namespace mclat::dist {

class Deterministic final : public ContinuousDistribution {
 public:
  explicit Deterministic(double value);

  [[nodiscard]] double pdf(double t) const override;  // 0 a.e. (step CDF)
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double laplace(double s) const override;  // e^{-s·value}
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DistributionPtr clone() const override;

  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_;
};

}  // namespace mclat::dist
