// rng.h — the random number generator handed to every sampling routine.
//
// A thin, explicitly-seeded wrapper over an mt19937_64-compatible engine
// (dist::Mt64 — same stream as std::mt19937_64, leaner refill). Experiments
// in this repository must be reproducible run-to-run, so nothing in mclat
// ever touches std::random_device implicitly: you construct an Rng from a
// seed and pass it (by reference) to whatever needs randomness.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

#include "dist/mt64.h"

namespace mclat::dist {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [0, 1).
  ///
  /// Bit-identical to libstdc++'s std::generate_canonical<double, 53> over
  /// mt19937_64 — one engine draw scaled by 2^-64, with the same clamp for
  /// draws that round up to 1.0 — but without the library's runtime log2()
  /// and long-double bookkeeping (~6 ns/draw on the simulators' hot paths).
  /// Every golden file depends on this exact mapping; change it only with a
  /// full golden regeneration.
  [[nodiscard]] double uniform() {
    const double r = static_cast<double>(engine_()) * 0x1p-64;
    return r < 1.0 ? r : 0x1.fffffffffffffp-1;
  }

  /// Uniform double in (0, 1] — safe to feed into log().
  [[nodiscard]] double uniform_pos() { return 1.0 - uniform(); }

  /// Uniform double in [a, b).
  [[nodiscard]] double uniform(double a, double b) {
    return a + (b - a) * uniform();
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) {
    return -std::log(uniform_pos()) / rate;
  }

  /// Standard normal variate (Marsaglia polar via std::normal_distribution).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Derives an independent child generator; useful for giving each
  /// simulated component its own stream without correlated draws.
  [[nodiscard]] Rng split() {
    const std::uint64_t s = engine_() ^ 0xD1B54A32D192ED03ull;
    return Rng(s);
  }

  /// Access for std distributions (any URBG works; the stream is identical
  /// to std::mt19937_64's, so distribution output is unchanged).
  [[nodiscard]] Mt64& engine() noexcept { return engine_; }

 private:
  Mt64 engine_;
};

}  // namespace mclat::dist
