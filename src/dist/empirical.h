// empirical.h — the empirical distribution of a sample.
//
// Every "Experiment" column in the reproduced tables/figures is an ECDF of
// simulated latencies; this class owns the sorted sample and answers CDF,
// quantile and moment queries, mirroring the paper's use of measured
// quantiles (Fig. 4) and means with confidence intervals (Table 3).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mclat::dist {

class Empirical {
 public:
  /// Takes ownership of the sample; sorts it once. Throws on empty input.
  explicit Empirical(std::vector<double> sample);

  /// ECDF: fraction of samples <= t.
  [[nodiscard]] double cdf(double t) const;

  /// kth quantile using linear interpolation between order statistics
  /// (type-7, the numpy/R default). p ∈ [0, 1].
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept { return var_; }
  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// Half-width of the (normal-approximation) confidence interval for the
  /// mean at the given confidence level, e.g. 0.95.
  [[nodiscard]] double mean_ci_halfwidth(double confidence = 0.95) const;

  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double var_ = 0.0;
};

}  // namespace mclat::dist
