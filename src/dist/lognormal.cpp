#include "dist/lognormal.h"

#include <cmath>

#include "math/numerics.h"
#include "math/special.h"

namespace mclat::dist {

LogNormal::LogNormal(double mu_log, double sigma_log)
    : mu_(mu_log), sigma_(sigma_log) {
  math::require(sigma_log > 0.0, "LogNormal: sigma_log must be > 0");
}

LogNormal LogNormal::fit_mean_scv(double mean, double scv) {
  math::require(mean > 0.0 && scv > 0.0,
                "LogNormal::fit_mean_scv: mean, scv must be > 0");
  const double sigma2 = std::log1p(scv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormal(mu, std::sqrt(sigma2));
}

double LogNormal::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double z = (std::log(t) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (t * sigma_ * std::sqrt(2.0 * 3.14159265358979323846));
}

double LogNormal::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return math::normal_cdf((std::log(t) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  math::require(p >= 0.0 && p < 1.0, "LogNormal::quantile: p in [0,1)");
  if (p == 0.0) return 0.0;
  return std::exp(mu_ + sigma_ * math::normal_quantile(p));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return math::expm1_safe(s2) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

std::string LogNormal::name() const {
  return "LogNormal(mu=" + std::to_string(mu_) +
         ", sigma=" + std::to_string(sigma_) + ")";
}

DistributionPtr LogNormal::clone() const {
  return std::make_unique<LogNormal>(*this);
}

}  // namespace mclat::dist
