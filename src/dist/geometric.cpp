#include "dist/geometric.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::dist {

GeometricBatch::GeometricBatch(double q) : q_(q) {
  math::require(q >= 0.0 && q < 1.0, "GeometricBatch: q must be in [0,1)");
}

double GeometricBatch::pmf(std::uint64_t n) const {
  if (n == 0) return 0.0;
  return std::pow(q_, static_cast<double>(n - 1)) * (1.0 - q_);
}

double GeometricBatch::cdf(std::uint64_t n) const {
  if (n == 0) return 0.0;
  return 1.0 - std::pow(q_, static_cast<double>(n));
}

double GeometricBatch::pgf(double z) const {
  math::require(std::abs(z) <= 1.0, "GeometricBatch::pgf: need |z| <= 1");
  return (1.0 - q_) * z / (1.0 - q_ * z);
}

std::uint64_t GeometricBatch::sample(Rng& rng) const {
  if (q_ == 0.0) return 1;
  // Inversion: X = 1 + floor(ln U / ln q).
  const double u = rng.uniform_pos();
  return 1 + static_cast<std::uint64_t>(std::floor(std::log(u) / std::log(q_)));
}

std::string GeometricBatch::name() const {
  return "GeometricBatch(q=" + std::to_string(q_) + ")";
}

}  // namespace mclat::dist
