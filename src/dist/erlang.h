// erlang.h — Erlang-k distribution (sum of k iid exponentials).
//
// Used as a *smoother-than-Poisson* arrival pattern (SCV = 1/k < 1) in the
// ablation study on arrival-pattern sensitivity, and as a closed-form
// Laplace-transform test case for the δ-solver: for Erlang arrivals the
// GI/M/1 root equation becomes polynomial and can be checked independently.
#pragma once

#include "dist/distribution.h"

namespace mclat::dist {

class Erlang final : public ContinuousDistribution {
 public:
  /// k >= 1 phases, each with the given rate; mean = k/rate.
  Erlang(int k, double rate);

  /// Erlang-k with a prescribed overall mean.
  [[nodiscard]] static Erlang with_mean(int k, double mean);

  [[nodiscard]] double pdf(double t) const override;
  [[nodiscard]] double cdf(double t) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double laplace(double s) const override;  // (r/(r+s))^k
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DistributionPtr clone() const override;

  [[nodiscard]] int phases() const noexcept { return k_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  int k_;
  double rate_;
};

}  // namespace mclat::dist
