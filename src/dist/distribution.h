// distribution.h — the continuous distribution interface used throughout
// mclat, both analytically (CDF, quantile, Laplace transform for the
// GI^X/M/1 derivations) and generatively (sampling for the discrete-event
// simulator). One interface serves both sides so a single object
// parameterises theory and experiment identically.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "dist/rng.h"

namespace mclat::dist {

/// A continuous distribution with support on [0, ∞) (inter-arrival gaps and
/// service times are nonnegative by nature).
///
/// Concrete distributions override the closed forms they have; the base
/// class supplies robust numeric fallbacks for `quantile` (bracketed
/// inversion of the CDF), `laplace` (semi-infinite quadrature of
/// e^{-st}·pdf(t)) and `sample` (inverse-CDF). Every override must satisfy
/// the usual consistency laws — the property tests in
/// tests/dist/test_distribution_properties.cpp enforce them for each
/// registered distribution.
class ContinuousDistribution {
 public:
  virtual ~ContinuousDistribution() = default;

  /// Probability density at t (0 for t < 0).
  [[nodiscard]] virtual double pdf(double t) const = 0;

  /// P{T <= t}; must be nondecreasing with cdf(0⁻) = 0 and cdf(∞) = 1.
  [[nodiscard]] virtual double cdf(double t) const = 0;

  /// Inverse CDF. p ∈ [0, 1); default inverts cdf() numerically.
  [[nodiscard]] virtual double quantile(double p) const;

  /// E[T]. Must be finite for every distribution used as an inter-arrival or
  /// service time (the model requires finite rates).
  [[nodiscard]] virtual double mean() const = 0;

  /// Var[T]; may be +∞ (e.g. Generalized Pareto with shape ξ >= 0.5).
  [[nodiscard]] virtual double variance() const = 0;

  /// Laplace–Stieltjes transform L(s) = E[e^{-sT}] for s >= 0.
  /// Default integrates numerically; closed forms should override.
  [[nodiscard]] virtual double laplace(double s) const;

  /// Draws one variate. Default uses inverse-CDF sampling.
  [[nodiscard]] virtual double sample(Rng& rng) const;

  /// Human-readable identification, e.g. "Exponential(rate=80000)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (distributions are small value-like objects; cloning lets
  /// configs own their distribution polymorphically).
  [[nodiscard]] virtual std::unique_ptr<ContinuousDistribution> clone()
      const = 0;

  /// Squared coefficient of variation Var/Mean² — the standard burstiness
  /// summary for renewal processes.
  [[nodiscard]] double scv() const;

 protected:
  ContinuousDistribution() = default;
  ContinuousDistribution(const ContinuousDistribution&) = default;
  ContinuousDistribution& operator=(const ContinuousDistribution&) = default;
};

using DistributionPtr = std::unique_ptr<ContinuousDistribution>;

}  // namespace mclat::dist
