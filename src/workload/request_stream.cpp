#include "workload/request_stream.h"

#include "math/numerics.h"

namespace mclat::workload {

RequestStream::RequestStream(const RequestStreamConfig& cfg, dist::Rng rng)
    : cfg_(cfg), rng_(rng), keys_(cfg.keyspace_size, cfg.zipf_exponent) {
  math::require(cfg.request_rate > 0.0,
                "RequestStream: request_rate must be > 0");
  math::require(cfg.keys_per_request >= 1,
                "RequestStream: keys_per_request must be >= 1");
}

GeneratedRequest RequestStream::next() {
  now_ += rng_.exponential(cfg_.request_rate);
  GeneratedRequest req;
  req.time = now_;
  req.request_id = next_id_++;
  req.key_ranks.reserve(cfg_.keys_per_request);
  for (std::uint32_t i = 0; i < cfg_.keys_per_request; ++i) {
    req.key_ranks.push_back(keys_.sample_rank(rng_));
  }
  return req;
}

Trace RequestStream::generate_trace(std::uint64_t count) {
  Trace trace;
  for (std::uint64_t i = 0; i < count; ++i) {
    const GeneratedRequest req = next();
    for (const std::uint64_t rank : req.key_ranks) {
      trace.append(TraceRecord{req.time, rank, req.request_id});
    }
  }
  return trace;
}

}  // namespace mclat::workload
