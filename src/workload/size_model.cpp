#include "workload/size_model.h"

#include <algorithm>
#include <cmath>

#include "math/numerics.h"

namespace mclat::workload {

KeySizeModel::KeySizeModel(double mu, double sigma, double k,
                           std::uint32_t min_bytes, std::uint32_t max_bytes)
    : mu_(mu), sigma_(sigma), k_(k), min_bytes_(min_bytes),
      max_bytes_(max_bytes) {
  math::require(sigma > 0.0, "KeySizeModel: sigma must be > 0");
  math::require(min_bytes >= 1 && min_bytes <= max_bytes,
                "KeySizeModel: invalid byte bounds");
}

KeySizeModel KeySizeModel::facebook() {
  return KeySizeModel(30.7634, 8.20449, 0.078688);
}

double KeySizeModel::quantile(double p) const {
  math::require(p > 0.0 && p < 1.0, "KeySizeModel::quantile: p in (0,1)");
  // GEV quantile: μ + σ/k ((-ln p)^{-k} - 1), continuous k→0 (Gumbel).
  const double ln = -std::log(p);
  if (std::abs(k_) < 1e-12) return mu_ - sigma_ * std::log(ln);
  return mu_ + sigma_ / k_ * (std::pow(ln, -k_) - 1.0);
}

std::uint32_t KeySizeModel::sample(dist::Rng& rng) const {
  const double x = quantile(std::min(std::max(rng.uniform(), 1e-12), 1.0 - 1e-12));
  const double clamped = math::clamp(x, static_cast<double>(min_bytes_),
                                     static_cast<double>(max_bytes_));
  return static_cast<std::uint32_t>(std::lround(clamped));
}

ValueSizeModel::ValueSizeModel(double sigma, double k,
                               std::uint32_t min_bytes,
                               std::uint32_t max_bytes)
    : sigma_(sigma), k_(k), min_bytes_(min_bytes), max_bytes_(max_bytes) {
  math::require(sigma > 0.0, "ValueSizeModel: sigma must be > 0");
  math::require(k >= 0.0 && k < 1.0, "ValueSizeModel: k must be in [0,1)");
  math::require(min_bytes >= 1 && min_bytes <= max_bytes,
                "ValueSizeModel: invalid byte bounds");
}

ValueSizeModel ValueSizeModel::facebook() {
  return ValueSizeModel(214.476, 0.348238);
}

double ValueSizeModel::quantile(double p) const {
  math::require(p >= 0.0 && p < 1.0, "ValueSizeModel::quantile: p in [0,1)");
  if (k_ == 0.0) return -sigma_ * math::log1p_safe(-p);
  return sigma_ / k_ * math::expm1_safe(-k_ * math::log1p_safe(-p));
}

double ValueSizeModel::mean() const { return sigma_ / (1.0 - k_); }

std::uint32_t ValueSizeModel::sample(dist::Rng& rng) const {
  const double x = quantile(rng.uniform());
  const double clamped = math::clamp(x, static_cast<double>(min_bytes_),
                                     static_cast<double>(max_bytes_));
  return static_cast<std::uint32_t>(std::lround(clamped));
}

}  // namespace mclat::workload
