// arrival_spec.h — the per-server key arrival pattern.
//
// The paper characterises the stream of keys reaching one Memcached server
// by three numbers (Table 1 / §5.1):
//   λ — average *key* rate (keys/s),
//   q — concurrency probability: a batch has Geometric(q) keys, E[X]=1/(1-q),
//   ξ — burst degree of the Generalized-Pareto inter-batch gap (ξ=0 ⇒ Poisson).
//
// Because λ counts keys and batches carry 1/(1-q) keys on average, the batch
// rate is (1-q)·λ and the gap distribution has mean 1/((1-q)λ). (The paper's
// eq. 24 leaves this correction implicit; Table 1's λ = E[X]/E[T_X] forces
// it — see DESIGN.md.)
//
// The same spec drives both sides of the reproduction: the analytical model
// reads the Laplace transform of the gap; the simulator samples from it.
#pragma once

#include <string>

#include "dist/distribution.h"
#include "dist/geometric.h"

namespace mclat::workload {

/// Inter-batch gap pattern families for ablation A3.
enum class GapPattern {
  kGeneralizedPareto,  ///< the paper's model; burstiness via ξ
  kExponential,        ///< Poisson batches (equivalent to ξ = 0)
  kErlang,             ///< smoother than Poisson (SCV < 1)
  kHyperExponential,   ///< bursty but light-tailed (SCV > 1)
  kUniform,            ///< bounded, low variance
  kDeterministic,      ///< clockwork arrivals
  kWeibull,            ///< sub-exponential tail; shape from pattern_scv-ish knob
};

[[nodiscard]] std::string to_string(GapPattern p);

struct ArrivalSpec {
  double key_rate = 62'500.0;  ///< λ: keys/s at this server (Facebook: 62.5 Kps)
  double concurrency_q = 0.1;  ///< q ∈ [0,1)
  double burst_xi = 0.15;      ///< ξ ∈ [0,1); used by the GP pattern
  GapPattern pattern = GapPattern::kGeneralizedPareto;
  /// SCV target for Erlang/HyperExponential patterns (rounded to the nearest
  /// feasible phase count for Erlang). Ignored by the other patterns.
  double pattern_scv = 1.0;

  /// Batch (block) arrival rate: (1-q)·λ.
  [[nodiscard]] double batch_rate() const noexcept {
    return (1.0 - concurrency_q) * key_rate;
  }

  /// Mean inter-batch gap E[T_X] = 1/((1-q)λ).
  [[nodiscard]] double mean_gap() const noexcept { return 1.0 / batch_rate(); }

  /// Builds the inter-batch gap distribution T_X.
  [[nodiscard]] dist::DistributionPtr make_gap() const;

  /// The batch-size law X ~ Geometric(q).
  [[nodiscard]] dist::GeometricBatch make_batch() const {
    return dist::GeometricBatch(concurrency_q);
  }

  /// Utilisation this stream imposes on a server with service rate mu:
  /// ρ = λ/μ (keys per second over keys served per second).
  [[nodiscard]] double utilization(double mu) const noexcept {
    return key_rate / mu;
  }

  /// Copy with a different key rate (sweeps reuse one base spec).
  [[nodiscard]] ArrivalSpec with_rate(double lambda) const {
    ArrivalSpec s = *this;
    s.key_rate = lambda;
    return s;
  }
  [[nodiscard]] ArrivalSpec with_burst(double xi) const {
    ArrivalSpec s = *this;
    s.burst_xi = xi;
    return s;
  }
  [[nodiscard]] ArrivalSpec with_concurrency(double q) const {
    ArrivalSpec s = *this;
    s.concurrency_q = q;
    return s;
  }
};

/// The §5.1 baseline: q=0.1, ξ=0.15, λ=62.5 Kps, Generalized Pareto gaps.
[[nodiscard]] ArrivalSpec facebook_arrivals();

}  // namespace mclat::workload
