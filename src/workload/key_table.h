// key_table.h — flat memoized keyspace metadata (the per-trial "mutilate
// table").
//
// Every per-key fact the cluster simulators need is a deterministic function
// of the key's popularity rank: the key string is "k<rank>" padded to a size
// sampled from an RNG seeded by mix64(rank); the mappers hash that string;
// the refill value size comes from an RNG seeded by mix64(rank ^ salt). The
// seed code re-derived all of it on *every arrival* — a fresh 312-word
// mt19937_64 state init, a string format, and a full key re-hash per key.
//
// KeyTable precomputes it once per rank into a structure-of-arrays table —
// rank → {string offset/length into a shared arena, fnv1a64 hash, server
// index for the configured mapper, value size} — so the hot path is two
// indexed loads. Because each memoized quantity is exactly what the legacy
// string path computes, simulation results are byte-identical.
//
// Ranks are materialized in 1024-rank chunks, built lazily on first touch by
// default: a Zipf-skewed run over a 10⁸-key space only pays for the chunks
// its head actually hits. kEager builds everything up front (benchmarks,
// short-horizon sweeps that touch the whole table anyway).
//
// A KeyTable is a per-trial, single-threaded object (like the Simulator it
// feeds); parallel trials each build their own.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "hashing/key_mapper.h"
#include "math/numerics.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"

namespace mclat::workload {

/// Seed salt for the per-rank value-size stream (shared with the legacy
/// end-to-end refill path; changing it would move every real-cache golden).
inline constexpr std::uint64_t kValueSeedSalt = 0x5eedull;

class KeyTable {
 public:
  enum class Build { kLazy, kEager };

  /// One rank's memoized facts. `key` views into the table's arena and is
  /// valid for the table's lifetime.
  struct View {
    std::string_view key;
    std::uint64_t hash = 0;        ///< fnv1a64(key) — mapper/store hash
    std::uint32_t server = 0;      ///< mapper.server_for(key)
    std::uint32_t value_bytes = 0; ///< 0 unless a ValueSizeModel was given
  };

  /// `keyspace` and `mapper` (and `values`, if given) must outlive the
  /// table. `values` enables the value-size column, replicating the
  /// real-cache refill stream Rng(mix64(rank ^ kValueSeedSalt)).
  KeyTable(const KeySpace& keyspace, const hashing::KeyMapper& mapper,
           const ValueSizeModel* values = nullptr, Build build = Build::kLazy);

  /// All memoized facts for `rank`; materializes the rank's chunk on first
  /// touch in lazy mode.
  [[nodiscard]] View view(std::uint64_t rank) {
    const Chunk& c = chunk_for(rank);
    const std::uint64_t i = rank & kChunkMask;
    const std::uint32_t off = c.offset[i];
    return View{std::string_view(c.arena.data() + off, c.offset[i + 1] - off),
                c.hash[i], c.server[i], c.value_bytes[i]};
  }

  /// Server index only (the trace-replay injection path).
  [[nodiscard]] std::uint32_t server(std::uint64_t rank) {
    return chunk_for(rank).server[rank & kChunkMask];
  }

  [[nodiscard]] std::uint64_t size() const noexcept { return keyspace_.size(); }

  /// How many chunks have been materialized (laziness observability).
  [[nodiscard]] std::uint64_t chunks_built() const noexcept { return built_; }
  [[nodiscard]] std::uint64_t chunk_count() const noexcept {
    return chunks_.size();
  }
  static constexpr std::uint64_t chunk_size() noexcept { return kChunkSize; }

 private:
  static constexpr std::uint64_t kChunkShift = 10;
  static constexpr std::uint64_t kChunkSize = 1ull << kChunkShift;
  static constexpr std::uint64_t kChunkMask = kChunkSize - 1;

  // Structure-of-arrays block for kChunkSize consecutive ranks. Key strings
  // are concatenated into `arena`; `offset` holds kChunkSize+1 prefix
  // offsets so lengths need no separate column.
  struct Chunk {
    std::vector<char> arena;
    std::vector<std::uint32_t> offset;
    std::vector<std::uint64_t> hash;
    std::vector<std::uint32_t> server;
    std::vector<std::uint32_t> value_bytes;
  };

  [[nodiscard]] const Chunk& chunk_for(std::uint64_t rank) {
    math::require(rank < keyspace_.size(), "KeyTable: rank out of range");
    const Chunk* c = chunks_[rank >> kChunkShift].get();
    return c != nullptr ? *c : build_chunk(rank >> kChunkShift);
  }

  const Chunk& build_chunk(std::uint64_t chunk_index);

  const KeySpace& keyspace_;
  const hashing::KeyMapper& mapper_;
  const ValueSizeModel* values_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::uint64_t built_ = 0;
};

}  // namespace mclat::workload
