// key_table.h — flat memoized keyspace metadata (the per-trial "mutilate
// table").
//
// Every per-key fact the cluster simulators need is a deterministic function
// of the key's popularity rank: the key string is "k<rank>" padded to a size
// sampled from an RNG seeded by mix64(rank); the mappers hash that string;
// the refill value size comes from an RNG seeded by mix64(rank ^ salt). The
// seed code re-derived all of it on *every arrival* — a fresh 312-word
// mt19937_64 state init, a string format, and a full key re-hash per key.
//
// KeyTable precomputes it once per rank into a structure-of-arrays table —
// rank → {string offset/length into a shared arena, fnv1a64 hash, server
// index for the configured mapper, value size} — so the hot path is two
// indexed loads. Because each memoized quantity is exactly what the legacy
// string path computes, simulation results are byte-identical.
//
// Ranks are materialized in 1024-rank chunks, built lazily on first touch by
// default: a Zipf-skewed run over a 10⁸-key space only pays for the chunks
// its head actually hits. kEager builds everything up front (benchmarks,
// short-horizon sweeps that touch the whole table anyway).
//
// With a `budget_bytes` > 0 the table is additionally *memory-bounded*:
// resident chunks are tracked with exact byte accounting and a CLOCK
// second-chance sweep evicts cold chunks when the budget is exceeded, so a
// 10⁸-rank Zipf trial holds only its working set. Because a chunk is a pure
// function of its index, an evicted chunk rebuilds bit-identically on the
// next touch (pinned by tests/cache/test_key_table_eviction.cpp) — eviction
// can never change simulation results, only the memory/CPU trade-off.
// Contract for view() string_views under a budget: they view into the
// rank's chunk and remain valid until the *next* table access — the chunk
// most recently returned is pinned and never evicted by that next access's
// build. Callers (the engines' miss/refill paths) consume a View before
// touching the table again.
//
// A KeyTable is a per-trial, single-threaded object (like the Simulator it
// feeds); parallel trials each build their own, and the sharded engine
// gives each shard its own bounded table (DESIGN.md §4i/§4j).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "hashing/key_mapper.h"
#include "math/numerics.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"

namespace mclat::workload {

/// Seed salt for the per-rank value-size stream (shared with the legacy
/// end-to-end refill path; changing it would move every real-cache golden).
inline constexpr std::uint64_t kValueSeedSalt = 0x5eedull;

class KeyTable {
 public:
  enum class Build { kLazy, kEager };

  /// One rank's memoized facts. `key` views into the rank's chunk: valid
  /// for the table's lifetime when unbounded, and until the next table
  /// access when a budget is set (see header comment).
  struct View {
    std::string_view key;
    std::uint64_t hash = 0;        ///< fnv1a64(key) — mapper/store hash
    std::uint32_t server = 0;      ///< mapper.server_for(key)
    std::uint32_t value_bytes = 0; ///< 0 unless a ValueSizeModel was given
  };

  /// `keyspace` and `mapper` (and `values`, if given) must outlive the
  /// table. `values` enables the value-size column, replicating the
  /// real-cache refill stream Rng(mix64(rank ^ kValueSeedSalt)).
  /// `budget_bytes` > 0 caps resident chunk memory (0 = unbounded).
  KeyTable(const KeySpace& keyspace, const hashing::KeyMapper& mapper,
           const ValueSizeModel* values = nullptr, Build build = Build::kLazy,
           std::size_t budget_bytes = 0);

  /// All memoized facts for `rank`; materializes the rank's chunk on first
  /// touch in lazy mode (and rebuilds it if a budget evicted it).
  [[nodiscard]] View view(std::uint64_t rank) {
    const Chunk& c = chunk_for(rank);
    if (!chunk_epoch_.empty()) revalidate(rank >> kChunkShift);
    const std::uint64_t i = rank & kChunkMask;
    const std::uint32_t off = c.offset[i];
    return View{std::string_view(c.arena.data() + off, c.offset[i + 1] - off),
                c.hash[i], c.server[i], c.value_bytes[i]};
  }

  /// Server index only (the routing path).
  [[nodiscard]] std::uint32_t server(std::uint64_t rank) {
    const Chunk& c = chunk_for(rank);
    if (!chunk_epoch_.empty()) revalidate(rank >> kChunkShift);
    return c.server[rank & kChunkMask];
  }

  /// Enables epoch validation of the memoized server column against
  /// mapper.epoch() (churn: the mapper mutates mid-run). Each chunk
  /// remembers the epoch it was mapped at; an access under a newer epoch
  /// re-runs server_for over just that chunk's keys *in place* — only
  /// ~1/M of ranks actually move per membership event, so a full-table
  /// rebuild would be wrong by construction (and would also dirty the
  /// budget accounting; the epoch column lives outside chunk_bytes() so
  /// eviction behaviour and the keytable.* gauges are untouched).
  /// Call before the first access. No-op if already tracking.
  void track_epochs();

  /// Ranks whose server assignment actually changed during epoch
  /// revalidation (the churn.ranks_remapped observability counter), and
  /// the number of chunk revalidation sweeps that ran.
  [[nodiscard]] std::uint64_t ranks_remapped() const noexcept {
    return ranks_remapped_;
  }
  [[nodiscard]] std::uint64_t chunk_remaps() const noexcept {
    return chunk_remaps_;
  }

  [[nodiscard]] std::uint64_t size() const noexcept { return keyspace_.size(); }

  /// How many chunk builds have run, rebuilds included (laziness and
  /// eviction-thrash observability; monotone).
  [[nodiscard]] std::uint64_t chunks_built() const noexcept { return built_; }
  /// How many of those builds re-materialized a previously evicted chunk.
  [[nodiscard]] std::uint64_t chunk_rebuilds() const noexcept {
    return rebuilds_;
  }
  /// Currently materialized chunks / their exact byte footprint (the
  /// keytable.chunks_resident / keytable.bytes gauges).
  [[nodiscard]] std::uint64_t chunks_resident() const noexcept {
    return resident_;
  }
  [[nodiscard]] std::uint64_t bytes_resident() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t chunk_count() const noexcept {
    return chunks_.size();
  }
  static constexpr std::uint64_t chunk_size() noexcept { return kChunkSize; }

 private:
  static constexpr std::uint64_t kChunkShift = 10;
  static constexpr std::uint64_t kChunkSize = 1ull << kChunkShift;
  static constexpr std::uint64_t kChunkMask = kChunkSize - 1;
  static constexpr std::uint64_t kNoPin = ~0ull;

  // Structure-of-arrays block for kChunkSize consecutive ranks. Key strings
  // are concatenated into `arena`; `offset` holds kChunkSize+1 prefix
  // offsets so lengths need no separate column.
  struct Chunk {
    std::vector<char> arena;
    std::vector<std::uint32_t> offset;
    std::vector<std::uint64_t> hash;
    std::vector<std::uint32_t> server;
    std::vector<std::uint32_t> value_bytes;
  };

  /// Exact heap footprint of a materialized chunk, the unit of the budget
  /// accounting (capacities, not sizes — what the allocator actually holds).
  [[nodiscard]] static std::size_t chunk_bytes(const Chunk& c) noexcept {
    return sizeof(Chunk) + c.arena.capacity() * sizeof(char) +
           c.offset.capacity() * sizeof(std::uint32_t) +
           c.hash.capacity() * sizeof(std::uint64_t) +
           c.server.capacity() * sizeof(std::uint32_t) +
           c.value_bytes.capacity() * sizeof(std::uint32_t);
  }

  [[nodiscard]] const Chunk& chunk_for(std::uint64_t rank) {
    math::require(rank < keyspace_.size(), "KeyTable: rank out of range");
    const std::uint64_t ci = rank >> kChunkShift;
    Chunk* c = chunks_[ci].get();
    if (c == nullptr) return build_chunk(ci);
    if (budget_ > 0) {
      ref_[ci] = 1;  // CLOCK second chance
      pinned_ = ci;
    }
    return *c;
  }

  const Chunk& build_chunk(std::uint64_t chunk_index);
  /// CLOCK sweep until bytes_ <= budget_, never evicting `keep` (the chunk
  /// just built) or pinned_ (the last chunk handed out).
  void evict_to_budget(std::uint64_t keep);

  /// Epoch-tracking slow path: if chunk `ci` was mapped under an older
  /// mapper epoch, re-run server_for over its keys in place.
  void revalidate(std::uint64_t ci) {
    const std::uint64_t e = mapper_.epoch();
    if (chunk_epoch_[ci] != e) remap_chunk(ci, e);
  }
  void remap_chunk(std::uint64_t ci, std::uint64_t epoch);

  const KeySpace& keyspace_;
  const hashing::KeyMapper& mapper_;
  const ValueSizeModel* values_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::uint64_t built_ = 0;
  std::uint64_t rebuilds_ = 0;

  // Residency accounting is maintained unconditionally (one add per chunk
  // build); the CLOCK machinery below it only engages when budget_ > 0,
  // keeping the unbounded fast path and its behaviour exactly as before.
  std::size_t budget_ = 0;
  std::uint64_t resident_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t hand_ = 0;           ///< CLOCK hand over chunk indices
  std::uint64_t pinned_ = kNoPin;    ///< last chunk returned; never evicted
  std::vector<std::uint8_t> ref_;    ///< CLOCK reference bits
  std::vector<std::uint8_t> ever_built_;  ///< distinguishes rebuilds

  // Epoch tracking (track_epochs) — empty unless enabled. Deliberately not
  // part of Chunk / chunk_bytes(): the budget accounting and eviction
  // decisions must be identical with tracking on or off.
  std::vector<std::uint64_t> chunk_epoch_;  ///< mapper epoch per chunk
  std::uint64_t ranks_remapped_ = 0;
  std::uint64_t chunk_remaps_ = 0;
};

}  // namespace mclat::workload
