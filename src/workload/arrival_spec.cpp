#include "workload/arrival_spec.h"

#include <cmath>

#include "dist/deterministic.h"
#include "dist/erlang.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "dist/hyperexponential.h"
#include "dist/uniform.h"
#include "dist/weibull.h"
#include "math/numerics.h"

namespace mclat::workload {

std::string to_string(GapPattern p) {
  switch (p) {
    case GapPattern::kGeneralizedPareto: return "GeneralizedPareto";
    case GapPattern::kExponential: return "Exponential";
    case GapPattern::kErlang: return "Erlang";
    case GapPattern::kHyperExponential: return "HyperExponential";
    case GapPattern::kUniform: return "Uniform";
    case GapPattern::kDeterministic: return "Deterministic";
    case GapPattern::kWeibull: return "Weibull";
  }
  return "Unknown";
}

dist::DistributionPtr ArrivalSpec::make_gap() const {
  math::require(key_rate > 0.0, "ArrivalSpec: key_rate must be > 0");
  math::require(concurrency_q >= 0.0 && concurrency_q < 1.0,
                "ArrivalSpec: q must be in [0,1)");
  const double mean = mean_gap();
  switch (pattern) {
    case GapPattern::kGeneralizedPareto:
      return std::make_unique<dist::GeneralizedPareto>(
          dist::GeneralizedPareto::with_mean(burst_xi, mean));
    case GapPattern::kExponential:
      return std::make_unique<dist::Exponential>(
          dist::Exponential::with_mean(mean));
    case GapPattern::kErlang: {
      // SCV of Erlang-k is 1/k.
      const int k = std::max(1, static_cast<int>(std::lround(
                                    1.0 / std::max(pattern_scv, 1e-3))));
      return std::make_unique<dist::Erlang>(dist::Erlang::with_mean(k, mean));
    }
    case GapPattern::kHyperExponential:
      return std::make_unique<dist::HyperExponential>(
          dist::HyperExponential::fit_mean_scv(mean,
                                               std::max(1.0, pattern_scv)));
    case GapPattern::kUniform:
      return std::make_unique<dist::Uniform>(0.0, 2.0 * mean);
    case GapPattern::kDeterministic:
      return std::make_unique<dist::Deterministic>(mean);
    case GapPattern::kWeibull: {
      // Choose the shape so the SCV matches pattern_scv: for Weibull,
      // SCV = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1, solved numerically.
      const double target = std::max(pattern_scv, 1e-3);
      const auto scv_of = [](double shape) {
        const double g1 = std::tgamma(1.0 + 1.0 / shape);
        const double g2 = std::tgamma(1.0 + 2.0 / shape);
        return g2 / (g1 * g1) - 1.0;
      };
      // SCV is decreasing in shape; bracket and bisect.
      double lo = 0.2;
      double hi = 10.0;
      for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        (scv_of(mid) > target ? lo : hi) = mid;
      }
      return std::make_unique<dist::Weibull>(
          dist::Weibull::with_mean(0.5 * (lo + hi), mean));
    }
  }
  throw std::logic_error("ArrivalSpec::make_gap: unhandled pattern");
}

ArrivalSpec facebook_arrivals() {
  ArrivalSpec s;
  s.key_rate = 62'500.0;
  s.concurrency_q = 0.1;
  s.burst_xi = 0.15;
  s.pattern = GapPattern::kGeneralizedPareto;
  return s;
}

}  // namespace mclat::workload
