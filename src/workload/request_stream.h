// request_stream.h — end-user request generation (the Fork side of the
// model).
//
// An end-user request arrives (Poisson at the front end, as aggregated web
// traffic is), is transformed by the Memcached client into N keys sampled
// from the keyspace, and fans out. This generator produces either an
// in-memory Trace (offline replay) or streams requests one at a time
// (online driving of the end-to-end simulator).
#pragma once

#include <cstdint>
#include <vector>

#include "dist/rng.h"
#include "workload/keyspace.h"
#include "workload/trace.h"

namespace mclat::workload {

struct RequestStreamConfig {
  double request_rate = 100.0;  ///< end-user requests per second
  std::uint32_t keys_per_request = 150;  ///< the paper's N
  std::uint64_t keyspace_size = 1'000'000;
  double zipf_exponent = 0.99;  ///< YCSB-style default skew
};

/// One generated end-user request.
struct GeneratedRequest {
  double time = 0.0;
  std::uint64_t request_id = 0;
  std::vector<std::uint64_t> key_ranks;  ///< N sampled keys
};

class RequestStream {
 public:
  RequestStream(const RequestStreamConfig& cfg, dist::Rng rng);

  /// Generates the next request (times are strictly increasing).
  [[nodiscard]] GeneratedRequest next();

  /// Generates `count` requests into a flat key-level Trace.
  [[nodiscard]] Trace generate_trace(std::uint64_t count);

  [[nodiscard]] const KeySpace& keyspace() const noexcept { return keys_; }
  [[nodiscard]] const RequestStreamConfig& config() const noexcept {
    return cfg_;
  }

 private:
  RequestStreamConfig cfg_;
  dist::Rng rng_;
  KeySpace keys_;
  double now_ = 0.0;
  std::uint64_t next_id_ = 0;
};

}  // namespace mclat::workload
