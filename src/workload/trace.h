// trace.h — record/replay of timed key accesses.
//
// A trace is the bridge between workload generation and consumption: the
// generator writes (time, rank, request-id) tuples; the cluster simulator or
// the real-cache warmer replays them. CSV import/export lets externally
// captured traces (or hand-written fixtures in tests) drive the same code
// paths as synthetic workloads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mclat::workload {

struct TraceRecord {
  double time = 0.0;          ///< seconds since trace start
  std::uint64_t key_rank = 0; ///< popularity rank (see KeySpace)
  std::uint64_t request_id = 0;  ///< end-user request this key belongs to
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceRecord> records);

  void append(TraceRecord r);

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Duration from the first to the last record (0 for < 2 records).
  [[nodiscard]] double duration() const;

  /// Number of distinct request ids.
  [[nodiscard]] std::uint64_t request_count() const;

  /// Writes "time,key_rank,request_id" lines with a header row.
  void save_csv(std::ostream& out) const;

  /// Parses the format written by save_csv. Throws std::runtime_error on
  /// malformed input.
  [[nodiscard]] static Trace load_csv(std::istream& in);

  /// Sorts records by time (stable), as replay requires.
  void sort_by_time();

  /// Throws std::invalid_argument naming the first record whose key_rank is
  /// >= `limit` (the keyspace size). Consumers call this up front instead of
  /// silently aliasing out-of-range ranks with `% limit`.
  void require_ranks_below(std::uint64_t limit) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace mclat::workload
