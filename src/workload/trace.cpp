#include "workload/trace.h"

#include "math/numerics.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace mclat::workload {

Trace::Trace(std::vector<TraceRecord> records) : records_(std::move(records)) {}

void Trace::append(TraceRecord r) { records_.push_back(r); }

double Trace::duration() const {
  if (records_.size() < 2) return 0.0;
  return records_.back().time - records_.front().time;
}

std::uint64_t Trace::request_count() const {
  std::unordered_set<std::uint64_t> ids;
  ids.reserve(records_.size());
  for (const auto& r : records_) ids.insert(r.request_id);
  return ids.size();
}

void Trace::save_csv(std::ostream& out) const {
  // Full round-trip precision: a replay of the loaded trace must be
  // bit-identical to a replay of the original.
  const auto old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << "time,key_rank,request_id\n";
  for (const auto& r : records_) {
    out << r.time << ',' << r.key_rank << ',' << r.request_id << '\n';
  }
  out.precision(old_precision);
}

Trace Trace::load_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("Trace::load_csv: empty input");
  }
  if (line != "time,key_rank,request_id") {
    throw std::runtime_error("Trace::load_csv: bad header: " + line);
  }
  std::vector<TraceRecord> records;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ss(line);
    TraceRecord r;
    char c1 = 0;
    char c2 = 0;
    if (!(ss >> r.time >> c1 >> r.key_rank >> c2 >> r.request_id) ||
        c1 != ',' || c2 != ',') {
      throw std::runtime_error("Trace::load_csv: malformed line " +
                               std::to_string(lineno));
    }
    records.push_back(r);
  }
  return Trace(std::move(records));
}

void Trace::require_ranks_below(std::uint64_t limit) const {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TraceRecord& r = records_[i];
    if (r.key_rank >= limit) {
      math::require(false, "Trace: record " + std::to_string(i) + " (time " +
                               std::to_string(r.time) + ", request " +
                               std::to_string(r.request_id) + ") has key_rank " +
                               std::to_string(r.key_rank) +
                               " outside the keyspace of " +
                               std::to_string(limit) + " keys");
    }
  }
}

void Trace::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
}

}  // namespace mclat::workload
