// size_model.h — key/value size models from the Facebook trace.
//
// Atikoglu et al. (SIGMETRICS'12, §5) fit the ETC pool's sizes to:
//   key sizes   ~ Generalized Extreme Value (μ=30.7634, σ=8.20449, k=0.078688),
//   value sizes ~ Generalized Pareto       (μ=0, σ=214.476, k=0.348238),
// both in bytes. These feed the real-cache mode (item footprints → slab class
// occupancy → emergent miss ratio) and the examples that explore cache
// sizing. Samples are clamped to sane byte ranges since the fitted laws have
// unbounded (and for GEV slightly negative) support.
#pragma once

#include <cstdint>

#include "dist/rng.h"

namespace mclat::workload {

/// GEV-distributed key sizes (bytes).
class KeySizeModel {
 public:
  KeySizeModel(double mu, double sigma, double k, std::uint32_t min_bytes = 1,
               std::uint32_t max_bytes = 250);  // memcached caps keys at 250 B

  /// The Facebook ETC fit.
  [[nodiscard]] static KeySizeModel facebook();

  [[nodiscard]] std::uint32_t sample(dist::Rng& rng) const;

  /// GEV quantile (unclamped, in bytes).
  [[nodiscard]] double quantile(double p) const;

 private:
  double mu_;
  double sigma_;
  double k_;
  std::uint32_t min_bytes_;
  std::uint32_t max_bytes_;
};

/// Generalized-Pareto value sizes (bytes).
class ValueSizeModel {
 public:
  ValueSizeModel(double sigma, double k, std::uint32_t min_bytes = 1,
                 std::uint32_t max_bytes = 1 << 20);

  /// The Facebook ETC fit.
  [[nodiscard]] static ValueSizeModel facebook();

  [[nodiscard]] std::uint32_t sample(dist::Rng& rng) const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean() const;

 private:
  double sigma_;
  double k_;
  std::uint32_t min_bytes_;
  std::uint32_t max_bytes_;
};

}  // namespace mclat::workload
