// keyspace.h — the population of Memcached keys.
//
// Maps popularity ranks to deterministic key strings and samples accesses
// with Zipf skew — the statistical reason a handful of Memcached servers end
// up "hot" (§2.1 point 2). The generated key string embeds its rank so
// tests can invert the mapping, and is padded to a sampled key size so the
// real-cache mode sees realistic item footprints.
#pragma once

#include <cstdint>
#include <string>

#include "dist/rng.h"
#include "dist/zipf.h"
#include "workload/size_model.h"

namespace mclat::workload {

class KeySpace {
 public:
  /// `keys` distinct keys with Zipf(`zipf_s`) popularity.
  KeySpace(std::uint64_t keys, double zipf_s,
           KeySizeModel sizes = KeySizeModel::facebook());

  /// Draws a popularity rank (0 = hottest).
  [[nodiscard]] std::uint64_t sample_rank(dist::Rng& rng) const {
    return zipf_.sample(rng);
  }

  /// The canonical key string for a rank: "k<rank>" padded with '#' to the
  /// rank's deterministic size (so one rank always has one string).
  [[nodiscard]] std::string key_for_rank(std::uint64_t rank) const;

  /// Renders the canonical key into `out`, reusing its capacity — the
  /// hot-path form for the cluster simulators, which look keys up once per
  /// simulated access and would otherwise allocate a fresh string each time.
  void key_for_rank(std::uint64_t rank, std::string& out) const;

  /// Convenience: sample a rank and render its key.
  [[nodiscard]] std::string sample_key(dist::Rng& rng) const {
    return key_for_rank(sample_rank(rng));
  }

  /// Parses the rank back out of a key string produced by key_for_rank.
  [[nodiscard]] static std::uint64_t rank_of(const std::string& key);

  [[nodiscard]] std::uint64_t size() const noexcept { return zipf_.n(); }
  [[nodiscard]] const dist::Zipf& popularity() const noexcept { return zipf_; }

 private:
  dist::Zipf zipf_;
  KeySizeModel sizes_;
};

}  // namespace mclat::workload
