#include "workload/key_table.h"

#include <string>

#include "dist/rng.h"
#include "hashing/hashes.h"

namespace mclat::workload {

KeyTable::KeyTable(const KeySpace& keyspace, const hashing::KeyMapper& mapper,
                   const ValueSizeModel* values, Build build)
    : keyspace_(keyspace), mapper_(mapper), values_(values) {
  math::require(mapper.server_count() >= 1, "KeyTable: mapper has no servers");
  const std::uint64_t n_chunks =
      (keyspace.size() + kChunkSize - 1) >> kChunkShift;
  chunks_.resize(n_chunks);
  if (build == Build::kEager) {
    for (std::uint64_t ci = 0; ci < n_chunks; ++ci) build_chunk(ci);
  }
}

const KeyTable::Chunk& KeyTable::build_chunk(std::uint64_t chunk_index) {
  auto chunk = std::make_unique<Chunk>();
  const std::uint64_t begin = chunk_index << kChunkShift;
  const std::uint64_t end =
      std::min(begin + kChunkSize, keyspace_.size());
  const std::uint64_t count = end - begin;
  chunk->offset.reserve(count + 1);
  chunk->hash.reserve(count);
  chunk->server.reserve(count);
  chunk->value_bytes.reserve(count);
  chunk->offset.push_back(0);
  std::string buf;
  for (std::uint64_t rank = begin; rank < end; ++rank) {
    // The legacy per-arrival path, run exactly once per rank: render the
    // canonical key, hash it, map it, and (optionally) draw the refill
    // value size from the rank-seeded stream the end-to-end sim used.
    keyspace_.key_for_rank(rank, buf);
    chunk->arena.insert(chunk->arena.end(), buf.begin(), buf.end());
    chunk->offset.push_back(static_cast<std::uint32_t>(chunk->arena.size()));
    chunk->hash.push_back(hashing::fnv1a64(buf));
    chunk->server.push_back(
        static_cast<std::uint32_t>(mapper_.server_for(buf)));
    std::uint32_t vb = 0;
    if (values_ != nullptr) {
      dist::Rng vr(hashing::mix64(rank ^ kValueSeedSalt));
      vb = values_->sample(vr);
    }
    chunk->value_bytes.push_back(vb);
  }
  chunk->arena.shrink_to_fit();
  chunks_[chunk_index] = std::move(chunk);
  ++built_;
  return *chunks_[chunk_index];
}

}  // namespace mclat::workload
