#include "workload/key_table.h"

#include <string>

#include "dist/rng.h"
#include "hashing/hashes.h"

namespace mclat::workload {

KeyTable::KeyTable(const KeySpace& keyspace, const hashing::KeyMapper& mapper,
                   const ValueSizeModel* values, Build build,
                   std::size_t budget_bytes)
    : keyspace_(keyspace),
      mapper_(mapper),
      values_(values),
      budget_(budget_bytes) {
  math::require(mapper.server_count() >= 1, "KeyTable: mapper has no servers");
  const std::uint64_t n_chunks =
      (keyspace.size() + kChunkSize - 1) >> kChunkShift;
  chunks_.resize(n_chunks);
  if (budget_ > 0) {
    ref_.assign(n_chunks, 0);
    ever_built_.assign(n_chunks, 0);
  }
  if (build == Build::kEager) {
    // Eager + budget still respects the cap: the build loop evicts as it
    // goes and ends holding roughly one budget's worth of trailing chunks.
    for (std::uint64_t ci = 0; ci < n_chunks; ++ci) build_chunk(ci);
  }
}

const KeyTable::Chunk& KeyTable::build_chunk(std::uint64_t chunk_index) {
  auto chunk = std::make_unique<Chunk>();
  const std::uint64_t begin = chunk_index << kChunkShift;
  const std::uint64_t end =
      std::min(begin + kChunkSize, keyspace_.size());
  const std::uint64_t count = end - begin;
  chunk->offset.reserve(count + 1);
  chunk->hash.reserve(count);
  chunk->server.reserve(count);
  chunk->value_bytes.reserve(count);
  chunk->offset.push_back(0);
  std::string buf;
  for (std::uint64_t rank = begin; rank < end; ++rank) {
    // The legacy per-arrival path, run exactly once per rank: render the
    // canonical key, hash it, map it, and (optionally) draw the refill
    // value size from the rank-seeded stream the end-to-end sim used.
    // Everything here is a pure function of `rank`, which is what makes an
    // evicted chunk's rebuild bit-identical.
    keyspace_.key_for_rank(rank, buf);
    chunk->arena.insert(chunk->arena.end(), buf.begin(), buf.end());
    chunk->offset.push_back(static_cast<std::uint32_t>(chunk->arena.size()));
    chunk->hash.push_back(hashing::fnv1a64(buf));
    chunk->server.push_back(
        static_cast<std::uint32_t>(mapper_.server_for(buf)));
    std::uint32_t vb = 0;
    if (values_ != nullptr) {
      dist::Rng vr(hashing::mix64(rank ^ kValueSeedSalt));
      vb = values_->sample(vr);
    }
    chunk->value_bytes.push_back(vb);
  }
  chunk->arena.shrink_to_fit();
  chunks_[chunk_index] = std::move(chunk);
  if (!chunk_epoch_.empty()) chunk_epoch_[chunk_index] = mapper_.epoch();
  ++built_;
  ++resident_;
  bytes_ += chunk_bytes(*chunks_[chunk_index]);
  if (budget_ > 0) {
    if (ever_built_[chunk_index]) ++rebuilds_;
    ever_built_[chunk_index] = 1;
    ref_[chunk_index] = 1;
    // Evict while pinned_ still names the chunk behind the *previously*
    // returned view: that view stays valid across this access (the
    // no-dangle contract in the header), then the pin moves here.
    if (bytes_ > budget_) evict_to_budget(chunk_index);
    pinned_ = chunk_index;
  }
  return *chunks_[chunk_index];
}

void KeyTable::track_epochs() {
  if (!chunk_epoch_.empty()) return;
  chunk_epoch_.assign(chunks_.size(), mapper_.epoch());
}

void KeyTable::remap_chunk(std::uint64_t ci, std::uint64_t epoch) {
  // Re-route just this chunk's keys under the mapper's current membership.
  // The keys, hashes and value sizes are rank-pure and never move; only the
  // server column can change, and per membership event only ~1/M of ranks
  // actually do — count exactly those.
  Chunk& c = *chunks_[ci];
  const std::uint64_t count = c.hash.size();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t off = c.offset[i];
    const std::string_view key(c.arena.data() + off, c.offset[i + 1] - off);
    const auto s = static_cast<std::uint32_t>(mapper_.server_for(key));
    if (s != c.server[i]) {
      c.server[i] = s;
      ++ranks_remapped_;
    }
  }
  chunk_epoch_[ci] = epoch;
  ++chunk_remaps_;
}

void KeyTable::evict_to_budget(std::uint64_t keep) {
  const std::uint64_t n = chunks_.size();
  while (bytes_ > budget_ && resident_ > 1) {
    bool evicted = false;
    // Two full revolutions suffice: the first clears every reference bit
    // still set, the second finds a victim. Null (never-built / already
    // evicted) slots are skipped at one branch each.
    for (std::uint64_t step = 0; step < 2 * n && !evicted; ++step) {
      const std::uint64_t i = hand_;
      hand_ = hand_ + 1 == n ? 0 : hand_ + 1;
      Chunk* c = chunks_[i].get();
      if (c == nullptr || i == keep || i == pinned_) continue;
      if (ref_[i] != 0) {
        ref_[i] = 0;
        continue;
      }
      bytes_ -= chunk_bytes(*c);
      --resident_;
      chunks_[i].reset();
      evicted = true;
    }
    // Everything still resident is protected (keep/pinned) or the budget
    // is smaller than one chunk: stop rather than spin. The budget is a
    // working-set cap, never allowed to make forward progress impossible.
    if (!evicted) break;
  }
}

}  // namespace mclat::workload
