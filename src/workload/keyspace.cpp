#include "workload/keyspace.h"

#include <charconv>

#include "hashing/hashes.h"
#include "math/numerics.h"

namespace mclat::workload {

KeySpace::KeySpace(std::uint64_t keys, double zipf_s, KeySizeModel sizes)
    : zipf_(keys, zipf_s), sizes_(sizes) {}

std::string KeySpace::key_for_rank(std::uint64_t rank) const {
  std::string key;
  key_for_rank(rank, key);
  return key;
}

void KeySpace::key_for_rank(std::uint64_t rank, std::string& out) const {
  math::require(rank < zipf_.n(), "KeySpace: rank out of range");
  char digits[24];
  const auto res =
      std::to_chars(digits, digits + sizeof digits, rank);
  out.clear();
  out.push_back('k');
  out.append(digits, res.ptr);
  // Deterministic per-rank size: seed a tiny RNG from the rank so the same
  // rank always produces the same string (the cache must see stable keys).
  dist::Rng rng(hashing::mix64(rank ^ 0xfacef00dull));
  const std::uint32_t target = sizes_.sample(rng);
  if (out.size() < target) out.resize(target, '#');
}

std::uint64_t KeySpace::rank_of(const std::string& key) {
  math::require(!key.empty() && key[0] == 'k', "KeySpace::rank_of: bad key");
  std::uint64_t rank = 0;
  const char* begin = key.data() + 1;
  const char* end = key.data() + key.size();
  const auto res = std::from_chars(begin, end, rank);
  math::require(res.ec == std::errc(), "KeySpace::rank_of: bad key");
  return rank;
}

}  // namespace mclat::workload
