#include "cache/slab_allocator.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "math/numerics.h"

namespace mclat::cache {

SlabAllocator::SlabAllocator(const Config& cfg) : cfg_(cfg) {
  math::require(cfg.min_chunk >= 16, "SlabAllocator: min_chunk too small");
  math::require(cfg.growth_factor > 1.0, "SlabAllocator: growth must exceed 1");
  math::require(cfg.page_size >= cfg.min_chunk + kHeaderSize,
                "SlabAllocator: page smaller than one chunk");
  // Build the size-class ladder exactly as memcached's slabs_init: each
  // class is growth_factor times the previous, rounded up to 8 bytes, until
  // a chunk no longer fits in a page.
  double size = static_cast<double>(cfg.min_chunk + kHeaderSize);
  while (true) {
    std::size_t chunk = (static_cast<std::size_t>(size) + 7) / 8 * 8;
    if (chunk > cfg.page_size) break;
    if (classes_.empty() || chunk > classes_.back().chunk_size) {
      SlabClass c;
      c.chunk_size = chunk;
      classes_.push_back(std::move(c));
    }
    size *= cfg.growth_factor;
  }
  // Final class: one whole page (memcached's "item_size_max" class).
  if (classes_.back().chunk_size < cfg.page_size) {
    SlabClass c;
    c.chunk_size = cfg.page_size;
    classes_.push_back(std::move(c));
  }
}

std::size_t SlabAllocator::class_for(std::size_t size) const {
  const std::size_t need = size + kHeaderSize;
  const auto it = std::lower_bound(
      classes_.begin(), classes_.end(), need,
      [](const SlabClass& c, std::size_t n) { return c.chunk_size < n; });
  if (it == classes_.end()) {
    throw std::length_error("SlabAllocator: item exceeds the largest class");
  }
  return static_cast<std::size_t>(it - classes_.begin());
}

std::size_t SlabAllocator::chunk_size(std::size_t cls) const {
  math::require(cls < classes_.size(), "SlabAllocator: class out of range");
  return classes_[cls].chunk_size - kHeaderSize;
}

std::size_t SlabAllocator::max_item_size() const {
  return classes_.back().chunk_size - kHeaderSize;
}

bool SlabAllocator::grow(std::size_t cls) {
  if (used_bytes_ + cfg_.page_size > cfg_.memory_limit) return false;
  auto page = std::make_unique<char[]>(cfg_.page_size);
  char* base = page.get();
  SlabClass& c = classes_[cls];
  const std::size_t per_page = cfg_.page_size / c.chunk_size;
  for (std::size_t i = 0; i < per_page; ++i) {
    char* chunk = base + i * c.chunk_size;
    auto* hdr = reinterpret_cast<ChunkHeader*>(chunk);
    hdr->class_id = static_cast<std::uint32_t>(cls);
    hdr->magic = kMagicFree;
    c.free_list.push_back(chunk);
  }
  c.pages += 1;
  c.total_chunks += per_page;
  pages_.push_back(std::move(page));
  used_bytes_ += cfg_.page_size;
  return true;
}

void* SlabAllocator::allocate(std::size_t size) {
  const std::size_t cls = class_for(size);
  SlabClass& c = classes_[cls];
  if (c.free_list.empty() && !grow(cls)) return nullptr;
  char* chunk = static_cast<char*>(c.free_list.back());
  c.free_list.pop_back();
  auto* hdr = reinterpret_cast<ChunkHeader*>(chunk);
  hdr->magic = kMagicLive;
  c.used_chunks += 1;
  return chunk + kHeaderSize;
}

void SlabAllocator::deallocate(void* p) {
  math::require(p != nullptr, "SlabAllocator::deallocate: null pointer");
  char* chunk = static_cast<char*>(p) - kHeaderSize;
  auto* hdr = reinterpret_cast<ChunkHeader*>(chunk);
  math::require(hdr->magic == kMagicLive,
                "SlabAllocator::deallocate: not a live chunk");
  hdr->magic = kMagicFree;
  SlabClass& c = classes_[hdr->class_id];
  c.free_list.push_back(chunk);
  c.used_chunks -= 1;
}

std::size_t SlabAllocator::class_of(const void* p) {
  const char* chunk = static_cast<const char*>(p) - kHeaderSize;
  const auto* hdr = reinterpret_cast<const ChunkHeader*>(chunk);
  return hdr->class_id;
}

SlabAllocator::ClassStats SlabAllocator::stats(std::size_t cls) const {
  math::require(cls < classes_.size(), "SlabAllocator: class out of range");
  const SlabClass& c = classes_[cls];
  return ClassStats{c.chunk_size - kHeaderSize, c.pages, c.total_chunks,
                    c.used_chunks};
}

}  // namespace mclat::cache
