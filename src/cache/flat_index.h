// flat_index.h — the open-addressing hash index behind cache::LruStore.
//
// Replaces the store's std::unordered_map<string_view, ItemHeader*>: one
// node allocation per resident item and a pointer-chase per probe were the
// binding cost of million-key real-cache trials. The flat table stores
// 16-byte {hash, item*} slots in one contiguous array, so a probe is a
// linear scan of adjacent cache lines and the full 64-bit fnv1a64 hash is
// compared before any key bytes are touched (see DESIGN.md §4j — the hash
// is cached in the *slot*, not in ItemHeader, deliberately: growing the
// 32-byte header would change every item's slab class and with it the
// emergent miss ratios the engine-equivalence goldens pin).
//
// Scheme:
//   * power-of-two capacity, linear probing from `hash & mask`;
//   * tombstone-free deletion by backward shift: erasing compacts the
//     probe cluster in place, so probe lengths never degrade with delete
//     churn (no tombstone accumulation, no periodic purge);
//   * incremental rehash: growth allocates the doubled table and migrates
//     a bounded number of entries (kMigrateStep) per subsequent mutation,
//     so no single set/remove pays an O(n) stall — the latency-model use
//     case cares about the per-operation tail, not just throughput. Reads
//     probe both tables while a drain is in progress.
//
// Single-threaded by design, like the store that owns it (per-server
// stores are driven by one simulator event loop; the sharded engine gives
// each shard its own stores — DESIGN.md §4i).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace mclat::cache {

/// Cumulative probe statistics, fed to the `cache.index.probe_len` gauge.
/// A "probe" is one slot inspection; every lookup inspects at least one.
struct IndexStats {
  std::uint64_t lookups = 0;
  std::uint64_t probes = 0;
  std::uint64_t max_probe = 0;  ///< longest single lookup seen

  [[nodiscard]] double mean_probe() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(probes) / static_cast<double>(lookups);
  }
  void merge(const IndexStats& o) noexcept {
    lookups += o.lookups;
    probes += o.probes;
    if (o.max_probe > max_probe) max_probe = o.max_probe;
  }
};

/// Open-addressing map from (key, fnv1a64 hash) to Item*. `Item` must
/// expose `std::string_view key()`. The caller supplies the hash on every
/// call (LruStore already holds it on the hot paths); the index never
/// hashes a key itself.
template <class Item>
class FlatIndex {
 public:
  FlatIndex() : slots_(kMinCapacity) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size() + old_.size();
  }
  [[nodiscard]] const IndexStats& probe_stats() const noexcept {
    return stats_;
  }

  /// Returns the item for `key`, or nullptr. Does not advance migration
  /// (usable from const contexts); probe counts accrue to probe_stats().
  [[nodiscard]] Item* find(std::string_view key, std::uint64_t hash) const {
    std::uint64_t probes = 0;
    Item* r = probe_table(slots_, key, hash, probes);
    if (r == nullptr && old_size_ > 0) {
      r = probe_table(old_, key, hash, probes);
    }
    ++stats_.lookups;
    stats_.probes += probes;
    if (probes > stats_.max_probe) stats_.max_probe = probes;
    return r;
  }

  /// Inserts `item` under (key(), hash). Precondition: the key is absent —
  /// LruStore's replace path erases the old item first, exactly as the
  /// unordered_map implementation did.
  void insert(Item* item, std::uint64_t hash) {
    step_migration(kMigrateStep);
    maybe_grow();
    place(slots_, hash, item);
    ++size_;
  }

  /// Erases the entry for (key, hash); returns the item or nullptr.
  Item* erase(std::string_view key, std::uint64_t hash) {
    step_migration(kMigrateStep);
    Item* r = erase_from(slots_, key, hash);
    if (r == nullptr && old_size_ > 0) {
      r = erase_from(old_, key, hash);
      if (r != nullptr) --old_size_;
    }
    if (r != nullptr) --size_;
    return r;
  }

  /// Drops every entry and returns the table to its minimum footprint.
  /// Probe statistics are cumulative and survive (stores flush between
  /// trials but report per-run stats).
  void clear() {
    slots_.assign(kMinCapacity, Slot{});
    release_old();
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    Item* item = nullptr;  // nullptr == empty
  };

  static constexpr std::size_t kMinCapacity = 16;
  // Entries migrated out of the draining table per mutating call. Growth
  // doubles capacity at load factor 3/4, so the old table holds at most
  // 3/8 of the new capacity; at 4 per mutation the drain finishes well
  // before the next growth could trigger (which needs ~3/8 of the new
  // capacity in fresh inserts).
  static constexpr std::size_t kMigrateStep = 4;

  static Item* probe_table(const std::vector<Slot>& t, std::string_view key,
                           std::uint64_t hash, std::uint64_t& probes) {
    const std::size_t mask = t.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    for (;;) {
      ++probes;
      const Slot& s = t[i];
      if (s.item == nullptr) return nullptr;
      if (s.hash == hash && s.item->key() == key) return s.item;
      i = (i + 1) & mask;
    }
  }

  /// Inserts into the first empty slot of `t`'s probe chain. `t` is never
  /// full: load is capped at 3/4 before any insert.
  static void place(std::vector<Slot>& t, std::uint64_t hash, Item* item) {
    const std::size_t mask = t.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (t[i].item != nullptr) i = (i + 1) & mask;
    t[i] = Slot{hash, item};
  }

  /// Backward-shift deletion: vacates the found slot, then walks the rest
  /// of the cluster moving back any element whose home position permits it,
  /// so the invariant "every element is reachable by linear probing from
  /// its home" holds with no tombstones.
  static Item* erase_from(std::vector<Slot>& t, std::string_view key,
                          std::uint64_t hash) {
    const std::size_t mask = t.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    for (;;) {
      Slot& s = t[i];
      if (s.item == nullptr) return nullptr;
      if (s.hash == hash && s.item->key() == key) break;
      i = (i + 1) & mask;
    }
    Item* removed = t[i].item;
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (t[j].item == nullptr) break;
      const std::size_t home = static_cast<std::size_t>(t[j].hash) & mask;
      // t[j] may fill the hole iff the hole lies within its probe path,
      // i.e. its displacement from home reaches at least back to the hole.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        t[hole] = t[j];
        hole = j;
      }
    }
    t[hole] = Slot{};
    return removed;
  }

  void maybe_grow() {
    if ((size_ + 1) * 4 <= slots_.size() * 3) return;
    // Finish any in-flight drain before starting another: at kMigrateStep
    // per mutation the old table is long empty by now in steady state;
    // this is the correctness backstop, not the common path.
    step_migration(old_size_);
    old_ = std::move(slots_);
    old_size_ = size_;
    scan_ = 0;
    slots_.assign(old_.size() * 2, Slot{});
  }

  void step_migration(std::size_t n) {
    if (old_size_ == 0) {
      if (!old_.empty()) release_old();
      return;
    }
    const std::size_t mask = old_.size() - 1;
    while (n-- > 0 && old_size_ > 0) {
      while (old_[scan_].item == nullptr) scan_ = (scan_ + 1) & mask;
      const Slot s = old_[scan_];
      // Backward shift may move a cluster-mate INTO the vacated slot, so
      // the scan position is deliberately not advanced here.
      erase_from(old_, s.item->key(), s.hash);
      --old_size_;
      place(slots_, s.hash, s.item);
    }
    if (old_size_ == 0) release_old();
  }

  void release_old() {
    old_.clear();
    old_.shrink_to_fit();
    old_size_ = 0;
    scan_ = 0;
  }

  std::vector<Slot> slots_;  // current table (all inserts land here)
  std::vector<Slot> old_;    // draining table during incremental rehash
  std::size_t old_size_ = 0;  // live entries still in old_
  std::size_t scan_ = 0;      // migration cursor into old_
  std::size_t size_ = 0;      // live entries across both tables
  mutable IndexStats stats_;
};

}  // namespace mclat::cache
