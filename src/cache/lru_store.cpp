#include "cache/lru_store.h"

#include <cstring>

#include "math/numerics.h"

namespace mclat::cache {

LruStore::LruStore(const SlabAllocator::Config& cfg)
    : slabs_(cfg), lru_(slabs_.num_classes()) {}

LruStore::~LruStore() { flush(); }

void LruStore::lru_unlink(ItemHeader* it, std::size_t cls) noexcept {
  LruList& l = lru_[cls];
  if (it->lru_prev) it->lru_prev->lru_next = it->lru_next;
  if (it->lru_next) it->lru_next->lru_prev = it->lru_prev;
  if (l.head == it) l.head = it->lru_next;
  if (l.tail == it) l.tail = it->lru_prev;
  it->lru_prev = nullptr;
  it->lru_next = nullptr;
}

void LruStore::lru_push_front(ItemHeader* it, std::size_t cls) noexcept {
  LruList& l = lru_[cls];
  it->lru_prev = nullptr;
  it->lru_next = l.head;
  if (l.head) l.head->lru_prev = it;
  l.head = it;
  if (!l.tail) l.tail = it;
}

void LruStore::destroy(ItemHeader* it, std::uint64_t key_hash) {
  const std::size_t cls = SlabAllocator::class_of(it);
  lru_unlink(it, cls);
  index_.erase(it->key(), key_hash);
  stats_.resident_bytes -= sizeof(ItemHeader) + it->key_len + it->value_len;
  slabs_.deallocate(it);
}

bool LruStore::evict_one(std::size_t cls) {
  ItemHeader* victim = lru_[cls].tail;
  if (victim == nullptr) return false;
  destroy(victim, hashing::fnv1a64(victim->key()));
  ++stats_.evictions;
  return true;
}

LruStore::ItemHeader* LruStore::emplace_item(std::string_view key,
                                             std::uint64_t key_hash,
                                             std::size_t value_bytes,
                                             double now, double ttl) {
  ++stats_.sets;
  const std::size_t need = sizeof(ItemHeader) + key.size() + value_bytes;
  if (need > slabs_.max_item_size()) {
    ++stats_.set_failures;
    return nullptr;
  }
  // Replace semantics: drop any existing item first (memcached allocates the
  // new item before unlinking, but the visible behaviour is the same and
  // this frees the chunk for immediate reuse when sizes match).
  if (ItemHeader* existing = index_.find(key, key_hash)) {
    destroy(existing, key_hash);
  }

  const std::size_t cls = slabs_.class_for(need);
  void* mem = slabs_.allocate(need);
  while (mem == nullptr) {
    if (!evict_one(cls)) {
      ++stats_.set_failures;
      return nullptr;
    }
    mem = slabs_.allocate(need);
  }
  auto* item = static_cast<ItemHeader*>(mem);
  item->lru_prev = nullptr;
  item->lru_next = nullptr;
  item->expiry = ttl > 0.0 ? now + ttl : 0.0;
  item->key_len = static_cast<std::uint32_t>(key.size());
  item->value_len = static_cast<std::uint32_t>(value_bytes);
  std::memcpy(item->key_data(), key.data(), key.size());
  index_.insert(item, key_hash);
  lru_push_front(item, cls);
  stats_.resident_bytes += need;
  return item;
}

bool LruStore::set(std::string_view key, std::string_view value, double now,
                   double ttl) {
  ItemHeader* item =
      emplace_item(key, hashing::fnv1a64(key), value.size(), now, ttl);
  if (item == nullptr) return false;
  std::memcpy(item->value_data(), value.data(), value.size());
  return true;
}

bool LruStore::set_sized(std::string_view key, std::size_t value_bytes,
                         double now, double ttl) {
  return set_sized_hashed(key, hashing::fnv1a64(key), value_bytes, now, ttl);
}

bool LruStore::set_sized_hashed(std::string_view key, std::uint64_t key_hash,
                         std::size_t value_bytes, double now, double ttl) {
  ItemHeader* item = emplace_item(key, key_hash, value_bytes, now, ttl);
  if (item == nullptr) return false;
  std::memset(item->value_data(), 'v', value_bytes);
  return true;
}

std::optional<std::string_view> LruStore::get(std::string_view key,
                                              std::uint64_t key_hash,
                                              double now) {
  ++stats_.gets;
  ItemHeader* item = index_.find(key, key_hash);
  if (item == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (item->expired(now)) {
    destroy(item, key_hash);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  const std::size_t cls = SlabAllocator::class_of(item);
  lru_unlink(item, cls);
  lru_push_front(item, cls);
  ++stats_.hits;
  return item->value();
}

bool LruStore::contains(std::string_view key, std::uint64_t key_hash,
                        double now) const {
  const ItemHeader* item = index_.find(key, key_hash);
  return item != nullptr && !item->expired(now);
}

bool LruStore::remove(std::string_view key, std::uint64_t key_hash) {
  ItemHeader* item = index_.find(key, key_hash);
  if (item == nullptr) return false;
  destroy(item, key_hash);
  ++stats_.deletes;
  return true;
}

void LruStore::flush() {
  // Bulk teardown: unlink and free items directly, then drop the whole
  // index in one clear() — no per-item backward-shift erases and no key
  // re-hashing on a path that visits every resident item.
  for (std::size_t cls = 0; cls < lru_.size(); ++cls) {
    while (lru_[cls].tail != nullptr) {
      ItemHeader* victim = lru_[cls].tail;
      lru_unlink(victim, cls);
      stats_.resident_bytes -=
          sizeof(ItemHeader) + victim->key_len + victim->value_len;
      slabs_.deallocate(victim);
    }
  }
  index_.clear();
}

}  // namespace mclat::cache
