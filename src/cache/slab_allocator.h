// slab_allocator.h — memcached-style slab memory allocator.
//
// Memcached never malloc/frees per item: memory is reserved in fixed-size
// pages (1 MiB), each page is assigned to a *slab class* and carved into
// equal chunks; an item occupies one chunk of the smallest class that fits
// it. This allocator reproduces that design — growth-factor-spaced chunk
// sizes, page carving, per-class free lists and a global memory limit — so
// the LruStore on top of it exhibits memcached's real eviction behaviour
// (per-class LRU, allocation failure when a class is starved even though
// other classes have free memory: "slab calcification").
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mclat::cache {

class SlabAllocator {
 public:
  struct Config {
    std::size_t min_chunk = 96;        ///< smallest chunk (memcached default ~96 B)
    double growth_factor = 1.25;       ///< chunk-size ratio between classes
    std::size_t page_size = 1 << 20;   ///< 1 MiB pages, as in memcached
    std::size_t memory_limit = 64 << 20;  ///< total bytes of page memory
  };

  struct ClassStats {
    std::size_t chunk_size = 0;
    std::size_t pages = 0;
    std::size_t total_chunks = 0;
    std::size_t used_chunks = 0;
  };

  explicit SlabAllocator(const Config& cfg);

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  /// Allocates a chunk able to hold `size` bytes. Returns nullptr when the
  /// right class has no free chunk and the memory limit forbids another
  /// page — the caller (LruStore) must then evict and retry.
  [[nodiscard]] void* allocate(std::size_t size);

  /// Returns a chunk obtained from allocate() to its class's free list.
  void deallocate(void* p);

  /// Index of the slab class serving `size` bytes; throws if size exceeds
  /// the largest class (memcached rejects such items).
  [[nodiscard]] std::size_t class_for(std::size_t size) const;

  /// Usable bytes of a chunk in class `cls`.
  [[nodiscard]] std::size_t chunk_size(std::size_t cls) const;

  /// The slab class a live chunk belongs to.
  [[nodiscard]] static std::size_t class_of(const void* p);

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::size_t memory_used() const noexcept { return used_bytes_; }
  [[nodiscard]] std::size_t memory_limit() const noexcept {
    return cfg_.memory_limit;
  }
  [[nodiscard]] ClassStats stats(std::size_t cls) const;

  /// Largest item payload this allocator can store.
  [[nodiscard]] std::size_t max_item_size() const;

 private:
  // Each chunk is prefixed by a hidden header carrying its class id so that
  // deallocate() does not need the size back.
  struct ChunkHeader {
    std::uint32_t class_id;
    std::uint32_t magic;  // guards against double free / foreign pointers
  };
  static constexpr std::uint32_t kMagicLive = 0x51ab51abu;
  static constexpr std::uint32_t kMagicFree = 0xdeadbeefu;
  static constexpr std::size_t kHeaderSize =
      (sizeof(ChunkHeader) + 7) / 8 * 8;  // keep chunks 8-byte aligned

  struct SlabClass {
    std::size_t chunk_size = 0;  // includes the hidden header
    std::vector<void*> free_list;
    std::size_t pages = 0;
    std::size_t total_chunks = 0;
    std::size_t used_chunks = 0;
  };

  /// Carves one new page for class `cls`; returns false on memory limit.
  bool grow(std::size_t cls);

  Config cfg_;
  std::vector<SlabClass> classes_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::size_t used_bytes_ = 0;
};

}  // namespace mclat::cache
