// lru_store.h — a memcached-like key-value store: hash table + per-class LRU
// eviction over slab-allocated items.
//
// Faithful to the aspects of memcached that matter to the paper:
//   * items live in slab chunks (slab_allocator.h), one item per chunk;
//   * each slab class maintains its own LRU list, and an insertion that
//     cannot get a chunk evicts from the *same class's* tail (this is what
//     produces the hit-rate-vs-memory curve, and its pathologies, that the
//     related work — Cliffhanger, Dynacache — optimises);
//   * items carry an optional TTL, checked lazily on access;
//   * get/set/delete plus hit/miss/eviction/expiry counters.
//
// The index is a flat open-addressing table (flat_index.h) keyed by the
// fnv1a64 hash the caller already computed — no per-item node allocation,
// probes are linear cache-line scans. Proven sample-for-sample against the
// previous std::unordered_map implementation, preserved verbatim in
// bench/legacy_cache.h (tests/cache/test_flat_index_twin.cpp).
//
// The cluster simulator's "real cache" mode runs one LruStore per simulated
// Memcached server so the miss ratio r *emerges* from key popularity and
// capacity instead of being a model input.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "cache/flat_index.h"
#include "cache/slab_allocator.h"
#include "hashing/hashes.h"

namespace mclat::cache {

struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t set_failures = 0;  ///< item too large or class fully starved
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t deletes = 0;
  /// Bytes of live items (header + key + value), the store-side authority
  /// for occupancy: the slab allocator only knows about chunk pages, not
  /// which chunks hold live items. A level, not a counter — reset_stats()
  /// preserves it.
  std::uint64_t resident_bytes = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
  }
  [[nodiscard]] double miss_ratio() const noexcept {
    return gets == 0 ? 0.0 : 1.0 - hit_ratio();
  }
};

class LruStore {
 public:
  explicit LruStore(const SlabAllocator::Config& cfg = {});

  LruStore(const LruStore&) = delete;
  LruStore& operator=(const LruStore&) = delete;
  ~LruStore();

  /// Inserts or replaces. `ttl` in seconds of cache-local time (`now`);
  /// ttl <= 0 means no expiry. Returns false when the item can never fit or
  /// eviction could not free a chunk.
  bool set(std::string_view key, std::string_view value, double now = 0.0,
           double ttl = 0.0);

  /// Inserts or replaces an item whose value is `value_bytes` of filler
  /// ('v'). Occupancy, slab class, eviction and hit/miss behaviour are
  /// byte-identical to set() with a real value of that size — but the
  /// caller never materialises the payload, so simulators that only need
  /// the cache's *capacity* behaviour (the cluster real-cache refill path)
  /// stop allocating value-sized strings on every miss.
  bool set_sized(std::string_view key, std::size_t value_bytes,
                 double now = 0.0, double ttl = 0.0);

  /// set_sized with the key's fnv1a64 hash already in hand (e.g. from a
  /// workload::KeyTable). The index hashes with fnv1a64, so the replace
  /// probe reuses `key_hash` instead of re-walking the key bytes. (Named
  /// distinctly: an overload would be ambiguous with set_sized's
  /// key/bytes/now signature under integral conversions.)
  bool set_sized_hashed(std::string_view key, std::uint64_t key_hash,
                        std::size_t value_bytes, double now = 0.0,
                        double ttl = 0.0);

  /// Looks the key up, honouring expiry, and promotes it to MRU.
  [[nodiscard]] std::optional<std::string_view> get(std::string_view key,
                                                    double now = 0.0) {
    return get(key, hashing::fnv1a64(key), now);
  }

  /// get() with the key's fnv1a64 hash precomputed: the hot-path form for
  /// callers that already hold the hash the key→server mapper derived.
  [[nodiscard]] std::optional<std::string_view> get(std::string_view key,
                                                    std::uint64_t key_hash,
                                                    double now);

  /// True if present (and not expired) without promoting.
  [[nodiscard]] bool contains(std::string_view key, double now = 0.0) const {
    return contains(key, hashing::fnv1a64(key), now);
  }

  /// contains() with the key's fnv1a64 hash precomputed.
  [[nodiscard]] bool contains(std::string_view key, std::uint64_t key_hash,
                              double now) const;

  /// Removes the key; returns true if it existed.
  bool remove(std::string_view key) {
    return remove(key, hashing::fnv1a64(key));
  }

  /// remove() with the key's fnv1a64 hash precomputed, mirroring the
  /// get/set_sized_hashed convention.
  bool remove(std::string_view key, std::uint64_t key_hash);

  /// Drops every item.
  void flush();

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SlabAllocator& allocator() const noexcept {
    return slabs_;
  }
  /// Cumulative index probe-length statistics (cache.index.probe_len).
  [[nodiscard]] const IndexStats& index_stats() const noexcept {
    return index_.probe_stats();
  }
  void reset_stats() noexcept {
    const std::uint64_t resident = stats_.resident_bytes;
    stats_ = StoreStats{};
    stats_.resident_bytes = resident;
  }

 private:
  // Item layout inside a slab chunk: [ItemHeader][key bytes][value bytes].
  // Deliberately does NOT carry the key hash: sizeof(ItemHeader) feeds the
  // slab-class computation, so growing it would shift every item's class
  // and the emergent miss ratios with it. The hash lives in the index slot
  // instead (flat_index.h), which is also where probes want it.
  struct ItemHeader {
    ItemHeader* lru_prev;
    ItemHeader* lru_next;
    double expiry;  // absolute time; 0 = never
    std::uint32_t key_len;
    std::uint32_t value_len;

    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] char* value_data() noexcept { return key_data() + key_len; }
    [[nodiscard]] const char* value_data() const noexcept {
      return key_data() + key_len;
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
    [[nodiscard]] std::string_view value() const noexcept {
      return {value_data(), value_len};
    }
    [[nodiscard]] bool expired(double now) const noexcept {
      return expiry > 0.0 && now >= expiry;
    }
  };

  struct LruList {
    ItemHeader* head = nullptr;  // MRU
    ItemHeader* tail = nullptr;  // LRU
  };

  void lru_unlink(ItemHeader* it, std::size_t cls) noexcept;
  void lru_push_front(ItemHeader* it, std::size_t cls) noexcept;
  /// Unlinks, un-indexes and frees `it`. `key_hash` must be the fnv1a64 of
  /// it->key(); paths that do not hold it (eviction, expiry sweep from an
  /// LRU tail) recompute it — exactly the key walk the unordered_map's
  /// erase-by-key paid on those same paths.
  void destroy(ItemHeader* it, std::uint64_t key_hash);
  /// Shared insert path: allocates (evicting as needed), fills the header
  /// and key, links the item. The value region is left for the caller.
  ItemHeader* emplace_item(std::string_view key, std::uint64_t key_hash,
                           std::size_t value_bytes, double now, double ttl);
  /// Evicts the LRU tail of class `cls`; returns false if the list is empty.
  bool evict_one(std::size_t cls);

  SlabAllocator slabs_;
  // Keys reachable from the index view into chunk memory, which is stable
  // for the item's lifetime; entries are erased before their chunk is
  // recycled.
  FlatIndex<ItemHeader> index_;
  std::vector<LruList> lru_;  // one list per slab class
  StoreStats stats_;
};

}  // namespace mclat::cache
