// lru_store.h — a memcached-like key-value store: hash table + per-class LRU
// eviction over slab-allocated items.
//
// Faithful to the aspects of memcached that matter to the paper:
//   * items live in slab chunks (slab_allocator.h), one item per chunk;
//   * each slab class maintains its own LRU list, and an insertion that
//     cannot get a chunk evicts from the *same class's* tail (this is what
//     produces the hit-rate-vs-memory curve, and its pathologies, that the
//     related work — Cliffhanger, Dynacache — optimises);
//   * items carry an optional TTL, checked lazily on access;
//   * get/set/delete plus hit/miss/eviction/expiry counters.
//
// The cluster simulator's "real cache" mode runs one LruStore per simulated
// Memcached server so the miss ratio r *emerges* from key popularity and
// capacity instead of being a model input.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cache/slab_allocator.h"
#include "hashing/hashes.h"

namespace mclat::cache {

struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t set_failures = 0;  ///< item too large or class fully starved
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t deletes = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
  }
  [[nodiscard]] double miss_ratio() const noexcept {
    return gets == 0 ? 0.0 : 1.0 - hit_ratio();
  }
};

class LruStore {
 public:
  explicit LruStore(const SlabAllocator::Config& cfg = {});

  LruStore(const LruStore&) = delete;
  LruStore& operator=(const LruStore&) = delete;
  ~LruStore();

  /// Inserts or replaces. `ttl` in seconds of cache-local time (`now`);
  /// ttl <= 0 means no expiry. Returns false when the item can never fit or
  /// eviction could not free a chunk.
  bool set(std::string_view key, std::string_view value, double now = 0.0,
           double ttl = 0.0);

  /// Inserts or replaces an item whose value is `value_bytes` of filler
  /// ('v'). Occupancy, slab class, eviction and hit/miss behaviour are
  /// byte-identical to set() with a real value of that size — but the
  /// caller never materialises the payload, so simulators that only need
  /// the cache's *capacity* behaviour (the cluster real-cache refill path)
  /// stop allocating value-sized strings on every miss.
  bool set_sized(std::string_view key, std::size_t value_bytes,
                 double now = 0.0, double ttl = 0.0);

  /// set_sized with the key's fnv1a64 hash already in hand (e.g. from a
  /// workload::KeyTable). The index hashes with fnv1a64, so the replace
  /// probe reuses `key_hash` instead of re-walking the key bytes. (Named
  /// distinctly: an overload would be ambiguous with set_sized's
  /// key/bytes/now signature under integral conversions.)
  bool set_sized_hashed(std::string_view key, std::uint64_t key_hash,
                        std::size_t value_bytes, double now = 0.0,
                        double ttl = 0.0);

  /// Looks the key up, honouring expiry, and promotes it to MRU.
  [[nodiscard]] std::optional<std::string_view> get(std::string_view key,
                                                    double now = 0.0) {
    return get(key, hashing::fnv1a64(key), now);
  }

  /// get() with the key's fnv1a64 hash precomputed: the hot-path form for
  /// callers that already hold the hash the key→server mapper derived.
  [[nodiscard]] std::optional<std::string_view> get(std::string_view key,
                                                    std::uint64_t key_hash,
                                                    double now);

  /// True if present (and not expired) without promoting.
  [[nodiscard]] bool contains(std::string_view key, double now = 0.0) const {
    return contains(key, hashing::fnv1a64(key), now);
  }

  /// contains() with the key's fnv1a64 hash precomputed.
  [[nodiscard]] bool contains(std::string_view key, std::uint64_t key_hash,
                              double now) const;

  /// Removes the key; returns true if it existed.
  bool remove(std::string_view key);

  /// Drops every item.
  void flush();

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SlabAllocator& allocator() const noexcept {
    return slabs_;
  }
  void reset_stats() noexcept { stats_ = StoreStats{}; }

 private:
  // Item layout inside a slab chunk: [ItemHeader][key bytes][value bytes].
  struct ItemHeader {
    ItemHeader* lru_prev;
    ItemHeader* lru_next;
    double expiry;  // absolute time; 0 = never
    std::uint32_t key_len;
    std::uint32_t value_len;

    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] char* value_data() noexcept { return key_data() + key_len; }
    [[nodiscard]] const char* value_data() const noexcept {
      return key_data() + key_len;
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
    [[nodiscard]] std::string_view value() const noexcept {
      return {value_data(), value_len};
    }
    [[nodiscard]] bool expired(double now) const noexcept {
      return expiry > 0.0 && now >= expiry;
    }
  };

  struct LruList {
    ItemHeader* head = nullptr;  // MRU
    ItemHeader* tail = nullptr;  // LRU
  };

  // The index hashes with fnv1a64 (deterministic across platforms, unlike
  // std::hash) and supports transparent lookup by {key, precomputed hash}
  // so the prehashed get/set overloads skip the per-probe key walk.
  struct Prehashed {
    std::string_view key;
    std::uint64_t hash;
  };
  struct KeyHasher {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view k) const noexcept {
      return static_cast<std::size_t>(hashing::fnv1a64(k));
    }
    [[nodiscard]] std::size_t operator()(const Prehashed& k) const noexcept {
      return static_cast<std::size_t>(k.hash);
    }
  };
  struct KeyEqual {
    using is_transparent = void;
    [[nodiscard]] bool operator()(std::string_view a,
                                  std::string_view b) const noexcept {
      return a == b;
    }
    [[nodiscard]] bool operator()(const Prehashed& a,
                                  std::string_view b) const noexcept {
      return a.key == b;
    }
    [[nodiscard]] bool operator()(std::string_view a,
                                  const Prehashed& b) const noexcept {
      return a == b.key;
    }
  };

  void lru_unlink(ItemHeader* it, std::size_t cls) noexcept;
  void lru_push_front(ItemHeader* it, std::size_t cls) noexcept;
  void destroy(ItemHeader* it);
  /// Shared insert path: allocates (evicting as needed), fills the header
  /// and key, links the item. The value region is left for the caller.
  ItemHeader* emplace_item(std::string_view key, std::uint64_t key_hash,
                           std::size_t value_bytes, double now, double ttl);
  /// Evicts the LRU tail of class `cls`; returns false if the list is empty.
  bool evict_one(std::size_t cls);

  SlabAllocator slabs_;
  // Keys in the index view into chunk memory, which is stable for the item's
  // lifetime; entries are erased before their chunk is recycled.
  std::unordered_map<std::string_view, ItemHeader*, KeyHasher, KeyEqual>
      index_;
  std::vector<LruList> lru_;  // one list per slab class
  StoreStats stats_;
};

}  // namespace mclat::cache
