// end_to_end.h — the full fork-join Memcached cluster simulation (Mode B).
//
// Unlike the workload-driven testbed (workload_driven.h), which mirrors the
// paper's measurement methodology, this simulator runs the *entire* request
// path explicitly:
//
//   end-user request (Poisson) → N keys → key→server mapping → half-RTT
//   network delay → per-server FIFO exp(μ_S) queue → hit? value returns :
//   miss relayed to database → half-RTT back → request completes when its
//   last key's value arrives (fork-join).
//
// Misses can be decided two ways:
//   * kBernoulli — iid coin with probability r (the model's assumption);
//   * kRealCache — each server runs a real LruStore (slab allocator +
//     per-class LRU); the miss ratio *emerges* from Zipf popularity and
//     cache capacity, and DB fetches refill the cache. This is ablation A2:
//     does the Bernoulli abstraction distort T_D(N)?
//
// The database is an infinite-server exp(μ_D) stage by default (the paper's
// eq.-19 approximation), a real single-server M/M/1 queue (kSingleServer)
// to expose where that approximation breaks, or an M/M/c pool of
// `db_servers` shards (kPooled) — the provisioning that actually makes
// eq. (19) true (see core::shards_for_offloaded_db).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/common_config.h"
#include "cluster/engine/hedge.h"
#include "cluster/modes.h"
#include "core/config.h"
#include "obs/recorder.h"
#include "stats/summary.h"

namespace mclat::cluster {

struct EndToEndConfig {
  core::SystemConfig system;
  /// End-user request arrival rate; 0 derives Λ/N so the offered key rate
  /// matches the system config.
  double request_rate = 0.0;
  MissMode miss_mode = MissMode::kBernoulli;
  DbMode db_mode = DbMode::kInfiniteServer;
  /// Shards/threads of the kPooled database (one shared M/M/c queue).
  unsigned db_servers = 4;
  MapperKind mapper = MapperKind::kWeighted;

  /// Event-driven redundant fan-out and hedging (Poloczek & Ciucu's
  /// replication analysis, run through the real queueing dynamics instead
  /// of the pool-resampling assemble_requests_redundant): each key is
  /// dispatched to `redundancy.degree()` independently chosen servers —
  /// immediately, or deadline-triggered when the trigger is kHedged — and
  /// the first replica to finish wins. Losers either keep occupying their
  /// queues (kLetLosersRun: the self-queueing cost of replication in full)
  /// or are cancelled on the win (kCancelOnWin). The default policy is the
  /// plain fork-join path (byte-identical to pre-engine behavior).
  /// Replication requires kBernoulli misses — replicated real caches are
  /// not modeled. See engine/hedge.h.
  RedundancyPolicy redundancy;

  /// Measurement window, seed, real-cache sizing and miss coalescing —
  /// the knobs shared by all three cluster simulators (common_config.h).
  /// Note on coalescing here: under kBernoulli misses keys carry no
  /// identity (rank 0), so kPerServer degenerates to single-flight per
  /// server — the single-hot-key delayed-hit regime
  /// (tests/cluster/test_delayed_hit_model.cpp validates it in closed form).
  CommonConfig common;

  // --- real-cache mode parameters ---------------------------------------
  std::uint64_t keyspace_size = 200'000;
  double zipf_exponent = 0.99;

  /// Per-stage observability (null by default): per-server queue-wait /
  /// service splits and utilisation, per-request stage maxima
  /// ("stage.*_us"), the fork-join synchronization gap, and the miss-path
  /// database sojourn. Only measured-window requests are recorded.
  obs::Recorder recorder;

  [[nodiscard]] double effective_request_rate() const {
    return request_rate > 0.0
               ? request_rate
               : system.total_key_rate /
                     static_cast<double>(system.keys_per_request);
  }
};

struct EndToEndResult {
  stats::MeanCI network;   ///< E[T_N(N)] with CI
  stats::MeanCI server;    ///< E[T_S(N)]
  stats::MeanCI database;  ///< E[T_D(N)]
  stats::MeanCI total;     ///< E[T(N)]
  std::vector<double> total_samples;  ///< per-request T(N) (measured window)
  double measured_miss_ratio = 0.0;
  std::vector<double> server_utilization;
  std::uint64_t requests_completed = 0;
  std::uint64_t keys_completed = 0;
  std::uint64_t events_executed = 0;
  /// Misses (measured window) that submitted a database fetch. With
  /// coalescing off every miss does, so this equals the measured miss
  /// count; with coalescing on it is the *effective* DB arrival count.
  std::uint64_t measured_db_fetches = 0;
  /// Misses (measured window) parked behind an in-flight fetch (delayed
  /// hits). Conservation: measured misses == fetches + delayed hits.
  std::uint64_t measured_delayed_hits = 0;
  // --- replica lifecycle (all zero when redundancy.degree() == 1) --------
  /// Hedge deadlines that fired and dispatched backup replicas (kHedged).
  std::uint64_t hedges_fired = 0;
  /// Losing replicas pulled out of the system — arrival hop cancelled or
  /// removed from a server FIFO — on their group's win (kCancelOnWin).
  std::uint64_t replicas_cancelled = 0;
  /// Total service seconds burned by losing replicas that ran to
  /// completion (a replica in service is never preempted).
  double replica_wasted_service = 0.0;
  /// Membership-churn outcome (default-empty unless common.churn is
  /// active): event/failover/retire counts, refill-storm bytes, per-epoch
  /// miss-ratio windows and end-of-run occupancy. See cluster/membership.h.
  ChurnStats churn;
};

class EndToEndSim {
 public:
  explicit EndToEndSim(EndToEndConfig cfg);

  /// Runs warm-up + measurement, drains in-flight requests, and reports
  /// statistics over requests that *started* inside the measurement window.
  [[nodiscard]] EndToEndResult run();

  [[nodiscard]] const EndToEndConfig& config() const noexcept { return cfg_; }

 private:
  EndToEndConfig cfg_;
};

}  // namespace mclat::cluster
