// end_to_end.h — the full fork-join Memcached cluster simulation (Mode B).
//
// Unlike the workload-driven testbed (workload_driven.h), which mirrors the
// paper's measurement methodology, this simulator runs the *entire* request
// path explicitly:
//
//   end-user request (Poisson) → N keys → key→server mapping → half-RTT
//   network delay → per-server FIFO exp(μ_S) queue → hit? value returns :
//   miss relayed to database → half-RTT back → request completes when its
//   last key's value arrives (fork-join).
//
// Misses can be decided two ways:
//   * kBernoulli — iid coin with probability r (the model's assumption);
//   * kRealCache — each server runs a real LruStore (slab allocator +
//     per-class LRU); the miss ratio *emerges* from Zipf popularity and
//     cache capacity, and DB fetches refill the cache. This is ablation A2:
//     does the Bernoulli abstraction distort T_D(N)?
//
// The database is an infinite-server exp(μ_D) stage by default (the paper's
// eq.-19 approximation), a real single-server M/M/1 queue (kSingleServer)
// to expose where that approximation breaks, or an M/M/c pool of
// `db_servers` shards (kPooled) — the provisioning that actually makes
// eq. (19) true (see core::shards_for_offloaded_db).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/modes.h"
#include "core/config.h"
#include "obs/recorder.h"
#include "stats/summary.h"

namespace mclat::cluster {

struct EndToEndConfig {
  core::SystemConfig system;
  /// End-user request arrival rate; 0 derives Λ/N so the offered key rate
  /// matches the system config.
  double request_rate = 0.0;
  MissMode miss_mode = MissMode::kBernoulli;
  DbMode db_mode = DbMode::kInfiniteServer;
  /// Shards/threads of the kPooled database (one shared M/M/c queue).
  unsigned db_servers = 4;
  MapperKind mapper = MapperKind::kWeighted;

  /// Event-driven redundant fan-out (Poloczek & Ciucu's replication
  /// analysis, run through the real queueing dynamics instead of the
  /// pool-resampling assemble_requests_redundant): each key is dispatched
  /// to `redundancy` independently chosen servers and the first replica to
  /// finish wins. Unlike the pool variant, the losing replicas keep
  /// occupying their queues, so the self-queueing cost of replication is
  /// captured, not assumed away. 1 = the plain fork-join path
  /// (byte-identical to pre-engine behavior). Requires kBernoulli misses —
  /// replicated real caches are not modeled.
  unsigned redundancy = 1;

  /// Delayed-hit miss coalescing (kPerServer): a key that misses while a
  /// database fetch for the same key is already in flight at its server
  /// parks behind that fetch instead of submitting new DB work, and the
  /// fetch's completion releases every waiter at once (refilling the cache
  /// exactly once in real-cache mode). kOff reproduces the paper's model —
  /// every miss an independent DB visit — byte-identically to the
  /// pre-coalescing simulator. Under kBernoulli misses keys carry no
  /// identity (rank 0), so coalescing degenerates to single-flight per
  /// server: the single-hot-key delayed-hit regime
  /// (tests/cluster/test_delayed_hit_model.cpp validates it in closed form).
  MissCoalescing coalescing = MissCoalescing::kOff;

  // --- real-cache mode parameters ---------------------------------------
  std::uint64_t keyspace_size = 200'000;
  double zipf_exponent = 0.99;
  std::size_t cache_bytes_per_server = 8u << 20;
  std::uint32_t max_value_bytes = 4096;

  double warmup_time = 1.0;
  double measure_time = 10.0;
  std::uint64_t seed = 1;

  /// Per-stage observability (null by default): per-server queue-wait /
  /// service splits and utilisation, per-request stage maxima
  /// ("stage.*_us"), the fork-join synchronization gap, and the miss-path
  /// database sojourn. Only measured-window requests are recorded.
  obs::Recorder recorder;

  [[nodiscard]] double effective_request_rate() const {
    return request_rate > 0.0
               ? request_rate
               : system.total_key_rate /
                     static_cast<double>(system.keys_per_request);
  }
};

struct EndToEndResult {
  stats::MeanCI network;   ///< E[T_N(N)] with CI
  stats::MeanCI server;    ///< E[T_S(N)]
  stats::MeanCI database;  ///< E[T_D(N)]
  stats::MeanCI total;     ///< E[T(N)]
  std::vector<double> total_samples;  ///< per-request T(N) (measured window)
  double measured_miss_ratio = 0.0;
  std::vector<double> server_utilization;
  std::uint64_t requests_completed = 0;
  std::uint64_t keys_completed = 0;
  std::uint64_t events_executed = 0;
  /// Misses (measured window) that submitted a database fetch. With
  /// coalescing off every miss does, so this equals the measured miss
  /// count; with coalescing on it is the *effective* DB arrival count.
  std::uint64_t measured_db_fetches = 0;
  /// Misses (measured window) parked behind an in-flight fetch (delayed
  /// hits). Conservation: measured misses == fetches + delayed hits.
  std::uint64_t measured_delayed_hits = 0;
};

class EndToEndSim {
 public:
  explicit EndToEndSim(EndToEndConfig cfg);

  /// Runs warm-up + measurement, drains in-flight requests, and reports
  /// statistics over requests that *started* inside the measurement window.
  [[nodiscard]] EndToEndResult run();

  [[nodiscard]] const EndToEndConfig& config() const noexcept { return cfg_; }

 private:
  EndToEndConfig cfg_;
};

}  // namespace mclat::cluster
