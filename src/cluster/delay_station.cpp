#include "cluster/delay_station.h"

#include <utility>

#include "math/numerics.h"

namespace mclat::cluster {

DelayStation::DelayStation(sim::Simulator& sim, dist::DistributionPtr service,
                           dist::Rng rng, DepartureHandler on_departure)
    : sim_(sim), service_(std::move(service)), rng_(rng),
      on_departure_(std::move(on_departure)) {
  math::require(service_ != nullptr, "DelayStation: null service dist");
  math::require(static_cast<bool>(on_departure_),
                "DelayStation: null departure handler");
}

void DelayStation::submit(std::uint64_t job_id) {
  const sim::Time arrival = sim_.now();
  const double duration = service_->sample(rng_);
  ++in_flight_;
  sim_.schedule_in(duration, [this, job_id, arrival] {
    --in_flight_;
    ++completed_;
    sim::Departure d;
    d.job_id = job_id;
    d.arrival = arrival;
    d.service_start = arrival;  // no queueing by construction
    d.departure = sim_.now();
    sojourn_.add(d.sojourn_time());
    on_departure_(d);
  });
}

}  // namespace mclat::cluster
