// membership.h — deterministic mid-run cluster membership timeline.
//
// The paper's cluster model (and PRs 1-9 of this repo) fix the server set at
// trial start. Production Memcached clusters do not: nodes join cold, fail
// abruptly, and are drained for maintenance, each event rebalancing the
// consistent-hashing ring and shifting the load split {p_j} mid-run.
// `MembershipSchedule` makes that a first-class, config-driven scenario: an
// ordered list of ChurnEvents applied at fixed virtual times, identical on
// every run — churn is part of the experiment definition, never a random
// outcome, so trials stay reproducible and shard-count invariant.
//
// Semantics (implemented by the sharded cluster engine, DESIGN.md §4k):
//   * kJoin  — a server joins with a cold (empty) cache. The registry
//     revives the lowest retired slot if one exists, else allocates a fresh
//     ring index. New keys route to it immediately; its misses refill the
//     empty store (the "refill storm" the asymptotic theory ignores).
//   * kLeave — abrupt departure. The server's vnodes leave the ring at
//     once; its queued and in-service jobs are lost and fail over to the
//     ring successor (re-routed under the post-event ring). Jobs already in
//     the DB stage complete normally but skip the refill.
//   * kDrain — planned decommission. Routing stops (vnodes leave the ring)
//     but queued and in-flight work finishes normally; the slot is retired
//     once its last job departs.
//
// A schedule is validated at construction (field-naming messages, matching
// the RedundancyPolicy convention) and is inert when empty: `--churn` unset
// leaves every simulator byte-identical to the static-membership goldens.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "math/numerics.h"

namespace mclat::cluster {

enum class ChurnKind : std::uint8_t { kJoin, kLeave, kDrain };

/// One membership event. `server` names the ring slot for kLeave/kDrain and
/// is ignored for kJoin (the registry picks the slot deterministically).
struct ChurnEvent {
  double time = 0.0;
  ChurnKind kind = ChurnKind::kJoin;
  std::size_t server = 0;
};

class MembershipSchedule {
 public:
  MembershipSchedule() = default;

  explicit MembershipSchedule(std::vector<ChurnEvent> events)
      : events_(std::move(events)) {
    double prev = 0.0;
    for (const ChurnEvent& e : events_) {
      math::require(std::isfinite(e.time) && e.time > 0.0,
                    "MembershipSchedule: event time must be finite and > 0");
      math::require(e.time >= prev,
                    "MembershipSchedule: event times must be non-decreasing");
      prev = e.time;
    }
  }

  /// True iff the schedule has at least one event — the engine-selection
  /// and golden-identity switch: inactive schedules change nothing.
  [[nodiscard]] bool active() const noexcept { return !events_.empty(); }

  [[nodiscard]] const std::vector<ChurnEvent>& events() const noexcept {
    return events_;
  }

  /// Number of kJoin events — the upper bound on fresh ring slots the
  /// engine pre-provisions (slot reuse can only need fewer).
  [[nodiscard]] std::size_t join_count() const noexcept {
    std::size_t n = 0;
    for (const ChurnEvent& e : events_) {
      if (e.kind == ChurnKind::kJoin) ++n;
    }
    return n;
  }

  /// Time of the last event (0.0 when empty) — horizon validation.
  [[nodiscard]] double last_time() const noexcept {
    return events_.empty() ? 0.0 : events_.back().time;
  }

  /// Parses the CLI spec: comma-separated `join@T`, `leave:J@T`, `drain:J@T`
  /// with T in simulated seconds and J a ring slot index, e.g.
  /// `--churn "join@2.5,leave:0@4,drain:3@6"`. Times must be > 0 and
  /// non-decreasing.
  static MembershipSchedule parse(std::string_view spec) {
    std::vector<ChurnEvent> events;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string_view::npos) comma = spec.size();
      std::string_view tok = spec.substr(pos, comma - pos);
      pos = comma + 1;
      while (!tok.empty() && tok.front() == ' ') tok.remove_prefix(1);
      while (!tok.empty() && tok.back() == ' ') tok.remove_suffix(1);
      if (tok.empty()) continue;
      events.push_back(parse_event(tok));
    }
    math::require(!events.empty(),
                  "MembershipSchedule: spec has no events (expected "
                  "\"join@T,leave:J@T,drain:J@T\")");
    return MembershipSchedule(std::move(events));
  }

 private:
  static ChurnEvent parse_event(std::string_view tok) {
    const std::size_t at = tok.find('@');
    math::require(at != std::string_view::npos,
                  "MembershipSchedule: event is missing '@time': " +
                      std::string(tok));
    std::string_view head = tok.substr(0, at);
    const std::string time_str(tok.substr(at + 1));
    ChurnEvent ev;
    std::size_t parsed = 0;
    try {
      ev.time = std::stod(time_str, &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    math::require(parsed == time_str.size() && !time_str.empty(),
                  "MembershipSchedule: bad event time: " + std::string(tok));
    const std::size_t colon = head.find(':');
    const std::string_view kind =
        colon == std::string_view::npos ? head : head.substr(0, colon);
    if (kind == "join") {
      math::require(colon == std::string_view::npos,
                    "MembershipSchedule: join takes no server index: " +
                        std::string(tok));
      ev.kind = ChurnKind::kJoin;
      return ev;
    }
    math::require(kind == "leave" || kind == "drain",
                  "MembershipSchedule: unknown event kind (expected join, "
                  "leave or drain): " +
                      std::string(tok));
    ev.kind = kind == "leave" ? ChurnKind::kLeave : ChurnKind::kDrain;
    math::require(colon != std::string_view::npos && colon + 1 < head.size(),
                  "MembershipSchedule: leave/drain needs a server index "
                  "(\"leave:J@T\"): " +
                      std::string(tok));
    const std::string server_str(head.substr(colon + 1));
    try {
      ev.server = std::stoul(server_str, &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    math::require(parsed == server_str.size(),
                  "MembershipSchedule: bad server index: " + std::string(tok));
    return ev;
  }

  std::vector<ChurnEvent> events_;
};

/// One membership epoch's measurement window (between consecutive churn
/// events; the last window runs to the horizon). `miss_ratio` of the final
/// window is what converges to the Ji/Quan/Tan asymptotic prediction;
/// `p99_key_latency_us` of a post-join window exposes the refill-storm
/// transient the asymptotics ignore.
struct ChurnEpochWindow {
  std::uint64_t epoch = 0;        ///< ring epoch() during the window
  double start_time = 0.0;        ///< virtual time the window opened
  std::uint64_t keys = 0;         ///< measured keys completed in-window
  std::uint64_t misses = 0;
  double miss_ratio = 0.0;
  double p99_key_latency_us = 0.0;  ///< streaming P² estimate
};

/// Aggregated churn observability, attached to the simulator results when a
/// schedule is active (and only then — result layout is otherwise
/// untouched).
struct ChurnStats {
  std::uint64_t events = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t drains = 0;
  std::uint64_t failovers = 0;          ///< jobs bounced off a dead server
  std::uint64_t slots_retired = 0;      ///< slots fully decommissioned
  std::uint64_t refill_storm_bytes = 0; ///< bytes refilled into cold stores
  std::uint64_t ranks_remapped = 0;     ///< KeyTable ranks that moved server
  std::uint64_t live_servers_end = 0;
  std::uint64_t resident_items_end = 0; ///< live cache items at horizon
  std::uint64_t resident_bytes_end = 0;
  std::vector<ChurnEpochWindow> epochs;
};

}  // namespace mclat::cluster
