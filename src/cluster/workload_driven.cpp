#include "cluster/workload_driven.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "cluster/delay_station.h"
#include "dist/discrete.h"
#include "exec/seed_stream.h"
#include "dist/exponential.h"
#include "math/numerics.h"
#include "sim/source.h"
#include "sim/station.h"
#include "stats/reservoir.h"

namespace mclat::cluster {

namespace {

stats::MeanCI ci_of(const std::vector<double>& xs) {
  stats::Welford w;
  for (const double x : xs) w.add(x);
  return stats::mean_ci(w);
}

// Flat {data, size} handles onto the measurement pools: the assembly loops
// draw from pools millions of times, and resolving vector-of-vectors
// indirections per draw costs more than the draw itself. Zero-share servers
// keep an empty handle that is never sampled (their alias mass is zero).
struct PoolRef {
  const double* data = nullptr;
  std::uint64_t size = 0;
};

std::vector<PoolRef> pool_refs(const std::vector<std::vector<double>>& pools) {
  std::vector<PoolRef> refs(pools.size());
  for (std::size_t j = 0; j < pools.size(); ++j) {
    refs[j] = PoolRef{pools[j].data(), pools[j].size()};
  }
  return refs;
}

}  // namespace

stats::MeanCI AssembledRequests::network_ci() const { return ci_of(network); }
stats::MeanCI AssembledRequests::server_ci() const { return ci_of(server); }
stats::MeanCI AssembledRequests::database_ci() const { return ci_of(database); }
stats::MeanCI AssembledRequests::total_ci() const { return ci_of(total); }

WorkloadDrivenSim::WorkloadDrivenSim(WorkloadDrivenConfig cfg)
    : cfg_(std::move(cfg)) {
  math::require(cfg_.warmup_time >= 0.0 && cfg_.measure_time > 0.0,
                "WorkloadDrivenSim: bad time horizon");
  math::require(cfg_.pool_cap > 0, "WorkloadDrivenSim: pool_cap must be > 0");
}

MeasurementPools WorkloadDrivenSim::run() {
  const core::SystemConfig& sys = cfg_.system;
  const std::vector<double> shares = sys.shares();
  MeasurementPools pools;
  pools.server_sojourns.resize(shares.size());
  pools.server_utilization.resize(shares.size(), 0.0);

  dist::Rng master(cfg_.seed);

  // ---- per-server GI^X/M/1 simulations (independent, run sequentially) --
  for (std::size_t j = 0; j < shares.size(); ++j) {
    if (shares[j] <= 0.0) continue;
    const workload::ArrivalSpec spec = sys.arrival_for_share(shares[j]);
    sim::Simulator s;
    dist::Rng station_rng = master.split();
    dist::Rng source_rng = master.split();
    dist::Rng pool_rng = master.split();
    stats::Reservoir pool(cfg_.pool_cap);
    const double measure_from = cfg_.warmup_time;
    std::uint64_t next_job = 0;

    sim::ServiceStation station(
        s,
        std::make_unique<dist::Exponential>(sys.rate_of(j)),
        station_rng,
        [&](const sim::Departure& d) {
          if (d.arrival >= measure_from) {
            pool.add(d.sojourn_time(), pool_rng);
          }
        });
    const std::string prefix = "server." + std::to_string(j);
    station.observe_split(cfg_.recorder.latency(prefix + ".wait_us"),
                          cfg_.recorder.latency(prefix + ".service_us"),
                          measure_from);
    sim::BatchSource source(
        s, spec.make_gap(), spec.make_batch(), source_rng,
        [&](std::uint64_t batch) {
          for (std::uint64_t k = 0; k < batch; ++k) station.arrive(next_job++);
        });
    source.start();
    s.run_until(cfg_.warmup_time + cfg_.measure_time);
    source.stop();

    pools.server_sojourns[j] = pool.take();
    pools.server_utilization[j] = station.utilization(s.now());
    pools.total_keys += station.completed();
    obs::set_gauge(cfg_.recorder.gauge(prefix + ".utilization"),
                   pools.server_utilization[j]);
    obs::bump(cfg_.recorder.counter("sim.keys_completed"),
              station.completed());
  }

  // ---- database simulation: Poisson misses into an M/G/∞ stage ----------
  if (sys.miss_ratio > 0.0) {
    const double miss_rate = sys.miss_ratio * sys.total_key_rate;
    pools.measured_miss_rate_hz = miss_rate;
    sim::Simulator s;
    dist::Rng db_rng = master.split();
    dist::Rng arr_rng = master.split();
    dist::Rng pool_rng = master.split();
    stats::Reservoir pool(cfg_.pool_cap);
    obs::LatencyStat* db_stat = cfg_.recorder.latency("db.sojourn_us");
    obs::Counter* db_misses = cfg_.recorder.counter("db.misses");
    DelayStation db(s, std::make_unique<dist::Exponential>(sys.db_service_rate),
                    db_rng, [&](const sim::Departure& d) {
                      if (d.arrival >= cfg_.warmup_time) {
                        pool.add(d.sojourn_time(), pool_rng);
                        obs::observe(db_stat, obs::to_us(d.sojourn_time()));
                        obs::bump(db_misses);
                      }
                    });
    // Poisson miss arrivals. Rescheduling goes through a one-pointer
    // trampoline so the calendar stores 8 bytes inline instead of a fresh
    // std::function closure per miss.
    std::uint64_t job = 0;
    std::function<void()> arrival = [&] {
      db.submit(job++);
      s.schedule_in(arr_rng.exponential(miss_rate), [&arrival] { arrival(); });
    };
    s.schedule_in(arr_rng.exponential(miss_rate), [&arrival] { arrival(); });
    s.run_until(cfg_.warmup_time + cfg_.measure_time);
    pools.db_sojourns = pool.take();
  }
  return pools;
}

AssembledRequests assemble_requests(const MeasurementPools& pools,
                                    const core::SystemConfig& system,
                                    std::uint64_t requests,
                                    std::uint64_t n_keys, dist::Rng& rng,
                                    obs::Recorder recorder) {
  math::require(requests > 0 && n_keys > 0,
                "assemble_requests: need requests, n_keys > 0");
  const std::vector<double> shares = system.shares();
  for (std::size_t j = 0; j < shares.size(); ++j) {
    math::require(shares[j] <= 0.0 || !pools.server_sojourns[j].empty(),
                  "assemble_requests: empty pool for a loaded server");
  }
  math::require(system.miss_ratio == 0.0 || !pools.db_sojourns.empty(),
                "assemble_requests: miss_ratio > 0 but DB pool is empty");

  const dist::Discrete server_pick(shares);
  const std::vector<PoolRef> server_pools = pool_refs(pools.server_sojourns);
  const PoolRef db_pool{pools.db_sojourns.data(), pools.db_sojourns.size()};
  AssembledRequests out;
  out.network.reserve(requests);
  out.server.reserve(requests);
  out.database.reserve(requests);
  out.total.reserve(requests);

  obs::LatencyStat* st_network = recorder.latency("stage.network_us");
  obs::LatencyStat* st_server = recorder.latency("stage.server_us");
  obs::LatencyStat* st_db = recorder.latency("stage.database_us");
  obs::LatencyStat* st_total = recorder.latency("stage.total_us");
  obs::LatencyStat* st_gap = recorder.latency("request.sync_gap_us");
  obs::LatencyStat* st_slack = recorder.latency("request.sync_slack_us");
  obs::Counter* ct_keys = recorder.counter("assembly.keys");
  obs::Counter* ct_misses = recorder.counter("assembly.misses");

  for (std::uint64_t i = 0; i < requests; ++i) {
    double max_server = 0.0;
    double max_db = 0.0;
    double max_total = 0.0;
    double sum_total = 0.0;
    for (std::uint64_t k = 0; k < n_keys; ++k) {
      const std::size_t j = server_pick.sample(rng);
      const PoolRef& pool = server_pools[j];
      const double s = pool.data[rng.uniform_index(pool.size)];
      double d = 0.0;
      if (system.miss_ratio > 0.0 && rng.bernoulli(system.miss_ratio)) {
        d = db_pool.data[rng.uniform_index(db_pool.size)];
        obs::bump(ct_misses);
      }
      const double key_total = system.network_latency + s + d;
      max_server = std::max(max_server, s);
      max_db = std::max(max_db, d);
      max_total = std::max(max_total, key_total);
      sum_total += key_total;
    }
    out.network.push_back(system.network_latency);
    out.server.push_back(max_server);
    out.database.push_back(max_db);
    out.total.push_back(max_total);
    obs::observe(st_network, obs::to_us(system.network_latency));
    obs::observe(st_server, obs::to_us(max_server));
    obs::observe(st_db, obs::to_us(max_db));
    obs::observe(st_total, obs::to_us(max_total));
    obs::observe(st_gap,
                 obs::to_us(max_total -
                            sum_total / static_cast<double>(n_keys)));
    obs::observe(st_slack,
                 obs::to_us(system.network_latency + max_server + max_db -
                            max_total));
    obs::bump(ct_keys, n_keys);
  }
  return out;
}

AssembledRequests assemble_requests_redundant(
    const MeasurementPools& pools, const core::SystemConfig& system,
    std::uint64_t requests, std::uint64_t n_keys, unsigned redundancy,
    dist::Rng& rng) {
  math::require(redundancy >= 1,
                "assemble_requests_redundant: redundancy must be >= 1");
  math::require(requests > 0 && n_keys > 0,
                "assemble_requests_redundant: need requests, n_keys > 0");
  const std::vector<double> shares = system.shares();
  const dist::Discrete server_pick(shares);
  math::require(system.miss_ratio == 0.0 || !pools.db_sojourns.empty(),
                "assemble_requests_redundant: missing DB pool");
  const std::vector<PoolRef> server_pools = pool_refs(pools.server_sojourns);
  const PoolRef db_pool{pools.db_sojourns.data(), pools.db_sojourns.size()};
  AssembledRequests out;
  out.network.reserve(requests);
  out.server.reserve(requests);
  out.database.reserve(requests);
  out.total.reserve(requests);
  for (std::uint64_t i = 0; i < requests; ++i) {
    double max_server = 0.0;
    double max_db = 0.0;
    double max_total = 0.0;
    for (std::uint64_t kk = 0; kk < n_keys; ++kk) {
      double s = std::numeric_limits<double>::infinity();
      for (unsigned rdx = 0; rdx < redundancy; ++rdx) {
        const std::size_t j = server_pick.sample(rng);
        const PoolRef& pool = server_pools[j];
        math::require(pool.size > 0,
                      "assemble_requests_redundant: empty server pool");
        s = std::min(s, pool.data[rng.uniform_index(pool.size)]);
      }
      double dd = 0.0;
      if (system.miss_ratio > 0.0 && rng.bernoulli(system.miss_ratio)) {
        dd = db_pool.data[rng.uniform_index(db_pool.size)];
      }
      max_server = std::max(max_server, s);
      max_db = std::max(max_db, dd);
      max_total = std::max(max_total, system.network_latency + s + dd);
    }
    out.network.push_back(system.network_latency);
    out.server.push_back(max_server);
    out.database.push_back(max_db);
    out.total.push_back(max_total);
  }
  return out;
}

AssembledRequests run_workload_experiment(const WorkloadDrivenConfig& cfg,
                                          std::uint64_t requests) {
  WorkloadDrivenSim sim(cfg);
  const MeasurementPools pools = sim.run();
  // Assembly draws from its own named stream: unlike the old
  // `seed ^ constant` trick, stream_seed can never collide with the
  // simulation stream of this or any other trial.
  dist::Rng rng(exec::stream_seed(cfg.seed, exec::Stream::assembly));
  return assemble_requests(pools, cfg.system, requests,
                           cfg.system.keys_per_request, rng, cfg.recorder);
}

dist::Empirical per_key_sojourn_distribution(const MeasurementPools& pools,
                                             const core::SystemConfig& system,
                                             std::uint64_t samples,
                                             dist::Rng& rng) {
  math::require(samples > 0, "per_key_sojourn_distribution: samples > 0");
  const dist::Discrete server_pick(system.shares());
  const std::vector<PoolRef> server_pools = pool_refs(pools.server_sojourns);
  std::vector<double> xs;
  xs.reserve(samples);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::size_t j = server_pick.sample(rng);
    const PoolRef& pool = server_pools[j];
    math::require(pool.size > 0,
                  "per_key_sojourn_distribution: empty server pool");
    xs.push_back(pool.data[rng.uniform_index(pool.size)]);
  }
  return dist::Empirical(std::move(xs));
}

}  // namespace mclat::cluster
