#include "cluster/workload_driven.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "cluster/engine/db_stage.h"
#include "cluster/engine/fetch_table.h"
#include "cluster/engine/stage_observer.h"
#include "dist/discrete.h"
#include "dist/exponential.h"
#include "dist/zipf.h"
#include "exec/seed_stream.h"
#include "math/numerics.h"
#include "sim/source.h"
#include "sim/station.h"
#include "stats/reservoir.h"

namespace mclat::cluster {

namespace {

stats::MeanCI ci_of(const std::vector<double>& xs) {
  stats::Welford w;
  for (const double x : xs) w.add(x);
  return stats::mean_ci(w);
}

// Flat {data, size} handles onto the measurement pools: the assembly loops
// draw from pools millions of times, and resolving vector-of-vectors
// indirections per draw costs more than the draw itself. Zero-share servers
// keep an empty handle that is never sampled (their alias mass is zero).
struct PoolRef {
  const double* data = nullptr;
  std::uint64_t size = 0;
};

std::vector<PoolRef> pool_refs(const std::vector<std::vector<double>>& pools) {
  std::vector<PoolRef> refs(pools.size());
  for (std::size_t j = 0; j < pools.size(); ++j) {
    refs[j] = PoolRef{pools[j].data(), pools[j].size()};
  }
  return refs;
}

}  // namespace

stats::MeanCI AssembledRequests::network_ci() const { return ci_of(network); }
stats::MeanCI AssembledRequests::server_ci() const { return ci_of(server); }
stats::MeanCI AssembledRequests::database_ci() const { return ci_of(database); }
stats::MeanCI AssembledRequests::total_ci() const { return ci_of(total); }

WorkloadDrivenSim::WorkloadDrivenSim(WorkloadDrivenConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.common.validate();
  math::require(cfg_.pool_cap > 0, "WorkloadDrivenSim: pool_cap must be > 0");
  // The workload-driven testbed measures isolated stations — there is no
  // cluster-wide event graph to shard. Reject rather than silently ignore.
  math::require(cfg_.common.shard_jobs == 1,
                "WorkloadDrivenSim: shard_jobs > 1 is not supported (the "
                "testbed has no intra-trial event graph to shard); use the "
                "end-to-end or trace-replay simulators");
  math::require(!cfg_.common.churn.active(),
                "WorkloadDrivenSim: membership churn requires the full "
                "cluster path (stations here are isolated — there is no ring "
                "to mutate); use the end-to-end or trace-replay simulators");
}

MeasurementPools WorkloadDrivenSim::run() {
  const core::SystemConfig& sys = cfg_.system;
  const std::vector<double> shares = sys.shares();
  MeasurementPools pools;
  pools.server_sojourns.resize(shares.size());
  pools.server_utilization.resize(shares.size(), 0.0);

  dist::Rng master(cfg_.common.seed);

  // ---- per-server GI^X/M/1 simulations (independent, run sequentially) --
  for (std::size_t j = 0; j < shares.size(); ++j) {
    if (shares[j] <= 0.0) continue;
    const workload::ArrivalSpec spec = sys.arrival_for_share(shares[j]);
    sim::Simulator s;
    dist::Rng station_rng = master.split();
    dist::Rng source_rng = master.split();
    dist::Rng pool_rng = master.split();
    stats::Reservoir pool(cfg_.pool_cap);
    const double measure_from = cfg_.common.warmup_time;
    std::uint64_t next_job = 0;

    sim::ServiceStation station(
        s,
        std::make_unique<dist::Exponential>(sys.rate_of(j)),
        station_rng,
        [&](const sim::Departure& d) {
          if (d.arrival >= measure_from) {
            pool.add(d.sojourn_time(), pool_rng);
          }
        });
    engine::StageObserver::attach_server_split(cfg_.recorder, station, j,
                                               measure_from);
    sim::BatchSource source(
        s, spec.make_gap(), spec.make_batch(), source_rng,
        [&](std::uint64_t batch) {
          for (std::uint64_t k = 0; k < batch; ++k) station.arrive(next_job++);
        });
    source.start();
    s.run_until(cfg_.common.warmup_time + cfg_.common.measure_time);
    source.stop();

    pools.server_sojourns[j] = pool.take();
    pools.server_utilization[j] = station.utilization(s.now());
    pools.total_keys += station.completed();
    engine::StageObserver::record_server_utilization(
        cfg_.recorder, j, pools.server_utilization[j]);
    obs::bump(engine::StageObserver::keys_counter(cfg_.recorder),
              station.completed());
  }

  // ---- database simulation: Poisson misses into an M/G/∞ stage ----------
  if (sys.miss_ratio > 0.0) {
    const bool coalesce = cfg_.common.coalescing == MissCoalescing::kPerServer;
    const double miss_rate = sys.miss_ratio * sys.total_key_rate;
    pools.measured_miss_rate_hz = miss_rate;
    sim::Simulator s;
    dist::Rng db_rng = master.split();
    dist::Rng arr_rng = master.split();
    dist::Rng pool_rng = master.split();
    // The rank stream's split is taken only when coalescing is on, after
    // every split the pre-coalescing simulator took: a kOff run's stream
    // sequence — and therefore its pools — stays byte-identical.
    dist::Rng rank_rng = coalesce ? master.split() : dist::Rng(0);
    const dist::Zipf ranks(coalesce ? cfg_.coalesce_keyspace_size : 1,
                           coalesce ? cfg_.coalesce_zipf_exponent : 1.0);
    stats::Reservoir pool(cfg_.pool_cap);
    obs::LatencyStat* db_stat =
        engine::StageObserver::db_sojourn_stat(cfg_.recorder);
    obs::Counter* db_misses =
        engine::StageObserver::db_miss_counter(cfg_.recorder);
    engine::StageObserver cobs;
    if (coalesce) cobs.attach_coalescing(cfg_.recorder);
    // Single-flight bookkeeping: the whole miss stream funnels into one
    // database stage, so the FetchTable has one "server". leader_rank maps
    // an in-flight leader job to its rank — it doubles as the re-entrancy
    // guard, since released waiters delivered through db.deliver() below
    // re-enter this handler but were never leaders.
    engine::FetchTable fetch(1);
    std::unordered_map<std::uint64_t, std::uint64_t> leader_rank;
    std::vector<engine::FetchTable::Waiter> released;
    engine::DbStage db(
        s, DbMode::kInfiniteServer, 1, sys.db_service_rate, std::move(db_rng),
        [&](const sim::Departure& d) {
          if (d.arrival >= cfg_.common.warmup_time) {
            pool.add(d.sojourn_time(), pool_rng);
            obs::observe(db_stat, obs::to_us(d.sojourn_time()));
            obs::bump(db_misses);
          }
          if (coalesce) {
            const auto it = leader_rank.find(d.job_id);
            if (it == leader_rank.end()) return;  // a released waiter
            fetch.release(0, it->second, released);
            leader_rank.erase(it);
            for (const engine::FetchTable::Waiter& w : released) {
              if (w.parked_at >= cfg_.common.warmup_time) {
                obs::observe(cobs.delayed_wait,
                             obs::to_us(s.now() - w.parked_at));
              }
              // Route the waiter through the shared departure path: its
              // "sojourn" is park-to-completion, pooled and counted under
              // the same warmup gate as a real fetch.
              const sim::Departure wd{w.job, w.parked_at, w.parked_at,
                                      s.now()};
              db.deliver(wd);
            }
          }
        });
    std::uint64_t job = 0;
    sim::PoissonSource misses(s, miss_rate, std::move(arr_rng), [&] {
      const std::uint64_t id = job++;
      if (!coalesce) {
        if (s.now() >= cfg_.common.warmup_time) ++pools.db_fetches;
        db.submit(id);
        return;
      }
      const std::uint64_t rank = ranks.sample(rank_rng);
      if (fetch.lead_or_park(0, rank, id, s.now())) {
        leader_rank.emplace(id, rank);
        if (s.now() >= cfg_.common.warmup_time) ++pools.db_fetches;
        db.submit(id);
      } else {
        if (s.now() >= cfg_.common.warmup_time) {
          ++pools.db_delayed_hits;
          obs::bump(cobs.coalesced);
        }
      }
    });
    misses.start();
    s.run_until(cfg_.common.warmup_time + cfg_.common.measure_time);
    pools.db_sojourns = pool.take();
    if (coalesce) {
      obs::set_gauge(cobs.fetch_outstanding,
                     static_cast<double>(fetch.peak_outstanding()));
    }
  }
  return pools;
}

AssembledRequests assemble_requests(const MeasurementPools& pools,
                                    const core::SystemConfig& system,
                                    std::uint64_t requests,
                                    std::uint64_t n_keys, dist::Rng& rng,
                                    obs::Recorder recorder) {
  math::require(requests > 0 && n_keys > 0,
                "assemble_requests: need requests, n_keys > 0");
  const std::vector<double> shares = system.shares();
  for (std::size_t j = 0; j < shares.size(); ++j) {
    math::require(shares[j] <= 0.0 || !pools.server_sojourns[j].empty(),
                  "assemble_requests: empty pool for a loaded server");
  }
  math::require(system.miss_ratio == 0.0 || !pools.db_sojourns.empty(),
                "assemble_requests: miss_ratio > 0 but DB pool is empty");

  const dist::Discrete server_pick(shares);
  const std::vector<PoolRef> server_pools = pool_refs(pools.server_sojourns);
  const PoolRef db_pool{pools.db_sojourns.data(), pools.db_sojourns.size()};
  AssembledRequests out;
  out.network.reserve(requests);
  out.server.reserve(requests);
  out.database.reserve(requests);
  out.total.reserve(requests);

  const engine::StageObserver sobs =
      engine::StageObserver::for_assembly(recorder);

  for (std::uint64_t i = 0; i < requests; ++i) {
    double max_server = 0.0;
    double max_db = 0.0;
    double max_total = 0.0;
    double sum_total = 0.0;
    for (std::uint64_t k = 0; k < n_keys; ++k) {
      const std::size_t j = server_pick.sample(rng);
      const PoolRef& pool = server_pools[j];
      const double s = pool.data[rng.uniform_index(pool.size)];
      double d = 0.0;
      if (system.miss_ratio > 0.0 && rng.bernoulli(system.miss_ratio)) {
        d = db_pool.data[rng.uniform_index(db_pool.size)];
        obs::bump(sobs.misses);
      }
      const double key_total = system.network_latency + s + d;
      max_server = std::max(max_server, s);
      max_db = std::max(max_db, d);
      max_total = std::max(max_total, key_total);
      sum_total += key_total;
    }
    out.network.push_back(system.network_latency);
    out.server.push_back(max_server);
    out.database.push_back(max_db);
    out.total.push_back(max_total);
    sobs.observe_request(system.network_latency, max_server, max_db, max_total,
                         sum_total, static_cast<double>(n_keys));
    obs::bump(sobs.keys, n_keys);
  }
  return out;
}

AssembledRequests assemble_requests_redundant(
    const MeasurementPools& pools, const core::SystemConfig& system,
    std::uint64_t requests, std::uint64_t n_keys, unsigned redundancy,
    dist::Rng& rng, obs::Recorder recorder) {
  math::require(redundancy >= 1,
                "assemble_requests_redundant: redundancy must be >= 1");
  math::require(requests > 0 && n_keys > 0,
                "assemble_requests_redundant: need requests, n_keys > 0");
  const std::vector<double> shares = system.shares();
  const dist::Discrete server_pick(shares);
  math::require(system.miss_ratio == 0.0 || !pools.db_sojourns.empty(),
                "assemble_requests_redundant: missing DB pool");
  const std::vector<PoolRef> server_pools = pool_refs(pools.server_sojourns);
  const PoolRef db_pool{pools.db_sojourns.data(), pools.db_sojourns.size()};
  AssembledRequests out;
  out.network.reserve(requests);
  out.server.reserve(requests);
  out.database.reserve(requests);
  out.total.reserve(requests);

  const engine::StageObserver sobs =
      engine::StageObserver::for_assembly(recorder);

  for (std::uint64_t i = 0; i < requests; ++i) {
    double max_server = 0.0;
    double max_db = 0.0;
    double max_total = 0.0;
    double sum_total = 0.0;
    for (std::uint64_t kk = 0; kk < n_keys; ++kk) {
      double s = std::numeric_limits<double>::infinity();
      for (unsigned rdx = 0; rdx < redundancy; ++rdx) {
        const std::size_t j = server_pick.sample(rng);
        const PoolRef& pool = server_pools[j];
        math::require(pool.size > 0,
                      "assemble_requests_redundant: empty server pool");
        s = std::min(s, pool.data[rng.uniform_index(pool.size)]);
      }
      double dd = 0.0;
      if (system.miss_ratio > 0.0 && rng.bernoulli(system.miss_ratio)) {
        dd = db_pool.data[rng.uniform_index(db_pool.size)];
        obs::bump(sobs.misses);
      }
      const double key_total = system.network_latency + s + dd;
      max_server = std::max(max_server, s);
      max_db = std::max(max_db, dd);
      max_total = std::max(max_total, key_total);
      sum_total += key_total;
    }
    out.network.push_back(system.network_latency);
    out.server.push_back(max_server);
    out.database.push_back(max_db);
    out.total.push_back(max_total);
    sobs.observe_request(system.network_latency, max_server, max_db, max_total,
                         sum_total, static_cast<double>(n_keys));
    obs::bump(sobs.keys, n_keys);
  }
  return out;
}

AssembledRequests run_workload_experiment(const WorkloadDrivenConfig& cfg,
                                          std::uint64_t requests) {
  WorkloadDrivenSim sim(cfg);
  const MeasurementPools pools = sim.run();
  // Assembly draws from its own named stream: unlike the old
  // `seed ^ constant` trick, stream_seed can never collide with the
  // simulation stream of this or any other trial.
  dist::Rng rng(exec::stream_seed(cfg.common.seed, exec::Stream::assembly));
  return assemble_requests(pools, cfg.system, requests,
                           cfg.system.keys_per_request, rng, cfg.recorder);
}

dist::Empirical per_key_sojourn_distribution(const MeasurementPools& pools,
                                             const core::SystemConfig& system,
                                             std::uint64_t samples,
                                             dist::Rng& rng) {
  math::require(samples > 0, "per_key_sojourn_distribution: samples > 0");
  const dist::Discrete server_pick(system.shares());
  const std::vector<PoolRef> server_pools = pool_refs(pools.server_sojourns);
  std::vector<double> xs;
  xs.reserve(samples);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::size_t j = server_pick.sample(rng);
    const PoolRef& pool = server_pools[j];
    math::require(pool.size > 0,
                  "per_key_sojourn_distribution: empty server pool");
    xs.push_back(pool.data[rng.uniform_index(pool.size)]);
  }
  return dist::Empirical(std::move(xs));
}

}  // namespace mclat::cluster
