// workload_driven.h — the "mutilate testbed" simulation (Mode A).
//
// The paper validates Theorem 1 by driving real Memcached servers with
// mutilate configured to replay the Facebook arrival statistics, then
// grouping measured per-key latencies into logical N-key requests. This
// module reproduces that methodology in simulation:
//
//  1. Each of the M servers runs an independent GI^X/M/1 simulation —
//     a BatchSource emitting the configured arrival pattern (λ_j = p_j·Λ,
//     ξ, q) into a FIFO exponential server — collecting a pool of per-key
//     sojourn times after warm-up.
//  2. The database runs as an infinite-server exp(μ_D) stage fed by a
//     Poisson stream at the aggregate miss rate r·Λ (the paper's eq.-19
//     approximation; misses thinned from exponential departures are
//     asymptotically Poisson).
//  3. RequestAssembler then composes end-user requests exactly as the
//     model's independence assumptions state: each of N keys picks a
//     server ~ {p_j}, draws a sojourn from that server's measured pool,
//     misses with probability r drawing a database latency, and adds the
//     constant network latency; T(N) is the max of the per-key sums.
//
// Step 3's independent resampling is precisely the approximation the
// paper's math makes (§3, "the assumption of independent key arrivals is
// acceptable"); the queueing dynamics themselves are simulated, not drawn
// from the formulas — so Theory-vs-Experiment comparisons are meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/common_config.h"
#include "cluster/modes.h"
#include "core/config.h"
#include "dist/empirical.h"
#include "dist/rng.h"
#include "obs/recorder.h"
#include "stats/summary.h"

namespace mclat::cluster {

struct WorkloadDrivenConfig {
  core::SystemConfig system;
  /// Measurement window, seed and miss coalescing — the shared cluster
  /// knobs (common_config.h). Mode A keeps its longer default window; the
  /// real-cache sizing fields are unused here (misses are the model's
  /// Bernoulli coin).
  ///
  /// Coalescing here acts on the database stage (kPerServer): each miss in
  /// the aggregate Poisson stream is assigned a key rank drawn
  /// Zipf(coalesce_keyspace_size, coalesce_zipf_exponent); a miss whose key
  /// already has a fetch in flight parks behind it and departs with it (a
  /// delayed hit), so the effective DB arrival rate drops below r·Λ for hot
  /// keys. kOff keeps the paper's independent-visit model byte-identical to
  /// the pre-coalescing simulator (the rank stream's RNG split is only
  /// taken when coalescing is on, appended after all existing splits).
  CommonConfig common{.warmup_time = 2.0, .measure_time = 20.0};
  std::size_t pool_cap = 200'000;  ///< max sojourn samples kept per server
  std::uint64_t coalesce_keyspace_size = 200'000;
  double coalesce_zipf_exponent = 0.99;
  /// Per-stage observability (null by default = zero-cost). Records
  /// per-server queue-wait/service splits ("server.<j>.wait_us" /
  /// ".service_us"), utilisation gauges, and the miss-path database
  /// sojourn ("db.sojourn_us"). The registry must outlive run().
  obs::Recorder recorder;
};

/// Raw measurement pools from the per-server and database simulations.
struct MeasurementPools {
  std::vector<std::vector<double>> server_sojourns;  ///< per server
  std::vector<double> db_sojourns;
  std::vector<double> server_utilization;  ///< measured busy fraction
  std::uint64_t total_keys = 0;
  double measured_miss_rate_hz = 0.0;  ///< miss arrivals/s offered to the DB
  /// Misses that submitted a database fetch after warm-up (== all post-warmup
  /// misses when coalescing is off; the effective DB arrival count when on).
  std::uint64_t db_fetches = 0;
  /// Post-warmup misses parked behind an in-flight fetch (delayed hits).
  std::uint64_t db_delayed_hits = 0;
};

/// Per-request component maxima, one entry per assembled request.
struct AssembledRequests {
  std::vector<double> network;   ///< T_N(N) samples (constant here)
  std::vector<double> server;    ///< T_S(N) samples
  std::vector<double> database;  ///< T_D(N) samples
  std::vector<double> total;     ///< T(N) samples

  [[nodiscard]] stats::MeanCI network_ci() const;
  [[nodiscard]] stats::MeanCI server_ci() const;
  [[nodiscard]] stats::MeanCI database_ci() const;
  [[nodiscard]] stats::MeanCI total_ci() const;
};

class WorkloadDrivenSim {
 public:
  explicit WorkloadDrivenSim(WorkloadDrivenConfig cfg);

  /// Runs the per-server and database simulations and collects pools.
  [[nodiscard]] MeasurementPools run();

  [[nodiscard]] const WorkloadDrivenConfig& config() const noexcept {
    return cfg_;
  }

 private:
  WorkloadDrivenConfig cfg_;
};

/// Step 3: builds `requests` end-user requests of `n_keys` keys each from
/// measured pools. Uses sampling with replacement; pools must be nonempty
/// for every server with positive share (and for the DB when r > 0).
/// A non-null recorder captures the per-request stage decomposition
/// ("stage.{network,server,database,total}_us") plus the fork-join
/// synchronization metrics ("request.sync_gap_us": last-key completion
/// minus the mean per-key completion; "request.sync_slack_us": the
/// Theorem-1 upper-bound slack T_N + T_S + T_D - T). Recording draws no
/// random numbers, so assembled outputs are identical with or without it.
[[nodiscard]] AssembledRequests assemble_requests(
    const MeasurementPools& pools, const core::SystemConfig& system,
    std::uint64_t requests, std::uint64_t n_keys, dist::Rng& rng,
    obs::Recorder recorder = {});

/// Redundant-assembly variant (core/redundancy.h): each key draws `d`
/// independent sojourns (server picked per draw ~ {p_j}) and keeps the
/// minimum — the fastest replica wins. The pools must come from a
/// simulation whose per-server key rate was already inflated by d. Misses
/// stay per-key (replicas cache the same keys, so a missing key misses
/// everywhere and is fetched once). A non-null recorder captures the same
/// stage decomposition and assembly counters as assemble_requests;
/// recording draws no random numbers.
[[nodiscard]] AssembledRequests assemble_requests_redundant(
    const MeasurementPools& pools, const core::SystemConfig& system,
    std::uint64_t requests, std::uint64_t n_keys, unsigned redundancy,
    dist::Rng& rng, obs::Recorder recorder = {});

/// Convenience: simulate + assemble with the config's N.
[[nodiscard]] AssembledRequests run_workload_experiment(
    const WorkloadDrivenConfig& cfg, std::uint64_t requests);

/// Pools flattened into a single per-key sojourn sample (for Fig. 4's
/// per-key quantile comparison). Weights servers by their share.
[[nodiscard]] dist::Empirical per_key_sojourn_distribution(
    const MeasurementPools& pools, const core::SystemConfig& system,
    std::uint64_t samples, dist::Rng& rng);

}  // namespace mclat::cluster
