// sharded_engine.cpp — the windowed-parallel twin of the serial cluster
// engine wiring (end_to_end.cpp / trace_replay.cpp).
//
// Topology: LP 0 is the coordinator (ArrivalSource, key draws,
// ForkJoinJoiner, replica arbitration and hedge timers); LPs 1..K are
// server shards, server j owned by shard j % K at local index j / K.
// Every cross-LP interaction is a ShardGroup message timestamped now +
// net/2 — exactly the group's lookahead:
//
//   coordinator → shard:  key arrival (fork fan-out), replica cancel
//   shard → coordinator:  key/replica completion, cancel ack
//
// Servers never message each other (per-server stations, stores, fetch
// tables and the inline infinite-server DB are all shard-local), so the
// message pattern — and with it the delivery order and every RNG stream —
// is identical for every shard count K: the (time, origin, posting-order)
// delivery key uses origin = 0 for the coordinator and 1 + global server
// index for shards, and each origin posts from exactly one LP.
//
// Sharded redundancy (documented deviation, DESIGN.md §4i): each replica
// runs the full server→miss→DB path on its shard and the coordinator
// arbitrates first-*completion*-wins, whereas the serial ReplicaSet
// arbitrates at first server departure (before the miss path). Cancels
// travel as messages and are acked so the coordinator can retire groups;
// a cancel is always delivered at-or-after its replica's arrival hop
// (both cross exactly one lookahead, and equal-time delivery orders the
// earlier-posted arrival first), so an unknown replica id at cancel time
// means "completion already in flight" — a safe no-op.
#include "cluster/engine/sharded_engine.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/engine/arrival.h"
#include "cluster/engine/fetch_table.h"
#include "cluster/engine/fork_join.h"
#include "cluster/engine/hedge.h"
#include "cluster/engine/mapper.h"
#include "cluster/engine/miss_policy.h"
#include "cluster/engine/stage_observer.h"
#include "cluster/job_table.h"
#include "cluster/membership.h"
#include "dist/discrete.h"
#include "dist/exponential.h"
#include "exec/thread_pool.h"
#include "hashing/consistent_hash.h"
#include "hashing/key_mapper.h"
#include "math/numerics.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"
#include "stats/p2_quantile.h"
#include "workload/key_table.h"
#include "workload/size_model.h"

namespace mclat::cluster::engine {
namespace {

/// Per-key in-flight state on its owning shard. Doubles as the completion
/// message payload: together with the engine pointer it fills the
/// InlineCallback inline buffer exactly.
struct KeyCtx {
  std::uint64_t id = 0;    ///< joiner key job, or replica id when is_replica
  std::uint64_t rank = 0;  ///< key rank (0 under Bernoulli misses)
  double server_sojourn = 0.0;
  double service = 0.0;  ///< service_start → departure (loser waste)
  double db_sojourn = 0.0;
  std::uint32_t local = 0;   ///< server index within the shard
  std::uint32_t global = 0;  ///< global server index
  bool measured = false;
  bool is_replica = false;
  bool missed = false;
  bool led = false;     ///< miss that submitted the DB fetch
  bool parked = false;  ///< miss parked behind an in-flight fetch
};

/// Shard-side lifecycle of one server slot under a MembershipSchedule.
/// Slots move kEmpty → kLive (provision) → {kDead | kDraining} (leave)
/// → kEmpty (retired once the last in-flight job resolves); the
/// coordinator's registry mirrors these transitions one lookahead behind.
enum class SlotState : std::uint8_t { kLive, kDraining, kDead, kEmpty };

/// One server shard: its calendar's stations plus every piece of formerly
/// global state that is now per-server anyway (stores, fetch table, RNG
/// streams) or mergeable (registry, counters).
struct ServerShard {
  std::size_t lp = 0;
  sim::Simulator* sim = nullptr;
  std::vector<std::size_t> owned;  ///< global server indices, ascending
  std::vector<std::unique_ptr<sim::ServiceStation>> stations;
  std::vector<dist::Rng> miss_rngs;  // local index
  std::vector<dist::Rng> db_rngs;    // local index
  /// Shard-private bounded KeyTable (KeyTable budget > 0 only): lazy chunk
  /// materialization and CLOCK eviction are single-threaded, so a bounded
  /// table cannot be shared across shards — each shard builds its own from
  /// the same (keyspace, mapper, values), and because every column is a
  /// pure function of rank the K tables agree bit-for-bit on every rank
  /// they materialize. K-invariance is unaffected (DESIGN.md §4j).
  std::unique_ptr<workload::KeyTable> table;
  /// Frozen copy of the initial ring backing `table` under churn: shards
  /// must never read the live ring the coordinator mutates (and a shard
  /// table's server column is never consulted — only the coordinator
  /// routes — so the frozen epoch is harmless).
  std::unique_ptr<hashing::ConsistentHashRing> frozen_ring;
  std::optional<MissPolicy> cache;   // real-cache stores, local index
  FetchTable fetch{0};
  JobTable<KeyCtx> jobs;
  std::unordered_map<std::uint64_t, std::uint64_t> live_replicas;  // rid→slot
  std::vector<FetchTable::Waiter> released;
  obs::Registry reg;
  obs::Recorder rec;  // null recorder when the trial's recorder is null
  StageObserver sobs;
  std::uint64_t keys = 0;
  std::uint64_t misses = 0;
  std::uint64_t db_fetches = 0;
  std::uint64_t delayed_hits = 0;
  std::uint64_t cancelled = 0;
  // --- membership churn (sized only when a schedule is active) ------------
  std::vector<SlotState> slot_state;     // local index
  std::vector<std::uint32_t> inflight;   // jobs owned by the slot
  std::vector<std::uint8_t> cold;        // provisioned mid-run, still filling
  // Store evictions at provision time: flush() drops items but not the
  // cumulative StoreStats, so "still cold" must compare against this
  // baseline or a *revived* slot (which evicted in a past incarnation)
  // would never count its refill storm.
  std::vector<std::uint64_t> evict_base;
  std::uint64_t refill_storm_bytes = 0;  // refills into still-cold stores
};

/// Everything both sharded simulators share: shard construction, the
/// server departure → miss → DB → completion-message path, and the
/// coordinator-side replica arbitration. The two run_* functions own the
/// arrival generation and result assembly.
class ShardedCluster {
 public:
  /// How real-cache shards obtain key metadata: either one `shared` table
  /// every shard reads (budget == 0: eager-built, immutable, concurrently
  /// readable) or the ingredients for a private bounded table per shard
  /// (budget_bytes > 0 — see ServerShard::table).
  struct TableSpec {
    workload::KeyTable* shared = nullptr;
    const workload::KeySpace* keyspace = nullptr;
    const hashing::KeyMapper* mapper = nullptr;
    const workload::ValueSizeModel* values = nullptr;
    std::size_t budget_bytes = 0;
    /// Under churn: the live ring, copied per shard at construction (the
    /// frozen, pre-churn membership) so shard-private tables never touch
    /// the object the coordinator mutates mid-run.
    const hashing::ConsistentHashRing* ring = nullptr;
  };

  /// `master` must already have the run's coordinator streams split off;
  /// the ctor consumes the per-server (service, miss, db) triples in global
  /// server order — the sharded split contract (DESIGN.md §4i).
  ShardedCluster(const core::SystemConfig& sys, const CommonConfig& common,
                 dist::Rng& master, bool real_cache, bool coalesce,
                 bool count_unmeasured, const obs::Recorder& main_rec,
                 const TableSpec& tables, const RedundancyPolicy* policy,
                 std::size_t shards)
      : group_(1 + shards, sys.network_latency / 2.0),
        net_half_(sys.network_latency / 2.0),
        net_full_(sys.network_latency),
        k_(shards),
        churn_(common.churn.active() ? &common.churn : nullptr),
        miss_ratio_(sys.miss_ratio),
        db_rate_(sys.db_service_rate),
        real_cache_(real_cache),
        coalesce_(coalesce),
        count_unmeasured_(count_unmeasured),
        table_(tables.shared),
        bounded_(real_cache && tables.budget_bytes > 0),
        policy_(policy),
        co_(&group_.shard(0)),
        co_sobs_(StageObserver::for_sim(main_rec)) {
    if (coalesce_) co_sobs_.attach_coalescing(main_rec);
    if (bounded_) co_sobs_.attach_cache_index(main_rec);
    if (churn_ != nullptr) co_sobs_.attach_churn(main_rec);
    if (redundant()) {
      co_sobs_.attach_redundancy(main_rec, policy_->hedged());
      deadline_.emplace(policy_->hedge_quantile(),
                        policy_->hedge_deadline_floor());
    }
    // Under churn every slot that could ever exist — the initial servers
    // plus one fresh slot per possible join (reuse can only need fewer) —
    // is provisioned up front: stations, stores, fetch rows and the
    // (service, miss, db) RNG triples all exist from t=0 in pinned global
    // order, so no stream is ever split mid-run and the draw sequences
    // stay invariant under both the shard count and the event timeline.
    initial_live_ = sys.shares().size();
    const std::size_t servers =
        initial_live_ + (churn_ != nullptr ? churn_->join_count() : 0);
    servers_total_ = servers;
    shards_.reserve(k_);
    for (std::size_t s = 0; s < k_; ++s) {
      auto shard = std::make_unique<ServerShard>();
      shard->lp = 1 + s;
      shard->sim = &group_.shard(shard->lp);
      for (std::size_t j = s; j < servers; j += k_) shard->owned.push_back(j);
      shard->fetch = FetchTable(shard->owned.size());
      shard->rec = main_rec.registry() != nullptr ? obs::Recorder(shard->reg)
                                                  : obs::Recorder();
      shard->sobs = StageObserver::for_sim(shard->rec);
      if (coalesce_) shard->sobs.attach_coalescing(shard->rec);
      if (redundant()) {
        shard->sobs.attach_redundancy(shard->rec, policy_->hedged());
      }
      shards_.push_back(std::move(shard));
    }
    // Per-server streams in *global* server order — (service, miss, db)
    // triples — so the draw sequences are invariant under the shard count.
    // The miss stream is split even in real-cache mode (which never draws
    // from it), mirroring the serial always-split contract.
    for (std::size_t j = 0; j < servers; ++j) {
      ServerShard& shard = *shards_[j % k_];
      const double mu = sys.rate_of(j);
      dist::Rng service_rng = master.split();
      shard.miss_rngs.push_back(master.split());
      shard.db_rngs.push_back(master.split());
      const std::size_t s_idx = j % k_;
      const auto l = static_cast<std::uint32_t>(j / k_);
      shard.stations.push_back(std::make_unique<sim::ServiceStation>(
          *shard.sim, std::make_unique<dist::Exponential>(mu),
          std::move(service_rng), [this, s_idx, l](const sim::Departure& d) {
            on_server_departure(s_idx, l, d);
          }));
      StageObserver::attach_server_split(shard.rec, *shard.stations.back(), j,
                                         common.warmup_time);
    }
    if (real_cache_) {
      for (auto& shard : shards_) {
        workload::KeyTable* t = table_;
        if (bounded_ || churn_ != nullptr) {
          // Private per-shard table: bounded tables because lazy build +
          // CLOCK eviction are single-threaded, churn additionally because
          // the coordinator's routing table remaps its server column
          // mid-run — shards must read a frozen snapshot instead.
          const hashing::KeyMapper* m = tables.mapper;
          if (churn_ != nullptr) {
            math::require(tables.ring != nullptr,
                          "sharded engine: churn requires the live ring in "
                          "TableSpec");
            shard->frozen_ring =
                std::make_unique<hashing::ConsistentHashRing>(*tables.ring);
            m = shard->frozen_ring.get();
          }
          shard->table = std::make_unique<workload::KeyTable>(
              *tables.keyspace, *m, tables.values,
              workload::KeyTable::Build::kLazy, tables.budget_bytes);
          t = shard->table.get();
        }
        // One LruStore per *owned* server, indexed locally; the unused RNG
        // keeps MissPolicy's signature happy (real caches never draw).
        shard->cache = MissPolicy::real_cache(
            *t, shard->owned.size(), common.cache_bytes_per_server,
            dist::Rng(0));
      }
    }
    if (churn_ != nullptr) {
      reg_state_.assign(servers, SlotReg::kFresh);
      for (std::size_t j = 0; j < initial_live_; ++j) {
        reg_state_[j] = SlotReg::kLive;
      }
      live_ = initial_live_;
      fresh_next_ = initial_live_;
      for (auto& shard : shards_) {
        const std::size_t n = shard->owned.size();
        shard->slot_state.assign(n, SlotState::kEmpty);
        shard->inflight.assign(n, 0);
        shard->cold.assign(n, 0);
        shard->evict_base.assign(n, 0);
        for (std::size_t l = 0; l < n; ++l) {
          if (shard->owned[l] < initial_live_) {
            shard->slot_state[l] = SlotState::kLive;
          }
        }
      }
    }
  }

  [[nodiscard]] bool redundant() const noexcept {
    return policy_ != nullptr && policy_->replicated();
  }

  [[nodiscard]] sim::Simulator& coordinator() noexcept { return *co_; }
  [[nodiscard]] sim::ShardGroup& group() noexcept { return group_; }
  [[nodiscard]] const StageObserver& co_sobs() const noexcept {
    return co_sobs_;
  }
  [[nodiscard]] ServerShard& shard_of(std::size_t server) noexcept {
    return *shards_[server % k_];
  }
  [[nodiscard]] std::size_t shard_count() const noexcept { return k_; }

  void set_joiner(ForkJoinJoiner* joiner) noexcept { joiner_ = joiner; }
  void set_server_pick(const dist::Discrete* pick) noexcept {
    server_pick_ = pick;
  }

  /// Fork fan-out: one key arrival message to server `j`'s shard.
  void post_arrival(std::size_t j, std::uint64_t id, std::uint64_t rank,
                    bool measured, bool is_replica) {
    const std::size_t s_idx = j % k_;
    const auto l = static_cast<std::uint32_t>(j / k_);
    group_.post(
        0, shards_[s_idx]->lp, /*origin=*/0, co_->now() + net_half_,
        sim::InlineCallback([this, s_idx, l, id, rank, measured, is_replica] {
          on_arrival(s_idx, l, id, rank, measured, is_replica);
        }));
  }

  /// Pre-run injection (trace replay): schedules the arrival directly into
  /// the owning shard's calendar — single-threaded setup, no mailbox.
  void inject_arrival(std::size_t j, double at, std::uint64_t id,
                      std::uint64_t rank) {
    const std::size_t s_idx = j % k_;
    const auto l = static_cast<std::uint32_t>(j / k_);
    shards_[s_idx]->sim->schedule_at(at, [this, s_idx, l, id, rank] {
      on_arrival(s_idx, l, id, rank, /*measured=*/true, /*is_replica=*/false);
    });
  }

  /// Redundant fork: dispatch `degree` replicas (immediate) or the primary
  /// plus a hedge timer. Mirrors ReplicaSet::dispatch — backups drawn from
  /// the fork stream (immediate) or the hedge stream (deadline fired).
  /// Groups get their own monotone ids: the joiner's key-job ids are slot
  /// indices recycled the moment a key joins, and with let-losers-run a
  /// group outlives its key's join.
  void dispatch_replicas(std::uint64_t kjob, std::size_t home, bool measured,
                         dist::Rng& fork_rng, dist::Rng& hedge_rng) {
    const std::uint64_t gid = next_gid_++;
    Group& g = groups_[gid];
    g.kjob = kjob;
    g.dispatched_at = co_->now();
    if (!policy_->hedged()) {
      for (unsigned r = 0; r < policy_->degree(); ++r) {
        const std::size_t sj = r == 0 ? home : server_pick_->sample(fork_rng);
        send_replica(g, gid, sj, measured);
      }
      return;
    }
    send_replica(g, gid, home, measured);
    if (const std::optional<double> dl = deadline_->deadline()) {
      g.hedge_event = co_->schedule_in(*dl, [this, gid, measured, &hedge_rng] {
        fire_hedge(gid, measured, hedge_rng);
      });
    }
  }

  /// Total server slots ever provisioned (== initial servers without
  /// churn; + join_count() fresh slots with). Stations, RNG triples and
  /// utilization gauges exist for every slot.
  [[nodiscard]] std::size_t total_server_slots() const noexcept {
    return servers_total_;
  }

  /// Arms the membership schedule: records the live ring + the
  /// coordinator-side re-route function (both outlive the run) and
  /// schedules one coordinator event per ChurnEvent. Call before any other
  /// pre-run scheduling so a churn event at time t is applied before
  /// same-time arrivals are routed (coordinator ties run in posting
  /// order).
  void start_churn(hashing::ConsistentHashRing* ring,
                   std::function<std::size_t(std::uint64_t)> route) {
    math::require(churn_ != nullptr,
                  "sharded engine: start_churn without a schedule");
    ring_ = ring;
    route_ = std::move(route);
    windows_.push_back(EpochWin{ring_->epoch(), co_->now()});
    const std::vector<ChurnEvent>& evs = churn_->events();
    for (std::size_t i = 0; i < evs.size(); ++i) {
      co_->schedule_at(evs[i].time, [this, i] { on_churn_event(i); });
    }
  }

  /// Aggregates churn observability after check_drained(): event counts,
  /// failovers, refill-storm bytes, per-epoch miss-ratio windows and the
  /// end-of-run cache occupancy (the measured capacity C the Ji/Quan/Tan
  /// prediction is evaluated at). Also sets the churn gauges.
  [[nodiscard]] ChurnStats churn_stats() {
    ChurnStats cs;
    cs.events = churn_events_total_;
    cs.joins = joins_;
    cs.leaves = leaves_;
    cs.drains = drains_;
    cs.failovers = failovers_;
    cs.slots_retired = retired_;
    cs.live_servers_end = live_;
    for (const auto& shard : shards_) {
      cs.refill_storm_bytes += shard->refill_storm_bytes;
      if (!real_cache_) continue;
      for (std::size_t l = 0; l < shard->owned.size(); ++l) {
        const SlotState st = shard->slot_state[l];
        if (st != SlotState::kLive && st != SlotState::kDraining) continue;
        cs.resident_items_end += shard->cache->items(l);
        cs.resident_bytes_end += shard->cache->store(l).stats().resident_bytes;
      }
    }
    cs.epochs.reserve(windows_.size());
    for (EpochWin& w : windows_) {
      ChurnEpochWindow e;
      e.epoch = w.epoch;
      e.start_time = w.start;
      e.keys = w.keys;
      e.misses = w.misses;
      e.miss_ratio = w.keys == 0 ? 0.0
                                 : static_cast<double>(w.misses) /
                                       static_cast<double>(w.keys);
      e.p99_key_latency_us = w.p99.count() > 0 ? w.p99.value() : 0.0;
      cs.epochs.push_back(e);
    }
    obs::set_gauge(co_sobs_.refill_storm,
                   static_cast<double>(cs.refill_storm_bytes));
    return cs;
  }

  /// Runs the group on shard_count() + 1 workers drawn from an
  /// exec::ThreadPool (the satellite contract: shards ride the same pool
  /// machinery the trial runner uses).
  void run() {
    const std::size_t workers = k_ + 1;
    exec::ThreadPool pool(workers - 1);
    group_.run_with([&pool](auto&& fn) {
      return pool.submit(std::forward<decltype(fn)>(fn));
    }, workers);
    pool.shutdown();
  }

  /// Post-drain structural conservation: every fork joined, every fetch
  /// released, every replica resolved. A violated invariant here means a
  /// message was lost or duplicated — the sharded mode's cardinal sin.
  void check_drained() const {
    math::require(
        joiner_->open_requests() == 0 && joiner_->in_flight_keys() == 0,
        "sharded engine: unjoined work after drain (" +
            std::to_string(joiner_->open_requests()) + " requests, " +
            std::to_string(joiner_->in_flight_keys()) + " keys)");
    math::require(groups_.empty() && reps_.empty(),
                  "sharded engine: unresolved replica groups after drain (" +
                      std::to_string(groups_.size()) + " groups, " +
                      std::to_string(reps_.size()) + " replicas)");
    for (const auto& shard : shards_) {
      math::require(shard->jobs.size() == 0,
                    "sharded engine: in-flight keys left on a shard");
      math::require(shard->fetch.outstanding_fetches() == 0,
                    "sharded engine: outstanding DB fetches after drain");
      math::require(shard->live_replicas.empty(),
                    "sharded engine: live replicas left on a shard");
    }
  }

  /// Folds every shard registry into the trial's registry (LP order, so
  /// the result is deterministic), then sets the gauges that only make
  /// sense trial-wide. Call after check_drained(). `routing_chunks` /
  /// `routing_bytes` fold the coordinator-side routing table (owned by the
  /// run_* caller, invisible from here) into the keytable.* gauges.
  void merge_observability(const obs::Recorder& main_rec,
                           std::uint64_t routing_chunks = 0,
                           std::uint64_t routing_bytes = 0) {
    if (main_rec.registry() == nullptr) return;
    for (const auto& shard : shards_) main_rec.registry()->merge(shard->reg);
    if (coalesce_) {
      // Serial runs report the global outstanding-fetch peak; per-shard
      // peaks need not coincide in time, so their sum is an upper bound —
      // close in practice and monotone in the same effects.
      std::size_t peak = 0;
      for (const auto& shard : shards_) peak += shard->fetch.peak_outstanding();
      obs::set_gauge(co_sobs_.fetch_outstanding, static_cast<double>(peak));
    }
    if (bounded_) {
      std::uint64_t chunks = routing_chunks;
      std::uint64_t bytes = routing_bytes;
      cache::IndexStats probes;
      for (const auto& shard : shards_) {
        chunks += shard->table->chunks_resident();
        bytes += shard->table->bytes_resident();
        probes.merge(shard->cache->index_stats());
      }
      co_sobs_.record_cache_index(chunks, bytes, probes);
    }
  }

  [[nodiscard]] double utilization_of(std::size_t j, double horizon) const {
    return shards_[j % k_]->stations[j / k_]->utilization(horizon);
  }

  // --- summed shard counters (+ coordinator-side redundant counts) --------
  [[nodiscard]] std::uint64_t total_keys() const {
    return sum(&ServerShard::keys) + co_keys_;
  }
  [[nodiscard]] std::uint64_t total_misses() const {
    return sum(&ServerShard::misses) + co_misses_;
  }
  [[nodiscard]] std::uint64_t total_db_fetches() const {
    return sum(&ServerShard::db_fetches) + co_db_fetches_;
  }
  [[nodiscard]] std::uint64_t total_delayed_hits() const {
    return sum(&ServerShard::delayed_hits) + co_delayed_hits_;
  }
  [[nodiscard]] std::uint64_t total_cancelled() const {
    return sum(&ServerShard::cancelled);
  }
  [[nodiscard]] std::uint64_t hedges_fired() const noexcept {
    return hedges_fired_;
  }
  [[nodiscard]] double wasted_service() const noexcept { return wasted_; }
  [[nodiscard]] double last_completion() const noexcept {
    return last_completion_;
  }

 private:
  /// Coordinator-side state of one replicated key.
  struct Group {
    std::uint64_t kjob = 0;  ///< the joiner key the winner completes
    double dispatched_at = 0.0;
    sim::EventId hedge_event = sim::kInvalidEventId;
    unsigned outstanding = 0;
    bool won = false;
    std::vector<std::uint64_t> live;  ///< replica ids not yet resolved
  };
  struct RepInfo {
    std::uint64_t gid = 0;
    std::uint32_t server = 0;
  };

  /// Coordinator-side registry state of one server slot. kFresh slots have
  /// never been live (pre-provisioned join capacity); kLeaving covers the
  /// window between the leave/drain event and the shard's retired message;
  /// kFree slots are fully decommissioned and reusable by the next join.
  enum class SlotReg : std::uint8_t { kLive, kLeaving, kFree, kFresh };

  /// One membership epoch's in-flight accumulation (coordinator-side;
  /// finalized into ChurnEpochWindow by churn_stats()).
  struct EpochWin {
    std::uint64_t epoch = 0;
    double start = 0.0;
    std::uint64_t keys = 0;
    std::uint64_t misses = 0;
    stats::P2Quantile p99{0.99};
  };

  // --- membership churn -----------------------------------------------

  void on_churn_event(std::size_t idx) {
    const ChurnEvent& ev = churn_->events()[idx];
    ++churn_events_total_;
    obs::bump(co_sobs_.churn_events);
    if (ev.kind == ChurnKind::kJoin) {
      // Reuse the lowest retired slot; else activate the next fresh one.
      // Both choices depend only on virtual-time message history, so the
      // slot assignment is invariant under the shard count.
      std::size_t j = reg_state_.size();
      for (std::size_t i = 0; i < reg_state_.size(); ++i) {
        if (reg_state_[i] == SlotReg::kFree) {
          j = i;
          break;
        }
      }
      if (j == reg_state_.size()) {
        j = fresh_next_++;
        math::require(j < reg_state_.size(),
                      "sharded engine: join exceeds provisioned slots");
        const std::size_t added = ring_->add_server();
        math::require(added == j,
                      "sharded engine: ring/registry slot mismatch on join");
      } else {
        ring_->revive_server(j);
      }
      reg_state_[j] = SlotReg::kLive;
      ++live_;
      ++joins_;
      const std::size_t s_idx = j % k_;
      const auto l = static_cast<std::uint32_t>(j / k_);
      group_.post(0, shards_[s_idx]->lp, /*origin=*/0, co_->now() + net_half_,
                  sim::InlineCallback(
                      [this, s_idx, l] { on_provision(s_idx, l); }));
    } else {
      const std::size_t j = ev.server;
      math::require(j < reg_state_.size() && reg_state_[j] == SlotReg::kLive,
                    "MembershipSchedule: leave/drain target is not a live "
                    "server");
      ring_->remove_server(j);  // validates the last-live-server case
      reg_state_[j] = SlotReg::kLeaving;
      --live_;
      const bool abrupt = ev.kind == ChurnKind::kLeave;
      if (abrupt) {
        ++leaves_;
      } else {
        ++drains_;
      }
      const std::size_t s_idx = j % k_;
      const auto l = static_cast<std::uint32_t>(j / k_);
      group_.post(0, shards_[s_idx]->lp, /*origin=*/0, co_->now() + net_half_,
                  sim::InlineCallback([this, s_idx, l, abrupt] {
                    on_leave(s_idx, l, abrupt);
                  }));
    }
    // A new epoch's measurement window opens at the event itself (routing
    // changed now, even though the shard applies the slot transition one
    // lookahead later).
    windows_.push_back(EpochWin{ring_->epoch(), co_->now()});
  }

  void on_provision(std::size_t s_idx, std::uint32_t l) {
    ServerShard& shard = *shards_[s_idx];
    shard.slot_state[l] = SlotState::kLive;
    shard.cold[l] = 1;  // refills count as storm until the first eviction
    if (shard.cache) {
      shard.cache->flush(l);  // cold join: empty store
      shard.evict_base[l] = shard.cache->store(l).stats().evictions;
    }
  }

  void on_leave(std::size_t s_idx, std::uint32_t l, bool abrupt) {
    ServerShard& shard = *shards_[s_idx];
    if (!abrupt) {
      // Planned drain: no new routes (the ring already dropped the slot);
      // queued and in-flight work finishes normally.
      shard.slot_state[l] = SlotState::kDraining;
      maybe_retire(shard, l);
      return;
    }
    // Abrupt leave: everything waiting in the FIFO is lost with the server
    // and fails over to the ring successor, bounced in FIFO order. The
    // in-service job (if any) is bounced when its departure fires, and
    // jobs already in the DB stage complete normally (skipping the refill).
    shard.slot_state[l] = SlotState::kDead;
    std::vector<std::uint64_t> lost;
    shard.stations[l]->drain_waiting(lost);
    for (const std::uint64_t slot : lost) {
      const KeyCtx c = shard.jobs.take(
          slot, "sharded engine: drained job missing from the job table");
      --shard.inflight[l];
      post_failover(shard, c);
    }
    maybe_retire(shard, l);
  }

  /// Shard → coordinator: this job's server vanished; re-route it.
  void post_failover(ServerShard& shard, const KeyCtx& c) {
    group_.post(shard.lp, 0, /*origin=*/1 + c.global,
                shard.sim->now() + net_half_,
                sim::InlineCallback(
                    [this, id = c.id, rank = c.rank, measured = c.measured] {
                      on_failover(id, rank, measured);
                    }));
  }

  void on_failover(std::uint64_t id, std::uint64_t rank, bool measured) {
    ++failovers_;
    obs::bump(co_sobs_.churn_failovers);
    // Re-route under the *current* ring: the epoch-validated routing table
    // resolves the rank to the dead slot's ring successor.
    post_arrival(route_(rank), id, rank, measured, /*is_replica=*/false);
  }

  /// A dead/draining slot with no in-flight work left decommissions: flush
  /// the store, mark the slot empty, tell the coordinator it is reusable.
  void maybe_retire(ServerShard& shard, std::uint32_t l) {
    if (shard.inflight[l] != 0) return;
    const SlotState st = shard.slot_state[l];
    if (st != SlotState::kDead && st != SlotState::kDraining) return;
    shard.slot_state[l] = SlotState::kEmpty;
    shard.cold[l] = 0;
    if (shard.cache) shard.cache->flush(l);
    const auto global = static_cast<std::uint32_t>(
        (shard.lp - 1) + static_cast<std::size_t>(l) * k_);
    group_.post(shard.lp, 0, /*origin=*/1 + global,
                shard.sim->now() + net_half_,
                sim::InlineCallback([this, global] { on_retired(global); }));
  }

  void on_retired(std::uint32_t global) {
    reg_state_[global] = SlotReg::kFree;
    ++retired_;
    obs::bump(co_sobs_.churn_retired);
  }

  [[nodiscard]] std::uint64_t sum(std::uint64_t ServerShard::*m) const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += (*shard).*m;
    return total;
  }

  [[nodiscard]] bool is_miss(ServerShard& shard, std::uint32_t l,
                             std::uint64_t rank, double now) {
    if (real_cache_) return shard.cache->is_miss(l, rank, now);
    return miss_ratio_ > 0.0 && shard.miss_rngs[l].bernoulli(miss_ratio_);
  }

  void on_arrival(std::size_t s_idx, std::uint32_t l, std::uint64_t id,
                  std::uint64_t rank, bool measured, bool is_replica) {
    ServerShard& shard = *shards_[s_idx];
    KeyCtx ctx;
    ctx.id = id;
    ctx.rank = rank;
    ctx.local = l;
    ctx.global = static_cast<std::uint32_t>(s_idx + l * k_);
    ctx.measured = measured;
    ctx.is_replica = is_replica;
    if (churn_ != nullptr) {
      const SlotState st = shard.slot_state[l];
      if (st != SlotState::kLive && st != SlotState::kDraining) {
        // Defensive bounce. Message ordering makes this unreachable today
        // (a routed arrival always lands before the leave that kills its
        // target — both cross exactly one lookahead), but a future event
        // source with different timing must fail over, not crash.
        post_failover(shard, ctx);
        return;
      }
      ++shard.inflight[l];
    }
    const std::uint64_t slot = shard.jobs.insert(ctx);
    if (is_replica) shard.live_replicas.emplace(id, slot);
    shard.stations[l]->arrive(slot);
  }

  void on_server_departure(std::size_t s_idx, std::uint32_t l,
                           const sim::Departure& d) {
    ServerShard& shard = *shards_[s_idx];
    if (churn_ != nullptr && shard.slot_state[l] == SlotState::kDead) {
      // Abrupt leave caught this job in service: its reply is lost with
      // the server, so it fails over (uncounted here — it is counted where
      // it eventually completes).
      const KeyCtx c = shard.jobs.take(
          d.job_id, "sharded engine: departure at a dead slot for unknown "
                    "key");
      --shard.inflight[l];
      post_failover(shard, c);
      maybe_retire(shard, l);
      return;
    }
    const double now = shard.sim->now();
    KeyCtx& ctx = shard.jobs.at(
        d.job_id, "sharded engine: server departure for unknown key");
    ctx.server_sojourn = d.sojourn_time();
    ctx.service = d.departure - d.service_start;
    const bool miss = is_miss(shard, l, ctx.rank, now);
    ctx.missed = miss;
    // Plain keys are counted where the serial sims count them (server
    // departure); replicas are counted at the coordinator, winner-only,
    // to preserve the serial first-wins counter semantics.
    const bool counted = !ctx.is_replica && (count_unmeasured_ || ctx.measured);
    if (counted) {
      if (!count_unmeasured_) {
        // End-to-end contract: keys counted at departure, gated.
        ++shard.keys;
        obs::bump(shard.sobs.keys);
      }
      if (miss) {
        ++shard.misses;
        obs::bump(shard.sobs.misses);
      }
    }
    if (miss) {
      if (!coalesce_ || shard.fetch.lead_or_park(l, ctx.rank, d.job_id, now)) {
        ctx.led = true;
        if (counted) ++shard.db_fetches;
        const double ds = shard.db_rngs[l].exponential(db_rate_);
        shard.sim->schedule_in(ds, [this, s_idx, slot = d.job_id, ds] {
          on_fetch_done(s_idx, slot, ds);
        });
      } else {
        ctx.parked = true;
        if (counted) {
          ++shard.delayed_hits;
          obs::bump(shard.sobs.coalesced);
        }
      }
    } else {
      post_completion(shard, d.job_id);
    }
  }

  void on_fetch_done(std::size_t s_idx, std::uint64_t slot, double ds) {
    ServerShard& shard = *shards_[s_idx];
    const double now = shard.sim->now();
    std::uint32_t l = 0;
    std::uint64_t rank = 0;
    {
      KeyCtx& ctx = shard.jobs.at(
          slot, "sharded engine: DB completion for unknown key");
      ctx.db_sojourn = ds;
      l = ctx.local;
      rank = ctx.rank;
      if (real_cache_ &&
          (churn_ == nullptr || shard.slot_state[l] == SlotState::kLive ||
           shard.slot_state[l] == SlotState::kDraining)) {
        // A dead slot's store is never refilled: the fetch belongs to the
        // departed incarnation (retirement waits for it via `inflight`).
        const std::uint32_t vb = shard.cache->refill(l, rank, now);
        if (churn_ != nullptr && shard.cold[l] != 0 &&
            shard.cache->store(l).stats().evictions ==
                shard.evict_base[l]) {
          shard.refill_storm_bytes += vb;
        }
      }
      if (!ctx.is_replica && (count_unmeasured_ || ctx.measured)) {
        obs::observe(shard.sobs.db_sojourn, obs::to_us(ds));
      }
    }
    post_completion(shard, slot);
    if (coalesce_) {
      shard.fetch.release(l, rank, shard.released);
      for (const FetchTable::Waiter& w : shard.released) {
        KeyCtx& wctx = shard.jobs.at(
            w.job, "sharded engine: released waiter for unknown key");
        wctx.db_sojourn = now - w.parked_at;
        if (!wctx.is_replica && (count_unmeasured_ || wctx.measured)) {
          obs::observe(shard.sobs.db_sojourn, obs::to_us(wctx.db_sojourn));
          obs::observe(shard.sobs.delayed_wait, obs::to_us(wctx.db_sojourn));
        }
        post_completion(shard, w.job);
      }
    }
  }

  void post_completion(ServerShard& shard, std::uint64_t slot) {
    const KeyCtx c = shard.jobs.take(
        slot, "sharded engine: completion for unknown key");
    if (c.is_replica) shard.live_replicas.erase(c.id);
    if (churn_ != nullptr) {
      --shard.inflight[c.local];
      maybe_retire(shard, c.local);
    }
    group_.post(shard.lp, 0, /*origin=*/1 + c.global,
                shard.sim->now() + net_half_,
                sim::InlineCallback([this, c] { on_completion(c); }));
  }

  void on_completion(const KeyCtx& c) {
    const double now = co_->now();
    last_completion_ = now;
    if (!c.is_replica) {
      if (churn_ != nullptr && (count_unmeasured_ || c.measured)) {
        // Per-epoch miss-ratio window: a key is attributed to the window
        // open at its *completion* (the miss was decided one lookahead
        // earlier at the server — at most net/2 of skew per event).
        EpochWin& w = windows_.back();
        ++w.keys;
        if (c.missed) ++w.misses;
        w.p99.add(obs::to_us(net_full_ + c.server_sojourn + c.db_sojourn));
      }
      ForkJoinJoiner::Key& k = joiner_->key(
          c.id, "sharded engine: completion for unknown joiner key");
      k.server_sojourn = c.server_sojourn;
      k.db_sojourn = c.db_sojourn;
      k.server = c.global;
      joiner_->complete_key(c.id, now);
      return;
    }
    const auto rit = reps_.find(c.id);
    math::require(rit != reps_.end(),
                  "sharded engine: completion for unknown replica");
    const RepInfo info = rit->second;
    reps_.erase(rit);
    Group& g = groups_.at(info.gid);
    std::erase(g.live, c.id);
    --g.outstanding;
    if (!g.won) {
      g.won = true;
      if (g.hedge_event != sim::kInvalidEventId) {
        co_->cancel(g.hedge_event);
        g.hedge_event = sim::kInvalidEventId;
      }
      if (policy_->hedged()) {
        // The serial estimator observes dispatch → server departure; the
        // completion message cannot recover the departure instant, but
        // dispatch → server arrival is a constant net/2, so net/2 + the
        // carried sojourn is the same quantity.
        deadline_->observe(net_half_ + c.server_sojourn);
      }
      ForkJoinJoiner::Key& k = joiner_->key(
          g.kjob, "sharded engine: winner for unknown joiner key");
      k.server_sojourn = c.server_sojourn;
      k.db_sojourn = c.db_sojourn;
      k.server = c.global;
      if (c.measured) {
        ++co_keys_;
        obs::bump(co_sobs_.keys);
        if (c.missed) {
          ++co_misses_;
          obs::bump(co_sobs_.misses);
          obs::observe(co_sobs_.db_sojourn, obs::to_us(c.db_sojourn));
          if (c.led) ++co_db_fetches_;
          if (c.parked) {
            ++co_delayed_hits_;
            obs::bump(co_sobs_.coalesced);
            obs::observe(co_sobs_.delayed_wait, obs::to_us(c.db_sojourn));
          }
        }
      }
      joiner_->complete_key(g.kjob, now);
      if (policy_->cancel_on_win()) {
        for (const std::uint64_t rid : g.live) post_cancel(rid);
      }
    } else {
      wasted_ += c.service;
      obs::observe(co_sobs_.wasted_service, obs::to_us(c.service));
    }
    if (g.outstanding == 0) groups_.erase(info.gid);
  }

  void post_cancel(std::uint64_t rid) {
    const RepInfo& info = reps_.at(rid);
    const std::size_t s_idx = info.server % k_;
    group_.post(0, shards_[s_idx]->lp, /*origin=*/0, co_->now() + net_half_,
                sim::InlineCallback(
                    [this, s_idx, rid] { on_cancel(s_idx, rid); }));
  }

  void on_cancel(std::size_t s_idx, std::uint64_t rid) {
    ServerShard& shard = *shards_[s_idx];
    const auto it = shard.live_replicas.find(rid);
    // Unknown id: the replica's completion is already in flight toward the
    // coordinator (cancels never beat arrivals — see file comment).
    if (it == shard.live_replicas.end()) return;
    const std::uint64_t slot = it->second;
    const std::uint32_t global = shard.jobs.at(
        slot, "sharded engine: cancel for unknown replica job").global;
    const std::uint32_t local = static_cast<std::uint32_t>(global / k_);
    if (!shard.stations[local]->cancel_waiting(slot)) return;  // in service
    ++shard.cancelled;
    obs::bump(shard.sobs.replica_cancelled);
    shard.jobs.erase(slot, "sharded engine: cancelled replica vanished");
    shard.live_replicas.erase(it);
    group_.post(shard.lp, 0, /*origin=*/1 + global,
                shard.sim->now() + net_half_,
                sim::InlineCallback([this, rid] { on_cancel_ack(rid); }));
  }

  void on_cancel_ack(std::uint64_t rid) {
    const auto rit = reps_.find(rid);
    math::require(rit != reps_.end(),
                  "sharded engine: cancel ack for unknown replica");
    const RepInfo info = rit->second;
    reps_.erase(rit);
    Group& g = groups_.at(info.gid);
    std::erase(g.live, rid);
    --g.outstanding;
    if (g.outstanding == 0) groups_.erase(info.gid);
  }

  void send_replica(Group& g, std::uint64_t gid, std::size_t sj,
                    bool measured) {
    const std::uint64_t rid = next_rid_++;
    reps_.emplace(rid, RepInfo{gid, static_cast<std::uint32_t>(sj)});
    g.live.push_back(rid);
    ++g.outstanding;
    post_arrival(sj, rid, /*rank=*/0, measured, /*is_replica=*/true);
  }

  void fire_hedge(std::uint64_t gid, bool measured, dist::Rng& hedge_rng) {
    const auto it = groups_.find(gid);
    if (it == groups_.end() || it->second.won) return;
    Group& g = it->second;
    g.hedge_event = sim::kInvalidEventId;
    ++hedges_fired_;
    obs::bump(co_sobs_.hedge_fired);
    for (unsigned r = 1; r < policy_->degree(); ++r) {
      send_replica(g, gid, server_pick_->sample(hedge_rng), measured);
    }
  }

  sim::ShardGroup group_;
  double net_half_;
  double net_full_;
  std::size_t k_;
  /// Non-null iff a MembershipSchedule is active (the one churn branch the
  /// hot paths pay; everything churn-specific hides behind it).
  const MembershipSchedule* churn_;
  double miss_ratio_;
  double db_rate_;
  bool real_cache_;
  bool coalesce_;
  /// Trace-replay contract: key/miss/fetch counters and db-sojourn
  /// observations are ungated; the end-to-end contract gates them on the
  /// measurement window.
  bool count_unmeasured_;
  workload::KeyTable* table_;  ///< shared unbounded table (budget == 0)
  bool bounded_;               ///< per-shard bounded tables + gauges
  const RedundancyPolicy* policy_;
  sim::Simulator* co_;
  StageObserver co_sobs_;
  std::vector<std::unique_ptr<ServerShard>> shards_;

  ForkJoinJoiner* joiner_ = nullptr;
  const dist::Discrete* server_pick_ = nullptr;
  std::optional<HedgeDeadline> deadline_;
  std::unordered_map<std::uint64_t, Group> groups_;
  std::unordered_map<std::uint64_t, RepInfo> reps_;
  std::uint64_t next_rid_ = 1;
  std::uint64_t next_gid_ = 1;
  std::uint64_t co_keys_ = 0;
  std::uint64_t co_misses_ = 0;
  std::uint64_t co_db_fetches_ = 0;
  std::uint64_t co_delayed_hits_ = 0;
  std::uint64_t hedges_fired_ = 0;
  double wasted_ = 0.0;
  double last_completion_ = 0.0;

  // --- membership churn (coordinator-side; untouched when churn_ == null) --
  std::size_t initial_live_ = 0;   ///< slots live at t=0
  std::size_t servers_total_ = 0;  ///< initial + pre-provisioned join slots
  hashing::ConsistentHashRing* ring_ = nullptr;  ///< the live, mutated ring
  std::function<std::size_t(std::uint64_t)> route_;  ///< rank → live server
  std::vector<SlotReg> reg_state_;
  std::size_t live_ = 0;        ///< currently-live slot count
  std::size_t fresh_next_ = 0;  ///< next never-used slot index
  std::vector<EpochWin> windows_;
  std::uint64_t churn_events_total_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t retired_ = 0;
};

}  // namespace

EndToEndResult run_end_to_end_sharded(const EndToEndConfig& cfg) {
  const core::SystemConfig& sys = cfg.system;
  const std::vector<double> shares = sys.shares();
  const std::size_t M = shares.size();
  const std::size_t K = std::min(cfg.common.shard_jobs, M);
  const double horizon = cfg.common.warmup_time + cfg.common.measure_time;
  const bool real_cache = cfg.miss_mode == MissMode::kRealCache;
  const bool churn = cfg.common.churn.active();
  const RedundancyPolicy& policy = cfg.redundancy;
  const bool redundant = policy.replicated();
  const bool coalesce = cfg.common.coalescing == MissCoalescing::kPerServer;

  // Sharded split order (its own contract — DESIGN.md §4i): the
  // coordinator streams (arrivals, key draws, hedge placement iff the
  // policy hedges), then per-server (service, miss, db) triples in global
  // server order. Invariant under the shard count by construction.
  dist::Rng master(cfg.common.seed);
  dist::Rng req_rng = master.split();
  dist::Rng key_rng = master.split();
  dist::Rng hedge_rng = policy.hedged() ? master.split() : dist::Rng(0);

  const std::unique_ptr<hashing::KeyMapper> mapper =
      engine::make_mapper(cfg.mapper, shares);
  const dist::Discrete server_pick(shares);

  std::unique_ptr<workload::KeySpace> keyspace;
  std::unique_ptr<workload::KeyTable> key_table;
  const workload::ValueSizeModel value_sizes(214.476, 0.348238, 1,
                                             cfg.common.max_value_bytes);
  const std::size_t budget = cfg.common.keytable_budget_bytes;
  if (real_cache) {
    keyspace = std::make_unique<workload::KeySpace>(cfg.keyspace_size,
                                                    cfg.zipf_exponent);
    if (budget > 0 || churn) {
      // Bounded mode (or churn): this table only routes ranks to servers on
      // the coordinator; each shard builds its own bounded table (lazy
      // materialization and eviction are single-threaded per owner, and
      // under churn the coordinator's epoch-tracked remaps must never be
      // visible to shards).
      key_table = std::make_unique<workload::KeyTable>(
          *keyspace, *mapper, &value_sizes, workload::KeyTable::Build::kLazy,
          budget);
      if (churn) key_table->track_epochs();
    } else {
      // Eager build: shards read the table concurrently (store probes and
      // refills); the lazy chunk materialization is single-threaded-only.
      key_table = std::make_unique<workload::KeyTable>(
          *keyspace, *mapper, &value_sizes, workload::KeyTable::Build::kEager);
    }
  }
  // Churn requires the kRing mapper (EndToEndSim validates) — the live,
  // mutable ring the coordinator applies membership events to.
  auto* const ring =
      churn ? static_cast<hashing::ConsistentHashRing*>(mapper.get()) : nullptr;

  ShardedCluster::TableSpec tables;
  tables.shared = budget == 0 && !churn ? key_table.get() : nullptr;
  tables.keyspace = keyspace.get();
  tables.mapper = mapper.get();
  tables.values = &value_sizes;
  tables.budget_bytes = budget;
  tables.ring = ring;
  ShardedCluster cluster(sys, cfg.common, master, real_cache, coalesce,
                         /*count_unmeasured=*/false, cfg.recorder, tables,
                         &policy, K);

  ForkJoinJoiner joiner(sys.network_latency, cluster.co_sobs(),
                        /*keep_total_samples=*/true,
                        /*per_key_counter=*/nullptr);
  cluster.set_joiner(&joiner);
  cluster.set_server_pick(&server_pick);
  if (churn) {
    // Armed before the source so a churn event at time t mutates the ring
    // before any same-time arrival is routed (coordinator ties run in
    // scheduling order).
    cluster.start_churn(ring, [kt = key_table.get()](std::uint64_t rank) {
      return static_cast<std::size_t>(kt->server(rank));
    });
  }

  sim::Simulator& co = cluster.coordinator();
  sim::PoissonSource source(co, cfg.effective_request_rate(),
                            std::move(req_rng), [&] {
    const double start = co.now();
    const bool measured = start >= cfg.common.warmup_time;
    const std::uint64_t rid =
        joiner.open_request(start, sys.keys_per_request, measured);
    for (std::uint32_t i = 0; i < sys.keys_per_request; ++i) {
      std::uint64_t rank = 0;
      std::size_t server_idx;
      if (real_cache) {
        rank = keyspace->sample_rank(key_rng);
        server_idx = key_table->server(rank);
      } else {
        server_idx = server_pick.sample(key_rng);
      }
      const std::uint64_t kjob = joiner.open_key(rid, rank, server_idx);
      if (!redundant) {
        cluster.post_arrival(server_idx, kjob, rank, measured,
                             /*is_replica=*/false);
      } else {
        cluster.dispatch_replicas(kjob, server_idx, measured, key_rng,
                                  hedge_rng);
      }
    }
  });
  // Scheduled before the source starts, so at a tie the stop (lower seq)
  // wins: an arrival at exactly the horizon is dropped, not generated —
  // part of the sharded contract (the serial loop generates it).
  co.schedule_at(horizon, [&source] { source.stop(); });
  source.start();

  cluster.run();
  cluster.check_drained();

  EndToEndResult res;
  res.network = stats::mean_ci(joiner.network_stats());
  res.server = stats::mean_ci(joiner.server_stats());
  res.database = stats::mean_ci(joiner.database_stats());
  res.total = stats::mean_ci(joiner.total_stats());
  res.total_samples = joiner.take_total_samples();
  const std::uint64_t keys = cluster.total_keys();
  res.measured_miss_ratio =
      keys == 0 ? 0.0
                : static_cast<double>(cluster.total_misses()) /
                      static_cast<double>(keys);
  cluster.merge_observability(
      cfg.recorder, key_table != nullptr ? key_table->chunks_resident() : 0,
      key_table != nullptr ? key_table->bytes_resident() : 0);
  // total_server_slots() == M without churn; with churn it adds the
  // pre-provisioned join slots (idle-before-join slots report low
  // utilization over the full horizon — by design, the horizon is the
  // denominator every slot shares).
  const std::size_t slots = cluster.total_server_slots();
  res.server_utilization.reserve(slots);
  for (std::size_t j = 0; j < slots; ++j) {
    res.server_utilization.push_back(cluster.utilization_of(j, horizon));
    StageObserver::record_server_utilization(cfg.recorder, j,
                                             res.server_utilization.back());
  }
  if (churn) {
    res.churn = cluster.churn_stats();
    res.churn.ranks_remapped = key_table->ranks_remapped();
    StageObserver::record_churn_epochs(cfg.recorder, res.churn);
  }
  res.requests_completed = joiner.measured_requests();
  res.keys_completed = joiner.keys_completed();
  res.events_executed = cluster.group().events_executed();
  res.measured_db_fetches = cluster.total_db_fetches();
  res.measured_delayed_hits = cluster.total_delayed_hits();
  if (redundant) {
    res.hedges_fired = cluster.hedges_fired();
    res.replicas_cancelled = cluster.total_cancelled();
    res.replica_wasted_service = cluster.wasted_service();
  }
  return res;
}

TraceReplayResult run_trace_replay_sharded(const TraceReplayConfig& cfg,
                                           const workload::Trace& trace,
                                           const workload::KeySpace& keys) {
  const engine::TraceInjector injector(trace, keys.size());
  const core::SystemConfig& sys = cfg.system;
  const std::vector<double> shares = sys.shares();
  const std::size_t M = shares.size();
  const std::size_t K = std::min(cfg.common.shard_jobs, M);
  const double net_half = sys.network_latency / 2.0;
  const bool real_cache = cfg.miss_mode == MissMode::kRealCache;
  const bool churn = cfg.common.churn.active();
  const bool coalesce = cfg.common.coalescing == MissCoalescing::kPerServer;

  struct PreRequest {
    double start = 0.0;
    std::uint32_t n_keys = 0;
  };
  std::unordered_map<std::uint64_t, std::uint32_t> request_index;
  std::vector<PreRequest> pre;
  for (const auto& rec : trace.records()) {
    const auto [it, fresh] = request_index.try_emplace(
        rec.request_id, static_cast<std::uint32_t>(pre.size()));
    if (fresh) pre.emplace_back();
    PreRequest& req = pre[it->second];
    req.n_keys += 1;
    req.start = fresh ? rec.time : std::min(req.start, rec.time);
  }

  // Sharded replay split order: per-server (service, miss, db) triples in
  // global server order — no coordinator streams (the trace provides the
  // arrivals and key identities).
  dist::Rng master(cfg.common.seed);
  const std::unique_ptr<hashing::KeyMapper> mapper =
      engine::make_mapper(cfg.mapper, shares);
  const workload::ValueSizeModel value_sizes(214.476, 0.348238, 1,
                                             cfg.common.max_value_bytes);
  // Routing happens single-threaded at injection time, so the table may
  // stay lazy under Bernoulli; unbounded real-cache mode reads it from
  // every shard and must be eager. With a KeyTable budget — or churn, whose
  // epoch-tracked remaps must stay coordinator-private — this table only
  // routes (real-cache shards own private tables), so it stays lazy.
  const std::size_t budget = cfg.common.keytable_budget_bytes;
  const bool shared_table = real_cache && budget == 0 && !churn;
  workload::KeyTable key_table(keys, *mapper,
                               real_cache ? &value_sizes : nullptr,
                               shared_table ? workload::KeyTable::Build::kEager
                                            : workload::KeyTable::Build::kLazy,
                               budget);
  if (churn) key_table.track_epochs();
  // Churn requires the kRing mapper (TraceReplaySim validates).
  auto* const ring =
      churn ? static_cast<hashing::ConsistentHashRing*>(mapper.get()) : nullptr;

  ShardedCluster::TableSpec tables;
  tables.shared = shared_table || !real_cache ? &key_table : nullptr;
  tables.keyspace = &keys;
  tables.mapper = mapper.get();
  tables.values = &value_sizes;
  tables.budget_bytes = budget;
  tables.ring = ring;
  ShardedCluster cluster(sys, cfg.common, master, real_cache, coalesce,
                         /*count_unmeasured=*/true, cfg.recorder, tables,
                         /*policy=*/nullptr, K);

  ForkJoinJoiner joiner(sys.network_latency, cluster.co_sobs(),
                        /*keep_total_samples=*/false,
                        /*per_key_counter=*/cluster.co_sobs().keys);
  cluster.set_joiner(&joiner);
  for (const PreRequest& p : pre) {
    joiner.open_request(p.start, p.n_keys, p.start >= cfg.common.warmup_time);
  }

  if (churn) {
    // Routing must happen at the record's *virtual* time, not at injection
    // time: a record after a membership event must see the mutated ring.
    // Each record becomes a coordinator event (armed after start_churn, so
    // a same-time churn event remaps first) that routes and posts the
    // arrival; post_arrival adds net/2, landing at the same instant
    // inject_arrival would have.
    cluster.start_churn(ring, [&key_table](std::uint64_t rank) {
      return static_cast<std::size_t>(key_table.server(rank));
    });
    sim::Simulator& co = cluster.coordinator();
    injector.start([&](const workload::TraceRecord& rec) {
      // Server resolved later — the joiner's slot is overwritten with the
      // completing server at join time, as for every sharded run.
      const std::uint64_t job = joiner.open_key(
          request_index.at(rec.request_id), rec.key_rank, 0);
      co.schedule_at(rec.time,
                     [&cluster, &key_table, job, rank = rec.key_rank] {
                       cluster.post_arrival(key_table.server(rank), job, rank,
                                            /*measured=*/true,
                                            /*is_replica=*/false);
                     });
    });
  } else {
    injector.start([&](const workload::TraceRecord& rec) {
      const std::size_t server = key_table.server(rec.key_rank);
      const std::uint64_t job = joiner.open_key(
          request_index.at(rec.request_id), rec.key_rank, server);
      cluster.inject_arrival(server, rec.time + net_half, job, rec.key_rank);
    });
  }

  cluster.run();
  cluster.check_drained();

  TraceReplayResult res;
  res.network = stats::mean_ci(joiner.network_stats());
  res.server = stats::mean_ci(joiner.server_stats());
  res.database = stats::mean_ci(joiner.database_stats());
  res.total = stats::mean_ci(joiner.total_stats());
  res.requests_completed = joiner.requests_joined();
  res.measured_requests = joiner.measured_requests();
  res.keys_completed = joiner.keys_completed();
  res.measured_miss_ratio =
      res.keys_completed == 0
          ? 0.0
          : static_cast<double>(cluster.total_misses()) /
                static_cast<double>(res.keys_completed);
  res.horizon = cluster.last_completion();
  res.db_fetches = cluster.total_db_fetches();
  res.delayed_hits = cluster.total_delayed_hits();
  cluster.merge_observability(cfg.recorder, key_table.chunks_resident(),
                              key_table.bytes_resident());
  const std::size_t slots = cluster.total_server_slots();
  res.server_utilization.reserve(slots);
  for (std::size_t j = 0; j < slots; ++j) {
    res.server_utilization.push_back(cluster.utilization_of(j, res.horizon));
    StageObserver::record_server_utilization(cfg.recorder, j,
                                             res.server_utilization.back());
  }
  if (churn) {
    res.churn = cluster.churn_stats();
    res.churn.ranks_remapped = key_table.ranks_remapped();
    StageObserver::record_churn_epochs(cfg.recorder, res.churn);
  }
  return res;
}

}  // namespace mclat::cluster::engine
