// db_stage.h — the backend database behind one submit().
//
// The DbMode switch (infinite-server eq.-19 approximation / real M/M/1 /
// M/M/c shard pool) used to live inline in end_to_end.cpp only, which is
// why trace replay could not vary its database. DbStage owns whichever
// station the mode calls for and forwards submissions; the departure
// handler is shared verbatim, so a simulator's miss path reads the same in
// every mode.
//
// The service RNG is passed in by value: the caller performs its
// master.split() at the same position the pre-engine code did, keeping the
// stream sequence golden-identical.
//
// The departure handler is stored here exactly once and the inner station
// calls it through a one-pointer trampoline. That keeps it available by
// reference for deliver(): the miss-coalescing release path fans one fetch
// completion into many waiter completions, and routing those through the
// stored handler means N invocations, never N std::function copies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "cluster/delay_station.h"
#include "cluster/modes.h"
#include "dist/exponential.h"
#include "dist/rng.h"
#include "math/numerics.h"
#include "sim/multi_station.h"
#include "sim/simulator.h"
#include "sim/station.h"

namespace mclat::cluster::engine {

class DbStage {
 public:
  using DepartureHandler = std::function<void(const sim::Departure&)>;

  DbStage(sim::Simulator& sim, DbMode mode, unsigned db_servers,
          double db_service_rate, dist::Rng rng, DepartureHandler on_departure)
      : on_departure_(std::move(on_departure)) {
    math::require(static_cast<bool>(on_departure_),
                  "DbStage: null departure handler");
    // One shared trampoline: the stations own a pointer-sized closure, the
    // handler itself lives here (DbStage is pinned — noncopyable — so the
    // `this` capture stays valid).
    auto trampoline = [this](const sim::Departure& d) { on_departure_(d); };
    switch (mode) {
      case DbMode::kInfiniteServer:
        inf_ = std::make_unique<DelayStation>(
            sim, std::make_unique<dist::Exponential>(db_service_rate),
            std::move(rng), trampoline);
        break;
      case DbMode::kSingleServer:
        queue_ = std::make_unique<sim::ServiceStation>(
            sim, std::make_unique<dist::Exponential>(db_service_rate),
            std::move(rng), trampoline);
        break;
      case DbMode::kPooled:
        pool_ = std::make_unique<sim::MultiServerStation>(
            sim, db_servers,
            std::make_unique<dist::Exponential>(db_service_rate),
            std::move(rng), trampoline);
        break;
    }
  }

  DbStage(const DbStage&) = delete;
  DbStage& operator=(const DbStage&) = delete;

  void submit(std::uint64_t job_id) {
    if (inf_) {
      inf_->submit(job_id);
    } else if (pool_) {
      pool_->arrive(job_id);
    } else {
      queue_->arrive(job_id);
    }
  }

  [[nodiscard]] std::uint64_t completed() const noexcept {
    if (inf_) return inf_->completed();
    if (pool_) return pool_->completed();
    return queue_->completed();
  }

  /// Invokes the stored departure handler by reference for a departure the
  /// stage did not itself serve — the coalescing release path synthesizes
  /// one Departure per parked waiter ({arrival = park time, departure =
  /// fetch completion}) and delivers them all through the same handler the
  /// leader's real departure took.
  void deliver(const sim::Departure& d) const { on_departure_(d); }

 private:
  DepartureHandler on_departure_;
  std::unique_ptr<DelayStation> inf_;
  std::unique_ptr<sim::ServiceStation> queue_;
  std::unique_ptr<sim::MultiServerStation> pool_;
};

}  // namespace mclat::cluster::engine
