// hedge.h — the replica lifecycle of the event-driven fork-join cluster:
// the validated RedundancyPolicy, the online hedge-deadline estimator, and
// the ReplicaSet that owns fork-time dispatch, deadline-triggered backups,
// first-replica-wins arbitration and loser cancellation.
//
// PR 5's redundant fan-out hard-coded one lifecycle: fan all d replicas out
// at fork time and let the losers run (their queueing cost is the point of
// modeling replication event-driven). Poloczek & Ciucu (arXiv 1602.07978)
// show exactly when that policy stops paying — replication flips from
// helpful to harmful as utilization crosses a threshold, because every
// backup is also offered load — and the production answer is to *hedge*:
// send one replica, and only if it outlives a deadline (an online tail
// quantile of past primary sojourns) send the backups. This header makes
// the whole space a policy choice:
//
//   trigger   kImmediate | kHedged      when backups are dispatched
//   losers    kLetLosersRun | kCancelOnWin   what happens after the win
//
// kCancelOnWin rides the kernel's generation-tagged O(1) cancellation
// (sim::Simulator::cancel): a losing replica still flying toward its server
// has its arrival event cancelled; one waiting in a FIFO is pulled out via
// ServiceStation::cancel_waiting; one already in service runs to completion
// (service is not preempted — its service time is the *wasted service* the
// observer reports).
//
// Byte-identity contract: with kImmediate + kLetLosersRun the ReplicaSet
// performs exactly the PR-5 sequence — same JobTable insertion order, same
// fork-time RNG draws, same event schedule — so pre-policy output is
// reproduced bit for bit, and with degree 1 the simulator bypasses the
// ReplicaSet entirely. The hedge deadline RNG stream is split from the
// master only when trigger == kHedged, appended after every pre-existing
// split (the PR-6 precedent for optional streams).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/job_table.h"
#include "cluster/modes.h"
#include "cluster/engine/stage_observer.h"
#include "dist/discrete.h"
#include "dist/rng.h"
#include "math/numerics.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "stats/p2_quantile.h"

namespace mclat::cluster {

/// How each key is replicated across servers. Invariants are established at
/// construction (degree >= 1; hedging needs a backup to defer; quantile in
/// (0,1); non-negative deadline floor), so a RedundancyPolicy held by a
/// config is always valid — EndToEndSim never re-checks the numbers.
class RedundancyPolicy {
 public:
  /// Degree 1, immediate, let losers run: the plain fork-join path.
  RedundancyPolicy() = default;

  explicit RedundancyPolicy(unsigned degree,
                            HedgeTrigger trigger = HedgeTrigger::kImmediate,
                            LoserMode losers = LoserMode::kLetLosersRun,
                            double hedge_quantile = 0.95,
                            double hedge_deadline_floor = 0.0)
      : degree_(degree),
        trigger_(trigger),
        losers_(losers),
        hedge_quantile_(hedge_quantile),
        hedge_deadline_floor_(hedge_deadline_floor) {
    math::require(degree_ >= 1,
                  "RedundancyPolicy.degree must be >= 1 (degree 0 would "
                  "dispatch no replica at all)");
    math::require(trigger_ == HedgeTrigger::kImmediate || degree_ >= 2,
                  "RedundancyPolicy.trigger = kHedged requires "
                  "RedundancyPolicy.degree >= 2 (the hedge IS the deferred "
                  "backup replica)");
    math::require(hedge_quantile_ > 0.0 && hedge_quantile_ < 1.0,
                  "RedundancyPolicy.hedge_quantile must lie in (0, 1)");
    math::require(hedge_deadline_floor_ >= 0.0,
                  "RedundancyPolicy.hedge_deadline_floor must be >= 0");
  }

  /// Fan all `degree` replicas out at fork time (PR-5 behavior when losers
  /// are left running).
  [[nodiscard]] static RedundancyPolicy immediate(
      unsigned degree, LoserMode losers = LoserMode::kLetLosersRun) {
    return RedundancyPolicy(degree, HedgeTrigger::kImmediate, losers);
  }

  /// Send the primary only; dispatch the backups if it outlives the online
  /// `quantile` estimate of primary sojourns (never earlier than
  /// `deadline_floor` seconds). Hedged requests are usually paired with
  /// cancellation, so that is the default loser mode here.
  [[nodiscard]] static RedundancyPolicy hedged(
      unsigned degree, double quantile = 0.95, double deadline_floor = 0.0,
      LoserMode losers = LoserMode::kCancelOnWin) {
    return RedundancyPolicy(degree, HedgeTrigger::kHedged, losers, quantile,
                            deadline_floor);
  }

  [[nodiscard]] unsigned degree() const noexcept { return degree_; }
  [[nodiscard]] HedgeTrigger trigger() const noexcept { return trigger_; }
  [[nodiscard]] LoserMode losers() const noexcept { return losers_; }
  [[nodiscard]] double hedge_quantile() const noexcept {
    return hedge_quantile_;
  }
  [[nodiscard]] double hedge_deadline_floor() const noexcept {
    return hedge_deadline_floor_;
  }

  [[nodiscard]] bool replicated() const noexcept { return degree_ > 1; }
  [[nodiscard]] bool hedged() const noexcept {
    return trigger_ == HedgeTrigger::kHedged;
  }
  [[nodiscard]] bool cancel_on_win() const noexcept {
    return losers_ == LoserMode::kCancelOnWin;
  }

 private:
  unsigned degree_ = 1;
  HedgeTrigger trigger_ = HedgeTrigger::kImmediate;
  LoserMode losers_ = LoserMode::kLetLosersRun;
  double hedge_quantile_ = 0.95;
  double hedge_deadline_floor_ = 0.0;
};

namespace engine {

/// The online hedge deadline: a P² streaming estimate of the chosen
/// quantile of primary dispatch→server-departure latency. O(1) per winner,
/// no samples retained — the estimator adapts as utilization drifts.
class HedgeDeadline {
 public:
  /// Below this many winner observations the quantile estimate is too noisy
  /// to gate dispatch on; until then only the configured floor (if any)
  /// arms hedges.
  static constexpr std::uint64_t kMinSamples = 16;

  HedgeDeadline(double quantile, double floor)
      : estimate_(quantile), floor_(floor) {}

  /// Feed the winning replica's dispatch→departure latency.
  void observe(double latency) { estimate_.add(latency); }

  /// Deadline to arm the next request's hedge with, or nullopt while cold
  /// (no floor configured and fewer than kMinSamples observations) — a cold
  /// hedge never fires, so startup cannot flood the cluster with backups
  /// triggered by a garbage estimate.
  [[nodiscard]] std::optional<double> deadline() const {
    if (estimate_.count() >= kMinSamples) {
      return std::max(floor_, estimate_.value());
    }
    if (floor_ > 0.0) return floor_;
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t samples() const noexcept {
    return estimate_.count();
  }

 private:
  stats::P2Quantile estimate_;
  double floor_;
};

/// Owns every replica in flight for the event-driven simulator: fork-time
/// dispatch (immediate or primary-only), the per-request hedge timer,
/// first-wins arbitration on server departures, and loser cancellation.
/// EndToEndSim touches replicas only through dispatch()/on_departure().
class ReplicaSet {
 public:
  ReplicaSet(sim::Simulator& sim, const RedundancyPolicy& policy,
             double net_half,
             std::vector<std::unique_ptr<sim::ServiceStation>>& servers,
             const dist::Discrete& server_pick, dist::Rng hedge_rng,
             const StageObserver& obs)
      : sim_(sim),
        policy_(policy),
        net_half_(net_half),
        servers_(servers),
        server_pick_(server_pick),
        hedge_rng_(std::move(hedge_rng)),
        deadline_(policy.hedge_quantile(), policy.hedge_deadline_floor()),
        obs_(obs) {}

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Forks key `key_job`. Immediate mode reproduces the PR-5 sequence
  /// exactly: replica 0 to the mapper-chosen home, each backup to a server
  /// drawn from `fork_rng` at fork time. Hedged mode sends the primary only
  /// and arms the deadline timer; backup servers are drawn from the
  /// dedicated hedge stream *when the timer fires*, so an un-fired hedge
  /// consumes no randomness.
  void dispatch(std::uint64_t key_job, std::size_t home, dist::Rng& fork_rng) {
    const std::uint64_t gid = groups_.insert(Group{});
    Group& g = groups_.at(gid, "ReplicaSet: lost freshly inserted group");
    g.key_job = key_job;
    g.dispatched_at = sim_.now();
    if (!policy_.hedged()) {
      for (unsigned r = 0; r < policy_.degree(); ++r) {
        const std::size_t sj = r == 0 ? home : server_pick_.sample(fork_rng);
        send_replica(gid, g, sj);
      }
      return;
    }
    send_replica(gid, g, home);
    if (const std::optional<double> dl = deadline_.deadline()) {
      g.hedge_event = sim_.schedule_in(*dl, [this, gid] { fire_hedge(gid); });
    }
  }

  /// First-wins arbitration for a server departure. Returns the key job to
  /// continue through the miss path if this replica won the race, nullopt
  /// for a loser (its service time is recorded as wasted).
  [[nodiscard]] std::optional<std::uint64_t> on_departure(
      const sim::Departure& d) {
    const Replica rep =
        replicas_.take(d.job_id, "ReplicaSet: departure for unknown replica");
    Group& g = groups_.at(rep.group,
                          "ReplicaSet: replica departure for unknown group");
    --g.remaining;
    forget_live(g, d.job_id);
    if (g.won) {
      // A losing replica ran to completion: its value is discarded, its
      // service time was spent for nothing (its queueing cost stays in the
      // server's history either way).
      const double wasted = d.departure - d.service_start;
      wasted_service_ += wasted;
      ++losers_completed_;
      obs::observe(obs_.wasted_service, obs::to_us(wasted));
      retire_if_done(g, rep.group);
      return std::nullopt;
    }
    g.won = true;
    if (policy_.hedged()) {
      if (g.hedge_event != sim::kInvalidEventId) {
        // Won before the deadline: the backups are never sent.
        sim_.cancel(g.hedge_event);
        g.hedge_event = sim::kInvalidEventId;
      }
      deadline_.observe(sim_.now() - g.dispatched_at);
    }
    const std::uint64_t key_job = g.key_job;
    if (policy_.cancel_on_win()) cancel_losers(g);
    retire_if_done(g, rep.group);
    return key_job;
  }

  [[nodiscard]] std::uint64_t replicas_dispatched() const noexcept {
    return dispatched_;
  }
  [[nodiscard]] std::uint64_t replicas_cancelled() const noexcept {
    return cancelled_;
  }
  [[nodiscard]] std::uint64_t losers_completed() const noexcept {
    return losers_completed_;
  }
  [[nodiscard]] std::uint64_t hedges_fired() const noexcept {
    return hedges_fired_;
  }
  /// Total service seconds spent on losing replicas that ran to completion.
  [[nodiscard]] double wasted_service() const noexcept {
    return wasted_service_;
  }
  [[nodiscard]] const HedgeDeadline& hedge_deadline() const noexcept {
    return deadline_;
  }

 private:
  struct Group {
    std::uint64_t key_job = 0;
    double dispatched_at = 0.0;
    unsigned remaining = 0;  ///< replicas dispatched and not yet retired
    bool won = false;
    sim::EventId hedge_event = sim::kInvalidEventId;
    /// Replica jobs still in flight / queued / in service (degree-bounded).
    std::vector<std::uint64_t> live;
  };
  struct Replica {
    std::uint64_t group = 0;
    std::uint32_t server = 0;
    sim::EventId hop = sim::kInvalidEventId;  ///< the network-hop arrival
  };

  void send_replica(std::uint64_t gid, Group& g, std::size_t server) {
    const std::uint64_t rjob = replicas_.insert(
        Replica{gid, static_cast<std::uint32_t>(server), sim::kInvalidEventId});
    ++g.remaining;
    g.live.push_back(rjob);
    ++dispatched_;
    replicas_
        .at(rjob, "ReplicaSet: lost freshly inserted replica")
        .hop = sim_.schedule_in(net_half_, [this, rjob, server] {
      servers_[server]->arrive(rjob);
    });
  }

  void fire_hedge(std::uint64_t gid) {
    Group& g = groups_.at(gid, "ReplicaSet: hedge fired for retired group");
    g.hedge_event = sim::kInvalidEventId;
    ++hedges_fired_;
    obs::bump(obs_.hedge_fired);
    for (unsigned r = 1; r < policy_.degree(); ++r) {
      send_replica(gid, g, server_pick_.sample(hedge_rng_));
    }
  }

  /// Pulls the outstanding losers out of the system: an arrival hop not yet
  /// fired is cancelled in O(1); a replica waiting in its server's FIFO is
  /// removed from the queue; one already in service runs to completion and
  /// takes the loser path above when it departs.
  void cancel_losers(Group& g) {
    for (std::size_t i = 0; i < g.live.size();) {
      const std::uint64_t rjob = g.live[i];
      const Replica& rep =
          replicas_.at(rjob, "ReplicaSet: cancelling unknown replica");
      const bool pulled = sim_.cancel(rep.hop) ||
                          servers_[rep.server]->cancel_waiting(rjob);
      if (!pulled) {
        ++i;  // in service: let it run
        continue;
      }
      replicas_.erase(rjob, "ReplicaSet: double-cancelled replica");
      --g.remaining;
      ++cancelled_;
      obs::bump(obs_.replica_cancelled);
      g.live[i] = g.live.back();
      g.live.pop_back();
    }
  }

  void retire_if_done(Group& g, std::uint64_t gid) {
    if (g.remaining == 0 && g.won) {
      groups_.erase(gid, "ReplicaSet: double-retired replica group");
    }
  }

  static void forget_live(Group& g, std::uint64_t rjob) {
    for (std::size_t i = 0; i < g.live.size(); ++i) {
      if (g.live[i] == rjob) {
        g.live[i] = g.live.back();
        g.live.pop_back();
        return;
      }
    }
  }

  sim::Simulator& sim_;
  RedundancyPolicy policy_;
  double net_half_;
  std::vector<std::unique_ptr<sim::ServiceStation>>& servers_;
  const dist::Discrete& server_pick_;
  dist::Rng hedge_rng_;
  HedgeDeadline deadline_;
  StageObserver obs_;
  JobTable<Group> groups_;
  JobTable<Replica> replicas_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t losers_completed_ = 0;
  std::uint64_t hedges_fired_ = 0;
  double wasted_service_ = 0.0;
};

}  // namespace engine
}  // namespace mclat::cluster
