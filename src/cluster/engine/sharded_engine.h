// sharded_engine.h — conservative parallel execution of one cluster trial.
//
// Entry points for EndToEndSim::run() and TraceReplaySim::run() when
// CommonConfig.shard_jobs > 1: the trial's servers are partitioned across
// K = min(shard_jobs, servers) calendar shards plus one coordinator LP
// (arrival generation, fork-join joining, replica arbitration), executed by
// a sim::ShardGroup in lookahead-bounded windows on K+1 worker threads from
// an exec::ThreadPool. The lookahead is the one-way network delay: every
// cross-LP edge in the engine's fork-join topology (fork fan-out, join
// notifications, replica cancels and their acks) is exactly net/2 in the
// future, so the null-message window bound holds by construction.
//
// Determinism contract (DESIGN.md §4i): a sharded run is reproducible for
// a fixed config across repeated runs, worker-thread counts, *and* shard
// counts — but it is a distinct sampling contract from the serial
// schedule, not a sample-for-sample twin (per-server RNG streams replace
// the serial interleaved draws, and redundant fan-out arbitrates on first
// *completion* rather than first server departure). shard_jobs == 1 never
// reaches this code: the serial path stays byte-identical to the goldens.
#pragma once

#include "cluster/end_to_end.h"
#include "cluster/trace_replay.h"
#include "workload/keyspace.h"
#include "workload/trace.h"

namespace mclat::cluster::engine {

/// Parallel twin of EndToEndSim::run(). Requires (validated in the
/// EndToEndSim ctor) DbMode::kInfiniteServer — a queueing database would
/// put a zero-lookahead edge between servers and a shared DB station.
[[nodiscard]] EndToEndResult run_end_to_end_sharded(const EndToEndConfig& cfg);

/// Parallel twin of TraceReplaySim::run(). Same database restriction.
[[nodiscard]] TraceReplayResult run_trace_replay_sharded(
    const TraceReplayConfig& cfg, const workload::Trace& trace,
    const workload::KeySpace& keys);

}  // namespace mclat::cluster::engine
