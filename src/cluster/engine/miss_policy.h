// miss_policy.h — how a key misses.
//
// Two policies behind one flat struct (a branch per key, exactly what the
// pre-engine simulators paid — no per-event virtual dispatch):
//
//   * Bernoulli(r): the model's iid coin. Draws nothing when r == 0 (the
//     short-circuit the golden RNG streams depend on).
//   * Real cache: each server runs an LruStore (slab allocator +
//     per-class LRU); a key misses when its server's store doesn't hold
//     it, and a database fetch refills that store. The miss ratio
//     *emerges* from Zipf popularity vs cache capacity (ablation A2).
//
// Both policies own the miss RNG stream. The real-cache policy never draws
// from it, but accepting it keeps the caller's master.split() sequence
// identical across modes — the split order is part of the golden contract
// (DESIGN.md §4f).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cache/lru_store.h"
#include "dist/rng.h"
#include "workload/key_table.h"

namespace mclat::cluster::engine {

class MissPolicy {
 public:
  [[nodiscard]] static MissPolicy bernoulli(double miss_ratio,
                                            dist::Rng miss_rng) {
    return MissPolicy(miss_ratio, std::move(miss_rng));
  }

  /// One LruStore of `cache_bytes_per_server` per server, looked up and
  /// refilled through `table`'s memoized key/hash/value-size columns (the
  /// table must be built with a ValueSizeModel and outlive the policy).
  [[nodiscard]] static MissPolicy real_cache(workload::KeyTable& table,
                                             std::size_t servers,
                                             std::size_t cache_bytes_per_server,
                                             dist::Rng miss_rng) {
    MissPolicy p(0.0, std::move(miss_rng));
    p.table_ = &table;
    cache::SlabAllocator::Config scfg;
    scfg.memory_limit = cache_bytes_per_server;
    // Simulated caches are far smaller than a production 64 GB memcached;
    // scale the page size down accordingly so every slab class can actually
    // obtain pages (memcached's 1 MiB pages would starve most classes of a
    // few-MiB cache — an artefact, not the phenomenon under study).
    scfg.page_size = std::min<std::size_t>(
        64 * 1024,
        std::max<std::size_t>(cache_bytes_per_server / 32, 8 * 1024));
    scfg.growth_factor = 2.0;
    p.stores_.reserve(servers);
    for (std::size_t j = 0; j < servers; ++j) {
      p.stores_.push_back(std::make_unique<cache::LruStore>(scfg));
    }
    return p;
  }

  [[nodiscard]] bool real() const noexcept { return table_ != nullptr; }

  /// Decides the miss for a key departing server `server` at `now`. The
  /// real-cache lookup promotes the key to MRU on a hit (LRU dynamics are
  /// part of the policy, not a side effect).
  [[nodiscard]] bool is_miss(std::size_t server, std::uint64_t key_rank,
                             double now) {
    if (table_ != nullptr) {
      const workload::KeyTable::View kv = table_->view(key_rank);
      return !stores_[server]->get(kv.key, kv.hash, now).has_value();
    }
    return miss_ratio_ > 0.0 && miss_rng_.bernoulli(miss_ratio_);
  }

  /// The database fetched the value: refill the server's cache. Only the
  /// value's *size* matters to slab occupancy and eviction, so set_sized
  /// skips materialising the payload; key, hash and size are memoized
  /// loads. No-op under Bernoulli. Returns the value bytes stored (0 under
  /// Bernoulli) — the churn path sums these into cache.refill_storm_bytes
  /// while a joined-cold store is still filling.
  std::uint32_t refill(std::size_t server, std::uint64_t key_rank,
                       double now) {
    if (table_ == nullptr) return 0;
    const workload::KeyTable::View kv = table_->view(key_rank);
    stores_[server]->set_sized_hashed(kv.key, kv.hash, kv.value_bytes, now);
    return kv.value_bytes;
  }

  /// Drops every item in `server`'s store — a cold-cache join or a retired
  /// slot being decommissioned. No-op under Bernoulli.
  void flush(std::size_t server) {
    if (table_ != nullptr) stores_[server]->flush();
  }

  /// Live items in `server`'s store (0 under Bernoulli) — the aggregate
  /// LRU capacity C the Che/Ji-Quan-Tan prediction is evaluated at.
  [[nodiscard]] std::uint64_t items(std::size_t server) const noexcept {
    return table_ != nullptr ? stores_[server]->size() : 0;
  }

  /// Test/diagnostic access to a server's store (real-cache mode only).
  [[nodiscard]] const cache::LruStore& store(std::size_t server) const {
    return *stores_[server];
  }

  /// Live item bytes across every store (real-cache mode; 0 under
  /// Bernoulli) — the authoritative occupancy number behind the budget
  /// checks and gauges, summed from each store's StoreStats.resident_bytes.
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stores_) total += s->stats().resident_bytes;
    return total;
  }

  /// Aggregated flat-index probe statistics across every store (the
  /// cache.index.probe_len / .probe_max gauges).
  [[nodiscard]] cache::IndexStats index_stats() const noexcept {
    cache::IndexStats agg;
    for (const auto& s : stores_) agg.merge(s->index_stats());
    return agg;
  }

 private:
  MissPolicy(double miss_ratio, dist::Rng miss_rng)
      : miss_ratio_(miss_ratio), miss_rng_(std::move(miss_rng)) {}

  double miss_ratio_;
  dist::Rng miss_rng_;
  workload::KeyTable* table_ = nullptr;
  std::vector<std::unique_ptr<cache::LruStore>> stores_;
};

}  // namespace mclat::cluster::engine
