// arrival.h — how requests enter the engine.
//
// The ArrivalSource concept names the duck type every online generator
// satisfies: start() begins emitting into the simulator, stop() ends the
// run. Two models live in src/sim/ (they are generic event-kernel
// citizens, not cluster-specific):
//
//   * sim::PoissonSource — the open-loop Poisson request generator and the
//     workload-driven miss stream;
//   * sim::BatchSource   — the per-server GI^X renewal batch source.
//
// The third source is offline: a TraceInjector validates a recorded trace
// (time-sorted, every key rank inside the keyspace — no silent
// `rank % keys` aliasing) and pre-schedules one arrival per record. It is
// constructed before any simulation object so a bad trace fails fast,
// naming the offending record.
#pragma once

#include <concepts>
#include <cstdint>

#include "math/numerics.h"
#include "sim/source.h"
#include "workload/trace.h"

namespace mclat::cluster::engine {

template <typename S>
concept ArrivalSource = requires(S source) {
  { source.start() };
  { source.stop() };
};

static_assert(ArrivalSource<sim::PoissonSource>);
static_assert(ArrivalSource<sim::BatchSource>);

class TraceInjector {
 public:
  /// Validates eagerly: non-empty, and every record's key_rank <
  /// `rank_limit` (the keyspace size) — out-of-range ranks throw,
  /// identifying the record, instead of aliasing into the keyspace.
  TraceInjector(const workload::Trace& trace, std::uint64_t rank_limit)
      : trace_(trace) {
    math::require(!trace.empty(), "TraceInjector: empty trace");
    trace.require_ranks_below(rank_limit);
  }

  /// Schedules the whole trace: `plan(record)` runs once per record in
  /// trace order (fork the key, schedule its arrival). Requires the trace
  /// sorted by time (Trace::sort_by_time()).
  template <typename Plan>
  void start(Plan&& plan) const {
    double prev_time = 0.0;
    for (const workload::TraceRecord& rec : trace_.records()) {
      math::require(rec.time >= prev_time,
                    "TraceInjector: trace must be sorted by time");
      prev_time = rec.time;
      plan(rec);
    }
  }

  [[nodiscard]] std::size_t records() const noexcept { return trace_.size(); }

 private:
  const workload::Trace& trace_;
};

}  // namespace mclat::cluster::engine
