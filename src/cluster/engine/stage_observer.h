// stage_observer.h — the single spelling of every cluster metric name.
//
// Before the engine, each simulator re-listed the "stage.*" /
// "request.sync_*" / "server.<j>.*" / "db.*" registrations; renaming a
// metric meant a three-file sweep and the spellings had already started to
// drift (assembly counts under "assembly.*", the event-driven sims under
// "sim.*"/"db.*"). This header is now the only place those names exist.
//
// A StageObserver is a flat struct of resolved handles (nullptr under the
// null recorder — the obs::Recorder null-object pattern), so the hot path
// pays one predictable branch per record and resolution happens once at
// setup. Registration order is irrelevant to output bytes: obs::Registry
// iterates name-sorted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "cache/flat_index.h"
#include "cluster/membership.h"
#include "obs/recorder.h"
#include "sim/station.h"

namespace mclat::cluster::engine {

struct StageObserver {
  // Per-request fork-join decomposition (observed once per joined request).
  obs::LatencyStat* network = nullptr;  ///< stage.network_us
  obs::LatencyStat* server = nullptr;   ///< stage.server_us
  obs::LatencyStat* db = nullptr;       ///< stage.database_us
  obs::LatencyStat* total = nullptr;    ///< stage.total_us
  obs::LatencyStat* gap = nullptr;      ///< request.sync_gap_us
  obs::LatencyStat* slack = nullptr;    ///< request.sync_slack_us
  // Per-key / per-miss instruments (which names back these differs between
  // the event-driven sims and post-hoc assembly — see the factories).
  obs::LatencyStat* db_sojourn = nullptr;  ///< db.sojourn_us (sims only)
  obs::Counter* keys = nullptr;            ///< sim.keys_completed | assembly.keys
  obs::Counter* misses = nullptr;          ///< db.misses | assembly.misses
  // Miss-coalescing instruments (attach_coalescing; null unless a
  // MissCoalescing::kPerServer run resolved them).
  obs::Counter* coalesced = nullptr;          ///< db.coalesced
  obs::Gauge* fetch_outstanding = nullptr;    ///< db.fetch.outstanding
  obs::LatencyStat* delayed_wait = nullptr;   ///< delayed_hit.wait_us
  // Replica-lifecycle instruments (attach_redundancy; null unless a
  // replicated run resolved them).
  obs::Counter* hedge_fired = nullptr;           ///< hedge.fired
  obs::Counter* replica_cancelled = nullptr;     ///< replica.cancelled
  obs::LatencyStat* wasted_service = nullptr;    ///< replica.wasted_service_us
  // Large-keyspace cache-substrate instruments (attach_cache_index; null
  // unless a KeyTable budget resolved them).
  obs::Gauge* keytable_chunks = nullptr;    ///< keytable.chunks_resident
  obs::Gauge* keytable_bytes = nullptr;     ///< keytable.bytes
  obs::Gauge* index_probe_len = nullptr;    ///< cache.index.probe_len
  obs::Gauge* index_probe_max = nullptr;    ///< cache.index.probe_max
  // Membership-churn instruments (attach_churn; null unless a
  // MembershipSchedule resolved them).
  obs::Counter* churn_events = nullptr;      ///< churn.events
  obs::Counter* churn_failovers = nullptr;   ///< churn.failovers
  obs::Counter* churn_retired = nullptr;     ///< churn.slots_retired
  obs::Gauge* refill_storm = nullptr;        ///< cache.refill_storm_bytes

  /// The event-driven simulators' instrument set (EndToEndSim,
  /// TraceReplaySim): stage decomposition plus the miss-path database
  /// sojourn and the sim.keys_completed / db.misses throughput counters.
  [[nodiscard]] static StageObserver for_sim(const obs::Recorder& rec) {
    StageObserver o = stages(rec);
    o.db_sojourn = rec.latency("db.sojourn_us");
    o.keys = rec.counter("sim.keys_completed");
    o.misses = rec.counter("db.misses");
    return o;
  }

  /// The pool-resampling assembly's instrument set (assemble_requests and
  /// its redundant variant): stage decomposition plus assembly.keys /
  /// assembly.misses. No db.sojourn_us — assembly draws database latencies
  /// from a pool recorded by the simulation that filled it.
  [[nodiscard]] static StageObserver for_assembly(const obs::Recorder& rec) {
    StageObserver o = stages(rec);
    o.keys = rec.counter("assembly.keys");
    o.misses = rec.counter("assembly.misses");
    return o;
  }

  /// Resolves the miss-coalescing instrument set: the delayed-hit counter
  /// ("db.coalesced": misses parked behind an in-flight fetch), the
  /// outstanding-fetch high-water gauge ("db.fetch.outstanding"), and the
  /// delayed-hit wait distribution ("delayed_hit.wait_us": fetch completion
  /// minus park time, per released waiter). Call ONLY when coalescing is
  /// on — resolving a name registers it, and a kOff run's metrics document
  /// must stay byte-identical to the pre-coalescing output.
  void attach_coalescing(const obs::Recorder& rec) {
    coalesced = rec.counter("db.coalesced");
    fetch_outstanding = rec.gauge("db.fetch.outstanding");
    delayed_wait = rec.latency("delayed_hit.wait_us");
  }

  /// Resolves the replica-lifecycle instrument set: losing replicas pulled
  /// out of the system on a win ("replica.cancelled") and the service time
  /// burned by losers that ran to completion ("replica.wasted_service_us",
  /// per loser). With `hedged` also the count of hedge deadlines that fired
  /// and dispatched backups ("hedge.fired"). Call ONLY when the redundancy
  /// policy replicates — same contract as attach_coalescing: resolving a
  /// name registers it, and a degree-1 run's metrics document must stay
  /// byte-identical to the pre-policy output.
  void attach_redundancy(const obs::Recorder& rec, bool hedged) {
    replica_cancelled = rec.counter("replica.cancelled");
    wasted_service = rec.latency("replica.wasted_service_us");
    if (hedged) hedge_fired = rec.counter("hedge.fired");
  }

  /// Resolves the large-keyspace cache-substrate instrument set: resident
  /// KeyTable chunks and their exact bytes ("keytable.chunks_resident" /
  /// "keytable.bytes") and the flat cache index's probe lengths
  /// ("cache.index.probe_len": mean slot inspections per lookup across all
  /// stores; "cache.index.probe_max": the longest single lookup). Call ONLY
  /// when a KeyTable budget is configured — same contract as
  /// attach_coalescing: resolving a name registers it, and an unbudgeted
  /// run's metrics document must stay byte-identical to the pre-budget
  /// output.
  void attach_cache_index(const obs::Recorder& rec) {
    keytable_chunks = rec.gauge("keytable.chunks_resident");
    keytable_bytes = rec.gauge("keytable.bytes");
    index_probe_len = rec.gauge("cache.index.probe_len");
    index_probe_max = rec.gauge("cache.index.probe_max");
  }

  /// Resolves the membership-churn instrument set: applied membership
  /// events ("churn.events"), jobs bounced off a departed server and
  /// re-routed to the ring successor ("churn.failovers"), fully
  /// decommissioned ring slots ("churn.slots_retired"), and the bytes
  /// refilled into still-cold joined stores ("cache.refill_storm_bytes").
  /// Call ONLY when a MembershipSchedule is active — same contract as
  /// attach_coalescing: resolving a name registers it, and a churn-free
  /// run's metrics document must stay byte-identical to the
  /// static-membership output.
  void attach_churn(const obs::Recorder& rec) {
    churn_events = rec.counter("churn.events");
    churn_failovers = rec.counter("churn.failovers");
    churn_retired = rec.counter("churn.slots_retired");
    refill_storm = rec.gauge("cache.refill_storm_bytes");
  }

  /// Sets the attach_cache_index gauges from end-of-run table/store state
  /// (no-ops entirely under the null recorder or when not attached).
  void record_cache_index(std::uint64_t chunks_resident,
                          std::uint64_t bytes_resident,
                          const cache::IndexStats& probes) const {
    obs::set_gauge(keytable_chunks, static_cast<double>(chunks_resident));
    obs::set_gauge(keytable_bytes, static_cast<double>(bytes_resident));
    obs::set_gauge(index_probe_len, probes.mean_probe());
    obs::set_gauge(index_probe_max, static_cast<double>(probes.max_probe));
  }

  /// Records one joined request's decomposition: the four stage maxima,
  /// the synchronization gap (last-key completion minus the mean per-key
  /// completion, `sum_total / n_keys`), and the Theorem-1 slack
  /// T_N + T_S + T_D - T.
  void observe_request(double network_latency, double max_server,
                       double max_db, double max_total, double sum_total,
                       double n_keys) const {
    obs::observe(network, obs::to_us(network_latency));
    obs::observe(server, obs::to_us(max_server));
    obs::observe(db, obs::to_us(max_db));
    obs::observe(total, obs::to_us(max_total));
    obs::observe(gap, obs::to_us(max_total - sum_total / n_keys));
    obs::observe(slack, obs::to_us(network_latency + max_server + max_db -
                                   max_total));
  }

  /// Attaches server `j`'s queue-wait/service split ("server.<j>.wait_us" /
  /// ".service_us") for jobs arriving at or after `from`.
  static void attach_server_split(const obs::Recorder& rec,
                                  sim::ServiceStation& station, std::size_t j,
                                  double from) {
    const std::string prefix = "server." + std::to_string(j);
    station.observe_split(rec.latency(prefix + ".wait_us"),
                          rec.latency(prefix + ".service_us"), from);
  }

  /// Registers the per-epoch miss-ratio windows as gauges
  /// ("churn.epoch.<i>.miss_ratio" / ".keys" / ".p99_us", indexed by window
  /// position so consecutive epochs sort adjacently in the name-ordered
  /// output). Call ONLY when a MembershipSchedule is active (see
  /// attach_churn).
  static void record_churn_epochs(const obs::Recorder& rec,
                                  const ChurnStats& churn) {
    for (std::size_t i = 0; i < churn.epochs.size(); ++i) {
      const ChurnEpochWindow& w = churn.epochs[i];
      const std::string prefix = "churn.epoch." + std::to_string(i);
      obs::set_gauge(rec.gauge(prefix + ".miss_ratio"), w.miss_ratio);
      obs::set_gauge(rec.gauge(prefix + ".keys"),
                     static_cast<double>(w.keys));
      obs::set_gauge(rec.gauge(prefix + ".p99_us"), w.p99_key_latency_us);
    }
  }

  /// Sets server `j`'s "server.<j>.utilization" gauge.
  static void record_server_utilization(const obs::Recorder& rec,
                                        std::size_t j, double value) {
    obs::set_gauge(rec.gauge("server." + std::to_string(j) + ".utilization"),
                   value);
  }

  /// Stand-alone db.* handles for sites that run a database stage without
  /// the fork-join set (WorkloadDrivenSim's miss-stream block).
  [[nodiscard]] static obs::LatencyStat* db_sojourn_stat(
      const obs::Recorder& rec) {
    return rec.latency("db.sojourn_us");
  }
  [[nodiscard]] static obs::Counter* db_miss_counter(
      const obs::Recorder& rec) {
    return rec.counter("db.misses");
  }
  [[nodiscard]] static obs::Counter* keys_counter(const obs::Recorder& rec) {
    return rec.counter("sim.keys_completed");
  }

 private:
  [[nodiscard]] static StageObserver stages(const obs::Recorder& rec) {
    StageObserver o;
    o.network = rec.latency("stage.network_us");
    o.server = rec.latency("stage.server_us");
    o.db = rec.latency("stage.database_us");
    o.total = rec.latency("stage.total_us");
    o.gap = rec.latency("request.sync_gap_us");
    o.slack = rec.latency("request.sync_slack_us");
    return o;
  }
};

}  // namespace mclat::cluster::engine
