// fork_join.h — the one fork-join joiner.
//
// Both event-driven simulators used to carry verbatim copies of the same
// bookkeeping: a JobTable of open requests, a JobTable of in-flight keys,
// and a completion handler folding each key's sojourns into its request's
// running maxima until the last key joins. This class is that logic,
// extracted once.
//
// The numeric contract is exact, not approximate: the fold order
// (max_server, max_db, max_total, sum_total), the Welford accumulation on
// join, and the sync-gap division by the request's key count reproduce the
// pre-engine simulators bit for bit — proven against the verbatim twins in
// bench/legacy_cluster.h by the `cluster`-labeled equivalence suite.
//
// Warmup gating: a request opened with measured=false still joins (its
// keys complete, counters advance) but contributes nothing to the Welford
// means, the retained total samples, or the per-request stage
// observations. requests_joined() counts every join; measured_requests()
// only the measured ones — EndToEndSim reports the latter, TraceReplaySim
// the former (its pre-engine contract counted every trace request).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/engine/stage_observer.h"
#include "cluster/job_table.h"
#include "obs/recorder.h"
#include "stats/welford.h"

namespace mclat::cluster::engine {

class ForkJoinJoiner {
 public:
  struct Request {
    double start = 0.0;
    std::uint32_t remaining = 0;
    std::uint32_t n_keys = 0;  ///< sync-gap denominator
    bool measured = false;
    double max_server = 0.0;
    double max_db = 0.0;
    double max_total = 0.0;
    double sum_total = 0.0;  ///< Σ per-key completion (sync-gap metric)
  };

  struct Key {
    std::uint64_t request_id = 0;
    std::uint64_t key_rank = 0;  ///< 0 unless the sim routes by rank
    std::size_t server = 0;
    double server_sojourn = 0.0;
    double db_sojourn = 0.0;  ///< 0 for cache hits
  };

  /// `per_key_counter` (nullable) is bumped once per completed key,
  /// ungated — TraceReplaySim's sim.keys_completed contract. EndToEndSim
  /// passes nullptr and bumps its counter at server departure instead,
  /// gated on the measurement window.
  ForkJoinJoiner(double network_latency, const StageObserver& obs,
                 bool keep_total_samples, obs::Counter* per_key_counter)
      : network_latency_(network_latency), obs_(obs),
        keep_total_samples_(keep_total_samples),
        per_key_counter_(per_key_counter) {}

  ForkJoinJoiner(const ForkJoinJoiner&) = delete;
  ForkJoinJoiner& operator=(const ForkJoinJoiner&) = delete;

  /// Opens a request of `n_keys` keys. Sequential opens with no
  /// intervening joins yield dense ids 0, 1, 2, … (the trace pre-scan
  /// relies on this to reuse its interned indices).
  std::uint64_t open_request(double start, std::uint32_t n_keys,
                             bool measured) {
    Request req;
    req.start = start;
    req.remaining = n_keys;
    req.n_keys = n_keys;
    req.measured = measured;
    return requests_.insert(req);
  }

  /// Forks one key off `request_id`; the returned job id names the key at
  /// the stations and in complete_key().
  std::uint64_t open_key(std::uint64_t request_id, std::uint64_t key_rank,
                         std::size_t server) {
    Key ctx;
    ctx.request_id = request_id;
    ctx.key_rank = key_rank;
    ctx.server = server;
    return keys_.insert(ctx);
  }

  /// Checked access to an in-flight key (stations update sojourns here).
  [[nodiscard]] Key& key(std::uint64_t job, const char* what) {
    return keys_.at(job, what);
  }

  [[nodiscard]] bool request_measured(std::uint64_t request_id) const {
    return requests_
        .at(request_id, "ForkJoinJoiner: measured query for unknown request")
        .measured;
  }

  /// A key's value arrived back at the client at `now`: fold it into its
  /// request; on the last key, join (accumulate + observe if measured).
  void complete_key(std::uint64_t job, double now) {
    const Key ctx =
        keys_.take(job, "ForkJoinJoiner: completion for unknown key job");
    ++keys_completed_;
    obs::bump(per_key_counter_);
    Request& req = requests_.at(
        ctx.request_id, "ForkJoinJoiner: key completion for unknown request");
    const double total = now - req.start;
    req.max_server = std::max(req.max_server, ctx.server_sojourn);
    req.max_db = std::max(req.max_db, ctx.db_sojourn);
    req.max_total = std::max(req.max_total, total);
    req.sum_total += total;
    if (--req.remaining == 0) {
      ++requests_joined_;
      if (req.measured) {
        w_network_.add(network_latency_);
        w_server_.add(req.max_server);
        w_db_.add(req.max_db);
        w_total_.add(req.max_total);
        if (keep_total_samples_) total_samples_.push_back(req.max_total);
        obs_.observe_request(network_latency_, req.max_server, req.max_db,
                             req.max_total, req.sum_total,
                             static_cast<double>(req.n_keys));
      }
      requests_.erase(ctx.request_id,
                      "ForkJoinJoiner: double-completed request");
    }
  }

  // --- results -----------------------------------------------------------
  [[nodiscard]] const stats::Welford& network_stats() const noexcept {
    return w_network_;
  }
  [[nodiscard]] const stats::Welford& server_stats() const noexcept {
    return w_server_;
  }
  [[nodiscard]] const stats::Welford& database_stats() const noexcept {
    return w_db_;
  }
  [[nodiscard]] const stats::Welford& total_stats() const noexcept {
    return w_total_;
  }
  /// Measured-window T(N) samples (empty unless keep_total_samples).
  [[nodiscard]] std::vector<double> take_total_samples() noexcept {
    return std::move(total_samples_);
  }
  /// Every join, measured or not.
  [[nodiscard]] std::uint64_t requests_joined() const noexcept {
    return requests_joined_;
  }
  /// Joins inside the measurement window.
  [[nodiscard]] std::uint64_t measured_requests() const noexcept {
    return w_total_.count();
  }
  /// Every completed key (all requests).
  [[nodiscard]] std::uint64_t keys_completed() const noexcept {
    return keys_completed_;
  }
  /// Requests forked but not yet joined.
  [[nodiscard]] std::size_t open_requests() const noexcept {
    return requests_.size();
  }
  /// Keys forked but not yet completed.
  [[nodiscard]] std::size_t in_flight_keys() const noexcept {
    return keys_.size();
  }

 private:
  double network_latency_;
  StageObserver obs_;
  bool keep_total_samples_;
  obs::Counter* per_key_counter_;

  JobTable<Request> requests_;
  JobTable<Key> keys_;

  stats::Welford w_network_;
  stats::Welford w_server_;
  stats::Welford w_db_;
  stats::Welford w_total_;
  std::vector<double> total_samples_;
  std::uint64_t requests_joined_ = 0;
  std::uint64_t keys_completed_ = 0;
};

}  // namespace mclat::cluster::engine
