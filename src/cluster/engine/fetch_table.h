// fetch_table.h — per-server single-flight tracking of outstanding database
// fetches (the MissCoalescing::kPerServer substrate).
//
// Real memcached deployments coalesce concurrent fetches of one key: the
// first miss goes to the database, later misses for the same key wait on
// that in-flight fetch instead of issuing duplicate work — a *delayed hit*.
// The FetchTable is the bookkeeping for that, and nothing else: it draws no
// random numbers, schedules no events, and touches no cache, so wiring it
// into a simulator cannot perturb any RNG stream (the off-identity
// contract, DESIGN.md §4g).
//
// Keys are identified by their memoized workload::KeyTable rank (the
// Bernoulli miss policy carries no key identity — every key keeps rank 0 —
// so per-server coalescing there degenerates to single-flight per server:
// the single-hot-key delayed-hit regime the model-validation tests exploit).
//
// Invariants, pinned by tests/property/test_fetch_table.cpp:
//   * at most one outstanding fetch per (server, rank) — lead_or_park
//     returns true exactly when no entry exists;
//   * waiters release in FIFO park order;
//   * conservation: parked() == released() + waiters still parked.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "math/numerics.h"

namespace mclat::cluster::engine {

class FetchTable {
 public:
  /// One parked request: the key's job id and when it parked (its delayed-
  /// hit wait is release time minus parked_at).
  struct Waiter {
    std::uint64_t job = 0;
    double parked_at = 0.0;
  };

  explicit FetchTable(std::size_t servers) : per_server_(servers) {}

  /// True: no fetch for (server, rank) was outstanding — `job` becomes the
  /// leader and the caller must submit the database work. False: `job`
  /// parked (FIFO) behind the outstanding fetch, a delayed hit; the caller
  /// must NOT submit anything.
  [[nodiscard]] bool lead_or_park(std::size_t server, std::uint64_t rank,
                                  std::uint64_t job, double now) {
    auto [it, fresh] = per_server_[server].try_emplace(rank);
    if (fresh) {
      it->second.leader = job;
      ++led_;
      ++outstanding_;
      if (outstanding_ > peak_outstanding_) peak_outstanding_ = outstanding_;
      return true;
    }
    it->second.waiters.push_back(Waiter{job, now});
    ++parked_;
    return false;
  }

  /// The fetch for (server, rank) completed: move its FIFO waiter list into
  /// `out` (replacing its contents) and retire the entry. Throws if no
  /// fetch is outstanding there — a release without a lead is a wiring bug.
  void release(std::size_t server, std::uint64_t rank,
               std::vector<Waiter>& out) {
    auto& table = per_server_[server];
    const auto it = table.find(rank);
    math::require(it != table.end(),
                  "FetchTable: release of a fetch that is not outstanding");
    out = std::move(it->second.waiters);
    released_ += out.size();
    --outstanding_;
    table.erase(it);
  }

  /// Is a fetch for (server, rank) currently in flight?
  [[nodiscard]] bool outstanding(std::size_t server,
                                 std::uint64_t rank) const {
    const auto& table = per_server_[server];
    return table.find(rank) != table.end();
  }

  /// The job leading the outstanding fetch for (server, rank); throws if
  /// none is outstanding.
  [[nodiscard]] std::uint64_t leader_of(std::size_t server,
                                        std::uint64_t rank) const {
    const auto& table = per_server_[server];
    const auto it = table.find(rank);
    math::require(it != table.end(),
                  "FetchTable: leader_of a fetch that is not outstanding");
    return it->second.leader;
  }

  /// Fetches currently in flight (all servers).
  [[nodiscard]] std::size_t outstanding_fetches() const noexcept {
    return outstanding_;
  }
  /// High-water mark of outstanding_fetches() over the table's lifetime.
  [[nodiscard]] std::size_t peak_outstanding() const noexcept {
    return peak_outstanding_;
  }
  /// Total lead_or_park calls that led (database fetches submitted).
  [[nodiscard]] std::uint64_t led() const noexcept { return led_; }
  /// Total lead_or_park calls that parked (delayed hits).
  [[nodiscard]] std::uint64_t parked() const noexcept { return parked_; }
  /// Total waiters handed out by release().
  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }

 private:
  struct Entry {
    std::uint64_t leader = 0;
    std::vector<Waiter> waiters;
  };

  std::vector<std::unordered_map<std::uint64_t, Entry>> per_server_;
  std::size_t outstanding_ = 0;
  std::size_t peak_outstanding_ = 0;
  std::uint64_t led_ = 0;
  std::uint64_t parked_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace mclat::cluster::engine
