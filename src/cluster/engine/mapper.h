// mapper.h — the one key→server mapper factory.
//
// Every simulator used to carry its own copy of this switch; the engine
// owns it now so a new MapperKind is added in exactly one place.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "cluster/modes.h"
#include "hashing/consistent_hash.h"
#include "hashing/key_mapper.h"
#include "hashing/weighted_mapper.h"

namespace mclat::cluster::engine {

/// Builds the mapper for `kind` over servers with target shares `shares`
/// (kRing/kModulo use only the server count — hashing ignores shares).
inline std::unique_ptr<hashing::KeyMapper> make_mapper(
    MapperKind kind, const std::vector<double>& shares) {
  switch (kind) {
    case MapperKind::kWeighted:
      return std::make_unique<hashing::WeightedMapper>(shares);
    case MapperKind::kRing:
      return std::make_unique<hashing::ConsistentHashRing>(shares.size());
    case MapperKind::kModulo:
      return std::make_unique<hashing::ModuloMapper>(shares.size());
  }
  throw std::logic_error("engine::make_mapper: unhandled mapper kind");
}

}  // namespace mclat::cluster::engine
