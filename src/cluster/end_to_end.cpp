#include "cluster/end_to_end.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>

#include "cache/lru_store.h"
#include "cluster/job_table.h"
#include "cluster/delay_station.h"
#include "dist/discrete.h"
#include "dist/exponential.h"
#include "hashing/consistent_hash.h"
#include "hashing/hashes.h"
#include "hashing/key_mapper.h"
#include "hashing/weighted_mapper.h"
#include "math/numerics.h"
#include "sim/simulator.h"
#include "sim/multi_station.h"
#include "sim/station.h"
#include "stats/welford.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"

namespace mclat::cluster {

namespace {

struct RequestState {
  double start = 0.0;
  std::uint32_t remaining = 0;
  double max_server = 0.0;
  double max_db = 0.0;
  double max_total = 0.0;
  double sum_total = 0.0;  ///< Σ per-key completion (sync-gap metric)
  bool measured = false;
};

struct KeyContext {
  std::uint64_t request_id = 0;
  std::uint64_t key_rank = 0;
  std::size_t server = 0;
  double server_sojourn = 0.0;
  double db_sojourn = 0.0;  // 0 for cache hits
};

std::unique_ptr<hashing::KeyMapper> make_mapper(const EndToEndConfig& cfg) {
  const auto shares = cfg.system.shares();
  switch (cfg.mapper) {
    case MapperKind::kWeighted:
      return std::make_unique<hashing::WeightedMapper>(shares);
    case MapperKind::kRing:
      return std::make_unique<hashing::ConsistentHashRing>(shares.size());
    case MapperKind::kModulo:
      return std::make_unique<hashing::ModuloMapper>(shares.size());
  }
  throw std::logic_error("make_mapper: unhandled mapper kind");
}

}  // namespace

EndToEndSim::EndToEndSim(EndToEndConfig cfg) : cfg_(std::move(cfg)) {
  math::require(cfg_.warmup_time >= 0.0 && cfg_.measure_time > 0.0,
                "EndToEndSim: bad time horizon");
  math::require(cfg_.system.keys_per_request >= 1,
                "EndToEndSim: keys_per_request must be >= 1");
}

EndToEndResult EndToEndSim::run() {
  const core::SystemConfig& sys = cfg_.system;
  const std::vector<double> shares = sys.shares();
  const std::size_t M = shares.size();
  const double net_half = sys.network_latency / 2.0;
  const double horizon = cfg_.warmup_time + cfg_.measure_time;
  const bool real_cache = cfg_.miss_mode == MissMode::kRealCache;

  sim::Simulator s;
  dist::Rng master(cfg_.seed);
  dist::Rng req_rng = master.split();
  dist::Rng miss_rng = master.split();
  dist::Rng key_rng = master.split();
  // Value sizes derive per-key RNGs from the key rank, but this split stays:
  // removing it would shift every later split and invalidate the goldens.
  [[maybe_unused]] dist::Rng value_rng = master.split();

  const std::unique_ptr<hashing::KeyMapper> mapper = make_mapper(cfg_);
  const dist::Discrete server_pick(shares);

  // --- request/key bookkeeping -------------------------------------------
  // Dense free-list slot tables: request/key ids are the slot indices, so
  // the per-key hot path does indexed loads instead of hash probes. Lookups
  // are checked — a stale or foreign job id trips a diagnostic instead of
  // dereferencing a missing map entry.
  JobTable<RequestState> requests;
  JobTable<KeyContext> keys;

  // --- measurement accumulators ------------------------------------------
  stats::Welford w_network;
  stats::Welford w_server;
  stats::Welford w_db;
  stats::Welford w_total;
  std::vector<double> total_samples;
  std::uint64_t measured_keys = 0;
  std::uint64_t measured_misses = 0;
  std::uint64_t keys_completed = 0;

  // Per-stage observability handles (nullptr when the recorder is null).
  const obs::Recorder& rec = cfg_.recorder;
  obs::LatencyStat* st_network = rec.latency("stage.network_us");
  obs::LatencyStat* st_server = rec.latency("stage.server_us");
  obs::LatencyStat* st_db = rec.latency("stage.database_us");
  obs::LatencyStat* st_total = rec.latency("stage.total_us");
  obs::LatencyStat* st_gap = rec.latency("request.sync_gap_us");
  obs::LatencyStat* st_slack = rec.latency("request.sync_slack_us");
  obs::LatencyStat* st_db_sojourn = rec.latency("db.sojourn_us");
  obs::Counter* ct_keys = rec.counter("sim.keys_completed");
  obs::Counter* ct_misses = rec.counter("db.misses");

  // --- real-cache machinery ------------------------------------------------
  std::unique_ptr<workload::KeySpace> keyspace;
  std::vector<std::unique_ptr<cache::LruStore>> stores;
  std::string key_buf;  // reused for every key_for_rank rendering
  workload::ValueSizeModel value_sizes(214.476, 0.348238, 1,
                                       cfg_.max_value_bytes);
  if (real_cache) {
    keyspace = std::make_unique<workload::KeySpace>(cfg_.keyspace_size,
                                                    cfg_.zipf_exponent);
    cache::SlabAllocator::Config scfg;
    scfg.memory_limit = cfg_.cache_bytes_per_server;
    // Simulated caches are far smaller than a production 64 GB memcached;
    // scale the page size down accordingly so every slab class can actually
    // obtain pages (memcached's 1 MiB pages would starve most classes of a
    // few-MiB cache — an artefact, not the phenomenon under study).
    scfg.page_size = std::min<std::size_t>(
        64 * 1024, std::max<std::size_t>(cfg_.cache_bytes_per_server / 32,
                                         8 * 1024));
    scfg.growth_factor = 2.0;
    stores.reserve(M);
    for (std::size_t j = 0; j < M; ++j) {
      stores.push_back(std::make_unique<cache::LruStore>(scfg));
    }
  }

  // --- forward declarations of the pipeline hops ---------------------------
  std::function<void(std::uint64_t)> complete_key;

  // Value arrives back at the client: fold this key into its request.
  complete_key = [&](std::uint64_t job) {
    const KeyContext ctx =
        keys.take(job, "EndToEndSim: completion for unknown key job");
    ++keys_completed;
    auto& req = requests.at(
        ctx.request_id, "EndToEndSim: key completion for unknown request");
    const double total = s.now() - req.start;
    req.max_server = std::max(req.max_server, ctx.server_sojourn);
    req.max_db = std::max(req.max_db, ctx.db_sojourn);
    req.max_total = std::max(req.max_total, total);
    req.sum_total += total;
    if (--req.remaining == 0) {
      if (req.measured) {
        w_network.add(sys.network_latency);
        w_server.add(req.max_server);
        w_db.add(req.max_db);
        w_total.add(req.max_total);
        total_samples.push_back(req.max_total);
        obs::observe(st_network, obs::to_us(sys.network_latency));
        obs::observe(st_server, obs::to_us(req.max_server));
        obs::observe(st_db, obs::to_us(req.max_db));
        obs::observe(st_total, obs::to_us(req.max_total));
        obs::observe(st_gap,
                     obs::to_us(req.max_total -
                                req.sum_total /
                                    static_cast<double>(sys.keys_per_request)));
        obs::observe(st_slack,
                     obs::to_us(sys.network_latency + req.max_server +
                                req.max_db - req.max_total));
      }
      requests.erase(ctx.request_id,
                     "EndToEndSim: double-completed request");
    }
  };

  // --- database stage -------------------------------------------------------
  std::unique_ptr<DelayStation> db_inf;
  std::unique_ptr<sim::ServiceStation> db_q;
  std::unique_ptr<sim::MultiServerStation> db_pool;
  const auto on_db_departure = [&](const sim::Departure& d) {
    KeyContext& ctx =
        keys.at(d.job_id, "EndToEndSim: database departure for unknown key");
    ctx.db_sojourn = d.sojourn_time();
    if (requests
            .at(ctx.request_id,
                "EndToEndSim: database departure for unknown request")
            .measured) {
      obs::observe(st_db_sojourn, obs::to_us(d.sojourn_time()));
    }
    if (real_cache) {
      // Refill the server's cache with the fetched value. Only the value's
      // *size* matters to slab occupancy and eviction, so set_sized skips
      // materialising the payload string.
      keyspace->key_for_rank(ctx.key_rank, key_buf);
      dist::Rng vr(hashing::mix64(ctx.key_rank ^ 0x5eedull));
      stores[ctx.server]->set_sized(key_buf, value_sizes.sample(vr), s.now());
    }
    s.schedule_in(net_half, [&, job = d.job_id] { complete_key(job); });
  };
  switch (cfg_.db_mode) {
    case DbMode::kInfiniteServer:
      db_inf = std::make_unique<DelayStation>(
          s, std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
    case DbMode::kSingleServer:
      db_q = std::make_unique<sim::ServiceStation>(
          s, std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
    case DbMode::kPooled:
      db_pool = std::make_unique<sim::MultiServerStation>(
          s, cfg_.db_servers,
          std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
  }
  const auto submit_db = [&](std::uint64_t job) {
    if (db_inf) {
      db_inf->submit(job);
    } else if (db_pool) {
      db_pool->arrive(job);
    } else {
      db_q->arrive(job);
    }
  };

  // --- memcached servers ----------------------------------------------------
  std::vector<std::unique_ptr<sim::ServiceStation>> servers;
  servers.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    const std::string prefix = "server." + std::to_string(j);
    servers.push_back(std::make_unique<sim::ServiceStation>(
        s, std::make_unique<dist::Exponential>(sys.rate_of(j)),
        master.split(), [&, j](const sim::Departure& d) {
          auto& ctx = keys.at(
              d.job_id, "EndToEndSim: server departure for unknown key");
          ctx.server_sojourn = d.sojourn_time();
          bool miss;
          if (real_cache) {
            keyspace->key_for_rank(ctx.key_rank, key_buf);
            miss = !stores[j]->get(key_buf, s.now()).has_value();
          } else {
            miss = sys.miss_ratio > 0.0 && miss_rng.bernoulli(sys.miss_ratio);
          }
          const auto& req = requests.at(
              ctx.request_id,
              "EndToEndSim: server departure for unknown request");
          if (req.measured) {
            ++measured_keys;
            obs::bump(ct_keys);
            if (miss) {
              ++measured_misses;
              obs::bump(ct_misses);
            }
          }
          if (miss) {
            submit_db(d.job_id);
          } else {
            s.schedule_in(net_half,
                          [&, job = d.job_id] { complete_key(job); });
          }
        }));
    servers.back()->observe_split(rec.latency(prefix + ".wait_us"),
                                  rec.latency(prefix + ".service_us"),
                                  cfg_.warmup_time);
  }

  // --- request generator ------------------------------------------------------
  const double rate = cfg_.effective_request_rate();
  bool generating = true;
  std::function<void()> arrival = [&] {
    if (!generating) return;
    RequestState st;
    st.start = s.now();
    st.remaining = sys.keys_per_request;
    st.measured = s.now() >= cfg_.warmup_time;
    const std::uint64_t rid = requests.insert(st);
    for (std::uint32_t i = 0; i < sys.keys_per_request; ++i) {
      KeyContext ctx;
      ctx.request_id = rid;
      std::size_t server_idx;
      if (real_cache) {
        ctx.key_rank = keyspace->sample_rank(key_rng);
        keyspace->key_for_rank(ctx.key_rank, key_buf);
        server_idx = mapper->server_for(key_buf);
      } else {
        // Respect the target {p_j} exactly.
        server_idx = server_pick.sample(key_rng);
      }
      ctx.server = server_idx;
      const std::uint64_t job = keys.insert(ctx);
      s.schedule_in(net_half,
                    [&, job, server_idx] { servers[server_idx]->arrive(job); });
    }
    // Reschedule through a one-pointer trampoline: copying the full
    // std::function closure into the calendar every arrival would defeat
    // the kernel's inline-callback storage.
    s.schedule_in(req_rng.exponential(rate), [&arrival] { arrival(); });
  };
  s.schedule_in(req_rng.exponential(rate), [&arrival] { arrival(); });

  // --- run: generate until the horizon, then drain ---------------------------
  s.run_until(horizon);
  generating = false;
  s.run();  // drain in-flight requests (no new arrivals are scheduled)

  EndToEndResult res;
  res.network = stats::mean_ci(w_network);
  res.server = stats::mean_ci(w_server);
  res.database = stats::mean_ci(w_db);
  res.total = stats::mean_ci(w_total);
  res.total_samples = std::move(total_samples);
  res.measured_miss_ratio =
      measured_keys == 0
          ? 0.0
          : static_cast<double>(measured_misses) /
                static_cast<double>(measured_keys);
  res.server_utilization.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    res.server_utilization.push_back(servers[j]->utilization(horizon));
    obs::set_gauge(rec.gauge("server." + std::to_string(j) + ".utilization"),
                   res.server_utilization.back());
  }
  res.requests_completed = w_total.count();
  res.keys_completed = keys_completed;
  res.events_executed = s.events_executed();
  return res;
}

}  // namespace mclat::cluster
