#include "cluster/end_to_end.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/engine/db_stage.h"
#include "cluster/engine/fetch_table.h"
#include "cluster/engine/sharded_engine.h"
#include "cluster/engine/fork_join.h"
#include "cluster/engine/hedge.h"
#include "cluster/engine/mapper.h"
#include "cluster/engine/miss_policy.h"
#include "cluster/engine/stage_observer.h"
#include "cluster/job_table.h"
#include "dist/discrete.h"
#include "dist/exponential.h"
#include "hashing/key_mapper.h"
#include "math/numerics.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"
#include "stats/welford.h"
#include "workload/key_table.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"

namespace mclat::cluster {

EndToEndSim::EndToEndSim(EndToEndConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.common.validate();
  math::require(cfg_.system.keys_per_request >= 1,
                "EndToEndSim: keys_per_request must be >= 1");
  // The RedundancyPolicy itself (degree, trigger, quantile, floor) is
  // validated at its own construction; only the cross-field constraint
  // lives here.
  math::require(!cfg_.redundancy.replicated() ||
                    cfg_.miss_mode == MissMode::kBernoulli,
                "EndToEndSim: redundant fan-out requires Bernoulli misses");
  // Sharded execution relies on every cross-server edge being a network
  // hop: a queueing database would be a shared station reachable from all
  // shards with zero lookahead. The infinite-server stage has no queue, so
  // it shards trivially (each server draws its own exp(μ_D) fetch).
  math::require(cfg_.common.shard_jobs == 1 ||
                    cfg_.db_mode == DbMode::kInfiniteServer,
                "EndToEndSim: shard_jobs > 1 requires DbMode::kInfiniteServer "
                "(a shared database queue has no network lookahead)");
  if (cfg_.common.churn.active()) {
    // Churn runs through the sharded engine (any shard_jobs, including 1):
    // the coordinator owns the live ring and the epoch-tracked routing
    // table, so every mode whose routing or per-server identity bypasses
    // the ring is excluded up front.
    math::require(cfg_.miss_mode == MissMode::kRealCache,
                  "EndToEndSim: churn requires MissMode::kRealCache (Bernoulli"
                  " keys carry no identity to re-route)");
    math::require(cfg_.mapper == MapperKind::kRing,
                  "EndToEndSim: churn requires MapperKind::kRing (membership "
                  "events mutate the consistent-hashing ring)");
    math::require(cfg_.db_mode == DbMode::kInfiniteServer,
                  "EndToEndSim: churn requires DbMode::kInfiniteServer (the "
                  "sharded-engine constraint)");
    math::require(!cfg_.redundancy.replicated(),
                  "EndToEndSim: churn with replicated redundancy is not "
                  "modeled");
    math::require(cfg_.system.load_shares.empty(),
                  "EndToEndSim: churn requires uniform load_shares (the ring "
                  "rebalances shares itself)");
    math::require(cfg_.system.service_rates.empty(),
                  "EndToEndSim: churn requires uniform service_rates (joined "
                  "servers take the common rate)");
    math::require(cfg_.common.churn.last_time() <
                      cfg_.common.warmup_time + cfg_.common.measure_time,
                  "EndToEndSim: churn events must precede the horizon");
  }
}

EndToEndResult EndToEndSim::run() {
  // The sharded path is a separate engine with its own (deterministic)
  // sampling contract; shard_jobs == 1 without churn runs the exact serial
  // loop below, byte-identical to every golden. Churn always takes the
  // sharded engine (at K = shard_jobs, possibly 1): membership events are
  // coordinator messages, and the serial loop has no coordinator.
  if (cfg_.common.shard_jobs > 1 || cfg_.common.churn.active()) {
    return engine::run_end_to_end_sharded(cfg_);
  }
  const core::SystemConfig& sys = cfg_.system;
  const std::vector<double> shares = sys.shares();
  const std::size_t M = shares.size();
  const double net_half = sys.network_latency / 2.0;
  const double horizon = cfg_.common.warmup_time + cfg_.common.measure_time;
  const bool real_cache = cfg_.miss_mode == MissMode::kRealCache;
  const RedundancyPolicy& policy = cfg_.redundancy;
  const bool redundant = policy.replicated();
  const bool coalesce = cfg_.common.coalescing == MissCoalescing::kPerServer;

  sim::Simulator s;
  // The master split sequence is the golden contract (DESIGN.md §4f):
  // arrivals, misses, key draws, the retired value stream, then the database
  // stage, then one stream per server — plus, only when the policy hedges,
  // the hedge backup-placement stream appended after all of those. Engine
  // components receive their streams by value at exactly these positions.
  dist::Rng master(cfg_.common.seed);
  dist::Rng req_rng = master.split();
  dist::Rng miss_rng = master.split();
  dist::Rng key_rng = master.split();
  // Value sizes derive per-key RNGs from the key rank, but this split stays:
  // removing it would shift every later split and invalidate the goldens.
  [[maybe_unused]] dist::Rng value_rng = master.split();

  const std::unique_ptr<hashing::KeyMapper> mapper =
      engine::make_mapper(cfg_.mapper, shares);
  const dist::Discrete server_pick(shares);

  // --- real-cache machinery ------------------------------------------------
  std::unique_ptr<workload::KeySpace> keyspace;
  std::unique_ptr<workload::KeyTable> key_table;
  const workload::ValueSizeModel value_sizes(214.476, 0.348238, 1,
                                             cfg_.common.max_value_bytes);
  if (real_cache) {
    keyspace = std::make_unique<workload::KeySpace>(cfg_.keyspace_size,
                                                    cfg_.zipf_exponent);
    // Memoize every per-rank fact (key string, hash, server, refill value
    // size) once: the per-arrival path below does indexed loads instead of
    // string-format + RNG-construct + re-hash. Lazy chunks: only ranks the
    // Zipf head actually touches are materialized.
    key_table = std::make_unique<workload::KeyTable>(
        *keyspace, *mapper, &value_sizes, workload::KeyTable::Build::kLazy,
        cfg_.common.keytable_budget_bytes);
  }
  engine::MissPolicy miss_policy =
      real_cache
          ? engine::MissPolicy::real_cache(*key_table, M,
                                           cfg_.common.cache_bytes_per_server,
                                           std::move(miss_rng))
          : engine::MissPolicy::bernoulli(sys.miss_ratio, std::move(miss_rng));

  // --- fork-join core ------------------------------------------------------
  const obs::Recorder& rec = cfg_.recorder;
  engine::StageObserver sobs = engine::StageObserver::for_sim(rec);
  // Coalescing/redundancy instruments register only when the mode is on, so
  // a plain run's metrics document is byte-identical to the pre-policy
  // output.
  if (coalesce) sobs.attach_coalescing(rec);
  if (redundant) sobs.attach_redundancy(rec, policy.hedged());
  const bool bounded_table =
      real_cache && cfg_.common.keytable_budget_bytes > 0;
  if (bounded_table) sobs.attach_cache_index(rec);
  engine::ForkJoinJoiner joiner(sys.network_latency, sobs,
                                /*keep_total_samples=*/true,
                                /*per_key_counter=*/nullptr);
  std::uint64_t measured_keys = 0;
  std::uint64_t measured_misses = 0;
  std::uint64_t measured_db_fetches = 0;
  std::uint64_t measured_delayed_hits = 0;

  // Single-flight fetch bookkeeping (touched only when coalescing is on; it
  // draws no RNG, so constructing it cannot shift any stream).
  engine::FetchTable fetch(M);
  std::vector<engine::FetchTable::Waiter> released;

  // Replica lifecycle (engine/hedge.h), engaged only for a replicated
  // policy: with degree 1 keys travel under their joiner job ids and the
  // schedule is the pre-engine one. Declared before the servers so their
  // departure handlers can capture it by reference; constructed after them
  // because it dispatches into the server vector (and because its hedge
  // stream, if any, must be the *last* master split).
  std::optional<engine::ReplicaSet> replicas;

  // --- database stage -------------------------------------------------------
  engine::DbStage db(
      s, cfg_.db_mode, cfg_.db_servers, sys.db_service_rate, master.split(),
      [&](const sim::Departure& d) {
        engine::ForkJoinJoiner::Key& ctx = joiner.key(
            d.job_id, "EndToEndSim: database departure for unknown key");
        ctx.db_sojourn = d.sojourn_time();
        if (joiner.request_measured(ctx.request_id)) {
          obs::observe(sobs.db_sojourn, obs::to_us(d.sojourn_time()));
        }
        miss_policy.refill(ctx.server, ctx.key_rank, s.now());
        s.schedule_in(net_half,
                      [&, job = d.job_id] { joiner.complete_key(job, s.now()); });
        if (coalesce) {
          // The leader's fetch resolves every waiter parked behind it, in
          // FIFO park order, through the same departure path the leader
          // took (net-half hop + join). The refill above already ran —
          // exactly once per fetch — so waiters find the value cached the
          // next time they probe; here they simply complete.
          fetch.release(ctx.server, ctx.key_rank, released);
          for (const engine::FetchTable::Waiter& w : released) {
            engine::ForkJoinJoiner::Key& wctx = joiner.key(
                w.job, "EndToEndSim: released waiter for unknown key");
            wctx.db_sojourn = s.now() - w.parked_at;
            if (joiner.request_measured(wctx.request_id)) {
              obs::observe(sobs.db_sojourn, obs::to_us(wctx.db_sojourn));
              obs::observe(sobs.delayed_wait, obs::to_us(wctx.db_sojourn));
            }
            s.schedule_in(net_half, [&, job = w.job] {
              joiner.complete_key(job, s.now());
            });
          }
        }
      });

  // --- memcached servers ----------------------------------------------------
  std::vector<std::unique_ptr<sim::ServiceStation>> servers;
  servers.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    servers.push_back(std::make_unique<sim::ServiceStation>(
        s, std::make_unique<dist::Exponential>(sys.rate_of(j)),
        master.split(), [&, j](const sim::Departure& d) {
          std::uint64_t key_job = d.job_id;
          if (redundant) {
            // First wins; losers (and their wasted service) stop here.
            const std::optional<std::uint64_t> winner =
                replicas->on_departure(d);
            if (!winner) return;
            key_job = *winner;
          }
          engine::ForkJoinJoiner::Key& ctx = joiner.key(
              key_job, "EndToEndSim: server departure for unknown key");
          ctx.server_sojourn = d.sojourn_time();
          ctx.server = j;
          const bool miss = miss_policy.is_miss(j, ctx.key_rank, s.now());
          const bool measured = joiner.request_measured(ctx.request_id);
          if (measured) {
            ++measured_keys;
            obs::bump(sobs.keys);
            if (miss) {
              ++measured_misses;
              obs::bump(sobs.misses);
            }
          }
          if (miss) {
            if (!coalesce ||
                fetch.lead_or_park(j, ctx.key_rank, key_job, s.now())) {
              if (measured) ++measured_db_fetches;
              db.submit(key_job);
            } else if (measured) {
              // Parked behind the in-flight fetch: a delayed hit. Its
              // completion is scheduled by that fetch's departure.
              ++measured_delayed_hits;
              obs::bump(sobs.coalesced);
            }
          } else {
            s.schedule_in(net_half, [&, key_job] {
              joiner.complete_key(key_job, s.now());
            });
          }
        }));
    engine::StageObserver::attach_server_split(rec, *servers.back(), j,
                                               cfg_.common.warmup_time);
  }

  // The hedge backup-placement stream exists only when the policy hedges:
  // appended after every pre-existing split, so immediate-mode runs (and
  // the plain path) keep their streams — and their output bytes — intact.
  if (redundant) {
    dist::Rng hedge_rng = policy.hedged() ? master.split() : dist::Rng(0);
    replicas.emplace(s, policy, net_half, servers, server_pick,
                     std::move(hedge_rng), sobs);
  }

  // --- request generator ----------------------------------------------------
  const double rate = cfg_.effective_request_rate();
  sim::PoissonSource source(s, rate, std::move(req_rng), [&] {
    const double start = s.now();
    const std::uint64_t rid = joiner.open_request(
        start, sys.keys_per_request, start >= cfg_.common.warmup_time);
    for (std::uint32_t i = 0; i < sys.keys_per_request; ++i) {
      std::uint64_t rank = 0;
      std::size_t server_idx;
      if (real_cache) {
        rank = keyspace->sample_rank(key_rng);
        server_idx = key_table->server(rank);
      } else {
        // Respect the target {p_j} exactly.
        server_idx = server_pick.sample(key_rng);
      }
      const std::uint64_t kjob = joiner.open_key(rid, rank, server_idx);
      if (!redundant) {
        s.schedule_in(net_half, [&, kjob, server_idx] {
          servers[server_idx]->arrive(kjob);
        });
      } else {
        replicas->dispatch(kjob, server_idx, key_rng);
      }
    }
  });

  // --- run: generate until the horizon, then drain ---------------------------
  source.start();
  s.run_until(horizon);
  source.stop();  // the pending arrival fires and no-ops, as before
  s.run();        // drain in-flight requests (no new arrivals are scheduled)

  EndToEndResult res;
  res.network = stats::mean_ci(joiner.network_stats());
  res.server = stats::mean_ci(joiner.server_stats());
  res.database = stats::mean_ci(joiner.database_stats());
  res.total = stats::mean_ci(joiner.total_stats());
  res.total_samples = joiner.take_total_samples();
  res.measured_miss_ratio =
      measured_keys == 0 ? 0.0
                         : static_cast<double>(measured_misses) /
                               static_cast<double>(measured_keys);
  res.server_utilization.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    res.server_utilization.push_back(servers[j]->utilization(horizon));
    engine::StageObserver::record_server_utilization(
        rec, j, res.server_utilization.back());
  }
  res.requests_completed = joiner.measured_requests();
  res.keys_completed = joiner.keys_completed();
  res.events_executed = s.events_executed();
  res.measured_db_fetches = measured_db_fetches;
  res.measured_delayed_hits = measured_delayed_hits;
  if (redundant) {
    res.hedges_fired = replicas->hedges_fired();
    res.replicas_cancelled = replicas->replicas_cancelled();
    res.replica_wasted_service = replicas->wasted_service();
  }
  if (coalesce) {
    obs::set_gauge(sobs.fetch_outstanding,
                   static_cast<double>(fetch.peak_outstanding()));
  }
  if (bounded_table) {
    sobs.record_cache_index(key_table->chunks_resident(),
                            key_table->bytes_resident(),
                            miss_policy.index_stats());
  }
  return res;
}

}  // namespace mclat::cluster
