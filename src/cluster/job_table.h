// job_table.h — a dense free-list slot table for in-flight job and request
// records.
//
// The cluster simulators create request/key bookkeeping records at a
// monotonically increasing rate and retire them within a bounded horizon
// (the fork-join width, the queueing backlog). An unordered_map pays a hash,
// a probe and a node allocation per record; this table instead hands out
// slot indices from a LIFO free list over a flat vector, so the id *is* the
// address, insertion is an array write, and lookup is a bounds check plus an
// indexed load. Ids are only unique among live records — exactly the
// contract the simulators need, since a record's id never outlives its
// in-flight window.
//
// Every lookup is checked: a stale, foreign or already-retired id throws
// std::invalid_argument with the caller's diagnostic instead of
// dereferencing a missing entry (the old `map.find(id)->second` hardening
// gap). The throw lives in a cold out-of-line helper so the live-path check
// is one compare-and-branch — no std::string temporary per lookup.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mclat::cluster {

template <typename T>
class JobTable {
 public:
  /// Stores `value` and returns its id (a recycled or fresh slot index).
  std::uint64_t insert(T value) {
    std::uint64_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      slots_[id] = std::move(value);
      live_[id] = true;
    } else {
      id = slots_.size();
      slots_.push_back(std::move(value));
      live_.push_back(true);
    }
    ++size_;
    return id;
  }

  /// Checked access; throws std::invalid_argument(`what`) for ids that were
  /// never issued or have already been erased.
  [[nodiscard]] T& at(std::uint64_t id, const char* what) {
    if (!is_live(id)) throw_missing(what);
    return slots_[id];
  }
  [[nodiscard]] const T& at(std::uint64_t id, const char* what) const {
    if (!is_live(id)) throw_missing(what);
    return slots_[id];
  }

  /// Checked remove-and-return; the slot is recycled immediately.
  T take(std::uint64_t id, const char* what) {
    if (!is_live(id)) throw_missing(what);
    T out = std::move(slots_[id]);
    release(id);
    return out;
  }

  /// Checked erase.
  void erase(std::uint64_t id, const char* what) {
    if (!is_live(id)) throw_missing(what);
    slots_[id] = T{};
    release(id);
  }

  [[nodiscard]] bool is_live(std::uint64_t id) const noexcept {
    return id < slots_.size() && live_[id];
  }

  /// Live records (not the slot capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void reserve(std::size_t n) {
    slots_.reserve(n);
    live_.reserve(n);
  }

 private:
  [[noreturn]] static void throw_missing(const char* what) {
    throw std::invalid_argument(what);
  }

  void release(std::uint64_t id) {
    live_[id] = false;
    free_.push_back(static_cast<std::uint32_t>(id));
    --size_;
  }

  std::vector<T> slots_;
  std::vector<bool> live_;
  std::vector<std::uint32_t> free_;
  std::size_t size_ = 0;
};

}  // namespace mclat::cluster
