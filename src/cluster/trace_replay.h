// trace_replay.h — trace-driven cluster simulation (Mode C).
//
// Replays a workload::Trace — recorded or synthetic — through the same
// fork-join pipeline as the end-to-end simulator: each trace record is one
// key of one end-user request; keys route by hashing their key string,
// queue at their server, optionally miss to the database, and the request
// completes when its last key's value returns. This is the entry point for
// driving the cluster with *real* captured traces instead of the
// generative models (the paper's §5 workload is itself a statistical model
// of such a trace).
//
// Built on the engine layer (src/cluster/engine/), the replay shares the
// end-to-end simulator's miss and database machinery: misses can be the
// Bernoulli coin or a real per-server LruStore warmed by the trace itself
// (kRealCache), and the database can be the infinite-server approximation,
// a single M/M/1 queue, or an M/M/c shard pool.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/common_config.h"
#include "cluster/modes.h"
#include "core/config.h"
#include "obs/recorder.h"
#include "stats/summary.h"
#include "workload/keyspace.h"
#include "workload/trace.h"

namespace mclat::cluster {

struct TraceReplayConfig {
  core::SystemConfig system;  ///< rates, miss ratio, database, network
  MapperKind mapper = MapperKind::kRing;
  /// kBernoulli draws iid misses at system.miss_ratio; kRealCache runs one
  /// LruStore per server, looked up and refilled by the replay itself, so
  /// the miss ratio *emerges* from the trace's popularity profile vs cache
  /// capacity.
  MissMode miss_mode = MissMode::kBernoulli;
  DbMode db_mode = DbMode::kInfiniteServer;
  /// Shards/threads of the kPooled database (one shared M/M/c queue).
  unsigned db_servers = 4;
  /// Measurement window, seed, real-cache sizing and miss coalescing — the
  /// shared cluster knobs (common_config.h). `common.warmup_time` is the
  /// replay's former `measure_from`: requests starting at or after it
  /// contribute to the latency statistics, the per-request stage.*
  /// observations, and the per-server wait/service splits; earlier requests
  /// still replay in full — warming queues and (in kRealCache mode) caches
  /// — but are not measured. The default of 0 measures the whole trace, and
  /// `common.measure_time` is ignored: the trace's own horizon ends the
  /// run.
  ///
  /// Coalescing note: trace records carry real key ranks in both miss
  /// modes, so kPerServer coalescing here is genuinely per (server, key).
  /// kOff is byte-identical to the pre-coalescing replay.
  CommonConfig common{.warmup_time = 0.0};
  /// Per-stage observability (null by default): per-server queue-wait /
  /// service splits, per-request stage maxima, sync gap, miss-path T_D.
  obs::Recorder recorder;
};

struct TraceReplayResult {
  stats::MeanCI network;
  stats::MeanCI server;
  stats::MeanCI database;
  stats::MeanCI total;
  std::uint64_t requests_completed = 0;  ///< every request in the trace
  /// Requests that started at or after common.warmup_time (the statistics
  /// above average exactly these).
  std::uint64_t measured_requests = 0;
  std::uint64_t keys_completed = 0;
  double measured_miss_ratio = 0.0;
  std::vector<double> server_utilization;
  double horizon = 0.0;  ///< virtual time when the last key completed
  /// Misses that submitted a database fetch (== misses when coalescing is
  /// off; the effective DB arrival count when it is on).
  std::uint64_t db_fetches = 0;
  /// Misses parked behind an in-flight fetch (delayed hits). Conservation:
  /// misses == db_fetches + delayed_hits.
  std::uint64_t delayed_hits = 0;
  /// Membership-churn outcome (default-empty unless common.churn is
  /// active). See cluster/membership.h.
  ChurnStats churn;
};

class TraceReplaySim {
 public:
  /// Validates the configuration (the shared CommonConfig knobs, at least
  /// one database shard) — a bad config throws here, not mid-replay.
  explicit TraceReplaySim(TraceReplayConfig cfg);

  /// Replays the (time-sorted) trace to completion. `keys` renders ranks
  /// into key strings for hashing; every record's rank must lie inside it
  /// (validated up front, naming the offending record — ranks are never
  /// silently wrapped). Requests starting at or after common.warmup_time
  /// are measured; with the default of 0, all of them.
  [[nodiscard]] TraceReplayResult run(const workload::Trace& trace,
                                      const workload::KeySpace& keys);

  [[nodiscard]] const TraceReplayConfig& config() const noexcept {
    return cfg_;
  }

 private:
  TraceReplayConfig cfg_;
};

}  // namespace mclat::cluster
