// trace_replay.h — trace-driven cluster simulation (Mode C).
//
// Replays a workload::Trace — recorded or synthetic — through the same
// fork-join pipeline as the end-to-end simulator: each trace record is one
// key of one end-user request; keys route by hashing their key string,
// queue at their server, optionally miss to the database, and the request
// completes when its last key's value returns. This is the entry point for
// driving the cluster with *real* captured traces instead of the
// generative models (the paper's §5 workload is itself a statistical model
// of such a trace).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/end_to_end.h"
#include "core/config.h"
#include "obs/recorder.h"
#include "stats/summary.h"
#include "workload/keyspace.h"
#include "workload/trace.h"

namespace mclat::cluster {

struct TraceReplayConfig {
  core::SystemConfig system;  ///< rates, miss ratio, database, network
  MapperKind mapper = MapperKind::kRing;
  std::uint64_t seed = 1;
  /// Per-stage observability (null by default): per-server queue-wait /
  /// service splits, per-request stage maxima, sync gap, miss-path T_D.
  obs::Recorder recorder;
};

struct TraceReplayResult {
  stats::MeanCI network;
  stats::MeanCI server;
  stats::MeanCI database;
  stats::MeanCI total;
  std::uint64_t requests_completed = 0;
  std::uint64_t keys_completed = 0;
  double measured_miss_ratio = 0.0;
  std::vector<double> server_utilization;
  double horizon = 0.0;  ///< virtual time when the last key completed
};

class TraceReplaySim {
 public:
  explicit TraceReplaySim(TraceReplayConfig cfg);

  /// Replays the (time-sorted) trace to completion. `keys` renders ranks
  /// into key strings for hashing. Every request in the trace is measured.
  [[nodiscard]] TraceReplayResult run(const workload::Trace& trace,
                                      const workload::KeySpace& keys);

  [[nodiscard]] const TraceReplayConfig& config() const noexcept {
    return cfg_;
  }

 private:
  TraceReplayConfig cfg_;
};

}  // namespace mclat::cluster
