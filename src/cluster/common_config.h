// common_config.h — the knobs every cluster simulator shares.
//
// WorkloadDrivenConfig, EndToEndConfig and TraceReplayConfig used to each
// re-declare the measurement window, the seed, the real-cache sizing and the
// miss-coalescing switch, and each ctor re-validated its own copy. The
// spellings had already drifted: TraceReplayConfig called the warmup cut
// `measure_from` while the other two split it into `warmup_time`. This
// struct is now the single home of those fields — embedded by value as
// `config.common` — and validate() the single place their invariants live.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cluster/membership.h"
#include "cluster/modes.h"
#include "math/numerics.h"

namespace mclat::cluster {

struct CommonConfig {
  /// Requests starting before this virtual time run in full — warming
  /// queues and (in real-cache mode) caches — but are not measured. For the
  /// trace replay this is the former `measure_from`: identical semantics,
  /// one spelling.
  double warmup_time = 1.0;
  /// Length of the measurement window after warmup. The trace replay
  /// ignores it — the trace's own horizon ends the run.
  double measure_time = 10.0;
  std::uint64_t seed = 1;

  // --- real-cache mode sizing (MissMode::kRealCache) ----------------------
  std::size_t cache_bytes_per_server = 8u << 20;
  std::uint32_t max_value_bytes = 4096;
  /// Resident-memory cap for the per-trial workload::KeyTable (0 =
  /// unbounded, the historical behaviour). With a budget, cold key-metadata
  /// chunks are evicted and rebuilt bit-identically on re-touch, so results
  /// never depend on the budget — only memory and build CPU do (DESIGN.md
  /// §4j). Under shard_jobs > 1 each shard gets its own bounded table.
  std::size_t keytable_budget_bytes = 0;

  /// Delayed-hit miss coalescing (see modes.h). kOff reproduces the paper's
  /// every-miss-an-independent-DB-visit model byte-identically.
  MissCoalescing coalescing = MissCoalescing::kOff;

  /// Intra-trial parallelism: number of server shards for the conservative
  /// windowed execution mode (DESIGN.md §4i). 1 (the default) runs the
  /// exact single-threaded event loop — byte-identical to every golden.
  /// K > 1 partitions the servers across K calendars driven by K+1 worker
  /// threads (one coordinator LP plus the shards) and is its own
  /// deterministic contract: results are identical for a fixed config
  /// across repeated runs, worker counts, *and* shard counts, but are not
  /// sample-identical to the serial schedule (the RNG split order differs;
  /// see DESIGN.md §4i).
  std::size_t shard_jobs = 1;

  /// Mid-run membership timeline (membership.h; `--churn SPEC`). Empty —
  /// the default — is the static-membership contract every golden pins.
  /// When active the trial always runs on the sharded engine (shard_jobs=1
  /// uses a single shard), because churn's RNG-provisioning and message
  /// protocol are defined in sharded terms; that is also what makes the
  /// result shard-count invariant under churn (DESIGN.md §4k).
  MembershipSchedule churn{};

  /// One validation for all three simulators; a bad config throws at
  /// construction, not mid-run. `needs_measure_window` is false for the
  /// trace replay, whose horizon comes from the trace.
  void validate(bool needs_measure_window = true) const {
    math::require(warmup_time >= 0.0, "CommonConfig.warmup_time must be >= 0");
    math::require(!needs_measure_window || measure_time > 0.0,
                  "CommonConfig.measure_time must be > 0");
    math::require(cache_bytes_per_server > 0,
                  "CommonConfig.cache_bytes_per_server must be > 0");
    math::require(max_value_bytes > 0,
                  "CommonConfig.max_value_bytes must be > 0");
    math::require(shard_jobs >= 1, "CommonConfig.shard_jobs must be >= 1");
  }
};

}  // namespace mclat::cluster
