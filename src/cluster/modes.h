// modes.h — the cluster simulators' scenario axes.
//
// The engine layer (src/cluster/engine/) composes a simulator from three
// orthogonal choices, one enum each:
//
//   MissMode   — how a key misses: the model's iid Bernoulli(r) coin, or a
//                real per-server LruStore whose miss ratio *emerges* from
//                Zipf popularity vs cache capacity (ablation A2).
//   DbMode     — what the backend database is: the paper's eq.-19
//                infinite-server approximation, a real M/M/1 queue that
//                exposes where the approximation breaks, or an M/M/c shard
//                pool (core::shards_for_offloaded_db's provisioning).
//   MapperKind — how keys route to servers: target-share Discrete sampling,
//                a consistent-hash ring, or naive modulo placement.
//
//   MissCoalescing — what a miss does when a database fetch for the same
//                key is already in flight at its server: kOff submits a new
//                independent fetch (the paper's model: every miss is an
//                independent DB visit), kPerServer parks the request behind
//                the outstanding fetch and completes it when that fetch
//                returns — a *delayed hit* (Jiang & Ma 2025; Gurushankar et
//                al., PAPERS.md), the regime real memcached's fetch
//                deduplication produces.
//
//   HedgeTrigger — when a key's backup replicas are dispatched: kImmediate
//                fans all d replicas out at fork time (Poloczek & Ciucu's
//                replication model), kHedged sends only the primary and
//                issues the backups if it outlives a deadline derived from
//                an online quantile of past primary sojourns (the
//                tail-at-scale "hedged request").
//   LoserMode  — what happens to the replicas that lose the race once the
//                first one finishes: kLetLosersRun leaves them in their
//                queues (the self-queueing cost of replication in full),
//                kCancelOnWin pulls replicas that are still in flight or
//                waiting out of the system via the kernel's O(1)
//                generation-tagged event cancellation (a replica already
//                in service runs to completion — service is not preempted,
//                only wasted).
//
// These used to live in end_to_end.h; they moved here so engine components
// (DbStage, MissPolicy) can name them without depending on a specific
// simulator's config struct. end_to_end.h re-exports them, so existing
// `cluster::MissMode::...` spellings are unchanged.
#pragma once

namespace mclat::cluster {

enum class MissMode { kBernoulli, kRealCache };
enum class DbMode { kInfiniteServer, kSingleServer, kPooled };
enum class MapperKind { kWeighted, kRing, kModulo };
enum class MissCoalescing { kOff, kPerServer };
enum class HedgeTrigger { kImmediate, kHedged };
enum class LoserMode { kLetLosersRun, kCancelOnWin };

}  // namespace mclat::cluster
