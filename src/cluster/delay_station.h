// delay_station.h — an infinite-server (M/G/∞) stage: every job starts
// service immediately; latency is a pure iid service draw.
//
// This is the simulation counterpart of the paper's eq. (19), which models
// the backend database as M/M/1 with utilisation ρ ≪ 1 and then *drops the
// queueing term*: T_D(t) ≈ 1 - e^{-μ_D t}. An infinite-server station
// realises exactly that law. (cluster::EndToEndSim can also run the
// database as a real single-server queue to show where the approximation
// breaks — ablation/extension territory.)
#pragma once

#include <cstdint>
#include <functional>

#include "dist/distribution.h"
#include "dist/rng.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "stats/welford.h"

namespace mclat::cluster {

class DelayStation {
 public:
  using DepartureHandler = std::function<void(const sim::Departure&)>;

  DelayStation(sim::Simulator& sim, dist::DistributionPtr service,
               dist::Rng rng, DepartureHandler on_departure);

  DelayStation(const DelayStation&) = delete;
  DelayStation& operator=(const DelayStation&) = delete;

  /// Admits a job; it completes after one independent service draw.
  void submit(std::uint64_t job_id);

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] const stats::Welford& sojourn_stats() const noexcept {
    return sojourn_;
  }

 private:
  sim::Simulator& sim_;
  dist::DistributionPtr service_;
  dist::Rng rng_;
  DepartureHandler on_departure_;
  std::uint64_t completed_ = 0;
  std::uint64_t in_flight_ = 0;
  stats::Welford sojourn_;
};

}  // namespace mclat::cluster
