#include "cluster/trace_replay.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "cluster/engine/arrival.h"
#include "cluster/engine/db_stage.h"
#include "cluster/engine/fetch_table.h"
#include "cluster/engine/fork_join.h"
#include "cluster/engine/mapper.h"
#include "cluster/engine/miss_policy.h"
#include "cluster/engine/sharded_engine.h"
#include "cluster/engine/stage_observer.h"
#include "dist/exponential.h"
#include "hashing/key_mapper.h"
#include "math/numerics.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "stats/welford.h"
#include "workload/key_table.h"
#include "workload/size_model.h"

namespace mclat::cluster {

TraceReplaySim::TraceReplaySim(TraceReplayConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.common.validate(/*needs_measure_window=*/false);
  math::require(cfg_.db_servers >= 1,
                "TraceReplaySim: db_servers must be >= 1");
  // Same restriction as EndToEndSim: a shared database queue would be a
  // zero-lookahead edge between shards.
  math::require(cfg_.common.shard_jobs == 1 ||
                    cfg_.db_mode == DbMode::kInfiniteServer,
                "TraceReplaySim: shard_jobs > 1 requires "
                "DbMode::kInfiniteServer (a shared database queue has no "
                "network lookahead)");
  if (cfg_.common.churn.active()) {
    // Churn replays through the sharded engine (any shard_jobs, including
    // 1): the coordinator routes every record under the live ring.
    math::require(cfg_.mapper == MapperKind::kRing,
                  "TraceReplaySim: churn requires MapperKind::kRing "
                  "(membership events mutate the consistent-hashing ring)");
    math::require(cfg_.db_mode == DbMode::kInfiniteServer,
                  "TraceReplaySim: churn requires DbMode::kInfiniteServer "
                  "(the sharded-engine constraint)");
    math::require(cfg_.system.load_shares.empty(),
                  "TraceReplaySim: churn requires uniform load_shares (the "
                  "ring rebalances shares itself)");
    math::require(cfg_.system.service_rates.empty(),
                  "TraceReplaySim: churn requires uniform service_rates "
                  "(joined servers take the common rate)");
  }
}

TraceReplayResult TraceReplaySim::run(const workload::Trace& trace,
                                      const workload::KeySpace& keys) {
  // shard_jobs == 1 without churn runs the exact serial loop below
  // (golden-identical); K > 1 — and any churn run — dispatches to the
  // windowed-parallel engine.
  if (cfg_.common.shard_jobs > 1 || cfg_.common.churn.active()) {
    return engine::run_trace_replay_sharded(cfg_, trace, keys);
  }
  // Fail fast, before any simulation state exists: non-empty trace, every
  // rank inside the keyspace (a record that exceeds it names itself in the
  // diagnostic instead of aliasing onto some unrelated hot key).
  const engine::TraceInjector injector(trace, keys.size());

  const core::SystemConfig& sys = cfg_.system;
  const std::vector<double> shares = sys.shares();
  const std::size_t M = shares.size();
  const double net_half = sys.network_latency / 2.0;
  const bool real_cache = cfg_.miss_mode == MissMode::kRealCache;

  // Pre-scan: per-request key counts and start times (a general trace may
  // not emit a request's keys at one instant). Trace request ids are
  // arbitrary, so they are interned once here into dense indices; the
  // joiner's sequential open_request ids then coincide with them.
  struct PreRequest {
    double start = 0.0;
    std::uint32_t n_keys = 0;
  };
  std::unordered_map<std::uint64_t, std::uint32_t> request_index;
  std::vector<PreRequest> pre;
  for (const auto& rec : trace.records()) {
    const auto [it, fresh] = request_index.try_emplace(
        rec.request_id, static_cast<std::uint32_t>(pre.size()));
    if (fresh) pre.emplace_back();
    PreRequest& req = pre[it->second];
    req.n_keys += 1;
    req.start = fresh ? rec.time : std::min(req.start, rec.time);
  }

  sim::Simulator s;
  // Split order (the golden contract): misses, then the database stage,
  // then one stream per server — regardless of mode, so switching the miss
  // policy or database never shifts another stream.
  dist::Rng master(cfg_.common.seed);
  dist::Rng miss_rng = master.split();
  const std::unique_ptr<hashing::KeyMapper> mapper =
      engine::make_mapper(cfg_.mapper, shares);

  // Key→server routing goes through the memoized table: a trace that
  // revisits hot ranks pays the string-render + hash exactly once per rank
  // instead of once per record. Real-cache mode also memoizes refill value
  // sizes (the fixed Facebook size law).
  const workload::ValueSizeModel value_sizes(214.476, 0.348238, 1,
                                             cfg_.common.max_value_bytes);
  workload::KeyTable key_table(keys, *mapper,
                               real_cache ? &value_sizes : nullptr,
                               workload::KeyTable::Build::kLazy,
                               cfg_.common.keytable_budget_bytes);
  engine::MissPolicy miss_policy =
      real_cache
          ? engine::MissPolicy::real_cache(
                key_table, M, cfg_.common.cache_bytes_per_server,
                std::move(miss_rng))
          : engine::MissPolicy::bernoulli(sys.miss_ratio, std::move(miss_rng));

  const bool coalesce = cfg_.common.coalescing == MissCoalescing::kPerServer;
  const obs::Recorder& orec = cfg_.recorder;
  engine::StageObserver sobs = engine::StageObserver::for_sim(orec);
  if (coalesce) sobs.attach_coalescing(orec);
  const bool bounded_table =
      real_cache && cfg_.common.keytable_budget_bytes > 0;
  if (bounded_table) sobs.attach_cache_index(orec);
  engine::ForkJoinJoiner joiner(sys.network_latency, sobs,
                                /*keep_total_samples=*/false,
                                /*per_key_counter=*/sobs.keys);
  for (const PreRequest& p : pre) {
    joiner.open_request(p.start, p.n_keys, p.start >= cfg_.common.warmup_time);
  }
  std::uint64_t misses = 0;
  std::uint64_t db_fetches = 0;
  std::uint64_t delayed_hits = 0;
  engine::FetchTable fetch(M);
  std::vector<engine::FetchTable::Waiter> released;

  engine::DbStage db(
      s, cfg_.db_mode, cfg_.db_servers, sys.db_service_rate, master.split(),
      [&](const sim::Departure& d) {
        engine::ForkJoinJoiner::Key& ctx = joiner.key(
            d.job_id, "TraceReplaySim: database departure for unknown key");
        ctx.db_sojourn = d.sojourn_time();
        obs::observe(sobs.db_sojourn, obs::to_us(d.sojourn_time()));
        miss_policy.refill(ctx.server, ctx.key_rank, s.now());
        s.schedule_in(net_half,
                      [&, job = d.job_id] { joiner.complete_key(job, s.now()); });
        if (coalesce) {
          // Release every waiter parked behind this fetch through the same
          // departure path (net-half hop + join); the refill above already
          // happened exactly once, for the leader.
          fetch.release(ctx.server, ctx.key_rank, released);
          for (const engine::FetchTable::Waiter& w : released) {
            engine::ForkJoinJoiner::Key& wctx = joiner.key(
                w.job, "TraceReplaySim: released waiter for unknown key");
            wctx.db_sojourn = s.now() - w.parked_at;
            obs::observe(sobs.db_sojourn, obs::to_us(wctx.db_sojourn));
            obs::observe(sobs.delayed_wait, obs::to_us(wctx.db_sojourn));
            s.schedule_in(net_half, [&, job = w.job] {
              joiner.complete_key(job, s.now());
            });
          }
        }
      });

  std::vector<std::unique_ptr<sim::ServiceStation>> servers;
  servers.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    servers.push_back(std::make_unique<sim::ServiceStation>(
        s, std::make_unique<dist::Exponential>(sys.rate_of(j)),
        master.split(), [&, j](const sim::Departure& d) {
          engine::ForkJoinJoiner::Key& ctx = joiner.key(
              d.job_id, "TraceReplaySim: server departure for unknown key");
          ctx.server_sojourn = d.sojourn_time();
          const bool miss = miss_policy.is_miss(j, ctx.key_rank, s.now());
          if (miss) {
            ++misses;
            obs::bump(sobs.misses);
            if (!coalesce ||
                fetch.lead_or_park(j, ctx.key_rank, d.job_id, s.now())) {
              ++db_fetches;
              db.submit(d.job_id);
            } else {
              ++delayed_hits;
              obs::bump(sobs.coalesced);
            }
          } else {
            s.schedule_in(net_half, [&, job = d.job_id] {
              joiner.complete_key(job, s.now());
            });
          }
        }));
    engine::StageObserver::attach_server_split(orec, *servers.back(), j,
                                               cfg_.common.warmup_time);
  }

  // Inject the trace: one in-flight key per record, arriving at its server
  // half an RTT after its timestamp. The injector re-checks time ordering
  // record by record.
  injector.start([&](const workload::TraceRecord& rec) {
    const std::size_t server = key_table.server(rec.key_rank);
    const std::uint64_t job = joiner.open_key(request_index.at(rec.request_id),
                                              rec.key_rank, server);
    s.schedule_at(rec.time + net_half,
                  [&, job, server] { servers[server]->arrive(job); });
  });
  s.run();

  TraceReplayResult res;
  res.network = stats::mean_ci(joiner.network_stats());
  res.server = stats::mean_ci(joiner.server_stats());
  res.database = stats::mean_ci(joiner.database_stats());
  res.total = stats::mean_ci(joiner.total_stats());
  res.requests_completed = joiner.requests_joined();
  res.measured_requests = joiner.measured_requests();
  res.keys_completed = joiner.keys_completed();
  res.measured_miss_ratio =
      res.keys_completed == 0 ? 0.0
                              : static_cast<double>(misses) /
                                    static_cast<double>(res.keys_completed);
  res.horizon = s.now();
  res.db_fetches = db_fetches;
  res.delayed_hits = delayed_hits;
  if (coalesce) {
    obs::set_gauge(sobs.fetch_outstanding,
                   static_cast<double>(fetch.peak_outstanding()));
  }
  res.server_utilization.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    res.server_utilization.push_back(servers[j]->utilization(s.now()));
    engine::StageObserver::record_server_utilization(
        orec, j, res.server_utilization.back());
  }
  if (bounded_table) {
    sobs.record_cache_index(key_table.chunks_resident(),
                            key_table.bytes_resident(),
                            miss_policy.index_stats());
  }
  return res;
}

}  // namespace mclat::cluster
