#include "cluster/trace_replay.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>

#include "cluster/delay_station.h"
#include "cluster/job_table.h"
#include "dist/exponential.h"
#include "hashing/consistent_hash.h"
#include "hashing/key_mapper.h"
#include "hashing/weighted_mapper.h"
#include "math/numerics.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "stats/welford.h"
#include "workload/key_table.h"

namespace mclat::cluster {

namespace {

struct RequestState {
  double start = 0.0;
  std::uint32_t remaining = 0;
  std::uint32_t n_keys = 0;
  double max_server = 0.0;
  double max_db = 0.0;
  double max_total = 0.0;
  double sum_total = 0.0;  ///< Σ per-key completion (sync-gap metric)
};

struct KeyState {
  std::uint32_t request_index = 0;  ///< dense index into the request vector
  double server_sojourn = 0.0;
  double db_sojourn = 0.0;
};

std::unique_ptr<hashing::KeyMapper> make_mapper(const TraceReplayConfig& cfg) {
  const auto shares = cfg.system.shares();
  switch (cfg.mapper) {
    case MapperKind::kWeighted:
      return std::make_unique<hashing::WeightedMapper>(shares);
    case MapperKind::kRing:
      return std::make_unique<hashing::ConsistentHashRing>(shares.size());
    case MapperKind::kModulo:
      return std::make_unique<hashing::ModuloMapper>(shares.size());
  }
  throw std::logic_error("TraceReplaySim: unhandled mapper kind");
}

}  // namespace

TraceReplaySim::TraceReplaySim(TraceReplayConfig cfg) : cfg_(std::move(cfg)) {}

TraceReplayResult TraceReplaySim::run(const workload::Trace& trace,
                                      const workload::KeySpace& keys) {
  math::require(!trace.empty(), "TraceReplaySim: empty trace");
  const core::SystemConfig& sys = cfg_.system;
  const std::size_t M = sys.shares().size();
  const double net_half = sys.network_latency / 2.0;

  // Pre-scan: per-request key counts and start times (a general trace may
  // not emit a request's keys at one instant). Trace request ids are
  // arbitrary, so they are interned once here into dense indices; the
  // replay hot path then works on a flat vector.
  std::unordered_map<std::uint64_t, std::uint32_t> request_index;
  std::vector<RequestState> requests;
  for (const auto& rec : trace.records()) {
    const auto [it, fresh] = request_index.try_emplace(
        rec.request_id, static_cast<std::uint32_t>(requests.size()));
    if (fresh) requests.emplace_back();
    RequestState& req = requests[it->second];
    req.remaining += 1;
    req.n_keys += 1;
    req.start = fresh ? rec.time : std::min(req.start, rec.time);
  }

  sim::Simulator s;
  dist::Rng master(cfg_.seed);
  dist::Rng miss_rng = master.split();
  const auto mapper = make_mapper(cfg_);

  JobTable<KeyState> in_flight;

  stats::Welford w_net;
  stats::Welford w_server;
  stats::Welford w_db;
  stats::Welford w_total;
  std::uint64_t keys_completed = 0;
  std::uint64_t misses = 0;
  std::uint64_t requests_completed = 0;

  const obs::Recorder& orec = cfg_.recorder;
  obs::LatencyStat* st_network = orec.latency("stage.network_us");
  obs::LatencyStat* st_server = orec.latency("stage.server_us");
  obs::LatencyStat* st_db = orec.latency("stage.database_us");
  obs::LatencyStat* st_total = orec.latency("stage.total_us");
  obs::LatencyStat* st_gap = orec.latency("request.sync_gap_us");
  obs::LatencyStat* st_slack = orec.latency("request.sync_slack_us");
  obs::LatencyStat* st_db_sojourn = orec.latency("db.sojourn_us");
  obs::Counter* ct_keys = orec.counter("sim.keys_completed");
  obs::Counter* ct_misses = orec.counter("db.misses");

  const auto complete_key = [&](std::uint64_t job) {
    const KeyState ks =
        in_flight.take(job, "TraceReplaySim: completion for unknown key job");
    ++keys_completed;
    obs::bump(ct_keys);
    math::require(ks.request_index < requests.size(),
                  "TraceReplaySim: key references an unknown request");
    RequestState& req = requests[ks.request_index];
    req.max_server = std::max(req.max_server, ks.server_sojourn);
    req.max_db = std::max(req.max_db, ks.db_sojourn);
    const double total = s.now() - req.start;
    req.max_total = std::max(req.max_total, total);
    req.sum_total += total;
    if (--req.remaining == 0) {
      ++requests_completed;
      w_net.add(sys.network_latency);
      w_server.add(req.max_server);
      w_db.add(req.max_db);
      w_total.add(req.max_total);
      obs::observe(st_network, obs::to_us(sys.network_latency));
      obs::observe(st_server, obs::to_us(req.max_server));
      obs::observe(st_db, obs::to_us(req.max_db));
      obs::observe(st_total, obs::to_us(req.max_total));
      obs::observe(st_gap,
                   obs::to_us(req.max_total -
                              req.sum_total /
                                  static_cast<double>(req.n_keys)));
      obs::observe(st_slack,
                   obs::to_us(sys.network_latency + req.max_server +
                              req.max_db - req.max_total));
    }
  };

  DelayStation db(s, std::make_unique<dist::Exponential>(sys.db_service_rate),
                  master.split(), [&](const sim::Departure& d) {
                    in_flight
                        .at(d.job_id,
                            "TraceReplaySim: database departure for "
                            "unknown key")
                        .db_sojourn = d.sojourn_time();
                    obs::observe(st_db_sojourn, obs::to_us(d.sojourn_time()));
                    s.schedule_in(net_half,
                                  [&, job = d.job_id] { complete_key(job); });
                  });

  std::vector<std::unique_ptr<sim::ServiceStation>> servers;
  servers.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    servers.push_back(std::make_unique<sim::ServiceStation>(
        s, std::make_unique<dist::Exponential>(sys.rate_of(j)),
        master.split(), [&](const sim::Departure& d) {
          in_flight
              .at(d.job_id,
                  "TraceReplaySim: server departure for unknown key")
              .server_sojourn = d.sojourn_time();
          const bool miss =
              sys.miss_ratio > 0.0 && miss_rng.bernoulli(sys.miss_ratio);
          if (miss) {
            ++misses;
            obs::bump(ct_misses);
            db.submit(d.job_id);
          } else {
            s.schedule_in(net_half,
                          [&, job = d.job_id] { complete_key(job); });
          }
        }));
    servers.back()->observe_split(
        orec.latency("server." + std::to_string(j) + ".wait_us"),
        orec.latency("server." + std::to_string(j) + ".service_us"));
  }

  // Inject the trace. Records must be time-sorted (sort_by_time()).
  // Key→server routing goes through the memoized table: a trace that
  // revisits hot ranks pays the string-render + hash exactly once per rank
  // instead of once per record.
  workload::KeyTable key_table(keys, *mapper);
  double prev_time = 0.0;
  for (const auto& rec : trace.records()) {
    math::require(rec.time >= prev_time,
                  "TraceReplaySim: trace must be sorted by time");
    prev_time = rec.time;
    const std::uint64_t job =
        in_flight.insert(KeyState{request_index.at(rec.request_id), 0.0, 0.0});
    const std::size_t server = key_table.server(rec.key_rank % keys.size());
    s.schedule_at(rec.time + net_half,
                  [&, job, server] { servers[server]->arrive(job); });
  }
  s.run();

  TraceReplayResult res;
  res.network = stats::mean_ci(w_net);
  res.server = stats::mean_ci(w_server);
  res.database = stats::mean_ci(w_db);
  res.total = stats::mean_ci(w_total);
  res.requests_completed = requests_completed;
  res.keys_completed = keys_completed;
  res.measured_miss_ratio =
      keys_completed == 0
          ? 0.0
          : static_cast<double>(misses) / static_cast<double>(keys_completed);
  res.horizon = s.now();
  res.server_utilization.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    res.server_utilization.push_back(servers[j]->utilization(s.now()));
    obs::set_gauge(
        orec.gauge("server." + std::to_string(j) + ".utilization"),
        res.server_utilization.back());
  }
  return res;
}

}  // namespace mclat::cluster
