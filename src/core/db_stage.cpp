#include "core/db_stage.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::core {

DatabaseStage::DatabaseStage(double miss_ratio, double mu_d, double rho_d)
    : r_(miss_ratio), mu_d_(mu_d), rho_d_(rho_d),
      mu_eff_((1.0 - rho_d) * mu_d) {
  math::require(miss_ratio >= 0.0 && miss_ratio <= 1.0,
                "DatabaseStage: miss ratio must be in [0,1]");
  math::require(mu_d > 0.0, "DatabaseStage: mu_d must be > 0");
  math::require(rho_d >= 0.0 && rho_d < 1.0,
                "DatabaseStage: rho_d must be in [0,1)");
}

double DatabaseStage::p_no_miss(std::uint64_t n_keys) const {
  // (1-r)^N via exp/log1p for accuracy at tiny r and huge N.
  return std::exp(static_cast<double>(n_keys) * math::log1p_safe(-r_));
}

double DatabaseStage::expected_misses_given_any(std::uint64_t n_keys) const {
  const double p_any = 1.0 - p_no_miss(n_keys);
  if (p_any <= 0.0) return 0.0;
  return static_cast<double>(n_keys) * r_ / p_any;
}

double DatabaseStage::latency_cdf(double t) const {
  if (t < 0.0) return 0.0;
  return -math::expm1_safe(-mu_eff_ * t);
}

double DatabaseStage::expected_max(std::uint64_t n_keys) const {
  if (r_ == 0.0 || n_keys == 0) return 0.0;
  const double p_any = 1.0 - p_no_miss(n_keys);
  if (p_any <= 0.0) return 0.0;
  const double mean_k = static_cast<double>(n_keys) * r_ / p_any;
  return p_any / mu_eff_ * std::log(mean_k + 1.0);
}

double DatabaseStage::expected_max_exact_k(std::uint64_t n_keys) const {
  if (r_ == 0.0 || n_keys == 0) return 0.0;
  const double n = static_cast<double>(n_keys);
  const double mean = n * r_;
  const double var = n * r_ * (1.0 - r_);
  if (mean <= 50.0 || n_keys <= 4096) {
    // Exact binomial sum with a recursive pmf (stable in log space).
    double acc = 0.0;
    double log_pmf = n * math::log1p_safe(-r_);  // P{K=0}
    for (std::uint64_t k = 0; k <= n_keys; ++k) {
      const double pmf = std::exp(log_pmf);
      if (k > 0 || true) acc += pmf * std::log(static_cast<double>(k) + 1.0);
      if (k == n_keys) break;
      // pmf(k+1) = pmf(k) * (n-k)/(k+1) * r/(1-r)
      log_pmf += std::log((n - static_cast<double>(k)) /
                          (static_cast<double>(k) + 1.0)) +
                 std::log(r_) - math::log1p_safe(-r_);
      if (pmf < 1e-18 && static_cast<double>(k) > mean + 12.0 * std::sqrt(var + 1.0)) {
        break;  // tail contribution is negligible
      }
    }
    return acc / mu_eff_;
  }
  // Normal-limit average of ln(K+1) via second-order Taylor around the mean:
  // E[ln(K+1)] ≈ ln(mean+1) - var / (2(mean+1)²).
  return (std::log(mean + 1.0) - var / (2.0 * (mean + 1.0) * (mean + 1.0))) /
         mu_eff_;
}

double DatabaseStage::large_n_limit(std::uint64_t n_keys) const {
  return std::log(static_cast<double>(n_keys) * r_ + 1.0) / mu_eff_;
}

double DatabaseStage::max_cdf(std::uint64_t n_keys, double t) const {
  if (t < 0.0) return 0.0;
  if (r_ == 0.0 || n_keys == 0) return 1.0;
  // E[F(t)^K] with K ~ Binom(N, r) and F the exp(μ_D) CDF:
  // ((1-r) + r·F(t))^N = (1 - r·e^{-μ_D t})^N.
  return std::exp(static_cast<double>(n_keys) *
                  math::log1p_safe(-r_ * std::exp(-mu_eff_ * t)));
}

double DatabaseStage::max_quantile(std::uint64_t n_keys, double k) const {
  math::require(k >= 0.0 && k < 1.0, "DatabaseStage::max_quantile: k in [0,1)");
  if (r_ == 0.0 || n_keys == 0) return 0.0;
  // Invert (1 - r e^{-μt})^N = k:  e^{-μt} = (1 - k^{1/N})/r.
  const double root = -math::expm1_safe(math::log1p_safe(-(1.0 - k)) /
                                        static_cast<double>(n_keys));
  // root = 1 - k^{1/N}, computed stably for huge N.
  if (root >= r_) return 0.0;  // quantile falls inside the no-miss atom
  return -std::log(root / r_) / mu_eff_;
}

double DatabaseStage::expected_max_harmonic(std::uint64_t n_keys) const {
  if (r_ == 0.0 || n_keys == 0) return 0.0;
  const double n = static_cast<double>(n_keys);
  const double mean = n * r_;
  const double sd = std::sqrt(n * r_ * (1.0 - r_));
  // Walk the binomial pmf recursively; harmonic numbers accumulate along.
  double acc = 0.0;
  double log_pmf = n * math::log1p_safe(-r_);  // P{K=0}
  double harmonic = 0.0;                       // H_0
  const double euler_gamma = 0.57721566490153286;
  for (std::uint64_t k = 0; k <= n_keys; ++k) {
    if (k > 0) {
      if (k <= 1'000'000) {
        harmonic += 1.0 / static_cast<double>(k);
      } else {
        harmonic = std::log(static_cast<double>(k)) + euler_gamma;
      }
    }
    acc += std::exp(log_pmf) * harmonic;
    if (k == n_keys) break;
    log_pmf += std::log((n - static_cast<double>(k)) /
                        (static_cast<double>(k) + 1.0)) +
               std::log(r_) - math::log1p_safe(-r_);
    if (std::exp(log_pmf) < 1e-18 &&
        static_cast<double>(k) > mean + 12.0 * (sd + 1.0)) {
      break;
    }
  }
  return acc / mu_eff_;
}

}  // namespace mclat::core
