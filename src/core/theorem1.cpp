#include "core/theorem1.h"

#include <algorithm>

#include "math/numerics.h"

namespace mclat::core {

namespace {

ServerStage build_server_stage(const SystemConfig& cfg) {
  const std::vector<double> shares = cfg.shares();
  math::require(cfg.service_rates.empty() ||
                    cfg.service_rates.size() == shares.size(),
                "LatencyModel: service_rates must match the server count");
  std::vector<GixM1Queue> queues;
  queues.reserve(shares.size());
  for (std::size_t j = 0; j < shares.size(); ++j) {
    math::require(shares[j] > 0.0,
                  "LatencyModel: every server must carry positive load");
    // Identical (share, rate) servers have identical δ — reuse the solved
    // queue instead of re-running the numeric transform (a 4x saving for
    // the common balanced cluster).
    bool reused = false;
    for (std::size_t i = 0; i < j; ++i) {
      if (shares[i] == shares[j] && cfg.rate_of(i) == cfg.rate_of(j)) {
        queues.push_back(queues[i]);
        reused = true;
        break;
      }
    }
    if (reused) continue;
    const workload::ArrivalSpec spec = cfg.arrival_for_share(shares[j]);
    const dist::DistributionPtr gap = spec.make_gap();
    queues.emplace_back(*gap, cfg.concurrency_q, cfg.rate_of(j));
  }
  return ServerStage(std::move(queues), shares);
}

}  // namespace

namespace {

DatabaseStage build_db_stage(const SystemConfig& cfg) {
  if (!cfg.db_queueing) {
    return DatabaseStage(cfg.miss_ratio, cfg.db_service_rate);
  }
  const double rho_d = cfg.db_utilization();
  math::require(rho_d < 1.0,
                "LatencyModel: db_queueing enabled but the miss stream "
                "saturates the database (r*Lambda >= mu_D)");
  return DatabaseStage(cfg.miss_ratio, cfg.db_service_rate, rho_d);
}

}  // namespace

LatencyModel::LatencyModel(const SystemConfig& cfg)
    : cfg_(cfg), server_(build_server_stage(cfg)), db_(build_db_stage(cfg)) {}

TailEstimate LatencyModel::tail(std::uint64_t n_keys, double k) const {
  math::require(k > 0.0 && k < 1.0, "LatencyModel::tail: k in (0,1)");
  TailEstimate t;
  t.n_keys = n_keys;
  t.k = k;
  t.network = cfg_.network_latency;
  t.server = server_.max_quantile_bounds(n_keys, k);
  t.database = db_.max_quantile(n_keys, k);
  t.total.lower = std::max({t.network, t.server.lower, t.database});
  const double k_split = 1.0 - (1.0 - k) / 2.0;
  t.total.upper = t.network +
                  server_.max_quantile_bounds(n_keys, k_split).upper +
                  db_.max_quantile(n_keys, k_split);
  return t;
}

LatencyEstimate LatencyModel::estimate(std::uint64_t n_keys) const {
  LatencyEstimate e;
  e.n_keys = n_keys;
  e.network = cfg_.network_latency;  // constant per eq. (2)
  e.server = server_.expected_max_bounds(n_keys);
  e.database = db_.expected_max(n_keys);
  // Theorem 1: max of the parts below, sum of the parts above. For the
  // lower envelope each part enters at its own lower end (the only bound
  // we have for the server part).
  e.total.lower = std::max({e.network, e.server.lower, e.database});
  e.total.upper = e.network + e.server.upper + e.database;
  return e;
}

}  // namespace mclat::core
