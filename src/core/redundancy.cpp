#include "core/redundancy.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::core {

namespace {

GixM1Queue build_inflated_queue(const SystemConfig& base, unsigned d) {
  math::require(d >= 1, "RedundancyModel: d must be >= 1");
  math::require(base.load_shares.empty(),
                "RedundancyModel: base config must be balanced");
  const double share = 1.0 / static_cast<double>(base.servers);
  workload::ArrivalSpec spec = base.arrival_for_share(share);
  spec.key_rate *= static_cast<double>(d);  // every key arrives d times
  const dist::DistributionPtr gap = spec.make_gap();
  return GixM1Queue(*gap, base.concurrency_q, base.rate_of(0));
}

}  // namespace

RedundancyModel::RedundancyModel(const SystemConfig& base, unsigned d)
    : d_(d), queue_(build_inflated_queue(base, d)) {}

Bounds RedundancyModel::per_key_quantile_bounds(double k) const {
  math::require(k >= 0.0 && k < 1.0,
                "RedundancyModel::per_key_quantile_bounds: k in [0,1)");
  // (min of d)_k = F^{-1}(1 - (1-k)^{1/d}); with F sandwiched by the
  // queueing/completion CDFs the bound transfers to the quantiles.
  const double u =
      -math::expm1_safe(math::log1p_safe(-k) / static_cast<double>(d_));
  return Bounds{queue_.queueing_quantile(u), queue_.completion_quantile(u)};
}

Bounds RedundancyModel::expected_max_bounds(std::uint64_t n_keys) const {
  math::require(n_keys >= 1, "RedundancyModel: need N >= 1");
  // E[max over N] ≈ quantile of one key's (min-of-d) law at N/(N+1).
  const double k = static_cast<double>(n_keys) /
                   (static_cast<double>(n_keys) + 1.0);
  return per_key_quantile_bounds(k);
}

std::optional<unsigned> RedundancyModel::best_redundancy(
    const SystemConfig& base, std::uint64_t n_keys, unsigned d_max) {
  std::optional<unsigned> best;
  double best_upper = 0.0;
  for (unsigned d = 1; d <= d_max; ++d) {
    const RedundancyModel m(base, d);
    if (!m.stable()) continue;
    const double upper = m.expected_max_bounds(n_keys).upper;
    if (!best || upper < best_upper) {
      best = d;
      best_upper = upper;
    }
  }
  return best;
}

}  // namespace mclat::core
