#include "core/delta.h"

#include <cmath>

#include "math/numerics.h"
#include "math/roots.h"

namespace mclat::core {

DeltaResult solve_delta(const dist::ContinuousDistribution& gap, double q,
                        double mu_s, const DeltaOptions& opt) {
  math::require(q >= 0.0 && q < 1.0, "solve_delta: q must be in [0,1)");
  math::require(mu_s > 0.0, "solve_delta: mu_s must be > 0");

  DeltaResult res;
  // Key rate λ = E[X]/E[T_X] = 1/((1-q)·E[T_X]).
  const double mean_gap = gap.mean();
  math::require(mean_gap > 0.0, "solve_delta: gap mean must be > 0");
  res.utilization = 1.0 / ((1.0 - q) * mean_gap * mu_s);
  if (res.utilization >= 1.0) {
    // Unstable queue: waiting time diverges; δ → 1 by convention.
    res.delta = 1.0;
    res.stable = false;
    return res;
  }

  const double mu_eff = opt.batch_corrected ? (1.0 - q) * mu_s : mu_s;
  int evals = 0;
  const auto g = [&](double d) {
    ++evals;
    return gap.laplace((1.0 - d) * mu_eff);
  };

  // A couple of fixed-point steps from 0 cheaply tighten the bracket (the
  // iteration climbs monotonically toward the root from below)...
  double lo = 0.0;
  for (int i = 0; i < 3; ++i) {
    const double next = g(lo);
    if (std::abs(next - lo) <= opt.tol) {
      res.delta = next;
      res.stable = next < 1.0 - 1e-9;
      res.iterations = evals;
      return res;
    }
    lo = next;
  }
  // ...then Brent finishes superlinearly. The residual g(δ)-δ is >= 0 at
  // `lo` (still below the root) and < 0 just under 1 for any stable queue
  // (g'(1) = 1/ρ > 1 pulls the curve below the diagonal).
  const auto residual = [&](double d) { return g(d) - d; };
  double hi = 1.0 - 1e-9;
  if (residual(hi) > 0.0) {
    // Numerically critical load: no interior crossing.
    res.delta = 1.0;
    res.stable = false;
    res.iterations = evals;
    return res;
  }
  const auto r = math::brent(residual, lo, hi,
                             {.x_tol = opt.tol, .f_tol = opt.tol});
  res.iterations = evals;
  res.delta = r.x;
  res.stable = r.converged && r.x < 1.0 - 1e-9;
  return res;
}

}  // namespace mclat::core
