#include "core/mmc.h"

#include <cmath>

#include "math/numerics.h"
#include "math/special.h"

namespace mclat::core {

MmcQueue::MmcQueue(unsigned c, double lambda, double mu)
    : c_(c), lambda_(lambda), mu_(mu) {
  math::require(c >= 1, "MmcQueue: need at least one server");
  math::require(lambda > 0.0 && mu > 0.0, "MmcQueue: rates must be > 0");
  math::require(lambda < c * mu, "MmcQueue: unstable (lambda >= c*mu)");
  erlang_c_ = math::erlang_c(c, lambda / mu);
  theta_ = static_cast<double>(c) * mu - lambda;
}

double MmcQueue::utilization() const noexcept {
  return lambda_ / (static_cast<double>(c_) * mu_);
}

double MmcQueue::mean_wait() const { return erlang_c_ / theta_; }

double MmcQueue::mean_sojourn() const { return mean_wait() + 1.0 / mu_; }

double MmcQueue::wait_cdf(double t) const {
  if (t < 0.0) return 0.0;
  return 1.0 - erlang_c_ * std::exp(-theta_ * t);
}

double MmcQueue::wait_quantile(double k) const {
  math::require(k >= 0.0 && k < 1.0, "MmcQueue::wait_quantile: k in [0,1)");
  if (k <= 1.0 - erlang_c_) return 0.0;  // inside the no-wait atom
  return std::log(erlang_c_ / (1.0 - k)) / theta_;
}

double MmcQueue::sojourn_cdf(double t) const {
  if (t < 0.0) return 0.0;
  // T = W + S with W = 0 w.p. (1-C), W|wait ~ Exp(θ), S ~ Exp(μ) indep.
  const double no_wait = (1.0 - erlang_c_) * (-math::expm1_safe(-mu_ * t));
  double waited;
  if (std::abs(theta_ - mu_) < 1e-9 * mu_) {
    // Degenerate θ = μ: W+S ~ Gamma(2, μ).
    waited = erlang_c_ *
             (1.0 - std::exp(-mu_ * t) * (1.0 + mu_ * t));
  } else {
    // P{W+S <= t | wait} = 1 - (θe^{-μt} - μe^{-θt})/(θ - μ).
    waited = erlang_c_ *
             (1.0 - (theta_ * std::exp(-mu_ * t) - mu_ * std::exp(-theta_ * t)) /
                        (theta_ - mu_));
  }
  return no_wait + waited;
}

unsigned shards_for_offloaded_db(double lambda, double mu, double tolerance,
                                 unsigned c_max) {
  math::require(lambda > 0.0 && mu > 0.0,
                "shards_for_offloaded_db: rates must be > 0");
  math::require(tolerance > 0.0, "shards_for_offloaded_db: tolerance > 0");
  const double ideal = 1.0 / mu;
  for (unsigned c = 1; c <= c_max; ++c) {
    if (lambda >= c * mu) continue;  // still unstable at this c
    const MmcQueue q(c, lambda, mu);
    if (q.mean_sojourn() <= ideal * (1.0 + tolerance)) return c;
  }
  return c_max;
}

}  // namespace mclat::core
