// theorem1.h — the paper's headline result, assembled.
//
// Theorem 1 bounds the latency T(N) of an end-user request generating N
// Memcached keys by its three components:
//
//   max{T_N(N), T_S(N), T_D(N)}  ≤  T(N)  ≤  T_N(N) + T_S(N) + T_D(N)   (eq. 1)
//
// with T_N constant (§4.2), E[T_S(N)] bounded by eq. (14) (server_stage.h)
// and E[T_D(N)] estimated by eq. (23) (db_stage.h). LatencyModel wires the
// three stages up from one SystemConfig and reports the full breakdown.
#pragma once

#include <cstdint>
#include <optional>

#include "core/config.h"
#include "core/db_stage.h"
#include "core/server_stage.h"

namespace mclat::core {

/// The model's answer for one (config, N) pair — everything Table 3 prints.
struct LatencyEstimate {
  std::uint64_t n_keys = 0;
  double network = 0.0;    ///< T_N(N): constant
  Bounds server;           ///< E[T_S(N)] interval (eq. 14)
  double database = 0.0;   ///< E[T_D(N)] (eq. 23)
  Bounds total;            ///< Theorem 1 envelope (eq. 1)

  /// Point estimates (documented convention: midpoint of the server
  /// interval; EXPERIMENTS.md reports bounds alongside).
  [[nodiscard]] double server_estimate() const noexcept {
    return server.midpoint();
  }
  [[nodiscard]] double total_estimate() const noexcept {
    return total.midpoint();
  }
};

/// Tail-latency extension (beyond the paper, which reports only means):
/// the kth quantile of each component of T(N).
struct TailEstimate {
  std::uint64_t n_keys = 0;
  double k = 0.0;
  double network = 0.0;  ///< (T_N(N))_k: the constant
  Bounds server;         ///< (T_S(N))_k bounds (Prop. 1 + eq. 9)
  double database = 0.0; ///< (T_D(N))_k, exact closed form
  /// Envelope for (T(N))_k: the lower edge is the max of the component
  /// quantiles (valid since T(N) dominates each component pointwise); the
  /// upper edge splits the tail mass across the two random components by a
  /// union bound, T_N + (T_S(N))_{1-(1-k)/2} + (T_D(N))_{1-(1-k)/2}.
  Bounds total;
};

class LatencyModel {
 public:
  explicit LatencyModel(const SystemConfig& cfg);

  /// Full Theorem-1 breakdown for the config's N.
  [[nodiscard]] LatencyEstimate estimate() const {
    return estimate(cfg_.keys_per_request);
  }

  /// Same for an arbitrary N.
  [[nodiscard]] LatencyEstimate estimate(std::uint64_t n_keys) const;

  /// kth-quantile breakdown (tail-latency extension).
  [[nodiscard]] TailEstimate tail(std::uint64_t n_keys, double k) const;

  /// E[T_S(N)] bounds only (the Fig. 5–10/12 series).
  [[nodiscard]] Bounds server_mean_bounds(std::uint64_t n_keys) const {
    return server_.expected_max_bounds(n_keys);
  }

  /// E[T_D(N)] only (the Fig. 11/13 series).
  [[nodiscard]] double db_mean(std::uint64_t n_keys) const {
    return db_.expected_max(n_keys);
  }

  [[nodiscard]] const ServerStage& server_stage() const noexcept {
    return server_;
  }
  [[nodiscard]] const DatabaseStage& db_stage() const noexcept { return db_; }
  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }

  /// True when every Memcached server queue is stable (ρ_j < 1 ∀j).
  [[nodiscard]] bool stable() const { return server_.stable(); }

 private:
  SystemConfig cfg_;
  ServerStage server_;
  DatabaseStage db_;
};

}  // namespace mclat::core
