// gixm1.h — the GI^X/M/1 queue model of one Memcached server (paper §4.3.1).
//
// Once δ is known (delta.h), the transformed GI/M/1 queue gives closed forms
// for a batch's queueing time T_Q and completion time T_C with tail rate
//
//     η = (1 - δ)(1 - q)·μ_S:
//
//     T_Q(t) = 1 - δ·e^{-ηt}                                   (eq. 4)
//     T_C(t) = 1 - e^{-ηt}                                     (eq. 5)
//
// and the per-key sojourn time T_S is sandwiched T_Q < T_S <= T_C (eq. 3),
// hence its kth quantile obeys eq. (9). This class evaluates all of those
// plus the means, and is the building block for the server stage of
// Theorem 1.
#pragma once

#include "core/delta.h"
#include "dist/distribution.h"

namespace mclat::core {

/// A [lower, upper] interval produced by the model's bounding arguments.
struct Bounds {
  double lower = 0.0;
  double upper = 0.0;

  [[nodiscard]] double midpoint() const noexcept {
    return 0.5 * (lower + upper);
  }
  [[nodiscard]] double width() const noexcept { return upper - lower; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower && x <= upper;
  }
};

class GixM1Queue {
 public:
  /// Takes ownership of a clone of the gap distribution. q ∈ [0,1),
  /// mu_s > 0. The δ-root is solved once at construction.
  GixM1Queue(const dist::ContinuousDistribution& gap, double q, double mu_s,
             const DeltaOptions& opt = {});

  [[nodiscard]] double delta() const noexcept { return delta_.delta; }
  [[nodiscard]] double utilization() const noexcept {
    return delta_.utilization;
  }
  [[nodiscard]] bool stable() const noexcept { return delta_.stable; }
  [[nodiscard]] double q() const noexcept { return q_; }
  [[nodiscard]] double mu_s() const noexcept { return mu_s_; }

  /// Exponential tail rate η = (1-δ)(1-q)μ_S.
  [[nodiscard]] double eta() const noexcept;

  /// CDF of a batch's queueing time (eq. 4).
  [[nodiscard]] double queueing_cdf(double t) const;

  /// CDF of a batch's completion time (eq. 5).
  [[nodiscard]] double completion_cdf(double t) const;

  /// kth quantile of the queueing time (eq. 7).
  [[nodiscard]] double queueing_quantile(double k) const;

  /// kth quantile of the completion time (eq. 8).
  [[nodiscard]] double completion_quantile(double k) const;

  /// Bounds on the kth quantile of the per-key sojourn time T_S (eq. 9).
  [[nodiscard]] Bounds sojourn_quantile_bounds(double k) const;

  /// Bounds on E[T_S]: E[T_Q] = δ/η  <  E[T_S]  <=  E[T_C] = 1/η.
  [[nodiscard]] Bounds mean_sojourn_bounds() const;

  /// Mean waiting (queueing) time of a batch, δ/η.
  [[nodiscard]] double mean_queueing() const;

  /// Mean completion time of a batch, 1/η.
  [[nodiscard]] double mean_completion() const;

  /// Distribution of the number of batches an arriving batch finds in the
  /// system: geometric, P{N = n} = (1-δ)δⁿ (classic GI/M/1 embedded-chain
  /// result — δ is precisely this geometric's parameter, which is what the
  /// simulated queue-length test pins down independently of any latency).
  [[nodiscard]] double queue_length_pmf(std::uint64_t n) const;

  /// Mean number of batches found at arrival: δ/(1-δ).
  [[nodiscard]] double mean_queue_length() const;

 private:
  double q_;
  double mu_s_;
  DeltaResult delta_;
};

}  // namespace mclat::core
