// mmc.h — the M/M/c queue in closed form (extension substrate).
//
// Motivated by the database-load extension (db_stage.h): the paper's
// eq. (19) silently assumes the backend absorbs the miss stream, and a
// single M/M/1 server cannot at the §5.1 parameters (ρ_D = 2.5). A sharded
// or pooled backend is an M/M/c system; this class provides its exact laws
// so provisioning questions ("how many database shards keep T_D near the
// no-queueing ideal?") have closed-form answers, validated against
// sim::MultiServerStation.
//
//   P{wait > 0}  = ErlangC(c, λ/μ)
//   W | W>0      ~ Exp(cμ - λ)          (waiting time of delayed jobs)
//   E[W]         = C/(cμ - λ)
//   P{T <= t}    by convolution of W with the Exp(μ) service time.
#pragma once

#include <cstdint>

namespace mclat::core {

class MmcQueue {
 public:
  /// c >= 1 servers, arrival rate lambda > 0, per-server service rate
  /// mu > 0; requires λ < cμ (stability).
  MmcQueue(unsigned c, double lambda, double mu);

  [[nodiscard]] unsigned servers() const noexcept { return c_; }
  [[nodiscard]] double lambda() const noexcept { return lambda_; }
  [[nodiscard]] double mu() const noexcept { return mu_; }

  /// ρ = λ/(cμ).
  [[nodiscard]] double utilization() const noexcept;

  /// Erlang-C: probability an arrival waits.
  [[nodiscard]] double p_wait() const noexcept { return erlang_c_; }

  /// E[W]: mean waiting time (including the non-waiters' zeros).
  [[nodiscard]] double mean_wait() const;

  /// E[T] = E[W] + 1/μ.
  [[nodiscard]] double mean_sojourn() const;

  /// P{W <= t} = 1 - C·e^{-(cμ-λ)t}.
  [[nodiscard]] double wait_cdf(double t) const;

  /// kth quantile of W (0 while the atom covers k).
  [[nodiscard]] double wait_quantile(double k) const;

  /// P{T <= t}: exact sojourn CDF (closed-form convolution).
  [[nodiscard]] double sojourn_cdf(double t) const;

 private:
  unsigned c_;
  double lambda_;
  double mu_;
  double erlang_c_;
  double theta_;  // cμ - λ: the conditional-wait rate
};

/// Smallest c with utilisation below `max_util` and mean sojourn within
/// `tolerance` (relative) of the no-queueing ideal 1/μ. The provisioning
/// question behind "the database is greatly offloaded".
[[nodiscard]] unsigned shards_for_offloaded_db(double lambda, double mu,
                                               double tolerance = 0.10,
                                               unsigned c_max = 1024);

}  // namespace mclat::core
