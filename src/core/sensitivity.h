// sensitivity.h — §5.3 quantified: how much does optimising each factor
// actually buy?
//
// The paper's closing recommendations rest on scaling laws extracted from
// Theorem 1:
//   * E[T_S(N)] = Θ(1/(1-q))  in the concurrency probability,
//   * E[T_S(N)] = Θ(log N)    in the keys-per-request,
//   * E[T_D(N)] = Θ(r) for small N but only Θ(log r) for large N (eq. 25),
//   * latency vs utilisation has a cliff at ρ_S(ξ) (cliff.h).
//
// WhatIfAnalyzer perturbs one factor of a SystemConfig at a time and
// reports the end-to-end improvement, reproducing the reasoning behind
// "minimise N rather than chase the tiny miss ratio".
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "core/theorem1.h"

namespace mclat::core {

/// Result of changing one factor.
struct FactorImpact {
  std::string factor;       ///< e.g. "concurrency q"
  std::string change;       ///< e.g. "0.10 -> 0.05"
  double baseline = 0.0;    ///< total latency estimate before (s)
  double optimized = 0.0;   ///< total latency estimate after (s)

  [[nodiscard]] double improvement() const noexcept {
    return baseline <= 0.0 ? 0.0 : 1.0 - optimized / baseline;
  }
};

/// Which asymptotic regime eq. (25) puts a (N, r) point in.
enum class DbRegime {
  kLinearInR,  ///< small N: E[T_D(N)] = Θ(r)
  kLogInR,     ///< large N: E[T_D(N)] = Θ(log r)
};

/// Classifies via the probability that a request misses at all: when
/// 1-(1-r)^N is small the stage is miss-dominated (linear), when it is
/// close to 1 the stage is count-dominated (logarithmic).
[[nodiscard]] DbRegime db_regime(std::uint64_t n_keys, double miss_ratio,
                                 double threshold = 0.5);

class WhatIfAnalyzer {
 public:
  explicit WhatIfAnalyzer(SystemConfig base);

  /// Halve the concurrency probability q.
  [[nodiscard]] FactorImpact halve_concurrency() const;
  /// Remove burstiness entirely (ξ → 0, i.e. Poisson batches).
  [[nodiscard]] FactorImpact remove_burst() const;
  /// Increase every server's service rate by `factor` (default 25 %).
  [[nodiscard]] FactorImpact speed_up_servers(double factor = 1.25) const;
  /// Perfectly balance the load (p_j → 1/M).
  [[nodiscard]] FactorImpact balance_load() const;
  /// Divide the miss ratio by `factor` (default 2).
  [[nodiscard]] FactorImpact reduce_miss_ratio(double factor = 2.0) const;
  /// Divide the keys-per-request by `factor` (default 2).
  [[nodiscard]] FactorImpact reduce_keys_per_request(double factor = 2.0) const;

  /// All six §5.3 levers, in the paper's discussion order.
  [[nodiscard]] std::vector<FactorImpact> all() const;

  /// The factor with the largest improvement.
  [[nodiscard]] FactorImpact best() const;

  [[nodiscard]] const SystemConfig& base() const noexcept { return base_; }
  [[nodiscard]] double baseline_latency() const noexcept { return baseline_; }

 private:
  [[nodiscard]] FactorImpact impact(std::string factor, std::string change,
                                    const SystemConfig& changed) const;

  SystemConfig base_;
  double baseline_;
};

}  // namespace mclat::core
