#include "core/server_stage.h"

#include <algorithm>
#include <cmath>

#include "math/numerics.h"

namespace mclat::core {

ServerStage::ServerStage(std::vector<GixM1Queue> servers,
                         std::vector<double> shares)
    : servers_(std::move(servers)), shares_(std::move(shares)) {
  math::require(!servers_.empty(), "ServerStage: need at least one server");
  math::require(servers_.size() == shares_.size(),
                "ServerStage: servers/shares size mismatch");
  double sum = 0.0;
  for (const double p : shares_) {
    math::require(p >= 0.0, "ServerStage: negative share");
    sum += p;
  }
  math::require(std::abs(sum - 1.0) < 1e-6,
                "ServerStage: shares must sum to 1");
  heaviest_ = static_cast<std::size_t>(
      std::max_element(shares_.begin(), shares_.end()) - shares_.begin());
}

ServerStage ServerStage::balanced(
    const dist::ContinuousDistribution& per_server_gap, double q, double mu_s,
    std::size_t servers) {
  math::require(servers >= 1, "ServerStage::balanced: need servers >= 1");
  std::vector<GixM1Queue> qs;
  qs.reserve(servers);
  for (std::size_t j = 0; j < servers; ++j) {
    qs.emplace_back(per_server_gap, q, mu_s);
  }
  return ServerStage(std::move(qs),
                     std::vector<double>(servers, 1.0 / static_cast<double>(
                                                      servers)));
}

const GixM1Queue& ServerStage::server(std::size_t j) const {
  math::require(j < servers_.size(), "ServerStage: server index out of range");
  return servers_[j];
}

bool ServerStage::stable() const {
  for (const auto& s : servers_) {
    if (!s.stable()) return false;
  }
  return true;
}

Bounds ServerStage::ts1_cdf_bounds(double t) const {
  // T_S(1)(t) = Π_j [T_Sj(t)]^{p_j}; each factor is sandwiched between the
  // completion CDF (stochastically larger latency ⇒ smaller CDF) and the
  // queueing CDF.
  double log_lo = 0.0;
  double log_hi = 0.0;
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    if (shares_[j] == 0.0) continue;
    const double lo = servers_[j].completion_cdf(t);
    const double hi = servers_[j].queueing_cdf(t);
    if (lo <= 0.0) return Bounds{0.0, std::pow(hi, shares_[j])};
    log_lo += shares_[j] * std::log(lo);
    log_hi += shares_[j] * std::log(hi);
  }
  return Bounds{std::exp(log_lo), std::exp(log_hi)};
}

Bounds ServerStage::ts1_quantile_bounds(double k) const {
  math::require(k >= 0.0 && k < 1.0, "ts1_quantile_bounds: k in [0,1)");
  // Proposition 1, generalised to heterogeneous servers. The paper's proof
  // works for ANY server j, not just the heaviest: part (i) gives
  // (T_S(1))_k >= (T_Sj)_{k^{1/p_j}} since Π_i [T_Si(t)]^{p_i} <=
  // [T_Sj(t)]^{p_j}; part (ii) gives (T_S(1))_k <= max_j (T_Sj)_k. Taking
  // the best bound over j tightens both sides; with identical servers this
  // reduces exactly to the paper's heaviest-server statement, and eq. (9)
  // sandwiches each per-server quantile.
  Bounds b;
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    if (shares_[j] <= 0.0) continue;
    const double k_inner = std::pow(k, 1.0 / shares_[j]);
    b.lower = std::max(b.lower, servers_[j].queueing_quantile(k_inner));
    b.upper = std::max(b.upper, servers_[j].completion_quantile(k));
  }
  return b;
}

Bounds ServerStage::max_cdf_bounds(std::uint64_t n_keys, double t) const {
  math::require(n_keys >= 1, "max_cdf_bounds: need N >= 1");
  const Bounds b1 = ts1_cdf_bounds(t);
  const double n = static_cast<double>(n_keys);
  return Bounds{std::pow(b1.lower, n), std::pow(b1.upper, n)};
}

Bounds ServerStage::max_quantile_bounds(std::uint64_t n_keys,
                                        double k) const {
  math::require(n_keys >= 1, "max_quantile_bounds: need N >= 1");
  math::require(k > 0.0 && k < 1.0, "max_quantile_bounds: k in (0,1)");
  // (T_S(N))_k = (T_S(1))_{k^{1/N}}; computed in log space for huge N.
  const double k_inner = std::exp(std::log(k) / static_cast<double>(n_keys));
  return ts1_quantile_bounds(k_inner);
}

Bounds ServerStage::expected_max_bounds(std::uint64_t n_keys) const {
  math::require(n_keys >= 1, "expected_max_bounds: need N >= 1");
  // E[T_S(N)] ≈ (T_S(1))_{N/(N+1)}  (eq. 12), bounded via Prop. 1 + eq. 9.
  const double k = static_cast<double>(n_keys) /
                   (static_cast<double>(n_keys) + 1.0);
  return ts1_quantile_bounds(k);
}

}  // namespace mclat::core
