#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "math/numerics.h"

namespace mclat::core {

namespace {

std::string fmt(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", x);
  return buf;
}

}  // namespace

DbRegime db_regime(std::uint64_t n_keys, double miss_ratio, double threshold) {
  const double p_any_miss =
      1.0 - std::exp(static_cast<double>(n_keys) *
                     math::log1p_safe(-miss_ratio));
  return p_any_miss < threshold ? DbRegime::kLinearInR : DbRegime::kLogInR;
}

WhatIfAnalyzer::WhatIfAnalyzer(SystemConfig base)
    : base_(std::move(base)),
      baseline_(LatencyModel(base_).estimate().total_estimate()) {}

FactorImpact WhatIfAnalyzer::impact(std::string factor, std::string change,
                                    const SystemConfig& changed) const {
  FactorImpact fi;
  fi.factor = std::move(factor);
  fi.change = std::move(change);
  fi.baseline = baseline_;
  fi.optimized = LatencyModel(changed).estimate().total_estimate();
  return fi;
}

FactorImpact WhatIfAnalyzer::halve_concurrency() const {
  SystemConfig c = base_;
  c.concurrency_q = base_.concurrency_q / 2.0;
  return impact("concurrency q",
                fmt(base_.concurrency_q) + " -> " + fmt(c.concurrency_q), c);
}

FactorImpact WhatIfAnalyzer::remove_burst() const {
  SystemConfig c = base_;
  c.burst_xi = 0.0;
  return impact("burst degree xi", fmt(base_.burst_xi) + " -> 0", c);
}

FactorImpact WhatIfAnalyzer::speed_up_servers(double factor) const {
  math::require(factor > 0.0, "speed_up_servers: factor must be > 0");
  SystemConfig c = base_;
  c.service_rate = base_.service_rate * factor;
  return impact("service rate muS",
                fmt(base_.service_rate) + " -> " + fmt(c.service_rate), c);
}

FactorImpact WhatIfAnalyzer::balance_load() const {
  SystemConfig c = base_;
  c.load_shares.clear();  // empty = balanced
  const auto p = base_.shares();
  const double p1 = *std::max_element(p.begin(), p.end());
  return impact("load balance p1",
                fmt(p1) + " -> " + fmt(1.0 / static_cast<double>(base_.servers)),
                c);
}

FactorImpact WhatIfAnalyzer::reduce_miss_ratio(double factor) const {
  math::require(factor >= 1.0, "reduce_miss_ratio: factor must be >= 1");
  SystemConfig c = base_;
  c.miss_ratio = base_.miss_ratio / factor;
  return impact("miss ratio r",
                fmt(base_.miss_ratio) + " -> " + fmt(c.miss_ratio), c);
}

FactorImpact WhatIfAnalyzer::reduce_keys_per_request(double factor) const {
  math::require(factor >= 1.0,
                "reduce_keys_per_request: factor must be >= 1");
  SystemConfig c = base_;
  c.keys_per_request = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::lround(static_cast<double>(base_.keys_per_request) / factor)));
  // Fewer keys per request at the same request rate also reduces the key
  // rate proportionally — that is the whole point of the recommendation.
  c.total_key_rate =
      base_.total_key_rate * static_cast<double>(c.keys_per_request) /
      static_cast<double>(base_.keys_per_request);
  return impact("keys per request N",
                fmt(base_.keys_per_request) + " -> " + fmt(c.keys_per_request),
                c);
}

std::vector<FactorImpact> WhatIfAnalyzer::all() const {
  return {halve_concurrency(), remove_burst(),    speed_up_servers(),
          balance_load(),      reduce_miss_ratio(), reduce_keys_per_request()};
}

FactorImpact WhatIfAnalyzer::best() const {
  const auto impacts = all();
  return *std::max_element(impacts.begin(), impacts.end(),
                           [](const FactorImpact& a, const FactorImpact& b) {
                             return a.improvement() < b.improvement();
                           });
}

}  // namespace mclat::core
