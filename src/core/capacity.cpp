#include "core/capacity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/theorem1.h"
#include "math/numerics.h"
#include "math/roots.h"

namespace mclat::core {

namespace {

double midpoint_latency(const SystemConfig& cfg) {
  const LatencyModel model(cfg);
  if (!model.stable()) return std::numeric_limits<double>::infinity();
  return model.estimate().total_estimate();
}

/// The zero-load floor: network + database stages do not relax with Λ → 0
/// (the DB stage depends on r and N only — unless db_queueing couples it).
double latency_floor(const SystemConfig& base) {
  SystemConfig idle = base;
  idle.total_key_rate = 1e-6 * base.service_rate;
  return midpoint_latency(idle);
}

}  // namespace

std::optional<double> max_rate_for_budget(const SystemConfig& base,
                                          double budget_seconds) {
  math::require(budget_seconds > 0.0,
                "max_rate_for_budget: budget must be > 0");
  if (latency_floor(base) > budget_seconds) return std::nullopt;
  // Stability ceiling: the heaviest server must stay below μ_S (and the DB
  // below μ_D when queueing is modelled).
  const auto shares = base.shares();
  double p1 = 0.0;
  for (const double p : shares) p1 = std::max(p1, p);
  double ceiling = base.service_rate / p1;
  if (base.db_queueing && base.miss_ratio > 0.0) {
    ceiling = std::min(ceiling, base.db_service_rate / base.miss_ratio);
  }
  const auto latency_at = [&](double rate) {
    SystemConfig cfg = base;
    cfg.total_key_rate = rate;
    return midpoint_latency(cfg) - budget_seconds;
  };
  const double hi = ceiling * (1.0 - 1e-6);
  if (latency_at(hi) <= 0.0) return hi;  // budget holds all the way up
  const auto r = math::brent(latency_at, 1e-6 * ceiling, hi,
                             {.x_tol = 1e-3, .f_tol = 1e-9});
  return r.x;
}

std::optional<double> service_rate_for_budget(const SystemConfig& base,
                                              double budget_seconds) {
  math::require(budget_seconds > 0.0,
                "service_rate_for_budget: budget must be > 0");
  // Even infinitely fast servers cannot beat the network + DB floor.
  SystemConfig fast = base;
  fast.service_rate = base.service_rate * 1e6;
  fast.service_rates.clear();
  if (midpoint_latency(fast) > budget_seconds) return std::nullopt;
  const auto shares = base.shares();
  double p1 = 0.0;
  for (const double p : shares) p1 = std::max(p1, p);
  const double lo = base.total_key_rate * p1 * (1.0 + 1e-6);  // stability
  const auto latency_at = [&](double mu) {
    SystemConfig cfg = base;
    cfg.service_rate = mu;
    cfg.service_rates.clear();
    return midpoint_latency(cfg) - budget_seconds;
  };
  double hi = lo * 2.0;
  while (latency_at(hi) > 0.0 && hi < lo * 1e7) hi *= 2.0;
  if (latency_at(lo) <= 0.0) return lo;
  const auto r = math::brent(latency_at, lo, hi,
                             {.x_tol = 1e-3, .f_tol = 1e-9});
  return r.x;
}

std::optional<std::size_t> servers_for_budget(const SystemConfig& base,
                                              double budget_seconds,
                                              std::size_t max_servers) {
  math::require(budget_seconds > 0.0,
                "servers_for_budget: budget must be > 0");
  // Latency is monotone decreasing in M (balanced): binary search the
  // smallest feasible count.
  const auto feasible = [&](std::size_t m) {
    SystemConfig cfg = base;
    cfg.servers = m;
    cfg.load_shares.clear();
    cfg.service_rates.clear();
    return midpoint_latency(cfg) <= budget_seconds;
  };
  if (!feasible(max_servers)) return std::nullopt;
  std::size_t lo = 1;
  std::size_t hi = max_servers;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace mclat::core
