#include "core/cliff.h"

#include <cmath>

#include "core/delta.h"
#include "math/numerics.h"
#include "math/roots.h"

namespace mclat::core {

CliffAnalyzer::CliffAnalyzer(const Options& opt)
    : opt_(opt), threshold_(1.0 / (1.0 - opt.poisson_cliff)) {
  math::require(opt.poisson_cliff > 0.0 && opt.poisson_cliff < 1.0,
                "CliffAnalyzer: poisson_cliff must be in (0,1)");
}

double CliffAnalyzer::delta_at(double xi, double rho) const {
  math::require(rho > 0.0 && rho < 1.0,
                "CliffAnalyzer: utilisation must be in (0,1)");
  // Normalise μ_S to 1: the key rate is then ρ, and Prop. 2 guarantees the
  // answer matches any other (λ, μ_S) pair at the same ρ.
  workload::ArrivalSpec spec;
  spec.key_rate = rho;
  spec.concurrency_q = opt_.concurrency_q;
  spec.burst_xi = xi;
  spec.pattern = opt_.pattern;
  // For non-GP families the burstiness knob is interpreted as the SCV
  // target instead of the GP shape (ablation A3 sweeps SCV).
  spec.pattern_scv = xi;
  const dist::DistributionPtr gap = spec.make_gap();
  return solve_delta(*gap, opt_.concurrency_q, 1.0).delta;
}

double CliffAnalyzer::normalized_latency(double xi, double rho) const {
  return 1.0 / (1.0 - delta_at(xi, rho));
}

double CliffAnalyzer::relative_slope(double xi, double rho) const {
  const double h = opt_.fd_step;
  const double lo = math::clamp(rho - h, 1e-6, 1.0 - 1e-9);
  const double hi = math::clamp(rho + h, 1e-6, 1.0 - 1e-9);
  const double f_lo = std::log(normalized_latency(xi, lo));
  const double f_hi = std::log(normalized_latency(xi, hi));
  return (f_hi - f_lo) / (hi - lo);
}

double CliffAnalyzer::cliff_utilization(double xi) const {
  // Closed form: δ(ρ*) = δ* ⇔ g(y*) = δ* for the unit-mean gap transform g,
  // then ρ* = (1-δ*)/y* (derivation in the header comment). g is strictly
  // decreasing from g(0)=1 to 0, so the root is unique.
  const double delta_star = opt_.poisson_cliff;
  workload::ArrivalSpec spec;
  spec.concurrency_q = opt_.concurrency_q;
  spec.key_rate = 1.0 / (1.0 - opt_.concurrency_q);  // unit mean batch gap
  spec.burst_xi = xi;
  spec.pattern = opt_.pattern;
  spec.pattern_scv = xi;  // non-GP families read the knob as SCV
  const dist::DistributionPtr gap = spec.make_gap();
  const auto g = [&](double y) { return gap->laplace(y) - delta_star; };
  double hi = 1.0;
  while (g(hi) > 0.0 && hi < 1e9) hi *= 2.0;
  const auto r = math::brent(g, 1e-12, hi, {.x_tol = 1e-10, .f_tol = 1e-12});
  return math::clamp((1.0 - delta_star) / r.x, 0.0, 1.0);
}

std::vector<std::pair<double, double>> CliffAnalyzer::table4() const {
  std::vector<std::pair<double, double>> rows;
  for (int i = 0; i <= 19; ++i) {
    const double xi = 0.05 * static_cast<double>(i);
    rows.emplace_back(xi, cliff_utilization(xi));
  }
  return rows;
}

}  // namespace mclat::core
