// redundancy.h — request replication analysed inside the paper's model
// (extension; the paper cites Vulimiri et al.'s "Low latency via
// redundancy" [12] and C3 [13] as latency optimisations but does not model
// them).
//
// With redundancy d, every key is sent to d servers and the fastest reply
// wins. Two opposing forces, both expressible in the GI^X/M/1 framework:
//
//   * the per-key latency becomes the MIN of d iid sojourns — its CDF is
//     1-(1-F(t))^d, so the kth quantile of the min is F's quantile at
//     u' = 1-(1-k)^{1/d} (a pure tail win);
//   * every server's offered key rate inflates to d·p_j·Λ — δ grows, and
//     past some utilisation the inflation costs more than the min saves.
//
// RedundancyModel builds the inflated queue and exposes the same bound
// machinery as ServerStage, so the d > 1 curves are directly comparable to
// Theorem 1's d = 1. The crossover utilisation — where redundancy stops
// helping — is the quantity bench_ext_redundancy sweeps.
//
// Database path: a missed key misses on every replica (replicas cache the
// same population), so the miss stage is unchanged: probability r, one
// back-end fetch.
#pragma once

#include <cstdint>
#include <optional>

#include "core/config.h"
#include "core/gixm1.h"

namespace mclat::core {

class RedundancyModel {
 public:
  /// `base` must be balanced (redundancy analysis assumes symmetric
  /// replicas); d >= 1 copies per key. d = 1 reproduces the plain model.
  RedundancyModel(const SystemConfig& base, unsigned d);

  [[nodiscard]] unsigned d() const noexcept { return d_; }

  /// Utilisation after inflation: d·λ/μ_S per server.
  [[nodiscard]] double utilization() const noexcept {
    return queue_.utilization();
  }
  [[nodiscard]] double delta() const noexcept { return queue_.delta(); }
  [[nodiscard]] bool stable() const noexcept { return queue_.stable(); }

  /// Bounds on the kth quantile of the per-key latency min_{i<=d} T_S,i.
  [[nodiscard]] Bounds per_key_quantile_bounds(double k) const;

  /// Bounds on E[T_S(N)]: the fork-join max over N keys, each the min of
  /// d replicated fetches (eq. 12's quantile approximation on the min law).
  [[nodiscard]] Bounds expected_max_bounds(std::uint64_t n_keys) const;

  /// The underlying (inflated) queue, for diagnostics.
  [[nodiscard]] const GixM1Queue& queue() const noexcept { return queue_; }

  /// Smallest d in [1, d_max] minimising the E[T_S(N)] upper bound, or
  /// nullopt if even d = 1 is unstable.
  [[nodiscard]] static std::optional<unsigned> best_redundancy(
      const SystemConfig& base, std::uint64_t n_keys, unsigned d_max = 4);

 private:
  unsigned d_;
  GixM1Queue queue_;
};

}  // namespace mclat::core
