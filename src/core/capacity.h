// capacity.h — the model, inverted (extension): instead of "what latency at
// this load?", answer the SRE's questions "how much load fits under this
// latency budget?" and "how much capacity does this load need?". All three
// solvers exploit the monotonicity of Theorem 1's estimate in the knob they
// turn and bracket the answer with Brent's method over LatencyModel.
#pragma once

#include <cstdint>
#include <optional>

#include "core/config.h"

namespace mclat::core {

/// Largest aggregate key rate Λ (keys/s) such that the Theorem-1 midpoint
/// estimate of E[T(N)] stays within `budget_seconds`. Returns nullopt when
/// even a vanishing load misses the budget (the network + database floor
/// exceeds it). The rest of `base` (servers, pattern, N, r, …) is held
/// fixed.
[[nodiscard]] std::optional<double> max_rate_for_budget(
    const SystemConfig& base, double budget_seconds);

/// Smallest per-server service rate μ_S meeting the budget at the base
/// config's load; nullopt when no finite μ_S can (floor exceeds budget).
[[nodiscard]] std::optional<double> service_rate_for_budget(
    const SystemConfig& base, double budget_seconds);

/// Smallest balanced server count meeting the budget at the base config's
/// aggregate rate; nullopt if `max_servers` is not enough.
[[nodiscard]] std::optional<std::size_t> servers_for_budget(
    const SystemConfig& base, double budget_seconds,
    std::size_t max_servers = 4096);

}  // namespace mclat::core
