// delta.h — the GI/M/1 root δ, the single number through which the arrival
// pattern enters every latency formula in the paper.
//
// After the batch-service transformation (a Geometric(q) sum of
// Exponential(μ_S) service times is Exponential((1-q)μ_S)), the GI^X/M/1
// queue at a Memcached server becomes a GI/M/1 queue whose waiting-time
// distribution is geometric-exponential with parameter δ — the unique root
// in (0,1) of
//
//     δ = L_TX((1 - δ)(1 - q)·μ_S)                    (paper Table 1 / eq. 6)
//
// where L_TX is the Laplace–Stieltjes transform of the inter-batch gap.
// (The paper's eq. (6) body omits the (1-q) factor; Table 1 carries it, and
// only the Table 1 form reproduces the validation numbers — see DESIGN.md
// and the ablation bench `bench_ablation_delta_eq`.)
//
// Existence: for utilisation ρ = λ/μ_S < 1 the map g(δ) = L_TX((1-δ)(1-q)μ_S)
// has g(0) > 0, g(1) = 1 and slope at 1 equal to 1/ρ > 1, so g crosses the
// diagonal exactly once in (0,1). The solver tries cheap fixed-point
// iteration first and falls back to Brent on the bracketed residual.
#pragma once

#include "dist/distribution.h"

namespace mclat::core {

struct DeltaResult {
  double delta = 1.0;      ///< root in (0,1); 1.0 when the queue is unstable
  double utilization = 0;  ///< ρ = key rate / μ_S
  bool stable = false;     ///< ρ < 1 and a root was found
  int iterations = 0;      ///< total solver iterations
};

struct DeltaOptions {
  double tol = 1e-12;
  int max_fixed_point = 200;
  /// Which root equation to use. `true` (default) = Table 1 form with the
  /// (1-q) batch-service correction; `false` = the paper body's eq. (6)
  /// without it, kept selectable for the A1 ablation.
  bool batch_corrected = true;
};

/// Solves for δ given the inter-batch gap distribution, the concurrency
/// probability q ∈ [0,1) and the per-key service rate mu_s > 0.
[[nodiscard]] DeltaResult solve_delta(const dist::ContinuousDistribution& gap,
                                      double q, double mu_s,
                                      const DeltaOptions& opt = {});

}  // namespace mclat::core
