// db_stage.h — the cache-miss / database stage of Theorem 1 (paper §4.4).
//
// Each of a request's N keys misses independently with probability r; the
// K ~ Binomial(N, r) missed keys are re-fetched from the backend database,
// whose per-key latency is Exponential(μ_D) (M/M/1 with utilisation ρ ≪ 1,
// eq. 19 — the paper explicitly drops the queueing term). The stage latency
// is the max over the K database fetches:
//
//   P{K = 0}        = (1-r)^N                                  (eq. 15)
//   E[K | K > 0]    = N·r / (1 - (1-r)^N)                      (eq. 18)
//   E[T_D(N)|K]     ≈ ln(K+1)/μ_D                              (eq. 21)
//   E[T_D(N)]       ≈ (1-(1-r)^N)/μ_D · ln(N·r/(1-(1-r)^N)+1)  (eq. 23)
//
// Besides eq. (23) we provide the exact-over-K binomial average of eq. (21)
// (`expected_max_exact_k`), which quantifies how much of the model error
// comes from collapsing K to its conditional mean (ablation A4).
#pragma once

#include <cstdint>

namespace mclat::core {

class DatabaseStage {
 public:
  /// r ∈ [0,1]: cache miss ratio; mu_d > 0: database service rate (1/s);
  /// rho_d ∈ [0,1): database utilisation. The paper's eq. (19) assumes
  /// ρ ≪ 1 and drops it; because the M/M/1 sojourn is *exactly*
  /// Exponential((1-ρ)μ_D), keeping ρ generalises every formula in this
  /// stage by the substitution μ_D → (1-ρ_D)μ_D (extension beyond the
  /// paper — see bench_ext_db_load).
  DatabaseStage(double miss_ratio, double mu_d, double rho_d = 0.0);

  /// The utilisation the miss stream itself imposes on the database:
  /// ρ_D = r·Λ/μ_D (Λ = aggregate key rate).
  [[nodiscard]] static double offered_utilization(double miss_ratio,
                                                  double total_key_rate,
                                                  double mu_d) {
    return miss_ratio * total_key_rate / mu_d;
  }

  [[nodiscard]] double miss_ratio() const noexcept { return r_; }
  [[nodiscard]] double mu_d() const noexcept { return mu_d_; }
  [[nodiscard]] double utilization() const noexcept { return rho_d_; }
  /// Effective sojourn rate (1-ρ_D)·μ_D used by every latency formula.
  [[nodiscard]] double effective_rate() const noexcept { return mu_eff_; }

  /// P{no key of an N-key request misses} = (1-r)^N (eq. 15).
  [[nodiscard]] double p_no_miss(std::uint64_t n_keys) const;

  /// E[K | K > 0] (eq. 18).
  [[nodiscard]] double expected_misses_given_any(std::uint64_t n_keys) const;

  /// Per-key database latency CDF, 1 - e^{-μ_D t} (eq. 19, ρ → 0).
  [[nodiscard]] double latency_cdf(double t) const;

  /// E[T_D(N)] by the paper's closed form (eq. 23).
  [[nodiscard]] double expected_max(std::uint64_t n_keys) const;

  /// E[T_D(N)] = Σ_k Binom(N,k;r)·ln(k+1)/μ_D — same max-approximation per
  /// K but exact binomial averaging over K. For N·r > ~50 the binomial is
  /// evaluated through its normal limit.
  [[nodiscard]] double expected_max_exact_k(std::uint64_t n_keys) const;

  /// The asymptotic regimes of eq. (25): Θ(r) for small N, Θ(log N·r) for
  /// large N — returned as the large-N limit ln(N·r + 1)/μ_D.
  [[nodiscard]] double large_n_limit(std::uint64_t n_keys) const;

  /// Exact CDF of T_D(N): P{max over K ~ Binom(N,r) fetches <= t}. By the
  /// binomial probability generating function this collapses to the closed
  /// form (1 - r·e^{-μ_D t})^N — no approximation at all. (An extension
  /// beyond the paper, which only derives the mean.)
  [[nodiscard]] double max_cdf(std::uint64_t n_keys, double t) const;

  /// Exact kth quantile of T_D(N), inverting max_cdf in closed form:
  /// t_k = -ln((1 - k^{1/N})/r)/μ_D clipped at 0. Returns 0 whenever
  /// P{K = 0} >= k (the no-miss atom absorbs the quantile).
  [[nodiscard]] double max_quantile(std::uint64_t n_keys, double k) const;

  /// The *exact* expectation, avoiding the paper's max-statistics shortcut:
  /// for K iid Exponential(μ_D) fetches, E[max] = H_K/μ_D (harmonic number),
  /// so E[T_D(N)] = Σ_k Binom(N,k;r)·H_k/μ_D. The gap between this and
  /// expected_max() is the approximation error eq. (21) introduces
  /// (≈ Euler–Mascheroni γ/μ_D for large K) — quantified by ablation A4 and
  /// the reason simulations consistently sit a bit above Theorem 1's T_D.
  [[nodiscard]] double expected_max_harmonic(std::uint64_t n_keys) const;

 private:
  double r_;
  double mu_d_;
  double rho_d_;
  double mu_eff_;  // (1-rho_d)*mu_d — the exact M/M/1 sojourn rate
};

}  // namespace mclat::core
