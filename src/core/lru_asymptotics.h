// lru_asymptotics.h — Che approximation for LRU miss ratios.
//
// Ji, Quan & Tan ("Asymptotic Miss Ratio of LRU Caching with Consistent
// Hashing", arXiv:1801.02436) prove that a cluster of LRU caches behind
// consistent hashing has, as the server count grows, the same asymptotic
// miss ratio as ONE LRU cache of the aggregate capacity — ring imbalance
// and key partitioning wash out. The single-cache miss ratio itself is the
// classical Che (characteristic-time) approximation:
//
//   T_C solves   Σ_i (1 − e^{−p_i T_C}) = C        (items cached)
//   miss ratio   m(C) = Σ_i p_i · e^{−p_i T_C}     (per-access misses)
//
// with p_i the access pmf and C the cache capacity in items. The churn
// model-validation tier (tests/cluster/test_churn_model.cpp) and
// bench_ext_ring_churn evaluate the *measured* post-rebalance steady-state
// miss ratio of ≥128 rebalanced servers against this prediction — the
// equal-aggregate-capacity equivalence is exactly what a membership event
// perturbs and what the steady state must return to.
#pragma once

#include <cmath>
#include <vector>

#include "math/numerics.h"

namespace mclat::core {

/// Expected items resident in an LRU cache with characteristic time `t`
/// under independent-reference accesses with pmf `pmf` (the left side of
/// Che's fixed point; monotonically increasing in `t`).
inline double che_expected_items(const std::vector<double>& pmf, double t) {
  double items = 0.0;
  for (const double p : pmf) items += -std::expm1(-p * t);
  return items;
}

/// Solves Che's fixed point Σ(1 − e^{−p_i T_C}) = c_items for the
/// characteristic time T_C by bisection. `c_items` must lie strictly
/// between 0 and the pmf's support size (a cache holding every key has no
/// finite T_C).
inline double lru_characteristic_time(const std::vector<double>& pmf,
                                      double c_items) {
  math::require(!pmf.empty(), "lru_characteristic_time: empty pmf");
  math::require(c_items > 0.0 &&
                    c_items < static_cast<double>(pmf.size()),
                "lru_characteristic_time: c_items must be in (0, #keys)");
  double lo = 0.0;
  double hi = 1.0;
  while (che_expected_items(pmf, hi) < c_items) {
    hi *= 2.0;
    math::require(std::isfinite(hi),
                  "lru_characteristic_time: bisection bracket diverged");
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (che_expected_items(pmf, mid) < c_items) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Che-approximate steady-state miss ratio of an LRU cache of `c_items`
/// items under iid accesses with pmf `pmf`: Σ p_i e^{−p_i T_C}. By the
/// Ji/Quan/Tan equivalence this is also the asymptotic miss ratio of a
/// consistent-hashing cluster whose per-server LRU capacities *sum* to
/// `c_items`.
inline double lru_miss_ratio_che(const std::vector<double>& pmf,
                                 double c_items) {
  const double t = lru_characteristic_time(pmf, c_items);
  double miss = 0.0;
  for (const double p : pmf) miss += p * std::exp(-p * t);
  return miss;
}

}  // namespace mclat::core
