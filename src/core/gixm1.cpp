#include "core/gixm1.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/numerics.h"

namespace mclat::core {

GixM1Queue::GixM1Queue(const dist::ContinuousDistribution& gap, double q,
                       double mu_s, const DeltaOptions& opt)
    : q_(q), mu_s_(mu_s), delta_(solve_delta(gap, q, mu_s, opt)) {}

double GixM1Queue::eta() const noexcept {
  return (1.0 - delta_.delta) * (1.0 - q_) * mu_s_;
}

double GixM1Queue::queueing_cdf(double t) const {
  if (t < 0.0) return 0.0;
  return 1.0 - delta_.delta * std::exp(-eta() * t);
}

double GixM1Queue::completion_cdf(double t) const {
  if (t < 0.0) return 0.0;
  return -math::expm1_safe(-eta() * t);
}

double GixM1Queue::queueing_quantile(double k) const {
  math::require(k >= 0.0 && k < 1.0, "queueing_quantile: k in [0,1)");
  if (!stable()) return std::numeric_limits<double>::infinity();
  // (T_Q)_k = max{ (ln δ - ln(1-k)) / η, 0 }   (eq. 7)
  const double v = (std::log(delta_.delta) - math::log1p_safe(-k)) / eta();
  return std::max(v, 0.0);
}

double GixM1Queue::completion_quantile(double k) const {
  math::require(k >= 0.0 && k < 1.0, "completion_quantile: k in [0,1)");
  if (!stable()) return std::numeric_limits<double>::infinity();
  // (T_C)_k = -ln(1-k) / η   (eq. 8)
  return -math::log1p_safe(-k) / eta();
}

Bounds GixM1Queue::sojourn_quantile_bounds(double k) const {
  return Bounds{queueing_quantile(k), completion_quantile(k)};
}

Bounds GixM1Queue::mean_sojourn_bounds() const {
  return Bounds{mean_queueing(), mean_completion()};
}

double GixM1Queue::mean_queueing() const {
  if (!stable()) return std::numeric_limits<double>::infinity();
  return delta_.delta / eta();
}

double GixM1Queue::mean_completion() const {
  if (!stable()) return std::numeric_limits<double>::infinity();
  return 1.0 / eta();
}

double GixM1Queue::queue_length_pmf(std::uint64_t n) const {
  const double d = delta_.delta;
  return (1.0 - d) * std::pow(d, static_cast<double>(n));
}

double GixM1Queue::mean_queue_length() const {
  if (!stable()) return std::numeric_limits<double>::infinity();
  return delta_.delta / (1.0 - delta_.delta);
}

}  // namespace mclat::core
