// cliff.h — Proposition 2 and Table 4: the latency cliff.
//
// The paper observes that E[T_S(N)] as a function of server utilisation ρ
// has a "cliff point" whose position depends only on the burst degree ξ
// (Proposition 2: δ — and hence the normalised latency curve — is invariant
// under joint scaling of arrival and service rates). Table 4 tabulates the
// cliff utilisation ρ_S(ξ) from 77 % at ξ=0 down to 9 % at ξ=0.95.
//
// The paper never states a formula for "the cliff", so we adopt an explicit
// operational definition (DESIGN.md §2): the cliff is where the *latency
// inflation factor*
//
//     W(ρ) = 1 / (1 - δ(ρ))        (mean completion time over its ρ→0 value)
//
// reaches a threshold W*. W* is calibrated once against Table 4's first
// row: for ξ = 0 (Poisson) δ = ρ exactly, so W = 1/(1-ρ) and ρ*(0) = 0.77
// forces W* = 1/0.23 ≈ 4.35. The same W* is then used for every ξ, i.e. the
// cliff is equivalently "where δ(ρ) reaches δ* = 0.77". Because δ depends on
// (ξ, ρ) only — Prop. 2's joint-scaling invariance — the cliff is scale-free
// by construction, and it admits a closed-form evaluation: with g the
// Laplace transform of the *unit-mean* gap distribution and y* the root of
// g(y*) = δ*,   ρ*(ξ) = (1 - δ*) / y*.
#pragma once

#include <utility>
#include <vector>

#include "workload/arrival_spec.h"

namespace mclat::core {

class CliffAnalyzer {
 public:
  struct Options {
    /// Arrival pattern family (burstiness knob: ξ for GP, SCV otherwise).
    workload::GapPattern pattern = workload::GapPattern::kGeneralizedPareto;
    /// Concurrency probability of the workload.
    double concurrency_q = 0.1;
    /// Table-4 anchor: cliff utilisation at ξ = 0.
    double poisson_cliff = 0.77;
    /// Finite-difference step for d ln W / dρ.
    double fd_step = 1e-3;
  };

  CliffAnalyzer() : CliffAnalyzer(Options{}) {}
  explicit CliffAnalyzer(const Options& opt);

  /// δ as a function of utilisation, for burst degree ξ (service rate is
  /// normalised to 1; Proposition 2 makes the answer scale-free).
  [[nodiscard]] double delta_at(double xi, double rho) const;

  /// Normalised mean latency W(ρ) = 1/(1-δ(ρ)) in units of the mean batch
  /// service time.
  [[nodiscard]] double normalized_latency(double xi, double rho) const;

  /// Relative slope d ln W / dρ (central finite difference) — exposed for
  /// curve diagnostics; the cliff itself uses the W* threshold.
  [[nodiscard]] double relative_slope(double xi, double rho) const;

  /// The calibrated inflation threshold W* = 1/(1 - poisson_cliff).
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  /// Cliff utilisation ρ*(ξ): the ρ where W(ρ) reaches W*, i.e. where
  /// δ(ρ) = poisson_cliff. Evaluated via the closed form above.
  [[nodiscard]] double cliff_utilization(double xi) const;

  /// Regenerates Table 4: (ξ, ρ_S(ξ)) for ξ = 0, 0.05, …, 0.95.
  [[nodiscard]] std::vector<std::pair<double, double>> table4() const;

 private:
  Options opt_;
  double threshold_;
};

}  // namespace mclat::core
