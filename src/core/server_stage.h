// server_stage.h — the Memcached-server stage of Theorem 1 (paper §4.3.2).
//
// M servers, server j receiving share p_j of the aggregate key stream. For
// an end-user request of N keys,
//
//     T_S(N) = max over the N keys' per-key sojourn times,
//     E[T_S(N)] ≈ (T_S(1))_{N/(N+1)}                       (eq. 12)
//
// where T_S(1) has CDF Π_j [T_Sj(t)]^{p_j} (eq. 11). Proposition 1 bounds
// the mixed quantile by the heaviest server's:
//
//     (T_S1)_{k^{1/p1}} ≤ (T_S(1))_k ≤ (T_S1)_k,           (eq. 13)
//
// and combining with the per-server quantile bounds (eq. 9) yields the
// E[T_S(N)] interval of eq. (14). We implement the exact eq.-14 form
//
//     lower = max{ (ln δ1 - ln(1 - (N/(N+1))^{1/p1})) / η1, 0 }
//     upper = ln(N+1) / η1
//
// (the Theorem-1 display's "(1/p1)·ln(N+1)" is the large-N expansion of the
// same expression; see DESIGN.md). For balanced load p1 = 1/M.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/gixm1.h"
#include "dist/distribution.h"

namespace mclat::core {

class ServerStage {
 public:
  /// Heterogeneous construction: `gap_for_share(p_j)` must yield the
  /// inter-batch gap distribution of server j given its key share. The
  /// common case is handled by the named constructors below.
  ServerStage(std::vector<GixM1Queue> servers, std::vector<double> shares);

  /// M identical servers splitting `total_key_rate` evenly. The gap
  /// distribution is the per-server pattern at rate total/M.
  [[nodiscard]] static ServerStage balanced(
      const dist::ContinuousDistribution& per_server_gap, double q,
      double mu_s, std::size_t servers);

  /// Number of servers M.
  [[nodiscard]] std::size_t size() const noexcept { return servers_.size(); }

  /// Load shares {p_j}.
  [[nodiscard]] const std::vector<double>& shares() const noexcept {
    return shares_;
  }

  /// Index and share of the heaviest-loaded server (the paper's S1/p1).
  [[nodiscard]] std::size_t heaviest() const noexcept { return heaviest_; }
  [[nodiscard]] double p1() const noexcept { return shares_[heaviest_]; }

  [[nodiscard]] const GixM1Queue& server(std::size_t j) const;

  /// True when every server is stable.
  [[nodiscard]] bool stable() const;

  /// Bounds on the CDF of T_S(1) at t (eq. 11 with each T_Sj sandwiched by
  /// eqs. 4–5): lower uses completion CDFs, upper uses queueing CDFs.
  [[nodiscard]] Bounds ts1_cdf_bounds(double t) const;

  /// Bounds on the kth quantile of T_S(1) via Proposition 1 + eq. 9.
  [[nodiscard]] Bounds ts1_quantile_bounds(double k) const;

  /// Bounds on E[T_S(N)] (eq. 14). N >= 1.
  [[nodiscard]] Bounds expected_max_bounds(std::uint64_t n_keys) const;

  /// Point estimate used when a single "Theorem 1" number is wanted:
  /// the midpoint of expected_max_bounds (documented in EXPERIMENTS.md).
  [[nodiscard]] double expected_max_estimate(std::uint64_t n_keys) const {
    return expected_max_bounds(n_keys).midpoint();
  }

  /// Bounds on the CDF of T_S(N) at t: [T_S(1)(t)]^N with the eq.-11 CDF
  /// sandwich. (Tail-latency extension: the paper derives only E[T_S(N)].)
  [[nodiscard]] Bounds max_cdf_bounds(std::uint64_t n_keys, double t) const;

  /// Bounds on the kth quantile of T_S(N): since T_S(N) has CDF
  /// [T_S(1)]^N, its kth quantile is T_S(1)'s k^{1/N} quantile — so p99 of
  /// a 150-key request is the per-key 0.99^{1/150} ≈ 0.99993 quantile,
  /// which is why request tails are so much worse than key tails.
  [[nodiscard]] Bounds max_quantile_bounds(std::uint64_t n_keys,
                                           double k) const;

 private:
  std::vector<GixM1Queue> servers_;
  std::vector<double> shares_;
  std::size_t heaviest_ = 0;
};

}  // namespace mclat::core
