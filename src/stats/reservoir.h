// reservoir.h — Vitter's algorithm R: a uniform sample of a stream with
// fixed memory. Lets a long simulation keep an unbiased subsample of
// per-key latencies for ECDF plots (Fig. 4) without storing every value.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/rng.h"

namespace mclat::stats {

class Reservoir {
 public:
  /// capacity > 0: maximum retained sample size.
  explicit Reservoir(std::size_t capacity);

  void add(double x, mclat::dist::Rng& rng);

  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] const std::vector<double>& sample() const noexcept {
    return sample_;
  }

  /// Moves the retained sample out (reservoir becomes empty).
  [[nodiscard]] std::vector<double> take() {
    seen_ = 0;
    return std::move(sample_);
  }

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<double> sample_;
};

}  // namespace mclat::stats
