#include "stats/histogram.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  math::require(hi > lo, "LinearHistogram: hi must exceed lo");
  math::require(buckets >= 1, "LinearHistogram: need at least one bucket");
}

void LinearHistogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  if (x >= hi_) {
    ++over_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double LinearHistogram::bucket_lower(std::size_t i) const {
  math::require(i < counts_.size(), "LinearHistogram: bucket out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double LinearHistogram::bucket_upper(std::size_t i) const {
  return bucket_lower(i) + width_;
}

double LinearHistogram::quantile(double p) const {
  math::require(p >= 0.0 && p <= 1.0, "LinearHistogram::quantile: p in [0,1]");
  math::require(total_ > 0, "LinearHistogram::quantile: empty histogram");
  const double target = p * static_cast<double>(total_);
  double cum = static_cast<double>(under_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lower(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

LogHistogram::LogHistogram(double min_value, double max_value,
                           double precision)
    : min_(min_value), log_min_(std::log(min_value)),
      log_growth_(std::log1p(precision)) {
  math::require(min_value > 0.0, "LogHistogram: min_value must be > 0");
  math::require(max_value > min_value, "LogHistogram: max must exceed min");
  math::require(precision > 0.0 && precision < 1.0,
                "LogHistogram: precision in (0,1)");
  const auto n = static_cast<std::size_t>(
      std::ceil((std::log(max_value) - log_min_) / log_growth_)) + 2;
  counts_.assign(n, 0);
}

std::size_t LogHistogram::index_of(double x) const noexcept {
  const double idx = (std::log(x) - log_min_) / log_growth_;
  if (idx < 0.0) return 0;
  auto i = static_cast<std::size_t>(idx);
  return i >= counts_.size() ? counts_.size() - 1 : i;
}

void LogHistogram::add(double x) noexcept {
  ++total_;
  if (x < min_) {
    ++under_;
    return;
  }
  ++counts_[index_of(x)];
}

double LogHistogram::quantile(double p) const {
  math::require(p >= 0.0 && p <= 1.0, "LogHistogram::quantile: p in [0,1]");
  math::require(total_ > 0, "LogHistogram::quantile: empty histogram");
  const double target = p * static_cast<double>(total_);
  double cum = static_cast<double>(under_);
  if (target <= cum) return min_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      const double lo = log_min_ + log_growth_ * static_cast<double>(i);
      return std::exp(lo + frac * log_growth_);
    }
    cum = next;
  }
  return std::exp(log_min_ +
                  log_growth_ * static_cast<double>(counts_.size()));
}

double LogHistogram::mean_estimate() const {
  math::require(total_ > 0, "LogHistogram::mean_estimate: empty histogram");
  double acc = static_cast<double>(under_) * min_ * 0.5;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo = log_min_ + log_growth_ * static_cast<double>(i);
    const double mid = std::exp(lo + 0.5 * log_growth_);
    acc += static_cast<double>(counts_[i]) * mid;
  }
  return acc / static_cast<double>(total_);
}

}  // namespace mclat::stats
