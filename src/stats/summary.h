// summary.h — measurement summaries for experiment reporting.
//
// Wraps a Welford accumulator plus optional quantile trackers into the
// object every bench harness prints: mean, CI half-width, selected
// quantiles. Also provides batch-means confidence intervals, the standard
// way to get honest CIs from *correlated* steady-state simulation output
// (successive waiting times in a queue are strongly autocorrelated, so the
// naive iid CI would be far too narrow).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/welford.h"

namespace mclat::stats {

/// Mean with a symmetric confidence interval.
struct MeanCI {
  double mean = 0.0;
  double halfwidth = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double lower() const noexcept { return mean - halfwidth; }
  [[nodiscard]] double upper() const noexcept { return mean + halfwidth; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower() && x <= upper();
  }
};

/// iid-assumption CI from a Welford accumulator (Student-t critical value).
[[nodiscard]] MeanCI mean_ci(const Welford& w, double confidence = 0.95);

/// Merges per-replication accumulators into one (Chan et al. pairwise
/// combination, applied left-to-right). The merge is performed strictly in
/// vector order, so callers that fill `parts` by trial index get the same
/// result regardless of which thread produced each part.
[[nodiscard]] Welford merge_welford(const std::vector<Welford>& parts);

/// iid CI over the pooled samples of all replications: merge in order,
/// then mean_ci. The thread-count-invariant way to summarize a parallel
/// trial run.
[[nodiscard]] MeanCI pooled_mean_ci(const std::vector<Welford>& parts,
                                    double confidence = 0.95);

/// Batch-means CI: splits an ordered series into `batches` contiguous
/// batches, treats batch averages as approximately iid, and builds a
/// Student-t interval over them. The series length must be >= 2 * batches.
[[nodiscard]] MeanCI batch_means_ci(const std::vector<double>& series,
                                    std::size_t batches = 30,
                                    double confidence = 0.95);

/// Formats a MeanCI like the paper's Table 3: "368µs [362µs, 373µs]".
[[nodiscard]] std::string format_us(const MeanCI& ci);

/// Formats seconds as a human-readable µs/ms string.
[[nodiscard]] std::string format_time_us(double seconds);

}  // namespace mclat::stats
