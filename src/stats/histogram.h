// histogram.h — fixed-width and logarithmic histograms.
//
// The log histogram covers latencies spanning µs to tens of ms (the database
// stage is ~50× slower than the cache stage) with bounded relative error per
// bucket; quantiles are answered by interpolating within the bucket.
#pragma once

#include <cstdint>
#include <vector>

namespace mclat::stats {

/// Fixed-width histogram over [lo, hi) with under/overflow buckets.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return over_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }
  [[nodiscard]] double bucket_lower(std::size_t i) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;

  /// Quantile by linear interpolation inside the containing bucket.
  [[nodiscard]] double quantile(double p) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
  std::uint64_t total_ = 0;
};

/// Log-spaced histogram: bucket i covers [min·g^i, min·g^{i+1}). The growth
/// factor g is derived from the requested per-bucket relative precision.
class LogHistogram {
 public:
  /// Tracks values in [min_value, max_value] with `precision` relative
  /// bucket width (e.g. 0.01 → 1 % buckets).
  LogHistogram(double min_value, double max_value, double precision = 0.01);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean_estimate() const;
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }

 private:
  [[nodiscard]] std::size_t index_of(double x) const noexcept;

  double min_;
  double log_min_;
  double log_growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mclat::stats
