// autocorrelation.h — serial-correlation diagnostics for steady-state
// simulation output.
//
// Successive waiting times in a queue are strongly autocorrelated, so a
// naive iid confidence interval is too narrow by a factor of roughly
// sqrt(1 + 2Σρ_k). These helpers quantify that: lag-k autocorrelation, the
// integrated autocorrelation time τ (with the standard adaptive window
// cutoff), and the effective sample size n/τ. batch_means_ci remains the
// recommended interval; these functions justify the batch count and let
// tests assert that the simulator produces the correlation structure
// queueing theory predicts (e.g. M/M/1 waiting-time autocorrelation decays
// slower at higher utilisation).
#pragma once

#include <cstddef>
#include <vector>

namespace mclat::stats {

/// Sample autocorrelation ρ_k of a series at lag k (0 <= k < n).
/// ρ_0 = 1 by construction; a constant series returns 0 for k > 0.
[[nodiscard]] double autocorrelation(const std::vector<double>& series,
                                     std::size_t lag);

/// Integrated autocorrelation time τ = 1 + 2 Σ_{k>=1} ρ_k, with the sum
/// truncated by Sokal's adaptive window (stop at the first k > c·τ_k,
/// default c = 5) to keep the estimator's variance bounded. τ = 1 for iid
/// data; τ ≈ (1+ρ)/(1-ρ) for an AR(1) with coefficient ρ.
[[nodiscard]] double integrated_autocorrelation_time(
    const std::vector<double>& series, double window_factor = 5.0);

/// Effective sample size n/τ: how many iid samples the series is worth
/// when estimating its mean.
[[nodiscard]] double effective_sample_size(const std::vector<double>& series);

}  // namespace mclat::stats
