// p2_quantile.h — the P² (Jain & Chlamtac 1985) streaming quantile
// estimator: tracks one quantile with five markers and O(1) memory/update.
//
// Used for long simulations where retaining every latency sample (Fig. 12
// sweeps into 10⁴ keys/request × 10⁵ requests) would be wasteful. For exact
// quantiles on bounded samples use dist::Empirical instead.
#pragma once

#include <array>
#include <cstdint>

namespace mclat::stats {

class P2Quantile {
 public:
  /// p ∈ (0, 1): the quantile to track (e.g. 0.99).
  explicit P2Quantile(double p);

  void add(double x);

  /// Current estimate; exact until 5 samples have arrived.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double p() const noexcept { return p_; }

 private:
  void parabolic_or_linear(int i, double d);

  double p_;
  std::uint64_t n_ = 0;
  std::array<double, 5> q_{};   // marker heights
  std::array<double, 5> np_{};  // desired marker positions
  std::array<double, 5> pos_{}; // actual marker positions (1-based)
  std::array<double, 5> dn_{};  // desired position increments
};

}  // namespace mclat::stats
