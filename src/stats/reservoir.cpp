#include "stats/reservoir.h"

#include "math/numerics.h"

namespace mclat::stats {

Reservoir::Reservoir(std::size_t capacity) : capacity_(capacity) {
  math::require(capacity > 0, "Reservoir: capacity must be > 0");
  sample_.reserve(capacity);
}

void Reservoir::add(double x, mclat::dist::Rng& rng) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  const std::uint64_t j = rng.uniform_index(seen_);
  if (j < capacity_) sample_[static_cast<std::size_t>(j)] = x;
}

}  // namespace mclat::stats
