#include "stats/summary.h"

#include <cmath>
#include <cstdio>

#include "math/numerics.h"
#include "math/special.h"

namespace mclat::stats {

MeanCI mean_ci(const Welford& w, double confidence) {
  MeanCI ci;
  ci.mean = w.mean();
  ci.count = w.count();
  if (w.count() >= 2) {
    const double n = static_cast<double>(w.count());
    const double t = math::student_t_critical(n - 1.0, confidence);
    ci.halfwidth = t * std::sqrt(w.variance() / n);
  }
  return ci;
}

Welford merge_welford(const std::vector<Welford>& parts) {
  Welford all;
  for (const Welford& w : parts) all.merge(w);
  return all;
}

MeanCI pooled_mean_ci(const std::vector<Welford>& parts, double confidence) {
  return mean_ci(merge_welford(parts), confidence);
}

MeanCI batch_means_ci(const std::vector<double>& series, std::size_t batches,
                      double confidence) {
  math::require(batches >= 2, "batch_means_ci: need at least 2 batches");
  math::require(series.size() >= 2 * batches,
                "batch_means_ci: series too short for the batch count");
  const std::size_t per = series.size() / batches;
  Welford of_batches;
  std::size_t idx = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < per; ++i) acc += series[idx++];
    of_batches.add(acc / static_cast<double>(per));
  }
  MeanCI ci = mean_ci(of_batches, confidence);
  ci.count = series.size();
  return ci;
}

std::string format_time_us(double seconds) {
  char buf[64];
  const double us = seconds * 1e6;
  if (us >= 10000.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", us / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fus", us);
  }
  return buf;
}

std::string format_us(const MeanCI& ci) {
  return format_time_us(ci.mean) + " [" + format_time_us(ci.lower()) + ", " +
         format_time_us(ci.upper()) + "]";
}

}  // namespace mclat::stats
