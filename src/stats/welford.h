// welford.h — numerically stable streaming mean/variance.
//
// Every latency recorder in the simulator pushes one observation per key or
// request; Welford's update keeps the running mean and M2 without
// catastrophic cancellation regardless of sample count.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace mclat::stats {

class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (parallel streams, batch merging).
  void merge(const Welford& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double d = o.mean_ - mean_;
    const double n1 = static_cast<double>(n_);
    const double n2 = static_cast<double>(o.n_);
    const double nt = n1 + n2;
    mean_ += d * n2 / nt;
    m2_ += o.m2_ + d * d * n1 * n2 / nt;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance (0 for fewer than 2 observations).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  void reset() noexcept { *this = Welford{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mclat::stats
