#include "stats/autocorrelation.h"

#include <cmath>

#include "math/numerics.h"

namespace mclat::stats {

namespace {

struct Centered {
  std::vector<double> x;  // series minus its mean
  double variance = 0.0;  // biased (divide by n), the convention for ACF
};

Centered center(const std::vector<double>& series) {
  Centered c;
  const std::size_t n = series.size();
  double mean = 0.0;
  for (const double v : series) mean += v;
  mean /= static_cast<double>(n);
  c.x.reserve(n);
  for (const double v : series) c.x.push_back(v - mean);
  for (const double v : c.x) c.variance += v * v;
  c.variance /= static_cast<double>(n);
  return c;
}

double acf_at(const Centered& c, std::size_t lag) {
  if (c.variance <= 0.0) return lag == 0 ? 1.0 : 0.0;
  const std::size_t n = c.x.size();
  double acc = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) acc += c.x[i] * c.x[i + lag];
  return acc / (static_cast<double>(n) * c.variance);
}

}  // namespace

double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  math::require(series.size() >= 2, "autocorrelation: need >= 2 samples");
  math::require(lag < series.size(), "autocorrelation: lag out of range");
  if (lag == 0) return 1.0;
  return acf_at(center(series), lag);
}

double integrated_autocorrelation_time(const std::vector<double>& series,
                                       double window_factor) {
  math::require(series.size() >= 4,
                "integrated_autocorrelation_time: need >= 4 samples");
  math::require(window_factor > 0.0,
                "integrated_autocorrelation_time: window_factor > 0");
  const Centered c = center(series);
  double tau = 1.0;
  const std::size_t max_lag = series.size() / 2;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    tau += 2.0 * acf_at(c, k);
    // Sokal's window: once the window k exceeds c·τ(k), the remaining tail
    // is noise; stop. Also floor τ at 1 (anti-correlated series are at
    // least as informative as iid for the mean).
    if (static_cast<double>(k) >= window_factor * tau) break;
  }
  return std::max(tau, 1.0);
}

double effective_sample_size(const std::vector<double>& series) {
  return static_cast<double>(series.size()) /
         integrated_autocorrelation_time(series);
}

}  // namespace mclat::stats
