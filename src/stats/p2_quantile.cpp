#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "math/numerics.h"

namespace mclat::stats {

P2Quantile::P2Quantile(double p) : p_(p) {
  math::require(p > 0.0 && p < 1.0, "P2Quantile: p must be in (0,1)");
  dn_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    q_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
      np_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
    }
    return;
  }
  ++n_;
  // Locate the cell containing x and bump extreme markers.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x < q_[1]) {
    k = 0;
  } else if (x < q_[2]) {
    k = 1;
  } else if (x < q_[3]) {
    k = 2;
  } else if (x <= q_[4]) {
    k = 3;
  } else {
    q_[4] = x;
    k = 3;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];
  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      parabolic_or_linear(i, d >= 1.0 ? 1.0 : -1.0);
    }
  }
}

void P2Quantile::parabolic_or_linear(int i, double d) {
  const double qp = q_[i + 1];
  const double qm = q_[i - 1];
  const double pp = pos_[i + 1];
  const double pm = pos_[i - 1];
  const double pi = pos_[i];
  // Piecewise-parabolic prediction (the namesake P²).
  const double candidate =
      q_[i] + d / (pp - pm) *
                  ((pi - pm + d) * (qp - q_[i]) / (pp - pi) +
                   (pp - pi - d) * (q_[i] - qm) / (pi - pm));
  if (qm < candidate && candidate < qp) {
    q_[i] = candidate;
  } else {
    // Linear fallback keeps markers monotone.
    const int j = d > 0 ? i + 1 : i - 1;
    q_[i] += d * (q_[j] - q_[i]) / (pos_[j] - pi);
  }
  pos_[i] += d;
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact small-sample quantile.
    std::array<double, 5> tmp = q_;
    std::sort(tmp.begin(), tmp.begin() + static_cast<long>(n_));
    const double h = p_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(h);
    const auto hi = std::min<std::size_t>(lo + 1, n_ - 1);
    return math::lerp(tmp[lo], tmp[hi], h - static_cast<double>(lo));
  }
  return q_[2];
}

}  // namespace mclat::stats
