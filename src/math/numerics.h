// numerics.h — small numeric helpers shared across mclat.
//
// Everything here is header-only, constexpr where possible, and kept
// deliberately tiny: tolerance-aware comparisons, safe log/exp helpers and
// the few mathematical constants the model derivations need.
#pragma once

#include <cmath>
#include <concepts>
#include <limits>
#include <stdexcept>
#include <string>

namespace mclat::math {

/// Default absolute/relative tolerance used by iterative algorithms when the
/// caller does not specify one.
inline constexpr double kDefaultTol = 1e-10;

/// Smallest utilisation / probability gap treated as "strictly inside (0,1)".
inline constexpr double kProbEps = 1e-12;

/// Returns true when |a - b| <= atol + rtol * max(|a|, |b|).
[[nodiscard]] constexpr bool almost_equal(double a, double b,
                                          double rtol = 1e-9,
                                          double atol = 1e-12) noexcept {
  const double diff = a > b ? a - b : b - a;
  const double aa = a < 0 ? -a : a;
  const double ab = b < 0 ? -b : b;
  const double scale = aa > ab ? aa : ab;
  return diff <= atol + rtol * scale;
}

/// Clamps x into [lo, hi].
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// log(1 + x) that stays accurate for tiny |x| (thin wrapper so call sites
/// read mathematically).
[[nodiscard]] inline double log1p_safe(double x) { return std::log1p(x); }

/// exp(x) - 1 accurate for tiny |x|.
[[nodiscard]] inline double expm1_safe(double x) { return std::expm1(x); }

/// (1 + x)^p computed in log space; requires 1 + x > 0.
[[nodiscard]] inline double pow1p(double x, double p) {
  return std::exp(p * std::log1p(x));
}

/// True when x is a finite, representable double.
[[nodiscard]] inline bool is_finite(double x) noexcept {
  return std::isfinite(x);
}

/// Throws std::invalid_argument with `what` unless `cond` holds. Used to
/// enforce constructor preconditions (I.5 / E.25: establish invariants at the
/// boundary rather than littering checks through the code).
inline void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument(what);
}

/// Linear interpolation between a and b with weight t in [0,1].
[[nodiscard]] constexpr double lerp(double a, double b, double t) noexcept {
  return a + t * (b - a);
}

/// Square helper, avoids std::pow for the hot paths.
[[nodiscard]] constexpr double sq(double x) noexcept { return x * x; }

}  // namespace mclat::math
