// roots.h — scalar root finding and fixed-point iteration.
//
// The latency model needs exactly one nontrivial root: the GI/M/1 constant
// δ ∈ (0,1) solving δ = L_TX((1-δ)(1-q)μ_S). We expose general-purpose
// bisection, Brent's method and damped fixed-point iteration so the solver
// can (a) iterate the contraction mapping when it converges and (b) fall
// back to a bracketing method near the critical load where the mapping's
// slope approaches 1.
#pragma once

#include <functional>
#include <optional>

namespace mclat::math {

/// Result of an iterative root search.
struct RootResult {
  double x = 0.0;          ///< final abscissa
  double fx = 0.0;         ///< residual f(x) at the final abscissa
  int iterations = 0;      ///< iterations consumed
  bool converged = false;  ///< true when the tolerance was met
};

/// Options shared by the root finders.
struct RootOptions {
  double x_tol = 1e-13;   ///< abscissa tolerance
  double f_tol = 1e-13;   ///< residual tolerance
  int max_iter = 200;     ///< iteration cap
};

/// Plain bisection on [a, b]; requires f(a) and f(b) of opposite sign.
/// Robust, linear convergence. Throws std::invalid_argument if the bracket
/// is invalid.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double a, double b,
                                const RootOptions& opt = {});

/// Brent's method on [a, b]: inverse-quadratic/secant steps guarded by
/// bisection. Superlinear for smooth f, never worse than bisection.
/// Requires f(a)·f(b) <= 0.
[[nodiscard]] RootResult brent(const std::function<double(double)>& f,
                               double a, double b,
                               const RootOptions& opt = {});

/// Damped fixed-point iteration x ← (1-ω)x + ω g(x). Converges when the
/// damped map is a contraction; returns converged=false otherwise so callers
/// can fall back to a bracketing method.
[[nodiscard]] RootResult fixed_point(const std::function<double(double)>& g,
                                     double x0, double damping = 1.0,
                                     const RootOptions& opt = {});

/// Scans [a, b] in `steps` uniform increments and returns the first
/// sub-interval where f changes sign (useful for bracketing before brent()).
[[nodiscard]] std::optional<std::pair<double, double>> bracket_sign_change(
    const std::function<double(double)>& f, double a, double b, int steps);

}  // namespace mclat::math
