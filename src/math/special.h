// special.h — special functions: Gaussian CDF/quantile and the regularized
// incomplete gamma function. Used by the LogNormal / Erlang distributions and
// by confidence-interval computation in mclat::stats.
#pragma once

namespace mclat::math {

/// Standard normal CDF Φ(x).
[[nodiscard]] double normal_cdf(double x);

/// Standard normal quantile Φ⁻¹(p) for p ∈ (0,1).
/// Implemented with Wichura's AS 241 rational approximations (double
/// precision variant, |relative error| < 1e-15 over the full domain).
/// Throws std::invalid_argument outside (0,1).
[[nodiscard]] double normal_quantile(double p);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0.
/// Series expansion for x < a+1, continued fraction otherwise (Numerical
/// Recipes `gammp`). Accurate to ~1e-14.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Student-t two-sided critical value t_{df, 1-alpha/2}. Uses a
/// Cornish–Fisher style expansion around the normal quantile; exact enough
/// (<0.5 % error for df >= 3) for reporting confidence intervals.
[[nodiscard]] double student_t_critical(double df, double confidence);

/// Erlang-C: the probability an M/M/c arrival must wait, with offered load
/// a = λ/μ Erlangs over c servers (requires a < c). Evaluated through the
/// numerically stable recurrence on the Erlang-B blocking probability.
[[nodiscard]] double erlang_c(unsigned c, double offered_load);

/// Erlang-B: the blocking probability of an M/M/c/c loss system, via the
/// classic recurrence B(0)=1, B(k) = aB(k-1)/(k + aB(k-1)). Valid for any
/// a > 0 (loss systems have no stability constraint).
[[nodiscard]] double erlang_b(unsigned c, double offered_load);

}  // namespace mclat::math
