// integration.h — one-dimensional quadrature used for Laplace transforms of
// heavy-tailed inter-arrival distributions (Generalized Pareto has no
// closed-form transform, so the δ-solver integrates numerically).
//
// Provided routines:
//   * adaptive_simpson       — finite interval, automatic refinement
//   * integrate_semi_infinite— [a, ∞) via exponential-stride panel summation
//   * GaussLaguerre          — fixed-node rule for ∫₀^∞ e^{-x} f(x) dx
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace mclat::math {

/// Options controlling the adaptive Simpson recursion.
struct QuadratureOptions {
  double abs_tol = 1e-12;   ///< absolute error target per panel
  double rel_tol = 1e-10;   ///< relative error target per panel
  int max_depth = 60;       ///< recursion depth cap (panels halve each level)
};

/// Integrates f over the finite interval [a, b] with adaptive Simpson's rule.
/// The estimate converges at O(h^4) for smooth integrands; panels are split
/// until the Richardson error estimate meets the tolerance.
[[nodiscard]] double adaptive_simpson(const std::function<double(double)>& f,
                                      double a, double b,
                                      const QuadratureOptions& opt = {});

/// Integrates f over [a, ∞). The tail is summed in geometrically growing
/// panels until a panel's contribution is negligible relative to the running
/// total; each panel uses adaptive Simpson internally. Intended for
/// integrands that decay at least exponentially (e.g. e^{-st}·pdf(t)), which
/// is always the case for Laplace transforms evaluated at s > 0.
[[nodiscard]] double integrate_semi_infinite(
    const std::function<double(double)>& f, double a,
    const QuadratureOptions& opt = {});

/// Gauss–Laguerre quadrature: ∫₀^∞ e^{-x} f(x) dx ≈ Σ wᵢ f(xᵢ).
///
/// Nodes/weights are computed once per rule order with Newton iteration on
/// the Laguerre recurrence (the classic Numerical-Recipes construction).
/// Useful as a fast cross-check of the panel integrator for Laplace-type
/// integrals: L{pdf}(s) = (1/s) ∫₀^∞ e^{-x} pdf(x/s) dx.
class GaussLaguerre {
 public:
  /// Builds an n-point rule. Throws std::invalid_argument for n < 2.
  explicit GaussLaguerre(int n);

  /// Applies the rule to f.
  [[nodiscard]] double integrate(const std::function<double(double)>& f) const;

  /// Evaluates the Laplace transform ∫₀^∞ e^{-st} g(t) dt for s > 0 by the
  /// substitution x = s t.
  [[nodiscard]] double laplace(const std::function<double(double)>& g,
                               double s) const;

  [[nodiscard]] int order() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const std::vector<double>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<double> nodes_;
  std::vector<double> weights_;
};

}  // namespace mclat::math
