#include "math/integration.h"

#include <cmath>
#include <stdexcept>

#include "math/numerics.h"

namespace mclat::math {
namespace {

// One Simpson estimate over [a, b] given precomputed endpoint/midpoint values.
double simpson(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

// Recursive half of adaptive Simpson with Richardson acceleration. `whole`
// is the single-panel estimate over [a, b]; the panel splits until the
// two-half estimate agrees with it to tolerance.
double adaptive_step(const std::function<double(double)>& f, double a,
                     double b, double fa, double fm, double fb, double whole,
                     double abs_tol, double rel_tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, a, m);
  const double right = simpson(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  const double scale = std::abs(left + right);
  if (depth <= 0 || std::abs(delta) <= 15.0 * (abs_tol + rel_tol * scale)) {
    // Richardson extrapolation: Simpson error shrinks 16x per halving.
    return left + right + delta / 15.0;
  }
  return adaptive_step(f, a, m, fa, flm, fm, left, 0.5 * abs_tol, rel_tol,
                       depth - 1) +
         adaptive_step(f, m, b, fm, frm, fb, right, 0.5 * abs_tol, rel_tol,
                       depth - 1);
}

}  // namespace

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, const QuadratureOptions& opt) {
  if (!(a <= b)) throw std::invalid_argument("adaptive_simpson: a > b");
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = simpson(fa, fm, fb, a, b);
  return adaptive_step(f, a, b, fa, fm, fb, whole, opt.abs_tol, opt.rel_tol,
                       opt.max_depth);
}

double integrate_semi_infinite(const std::function<double(double)>& f,
                               double a, const QuadratureOptions& opt) {
  // Sum geometrically widening panels [t, 2t+1) so an exponential-decay tail
  // converges in O(log) panels regardless of the decay rate's scale.
  double total = 0.0;
  double left = a;
  double width = 1.0;
  // First pick a width that resolves the integrand near `a`: shrink while the
  // first panel dominates to avoid stepping over a narrow pdf spike.
  for (int i = 0; i < 60; ++i) {
    double panel = adaptive_simpson(f, left, left + width, opt);
    double half = adaptive_simpson(f, left, left + 0.5 * width, opt) +
                  adaptive_simpson(f, left + 0.5 * width, left + width, opt);
    if (std::abs(panel - half) <=
        opt.abs_tol + opt.rel_tol * std::abs(half) * 10.0) {
      break;
    }
    width *= 0.5;
  }
  int quiet_panels = 0;
  for (int i = 0; i < 400; ++i) {
    const double panel = adaptive_simpson(f, left, left + width, opt);
    total += panel;
    left += width;
    width *= 2.0;
    if (std::abs(panel) <= opt.abs_tol + opt.rel_tol * std::abs(total)) {
      if (++quiet_panels >= 3) break;  // genuinely converged, not a zero dip
    } else {
      quiet_panels = 0;
    }
  }
  return total;
}

GaussLaguerre::GaussLaguerre(int n) {
  require(n >= 2, "GaussLaguerre: order must be >= 2");
  nodes_.resize(static_cast<std::size_t>(n));
  weights_.resize(static_cast<std::size_t>(n));
  // Newton iteration on L_n(x) using the three-term recurrence; initial
  // guesses follow Stroud & Secrest as popularised by Numerical Recipes.
  double z = 0.0;
  for (int i = 0; i < n; ++i) {
    if (i == 0) {
      z = 3.0 / (1.0 + 2.4 * n);
    } else if (i == 1) {
      z += 15.0 / (1.0 + 2.5 * n);
    } else {
      const double ai = i - 1;
      z += (1.0 + 2.55 * ai) / (1.9 * ai) * (z - nodes_[static_cast<std::size_t>(i - 2)]);
    }
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate L_n(z) and its derivative via recurrence.
      double p1 = 1.0;
      double p2 = 0.0;
      for (int j = 1; j <= n; ++j) {
        const double p3 = p2;
        p2 = p1;
        p1 = ((2.0 * j - 1.0 - z) * p2 - (j - 1.0) * p3) / j;
      }
      pp = n * (p1 - p2) / z;
      const double z1 = z;
      z = z1 - p1 / pp;
      if (std::abs(z - z1) <= 1e-15 * std::max(1.0, std::abs(z))) break;
    }
    nodes_[static_cast<std::size_t>(i)] = z;
    // w_i = -1 / (n * L_{n-1}(x_i) * L_n'(x_i)); the recurrence form below is
    // the numerically stable equivalent.
    double p2 = 0.0;
    {
      double p1 = 1.0;
      for (int j = 1; j <= n; ++j) {
        const double p3 = p2;
        p2 = p1;
        p1 = ((2.0 * j - 1.0 - z) * p2 - (j - 1.0) * p3) / j;
      }
    }
    weights_[static_cast<std::size_t>(i)] = -1.0 / (pp * n * p2);
  }
}

double GaussLaguerre::integrate(const std::function<double(double)>& f) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    acc += weights_[i] * f(nodes_[i]);
  }
  return acc;
}

double GaussLaguerre::laplace(const std::function<double(double)>& g,
                              double s) const {
  require(s > 0.0, "GaussLaguerre::laplace: s must be > 0");
  // ∫₀^∞ e^{-st} g(t) dt = (1/s) ∫₀^∞ e^{-x} g(x/s) dx
  return integrate([&](double x) { return g(x / s); }) / s;
}

}  // namespace mclat::math
