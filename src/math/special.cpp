#include "math/special.h"

#include <cmath>
#include <stdexcept>

namespace mclat::math {

double normal_cdf(double x) {
  // Φ(x) = erfc(-x/√2)/2 — std::erfc is accurate in both tails.
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  // Wichura (1988), algorithm AS 241, PPND16.
  const double q = p - 0.5;
  if (std::abs(q) <= 0.425) {
    const double r = 0.180625 - q * q;
    return q *
           (((((((2.5090809287301226727e3 * r + 3.3430575583588128105e4) * r +
                 6.7265770927008700853e4) * r + 4.5921953931549871457e4) * r +
               1.3731693765509461125e4) * r + 1.9715909503065514427e3) * r +
             1.3314166789178437745e2) * r + 3.3871328727963666080e0) /
           (((((((5.2264952788528545610e3 * r + 2.8729085735721942674e4) * r +
                 3.9307895800092710610e4) * r + 2.1213794301586595867e4) * r +
               5.3941960214247511077e3) * r + 6.8718700749205790830e2) * r +
             4.2313330701600911252e1) * r + 1.0);
  }
  double r = (q < 0.0) ? p : 1.0 - p;
  r = std::sqrt(-std::log(r));
  double val;
  if (r <= 5.0) {
    r -= 1.6;
    val = (((((((7.74545014278341407640e-4 * r + 2.27238449892691845833e-2) * r +
                2.41780725177450611770e-1) * r + 1.27045825245236838258e0) * r +
              3.64784832476320460504e0) * r + 5.76949722146069140550e0) * r +
            4.63033784615654529590e0) * r + 1.42343711074968357734e0) /
          (((((((1.05075007164441684324e-9 * r + 5.47593808499534494600e-4) * r +
                1.51986665636164571966e-2) * r + 1.48103976427480074590e-1) * r +
              6.89767334985100004550e-1) * r + 1.67638483018380384940e0) * r +
            2.05319162663775882187e0) * r + 1.0);
  } else {
    r -= 5.0;
    val = (((((((2.01033439929228813265e-7 * r + 2.71155556874348757815e-5) * r +
                1.24266094738807843860e-3) * r + 2.65321895265761230930e-2) * r +
              2.96560571828504891230e-1) * r + 1.78482653991729133580e0) * r +
            5.46378491116411436990e0) * r + 6.65790464350110377720e0) /
          (((((((2.04426310338993978564e-15 * r + 1.42151175831644588870e-7) * r +
                1.84631831751005468180e-5) * r + 7.86869131145613259100e-4) * r +
              1.48753612908506148525e-2) * r + 1.36929880922735805310e-1) * r +
            5.99832206555887937690e-1) * r + 1.0);
  }
  return (q < 0.0) ? -val : val;
}

namespace {

// Series representation of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction representation of Q(a, x) (Lentz); for x >= a + 1.
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::invalid_argument("gamma_p: need a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  return (x < a + 1.0) ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::invalid_argument("gamma_q: need a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  return (x < a + 1.0) ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double student_t_critical(double df, double confidence) {
  if (!(df > 0.0)) throw std::invalid_argument("student_t_critical: df <= 0");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("student_t_critical: confidence in (0,1)");
  }
  const double z = normal_quantile(0.5 + 0.5 * confidence);
  // Cornish–Fisher expansion of the t quantile in powers of 1/df.
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double g1 = (z3 + z) / 4.0;
  const double g2 = (5.0 * z5 + 16.0 * z3 + 3.0 * z) / 96.0;
  const double g3 = (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / 384.0;
  return z + g1 / df + g2 / (df * df) + g3 / (df * df * df);
}

double erlang_b(unsigned c, double offered_load) {
  if (!(offered_load > 0.0)) {
    throw std::invalid_argument("erlang_b: offered load must be > 0");
  }
  if (c == 0) return 1.0;
  double b = 1.0;
  for (unsigned k = 1; k <= c; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  return b;
}

double erlang_c(unsigned c, double offered_load) {
  if (c == 0 || !(offered_load < static_cast<double>(c))) {
    throw std::invalid_argument("erlang_c: need offered load < c servers");
  }
  // C = B / (1 - ρ(1 - B)) with ρ = a/c and B the Erlang-B value.
  const double b = erlang_b(c, offered_load);
  const double rho = offered_load / static_cast<double>(c);
  return b / (1.0 - rho * (1.0 - b));
}

}  // namespace mclat::math
