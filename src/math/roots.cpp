#include "math/roots.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "math/numerics.h"

namespace mclat::math {

RootResult bisect(const std::function<double(double)>& f, double a, double b,
                  const RootOptions& opt) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if (fa * fb > 0.0) {
    throw std::invalid_argument("bisect: f(a) and f(b) must differ in sign");
  }
  RootResult r;
  for (r.iterations = 0; r.iterations < opt.max_iter; ++r.iterations) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    if (std::abs(fm) <= opt.f_tol || 0.5 * (b - a) <= opt.x_tol) {
      r.x = m;
      r.fx = fm;
      r.converged = true;
      return r;
    }
    if (fa * fm <= 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  r.x = 0.5 * (a + b);
  r.fx = f(r.x);
  r.converged = std::abs(r.fx) <= opt.f_tol;
  return r;
}

RootResult brent(const std::function<double(double)>& f, double a, double b,
                 const RootOptions& opt) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if (fa * fb > 0.0) {
    throw std::invalid_argument("brent: f(a) and f(b) must differ in sign");
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double d = b - a;  // step from previous iteration
  double e = d;      // step before that
  RootResult r;
  for (r.iterations = 0; r.iterations < opt.max_iter; ++r.iterations) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() *
                           std::abs(b) + 0.5 * opt.x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 || std::abs(fb) <= opt.f_tol) {
      r.x = b;
      r.fx = fb;
      r.converged = true;
      return r;
    }
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation (secant when a == c).
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double rr = fb / fc;
        p = s * (2.0 * m * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q; else p = -p;
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  r.x = b;
  r.fx = fb;
  r.converged = std::abs(fb) <= opt.f_tol;
  return r;
}

RootResult fixed_point(const std::function<double(double)>& g, double x0,
                       double damping, const RootOptions& opt) {
  require(damping > 0.0 && damping <= 1.0,
          "fixed_point: damping must lie in (0,1]");
  RootResult r;
  double x = x0;
  for (r.iterations = 0; r.iterations < opt.max_iter; ++r.iterations) {
    const double gx = g(x);
    const double next = (1.0 - damping) * x + damping * gx;
    if (!std::isfinite(next)) break;
    if (std::abs(next - x) <= opt.x_tol * std::max(1.0, std::abs(next))) {
      r.x = next;
      r.fx = g(next) - next;
      r.converged = true;
      return r;
    }
    x = next;
  }
  r.x = x;
  r.fx = g(x) - x;
  r.converged = false;
  return r;
}

std::optional<std::pair<double, double>> bracket_sign_change(
    const std::function<double(double)>& f, double a, double b, int steps) {
  require(steps >= 1, "bracket_sign_change: steps must be >= 1");
  require(a < b, "bracket_sign_change: need a < b");
  double prev_x = a;
  double prev_f = f(a);
  for (int i = 1; i <= steps; ++i) {
    const double x = a + (b - a) * static_cast<double>(i) / steps;
    const double fx = f(x);
    if (prev_f == 0.0) return std::make_pair(prev_x, prev_x);
    if (prev_f * fx <= 0.0) return std::make_pair(prev_x, x);
    prev_x = x;
    prev_f = fx;
  }
  return std::nullopt;
}

}  // namespace mclat::math
