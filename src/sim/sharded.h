// sharded.h — conservative parallel execution of a group of Simulator
// calendars (logical processes, "LPs") synchronized in lookahead-bounded
// time windows.
//
// The model (DESIGN.md §4i): every cross-LP interaction is a *message*
// posted through the group, and every message is timestamped at least one
// `lookahead` after the sender's current virtual time (in the cluster
// engine the lookahead is the constant one-way network delay, so fork
// fan-out, join notifications, DB completions and replica cancels all
// satisfy the bound by construction). That makes the classic null-message
// window safe: if every LP has executed up to time `end`, no message that
// could still be generated can land at or before `end + lookahead`.
//
// Execution alternates windows and barriers:
//
//   window i:  each worker drains its LPs' inbound mailboxes (messages
//              posted during window i-1) into the local calendars, then
//              runs each calendar with run_until(end_i).
//   barrier:   the last worker to arrive plans window i+1: it peeks the
//              earliest live event time `min_t` across all calendars and
//              all undelivered mailboxes and sets
//              end_{i+1} = min_t + lookahead/2.
//
// Why lookahead/2 and not the full lookahead: every event executed in
// window i+1 has time >= min_t, so any message it posts is timestamped
// >= min_t + lookahead = end_{i+1} + lookahead/2 — *strictly* beyond the
// window end with a half-lookahead margin, immune to floating-point
// rounding at the boundary. Messages therefore always commute with the
// window they are delivered into: delivery (a schedule_at into the
// destination calendar) never lands at or before a committed time.
//
// Determinism: mailboxes are per-(destination, source) cells, so each cell
// has exactly one writer per window and delivery order within a cell is
// posting order. At drain time the destination merges its cells into one
// sequence ordered by (time_bits, origin, per-source posting index) — a
// total order independent of worker count and, in the cluster engine,
// of the shard count (origin tags are global server indices). Two runs
// with the same LP contents produce identical event sequences regardless
// of how many OS threads execute them.
//
// Memory ordering: mailbox cells are written without atomics; the barrier
// (release on arrival, acquire on generation observation) publishes every
// window's writes to every worker of the next window, which is exactly the
// double-buffered parity scheme's requirement and is what the TSan `pdes`
// tier checks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/simulator.h"

namespace mclat::sim {

class ShardGroup {
 public:
  /// `lps` calendars, cross-LP messages at least `lookahead` (> 0, finite)
  /// in the sender's future.
  ShardGroup(std::size_t lps, double lookahead);

  [[nodiscard]] std::size_t lps() const noexcept { return sims_.size(); }
  [[nodiscard]] double lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] Simulator& shard(std::size_t lp) { return *sims_[lp]; }

  /// Posts a cross-LP message: `fn` runs on LP `to` at virtual time `at`.
  /// Throws std::invalid_argument unless `at >= shard(from).now() +
  /// lookahead` — the conservative bound the whole mode rests on.
  ///
  /// `origin` is a sender-chosen deterministic stream tag (in the cluster
  /// engine: 0 for the coordinator, 1 + global server index otherwise).
  /// Messages are delivered in (time, origin, per-origin posting order) —
  /// an order that does not depend on worker or shard count as long as
  /// each origin posts from a single LP.
  ///
  /// Must only be called from an event callback executing inside run()
  /// (i.e. from the LP `from` itself); pre-run setup should schedule
  /// directly into shard(lp).
  void post(std::size_t from, std::size_t to, std::uint32_t origin, Time at,
            InlineCallback fn);

  /// Runs every calendar to completion on `workers` OS threads
  /// (1 <= workers <= lps; LP `i` is owned by worker `i % workers`).
  /// workers == 1 executes the exact same windowed schedule inline.
  /// The first exception thrown by any event callback is rethrown here
  /// after all workers have parked.
  void run(std::size_t workers);

  /// Same windowed schedule, but worker threads 1..workers-1 are obtained
  /// from `submit` (any callable returning a std::future<void>-compatible
  /// handle, e.g. exec::ThreadPool::submit) instead of std::thread —
  /// this is how the cluster engine reuses the trial-level pool.
  template <typename Submit>
  void run_with(Submit&& submit, std::size_t workers) {
    prepare(workers);
    std::vector<std::future<void>> handles;
    handles.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      handles.push_back(submit([this, w] { worker_loop(w); }));
    }
    worker_loop(0);
    for (auto& h : handles) h.get();
    finish();
  }

  /// Committed synchronization windows so far (diagnostics + tests).
  [[nodiscard]] std::uint64_t windows_run() const noexcept {
    return windows_run_;
  }
  /// Cross-LP messages delivered so far (diagnostics + tests).
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept;
  /// Sum of events_executed() over all calendars.
  [[nodiscard]] std::uint64_t events_executed() const noexcept;

 private:
  struct Message {
    std::uint64_t time_bits;  // Simulator::time_key image of the event time
    std::uint64_t seq;        // per-source posting index (stability)
    std::uint32_t origin;     // deterministic stream tag
    InlineCallback fn;
  };

  /// One (parity, destination, source) mailbox cell. Exactly one writer
  /// (the source LP's worker) during a window; drained single-handedly by
  /// the destination's worker one window later. Cache-line aligned so
  /// adjacent sources don't false-share vector headers.
  struct alignas(64) Cell {
    std::vector<Message> msgs;
  };

  /// Sense-reversing barrier with a plan step run by the last arriver.
  /// Hybrid wait: brief spin with yields (the windows are microseconds of
  /// work), then mutex + condvar so oversubscribed runs (more workers than
  /// cores) make progress instead of burning the timeslice.
  class Gate {
   public:
    void reset(std::size_t parties) {
      parties_ = parties;
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(0, std::memory_order_relaxed);
    }
    template <typename F>
    void arrive_and_wait(F&& on_last) {
      const std::uint64_t gen = generation_.load(std::memory_order_acquire);
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
        on_last();
        arrived_.store(0, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(mu_);
          generation_.store(gen + 1, std::memory_order_release);
        }
        cv_.notify_all();
        return;
      }
      for (int i = 0; i < kSpinIters; ++i) {
        if (generation_.load(std::memory_order_acquire) != gen) return;
        if ((i & 63) == 63) std::this_thread::yield();
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return generation_.load(std::memory_order_acquire) != gen;
      });
    }

   private:
    static constexpr int kSpinIters = 1024;
    std::size_t parties_ = 1;
    std::atomic<std::size_t> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
    std::mutex mu_;
    std::condition_variable cv_;
  };

  [[nodiscard]] Cell& cell(std::size_t parity, std::size_t to,
                           std::size_t from) noexcept {
    const std::size_t n = sims_.size();
    return cells_[(parity * n + to) * n + from];
  }

  void prepare(std::size_t workers);
  void finish();
  void worker_loop(std::size_t w);
  /// Delivers LP `lp`'s parity-`parity` mailboxes into its calendar in
  /// (time, origin, posting) order.
  void drain(std::size_t lp, std::size_t parity);
  /// Barrier plan step (single-threaded): advances window_index_ and
  /// computes the next window end, or sets done_.
  void plan();
  void record_error();

  double lookahead_;
  double window_step_;  // lookahead / 2 — see header comment
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<Cell> cells_;  // [2][lps][lps], indexed via cell()
  std::vector<std::uint64_t> post_seq_;    // per-source posting counters
  std::vector<std::uint64_t> delivered_;   // per-LP delivered-message counts
  std::vector<std::vector<Message>> drain_scratch_;  // per-LP merge buffers

  // Window state: written only by plan() (under the barrier) or prepare()
  // (single-threaded); read-only while a window executes.
  std::size_t workers_ = 1;
  std::uint64_t window_index_ = 0;
  std::uint64_t windows_run_ = 0;
  Time window_end_ = 0.0;
  bool done_ = false;

  std::atomic<bool> abort_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
  Gate gate_;
};

}  // namespace mclat::sim
