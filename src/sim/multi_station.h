// multi_station.h — a c-server FIFO queueing station (the M/M/c substrate,
// and with other service laws M/G/c): one shared unbounded queue drained by
// `c` identical servers. Used for the sharded/pooled database extension and
// validated against core::MmcQueue's closed forms.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "dist/distribution.h"
#include "dist/rng.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "stats/welford.h"

namespace mclat::sim {

class MultiServerStation {
 public:
  using DepartureHandler = std::function<void(const Departure&)>;

  MultiServerStation(Simulator& sim, unsigned servers,
                     dist::DistributionPtr service, dist::Rng rng,
                     DepartureHandler on_departure);

  MultiServerStation(const MultiServerStation&) = delete;
  MultiServerStation& operator=(const MultiServerStation&) = delete;

  /// Enqueues a job at the current simulation time.
  void arrive(std::uint64_t job_id);

  [[nodiscard]] unsigned servers() const noexcept { return servers_n_; }
  [[nodiscard]] unsigned busy_servers() const noexcept { return busy_; }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

  /// Mean fraction of busy servers over [creation, now].
  [[nodiscard]] double utilization(Time now) const;

  [[nodiscard]] const stats::Welford& waiting_stats() const noexcept {
    return waiting_;
  }
  [[nodiscard]] const stats::Welford& sojourn_stats() const noexcept {
    return sojourn_;
  }
  /// Fraction of completed jobs that waited at all (Erlang-C's quantity).
  [[nodiscard]] double waited_fraction() const;

 private:
  struct Pending {
    std::uint64_t job_id;
    Time arrival;
  };

  void begin_service();
  void account_busy(Time now) noexcept;

  Simulator& sim_;
  unsigned servers_n_;
  dist::DistributionPtr service_;
  dist::Rng rng_;
  DepartureHandler on_departure_;
  std::deque<Pending> queue_;
  unsigned busy_ = 0;
  Time created_at_ = 0.0;
  Time last_change_ = 0.0;
  double busy_integral_ = 0.0;
  std::uint64_t completed_ = 0;
  std::uint64_t waited_ = 0;
  stats::Welford waiting_;
  stats::Welford sojourn_;
};

}  // namespace mclat::sim
