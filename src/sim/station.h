// station.h — a single-server FIFO queueing station.
//
// This is the simulated Memcached server (and, with a different service
// distribution, the backend database): jobs join an unbounded FIFO queue,
// one server drains it with iid service times drawn from a pluggable
// distribution. The station reports, per departing job, the three timestamps
// the latency model reasons about — arrival, service start, departure — so
// queueing time T_Q and completion time T_C (eqs. 4–5) are directly
// observable.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dist/distribution.h"
#include "dist/rng.h"
#include "obs/recorder.h"
#include "sim/simulator.h"
#include "stats/welford.h"

namespace mclat::sim {

/// Timestamps of one completed job.
struct Departure {
  std::uint64_t job_id = 0;
  Time arrival = 0.0;        ///< joined the queue
  Time service_start = 0.0;  ///< reached the server
  Time departure = 0.0;      ///< finished service

  [[nodiscard]] double waiting_time() const noexcept {
    return service_start - arrival;
  }
  [[nodiscard]] double sojourn_time() const noexcept {
    return departure - arrival;
  }
};

class ServiceStation {
 public:
  using DepartureHandler = std::function<void(const Departure&)>;

  /// The station samples service times from `service` using `rng`; every
  /// completed job is reported through `on_departure`.
  ServiceStation(Simulator& sim, dist::DistributionPtr service,
                 dist::Rng rng, DepartureHandler on_departure);

  ServiceStation(const ServiceStation&) = delete;
  ServiceStation& operator=(const ServiceStation&) = delete;

  /// Enqueues a job at the current simulation time.
  void arrive(std::uint64_t job_id);

  /// Removes a job that is still *waiting* (not in service) from the FIFO
  /// and the number-in-system accounting; returns false — and changes
  /// nothing — when the job is in service or not here. The cancelled job
  /// never departs: no service time is drawn for it, no departure is
  /// reported, and the waiting/sojourn statistics never see it (they are
  /// departure statistics). Used by replica cancellation to pull losing
  /// replicas out of server queues.
  bool cancel_waiting(std::uint64_t job_id);

  /// Empties the waiting FIFO (the in-service job, if any, is untouched):
  /// every queued job leaves the number-in-system accounting exactly like
  /// cancel_waiting — no service drawn, no departure reported, no
  /// waiting/sojourn statistics — and its id is appended to `out` in FIFO
  /// order. Returns the number of jobs drained. Used by abrupt server
  /// leave, where queued work fails over to the ring successor.
  std::size_t drain_waiting(std::vector<std::uint64_t>& out);

  /// Jobs waiting (excluding the one in service).
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] bool busy() const noexcept { return busy_; }

  /// Total jobs completed so far.
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

  /// Fraction of elapsed simulation time the server was busy, measured from
  /// station construction to `now`.
  [[nodiscard]] double utilization(Time now) const;

  /// Waiting-time statistics of departed jobs (T_Q samples).
  [[nodiscard]] const stats::Welford& waiting_stats() const noexcept {
    return waiting_;
  }
  /// Sojourn-time statistics of departed jobs (T_S samples).
  [[nodiscard]] const stats::Welford& sojourn_stats() const noexcept {
    return sojourn_;
  }

  /// Number-in-system each arriving job found (the GI/M/1 embedded chain:
  /// geometric(δ) in theory — see GixM1Queue::queue_length_pmf).
  [[nodiscard]] const stats::Welford& found_in_system_stats() const noexcept {
    return found_;
  }

  /// Time-average number in system L over [creation, now]; with the
  /// arrival rate this closes Little's law L = λ·E[T] directly.
  [[nodiscard]] double time_average_number_in_system(Time now) const;

  /// Attaches per-departure observability: every job arriving at or after
  /// `from` splits its sojourn into queue-wait and service components on
  /// the given stats (microseconds). Null pointers are no-ops — the
  /// obs::Recorder null-object pattern — so the unobserved hot path costs
  /// one predictable branch.
  void observe_split(obs::LatencyStat* wait, obs::LatencyStat* service,
                     Time from = 0.0) noexcept {
    obs_wait_ = wait;
    obs_service_ = service;
    obs_from_ = from;
  }

 private:
  struct Pending {
    std::uint64_t job_id;
    Time arrival;
  };

  void begin_service();

  Simulator& sim_;
  dist::DistributionPtr service_;
  // Devirtualized fast path for the dominant M/M/1 case: when the service
  // distribution is Exponential, its rate is cached here and sampling
  // inlines to rng_.exponential(rate) — the exact computation
  // Exponential::sample performs, minus the virtual dispatch. 0 means "not
  // exponential; go through the virtual sample()".
  double exp_rate_ = 0.0;
  dist::Rng rng_;
  DepartureHandler on_departure_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  Time created_at_ = 0.0;
  Time busy_accum_ = 0.0;
  Time busy_since_ = 0.0;
  std::uint64_t completed_ = 0;
  stats::Welford waiting_;
  stats::Welford sojourn_;
  stats::Welford found_;
  obs::LatencyStat* obs_wait_ = nullptr;
  obs::LatencyStat* obs_service_ = nullptr;
  Time obs_from_ = 0.0;
  // number-in-system integral for the time-average L
  void account_population(Time now) noexcept;
  std::size_t in_system_ = 0;
  Time last_change_ = 0.0;
  double population_integral_ = 0.0;
};

}  // namespace mclat::sim
