// source.h — renewal batch arrival process (the GI^X of GI^X/M/1).
//
// Batches arrive with iid inter-batch gaps from a pluggable distribution
// (Generalized Pareto for the Facebook workload, Exponential for Poisson,
// …); each batch carries a Geometric(q) number of keys. The source hands the
// whole batch to a sink callback in one call so the sink can enqueue the
// concurrent keys at exactly the same virtual instant — which is precisely
// the paper's definition of concurrency (keys arriving "during a tiny
// time").
#pragma once

#include <cstdint>
#include <functional>

#include "dist/distribution.h"
#include "dist/geometric.h"
#include "dist/rng.h"
#include "sim/simulator.h"

namespace mclat::sim {

class BatchSource {
 public:
  /// `sink(batch_size)` is invoked once per batch at the batch arrival time.
  using Sink = std::function<void(std::uint64_t batch_size)>;
  /// Draws a batch size >= 1. Generalises the paper's Geometric(q) law so
  /// ablations can test the model's sensitivity to the batching
  /// distribution (A6).
  using BatchSampler = std::function<std::uint64_t(dist::Rng&)>;

  /// The paper's model: Geometric(q) batch sizes.
  BatchSource(Simulator& sim, dist::DistributionPtr gap,
              dist::GeometricBatch batch, dist::Rng rng, Sink sink);

  /// Arbitrary batch-size law.
  BatchSource(Simulator& sim, dist::DistributionPtr gap, BatchSampler batch,
              dist::Rng rng, Sink sink);

  BatchSource(const BatchSource&) = delete;
  BatchSource& operator=(const BatchSource&) = delete;

  /// Begins emitting: the first batch arrives one gap after start().
  void start();

  /// Stops after the currently scheduled batch is cancelled.
  void stop();

  [[nodiscard]] std::uint64_t batches_emitted() const noexcept {
    return batches_;
  }
  [[nodiscard]] std::uint64_t keys_emitted() const noexcept { return keys_; }

 private:
  void schedule_next();

  Simulator& sim_;
  dist::DistributionPtr gap_;
  BatchSampler batch_;
  dist::Rng rng_;
  Sink sink_;
  bool running_ = false;
  EventId pending_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t keys_ = 0;
};

}  // namespace mclat::sim
