// source.h — renewal batch arrival process (the GI^X of GI^X/M/1).
//
// Batches arrive with iid inter-batch gaps from a pluggable distribution
// (Generalized Pareto for the Facebook workload, Exponential for Poisson,
// …); each batch carries a Geometric(q) number of keys. The source hands the
// whole batch to a sink callback in one call so the sink can enqueue the
// concurrent keys at exactly the same virtual instant — which is precisely
// the paper's definition of concurrency (keys arriving "during a tiny
// time").
#pragma once

#include <cstdint>
#include <functional>

#include "dist/distribution.h"
#include "dist/geometric.h"
#include "dist/rng.h"
#include "sim/simulator.h"

namespace mclat::sim {

class BatchSource {
 public:
  /// `sink(batch_size)` is invoked once per batch at the batch arrival time.
  using Sink = std::function<void(std::uint64_t batch_size)>;
  /// Draws a batch size >= 1. Generalises the paper's Geometric(q) law so
  /// ablations can test the model's sensitivity to the batching
  /// distribution (A6).
  using BatchSampler = std::function<std::uint64_t(dist::Rng&)>;

  /// The paper's model: Geometric(q) batch sizes.
  BatchSource(Simulator& sim, dist::DistributionPtr gap,
              dist::GeometricBatch batch, dist::Rng rng, Sink sink);

  /// Arbitrary batch-size law.
  BatchSource(Simulator& sim, dist::DistributionPtr gap, BatchSampler batch,
              dist::Rng rng, Sink sink);

  BatchSource(const BatchSource&) = delete;
  BatchSource& operator=(const BatchSource&) = delete;

  /// Begins emitting: the first batch arrives one gap after start().
  void start();

  /// Stops after the currently scheduled batch is cancelled.
  void stop();

  [[nodiscard]] std::uint64_t batches_emitted() const noexcept {
    return batches_;
  }
  [[nodiscard]] std::uint64_t keys_emitted() const noexcept { return keys_; }

 private:
  void schedule_next();

  Simulator& sim_;
  dist::DistributionPtr gap_;
  BatchSampler batch_;
  dist::Rng rng_;
  Sink sink_;
  bool running_ = false;
  EventId pending_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t keys_ = 0;
};

/// Open-loop Poisson arrival source: `sink()` fires once per arrival, with
/// iid exponential(rate) gaps. This is the cluster simulators' request
/// generator and miss stream, extracted so every open-loop process draws
/// and reschedules identically. Rescheduling goes through a one-pointer
/// trampoline (`[this]`), so the calendar stores 8 bytes inline instead of
/// a fresh closure copy per arrival.
///
/// stop() differs from BatchSource::stop() deliberately: the pending
/// arrival is NOT cancelled — it fires and no-ops. The end-to-end
/// simulator drains its calendar after the horizon and counts executed
/// events; cancelling would change that count (and the goldens pinned to
/// it).
class PoissonSource {
 public:
  using Sink = std::function<void()>;

  PoissonSource(Simulator& sim, double rate, dist::Rng rng, Sink sink);

  PoissonSource(const PoissonSource&) = delete;
  PoissonSource& operator=(const PoissonSource&) = delete;

  /// Begins emitting: the first arrival lands one exponential gap after
  /// start(). The gap is drawn at schedule time (arrival N's sink runs
  /// before arrival N+1's gap draw — the draw order the goldens pin).
  void start();

  /// Stops emitting. The already-scheduled arrival still fires (and
  /// returns without calling the sink or drawing).
  void stop() noexcept { running_ = false; }

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  void fire();
  void schedule_next();

  Simulator& sim_;
  double rate_;
  dist::Rng rng_;
  Sink sink_;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace mclat::sim
