#include "sim/multi_station.h"

#include <utility>

#include "math/numerics.h"

namespace mclat::sim {

MultiServerStation::MultiServerStation(Simulator& sim, unsigned servers,
                                       dist::DistributionPtr service,
                                       dist::Rng rng,
                                       DepartureHandler on_departure)
    : sim_(sim), servers_n_(servers), service_(std::move(service)), rng_(rng),
      on_departure_(std::move(on_departure)), created_at_(sim.now()),
      last_change_(sim.now()) {
  math::require(servers >= 1, "MultiServerStation: need >= 1 server");
  math::require(service_ != nullptr, "MultiServerStation: null service");
  math::require(static_cast<bool>(on_departure_),
                "MultiServerStation: null departure handler");
}

void MultiServerStation::account_busy(Time now) noexcept {
  busy_integral_ += static_cast<double>(busy_) * (now - last_change_);
  last_change_ = now;
}

void MultiServerStation::arrive(std::uint64_t job_id) {
  queue_.push_back(Pending{job_id, sim_.now()});
  if (busy_ < servers_n_) begin_service();
}

void MultiServerStation::begin_service() {
  const Pending job = queue_.front();
  queue_.pop_front();
  account_busy(sim_.now());
  ++busy_;
  const Time start = sim_.now();
  const double duration = service_->sample(rng_);
  sim_.schedule_in(duration, [this, job, start] {
    account_busy(sim_.now());
    --busy_;
    ++completed_;
    Departure d;
    d.job_id = job.job_id;
    d.arrival = job.arrival;
    d.service_start = start;
    d.departure = sim_.now();
    if (d.waiting_time() > 1e-12) ++waited_;
    waiting_.add(d.waiting_time());
    sojourn_.add(d.sojourn_time());
    if (!queue_.empty() && busy_ < servers_n_) begin_service();
    on_departure_(d);
  });
}

double MultiServerStation::utilization(Time now) const {
  const Time elapsed = now - created_at_;
  if (elapsed <= 0.0) return 0.0;
  const double pending = static_cast<double>(busy_) * (now - last_change_);
  return (busy_integral_ + pending) /
         (elapsed * static_cast<double>(servers_n_));
}

double MultiServerStation::waited_fraction() const {
  if (completed_ == 0) return 0.0;
  return static_cast<double>(waited_) / static_cast<double>(completed_);
}

}  // namespace mclat::sim
