#include "sim/source.h"

#include <utility>

#include "math/numerics.h"

namespace mclat::sim {

BatchSource::BatchSource(Simulator& sim, dist::DistributionPtr gap,
                         dist::GeometricBatch batch, dist::Rng rng, Sink sink)
    : BatchSource(sim, std::move(gap),
                  BatchSampler([batch](dist::Rng& r) { return batch.sample(r); }),
                  rng, std::move(sink)) {}

BatchSource::BatchSource(Simulator& sim, dist::DistributionPtr gap,
                         BatchSampler batch, dist::Rng rng, Sink sink)
    : sim_(sim), gap_(std::move(gap)), batch_(std::move(batch)), rng_(rng),
      sink_(std::move(sink)) {
  math::require(gap_ != nullptr, "BatchSource: null gap distribution");
  math::require(static_cast<bool>(batch_), "BatchSource: null batch sampler");
  math::require(static_cast<bool>(sink_), "BatchSource: null sink");
}

void BatchSource::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void BatchSource::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

void BatchSource::schedule_next() {
  const double gap = gap_->sample(rng_);
  pending_ = sim_.schedule_in(gap, [this] {
    const std::uint64_t size = batch_(rng_);
    ++batches_;
    keys_ += size;
    if (running_) schedule_next();
    sink_(size);
  });
}

PoissonSource::PoissonSource(Simulator& sim, double rate, dist::Rng rng,
                             Sink sink)
    : sim_(sim), rate_(rate), rng_(rng), sink_(std::move(sink)) {
  math::require(rate_ > 0.0, "PoissonSource: rate must be > 0");
  math::require(static_cast<bool>(sink_), "PoissonSource: null sink");
}

void PoissonSource::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void PoissonSource::fire() {
  if (!running_) return;
  ++emitted_;
  sink_();
  schedule_next();
}

void PoissonSource::schedule_next() {
  sim_.schedule_in(rng_.exponential(rate_), [this] { fire(); });
}

}  // namespace mclat::sim
