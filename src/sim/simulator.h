// simulator.h — the discrete-event simulation kernel.
//
// A single-threaded event calendar: callbacks scheduled at virtual times,
// executed in (time, insertion-order) order so that simultaneous events are
// deterministic. This kernel plus the queueing stations in station.h is the
// substrate on which the whole "experiment" side of the reproduction runs —
// it plays the role of the paper's physical testbed.
//
// Memory layout (see DESIGN.md §4d): the calendar is a flat 4-ary min-heap
// of 24-byte entries ordered by (time, seq) — the same FIFO tie-break as the
// original binary std::priority_queue, so event order (and every golden
// file) is preserved bit-for-bit. The ordering key is compared as one
// 128-bit integer: simulation time is non-negative, so the IEEE-754 bit
// pattern of `time` orders exactly like the double, and (time_bits << 64 |
// seq) collapses the two-field comparison into a single unsigned compare.
// Callbacks live inline in a slot table of small-buffer callables
// (InlineCallback) allocated in fixed blocks — growing the table never
// moves a live callback. Slots are recycled through a LIFO free list and
// tagged with a generation counter: an EventId is (generation << 32 |
// slot), cancellation is an O(1) generation-tag mismatch, and the kernel
// performs no per-event heap allocation and owns no hash table.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_callback.h"

namespace mclat::sim {

/// Virtual simulation time, in seconds.
using Time = double;

/// Token returned by schedule_*; can be passed to cancel(). Encodes
/// (generation << 32 | slot); generations start at 1, so 0 never names a
/// live event and a default-initialised EventId is always safe to cancel.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns a cancellation
  /// token. Throws std::invalid_argument for t < now.
  ///
  /// The template overload constructs the capture directly into the
  /// calendar slot (no temporary InlineCallback, no move); the Callback
  /// overload serves pre-built callbacks.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(Time t, F&& fn) {
    if (t < now_) throw_past_time();
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    ++s.gen;
    s.fn.emplace(std::forward<F>(fn));
    return commit_slot(t, slot, s.gen);
  }
  EventId schedule_at(Time t, Callback fn);

  /// Schedules `fn` after a delay `dt` >= 0.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_in(Time dt, F&& fn) {
    return schedule_at(now_ + dt, std::forward<F>(fn));
  }
  EventId schedule_in(Time dt, Callback fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancels a pending event. Returns true when a live event was pulled
  /// from the calendar; false — and no other effect — when it already ran,
  /// was cancelled before, or never existed (a stale or invalid id). The
  /// return value lets first-wins bookkeeping distinguish "stopped before
  /// it happened" from "already underway" in the same O(1) generation
  /// check (cluster::engine::ReplicaSet loser cancellation).
  bool cancel(EventId id);

  /// Runs until the calendar is empty.
  void run();

  /// Runs until virtual time `t` (events at exactly `t` are executed);
  /// afterwards now() == t if the calendar outlived the horizon.
  void run_until(Time t);

  /// Executes at most one event. Returns false when the calendar is empty.
  bool step();

  /// Drops every pending event (used between experiment repetitions).
  void clear();

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Sentinel returned by peek_next_time_bits() for an empty calendar:
  /// above every valid time bit pattern, so min() folds across calendars
  /// work without a separate emptiness flag.
  static constexpr std::uint64_t kNoEventBits = ~std::uint64_t{0};

  /// Bit pattern (see time_key) of the earliest live pending event, or
  /// kNoEventBits when none is pending. Settles dead (cancelled) top
  /// entries as a side effect, which is why it is non-const. Non-negative
  /// times order like their bit patterns, so the windowed sharded driver
  /// can min() across shard calendars with plain integer compares.
  [[nodiscard]] std::uint64_t peek_next_time_bits();

  /// Order-preserving bit image of a non-negative time. `t + 0.0`
  /// normalises -0.0 to +0.0 so both zeros share one key; for every other
  /// value it is the identity. Non-negative doubles order like their bit
  /// patterns (+inf sorts last). Public so ShardGroup timestamps mailbox
  /// messages with the same key the calendar orders by.
  [[nodiscard]] static std::uint64_t time_key(Time t) noexcept {
    return std::bit_cast<std::uint64_t>(t + 0.0);
  }

 private:
  /// Slot blocks: 512 slots per block, so slot addresses are stable and
  /// growth never move-constructs a stored callback.
  static constexpr std::size_t kSlotBlockBits = 9;
  static constexpr std::size_t kSlotBlockSize = std::size_t{1}
                                                << kSlotBlockBits;
  static constexpr std::size_t kSlotBlockMask = kSlotBlockSize - 1;

  __extension__ typedef unsigned __int128 Key;  // GNU extension; fine on GCC/Clang

  /// One calendar entry: 24 bytes, trivially copyable, so heap sifts are
  /// plain copies. `slot`+`gen` identify the callback; an entry whose
  /// generation no longer matches its slot is dead (cancelled) and is
  /// discarded with one integer compare when it reaches the top.
  struct Entry {
    std::uint64_t time_bits;  // bit_cast of a non-negative double
    std::uint64_t seq;        // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;

    [[nodiscard]] Key key() const noexcept {
      return (static_cast<Key>(time_bits) << 64) | seq;
    }
    [[nodiscard]] Time at() const noexcept {
      return std::bit_cast<Time>(time_bits);
    }
  };

  struct Slot {
    InlineCallback fn;      // engaged iff the slot is armed
    std::uint32_t gen = 0;  // bumped on every arming
  };

  /// Horizon sentinel for fire_one: above every valid time bit pattern.
  static constexpr std::uint64_t kNoHorizon = kNoEventBits;

  static constexpr std::size_t kArity = 4;

  [[nodiscard]] Slot& slot_ref(std::uint32_t i) noexcept {
    return blocks_[i >> kSlotBlockBits][i & kSlotBlockMask];
  }

  // Hole-based sift-up: entries are 24-byte trivially-copyable values, so
  // each level costs one copy instead of a three-move swap, and the
  // (time, seq) comparison is a single 128-bit unsigned compare. Inline so
  // the schedule fast path compiles flat at its call sites.
  void heap_push(const Entry& e) {
    const Key k = e.key();
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (k >= heap_[parent].key()) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }
  void heap_pop_min();
  /// Discards dead top entries, then fires the first live one whose time
  /// bit-pattern is <= `horizon_bits`. Returns false when the calendar is
  /// empty or only events beyond the horizon remain.
  bool fire_one(std::uint64_t horizon_bits);

  [[noreturn]] static void throw_past_time();
  /// Pops a free slot, growing the block table when the list is empty. The
  /// returned slot's callback is disengaged.
  [[nodiscard]] std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return grow_slot();
  }
  [[nodiscard]] std::uint32_t grow_slot();
  /// Pushes the armed slot's calendar entry and mints its EventId.
  EventId commit_slot(Time t, std::uint32_t slot, std::uint32_t gen) {
    heap_push(Entry{time_key(t), next_seq_++, slot, gen});
    ++live_;
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::size_t slot_count_ = 0;
  std::vector<Entry> heap_;  // flat 4-ary min-heap on (time_bits, seq)
  std::vector<std::unique_ptr<Slot[]>> blocks_;  // inline callback storage
  std::vector<std::uint32_t> free_;  // recycled slot indices (LIFO)
};

}  // namespace mclat::sim
