// simulator.h — the discrete-event simulation kernel.
//
// A single-threaded event calendar: callbacks scheduled at virtual times,
// executed in (time, insertion-order) order so that simultaneous events are
// deterministic. This kernel plus the queueing stations in station.h is the
// substrate on which the whole "experiment" side of the reproduction runs —
// it plays the role of the paper's physical testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mclat::sim {

/// Virtual simulation time, in seconds.
using Time = double;

/// Token returned by schedule_*; can be passed to cancel().
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns a cancellation
  /// token. Throws std::invalid_argument for t < now.
  EventId schedule_at(Time t, Callback fn);

  /// Schedules `fn` after a delay `dt` >= 0.
  EventId schedule_in(Time dt, Callback fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs until the calendar is empty.
  void run();

  /// Runs until virtual time `t` (events at exactly `t` are executed);
  /// afterwards now() == t if the calendar outlived the horizon.
  void run_until(Time t);

  /// Executes at most one event. Returns false when the calendar is empty.
  bool step();

  /// Drops every pending event (used between experiment repetitions).
  void clear();

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() - cancelled_.size();
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace mclat::sim
