// inline_callback.h — a move-only, type-erased nullary callable with
// small-buffer-optimised storage.
//
// The event kernel used to store every scheduled callback as a
// `std::function<void()>` inside an `unordered_map<EventId, ...>`: one heap
// allocation (often two, for captures past std::function's tiny internal
// buffer) plus a hash insert and a hash erase *per simulated event*. This
// type is the replacement: the callable lives inline in the calendar's slot
// table (kInlineBytes of storage, enough for every capture list the
// stations and cluster simulators produce), with a heap fallback only for
// oversized captures. Move-only by design — an event callback is consumed
// exactly once.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mclat::sim {

class InlineCallback {
 public:
  /// Inline storage size. 64 bytes holds the largest hot-path capture in the
  /// tree (station departure closures: this + job timestamps) with room to
  /// spare; larger captures transparently spill to the heap.
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  /// Constructs the callable directly into this (empty) object's storage —
  /// the schedule fast path builds the capture in the calendar slot itself,
  /// with no temporary and no move. Precondition: `!*this`.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      vt_ = &inline_vtable<D>;
    } else {
      // Oversized or over-aligned capture: one heap allocation, owned here.
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      vt_ = &heap_vtable<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  void operator()() { vt_->invoke(buf_); }

  /// Invokes the held callable and destroys it, in place, with a single
  /// indirect call — the fire-path fast path (no move-out of the calendar
  /// slot). The object is disengaged *before* the call, so re-entrant
  /// observers (cancel of the firing id, pending-state queries) see an
  /// empty callback while it runs. The callable is destroyed even if it
  /// throws.
  void consume() {
    const VTable* vt = vt_;
    vt_ = nullptr;
    vt->consume(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  /// True when a callable of type F would use the inline buffer (exposed for
  /// tests and benchmarks of the spill path).
  template <typename F>
  [[nodiscard]] static constexpr bool stores_inline() noexcept {
    return fits_inline<std::decay_t<F>>;
  }

 private:
  struct VTable {
    void (*invoke)(void* self);
    void (*consume)(void* self);  // invoke, then destroy (even on throw)
    void (*move_to)(void* src, void* dst) noexcept;  // move-construct + destroy src
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  // Scope guards make `consume` destroy the callable on both the normal and
  // the throwing exit, with no happy-path overhead.
  template <typename D>
  struct DtorGuard {
    D* p;
    ~DtorGuard() { p->~D(); }
  };
  template <typename D>
  struct DeleteGuard {
    D* p;
    ~DeleteGuard() { delete p; }
  };

  template <typename D>
  static constexpr VTable inline_vtable{
      [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
      [](void* self) {
        D* p = std::launder(reinterpret_cast<D*>(self));
        DtorGuard<D> g{p};
        (*p)();
      },
      [](void* src, void* dst) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* self) noexcept {
        std::launder(reinterpret_cast<D*>(self))->~D();
      }};

  template <typename D>
  static constexpr VTable heap_vtable{
      [](void* self) { (**std::launder(reinterpret_cast<D**>(self)))(); },
      [](void* self) {
        D* p = *std::launder(reinterpret_cast<D**>(self));
        DeleteGuard<D> g{p};
        (*p)();
      },
      [](void* src, void* dst) noexcept {
        D** s = std::launder(reinterpret_cast<D**>(src));
        ::new (dst) D*(*s);
        *s = nullptr;
      },
      [](void* self) noexcept {
        delete *std::launder(reinterpret_cast<D**>(self));
      }};

  void steal(InlineCallback& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->move_to(other.buf_, buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace mclat::sim
