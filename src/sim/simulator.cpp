#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace mclat::sim {

EventId Simulator::schedule_at(Time t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void Simulator::cancel(EventId id) {
  if (callbacks_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    heap_.pop();
    const auto c = cancelled_.find(e.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    const auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;  // defensive: cancelled without tombstone
    now_ = e.at;
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time t) {
  while (!heap_.empty()) {
    // Peek past cancelled entries without disturbing live ones.
    const Entry e = heap_.top();
    if (cancelled_.contains(e.id)) {
      heap_.pop();
      cancelled_.erase(e.id);
      continue;
    }
    if (e.at > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulator::clear() {
  heap_ = {};
  callbacks_.clear();
  cancelled_.clear();
}

}  // namespace mclat::sim
