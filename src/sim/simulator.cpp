#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace mclat::sim {

// Hole-based sift-down, mirroring the inline sift-up in the header.
void Simulator::heap_pop_min() {
  const Entry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  const Key k = e.key();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child =
        first_child + kArity < n ? first_child + kArity : n;
    // Branchless min-of-children: event times are effectively random, so a
    // conditional select beats a compare-and-branch here.
    std::size_t best = first_child;
    Key best_key = heap_[first_child].key();
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      const Key ck = heap_[c].key();
      const bool less = ck < best_key;
      best = less ? c : best;
      best_key = less ? ck : best_key;
    }
    if (best_key >= k) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::throw_past_time() {
  throw std::invalid_argument("Simulator::schedule_at: time in the past");
}

std::uint32_t Simulator::grow_slot() {
  const auto slot = static_cast<std::uint32_t>(slot_count_);
  if ((slot_count_ & kSlotBlockMask) == 0) {
    blocks_.push_back(std::make_unique<Slot[]>(kSlotBlockSize));
  }
  ++slot_count_;
  return slot;
}

EventId Simulator::schedule_at(Time t, Callback fn) {
  if (t < now_) throw_past_time();
  const std::uint32_t slot = acquire_slot();
  Slot& s = slot_ref(slot);
  ++s.gen;
  s.fn = std::move(fn);
  return commit_slot(t, slot, s.gen);
}

bool Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_count_) return false;
  Slot& s = slot_ref(slot);
  if (s.gen != gen || !s.fn) {
    return false;  // already fired, cancelled, or reused
  }
  s.fn.reset();
  free_.push_back(slot);
  --live_;
  // The heap entry stays behind; its generation no longer matches, so it is
  // discarded with one integer compare when it reaches the top.
  return true;
}

bool Simulator::fire_one(std::uint64_t horizon_bits) {
  // One fused pass: discard dead (cancelled) top entries, then fire the
  // first live one at or before the horizon. Fusing the settle and fire
  // steps reads the top entry and its slot exactly once per event.
  while (!heap_.empty()) {
    const Entry e = heap_.front();
    Slot& s = slot_ref(e.slot);
    if (s.gen != e.gen || !s.fn) {
      heap_pop_min();
      continue;
    }
    if (e.time_bits > horizon_bits) return false;
    heap_pop_min();
    now_ = e.at();
    --live_;
    ++executed_;
    // Invoke + destroy in place with one indirect call — no move-out of the
    // slot. consume() disengages the slot first, so a re-entrant cancel of
    // the firing id is a no-op, and the slot joins the free list only
    // *after* the call, so a schedule from inside the callback can never
    // overwrite the callable while it runs. (If the callback throws, the
    // slot index is abandoned rather than freed: a one-slot leak in an
    // already-fatal path.)
    s.fn.consume();
    free_.push_back(e.slot);
    return true;
  }
  return false;
}

std::uint64_t Simulator::peek_next_time_bits() {
  // Same dead-entry settling as fire_one, but stops at the first live top
  // instead of firing it.
  while (!heap_.empty()) {
    const Entry e = heap_.front();
    const Slot& s = slot_ref(e.slot);
    if (s.gen != e.gen || !s.fn) {
      heap_pop_min();
      continue;
    }
    return e.time_bits;
  }
  return kNoEventBits;
}

bool Simulator::step() { return fire_one(kNoHorizon); }

void Simulator::run() {
  while (fire_one(kNoHorizon)) {
  }
}

void Simulator::run_until(Time t) {
  // Non-negative doubles order like their bit patterns, so the horizon
  // check inside the fused loop is one integer compare.
  const std::uint64_t t_bits = time_key(t);
  while (fire_one(t_bits)) {
  }
  if (now_ < t) now_ = t;
}

void Simulator::clear() {
  heap_.clear();
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    Slot& s = slot_ref(i);
    if (s.fn) {
      s.fn.reset();
      free_.push_back(i);
    }
  }
  live_ = 0;
  // Generations are deliberately *not* reset: an EventId issued before
  // clear() must stay dead even if its slot is re-armed afterwards.
}

}  // namespace mclat::sim
