#include "sim/sharded.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "math/numerics.h"

namespace mclat::sim {

ShardGroup::ShardGroup(std::size_t lps, double lookahead)
    : lookahead_(lookahead), window_step_(lookahead / 2.0) {
  math::require(lps >= 1, "ShardGroup: need at least one LP");
  math::require(std::isfinite(lookahead) && lookahead > 0.0,
                "ShardGroup: lookahead must be positive and finite");
  sims_.reserve(lps);
  for (std::size_t i = 0; i < lps; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  cells_.resize(2 * lps * lps);
  post_seq_.assign(lps, 0);
  delivered_.assign(lps, 0);
  drain_scratch_.resize(lps);
}

void ShardGroup::post(std::size_t from, std::size_t to, std::uint32_t origin,
                      Time at, InlineCallback fn) {
  const std::size_t n = sims_.size();
  math::require(from < n && to < n, "ShardGroup::post: LP index out of range");
  math::require(
      at >= sims_[from]->now() + lookahead_,
      "ShardGroup::post: message timestamp violates the lookahead bound");
  // Posts made during window i are delivered at the start of window i+1:
  // write the cell of the *other* parity. One writer per cell per window
  // (the source LP's worker), so no synchronization beyond the barrier.
  const auto parity = static_cast<std::size_t>((window_index_ + 1) & 1);
  cell(parity, to, from)
      .msgs.push_back(Message{Simulator::time_key(at), post_seq_[from]++,
                              origin, std::move(fn)});
}

void ShardGroup::prepare(std::size_t workers) {
  math::require(workers >= 1, "ShardGroup::run: need at least one worker");
  if (workers > sims_.size()) workers = sims_.size();
  workers_ = workers;
  done_ = false;
  abort_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  window_index_ = 0;
  gate_.reset(workers);
  plan();
}

void ShardGroup::finish() {
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ShardGroup::run(std::size_t workers) {
  run_with(
      [](auto&& fn) {
        return std::async(std::launch::async,
                          std::forward<decltype(fn)>(fn));
      },
      workers);
}

void ShardGroup::plan() {
  // Single-threaded: runs in prepare() or as the barrier's last-arriver
  // step with every worker quiescent. The earliest live event anywhere —
  // calendar tops and this window's still-undelivered mailbox messages —
  // lower-bounds everything that can still happen; half a lookahead past
  // it is a committable window (see header).
  std::uint64_t min_bits = Simulator::kNoEventBits;
  for (auto& s : sims_) {
    min_bits = std::min(min_bits, s->peek_next_time_bits());
  }
  const std::size_t n = sims_.size();
  const auto parity = static_cast<std::size_t>(window_index_ & 1);
  for (std::size_t to = 0; to < n; ++to) {
    for (std::size_t from = 0; from < n; ++from) {
      for (const Message& m : cell(parity, to, from).msgs) {
        min_bits = std::min(min_bits, m.time_bits);
      }
    }
  }
  if (min_bits == Simulator::kNoEventBits) {
    done_ = true;
    return;
  }
  window_end_ = std::bit_cast<Time>(min_bits) + window_step_;
}

void ShardGroup::drain(std::size_t lp, std::size_t parity) {
  const std::size_t n = sims_.size();
  auto& scratch = drain_scratch_[lp];
  scratch.clear();
  for (std::size_t from = 0; from < n; ++from) {
    auto& box = cell(parity, lp, from).msgs;
    for (Message& m : box) scratch.push_back(std::move(m));
    box.clear();
  }
  if (scratch.empty()) return;
  // Total delivery order independent of worker and shard count:
  // (time, origin, per-origin posting index). std::sort stays in place
  // (no per-window allocation); the key is total, so stability is moot.
  std::sort(scratch.begin(), scratch.end(),
            [](const Message& a, const Message& b) {
              if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
              if (a.origin != b.origin) return a.origin < b.origin;
              return a.seq < b.seq;
            });
  Simulator& dst = *sims_[lp];
  for (Message& m : scratch) {
    const Time t = std::bit_cast<Time>(m.time_bits);
    // The window invariant the pdes property test probes: a delivered
    // message must be strictly beyond the destination's committed time.
    math::require(
        t > dst.now() || dst.now() == 0.0,
        "ShardGroup: cross-shard message landed inside a committed window");
    dst.schedule_at(t, std::move(m.fn));
  }
  delivered_[lp] += scratch.size();
  scratch.clear();
}

void ShardGroup::worker_loop(std::size_t w) {
  const std::size_t n = sims_.size();
  while (!done_) {
    const auto parity = static_cast<std::size_t>(window_index_ & 1);
    const Time end = window_end_;
    if (!abort_.load(std::memory_order_relaxed)) {
      try {
        for (std::size_t lp = w; lp < n; lp += workers_) {
          drain(lp, parity);
          sims_[lp]->run_until(end);
        }
      } catch (...) {
        record_error();
      }
    }
    gate_.arrive_and_wait([this] {
      if (abort_.load(std::memory_order_relaxed)) {
        done_ = true;
        return;
      }
      ++windows_run_;
      ++window_index_;
      plan();
    });
  }
}

void ShardGroup::record_error() {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (error_ == nullptr) error_ = std::current_exception();
  }
  abort_.store(true, std::memory_order_relaxed);
}

std::uint64_t ShardGroup::messages_delivered() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t d : delivered_) total += d;
  return total;
}

std::uint64_t ShardGroup::events_executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->events_executed();
  return total;
}

}  // namespace mclat::sim
