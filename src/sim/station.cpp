#include "sim/station.h"

#include <utility>

#include "dist/exponential.h"
#include "math/numerics.h"

namespace mclat::sim {

ServiceStation::ServiceStation(Simulator& sim, dist::DistributionPtr service,
                               dist::Rng rng, DepartureHandler on_departure)
    : sim_(sim), service_(std::move(service)), rng_(rng),
      on_departure_(std::move(on_departure)), created_at_(sim.now()) {
  math::require(service_ != nullptr, "ServiceStation: null service dist");
  math::require(static_cast<bool>(on_departure_),
                "ServiceStation: null departure handler");
  if (const auto* e = dynamic_cast<const dist::Exponential*>(service_.get())) {
    exp_rate_ = e->rate();
  }
}

void ServiceStation::account_population(Time now) noexcept {
  population_integral_ +=
      static_cast<double>(in_system_) * (now - last_change_);
  last_change_ = now;
}

void ServiceStation::arrive(std::uint64_t job_id) {
  found_.add(static_cast<double>(in_system_));
  account_population(sim_.now());
  ++in_system_;
  queue_.push_back(Pending{job_id, sim_.now()});
  if (!busy_) begin_service();
}

bool ServiceStation::cancel_waiting(std::uint64_t job_id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->job_id != job_id) continue;
    account_population(sim_.now());
    --in_system_;
    queue_.erase(it);
    return true;
  }
  return false;
}

std::size_t ServiceStation::drain_waiting(std::vector<std::uint64_t>& out) {
  const std::size_t n = queue_.size();
  if (n == 0) return 0;
  account_population(sim_.now());
  in_system_ -= n;
  for (const Pending& p : queue_) out.push_back(p.job_id);
  queue_.clear();
  return n;
}

void ServiceStation::begin_service() {
  const Pending job = queue_.front();
  queue_.pop_front();
  busy_ = true;
  busy_since_ = sim_.now();
  const Time start = sim_.now();
  const double duration = exp_rate_ > 0.0 ? rng_.exponential(exp_rate_)
                                          : service_->sample(rng_);
  sim_.schedule_in(duration, [this, job, start] {
    busy_ = false;
    busy_accum_ += sim_.now() - busy_since_;
    account_population(sim_.now());
    --in_system_;
    ++completed_;
    Departure d;
    d.job_id = job.job_id;
    d.arrival = job.arrival;
    d.service_start = start;
    d.departure = sim_.now();
    waiting_.add(d.waiting_time());
    sojourn_.add(d.sojourn_time());
    if (d.arrival >= obs_from_) {
      obs::observe(obs_wait_, obs::to_us(d.waiting_time()));
      obs::observe(obs_service_, obs::to_us(d.departure - d.service_start));
    }
    if (!queue_.empty()) begin_service();
    on_departure_(d);
  });
}

double ServiceStation::time_average_number_in_system(Time now) const {
  const Time elapsed = now - created_at_;
  if (elapsed <= 0.0) return 0.0;
  const double pending_area =
      static_cast<double>(in_system_) * (now - last_change_);
  return (population_integral_ + pending_area) / elapsed;
}

double ServiceStation::utilization(Time now) const {
  const Time elapsed = now - created_at_;
  if (elapsed <= 0.0) return 0.0;
  Time busy_total = busy_accum_;
  if (busy_) busy_total += now - busy_since_;
  return busy_total / elapsed;
}

}  // namespace mclat::sim
