// key_mapper.h — the key→server mapping abstraction.
//
// In Memcached, each key is routed to one server by a client-side hash; the
// paper abstracts whatever algorithm is in use into the load-distribution
// probabilities {p_j}. This interface lets experiments choose:
//   * ModuloMapper     — hash % M, the naive scheme (near-uniform p_j);
//   * ConsistentHashRing (consistent_hash.h) — ketama-style ring (balanced
//     in expectation, with vnode-count-controlled variance);
//   * WeightedMapper (weighted_mapper.h) — engineers an arbitrary target
//     {p_j}, which is how the Fig. 10 imbalance sweep sets p1 exactly.
//
// A mapper must be *deterministic*: the same key always routes to the same
// server (Memcached's correctness depends on that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mclat::hashing {

class KeyMapper {
 public:
  virtual ~KeyMapper() = default;

  /// Server index in [0, server_count()) for this key.
  [[nodiscard]] virtual std::size_t server_for(std::string_view key) const = 0;

  [[nodiscard]] virtual std::size_t server_count() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Mutation version. Immutable mappers stay at 0 forever; a mutable
  /// mapper (ConsistentHashRing under a MembershipSchedule) bumps this on
  /// every membership change so memoized rank→server columns
  /// (workload::KeyTable::track_epochs) can revalidate lazily instead of
  /// rebuilding — only ~1/M of keys actually move per churn event.
  [[nodiscard]] virtual std::uint64_t epoch() const noexcept { return 0; }
};

/// hash(key) mod M.
class ModuloMapper final : public KeyMapper {
 public:
  explicit ModuloMapper(std::size_t servers);

  [[nodiscard]] std::size_t server_for(std::string_view key) const override;
  [[nodiscard]] std::size_t server_count() const override { return servers_; }
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t servers_;
};

}  // namespace mclat::hashing
