#include "hashing/weighted_mapper.h"

#include <algorithm>
#include <cmath>

#include "hashing/hashes.h"
#include "math/numerics.h"

namespace mclat::hashing {

WeightedMapper::WeightedMapper(std::vector<double> weights) {
  math::require(!weights.empty(), "WeightedMapper: weights must be nonempty");
  double sum = 0.0;
  for (const double w : weights) {
    math::require(w >= 0.0 && std::isfinite(w),
                  "WeightedMapper: weights must be finite and nonnegative");
    sum += w;
  }
  math::require(sum > 0.0, "WeightedMapper: weights must have a positive sum");
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / sum;
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // close rounding gaps so every key maps somewhere
}

std::size_t WeightedMapper::server_for(std::string_view key) const {
  const double u = to_unit_interval(mix64(fnv1a64(key)));
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

std::string WeightedMapper::name() const {
  return "WeightedMapper(M=" + std::to_string(cdf_.size()) + ")";
}

std::vector<double> WeightedMapper::target_shares() const {
  std::vector<double> p(cdf_.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    p[i] = cdf_[i] - prev;
    prev = cdf_[i];
  }
  return p;
}

}  // namespace mclat::hashing
