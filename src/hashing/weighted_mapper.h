// weighted_mapper.h — key→server mapping with an exact target distribution.
//
// The Fig. 10 experiment needs the largest load ratio p1 dialled precisely
// from 0.3 to 0.9. A hash ring cannot do that; this mapper treats the key's
// hash as a uniform variate and inverts the target CDF, so keys are
// deterministically assigned and the realised shares converge to {p_j} at
// rate O(1/√#keys) over any key population that hashes uniformly.
#pragma once

#include <vector>

#include "hashing/key_mapper.h"

namespace mclat::hashing {

class WeightedMapper final : public KeyMapper {
 public:
  /// `weights` is the target {p_j}; normalised internally.
  explicit WeightedMapper(std::vector<double> weights);

  [[nodiscard]] std::size_t server_for(std::string_view key) const override;
  [[nodiscard]] std::size_t server_count() const override {
    return cdf_.size();
  }
  [[nodiscard]] std::string name() const override;

  /// The normalised target shares.
  [[nodiscard]] std::vector<double> target_shares() const;

 private:
  std::vector<double> cdf_;  // inclusive prefix sums of normalised weights
};

}  // namespace mclat::hashing
