// hashes.h — deterministic string/integer hash functions.
//
// Implemented from scratch (no std::hash, whose value is unspecified across
// implementations — experiment results must be bit-reproducible):
//   * fnv1a64    — the hash memcached's clients traditionally use for
//                  key→server selection;
//   * mix64      — splitmix64 finaliser, used to derive independent uniform
//                  streams from a single key hash;
//   * hash_combine — order-sensitive combination for composite keys.
#pragma once

#include <cstdint>
#include <string_view>

namespace mclat::hashing {

/// FNV-1a, 64-bit.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// splitmix64 finaliser: a fast, well-mixed bijection on 64-bit words.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Combines a running hash with another value (boost-style, 64-bit).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// Maps a 64-bit hash to a uniform double in [0, 1).
[[nodiscard]] constexpr double to_unit_interval(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace mclat::hashing
