#include "hashing/key_mapper.h"

#include "hashing/hashes.h"
#include "math/numerics.h"

namespace mclat::hashing {

ModuloMapper::ModuloMapper(std::size_t servers) : servers_(servers) {
  math::require(servers >= 1, "ModuloMapper: need at least one server");
}

std::size_t ModuloMapper::server_for(std::string_view key) const {
  return fnv1a64(key) % servers_;
}

std::string ModuloMapper::name() const {
  return "ModuloMapper(M=" + std::to_string(servers_) + ")";
}

}  // namespace mclat::hashing
