#include "hashing/consistent_hash.h"

#include <algorithm>
#include <string>

#include "hashing/hashes.h"
#include "math/numerics.h"

namespace mclat::hashing {

namespace {
constexpr auto kByHash = [](const ConsistentHashRing::Point& a,
                            const ConsistentHashRing::Point& b) {
  return a.hash < b.hash;
};
}  // namespace

ConsistentHashRing::ConsistentHashRing(std::size_t servers, std::size_t vnodes)
    : vnodes_(vnodes) {
  math::require(servers >= 1, "ConsistentHashRing: need at least one server");
  math::require(vnodes >= 1, "ConsistentHashRing: need at least one vnode");
  // Bulk construction: append every vnode of every server, then sort the
  // whole ring once — O(SV log SV) instead of the one-sort-per-add_server
  // O(S²V log SV) that made ring setup the dominant cost of a
  // hundreds-of-servers trial. The final order is identical (same points,
  // same hash comparator), so every mapping and golden is unchanged.
  ring_.reserve(servers * vnodes);
  alive_.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    alive_.push_back(true);
    append_vnodes(next_server_++);
  }
  std::sort(ring_.begin(), ring_.end(), kByHash);
}

void ConsistentHashRing::append_vnodes(std::size_t server) {
  for (std::size_t v = 0; v < vnodes_; ++v) {
    // Deterministic vnode position: hash of "server-<s>-vnode-<v>".
    const std::string label =
        "server-" + std::to_string(server) + "-vnode-" + std::to_string(v);
    // FNV alone clusters on such similar strings; the splitmix finaliser
    // spreads the ring points uniformly (lookup mixes identically).
    ring_.push_back(
        Point{mix64(fnv1a64(label)), static_cast<std::uint32_t>(server)});
  }
}

void ConsistentHashRing::merge_tail(std::ptrdiff_t old_end) {
  // Churn-time insert: sort only the V new points, then one linear merge —
  // O(SV) per add instead of re-sorting the whole ring.
  std::sort(ring_.begin() + old_end, ring_.end(), kByHash);
  std::inplace_merge(ring_.begin(), ring_.begin() + old_end, ring_.end(),
                     kByHash);
}

std::size_t ConsistentHashRing::add_server() {
  const std::size_t s = next_server_++;
  alive_.push_back(true);
  const auto old_end = static_cast<std::ptrdiff_t>(ring_.size());
  append_vnodes(s);
  merge_tail(old_end);
  ++epoch_;
  return s;
}

void ConsistentHashRing::remove_server(std::size_t server) {
  // Validate every precondition before touching anything — a throw must
  // leave the ring exactly as it was.
  math::require(server < alive_.size(),
                "ConsistentHashRing::remove_server: server index out of range");
  math::require(alive_[server],
                "ConsistentHashRing::remove_server: server is not live");
  math::require(server_count() > 1,
                "ConsistentHashRing::remove_server: cannot remove the last "
                "live server");
  alive_[server] = false;
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [server](const Point& p) {
                               return p.server == server;
                             }),
              ring_.end());
  ++epoch_;
}

void ConsistentHashRing::revive_server(std::size_t server) {
  math::require(server < alive_.size(),
                "ConsistentHashRing::revive_server: server index out of range");
  math::require(!alive_[server],
                "ConsistentHashRing::revive_server: server is already live");
  alive_[server] = true;
  const auto old_end = static_cast<std::ptrdiff_t>(ring_.size());
  append_vnodes(server);
  merge_tail(old_end);
  ++epoch_;
}

std::size_t ConsistentHashRing::server_for(std::string_view key) const {
  const std::uint64_t h = mix64(fnv1a64(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t hh) { return p.hash < hh; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->server;
}

std::size_t ConsistentHashRing::server_count() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

std::string ConsistentHashRing::name() const {
  return "ConsistentHashRing(servers=" + std::to_string(server_count()) +
         ", vnodes=" + std::to_string(vnodes_) + ")";
}

std::vector<double> ConsistentHashRing::arc_shares() const {
  std::vector<double> share(alive_.size(), 0.0);
  if (ring_.empty()) return share;
  const double full = 18446744073709551616.0;  // 2^64
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    // Arc (previous point, this point] belongs to this point's server.
    const std::uint64_t curr = ring_[i].hash;
    const std::uint64_t prev = i == 0 ? ring_.back().hash : ring_[i - 1].hash;
    const double arc = i == 0
        ? static_cast<double>(curr) + (full - static_cast<double>(prev))
        : static_cast<double>(curr - prev);
    share[ring_[i].server] += arc / full;
  }
  return share;
}

}  // namespace mclat::hashing
