// consistent_hash.h — ketama-style consistent hashing ring.
//
// Each server owns `vnodes` points on a 64-bit ring; a key routes to the
// first point clockwise from its hash. Adding/removing a server moves only
// ~1/M of the keys — the property that makes consistent hashing the default
// in production Memcached clients. The ring also exposes the *realised*
// load shares so experiments can measure how far a finite-vnode ring is
// from the ideal uniform {p_j}.
#pragma once

#include <cstdint>
#include <vector>

#include "hashing/key_mapper.h"

namespace mclat::hashing {

class ConsistentHashRing final : public KeyMapper {
 public:
  /// One ring point: a hashed vnode label and the server owning it.
  struct Point {
    std::uint64_t hash;
    std::uint32_t server;
  };

  /// `servers` initial servers, `vnodes` ring points per server. Bulk
  /// construction sorts the ring once — O(SV log SV) — so a
  /// hundreds-of-servers mapper is cheap to stand up per trial.
  ConsistentHashRing(std::size_t servers, std::size_t vnodes = 160);

  [[nodiscard]] std::size_t server_for(std::string_view key) const override;
  [[nodiscard]] std::size_t server_count() const override;
  [[nodiscard]] std::string name() const override;

  /// Adds one fresh server at the next never-used index and returns that
  /// index (== total_slots() - 1 afterwards). Bumps epoch().
  std::size_t add_server();

  /// Removes the given server's vnodes; keys re-route to ring successors.
  /// Server indices of the remaining servers are unchanged. Validates
  /// before mutating — on throw the ring is untouched. Bumps epoch().
  void remove_server(std::size_t server);

  /// Re-adds a previously removed server at its old index. The vnode
  /// labels are a pure function of the index, so the revived server owns
  /// exactly the arcs it owned before — a rejoining node in a slot-reusing
  /// registry. Bumps epoch().
  void revive_server(std::size_t server);

  /// Mutation version: bumped by add_server/remove_server/revive_server.
  [[nodiscard]] std::uint64_t epoch() const noexcept override {
    return epoch_;
  }

  /// True iff `server` currently owns ring arcs. Indices ≥ total_slots()
  /// are simply not alive (no throw) so callers can probe freely.
  [[nodiscard]] bool is_alive(std::size_t server) const noexcept {
    return server < alive_.size() && alive_[server];
  }

  /// Total slots ever allocated (live + dead). arc_shares() has this size.
  [[nodiscard]] std::size_t total_slots() const noexcept {
    return alive_.size();
  }

  /// Fraction of ring arc owned by each server — the {p_j} this ring
  /// realises under uniformly-hashed keys. Indexed by slot: exactly 0.0
  /// for dead (removed, never-revived) servers.
  [[nodiscard]] std::vector<double> arc_shares() const;

  /// The sorted ring itself — read-only, for property tests that need to
  /// predict successors without re-deriving the vnode labelling.
  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return ring_;
  }

 private:
  /// Pushes `server`'s vnode points onto the ring unsorted; callers sort
  /// (ctor: once for everything; add_server: sort-tail + inplace_merge).
  void append_vnodes(std::size_t server);

  /// Sorts the tail appended by append_vnodes and merges it into the
  /// sorted prefix — O(SV) per mutation instead of a full re-sort.
  void merge_tail(std::ptrdiff_t old_end);

  std::size_t vnodes_;
  std::size_t next_server_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<Point> ring_;       // sorted by hash
  std::vector<bool> alive_;       // per server index
};

}  // namespace mclat::hashing
