// consistent_hash.h — ketama-style consistent hashing ring.
//
// Each server owns `vnodes` points on a 64-bit ring; a key routes to the
// first point clockwise from its hash. Adding/removing a server moves only
// ~1/M of the keys — the property that makes consistent hashing the default
// in production Memcached clients. The ring also exposes the *realised*
// load shares so experiments can measure how far a finite-vnode ring is
// from the ideal uniform {p_j}.
#pragma once

#include <cstdint>
#include <vector>

#include "hashing/key_mapper.h"

namespace mclat::hashing {

class ConsistentHashRing final : public KeyMapper {
 public:
  /// One ring point: a hashed vnode label and the server owning it.
  struct Point {
    std::uint64_t hash;
    std::uint32_t server;
  };

  /// `servers` initial servers, `vnodes` ring points per server. Bulk
  /// construction sorts the ring once — O(SV log SV) — so a
  /// hundreds-of-servers mapper is cheap to stand up per trial.
  ConsistentHashRing(std::size_t servers, std::size_t vnodes = 160);

  [[nodiscard]] std::size_t server_for(std::string_view key) const override;
  [[nodiscard]] std::size_t server_count() const override;
  [[nodiscard]] std::string name() const override;

  /// Adds one server (index = previous server_count()).
  void add_server();

  /// Removes the given server's vnodes; keys re-route to ring successors.
  /// Server indices of the remaining servers are unchanged.
  void remove_server(std::size_t server);

  /// Fraction of ring arc owned by each server — the {p_j} this ring
  /// realises under uniformly-hashed keys.
  [[nodiscard]] std::vector<double> arc_shares() const;

 private:
  /// Pushes `server`'s vnode points onto the ring unsorted; callers sort
  /// (ctor: once for everything; add_server: sort-tail + inplace_merge).
  void append_vnodes(std::size_t server);

  std::size_t vnodes_;
  std::size_t next_server_ = 0;
  std::vector<Point> ring_;       // sorted by hash
  std::vector<bool> alive_;       // per server index
};

}  // namespace mclat::hashing
