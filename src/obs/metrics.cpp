#include "obs/metrics.h"

#include <limits>

#include "obs/json_writer.h"

namespace mclat::obs {

namespace {
constexpr double kQuantiles[3] = {0.5, 0.95, 0.99};
}  // namespace

LatencyStat::LatencyStat()
    : p2_{stats::P2Quantile(kQuantiles[0]), stats::P2Quantile(kQuantiles[1]),
          stats::P2Quantile(kQuantiles[2])} {}

void LatencyStat::add(double x) {
  w_.add(x);
  for (auto& p2 : p2_) p2.add(x);
}

double LatencyStat::quantile_at(int i) const {
  if (w_.count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return merged_ ? merged_q_[i] : p2_[i].value();
}

double LatencyStat::p50() const { return quantile_at(0); }
double LatencyStat::p95() const { return quantile_at(1); }
double LatencyStat::p99() const { return quantile_at(2); }

void LatencyStat::merge(const LatencyStat& o) {
  const std::uint64_t n1 = w_.count();
  const std::uint64_t n2 = o.w_.count();
  if (n2 == 0) return;
  for (int i = 0; i < 3; ++i) {
    const double q2 = o.quantile_at(i);
    if (n1 == 0) {
      merged_q_[i] = q2;
    } else {
      const double q1 = quantile_at(i);
      merged_q_[i] = (q1 * static_cast<double>(n1) +
                      q2 * static_cast<double>(n2)) /
                     static_cast<double>(n1 + n2);
    }
  }
  merged_ = true;
  w_.merge(o.w_);
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

LatencyStat& Registry::latency(std::string_view name) {
  const auto it = latencies_.find(name);
  if (it != latencies_.end()) return it->second;
  return latencies_.emplace(std::string(name), LatencyStat{}).first->second;
}

void Registry::merge(const Registry& o) {
  for (const auto& [name, c] : o.counters_) counter(name).merge(c);
  for (const auto& [name, g] : o.gauges_) gauge(name).merge(g);
  for (const auto& [name, l] : o.latencies_) latency(name).merge(l);
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object("metrics");
  w.begin_object("counters");
  for (const auto& [name, c] : counters_) w.field(name, c.value());
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, g] : gauges_) w.field(name, g.value());
  w.end_object();
  w.begin_object("latency");
  for (const auto& [name, l] : latencies_) {
    w.begin_object(name);
    w.field("count", l.count());
    w.field("mean", l.mean());
    w.field("stddev", l.stddev());
    w.field("min", l.count() ? l.min() : 0.0);
    w.field("max", l.count() ? l.max() : 0.0);
    w.field("p50", l.p50());
    w.field("p95", l.p95());
    w.field("p99", l.p99());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::to_json() const {
  JsonWriter w;
  w.begin_document();
  write_json(w);
  w.end_object();
  return w.str();
}

std::string Registry::to_csv() const {
  CsvWriter w;
  w.cell("kind").cell("name").cell("count").cell("value").cell("mean")
      .cell("stddev").cell("min").cell("max").cell("p50").cell("p95")
      .cell("p99").end_row();
  for (const auto& [name, c] : counters_) {
    w.cell("counter").cell(name).cell(c.value()).cell(c.value())
        .cell("").cell("").cell("").cell("").cell("").cell("").cell("")
        .end_row();
  }
  for (const auto& [name, g] : gauges_) {
    w.cell("gauge").cell(name).cell("").cell(g.value()).cell("").cell("")
        .cell("").cell("").cell("").cell("").cell("").end_row();
  }
  for (const auto& [name, l] : latencies_) {
    w.cell("latency").cell(name).cell(l.count()).cell("").cell(l.mean())
        .cell(l.stddev()).cell(l.count() ? l.min() : 0.0)
        .cell(l.count() ? l.max() : 0.0).cell(l.p50()).cell(l.p95())
        .cell(l.p99()).end_row();
  }
  return w.str();
}

}  // namespace mclat::obs
