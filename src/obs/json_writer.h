// json_writer.h — the one JSON emitter behind every machine-readable output
// of the repository (CLI --json, --metrics, bench rows, golden files).
//
// Before this existed, each consumer hand-rolled its own printf("{\"...")
// block; the formats drifted and none of them escaped strings or had a
// version field. JsonWriter centralises:
//
//   * structure   — begin/end object/array with automatic comma placement,
//                   checked for balance on str();
//   * escaping    — keys and string values pass through RFC 8259 escaping
//                   (quotes, backslashes, control characters);
//   * numbers     — doubles print as fixed-point with an explicit precision
//                   (the golden files freeze these bytes), and non-finite
//                   values serialise as null: JSON has no NaN/Inf literals,
//                   and emitting them unquoted would corrupt the document;
//   * versioning  — every document opens with "schema_version" (see
//                   kSchemaVersion) so downstream parsers can dispatch.
//
// CsvWriter is the sibling emitter for tabular exports (--metrics=FILE.csv,
// MCLAT_BENCH_FORMAT=csv): RFC-4180 quoting, one str() at the end.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mclat::obs {

/// Version of the machine-readable output schema. v1 was the ad-hoc
/// printf-era format (no version field); v2 is the first JsonWriter schema.
inline constexpr int kSchemaVersion = 2;

class JsonWriter {
 public:
  /// Opens the root object and stamps "schema_version" as its first field.
  /// Most documents should use this; the bare begin_object() exists for
  /// nested writers and tests.
  JsonWriter& begin_document();

  JsonWriter& begin_object();                        ///< anonymous: root/array
  JsonWriter& begin_object(std::string_view key);    ///< "key":{
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key);     ///< "key":[
  JsonWriter& begin_array();                         ///< anonymous: nested
  JsonWriter& end_array();

  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, bool value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, int value);
  /// Fixed-point double; NaN/Inf become null (documented policy above).
  JsonWriter& field(std::string_view key, double value, int precision = 6);
  JsonWriter& null_field(std::string_view key);

  /// Array elements.
  JsonWriter& element(double value, int precision = 6);
  JsonWriter& element(std::string_view value);
  JsonWriter& element(std::uint64_t value);

  /// The finished document. Throws unless every begin_* was closed.
  [[nodiscard]] std::string str() const;

  /// The buffer so far (no balance check) — for incremental streaming.
  [[nodiscard]] const std::string& partial() const noexcept { return out_; }

 private:
  void comma();
  void key_prefix(std::string_view key);
  void append_escaped(std::string_view s);
  void append_number(double value, int precision);

  std::string out_;
  std::vector<char> stack_;  // '{' or '[' per open scope
  bool first_in_scope_ = true;
};

/// Minimal RFC-4180 CSV emitter: cells are quoted only when they contain a
/// comma, quote, or newline; embedded quotes are doubled. Numeric cells use
/// the same fixed-point/NaN policy as JsonWriter (non-finite prints empty).
class CsvWriter {
 public:
  CsvWriter& cell(std::string_view value);
  CsvWriter& cell(const char* value);
  CsvWriter& cell(double value, int precision = 6);
  CsvWriter& cell(std::uint64_t value);
  CsvWriter& end_row();

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void separator();

  std::string out_;
  bool row_open_ = false;
};

}  // namespace mclat::obs
