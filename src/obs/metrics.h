// metrics.h — the per-run metrics registry behind `mclat ... --metrics`.
//
// A Registry is a named collection of three instrument kinds:
//
//   Counter      monotone event counts (keys completed, cache misses);
//   Gauge        last-write point-in-time values (jobs, pool occupancy);
//   LatencyStat  streaming latency distributions: a Welford accumulator
//                (exact mean/variance/min/max, exactly mergeable) plus P²
//                sketches for the 50/95/99th percentiles (O(1) memory).
//
// Registries are cheap value types that live in *per-trial* state: each
// replication records into its own registry and the trial runner merges
// them strictly in trial-index order, which is what keeps `--jobs N`
// bit-for-bit invariant (the PR-1 golden-regression guarantee) even with
// observability enabled. Merging is exact for counters and Welford moments;
// P² quantile sketches cannot be merged exactly, so merge() folds them as
// the count-weighted average of the component estimates — deterministic,
// and documented as approximate. add() after merge() is unsupported.
//
// Naming convention: dotted lowercase paths with a unit suffix —
// "server.0.wait_us", "stage.total_us", "exec.trial_wall_us". Metrics under
// "exec." measure real (wall-clock) behaviour and are therefore exempt from
// the determinism guarantee; everything else is simulation-domain and must
// be byte-identical across thread counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "stats/p2_quantile.h"
#include "stats/welford.h"

namespace mclat::obs {

class JsonWriter;

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void merge(const Counter& o) noexcept { value_ += o.value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_ = value;
    set_ = true;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool is_set() const noexcept { return set_; }
  /// Last-write-wins in merge order (merges run in trial-index order, so
  /// the surviving value is the last trial's — deterministic).
  void merge(const Gauge& o) noexcept {
    if (o.set_) set(o.value_);
  }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

class LatencyStat {
 public:
  LatencyStat();

  void add(double x);

  [[nodiscard]] std::uint64_t count() const noexcept { return w_.count(); }
  [[nodiscard]] double mean() const noexcept { return w_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return w_.stddev(); }
  [[nodiscard]] double min() const noexcept { return w_.min(); }
  [[nodiscard]] double max() const noexcept { return w_.max(); }
  [[nodiscard]] const stats::Welford& welford() const noexcept { return w_; }

  /// P² estimates (NaN until the first sample).
  [[nodiscard]] double p50() const;
  [[nodiscard]] double p95() const;
  [[nodiscard]] double p99() const;

  /// Exact for moments/extremes; count-weighted-average for quantiles.
  void merge(const LatencyStat& o);

 private:
  [[nodiscard]] double quantile_at(int i) const;

  stats::Welford w_;
  stats::P2Quantile p2_[3];
  double merged_q_[3] = {0.0, 0.0, 0.0};
  bool merged_ = false;
};

/// The registry: name → instrument, one kind per namespace. Lookup creates
/// on first use (prometheus-style), so recording sites never need
/// registration boilerplate. std::map keeps export order sorted and thus
/// deterministic.
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyStat& latency(std::string_view name);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && latencies_.empty();
  }

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, LatencyStat, std::less<>>&
  latencies() const noexcept {
    return latencies_;
  }

  /// Unions by name; same-name instruments merge per their kind's rule.
  /// Call in trial-index order for deterministic results.
  void merge(const Registry& o);

  /// Writes this registry as a "metrics" object into an open JSON object:
  /// {"counters":{...},"gauges":{...},"latency":{name:{count,mean,...}}}.
  void write_json(JsonWriter& w) const;

  /// Full standalone documents.
  [[nodiscard]] std::string to_json() const;
  /// "kind,name,count,value,mean,stddev,min,max,p50,p95,p99" rows.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LatencyStat, std::less<>> latencies_;
};

}  // namespace mclat::obs
