// recorder.h — the null-object face of the metrics registry.
//
// Observability must be pay-for-what-you-use: simulation hot paths cannot
// afford map lookups or even string construction per event, and a run
// without --metrics must behave exactly like the pre-observability code.
// The pattern, used at every instrumented site:
//
//   1. A Recorder is a nullable handle to a Registry. Default-constructed,
//      it is the *null recorder*.
//   2. At setup time the site resolves named instruments once:
//      `obs::LatencyStat* wait = rec.latency("server.0.wait_us");`
//      The null recorder resolves every name to nullptr.
//   3. The hot path records through the free helpers, which compile to a
//      single predictable-not-taken branch when the pointer is null:
//      `obs::observe(wait, d.waiting_time() * 1e6);`
//
// Recorders are trivially copyable; embed them by value in config structs
// (WorkloadDrivenConfig, EndToEndConfig, ...). Because a Recorder aliases a
// Registry owned elsewhere, the owner must outlive the run — in practice
// registries live in per-trial state on the trial runner's stack.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace mclat::obs {

class Recorder {
 public:
  /// The null recorder: every lookup yields nullptr, every record a no-op.
  Recorder() = default;
  explicit Recorder(Registry& registry) : reg_(&registry) {}

  [[nodiscard]] bool enabled() const noexcept { return reg_ != nullptr; }
  [[nodiscard]] Registry* registry() const noexcept { return reg_; }

  /// Resolve instruments once at setup; nullptr when the recorder is null.
  [[nodiscard]] LatencyStat* latency(std::string_view name) const {
    return reg_ ? &reg_->latency(name) : nullptr;
  }
  [[nodiscard]] Counter* counter(std::string_view name) const {
    return reg_ ? &reg_->counter(name) : nullptr;
  }
  [[nodiscard]] Gauge* gauge(std::string_view name) const {
    return reg_ ? &reg_->gauge(name) : nullptr;
  }

 private:
  Registry* reg_ = nullptr;
};

/// Hot-path record helpers: no-ops on null handles.
inline void observe(LatencyStat* stat, double x) {
  if (stat != nullptr) stat->add(x);
}
inline void bump(Counter* counter, std::uint64_t delta = 1) {
  if (counter != nullptr) counter->add(delta);
}
inline void set_gauge(Gauge* gauge, double value) {
  if (gauge != nullptr) gauge->set(value);
}

/// Seconds → the registry's microsecond convention for latency metrics.
inline constexpr double to_us(double seconds) noexcept {
  return seconds * 1e6;
}

}  // namespace mclat::obs
