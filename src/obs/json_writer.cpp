#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "math/numerics.h"

namespace mclat::obs {

void JsonWriter::comma() {
  if (!first_in_scope_) out_ += ',';
  first_in_scope_ = false;
}

void JsonWriter::append_escaped(std::string_view s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\b': out_ += "\\b"; break;
      case '\f': out_ += "\\f"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::key_prefix(std::string_view key) {
  math::require(!stack_.empty() && stack_.back() == '{',
                "JsonWriter: keyed write outside an object");
  comma();
  append_escaped(key);
  out_ += ':';
}

void JsonWriter::append_number(double value, int precision) {
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  out_ += buf;
}

JsonWriter& JsonWriter::begin_document() {
  begin_object();
  return field("schema_version", kSchemaVersion);
}

JsonWriter& JsonWriter::begin_object() {
  math::require(stack_.empty() || stack_.back() == '[',
                "JsonWriter: anonymous object needs array or root scope");
  if (!stack_.empty()) comma();
  out_ += '{';
  stack_.push_back('{');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  stack_.push_back('{');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  math::require(!stack_.empty() && stack_.back() == '{',
                "JsonWriter: end_object without matching begin_object");
  out_ += '}';
  stack_.pop_back();
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  stack_.push_back('[');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  math::require(!stack_.empty() && stack_.back() == '[',
                "JsonWriter: anonymous array needs an array scope");
  comma();
  out_ += '[';
  stack_.push_back('[');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  math::require(!stack_.empty() && stack_.back() == '[',
                "JsonWriter: end_array without matching begin_array");
  out_ += ']';
  stack_.pop_back();
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  append_escaped(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, int value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, double value,
                              int precision) {
  key_prefix(key);
  append_number(value, precision);
  return *this;
}

JsonWriter& JsonWriter::null_field(std::string_view key) {
  key_prefix(key);
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::element(double value, int precision) {
  math::require(!stack_.empty() && stack_.back() == '[',
                "JsonWriter: element outside an array");
  comma();
  append_number(value, precision);
  return *this;
}

JsonWriter& JsonWriter::element(std::string_view value) {
  math::require(!stack_.empty() && stack_.back() == '[',
                "JsonWriter: element outside an array");
  comma();
  append_escaped(value);
  return *this;
}

JsonWriter& JsonWriter::element(std::uint64_t value) {
  math::require(!stack_.empty() && stack_.back() == '[',
                "JsonWriter: element outside an array");
  comma();
  out_ += std::to_string(value);
  return *this;
}

std::string JsonWriter::str() const {
  math::require(stack_.empty(), "JsonWriter: unbalanced document");
  return out_;
}

CsvWriter& CsvWriter::cell(std::string_view value) {
  separator();
  if (value.find_first_of(",\"\n\r") != std::string_view::npos) {
    out_ += '"';
    for (const char c : value) {
      if (c == '"') out_ += '"';
      out_ += c;
    }
    out_ += '"';
  } else {
    out_ += value;
  }
  return *this;
}

CsvWriter& CsvWriter::cell(const char* value) {
  return cell(std::string_view(value));
}

CsvWriter& CsvWriter::cell(double value, int precision) {
  separator();
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    out_ += buf;
  }
  return *this;
}

CsvWriter& CsvWriter::cell(std::uint64_t value) {
  separator();
  out_ += std::to_string(value);
  return *this;
}

CsvWriter& CsvWriter::end_row() {
  out_ += '\n';
  row_open_ = false;
  return *this;
}

void CsvWriter::separator() {
  if (row_open_) out_ += ',';
  row_open_ = true;
}

}  // namespace mclat::obs
