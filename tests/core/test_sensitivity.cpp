// §5.3 factor analysis: WhatIfAnalyzer and the db-regime classifier.
#include "core/sensitivity.h"

#include "dist/discrete.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

TEST(DbRegime, SmallNIsMissDominated) {
  EXPECT_EQ(db_regime(1, 0.01), DbRegime::kLinearInR);
  EXPECT_EQ(db_regime(10, 0.01), DbRegime::kLinearInR);
}

TEST(DbRegime, LargeNIsCountDominated) {
  EXPECT_EQ(db_regime(150, 0.01), DbRegime::kLogInR);
  EXPECT_EQ(db_regime(100'000, 0.0001), DbRegime::kLogInR);
}

TEST(DbRegime, ThresholdIsTheMissAnywhereProbability) {
  // (1-r)^N = 0.5 at N ≈ ln2/r: straddle it.
  const double r = 0.01;
  EXPECT_EQ(db_regime(60, r), DbRegime::kLinearInR);   // p_any ≈ 0.45
  EXPECT_EQ(db_regime(80, r), DbRegime::kLogInR);      // p_any ≈ 0.55
}

TEST(WhatIf, EveryLeverImprovesTheFacebookBaseline) {
  // At 78 % utilisation with skew-free load, balancing does nothing but all
  // other §5.3 levers must help.
  WhatIfAnalyzer w(SystemConfig::facebook());
  EXPECT_GT(w.halve_concurrency().improvement(), 0.0);
  EXPECT_GT(w.remove_burst().improvement(), 0.0);
  EXPECT_GT(w.speed_up_servers().improvement(), 0.0);
  EXPECT_GT(w.reduce_miss_ratio().improvement(), 0.0);
  EXPECT_GT(w.reduce_keys_per_request().improvement(), 0.0);
  EXPECT_NEAR(w.balance_load().improvement(), 0.0, 1e-9);
}

TEST(WhatIf, MissRatioBarelyMattersAtLargeN) {
  // The paper's headline recommendation: with N = 150 keys/request, halving
  // the (already tiny) miss ratio buys far less than halving N.
  WhatIfAnalyzer w(SystemConfig::facebook());
  const double by_r = w.reduce_miss_ratio(2.0).improvement();
  const double by_n = w.reduce_keys_per_request(2.0).improvement();
  EXPECT_GT(by_n, by_r);
}

TEST(WhatIf, BalancingHelpsWhenLoadIsSkewed) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.total_key_rate = 4.0 * 50'000.0;
  cfg.load_shares = dist::skewed_load(4, 0.38);
  WhatIfAnalyzer w(cfg);
  EXPECT_GT(w.balance_load().improvement(), 0.02);
}

TEST(WhatIf, SpeedupNearCliffIsDramatic) {
  // At ρ = 78 % (past the ξ=0.15 cliff of 75 %), +25 % service rate drops
  // utilisation to 62.5 % — the server stage should improve superlinearly.
  WhatIfAnalyzer w(SystemConfig::facebook());
  const FactorImpact f = w.speed_up_servers(1.25);
  EXPECT_GT(f.improvement(), 0.08);
}

TEST(WhatIf, ImpactRecordsChangeDescriptions) {
  WhatIfAnalyzer w(SystemConfig::facebook());
  const FactorImpact f = w.halve_concurrency();
  EXPECT_EQ(f.factor, "concurrency q");
  EXPECT_NE(f.change.find("0.1"), std::string::npos);
  EXPECT_GT(f.baseline, 0.0);
  EXPECT_GT(f.optimized, 0.0);
}

TEST(WhatIf, AllReturnsSixLeversAndBestIsMax) {
  WhatIfAnalyzer w(SystemConfig::facebook());
  const auto all = w.all();
  ASSERT_EQ(all.size(), 6u);
  const FactorImpact best = w.best();
  for (const auto& f : all) {
    EXPECT_LE(f.improvement(), best.improvement() + 1e-12);
  }
}

TEST(WhatIf, ReduceKeysAlsoReducesOfferedLoad) {
  // Halving N at fixed request rate halves the key rate — the analyzer must
  // model that, not just the fork-join width.
  WhatIfAnalyzer w(SystemConfig::facebook());
  const FactorImpact f = w.reduce_keys_per_request(2.0);
  // Server stage relaxes from 78 % to 39 % utilisation: big win.
  EXPECT_GT(f.improvement(), 0.2);
}

TEST(WhatIf, ValidatesFactors) {
  WhatIfAnalyzer w(SystemConfig::facebook());
  EXPECT_THROW((void)w.reduce_miss_ratio(0.5), std::invalid_argument);
  EXPECT_THROW((void)w.reduce_keys_per_request(0.0), std::invalid_argument);
  EXPECT_THROW((void)w.speed_up_servers(0.0), std::invalid_argument);
}

TEST(FactorImpact, ImprovementGuardsZeroBaseline) {
  FactorImpact f;
  f.baseline = 0.0;
  f.optimized = 1.0;
  EXPECT_EQ(f.improvement(), 0.0);
}

}  // namespace
}  // namespace mclat::core
