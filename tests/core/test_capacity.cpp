// Capacity solvers: the model inverted against latency budgets.
#include "core/capacity.h"

#include "core/theorem1.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

SystemConfig base() { return SystemConfig::facebook(); }

TEST(MaxRate, SolutionMeetsBudgetTightly) {
  const double budget = 1.2e-3;
  const auto rate = max_rate_for_budget(base(), budget);
  ASSERT_TRUE(rate.has_value());
  SystemConfig cfg = base();
  cfg.total_key_rate = *rate;
  const double at = LatencyModel(cfg).estimate().total_estimate();
  EXPECT_NEAR(at, budget, 0.01 * budget);
  // A 5 % higher rate must exceed the budget.
  cfg.total_key_rate = *rate * 1.05;
  EXPECT_GT(LatencyModel(cfg).estimate().total_estimate(), budget);
}

TEST(MaxRate, MonotoneInBudget) {
  const auto tight = max_rate_for_budget(base(), 1.05e-3);
  const auto loose = max_rate_for_budget(base(), 2.0e-3);
  ASSERT_TRUE(tight && loose);
  EXPECT_LT(*tight, *loose);
}

TEST(MaxRate, InfeasibleBudgetReturnsNullopt) {
  // The database stage alone costs ~836 µs at N=150, r=1 %.
  EXPECT_FALSE(max_rate_for_budget(base(), 500e-6).has_value());
}

TEST(MaxRate, GenerousBudgetReturnsStabilityEdge) {
  const auto rate = max_rate_for_budget(base(), 1.0);  // a full second
  ASSERT_TRUE(rate.has_value());
  // Near (but below) the 4 × 80 Kps stability ceiling.
  EXPECT_GT(*rate, 0.98 * 4.0 * 80'000.0);
  EXPECT_LT(*rate, 4.0 * 80'000.0);
}

TEST(ServiceRate, SolutionMeetsBudget) {
  const double budget = 1.0e-3;
  const auto mu = service_rate_for_budget(base(), budget);
  ASSERT_TRUE(mu.has_value());
  SystemConfig cfg = base();
  cfg.service_rate = *mu;
  EXPECT_NEAR(LatencyModel(cfg).estimate().total_estimate(), budget,
              0.01 * budget);
  EXPECT_GT(*mu, 62'500.0);  // must at least cover the offered load
}

TEST(ServiceRate, InfeasibleWhenFloorExceedsBudget) {
  EXPECT_FALSE(service_rate_for_budget(base(), 500e-6).has_value());
}

TEST(Servers, SmallestFeasibleCount) {
  SystemConfig cfg = base();
  cfg.total_key_rate = 400'000.0;
  const auto m = servers_for_budget(cfg, 1.2e-3);
  ASSERT_TRUE(m.has_value());
  // Contract: m feasible, m-1 not.
  SystemConfig check = cfg;
  check.servers = *m;
  check.load_shares.clear();
  EXPECT_LE(LatencyModel(check).estimate().total_estimate(), 1.2e-3);
  if (*m > 1) {
    check.servers = *m - 1;
    const LatencyModel tighter(check);
    const double worse = tighter.stable()
                             ? tighter.estimate().total_estimate()
                             : 1e9;
    EXPECT_GT(worse, 1.2e-3);
  }
}

TEST(Servers, InfeasibleBudget) {
  EXPECT_FALSE(servers_for_budget(base(), 500e-6, 64).has_value());
}

TEST(Servers, MoreLoadNeedsMoreServers) {
  SystemConfig light = base();
  light.total_key_rate = 200'000.0;
  SystemConfig heavy = base();
  heavy.total_key_rate = 900'000.0;
  const auto m_light = servers_for_budget(light, 1.2e-3);
  const auto m_heavy = servers_for_budget(heavy, 1.2e-3);
  ASSERT_TRUE(m_light && m_heavy);
  EXPECT_LT(*m_light, *m_heavy);
}

TEST(Capacity, ValidatesBudget) {
  EXPECT_THROW((void)max_rate_for_budget(base(), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)service_rate_for_budget(base(), -1.0),
               std::invalid_argument);
  EXPECT_THROW((void)servers_for_budget(base(), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::core
