// Tail-latency extension: exact T_D(N) distribution and T_S(N)/T(N)
// quantile machinery (beyond the paper's mean-only results).
#include <cmath>

#include "core/theorem1.h"
#include "dist/rng.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

// ------------------------------- database --------------------------------

TEST(DbTail, MaxCdfClosedFormMatchesDefinition) {
  // (1 - r e^{-μt})^N versus direct evaluation at small N.
  const DatabaseStage db(0.3, 1000.0);
  for (const double t : {0.0, 5e-4, 2e-3, 1e-2}) {
    const double f = 1.0 - std::exp(-1000.0 * t);
    // N = 2 by hand: Σ_k C(2,k) r^k (1-r)^{2-k} f^k = ((1-r) + r f)².
    const double want = std::pow(0.7 + 0.3 * f, 2.0);
    EXPECT_NEAR(db.max_cdf(2, t), want, 1e-12) << "t=" << t;
  }
}

TEST(DbTail, MaxCdfHasNoMissAtom) {
  const DatabaseStage db(0.01, 1000.0);
  EXPECT_NEAR(db.max_cdf(150, 0.0), db.p_no_miss(150), 1e-12);
  EXPECT_EQ(db.max_cdf(150, -1.0), 0.0);
}

TEST(DbTail, QuantileInvertsCdf) {
  const DatabaseStage db(0.01, 1000.0);
  for (const double k : {0.5, 0.9, 0.99, 0.999}) {
    const double t = db.max_quantile(150, k);
    if (t > 0.0) {
      EXPECT_NEAR(db.max_cdf(150, t), k, 1e-10) << "k=" << k;
    } else {
      EXPECT_GE(db.max_cdf(150, 0.0), k);
    }
  }
}

TEST(DbTail, QuantileInsideAtomIsZero) {
  // P{K=0} = 0.99^10 ≈ 0.904: the 0.5 quantile sits in the atom.
  const DatabaseStage db(0.01, 1000.0);
  EXPECT_EQ(db.max_quantile(10, 0.5), 0.0);
  EXPECT_GT(db.max_quantile(10, 0.95), 0.0);
}

TEST(DbTail, QuantileMonotoneInKAndN) {
  const DatabaseStage db(0.01, 1000.0);
  double prev = 0.0;
  for (const double k : {0.5, 0.8, 0.95, 0.99, 0.999}) {
    const double t = db.max_quantile(1000, k);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_LE(db.max_quantile(100, 0.99), db.max_quantile(10'000, 0.99));
}

TEST(DbTail, MonteCarloAgreesWithClosedForm) {
  const DatabaseStage db(0.02, 1000.0);
  dist::Rng rng(77);
  const std::uint64_t n = 200;
  const double t_probe = db.max_quantile(n, 0.9);
  int below = 0;
  const int reps = 200'000;
  for (int i = 0; i < reps; ++i) {
    double mx = 0.0;
    for (std::uint64_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.02)) mx = std::max(mx, rng.exponential(1000.0));
    }
    if (mx <= t_probe) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / reps, 0.9, 0.01);
}

TEST(DbTail, ZeroMissDegenerate) {
  const DatabaseStage db(0.0, 1000.0);
  EXPECT_EQ(db.max_cdf(100, 1.0), 1.0);
  EXPECT_EQ(db.max_quantile(100, 0.999), 0.0);
}

// ------------------------------- server ----------------------------------

TEST(ServerTail, QuantileBoundsOrderedAndMonotone) {
  const LatencyModel m(SystemConfig::facebook());
  const ServerStage& st = m.server_stage();
  double prev_upper = 0.0;
  for (const double k : {0.5, 0.9, 0.99, 0.999}) {
    const Bounds b = st.max_quantile_bounds(150, k);
    EXPECT_LE(b.lower, b.upper) << "k=" << k;
    EXPECT_GE(b.upper, prev_upper);
    prev_upper = b.upper;
  }
}

TEST(ServerTail, RequestTailIsWorseThanKeyTail) {
  // p99 of a 150-key request equals the per-key 0.99^{1/150} quantile —
  // far beyond the per-key p99.
  const LatencyModel m(SystemConfig::facebook());
  const ServerStage& st = m.server_stage();
  const double key_p99 = st.server(0).completion_quantile(0.99);
  const Bounds req_p99 = st.max_quantile_bounds(150, 0.99);
  EXPECT_GT(req_p99.lower, key_p99);
}

TEST(ServerTail, CdfBoundsConsistentWithQuantiles) {
  const LatencyModel m(SystemConfig::facebook());
  const ServerStage& st = m.server_stage();
  const Bounds q = st.max_quantile_bounds(150, 0.9);
  // At the upper quantile the lower CDF bound recovers k exactly (both are
  // computed from the completion CDF).
  const Bounds cdf_at_upper = st.max_cdf_bounds(150, q.upper);
  EXPECT_NEAR(cdf_at_upper.lower, 0.9, 1e-9);
  // The lower quantile edge carries Proposition 1's k^{1/p1} exponent, so
  // the CDF there recovers k^{1/p1} (= 0.9⁴ for 4 balanced servers), not k.
  const Bounds cdf_at_lower = st.max_cdf_bounds(150, q.lower);
  EXPECT_NEAR(cdf_at_lower.upper, std::pow(0.9, 1.0 / st.p1()), 1e-9);
  EXPECT_LE(cdf_at_lower.upper, 0.9);
}

TEST(ServerTail, HugeNStaysFinite) {
  const LatencyModel m(SystemConfig::facebook());
  const Bounds b = m.server_stage().max_quantile_bounds(10'000'000, 0.999);
  EXPECT_TRUE(std::isfinite(b.upper));
  EXPECT_GT(b.lower, 0.0);
}

// ------------------------------- composed --------------------------------

TEST(Tail, EnvelopeOrderedAndAboveMeanEstimate) {
  const LatencyModel m(SystemConfig::facebook());
  const TailEstimate p99 = m.tail(150, 0.99);
  EXPECT_LE(p99.total.lower, p99.total.upper);
  EXPECT_GE(p99.total.lower,
            std::max({p99.network, p99.server.lower, p99.database}) - 1e-15);
  // p99 must dominate the mean envelope midpoint.
  EXPECT_GT(p99.total.upper, m.estimate(150).total.midpoint());
}

TEST(Tail, QuantileLadderIsMonotone) {
  const LatencyModel m(SystemConfig::facebook());
  double prev = 0.0;
  for (const double k : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const TailEstimate t = m.tail(150, k);
    EXPECT_GE(t.total.upper, prev) << "k=" << k;
    prev = t.total.upper;
  }
}

TEST(Tail, ValidatesK) {
  const LatencyModel m(SystemConfig::facebook());
  EXPECT_THROW((void)m.tail(150, 0.0), std::invalid_argument);
  EXPECT_THROW((void)m.tail(150, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::core
