// Extensions beyond the paper: heterogeneous service rates, database
// queueing (ρ_D > 0), and request redundancy.
#include <cmath>

#include "core/redundancy.h"
#include "core/theorem1.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

// ------------------------- heterogeneous servers -------------------------

TEST(Heterogeneous, DefaultsReproduceHomogeneous) {
  SystemConfig uniform = SystemConfig::facebook();
  SystemConfig explicit_rates = uniform;
  explicit_rates.service_rates =
      std::vector<double>(uniform.servers, uniform.service_rate);
  const Bounds a = LatencyModel(uniform).server_mean_bounds(150);
  const Bounds b = LatencyModel(explicit_rates).server_mean_bounds(150);
  EXPECT_NEAR(a.lower, b.lower, 1e-12);
  EXPECT_NEAR(a.upper, b.upper, 1e-12);
}

TEST(Heterogeneous, OneSlowServerDominatesTheMax) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.total_key_rate = 4.0 * 50'000.0;  // 62.5 % at nominal speed
  SystemConfig slow = cfg;
  slow.service_rates = {60'000.0, 80'000.0, 80'000.0, 80'000.0};
  const double uniform_upper = LatencyModel(cfg).server_mean_bounds(150).upper;
  const double slow_upper = LatencyModel(slow).server_mean_bounds(150).upper;
  // The slow server runs at 83 % — the whole request pays for it.
  EXPECT_GT(slow_upper, 1.5 * uniform_upper);
}

TEST(Heterogeneous, PerServerUtilizationAccessor) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.service_rates = {100'000.0, 80'000.0, 80'000.0, 50'000.0};
  EXPECT_NEAR(cfg.server_utilization(0, 0.25), 62'500.0 / 100'000.0, 1e-12);
  EXPECT_NEAR(cfg.server_utilization(3, 0.25), 62'500.0 / 50'000.0, 1e-12);
  EXPECT_EQ(cfg.rates().size(), 4u);
}

TEST(Heterogeneous, InstabilityOfOneServerIsDetected) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.service_rates = {80'000.0, 80'000.0, 80'000.0, 60'000.0};
  // Server 3 sees 62.5 Kps against 60 Kps capacity.
  EXPECT_FALSE(LatencyModel(cfg).stable());
}

TEST(Heterogeneous, MismatchedRateVectorRejected) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.service_rates = {80'000.0, 80'000.0};  // but servers = 4
  EXPECT_THROW(LatencyModel m(cfg), std::invalid_argument);
}

TEST(Heterogeneous, GeneralizedProp1BoundsStayOrdered) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.total_key_rate = 4.0 * 40'000.0;
  cfg.service_rates = {50'000.0, 80'000.0, 120'000.0, 200'000.0};
  const LatencyModel m(cfg);
  for (double k = 0.3; k < 0.999; k += 0.1) {
    const Bounds b = m.server_stage().ts1_quantile_bounds(k);
    EXPECT_LE(b.lower, b.upper) << "k=" << k;
  }
  for (const std::uint64_t n : {1ull, 150ull, 10'000ull}) {
    const Bounds b = m.server_mean_bounds(n);
    EXPECT_LE(b.lower, b.upper) << "N=" << n;
  }
}

// ------------------------- database queueing -----------------------------

TEST(DbQueueing, RhoZeroMatchesPaperStage) {
  const DatabaseStage plain(0.01, 1000.0);
  const DatabaseStage zero(0.01, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(plain.expected_max(150), zero.expected_max(150));
  EXPECT_DOUBLE_EQ(zero.effective_rate(), 1000.0);
}

TEST(DbQueueing, LatencyScalesWithOneMinusRho) {
  // Exact M/M/1: every latency number scales by 1/(1-ρ).
  const DatabaseStage idle(0.01, 1000.0, 0.0);
  const DatabaseStage busy(0.01, 1000.0, 0.5);
  for (const std::uint64_t n : {1ull, 150ull, 10'000ull}) {
    EXPECT_NEAR(busy.expected_max(n), 2.0 * idle.expected_max(n), 1e-12);
    EXPECT_NEAR(busy.max_quantile(n, 0.99), 2.0 * idle.max_quantile(n, 0.99),
                1e-12);
  }
}

TEST(DbQueueing, ConfigDerivesUtilization) {
  SystemConfig cfg = SystemConfig::facebook();
  // r·Λ = 0.01·250 Kps = 2.5 Kps vs μ_D = 1 Kps → ρ_D = 2.5: the §5.1
  // parameters actually saturate a single-server database! The paper's
  // eq.-19 approximation silently ignores this; with db_queueing enabled
  // the model refuses.
  EXPECT_NEAR(cfg.db_utilization(), 2.5, 1e-12);
  cfg.db_queueing = true;
  EXPECT_THROW(LatencyModel m(cfg), std::invalid_argument);
  // A database fast enough to absorb the misses works and is slower than
  // the rho=0 idealisation by exactly 1/(1-ρ).
  cfg.db_service_rate = 5'000.0;  // ρ_D = 0.5
  const double with_q = LatencyModel(cfg).db_mean(150);
  cfg.db_queueing = false;
  const double without_q = LatencyModel(cfg).db_mean(150);
  EXPECT_NEAR(with_q, 2.0 * without_q, 1e-12);
}

TEST(DbQueueing, RejectsInvalidRho) {
  EXPECT_THROW(DatabaseStage(0.01, 1000.0, 1.0), std::invalid_argument);
  EXPECT_THROW(DatabaseStage(0.01, 1000.0, -0.1), std::invalid_argument);
}

// ------------------------- redundancy ------------------------------------

SystemConfig light_config(double per_server_kps) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.total_key_rate = 4.0 * per_server_kps;
  return cfg;
}

TEST(Redundancy, DOneReproducesPlainModel) {
  const SystemConfig cfg = light_config(30'000.0);
  const RedundancyModel r1(cfg, 1);
  const LatencyModel plain(cfg);
  const Bounds a = r1.expected_max_bounds(150);
  const Bounds b = plain.server_mean_bounds(150);
  EXPECT_NEAR(a.upper, b.upper, 1e-9);
  // Lower bounds differ: RedundancyModel uses the single-queue form while
  // ServerStage mixes Prop-1 over shares; both must stay ordered.
  EXPECT_LE(a.lower, a.upper);
}

TEST(Redundancy, HelpsAtLowUtilization) {
  // At 20 % load, duplicating requests (→ 40 %) still wins: the min-of-2
  // tail gain beats the inflation.
  const SystemConfig cfg = light_config(16'000.0);
  const RedundancyModel r1(cfg, 1);
  const RedundancyModel r2(cfg, 2);
  ASSERT_TRUE(r2.stable());
  EXPECT_LT(r2.expected_max_bounds(150).upper,
            r1.expected_max_bounds(150).upper);
}

TEST(Redundancy, HurtsNearTheCliff) {
  // At 45 % load, d=2 pushes utilisation to 90 % — far past the cliff.
  const SystemConfig cfg = light_config(36'000.0);
  const RedundancyModel r1(cfg, 1);
  const RedundancyModel r2(cfg, 2);
  ASSERT_TRUE(r2.stable());
  EXPECT_GT(r2.expected_max_bounds(150).upper,
            r1.expected_max_bounds(150).upper);
}

TEST(Redundancy, UnstableWhenInflationExceedsCapacity) {
  const SystemConfig cfg = light_config(45'000.0);
  EXPECT_FALSE(RedundancyModel(cfg, 2).stable());
}

TEST(Redundancy, PerKeyQuantileShrinksWithD) {
  // At fixed (already-inflated) load comparison is unfair; instead verify
  // the structural effect: at the same base config, the *stable* d=2 model
  // has a lighter per-key tail than its own d=1 queue at the same inflated
  // utilisation would suggest. Concretely: quantile(k) of min-of-2 at
  // inflated load < quantile(k) of single at inflated load.
  const SystemConfig cfg = light_config(16'000.0);
  const RedundancyModel r2(cfg, 2);
  const double single_at_inflated = r2.queue().completion_quantile(0.99);
  const double min_of_two = r2.per_key_quantile_bounds(0.99).upper;
  EXPECT_LT(min_of_two, single_at_inflated);
}

TEST(Redundancy, BestRedundancySelectsSensibly) {
  // Light load → d > 1 optimal; heavy load → d = 1.
  const auto best_light = RedundancyModel::best_redundancy(
      light_config(8'000.0), 150, 4);
  ASSERT_TRUE(best_light.has_value());
  EXPECT_GT(*best_light, 1u);
  const auto best_heavy = RedundancyModel::best_redundancy(
      light_config(60'000.0), 150, 4);
  ASSERT_TRUE(best_heavy.has_value());
  EXPECT_EQ(*best_heavy, 1u);
}

TEST(Redundancy, RequiresBalancedBase) {
  SystemConfig cfg = light_config(16'000.0);
  cfg.load_shares = {0.4, 0.2, 0.2, 0.2};
  EXPECT_THROW(RedundancyModel m(cfg, 2), std::invalid_argument);
  EXPECT_THROW(RedundancyModel m2(light_config(16'000.0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::core
