// Server stage: eq. (11)–(14) and Proposition 1.
#include "core/server_stage.h"

#include <cmath>
#include <vector>

#include "core/config.h"
#include "dist/discrete.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

ServerStage facebook_balanced() {
  const auto gap =
      dist::GeneralizedPareto::with_mean(0.15, 1.0 / (0.9 * 62'500.0));
  return ServerStage::balanced(gap, 0.1, 80'000.0, 4);
}

ServerStage skewed_stage(double p1) {
  // Aggregate Λ = 80 Kps split {p1, rest} over 4 servers (the Fig. 10 rig).
  SystemConfig cfg;
  cfg.total_key_rate = 80'000.0;
  cfg.servers = 4;
  cfg.load_shares = dist::skewed_load(4, p1);
  std::vector<GixM1Queue> queues;
  for (const double p : cfg.load_shares) {
    const auto spec = cfg.arrival_for_share(p);
    const auto gap = spec.make_gap();
    queues.emplace_back(*gap, cfg.concurrency_q, cfg.service_rate);
  }
  return ServerStage(std::move(queues), cfg.load_shares);
}

TEST(ServerStage, BalancedConstruction) {
  const ServerStage st = facebook_balanced();
  EXPECT_EQ(st.size(), 4u);
  EXPECT_NEAR(st.p1(), 0.25, 1e-12);
  EXPECT_TRUE(st.stable());
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(st.server(j).delta(), st.server(0).delta(), 1e-12);
  }
}

TEST(ServerStage, HeaviestServerIdentified) {
  const ServerStage st = skewed_stage(0.6);
  EXPECT_EQ(st.heaviest(), 0u);
  EXPECT_NEAR(st.p1(), 0.6, 1e-12);
  // The heavy server is strictly more loaded → larger δ.
  EXPECT_GT(st.server(0).delta(), st.server(1).delta());
}

TEST(ServerStage, Ts1CdfBoundsAreOrderedAndMonotone) {
  const ServerStage st = facebook_balanced();
  double prev_lo = 0.0;
  double prev_hi = 0.0;
  for (const double t : {1e-6, 1e-5, 5e-5, 2e-4, 1e-3}) {
    const Bounds b = st.ts1_cdf_bounds(t);
    EXPECT_LE(b.lower, b.upper + 1e-12) << "t=" << t;
    EXPECT_GE(b.lower, prev_lo - 1e-12);
    EXPECT_GE(b.upper, prev_hi - 1e-12);
    EXPECT_GE(b.lower, 0.0);
    EXPECT_LE(b.upper, 1.0);
    prev_lo = b.lower;
    prev_hi = b.upper;
  }
}

TEST(ServerStage, HomogeneousTs1CdfEqualsSingleServer) {
  // With identical servers, Π_j [F(t)]^{p_j} = F(t): the mixture collapses.
  const ServerStage st = facebook_balanced();
  const GixM1Queue& s0 = st.server(0);
  for (const double t : {1e-5, 1e-4, 5e-4}) {
    const Bounds b = st.ts1_cdf_bounds(t);
    EXPECT_NEAR(b.lower, s0.completion_cdf(t), 1e-9);
    EXPECT_NEAR(b.upper, s0.queueing_cdf(t), 1e-9);
  }
}

TEST(ServerStage, Proposition1QuantileOrdering) {
  const ServerStage st = skewed_stage(0.6);
  for (double k = 0.5; k < 0.999; k += 0.05) {
    const Bounds b = st.ts1_quantile_bounds(k);
    EXPECT_LE(b.lower, b.upper) << "k=" << k;
    EXPECT_GE(b.lower, 0.0);
  }
}

TEST(ServerStage, Equation14MatchesManualEvaluation) {
  const ServerStage st = facebook_balanced();
  const std::uint64_t N = 150;
  const GixM1Queue& s1 = st.server(st.heaviest());
  const double k = 150.0 / 151.0;
  const Bounds b = st.expected_max_bounds(N);
  // upper = ln(N+1)/η.
  EXPECT_NEAR(b.upper, std::log(151.0) / s1.eta(), 1e-9);
  // lower = (ln δ - ln(1 - k^{1/p1}))/η clipped at 0.
  const double k_inner = std::pow(k, 1.0 / st.p1());
  const double want_lower = std::max(
      (std::log(s1.delta()) - std::log1p(-k_inner)) / s1.eta(), 0.0);
  EXPECT_NEAR(b.lower, want_lower, 1e-9);
}

TEST(ServerStage, ExpectedMaxGrowsLogarithmicallyInN) {
  // Θ(log N): upper(N²)/upper(N) → 2 for large N (§5.2.4).
  const ServerStage st = facebook_balanced();
  const double u100 = st.expected_max_bounds(100).upper;
  const double u10000 = st.expected_max_bounds(10'000).upper;
  EXPECT_NEAR(u10000 / u100, 2.0, 0.01);
}

TEST(ServerStage, ExpectedMaxMonotoneInN) {
  const ServerStage st = facebook_balanced();
  Bounds prev = st.expected_max_bounds(1);
  for (const std::uint64_t n : {2ull, 10ull, 100ull, 1000ull, 10'000ull}) {
    const Bounds b = st.expected_max_bounds(n);
    EXPECT_GE(b.upper, prev.upper);
    EXPECT_GE(b.lower, prev.lower - 1e-12);
    prev = b;
  }
}

TEST(ServerStage, MoreImbalanceMeansMoreLatency) {
  double prev = 0.0;
  for (const double p1 : {0.25, 0.4, 0.6, 0.8}) {
    const double est = skewed_stage(p1).expected_max_estimate(150);
    EXPECT_GT(est, prev) << "p1=" << p1;
    prev = est;
  }
}

TEST(ServerStage, EstimateIsMidpoint) {
  const ServerStage st = facebook_balanced();
  const Bounds b = st.expected_max_bounds(150);
  EXPECT_DOUBLE_EQ(st.expected_max_estimate(150), b.midpoint());
}

TEST(ServerStage, ValidatesConstruction) {
  const dist::Exponential gap(1.0);
  std::vector<GixM1Queue> one;
  one.emplace_back(gap, 0.0, 2.0);
  EXPECT_THROW(ServerStage(std::move(one), {0.5, 0.5}),
               std::invalid_argument);
  std::vector<GixM1Queue> two;
  two.emplace_back(gap, 0.0, 2.0);
  two.emplace_back(gap, 0.0, 2.0);
  EXPECT_THROW(ServerStage(std::move(two), {0.5, 0.4}),
               std::invalid_argument);  // shares don't sum to 1
  const ServerStage ok = facebook_balanced();
  EXPECT_THROW((void)ok.server(4), std::invalid_argument);
  EXPECT_THROW((void)ok.expected_max_bounds(0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::core
