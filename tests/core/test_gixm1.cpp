// GI^X/M/1 latency laws (eqs. 4–9) against closed forms and ordering
// requirements.
#include "core/gixm1.h"

#include <cmath>

#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

GixM1Queue facebook_queue() {
  const auto gap = dist::GeneralizedPareto::with_mean(
      0.15, 1.0 / (0.9 * 62'500.0));
  return GixM1Queue(gap, 0.1, 80'000.0);
}

TEST(GixM1, EtaCombinesDeltaAndBatching) {
  const GixM1Queue q = facebook_queue();
  EXPECT_NEAR(q.eta(), (1.0 - q.delta()) * 0.9 * 80'000.0, 1e-6);
  EXPECT_NEAR(q.utilization(), 62'500.0 / 80'000.0, 1e-9);
  EXPECT_TRUE(q.stable());
}

TEST(GixM1, CdfFormsMatchEquations4And5) {
  const GixM1Queue q = facebook_queue();
  const double eta = q.eta();
  const double d = q.delta();
  for (const double t : {1e-6, 5e-5, 2e-4, 1e-3}) {
    EXPECT_NEAR(q.queueing_cdf(t), 1.0 - d * std::exp(-eta * t), 1e-12);
    EXPECT_NEAR(q.completion_cdf(t), 1.0 - std::exp(-eta * t), 1e-12);
  }
  EXPECT_EQ(q.queueing_cdf(-1.0), 0.0);
  EXPECT_EQ(q.completion_cdf(-1.0), 0.0);
}

TEST(GixM1, QueueingCdfHasAtomAtZero) {
  // P{T_Q = 0} = 1 - δ: a batch arriving to an idle server starts at once.
  const GixM1Queue q = facebook_queue();
  EXPECT_NEAR(q.queueing_cdf(0.0), 1.0 - q.delta(), 1e-12);
}

TEST(GixM1, QuantilesInvertTheCdfs) {
  const GixM1Queue q = facebook_queue();
  for (double k = 0.05; k < 0.999; k += 0.05) {
    EXPECT_NEAR(q.completion_cdf(q.completion_quantile(k)), k, 1e-10);
    const double tq = q.queueing_quantile(k);
    if (tq > 0.0) {
      EXPECT_NEAR(q.queueing_cdf(tq), k, 1e-10);
    } else {
      EXPECT_GE(q.queueing_cdf(0.0), k);  // the zero atom absorbs low k
    }
  }
}

TEST(GixM1, Equation9OrderingHolds) {
  const GixM1Queue q = facebook_queue();
  for (double k = 0.01; k < 0.999; k += 0.017) {
    const Bounds b = q.sojourn_quantile_bounds(k);
    EXPECT_LE(b.lower, b.upper) << "k=" << k;
    EXPECT_GE(b.lower, 0.0);
  }
}

TEST(GixM1, MeanFormsAndOrdering) {
  const GixM1Queue q = facebook_queue();
  EXPECT_NEAR(q.mean_queueing(), q.delta() / q.eta(), 1e-12);
  EXPECT_NEAR(q.mean_completion(), 1.0 / q.eta(), 1e-12);
  const Bounds m = q.mean_sojourn_bounds();
  EXPECT_LT(m.lower, m.upper);
  EXPECT_NEAR(m.midpoint(), (m.lower + m.upper) / 2.0, 1e-15);
}

TEST(GixM1, MM1SpecialCaseIsExact) {
  // Poisson arrivals without batching: the completion CDF *is* the M/M/1
  // sojourn law Exp(μ-λ) and the queueing CDF is the exact waiting law.
  const double mu = 1000.0;
  const double lambda = 700.0;
  const dist::Exponential gap(lambda);
  const GixM1Queue q(gap, 0.0, mu);
  EXPECT_NEAR(q.delta(), 0.7, 1e-9);
  EXPECT_NEAR(q.eta(), mu - lambda, 1e-5);
  EXPECT_NEAR(q.mean_completion(), 1.0 / (mu - lambda), 1e-10);
  // Exact M/M/1 waiting-time CDF: 1 - ρe^{-(μ-λ)t}.
  for (const double t : {1e-4, 1e-3, 5e-3}) {
    EXPECT_NEAR(q.queueing_cdf(t), 1.0 - 0.7 * std::exp(-300.0 * t), 1e-7);
  }
}

TEST(GixM1, BatchingInflatesLatencyLikeOneOverOneMinusQ) {
  // E[T_S] = Θ(1/(1-q)) (§5.2.1 i): with Poisson batches, δ = ρ is fixed,
  // so mean completion scales exactly as 1/(1-q).
  const double mu = 1.0;
  const double rho = 0.6;
  const auto mean_for_q = [&](double q) {
    const dist::Exponential gap((1.0 - q) * rho * mu);
    return GixM1Queue(gap, q, mu).mean_completion();
  };
  const double at_0 = mean_for_q(0.0);
  EXPECT_NEAR(mean_for_q(0.5), 2.0 * at_0, 1e-6);
  EXPECT_NEAR(mean_for_q(0.75), 4.0 * at_0, 1e-6);
}

TEST(GixM1, UnstableQueueYieldsInfiniteLatency) {
  const dist::Exponential gap(2.0);
  const GixM1Queue q(gap, 0.0, 1.0);
  EXPECT_FALSE(q.stable());
  EXPECT_TRUE(std::isinf(q.mean_completion()));
  EXPECT_TRUE(std::isinf(q.completion_quantile(0.5)));
}

TEST(GixM1, QuantileArgumentsValidated) {
  const GixM1Queue q = facebook_queue();
  EXPECT_THROW((void)q.queueing_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)q.completion_quantile(-0.1), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::core
