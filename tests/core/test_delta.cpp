// The δ-solver against closed forms and structural properties.
#include "core/delta.h"

#include <cmath>

#include "dist/deterministic.h"
#include "dist/erlang.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "dist/hyperexponential.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

TEST(Delta, PoissonArrivalsGiveDeltaEqualRho) {
  // With exponential gaps the GI/M/1 root is δ = ρ exactly — and the
  // batch-service transformation preserves this for any q: batch rate
  // (1-q)λ against batch service (1-q)μ_S.
  for (const double q : {0.0, 0.1, 0.4}) {
    for (const double rho : {0.2, 0.5, 0.78, 0.95}) {
      const double mu_s = 80'000.0;
      const double key_rate = rho * mu_s;
      const dist::Exponential gap((1.0 - q) * key_rate);
      const DeltaResult r = solve_delta(gap, q, mu_s);
      EXPECT_TRUE(r.stable);
      EXPECT_NEAR(r.utilization, rho, 1e-12);
      EXPECT_NEAR(r.delta, rho, 1e-9) << "q=" << q << " rho=" << rho;
    }
  }
}

TEST(Delta, ErlangArrivalsSatisfyPolynomialRoot) {
  // Erlang-2 gaps, q = 0: δ = (β/(β + μ(1-δ)))² — verify the residual and
  // the classic property δ < ρ (smoother arrivals wait less).
  const double mu = 1.0;
  const double rho = 0.7;
  const dist::Erlang gap = dist::Erlang::with_mean(2, 1.0 / rho);
  const DeltaResult r = solve_delta(gap, 0.0, mu);
  ASSERT_TRUE(r.stable);
  const double beta = 2.0 * rho;  // phase rate
  const double residual =
      std::pow(beta / (beta + mu * (1.0 - r.delta)), 2.0) - r.delta;
  EXPECT_NEAR(residual, 0.0, 1e-10);
  EXPECT_LT(r.delta, rho);
}

TEST(Delta, HyperExponentialWaitsMoreThanPoisson) {
  // SCV > 1 arrivals ⇒ δ > ρ at equal utilisation.
  const double mu = 1.0;
  const double rho = 0.7;
  const dist::HyperExponential gap =
      dist::HyperExponential::fit_mean_scv(1.0 / rho, 4.0);
  const DeltaResult r = solve_delta(gap, 0.0, mu);
  ASSERT_TRUE(r.stable);
  EXPECT_GT(r.delta, rho + 0.01);
  // And the defining equation holds with the closed-form transform.
  EXPECT_NEAR(gap.laplace((1.0 - r.delta) * mu), r.delta, 1e-9);
}

TEST(Delta, DeterministicArrivalsSatisfyLambertForm) {
  // D/M/1: δ = e^{-(1-δ)μ/λ}.
  const double mu = 1.0;
  const double rho = 0.8;
  const dist::Deterministic gap(1.0 / rho);
  const DeltaResult r = solve_delta(gap, 0.0, mu);
  ASSERT_TRUE(r.stable);
  EXPECT_NEAR(std::exp(-(1.0 - r.delta) / rho), r.delta, 1e-9);
  EXPECT_LT(r.delta, rho);  // clockwork arrivals wait least
}

TEST(Delta, GeneralizedParetoResidualIsZero) {
  const dist::GeneralizedPareto gap =
      dist::GeneralizedPareto::with_mean(0.15, 1.0 / (0.9 * 62'500.0));
  const DeltaResult r = solve_delta(gap, 0.1, 80'000.0);
  ASSERT_TRUE(r.stable);
  EXPECT_GT(r.delta, 0.0);
  EXPECT_LT(r.delta, 1.0);
  const double s = (1.0 - r.delta) * 0.9 * 80'000.0;
  EXPECT_NEAR(gap.laplace(s), r.delta, 1e-7);
}

TEST(Delta, IncreasesWithUtilization) {
  double prev = 0.0;
  for (const double rho : {0.2, 0.4, 0.6, 0.8, 0.9, 0.97}) {
    const dist::GeneralizedPareto gap =
        dist::GeneralizedPareto::with_mean(0.15, 1.0 / rho);
    const DeltaResult r = solve_delta(gap, 0.0, 1.0);
    EXPECT_GT(r.delta, prev) << "rho=" << rho;
    prev = r.delta;
  }
}

TEST(Delta, IncreasesWithBurstDegree) {
  double prev = 0.0;
  for (const double xi : {0.0, 0.15, 0.3, 0.5, 0.7, 0.9}) {
    const dist::GeneralizedPareto gap =
        dist::GeneralizedPareto::with_mean(xi, 1.0 / 0.6);
    const DeltaResult r = solve_delta(gap, 0.0, 1.0);
    EXPECT_GT(r.delta, prev - 1e-12) << "xi=" << xi;
    prev = r.delta;
  }
}

TEST(Delta, UnstableQueueReportsDeltaOne) {
  const dist::Exponential gap(0.9);  // key rate 0.9 vs mu 0.5: rho = 1.8
  const DeltaResult r = solve_delta(gap, 0.0, 0.5);
  EXPECT_FALSE(r.stable);
  EXPECT_EQ(r.delta, 1.0);
  EXPECT_NEAR(r.utilization, 1.8, 1e-12);
}

TEST(Delta, CriticalLoadIsUnstable) {
  const dist::Exponential gap(1.0);  // rho exactly 1
  const DeltaResult r = solve_delta(gap, 0.0, 1.0);
  EXPECT_FALSE(r.stable);
}

TEST(Delta, ScaleInvariance) {
  // Proposition 2's engine: scaling (λ, μ_S) jointly leaves δ unchanged.
  const double rho = 0.75;
  const dist::GeneralizedPareto g1 =
      dist::GeneralizedPareto::with_mean(0.3, 1.0 / rho);
  const dist::GeneralizedPareto g2 =
      dist::GeneralizedPareto::with_mean(0.3, 1.0 / (1000.0 * rho));
  const double d1 = solve_delta(g1, 0.0, 1.0).delta;
  const double d2 = solve_delta(g2, 0.0, 1000.0).delta;
  EXPECT_NEAR(d1, d2, 1e-7);
}

TEST(Delta, UncorrectedEquationGivesDifferentRoot) {
  // Ablation A1: dropping the (1-q) factor (paper eq. 6 as printed) changes
  // δ whenever q > 0.
  const dist::Exponential gap(0.9 * 0.78);
  DeltaOptions corrected;
  DeltaOptions uncorrected;
  uncorrected.batch_corrected = false;
  const double d_c = solve_delta(gap, 0.1, 1.0, corrected).delta;
  const double d_u = solve_delta(gap, 0.1, 1.0, uncorrected).delta;
  EXPECT_GT(std::abs(d_c - d_u), 0.01);
}

TEST(Delta, RejectsBadParameters) {
  const dist::Exponential gap(1.0);
  EXPECT_THROW((void)solve_delta(gap, -0.1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)solve_delta(gap, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)solve_delta(gap, 0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::core
