// MmcQueue closed forms and the Erlang B/C special functions.
#include "core/mmc.h"

#include <cmath>

#include "math/special.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

TEST(ErlangB, KnownValues) {
  // Classic table entries: B(c=1, a) = a/(1+a); B(5, 3) ≈ 0.1101.
  EXPECT_NEAR(math::erlang_b(1, 2.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(math::erlang_b(5, 3.0), 0.11005, 5e-5);
  EXPECT_NEAR(math::erlang_b(10, 5.0), 0.01838, 5e-5);
}

TEST(ErlangB, DecreasesWithServers) {
  double prev = 1.0;
  for (unsigned c = 1; c <= 12; ++c) {
    const double b = math::erlang_b(c, 4.0);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(ErlangC, SingleServerIsRho) {
  // M/M/1: P{wait} = ρ.
  for (const double rho : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(math::erlang_c(1, rho), rho, 1e-12);
  }
}

TEST(ErlangC, KnownValues) {
  // Standard call-center example: c=10, a=8 → C ≈ 0.4092.
  EXPECT_NEAR(math::erlang_c(10, 8.0), 0.4092, 5e-4);
  EXPECT_NEAR(math::erlang_c(2, 1.0), 1.0 / 3.0, 1e-9);
}

TEST(ErlangC, RejectsUnstable) {
  EXPECT_THROW((void)math::erlang_c(2, 2.0), std::invalid_argument);
  EXPECT_THROW((void)math::erlang_c(0, 0.5), std::invalid_argument);
}

TEST(MmcQueue, SingleServerReducesToMM1) {
  const MmcQueue q(1, 700.0, 1000.0);
  EXPECT_NEAR(q.p_wait(), 0.7, 1e-12);
  EXPECT_NEAR(q.mean_wait(), 0.7 / 300.0, 1e-12);
  EXPECT_NEAR(q.mean_sojourn(), 1.0 / 300.0, 1e-12);
  // M/M/1 sojourn is Exp(μ-λ).
  for (const double t : {1e-3, 5e-3}) {
    EXPECT_NEAR(q.sojourn_cdf(t), 1.0 - std::exp(-300.0 * t), 1e-9);
  }
}

TEST(MmcQueue, WaitCdfAndQuantileInvert) {
  const MmcQueue q(4, 3'000.0, 1'000.0);
  for (const double k : {0.5, 0.9, 0.99}) {
    const double t = q.wait_quantile(k);
    if (t > 0.0) {
      EXPECT_NEAR(q.wait_cdf(t), k, 1e-10);
    } else {
      EXPECT_GE(q.wait_cdf(0.0), k);
    }
  }
}

TEST(MmcQueue, SojournCdfIsProperDistribution) {
  const MmcQueue q(3, 2'000.0, 1'000.0);
  double prev = 0.0;
  for (double t = 0.0; t < 0.02; t += 5e-4) {
    const double f = q.sojourn_cdf(t);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_GT(q.sojourn_cdf(0.05), 0.999);
}

TEST(MmcQueue, SojournCdfHandlesThetaEqualMu) {
  // θ = cμ - λ = μ when λ = (c-1)μ: the Gamma(2) degenerate branch.
  const MmcQueue q(3, 2'000.0, 1'000.0);
  const double t = 1e-3;
  EXPECT_NEAR(q.sojourn_cdf(t),
              (1.0 - q.p_wait()) * (1.0 - std::exp(-1000.0 * t)) +
                  q.p_wait() * (1.0 - std::exp(-1000.0 * t) * (1.0 + 1000.0 * t)),
              1e-9);
}

TEST(MmcQueue, PoolingBeatsSharding) {
  // Classic result: one M/M/c pool outperforms c independent M/M/1 shards
  // at the same total capacity and load.
  const double lambda = 2'500.0;
  const double mu = 1'000.0;
  const unsigned c = 4;
  const MmcQueue pooled(c, lambda, mu);
  // c shards: each an M/M/1 at λ/c vs μ.
  const double shard_sojourn = 1.0 / (mu - lambda / c);
  EXPECT_LT(pooled.mean_sojourn(), shard_sojourn);
}

TEST(MmcQueue, ValidatesConstruction) {
  EXPECT_THROW(MmcQueue(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MmcQueue(2, 2'000.0, 1'000.0), std::invalid_argument);
  EXPECT_THROW(MmcQueue(2, 0.0, 1'000.0), std::invalid_argument);
}

TEST(ShardsForOffloadedDb, Section51ParametersNeedFourShards) {
  // The §5.1 miss stream (2.5 Kps) against μ_D = 1 Kps: how many shards
  // until the mean sojourn is within 10 % of the 1 ms ideal?
  const unsigned c = shards_for_offloaded_db(2'500.0, 1'000.0, 0.10);
  EXPECT_GE(c, 4u);   // 3 shards are barely stable (ρ = 0.83): too slow
  EXPECT_LE(c, 6u);
  // And the answer actually satisfies the contract.
  const MmcQueue q(c, 2'500.0, 1'000.0);
  EXPECT_LE(q.mean_sojourn(), 1.1e-3);
}

TEST(ShardsForOffloadedDb, TighterToleranceNeedsMoreShards) {
  const unsigned loose = shards_for_offloaded_db(2'500.0, 1'000.0, 0.20);
  const unsigned tight = shards_for_offloaded_db(2'500.0, 1'000.0, 0.01);
  EXPECT_GE(tight, loose);
}

}  // namespace
}  // namespace mclat::core
