// Database stage: eqs. (15)–(23) plus the exact estimators.
#include "core/db_stage.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mclat::core {
namespace {

TEST(DatabaseStage, PaperRunningExampleMatches) {
  // §5.1: r = 0.01, μ_D = 1000/s, N = 150 → E[T_D(N)] ≈ 836 µs.
  const DatabaseStage db(0.01, 1000.0);
  EXPECT_NEAR(db.expected_max(150), 836e-6, 2e-6);
}

TEST(DatabaseStage, Section22WorkedExample) {
  // §2.2: cache 200 µs, DB 10 ms, per-key average latency at r:
  // 0.98·200µs + 0.02·10ms = 396 µs vs 300 µs claimed for r = 1 % — the
  // paper's arithmetic is per-key mixture; check our primitives reproduce
  // the per-key expectation with N = 1.
  const DatabaseStage db(0.02, 100.0);  // 10 ms mean
  // With N = 1: E[T_D(1)] = r·ln(2)/μ_D... the max-approximation; the raw
  // miss cost is r/μ_D. Check the exact harmonic form: E = r·H_1/μ_D.
  EXPECT_NEAR(db.expected_max_harmonic(1), 0.02 * 0.01, 1e-9);
}

TEST(DatabaseStage, NoMissProbability) {
  const DatabaseStage db(0.01, 1000.0);
  EXPECT_NEAR(db.p_no_miss(150), std::pow(0.99, 150.0), 1e-12);
  EXPECT_EQ(db.p_no_miss(0), 1.0);
  const DatabaseStage never(0.0, 1000.0);
  EXPECT_EQ(never.p_no_miss(1000), 1.0);
}

TEST(DatabaseStage, ConditionalMissCountEquation18) {
  const DatabaseStage db(0.01, 1000.0);
  const double p_any = 1.0 - std::pow(0.99, 150.0);
  EXPECT_NEAR(db.expected_misses_given_any(150), 1.5 / p_any, 1e-9);
  // Always at least 1 given K > 0.
  EXPECT_GE(db.expected_misses_given_any(1), 1.0 - 1e-12);
}

TEST(DatabaseStage, LatencyCdfIsExponential) {
  const DatabaseStage db(0.01, 500.0);
  for (const double t : {1e-4, 1e-3, 1e-2}) {
    EXPECT_NEAR(db.latency_cdf(t), 1.0 - std::exp(-500.0 * t), 1e-12);
  }
  EXPECT_EQ(db.latency_cdf(-1.0), 0.0);
}

TEST(DatabaseStage, ZeroMissMeansZeroLatency) {
  const DatabaseStage db(0.0, 1000.0);
  EXPECT_EQ(db.expected_max(150), 0.0);
  EXPECT_EQ(db.expected_max_exact_k(150), 0.0);
  EXPECT_EQ(db.expected_max_harmonic(150), 0.0);
}

TEST(DatabaseStage, EstimatorOrderingJensen) {
  // Jensen: E[ln(K+1)] <= ln(E[K]+1)-ish ⇒ exact_k <= eq23 form; and the
  // harmonic form dominates both (H_k >= ln(k+1)).
  const DatabaseStage db(0.01, 1000.0);
  for (const std::uint64_t n : {10ull, 150ull, 1000ull, 10'000ull}) {
    const double approx = db.expected_max(n);
    const double exact_k = db.expected_max_exact_k(n);
    const double harmonic = db.expected_max_harmonic(n);
    EXPECT_LE(exact_k, approx * 1.001) << "n=" << n;
    EXPECT_GE(harmonic, exact_k) << "n=" << n;
  }
}

TEST(DatabaseStage, HarmonicFormMatchesHandComputation) {
  // N = 2, r = 0.5, μ_D = 1: P(K=0)=.25, P(1)=.5, P(2)=.25;
  // E[max] = .5·1 + .25·1.5 = 0.875.
  const DatabaseStage db(0.5, 1.0);
  EXPECT_NEAR(db.expected_max_harmonic(2), 0.875, 1e-12);
}

TEST(DatabaseStage, SmallNRegimeIsLinearInR) {
  // §5.2.3 i: for small N, halving r halves the latency.
  const double mu_d = 1000.0;
  const DatabaseStage a(0.001, mu_d);
  const DatabaseStage b(0.002, mu_d);
  EXPECT_NEAR(b.expected_max(4) / a.expected_max(4), 2.0, 0.02);
}

TEST(DatabaseStage, LargeNRegimeIsLogarithmicInR) {
  // §5.2.3 ii: for large N, halving r buys only a logarithmic sliver.
  const double mu_d = 1000.0;
  const DatabaseStage a(0.05, mu_d);
  const DatabaseStage b(0.1, mu_d);
  const double ratio = b.expected_max(10'000) / a.expected_max(10'000);
  EXPECT_LT(ratio, 1.2);
  EXPECT_GT(ratio, 1.0);
}

TEST(DatabaseStage, LargeNLimitIsApproachedFromBelow) {
  const DatabaseStage db(0.01, 1000.0);
  const double limit = db.large_n_limit(100'000);
  const double exact = db.expected_max(100'000);
  EXPECT_NEAR(exact, limit, 0.01 * limit);
}

TEST(DatabaseStage, GrowsLogarithmicallyInN) {
  const DatabaseStage db(0.01, 1000.0);
  const double at_1e3 = db.expected_max(1000);
  const double at_1e6 = db.expected_max(1'000'000);
  // ln(10^6·r)/ln(10^3·r) = ln(10⁴)/ln(10) ≈ 4 → ratio ≈ 3.85 with +1 terms.
  EXPECT_NEAR(at_1e6 / at_1e3, std::log(10'000.0 + 1.0) / std::log(11.0),
              0.15);
}

TEST(DatabaseStage, ExactKHandlesHugeN) {
  // Must not blow up: switches to the normal-limit expansion.
  const DatabaseStage db(0.01, 1000.0);
  const double v = db.expected_max_exact_k(10'000'000);
  EXPECT_GT(v, 0.0);
  EXPECT_NEAR(v, std::log(100'001.0) / 1000.0, 0.01 * v);
}

TEST(DatabaseStage, ValidatesParameters) {
  EXPECT_THROW(DatabaseStage(-0.1, 1000.0), std::invalid_argument);
  EXPECT_THROW(DatabaseStage(1.1, 1000.0), std::invalid_argument);
  EXPECT_THROW(DatabaseStage(0.01, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::core
