// Cliff analysis: Proposition 2 and the Table 4 regeneration.
#include "core/cliff.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mclat::core {
namespace {

TEST(Cliff, PoissonAnchorIsCalibrated) {
  const CliffAnalyzer c;
  EXPECT_NEAR(c.threshold(), 1.0 / 0.23, 1e-9);
  EXPECT_NEAR(c.cliff_utilization(0.0), 0.77, 0.005);
}

TEST(Cliff, DeltaAtMatchesPoissonClosedForm) {
  const CliffAnalyzer c;
  for (const double rho : {0.3, 0.6, 0.9}) {
    EXPECT_NEAR(c.delta_at(0.0, rho), rho, 1e-6) << "rho=" << rho;
  }
}

TEST(Cliff, NormalizedLatencyDivergesNearSaturation) {
  const CliffAnalyzer c;
  EXPECT_LT(c.normalized_latency(0.15, 0.3), 2.0);
  EXPECT_GT(c.normalized_latency(0.15, 0.97), 10.0);
}

TEST(Cliff, RelativeSlopeIncreasesWithRho) {
  const CliffAnalyzer c;
  double prev = 0.0;
  for (const double rho : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const double s = c.relative_slope(0.15, rho);
    EXPECT_GT(s, prev) << "rho=" << rho;
    prev = s;
  }
}

TEST(Cliff, FacebookWorkloadCliffNear75Percent) {
  // The headline number: ξ = 0.15 ⇒ cliff ≈ 75 %.
  const CliffAnalyzer c;
  EXPECT_NEAR(c.cliff_utilization(0.15), 0.75, 0.02);
}

TEST(Cliff, Table4TrendMatchesPaper) {
  // Paper's Table 4 at selected ξ. Our operational cliff definition is
  // calibrated only at ξ=0; it reproduces both ends of the table exactly
  // and sags by at most ~0.085 mid-range (full comparison in
  // EXPERIMENTS.md), so accept within 0.09 absolute.
  const CliffAnalyzer c;
  const struct {
    double xi;
    double rho;
  } rows[] = {{0.0, 0.77},  {0.15, 0.75}, {0.30, 0.72}, {0.50, 0.65},
              {0.70, 0.50}, {0.90, 0.21}, {0.95, 0.09}};
  for (const auto& row : rows) {
    EXPECT_NEAR(c.cliff_utilization(row.xi), row.rho, 0.09)
        << "xi=" << row.xi;
  }
}

TEST(Cliff, CliffUtilizationDecreasesWithBurst) {
  const CliffAnalyzer c;
  double prev = 1.0;
  for (const double xi : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    const double rho = c.cliff_utilization(xi);
    EXPECT_LT(rho, prev) << "xi=" << xi;
    EXPECT_GT(rho, 0.0);
    prev = rho;
  }
}

TEST(Cliff, Table4HasTwentyOrderedRows) {
  const CliffAnalyzer c;
  const auto rows = c.table4();
  ASSERT_EQ(rows.size(), 20u);
  EXPECT_DOUBLE_EQ(rows.front().first, 0.0);
  EXPECT_NEAR(rows.back().first, 0.95, 1e-12);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].second, rows[i - 1].second);
  }
}

TEST(Cliff, Proposition2ScaleInvarianceByConstruction) {
  // delta_at uses normalised μ_S = 1; verify against an explicit large-scale
  // solve through the public API of another Options instance — i.e. the
  // cliff depends only on (ξ, ρ), not on absolute rates.
  const CliffAnalyzer c;
  const double d_norm = c.delta_at(0.3, 0.7);
  // A second analyzer has no rate knobs at all, so equality across
  // instances demonstrates the invariance the proposition claims; the
  // underlying joint-scaling identity is tested in test_delta.cpp
  // (Delta.ScaleInvariance).
  const CliffAnalyzer c2;
  EXPECT_NEAR(d_norm, c2.delta_at(0.3, 0.7), 1e-12);
}

TEST(Cliff, ConcurrencyDoesNotMoveThePoissonCliff) {
  // δ = ρ holds for any q under Poisson batches, so the cliff stays put.
  CliffAnalyzer::Options o;
  o.concurrency_q = 0.4;
  const CliffAnalyzer c(o);
  EXPECT_NEAR(c.cliff_utilization(0.0), 0.77, 0.01);
}

TEST(Cliff, ValidatesOptions) {
  CliffAnalyzer::Options o;
  o.poisson_cliff = 1.0;
  EXPECT_THROW(CliffAnalyzer c(o), std::invalid_argument);
  const CliffAnalyzer c;
  EXPECT_THROW((void)c.delta_at(0.15, 0.0), std::invalid_argument);
  EXPECT_THROW((void)c.delta_at(0.15, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::core
