// Theorem 1 composition: the LatencyModel facade.
#include "core/theorem1.h"

#include <cmath>

#include "dist/discrete.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

TEST(LatencyModel, FacebookBaselineReproducesTable3Theory) {
  const LatencyModel m(SystemConfig::facebook());
  const LatencyEstimate e = m.estimate();
  EXPECT_EQ(e.n_keys, 150u);
  // T_N: the configured constant.
  EXPECT_DOUBLE_EQ(e.network, 20e-6);
  // T_S bounds: the paper reports 351–366 µs; our δ puts the upper bound at
  // ≈367 µs. Accept the paper band ±10 %.
  EXPECT_NEAR(e.server.upper, 366e-6, 37e-6);
  EXPECT_GT(e.server.lower, 0.0);
  EXPECT_LT(e.server.lower, e.server.upper);
  // T_D: 836 µs.
  EXPECT_NEAR(e.database, 836e-6, 5e-6);
  // Total envelope: max ≤ sum.
  EXPECT_NEAR(e.total.lower, 836e-6, 5e-6);  // DB dominates the max
  EXPECT_NEAR(e.total.upper, e.network + e.server.upper + e.database, 1e-12);
}

TEST(LatencyModel, EnvelopeIsAlwaysOrdered) {
  for (const std::uint64_t n : {1ull, 10ull, 150ull, 10'000ull}) {
    const LatencyModel m(SystemConfig::facebook());
    const LatencyEstimate e = m.estimate(n);
    EXPECT_LE(e.total.lower, e.total.upper) << "n=" << n;
    EXPECT_GE(e.total.lower,
              std::max({e.network, e.server.lower, e.database}) - 1e-15);
  }
}

TEST(LatencyModel, StableFlagTracksUtilization) {
  SystemConfig cfg = SystemConfig::facebook();
  EXPECT_TRUE(LatencyModel(cfg).stable());
  cfg.total_key_rate = 4.0 * 85'000.0;  // per-server 85 Kps > μ_S
  EXPECT_FALSE(LatencyModel(cfg).stable());
}

TEST(LatencyModel, UnbalancedLoadRaisesServerLatency) {
  SystemConfig balanced = SystemConfig::facebook();
  balanced.total_key_rate = 4.0 * 50'000.0;
  SystemConfig skewed = balanced;
  skewed.load_shares = dist::skewed_load(4, 0.35);
  const double lb = LatencyModel(balanced).estimate().server.upper;
  const double ls = LatencyModel(skewed).estimate().server.upper;
  EXPECT_GT(ls, lb);
}

TEST(LatencyModel, ServerShareValidation) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.load_shares = {0.5, 0.5, 0.0, 0.0};  // zero-load servers disallowed
  EXPECT_THROW(LatencyModel m(cfg), std::invalid_argument);
}

TEST(LatencyModel, DbMeanAndServerBoundsDelegates) {
  const LatencyModel m(SystemConfig::facebook());
  EXPECT_DOUBLE_EQ(m.db_mean(150), m.db_stage().expected_max(150));
  const Bounds direct = m.server_stage().expected_max_bounds(150);
  const Bounds via = m.server_mean_bounds(150);
  EXPECT_DOUBLE_EQ(direct.lower, via.lower);
  EXPECT_DOUBLE_EQ(direct.upper, via.upper);
}

TEST(LatencyModel, NetworkOnlyWhenCacheAlwaysHitsAndNoLoad) {
  SystemConfig cfg = SystemConfig::facebook();
  cfg.miss_ratio = 0.0;
  cfg.total_key_rate = 4.0 * 100.0;  // nearly idle servers
  const LatencyEstimate e = LatencyModel(cfg).estimate(1);
  EXPECT_EQ(e.database, 0.0);
  // Idle server: sojourn ≈ one service time (12.5 µs).
  EXPECT_LT(e.server.upper, 60e-6);
  EXPECT_NEAR(e.total.lower, std::max(e.network, e.server.lower), 1e-12);
}

TEST(LatencyEstimate, PointEstimatesAreMidpoints) {
  const LatencyModel m(SystemConfig::facebook());
  const LatencyEstimate e = m.estimate();
  EXPECT_DOUBLE_EQ(e.server_estimate(), e.server.midpoint());
  EXPECT_DOUBLE_EQ(e.total_estimate(), e.total.midpoint());
}

TEST(SystemConfig, SharesResolveBalancedDefault) {
  SystemConfig cfg;
  cfg.servers = 5;
  const auto p = cfg.shares();
  ASSERT_EQ(p.size(), 5u);
  for (const double x : p) EXPECT_NEAR(x, 0.2, 1e-15);
  cfg.load_shares = {0.7, 0.3};
  EXPECT_EQ(cfg.shares().size(), 2u);
}

TEST(SystemConfig, DerivedQuantities) {
  const SystemConfig cfg = SystemConfig::facebook();
  EXPECT_NEAR(cfg.server_key_rate(0.25), 62'500.0, 1e-9);
  EXPECT_NEAR(cfg.server_utilization(0.25), 0.78125, 1e-9);
  const auto spec = cfg.arrival_for_share(0.25);
  EXPECT_NEAR(spec.key_rate, 62'500.0, 1e-9);
  EXPECT_DOUBLE_EQ(spec.burst_xi, cfg.burst_xi);
  EXPECT_DOUBLE_EQ(spec.concurrency_q, cfg.concurrency_q);
}

}  // namespace
}  // namespace mclat::core
