#include "workload/arrival_spec.h"

#include <cmath>

#include "dist/rng.h"
#include <gtest/gtest.h>

namespace mclat::workload {
namespace {

TEST(ArrivalSpec, FacebookBaselineMatchesPaper) {
  const ArrivalSpec s = facebook_arrivals();
  EXPECT_DOUBLE_EQ(s.key_rate, 62'500.0);
  EXPECT_DOUBLE_EQ(s.concurrency_q, 0.1);
  EXPECT_DOUBLE_EQ(s.burst_xi, 0.15);
  EXPECT_EQ(s.pattern, GapPattern::kGeneralizedPareto);
  // ρ at the paper's μ_S = 80 Kps is ~78 % ("about 75 %").
  EXPECT_NEAR(s.utilization(80'000.0), 0.781, 0.001);
}

TEST(ArrivalSpec, BatchRateCarriesConcurrencyCorrection) {
  ArrivalSpec s;
  s.key_rate = 1000.0;
  s.concurrency_q = 0.2;
  EXPECT_DOUBLE_EQ(s.batch_rate(), 800.0);
  EXPECT_DOUBLE_EQ(s.mean_gap(), 1.0 / 800.0);
}

TEST(ArrivalSpec, GapMeanMatchesSpecForEveryPattern) {
  for (const GapPattern p :
       {GapPattern::kGeneralizedPareto, GapPattern::kExponential,
        GapPattern::kErlang, GapPattern::kHyperExponential,
        GapPattern::kUniform, GapPattern::kDeterministic,
        GapPattern::kWeibull}) {
    ArrivalSpec s;
    s.key_rate = 5000.0;
    s.concurrency_q = 0.1;
    s.burst_xi = 0.3;
    s.pattern = p;
    s.pattern_scv = 2.0;
    const auto gap = s.make_gap();
    EXPECT_NEAR(gap->mean(), s.mean_gap(), 1e-9 * s.mean_gap())
        << to_string(p);
  }
}

TEST(ArrivalSpec, ErlangPatternRoundsScvToPhases) {
  ArrivalSpec s;
  s.pattern = GapPattern::kErlang;
  s.pattern_scv = 0.25;  // 1/SCV = 4 phases
  const auto gap = s.make_gap();
  EXPECT_NEAR(gap->scv(), 0.25, 1e-9);
}

TEST(ArrivalSpec, HyperExpPatternHitsScv) {
  ArrivalSpec s;
  s.pattern = GapPattern::kHyperExponential;
  s.pattern_scv = 5.0;
  const auto gap = s.make_gap();
  EXPECT_NEAR(gap->scv(), 5.0, 1e-6);
}

TEST(ArrivalSpec, WithersProduceModifiedCopies) {
  const ArrivalSpec base = facebook_arrivals();
  const ArrivalSpec faster = base.with_rate(100'000.0);
  EXPECT_DOUBLE_EQ(faster.key_rate, 100'000.0);
  EXPECT_DOUBLE_EQ(base.key_rate, 62'500.0);
  EXPECT_DOUBLE_EQ(faster.burst_xi, base.burst_xi);
  const ArrivalSpec burstier = base.with_burst(0.6);
  EXPECT_DOUBLE_EQ(burstier.burst_xi, 0.6);
  const ArrivalSpec batchy = base.with_concurrency(0.5);
  EXPECT_DOUBLE_EQ(batchy.concurrency_q, 0.5);
}

TEST(ArrivalSpec, KeyRateIsPreservedEndToEnd) {
  // Sampling gaps and batch sizes together must reproduce the key rate.
  ArrivalSpec s;
  s.key_rate = 2000.0;
  s.concurrency_q = 0.25;
  s.burst_xi = 0.15;
  const auto gap = s.make_gap();
  const auto batch = s.make_batch();
  dist::Rng rng(6);
  double time = 0.0;
  double keys = 0.0;
  for (int i = 0; i < 200'000; ++i) {
    time += gap->sample(rng);
    keys += static_cast<double>(batch.sample(rng));
  }
  EXPECT_NEAR(keys / time, 2000.0, 40.0);
}

TEST(ArrivalSpec, RejectsInvalidParameters) {
  ArrivalSpec s;
  s.key_rate = 0.0;
  EXPECT_THROW((void)s.make_gap(), std::invalid_argument);
  s = facebook_arrivals();
  s.concurrency_q = 1.0;
  EXPECT_THROW((void)s.make_gap(), std::invalid_argument);
}

TEST(ArrivalSpec, WeibullPatternHitsScv) {
  ArrivalSpec s;
  s.pattern = GapPattern::kWeibull;
  for (const double scv : {0.25, 1.0, 4.0}) {
    s.pattern_scv = scv;
    const auto gap = s.make_gap();
    EXPECT_NEAR(gap->scv(), scv, 0.01 * scv) << "scv=" << scv;
    EXPECT_NEAR(gap->mean(), s.mean_gap(), 1e-9 * s.mean_gap());
  }
}

TEST(GapPattern, ToStringCoversAll) {
  EXPECT_EQ(to_string(GapPattern::kGeneralizedPareto), "GeneralizedPareto");
  EXPECT_EQ(to_string(GapPattern::kExponential), "Exponential");
  EXPECT_EQ(to_string(GapPattern::kErlang), "Erlang");
  EXPECT_EQ(to_string(GapPattern::kHyperExponential), "HyperExponential");
  EXPECT_EQ(to_string(GapPattern::kUniform), "Uniform");
  EXPECT_EQ(to_string(GapPattern::kDeterministic), "Deterministic");
  EXPECT_EQ(to_string(GapPattern::kWeibull), "Weibull");
}

}  // namespace
}  // namespace mclat::workload
