#include "workload/keyspace.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace mclat::workload {
namespace {

TEST(KeySpace, KeysAreDeterministicPerRank) {
  const KeySpace ks(1000, 1.0);
  EXPECT_EQ(ks.key_for_rank(17), ks.key_for_rank(17));
  EXPECT_NE(ks.key_for_rank(17), ks.key_for_rank(18));
}

TEST(KeySpace, RankRoundTrips) {
  const KeySpace ks(100'000, 1.0);
  for (const std::uint64_t rank : {0ull, 1ull, 42ull, 99'999ull}) {
    EXPECT_EQ(KeySpace::rank_of(ks.key_for_rank(rank)), rank);
  }
}

TEST(KeySpace, KeysHaveModelledSizes) {
  const KeySpace ks(10'000, 1.0);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < 2000; ++r) {
    const std::string k = ks.key_for_rank(r);
    ASSERT_LE(k.size(), 250u);
    ASSERT_GE(k.size(), 2u);
    sum += static_cast<double>(k.size());
  }
  EXPECT_NEAR(sum / 2000.0, 35.0, 6.0);
}

TEST(KeySpace, SamplingIsZipfSkewed) {
  const KeySpace ks(100'000, 1.0);
  dist::Rng rng(5);
  std::uint64_t head = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (ks.sample_rank(rng) < 100) ++head;
  }
  const double expected = ks.popularity().head_mass(100);
  EXPECT_NEAR(static_cast<double>(head) / n, expected, 0.02);
}

TEST(KeySpace, SampleKeyRendersSampledRank) {
  const KeySpace ks(1000, 1.0);
  dist::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const std::string k = ks.sample_key(rng);
    EXPECT_LT(KeySpace::rank_of(k), 1000u);
  }
}

TEST(KeySpace, RankOfRejectsGarbage) {
  EXPECT_THROW((void)KeySpace::rank_of(""), std::invalid_argument);
  EXPECT_THROW((void)KeySpace::rank_of("x17"), std::invalid_argument);
  EXPECT_THROW((void)KeySpace::rank_of("k###"), std::invalid_argument);
}

TEST(KeySpace, OutOfRangeRankThrows) {
  const KeySpace ks(10, 1.0);
  EXPECT_THROW((void)ks.key_for_rank(10), std::invalid_argument);
}

TEST(KeySpace, DistinctRanksGiveDistinctKeys) {
  const KeySpace ks(5000, 1.0);
  std::set<std::string> keys;
  for (std::uint64_t r = 0; r < 5000; ++r) keys.insert(ks.key_for_rank(r));
  EXPECT_EQ(keys.size(), 5000u);
}

}  // namespace
}  // namespace mclat::workload
