#include "workload/request_stream.h"

#include <gtest/gtest.h>

namespace mclat::workload {
namespace {

RequestStreamConfig small_config() {
  RequestStreamConfig c;
  c.request_rate = 100.0;
  c.keys_per_request = 20;
  c.keyspace_size = 10'000;
  c.zipf_exponent = 1.0;
  return c;
}

TEST(RequestStream, RequestsHaveNKeysAndIncreasingTimes) {
  RequestStream rs(small_config(), dist::Rng(1));
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const GeneratedRequest r = rs.next();
    EXPECT_EQ(r.key_ranks.size(), 20u);
    EXPECT_GT(r.time, prev);
    EXPECT_EQ(r.request_id, static_cast<std::uint64_t>(i));
    prev = r.time;
    for (const auto rank : r.key_ranks) EXPECT_LT(rank, 10'000u);
  }
}

TEST(RequestStream, RateMatchesConfig) {
  RequestStream rs(small_config(), dist::Rng(2));
  GeneratedRequest last;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) last = rs.next();
  EXPECT_NEAR(static_cast<double>(n) / last.time, 100.0, 3.0);
}

TEST(RequestStream, TraceHasOneRecordPerKey) {
  RequestStream rs(small_config(), dist::Rng(3));
  const Trace t = rs.generate_trace(50);
  EXPECT_EQ(t.size(), 50u * 20u);
  EXPECT_EQ(t.request_count(), 50u);
  // Keys of one request share its timestamp.
  const auto& recs = t.records();
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_EQ(recs[i].time, recs[0].time);
    EXPECT_EQ(recs[i].request_id, recs[0].request_id);
  }
}

TEST(RequestStream, KeysAreZipfSkewed) {
  RequestStream rs(small_config(), dist::Rng(4));
  const Trace t = rs.generate_trace(2000);
  std::uint64_t head = 0;
  for (const auto& r : t.records()) {
    if (r.key_rank < 100) ++head;
  }
  const double expected = rs.keyspace().popularity().head_mass(100);
  EXPECT_NEAR(static_cast<double>(head) / t.size(), expected, 0.02);
}

TEST(RequestStream, DeterministicGivenSeed) {
  RequestStream a(small_config(), dist::Rng(7));
  RequestStream b(small_config(), dist::Rng(7));
  for (int i = 0; i < 50; ++i) {
    const GeneratedRequest ra = a.next();
    const GeneratedRequest rb = b.next();
    EXPECT_EQ(ra.time, rb.time);
    EXPECT_EQ(ra.key_ranks, rb.key_ranks);
  }
}

TEST(RequestStream, ValidatesConfig) {
  RequestStreamConfig c = small_config();
  c.request_rate = 0.0;
  EXPECT_THROW(RequestStream(c, dist::Rng(1)), std::invalid_argument);
  c = small_config();
  c.keys_per_request = 0;
  EXPECT_THROW(RequestStream(c, dist::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::workload
