#include "workload/trace.h"

#include <sstream>

#include <gtest/gtest.h>

namespace mclat::workload {
namespace {

Trace sample_trace() {
  Trace t;
  t.append({0.001, 5, 0});
  t.append({0.001, 9, 0});
  t.append({0.004, 2, 1});
  t.append({0.010, 5, 2});
  return t;
}

TEST(Trace, BasicAccounting) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.size(), 4u);
  EXPECT_FALSE(t.empty());
  EXPECT_NEAR(t.duration(), 0.009, 1e-12);
  EXPECT_EQ(t.request_count(), 3u);
}

TEST(Trace, EmptyTrace) {
  const Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.duration(), 0.0);
  EXPECT_EQ(t.request_count(), 0u);
}

TEST(Trace, CsvRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  t.save_csv(ss);
  const Trace back = Trace::load_csv(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.records()[i].time, t.records()[i].time);
    EXPECT_EQ(back.records()[i].key_rank, t.records()[i].key_rank);
    EXPECT_EQ(back.records()[i].request_id, t.records()[i].request_id);
  }
}

TEST(Trace, LoadRejectsMissingHeader) {
  std::stringstream ss("0.1,2,3\n");
  EXPECT_THROW((void)Trace::load_csv(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsMalformedLine) {
  std::stringstream ss("time,key_rank,request_id\n0.1;2;3\n");
  EXPECT_THROW((void)Trace::load_csv(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsEmptyInput) {
  std::stringstream ss("");
  EXPECT_THROW((void)Trace::load_csv(ss), std::runtime_error);
}

TEST(Trace, LoadSkipsBlankLines) {
  std::stringstream ss("time,key_rank,request_id\n0.1,2,3\n\n0.2,4,5\n");
  const Trace t = Trace::load_csv(ss);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Trace, SortByTimeIsStable) {
  Trace t;
  t.append({0.5, 1, 0});
  t.append({0.1, 2, 1});
  t.append({0.5, 3, 2});  // same time as the first: must stay behind it
  t.sort_by_time();
  EXPECT_EQ(t.records()[0].key_rank, 2u);
  EXPECT_EQ(t.records()[1].key_rank, 1u);
  EXPECT_EQ(t.records()[2].key_rank, 3u);
}

}  // namespace
}  // namespace mclat::workload
