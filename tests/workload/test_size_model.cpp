#include "workload/size_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mclat::workload {
namespace {

TEST(KeySizeModel, FacebookFitProducesRealisticSizes) {
  const KeySizeModel m = KeySizeModel::facebook();
  dist::Rng rng(1);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const std::uint32_t s = m.sample(rng);
    ASSERT_GE(s, 1u);
    ASSERT_LE(s, 250u);  // memcached key limit
    sum += s;
  }
  // Atikoglu report mean key size in the mid-30s of bytes.
  EXPECT_NEAR(sum / n, 35.0, 5.0);
}

TEST(KeySizeModel, QuantileIsMonotone) {
  const KeySizeModel m = KeySizeModel::facebook();
  double prev = -1e9;
  for (double p = 0.01; p < 1.0; p += 0.02) {
    const double q = m.quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(KeySizeModel, GumbelLimitAtZeroShape) {
  // k = 0 is the Gumbel distribution: μ - σ·ln(-ln p).
  const KeySizeModel m(10.0, 2.0, 0.0);
  EXPECT_NEAR(m.quantile(std::exp(-1.0)), 10.0, 1e-9);  // -ln p = 1 → μ
}

TEST(KeySizeModel, RespectsByteBounds) {
  const KeySizeModel m(30.0, 8.0, 0.08, 20, 40);
  dist::Rng rng(2);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint32_t s = m.sample(rng);
    ASSERT_GE(s, 20u);
    ASSERT_LE(s, 40u);
  }
}

TEST(KeySizeModel, ValidatesParameters) {
  EXPECT_THROW(KeySizeModel(10.0, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(KeySizeModel(10.0, 1.0, 0.1, 10, 5), std::invalid_argument);
}

TEST(ValueSizeModel, FacebookFitMeanMatchesClosedForm) {
  const ValueSizeModel m = ValueSizeModel::facebook();
  // GP mean σ/(1-k) = 214.476/0.651762 ≈ 329 B.
  EXPECT_NEAR(m.mean(), 214.476 / (1.0 - 0.348238), 1e-9);
}

TEST(ValueSizeModel, SamplesAreHeavyTailed) {
  const ValueSizeModel m = ValueSizeModel::facebook();
  dist::Rng rng(3);
  int over_4k = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    if (m.sample(rng) > 4096) ++over_4k;
  }
  // A GP with k=0.35 puts measurable mass past 4 KiB; an exponential with
  // the same mean would put essentially none (e^{-12.4} ≈ 4e-6).
  EXPECT_GT(static_cast<double>(over_4k) / n, 1e-3);
}

TEST(ValueSizeModel, QuantileInvertsAnalytically) {
  const ValueSizeModel m(200.0, 0.3);
  // cdf(quantile(p)) = p for the GP law: verify via the closed form.
  for (double p = 0.05; p < 1.0; p += 0.1) {
    const double t = m.quantile(p);
    const double cdf = 1.0 - std::pow(1.0 + 0.3 * t / 200.0, -1.0 / 0.3);
    EXPECT_NEAR(cdf, p, 1e-10);
  }
}

TEST(ValueSizeModel, RespectsByteBounds) {
  const ValueSizeModel m(214.0, 0.34, 64, 1024);
  dist::Rng rng(4);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint32_t s = m.sample(rng);
    ASSERT_GE(s, 64u);
    ASSERT_LE(s, 1024u);
  }
}

TEST(ValueSizeModel, ValidatesParameters) {
  EXPECT_THROW(ValueSizeModel(0.0, 0.3), std::invalid_argument);
  EXPECT_THROW(ValueSizeModel(100.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ValueSizeModel(100.0, 0.3, 10, 5), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::workload
