// test_key_table.cpp — property tests pinning workload::KeyTable (the flat
// memoized keyspace metadata) to the legacy string path it replaces, and
// the prehashed LruStore overloads to their plain twins.
//
// The memo table is only allowed to exist because every column is a pure
// function of the rank that replicates the legacy computation bit for bit;
// these tests enforce that equivalence for every mapper kind, so a table
// bug shows up here instead of as a silent golden drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/lru_store.h"
#include "dist/rng.h"
#include "hashing/consistent_hash.h"
#include "hashing/hashes.h"
#include "hashing/key_mapper.h"
#include "hashing/weighted_mapper.h"
#include "workload/key_table.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"

namespace {

using namespace mclat;

constexpr std::uint64_t kKeys = 5'000;

std::vector<std::unique_ptr<hashing::KeyMapper>> all_mappers() {
  std::vector<std::unique_ptr<hashing::KeyMapper>> mappers;
  mappers.push_back(std::make_unique<hashing::ModuloMapper>(7));
  mappers.push_back(
      std::make_unique<hashing::WeightedMapper>(
          std::vector<double>{0.4, 0.3, 0.2, 0.1}));
  mappers.push_back(std::make_unique<hashing::ConsistentHashRing>(5));
  return mappers;
}

/// Random ranks plus the edges (0, n-1) and chunk boundaries.
std::vector<std::uint64_t> probe_ranks(std::uint64_t n) {
  std::vector<std::uint64_t> ranks = {0, n - 1};
  const std::uint64_t chunk = workload::KeyTable::chunk_size();
  if (n > chunk) {
    ranks.push_back(chunk - 1);
    ranks.push_back(chunk);
  }
  dist::Rng rng(4242);
  for (int i = 0; i < 2'000; ++i) {
    ranks.push_back(rng.uniform_index(n));
  }
  return ranks;
}

TEST(KeyTable, MatchesLegacyStringPathForEveryMapperKind) {
  const workload::KeySpace keys(kKeys, 0.99);
  const workload::ValueSizeModel values(214.476, 0.348238, 1, 4096);
  for (const auto& mapper : all_mappers()) {
    workload::KeyTable table(keys, *mapper, &values);
    std::string key_buf;
    for (const std::uint64_t rank : probe_ranks(kKeys)) {
      const workload::KeyTable::View kv = table.view(rank);
      // Legacy path: render the string, hash it, map it, reseed the value
      // stream — exactly what the simulators did per arrival.
      keys.key_for_rank(rank, key_buf);
      ASSERT_EQ(kv.key, key_buf) << "rank " << rank;
      ASSERT_EQ(kv.hash, hashing::fnv1a64(key_buf)) << "rank " << rank;
      ASSERT_EQ(kv.server, mapper->server_for(key_buf)) << "rank " << rank;
      dist::Rng vr(hashing::mix64(rank ^ workload::kValueSeedSalt));
      ASSERT_EQ(kv.value_bytes, values.sample(vr)) << "rank " << rank;
      ASSERT_EQ(table.server(rank), kv.server) << "rank " << rank;
    }
  }
}

TEST(KeyTable, LazyAndEagerBuildsAgree) {
  const workload::KeySpace keys(kKeys, 0.99);
  const hashing::ModuloMapper mapper(3);
  const workload::ValueSizeModel values(214.476, 0.348238, 1, 4096);
  workload::KeyTable lazy(keys, mapper, &values,
                          workload::KeyTable::Build::kLazy);
  workload::KeyTable eager(keys, mapper, &values,
                           workload::KeyTable::Build::kEager);
  for (std::uint64_t rank = 0; rank < kKeys; ++rank) {
    const workload::KeyTable::View a = lazy.view(rank);
    const workload::KeyTable::View b = eager.view(rank);
    ASSERT_EQ(a.key, b.key) << "rank " << rank;
    ASSERT_EQ(a.hash, b.hash) << "rank " << rank;
    ASSERT_EQ(a.server, b.server) << "rank " << rank;
    ASSERT_EQ(a.value_bytes, b.value_bytes) << "rank " << rank;
  }
}

TEST(KeyTable, LazyModeBuildsOnlyTouchedChunks) {
  const workload::KeySpace keys(kKeys, 0.99);
  const hashing::ModuloMapper mapper(3);
  workload::KeyTable table(keys, mapper);
  const std::uint64_t chunk = workload::KeyTable::chunk_size();
  EXPECT_EQ(table.chunks_built(), 0u);
  (void)table.server(0);
  EXPECT_EQ(table.chunks_built(), 1u);
  (void)table.view(chunk - 1);  // same chunk: no new build
  EXPECT_EQ(table.chunks_built(), 1u);
  (void)table.server(chunk);  // next chunk
  EXPECT_EQ(table.chunks_built(), 2u);
  (void)table.view(kKeys - 1);  // last (partial) chunk
  EXPECT_EQ(table.chunks_built(), 3u);
  EXPECT_EQ(table.chunk_count(), (kKeys + chunk - 1) / chunk);
}

TEST(KeyTable, EagerModeBuildsEverythingUpFront) {
  const workload::KeySpace keys(kKeys, 0.99);
  const hashing::ModuloMapper mapper(3);
  workload::KeyTable table(keys, mapper, nullptr,
                           workload::KeyTable::Build::kEager);
  EXPECT_EQ(table.chunks_built(), table.chunk_count());
}

TEST(KeyTable, ValueColumnIsZeroWithoutSizeModel) {
  const workload::KeySpace keys(2'000, 0.99);
  const hashing::ModuloMapper mapper(3);
  workload::KeyTable table(keys, mapper);
  dist::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(table.view(rng.uniform_index(2'000)).value_bytes, 0u);
  }
}

// ---- prehashed LruStore overloads vs their plain twins --------------------

TEST(KeyTable, PrehashedStoreOpsMatchPlainStoreOps) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 1u << 20;  // small enough to force evictions
  cfg.page_size = 16 * 1024;
  cache::LruStore plain(cfg);
  cache::LruStore hashed(cfg);

  const workload::KeySpace keys(3'000, 0.99);
  const hashing::WeightedMapper mapper(std::vector<double>{0.5, 0.5});
  const workload::ValueSizeModel values(214.476, 0.348238, 1, 2048);
  workload::KeyTable table(keys, mapper, &values);

  dist::Rng rng(33);
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t rank = keys.sample_rank(rng);
    const workload::KeyTable::View kv = table.view(rank);
    const std::string key(kv.key);
    const double now = static_cast<double>(op) * 1e-3;
    if (op % 3 == 0) {
      const bool a = plain.set_sized(key, kv.value_bytes, now);
      const bool b = hashed.set_sized_hashed(kv.key, kv.hash, kv.value_bytes,
                                             now);
      ASSERT_EQ(a, b) << "set at op " << op;
    } else {
      const auto a = plain.get(key, now);
      const auto b = hashed.get(kv.key, kv.hash, now);
      ASSERT_EQ(a.has_value(), b.has_value()) << "get at op " << op;
      ASSERT_EQ(plain.contains(key, now), hashed.contains(kv.key, kv.hash, now))
          << "contains at op " << op;
    }
  }
  // Two stores driven through different entry points must be in identical
  // states: same population, same hit/miss/eviction accounting.
  EXPECT_EQ(plain.size(), hashed.size());
  EXPECT_EQ(plain.stats().gets, hashed.stats().gets);
  EXPECT_EQ(plain.stats().hits, hashed.stats().hits);
  EXPECT_EQ(plain.stats().misses, hashed.stats().misses);
  EXPECT_EQ(plain.stats().sets, hashed.stats().sets);
  EXPECT_EQ(plain.stats().evictions, hashed.stats().evictions);
}

}  // namespace
