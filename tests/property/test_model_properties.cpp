// Property sweeps over the analytical model: the monotonicity and ordering
// laws that must hold at EVERY point of the parameter space the paper's
// figures sweep, not just the cases unit tests pin down.
#include <cmath>
#include <cstdint>
#include <string>

#include "core/cliff.h"
#include "core/db_stage.h"
#include "core/sensitivity.h"
#include "core/theorem1.h"
#include "dist/discrete.h"
#include <gtest/gtest.h>

namespace mclat::core {
namespace {

SystemConfig base_config() { return SystemConfig::facebook(); }

// ---------------------------------------------------------------- server --

class ConcurrencySweep : public ::testing::TestWithParam<double> {};

TEST_P(ConcurrencySweep, ServerLatencyIncreasesWithQ) {
  const double q = GetParam();
  SystemConfig lo = base_config();
  lo.concurrency_q = q;
  SystemConfig hi = base_config();
  hi.concurrency_q = q + 0.05;
  EXPECT_LT(LatencyModel(lo).estimate().server.upper,
            LatencyModel(hi).estimate().server.upper)
      << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(QGrid, ConcurrencySweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4),
                         [](const auto& pinfo) {
                           return "q" + std::to_string(static_cast<int>(
                                            pinfo.param * 100));
                         });

class BurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(BurstSweep, ServerLatencyIncreasesWithXi) {
  const double xi = GetParam();
  SystemConfig lo = base_config();
  lo.burst_xi = xi;
  SystemConfig hi = base_config();
  hi.burst_xi = xi + 0.05;
  EXPECT_LE(LatencyModel(lo).estimate().server.upper,
            LatencyModel(hi).estimate().server.upper * (1.0 + 1e-9))
      << "xi=" << xi;
}

TEST_P(BurstSweep, BoundsStayOrderedAcrossN) {
  SystemConfig cfg = base_config();
  cfg.burst_xi = GetParam();
  const LatencyModel m(cfg);
  for (const std::uint64_t n : {1ull, 5ull, 50ull, 500ull, 5000ull}) {
    const Bounds b = m.server_mean_bounds(n);
    EXPECT_LE(b.lower, b.upper) << "xi=" << GetParam() << " N=" << n;
    EXPECT_GE(b.lower, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(XiGrid, BurstSweep,
                         ::testing::Values(0.0, 0.15, 0.3, 0.45, 0.6),
                         [](const auto& pinfo) {
                           return "xi" + std::to_string(static_cast<int>(
                                             pinfo.param * 100));
                         });

class RateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateSweep, ServerLatencyIncreasesWithLoad) {
  const double lambda = GetParam();
  SystemConfig lo = base_config();
  lo.total_key_rate = 4.0 * lambda;
  SystemConfig hi = base_config();
  hi.total_key_rate = 4.0 * (lambda + 5'000.0);
  EXPECT_LT(LatencyModel(lo).estimate().server.upper,
            LatencyModel(hi).estimate().server.upper)
      << "lambda=" << lambda;
}

TEST_P(RateSweep, LatencyDecreasesWithServiceRate) {
  SystemConfig cfg = base_config();
  cfg.total_key_rate = 4.0 * GetParam();
  SystemConfig faster = cfg;
  faster.service_rate = cfg.service_rate * 1.2;
  EXPECT_GT(LatencyModel(cfg).estimate().server.upper,
            LatencyModel(faster).estimate().server.upper);
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, RateSweep,
                         ::testing::Values(10'000.0, 30'000.0, 50'000.0,
                                           65'000.0, 74'000.0),
                         [](const auto& pinfo) {
                           return "kps" + std::to_string(static_cast<int>(
                                              pinfo.param / 1000));
                         });

class ImbalanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ImbalanceSweep, LatencyIncreasesWithP1) {
  const double p1 = GetParam();
  SystemConfig lo = base_config();
  lo.total_key_rate = 80'000.0;
  lo.load_shares = dist::skewed_load(4, p1);
  SystemConfig hi = lo;
  hi.load_shares = dist::skewed_load(4, p1 + 0.05);
  EXPECT_LT(LatencyModel(lo).estimate().server.upper,
            LatencyModel(hi).estimate().server.upper)
      << "p1=" << p1;
}

TEST_P(ImbalanceSweep, Proposition1BoundsStayOrdered) {
  SystemConfig cfg = base_config();
  cfg.total_key_rate = 80'000.0;
  cfg.load_shares = dist::skewed_load(4, GetParam());
  const LatencyModel m(cfg);
  for (double k = 0.5; k < 0.999; k += 0.1) {
    const Bounds b = m.server_stage().ts1_quantile_bounds(k);
    EXPECT_LE(b.lower, b.upper) << "p1=" << GetParam() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(P1Grid, ImbalanceSweep,
                         ::testing::Values(0.3, 0.45, 0.6, 0.75, 0.85),
                         [](const auto& pinfo) {
                           return "p1_" + std::to_string(static_cast<int>(
                                              pinfo.param * 100));
                         });

// -------------------------------------------------------------- database --

class MissSweep : public ::testing::TestWithParam<double> {};

TEST_P(MissSweep, DbLatencyIncreasesWithR) {
  const double r = GetParam();
  const DatabaseStage lo(r, 1000.0);
  const DatabaseStage hi(r * 2.0, 1000.0);
  for (const std::uint64_t n : {1ull, 10ull, 150ull, 10'000ull}) {
    EXPECT_LT(lo.expected_max(n), hi.expected_max(n))
        << "r=" << r << " N=" << n;
  }
}

TEST_P(MissSweep, DbLatencyIncreasesWithN) {
  const DatabaseStage db(GetParam(), 1000.0);
  double prev = 0.0;
  for (const std::uint64_t n : {1ull, 4ull, 16ull, 256ull, 65'536ull}) {
    const double v = db.expected_max(n);
    EXPECT_GE(v, prev) << "r=" << GetParam() << " N=" << n;
    prev = v;
  }
}

TEST_P(MissSweep, EstimatorsAgreeWithinMaxApproxError) {
  // approx (eq. 23) and exact-harmonic differ by at most γ/μ_D + Jensen
  // slack — a bounded, explainable gap everywhere in the sweep.
  const DatabaseStage db(GetParam(), 1000.0);
  for (const std::uint64_t n : {10ull, 150ull, 2000ull}) {
    const double a = db.expected_max(n);
    const double h = db.expected_max_harmonic(n);
    EXPECT_LE(std::abs(h - a), 0.65e-3 + 0.2 * h)
        << "r=" << GetParam() << " N=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(RGrid, MissSweep,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 5e-2),
                         [](const auto& pinfo) {
                           return "r1e" + std::to_string(static_cast<int>(
                                              -std::log10(pinfo.param)));
                         });

// ------------------------------------------------------------------ cliff --

class CliffSweep : public ::testing::TestWithParam<double> {};

TEST_P(CliffSweep, CliffDropsMonotonicallyAndStaysInRange) {
  const CliffAnalyzer c;
  const double xi = GetParam();
  const double rho_star = c.cliff_utilization(xi);
  EXPECT_GT(rho_star, 0.02);
  EXPECT_LT(rho_star, 0.99);
  EXPECT_LE(c.cliff_utilization(xi + 0.04), rho_star + 1e-6);
}

TEST_P(CliffSweep, NormalizedLatencyIsMonotoneInRho) {
  const CliffAnalyzer c;
  const double xi = GetParam();
  double prev = 0.0;
  for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double w = c.normalized_latency(xi, rho);
    EXPECT_GT(w, prev) << "xi=" << xi << " rho=" << rho;
    prev = w;
  }
}

INSTANTIATE_TEST_SUITE_P(CliffXiGrid, CliffSweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8),
                         [](const auto& pinfo) {
                           return "xi" + std::to_string(static_cast<int>(
                                             pinfo.param * 100));
                         });

// --------------------------------------------------------------- envelope --

class EnvelopeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvelopeSweep, Theorem1EnvelopeConsistentEverywhere) {
  const LatencyModel m(base_config());
  const LatencyEstimate e = m.estimate(GetParam());
  EXPECT_LE(e.total.lower, e.total.upper);
  EXPECT_GE(e.total.lower,
            std::max({e.network, e.server.lower, e.database}) - 1e-15);
  EXPECT_NEAR(e.total.upper, e.network + e.server.upper + e.database, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(NGrid, EnvelopeSweep,
                         ::testing::Values(1, 10, 150, 2000, 100'000),
                         [](const auto& pinfo) {
                           return "N" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace mclat::core
