// test_alias_discrete.cpp — property tests pinning dist::Discrete's
// one-uniform alias sampler to an independent classical CDF search.
//
// A Vose alias table and textbook CDF inversion realise the same
// distribution through *different* partitions of [0,1): for weights
// {0.75, 0.25} the CDF sampler maps [0, 0.75) → 0 while the alias table
// maps [0, 0.5)∪[0.625, 1) → 0 (bucket 1 keeps only half its range).
// Sample-for-sample agreement with plain CDF inversion is therefore
// impossible by construction. What *is* checkable, and what these tests
// check, is stronger than distribution-level agreement:
//
//   1. a classical binary CDF search over the alias partition's own
//      breakpoints reproduces sample_at(u) sample-for-sample;
//   2. the exact Lebesgue measure the alias partition assigns each
//      category equals the normalised pmf (≤ 1e-12, i.e. the table is not
//      just approximately right);
//   3. sample() consumes exactly one rng.uniform() per draw, in lockstep
//      with a twin stream (the contract the goldens pin).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "dist/discrete.h"
#include "dist/rng.h"

namespace {

using namespace mclat;

/// Classical CDF-inversion sampler over the alias table's partition of
/// [0,1): every bucket k contributes segment [k, k+accept_k) → k and
/// [k+accept_k, k+1) → alias_k (in u·K "scaled" coordinates, where the
/// breakpoints are cheap to represent). Draws invert u by binary search
/// over the sorted breakpoint list — the O(log K) search the alias lookup
/// replaces with O(1) indexing.
class CdfSearchTwin {
 public:
  explicit CdfSearchTwin(const dist::Discrete& d) : k_(d.cells().size()) {
    const auto& cells = d.cells();
    for (std::size_t k = 0; k < cells.size(); ++k) {
      const double kd = static_cast<double>(k);
      upper_.push_back(kd + cells[k].accept);
      cat_.push_back(k);
      upper_.push_back(kd + 1.0);
      cat_.push_back(cells[k].alias);
    }
    // When u·K rounds up to exactly K, sample_at clamps into the last
    // bucket with coin = 1.0, which always rejects (accept ≤ 1) — i.e.
    // that rounding sliver belongs to the last bucket's alias.
    overflow_cat_ = cells.back().alias;
  }

  [[nodiscard]] std::size_t sample(dist::Rng& rng) const {
    return sample_at(rng.uniform());
  }

  [[nodiscard]] std::size_t sample_at(double u) const {
    const double scaled = u * static_cast<double>(k_);
    if (scaled >= static_cast<double>(k_)) return overflow_cat_;
    const auto it = std::upper_bound(upper_.begin(), upper_.end(), scaled);
    return cat_[static_cast<std::size_t>(it - upper_.begin())];
  }

 private:
  std::size_t k_;
  std::vector<double> upper_;    // sorted segment upper breakpoints (scaled)
  std::vector<std::size_t> cat_; // category of the segment below upper_[i]
  std::size_t overflow_cat_;
};

/// Exact measure the alias partition assigns category j: Σ over buckets of
/// accept/K (own share) and (1-accept)/K (donated share).
std::vector<double> partition_measure(const dist::Discrete& d) {
  const auto& cells = d.cells();
  const double k = static_cast<double>(cells.size());
  std::vector<double> measure(cells.size(), 0.0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    measure[i] += cells[i].accept / k;
    measure[cells[i].alias] += (1.0 - cells[i].accept) / k;
  }
  return measure;
}

const std::vector<std::vector<double>> kWeightCases = {
    {1.0},                          // single entry: every u → 0
    {0.75, 0.25},                   // the canonical CDF-vs-alias example
    {0.0, 1.0},                     // zero share in bucket 0
    {0.3, 0.0, 0.45, 0.0, 0.25},    // interleaved zero shares
    {1.0, 1.0, 1.0, 1.0},           // exactly uniform (all accept = 1)
    {5.0, 1.0, 1.0, 1.0},           // one dominant donor
    {1e-9, 1.0, 1e-9, 2.0, 0.5},    // tiny-but-positive shares
};

std::vector<double> zipfish(std::size_t k) {
  std::vector<double> w(k);
  for (std::size_t i = 0; i < k; ++i) w[i] = 1.0 / static_cast<double>(i + 1);
  return w;
}

TEST(AliasDiscrete, CdfSearchOverAliasPartitionAgreesSampleForSample) {
  for (const auto& weights : kWeightCases) {
    const dist::Discrete d(weights);
    const CdfSearchTwin twin(d);
    dist::Rng a(2024);
    dist::Rng b(2024);
    for (int i = 0; i < 200'000; ++i) {
      ASSERT_EQ(d.sample(a), twin.sample(b))
          << "diverged at draw " << i << " for K=" << weights.size();
    }
  }
}

TEST(AliasDiscrete, CdfSearchAgreesOnLargeZipfishTable) {
  const dist::Discrete d(zipfish(1024));
  const CdfSearchTwin twin(d);
  dist::Rng a(7);
  dist::Rng b(7);
  for (int i = 0; i < 200'000; ++i) {
    ASSERT_EQ(d.sample(a), twin.sample(b)) << "diverged at draw " << i;
  }
}

TEST(AliasDiscrete, CdfSearchAgreesOnEdgeUs) {
  for (const auto& weights : kWeightCases) {
    const dist::Discrete d(weights);
    const CdfSearchTwin twin(d);
    const std::size_t k = d.size();
    std::vector<double> edges = {0.0, std::nextafter(1.0, 0.0)};
    for (std::size_t i = 0; i < k; ++i) {
      const double bucket_lo = static_cast<double>(i) / static_cast<double>(k);
      edges.push_back(bucket_lo);
      edges.push_back(std::nextafter(bucket_lo, 0.0));
      edges.push_back(std::nextafter(bucket_lo, 2.0));
      // The accept/alias boundary inside bucket i.
      const double split = (static_cast<double>(i) + d.cells()[i].accept) /
                           static_cast<double>(k);
      for (const double u :
           {split, std::nextafter(split, 0.0), std::nextafter(split, 2.0)}) {
        if (u >= 0.0 && u < 1.0) edges.push_back(u);
      }
    }
    for (const double u : edges) {
      ASSERT_EQ(d.sample_at(u), twin.sample_at(u))
          << "diverged at u=" << u << " for K=" << k;
    }
  }
}

TEST(AliasDiscrete, PartitionMeasureEqualsPmfExactly) {
  for (const auto& weights : kWeightCases) {
    const dist::Discrete d(weights);
    const std::vector<double> measure = partition_measure(d);
    for (std::size_t j = 0; j < d.size(); ++j) {
      EXPECT_NEAR(measure[j], d.pmf(j), 1e-12)
          << "category " << j << " of K=" << d.size();
    }
  }
  const dist::Discrete big(zipfish(2048));
  const std::vector<double> measure = partition_measure(big);
  for (std::size_t j = 0; j < big.size(); ++j) {
    EXPECT_NEAR(measure[j], big.pmf(j), 1e-12) << "category " << j;
  }
}

TEST(AliasDiscrete, SampleConsumesExactlyOneUniformInLockstep) {
  const dist::Discrete d(zipfish(37));
  dist::Rng sampler(99);
  dist::Rng shadow(99);
  for (int i = 0; i < 50'000; ++i) {
    // Draw the shadow's uniform first: if sample() consumed anything other
    // than exactly one uniform, the two engines would immediately desync.
    const double u = shadow.uniform();
    ASSERT_EQ(d.sample(sampler), d.sample_at(u)) << "desync at draw " << i;
  }
  // Both engines must land on the same next value.
  EXPECT_EQ(sampler.uniform(), shadow.uniform());
}

TEST(AliasDiscrete, ZeroShareCategoriesAreNeverSampled) {
  const dist::Discrete d({0.5, 0.0, 0.25, 0.0, 0.25});
  const std::vector<double> measure = partition_measure(d);
  EXPECT_EQ(measure[1], 0.0);
  EXPECT_EQ(measure[3], 0.0);
  dist::Rng rng(5);
  for (int i = 0; i < 100'000; ++i) {
    const std::size_t j = d.sample(rng);
    ASSERT_NE(j, 1u);
    ASSERT_NE(j, 3u);
  }
}

TEST(AliasDiscrete, SingleEntryAlwaysReturnsZero) {
  const dist::Discrete d(std::vector<double>{42.0});
  EXPECT_EQ(d.sample_at(0.0), 0u);
  EXPECT_EQ(d.sample_at(0.5), 0u);
  EXPECT_EQ(d.sample_at(std::nextafter(1.0, 0.0)), 0u);
  dist::Rng rng(1);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(d.sample(rng), 0u);
}

TEST(AliasDiscrete, AliasAndPlainCdfPartitionsDifferButMeasuresMatch) {
  // Documents why sample-for-sample agreement with *plain* CDF inversion
  // (cumulative sums of the pmf) is not required, and cannot be: for
  // {0.75, 0.25} plain inversion sends u = 0.6 to category 0's cumulative
  // range [0, 0.75), while the alias table's bucket 1 = [0.5, 1) keeps only
  // [0.5, 0.625) for itself... yet both partitions measure 0.75 / 0.25.
  const dist::Discrete d({0.75, 0.25});
  // Alias layout: bucket 0 = all category 0; bucket 1 splits at accept 0.5.
  EXPECT_EQ(d.sample_at(0.6), 1u);   // plain CDF inversion would say 0
  EXPECT_EQ(d.sample_at(0.8), 0u);   // plain CDF inversion would say 1
  const std::vector<double> measure = partition_measure(d);
  EXPECT_NEAR(measure[0], 0.75, 1e-15);
  EXPECT_NEAR(measure[1], 0.25, 1e-15);
}

}  // namespace
