// Stress tests of the discrete-event kernel under randomised scheduling,
// cancellation and re-entrant event creation — failure-injection for the
// invariants every experiment silently relies on.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "dist/rng.h"
#include "sim/simulator.h"
#include <gtest/gtest.h>

namespace mclat::sim {
namespace {

class SimStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimStress, RandomScheduleCancelRespectsTimeOrder) {
  Simulator s;
  dist::Rng rng(GetParam());
  std::vector<double> fired;
  std::vector<EventId> ids;
  // Phase 1: schedule 5000 events at random times, cancel ~30 % at random.
  for (int i = 0; i < 5000; ++i) {
    const double t = rng.uniform() * 100.0;
    ids.push_back(s.schedule_at(t, [&, t] { fired.push_back(t); }));
  }
  std::uint64_t cancelled = 0;
  for (const EventId id : ids) {
    if (rng.bernoulli(0.3)) {
      s.cancel(id);
      ++cancelled;
    }
  }
  s.run();
  EXPECT_EQ(fired.size(), 5000u - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(s.events_executed(), 5000u - cancelled);
}

TEST_P(SimStress, ReentrantSchedulingFromHandlers) {
  Simulator s;
  dist::Rng rng(GetParam() ^ 0xabcdull);
  std::uint64_t executed = 0;
  double last_time = 0.0;
  // Each event spawns 0-2 children at later times, up to a budget.
  std::uint64_t budget = 20'000;
  std::function<void()> node = [&] {
    ++executed;
    EXPECT_GE(s.now(), last_time);
    last_time = s.now();
    const int children = static_cast<int>(rng.uniform_index(3));
    for (int c = 0; c < children && budget > 0; ++c) {
      --budget;
      s.schedule_in(rng.uniform() * 0.5, node);
    }
  };
  for (int i = 0; i < 100; ++i) {
    s.schedule_at(rng.uniform(), node);
  }
  s.run();
  EXPECT_GE(executed, 100u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST_P(SimStress, CancellationFromInsideHandlers) {
  Simulator s;
  dist::Rng rng(GetParam() ^ 0x5555ull);
  std::vector<EventId> victims;
  std::uint64_t victim_fired = 0;
  for (int i = 0; i < 1000; ++i) {
    victims.push_back(
        s.schedule_at(10.0 + rng.uniform(), [&] { ++victim_fired; }));
  }
  // Killers run strictly before the victims and cancel half of them.
  std::uint64_t killed = 0;
  for (std::size_t i = 0; i < victims.size(); i += 2) {
    const EventId v = victims[i];
    s.schedule_at(rng.uniform(), [&, v] {
      s.cancel(v);
      ++killed;
    });
  }
  s.run();
  EXPECT_EQ(killed, 500u);
  EXPECT_EQ(victim_fired, 500u);
}

TEST_P(SimStress, RunUntilInterleavedWithBursts) {
  Simulator s;
  dist::Rng rng(GetParam() ^ 0x9999ull);
  std::uint64_t count = 0;
  for (int i = 0; i < 2000; ++i) {
    s.schedule_at(rng.uniform() * 50.0, [&] { ++count; });
  }
  // Chop the horizon into random slices; the result must not depend on
  // where the slices fall.
  double t = 0.0;
  while (t < 50.0) {
    t += rng.uniform() * 5.0;
    s.run_until(std::min(t, 50.0));
    EXPECT_LE(s.now(), std::max(t, s.now()));
  }
  s.run();
  EXPECT_EQ(count, 2000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimStress,
                         ::testing::Values(11u, 22u, 33u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

TEST(SimStress, MillionEventThroughput) {
  // A correctness-oriented scale test: one million self-rescheduling
  // events execute without heap corruption and in order.
  Simulator s;
  std::uint64_t remaining = 1'000'000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) s.schedule_in(1e-6, tick);
  };
  s.schedule_in(1e-6, tick);
  s.run();
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(s.events_executed(), 1'000'000u);
}

}  // namespace
}  // namespace mclat::sim
