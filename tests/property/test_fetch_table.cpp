// FetchTable invariants under randomized interleavings, checked against a
// plain map-of-queues model:
//   * single flight: lead_or_park leads iff the model has no entry for the
//     (server, rank) — never two outstanding fetches for one key;
//   * FIFO release: release() hands back exactly the model's waiter queue,
//     in park order;
//   * conservation: every parked waiter is eventually released (or still
//     parked), parked() == released() + waiters in the model;
//   * outstanding_fetches() tracks the model's entry count and
//     peak_outstanding() its running maximum.
// The random walk interleaves leads, parks, and releases over a small
// (server, rank) grid so collisions are frequent.
#include <cstdint>
#include <deque>
#include <map>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/engine/fetch_table.h"

namespace mclat {
namespace {

using cluster::engine::FetchTable;

TEST(FetchTable, LeadsThenParksThenReleasesFifo) {
  FetchTable t(2);
  EXPECT_TRUE(t.lead_or_park(0, 7, /*job=*/1, /*now=*/0.5));
  EXPECT_FALSE(t.lead_or_park(0, 7, 2, 0.6));
  EXPECT_FALSE(t.lead_or_park(0, 7, 3, 0.7));
  // Same rank on another server is an independent fetch.
  EXPECT_TRUE(t.lead_or_park(1, 7, 4, 0.8));
  EXPECT_TRUE(t.outstanding(0, 7));
  EXPECT_EQ(t.leader_of(0, 7), 1u);
  EXPECT_EQ(t.outstanding_fetches(), 2u);

  std::vector<FetchTable::Waiter> out;
  t.release(0, 7, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].job, 2u);
  EXPECT_DOUBLE_EQ(out[0].parked_at, 0.6);
  EXPECT_EQ(out[1].job, 3u);
  EXPECT_DOUBLE_EQ(out[1].parked_at, 0.7);
  EXPECT_FALSE(t.outstanding(0, 7));
  // The key is free again: the next miss leads a fresh fetch.
  EXPECT_TRUE(t.lead_or_park(0, 7, 5, 0.9));
  EXPECT_EQ(t.led(), 3u);
  EXPECT_EQ(t.parked(), 2u);
  EXPECT_EQ(t.released(), 2u);
}

TEST(FetchTable, ReleaseWithoutOutstandingFetchThrows) {
  FetchTable t(1);
  std::vector<FetchTable::Waiter> out;
  EXPECT_THROW(t.release(0, 0, out), std::invalid_argument);
  EXPECT_THROW((void)t.leader_of(0, 0), std::invalid_argument);
  ASSERT_TRUE(t.lead_or_park(0, 0, 1, 0.0));
  t.release(0, 0, out);
  // Double release is the same wiring bug.
  EXPECT_THROW(t.release(0, 0, out), std::invalid_argument);
}

TEST(FetchTable, RandomInterleavingsMatchModel) {
  constexpr std::size_t kServers = 4;
  constexpr std::uint64_t kRanks = 8;
  std::mt19937_64 gen(20260809);
  std::uniform_int_distribution<std::size_t> pick_server(0, kServers - 1);
  std::uniform_int_distribution<std::uint64_t> pick_rank(0, kRanks - 1);
  std::uniform_int_distribution<int> pick_op(0, 2);

  for (int round = 0; round < 20; ++round) {
    FetchTable t(kServers);
    // Model: (server, rank) → {leader, FIFO waiter queue}.
    std::map<std::pair<std::size_t, std::uint64_t>,
             std::pair<std::uint64_t, std::deque<FetchTable::Waiter>>>
        model;
    std::uint64_t next_job = 0;
    std::size_t model_peak = 0;
    double now = 0.0;
    std::vector<FetchTable::Waiter> out;

    for (int step = 0; step < 2000; ++step) {
      const std::size_t sv = pick_server(gen);
      const std::uint64_t rk = pick_rank(gen);
      const auto key = std::make_pair(sv, rk);
      now += 0.001;
      if (pick_op(gen) < 2) {  // miss: lead or park
        const std::uint64_t job = next_job++;
        const bool led = t.lead_or_park(sv, rk, job, now);
        const auto it = model.find(key);
        EXPECT_EQ(led, it == model.end());
        if (it == model.end()) {
          model.emplace(key, std::make_pair(job, std::deque<FetchTable::Waiter>{}));
          model_peak = std::max(model_peak, model.size());
        } else {
          it->second.second.push_back(FetchTable::Waiter{job, now});
        }
      } else {  // fetch completion
        const auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_THROW(t.release(sv, rk, out), std::invalid_argument);
          continue;
        }
        EXPECT_EQ(t.leader_of(sv, rk), it->second.first);
        t.release(sv, rk, out);
        const std::deque<FetchTable::Waiter>& q = it->second.second;
        ASSERT_EQ(out.size(), q.size());
        for (std::size_t i = 0; i < q.size(); ++i) {
          EXPECT_EQ(out[i].job, q[i].job);
          EXPECT_DOUBLE_EQ(out[i].parked_at, q[i].parked_at);
        }
        model.erase(it);
      }
      // Global invariants after every step.
      ASSERT_EQ(t.outstanding_fetches(), model.size());
      std::uint64_t model_waiting = 0;
      for (const auto& [k, v] : model) {
        ASSERT_TRUE(t.outstanding(k.first, k.second));
        model_waiting += v.second.size();
      }
      ASSERT_EQ(t.parked(), t.released() + model_waiting);
      ASSERT_EQ(t.peak_outstanding(), model_peak);
    }
    // Drain: everything still parked must come out exactly once.
    while (!model.empty()) {
      const auto it = model.begin();
      t.release(it->first.first, it->first.second, out);
      EXPECT_EQ(out.size(), it->second.second.size());
      model.erase(it);
    }
    EXPECT_EQ(t.outstanding_fetches(), 0u);
    EXPECT_EQ(t.parked(), t.released());
  }
}

}  // namespace
}  // namespace mclat
