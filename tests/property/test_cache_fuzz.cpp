// Model-based fuzzing of LruStore: a long random op-sequence is applied
// simultaneously to the slab/LRU store and to a trivially-correct reference
// model (std::map + explicit recency list). Any divergence in visible
// behaviour — presence, values, sizes — is a bug in the store.
//
// The reference deliberately does NOT model eviction (that depends on slab
// geometry), so checks are one-sided where eviction can interfere: a key
// the store returns must match the reference value; a key the reference
// lacks must miss in the store too (the store never resurrects deleted
// data).
#include <list>
#include <map>
#include <optional>
#include <string>

#include "cache/lru_store.h"
#include "dist/rng.h"
#include <gtest/gtest.h>

namespace mclat::cache {
namespace {

struct Reference {
  std::map<std::string, std::pair<std::string, double>> items;  // value, expiry

  void set(const std::string& k, const std::string& v, double now,
           double ttl) {
    items[k] = {v, ttl > 0.0 ? now + ttl : 0.0};
  }
  std::optional<std::string> get(const std::string& k, double now) {
    const auto it = items.find(k);
    if (it == items.end()) return std::nullopt;
    if (it->second.second > 0.0 && now >= it->second.second) {
      items.erase(it);
      return std::nullopt;
    }
    return it->second.first;
  }
  void remove(const std::string& k) { items.erase(k); }
};

class LruStoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruStoreFuzz, AgreesWithReferenceModel) {
  SlabAllocator::Config cfg;
  cfg.min_chunk = 96;
  cfg.growth_factor = 1.5;
  cfg.page_size = 16 * 1024;
  cfg.memory_limit = 96 * 1024;  // small enough to force real evictions
  LruStore store(cfg);
  Reference ref;
  dist::Rng rng(GetParam());

  double now = 0.0;
  std::uint64_t evictions_seen = 0;
  for (int op = 0; op < 60'000; ++op) {
    now += rng.uniform() * 0.01;
    const std::string key = "k" + std::to_string(rng.uniform_index(400));
    const double roll = rng.uniform();
    if (roll < 0.45) {
      // set with random value size (sometimes crossing slab classes) and
      // occasional TTLs.
      const std::size_t len = 1 + rng.uniform_index(600);
      const std::string value(len, static_cast<char>('a' + key.size() % 26));
      const double ttl = rng.bernoulli(0.2) ? rng.uniform() * 0.5 : 0.0;
      const bool ok = store.set(key, value, now, ttl);
      if (ok) {
        ref.set(key, value, now, ttl);
      } else {
        // A failed set (class fully starved at this memory limit) removes
        // any previous value of the key — memcached semantics: the old
        // item is unlinked before the new allocation is attempted.
        ref.remove(key);
        ASSERT_FALSE(store.get(key, now).has_value())
            << "failed set must not leave a stale value behind";
      }
    } else if (roll < 0.85) {
      const auto got = store.get(key, now);
      const auto want = ref.get(key, now);
      if (got.has_value()) {
        // Anything the store has must match the reference exactly.
        ASSERT_TRUE(want.has_value())
            << "store returned a key the reference deleted/expired: " << key;
        ASSERT_EQ(*got, *want) << "value mismatch for " << key;
      }
      // The converse may fail only through eviction.
      if (want.has_value() && !got.has_value()) ++evictions_seen;
    } else if (roll < 0.95) {
      store.remove(key);
      ref.remove(key);
    } else {
      // Consistency probes.
      ASSERT_LE(store.size(), 400u);
      ASSERT_LE(store.allocator().memory_used(), cfg.memory_limit);
    }
  }
  // The store must actually have been under memory pressure for this fuzz
  // to mean anything.
  EXPECT_GT(store.stats().evictions + evictions_seen, 0u);
  const StoreStats& st = store.stats();
  EXPECT_EQ(st.hits + st.misses, st.gets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruStoreFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

TEST(LruStoreFuzz, SurvivesAdversarialSizes) {
  // Items straddling every slab-class boundary, interleaved with deletes.
  SlabAllocator::Config cfg;
  cfg.min_chunk = 96;
  cfg.growth_factor = 2.0;
  cfg.page_size = 8 * 1024;
  cfg.memory_limit = 64 * 1024;
  LruStore store(cfg);
  const SlabAllocator& slabs = store.allocator();
  for (std::size_t cls = 0; cls < slabs.num_classes(); ++cls) {
    const std::size_t sz = slabs.chunk_size(cls);
    for (const long delta : {-1L, 0L}) {
      const long payload = static_cast<long>(sz) + delta -
                           static_cast<long>(sizeof(void*) * 4);
      if (payload <= 1) continue;
      const std::string key = "c" + std::to_string(cls) + "_" +
                              std::to_string(delta);
      const std::string value(static_cast<std::size_t>(payload), 'x');
      if (store.set(key, value)) {
        const auto got = store.get(key);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->size(), value.size());
      }
    }
  }
  store.flush();
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace mclat::cache
