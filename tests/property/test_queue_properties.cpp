// Property sweeps over the simulation substrate: conservation and sanity
// laws that must hold for any workload the kernel is driven with.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/deterministic.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"
#include <gtest/gtest.h>

namespace mclat::sim {
namespace {

struct QueueCase {
  std::string label;
  double xi;        // burst degree of the GP gaps
  double q;         // batch concurrency
  double key_rate;  // keys/s
  double mu;        // service rate
};

class QueueLaws : public ::testing::TestWithParam<QueueCase> {
 protected:
  struct RunResult {
    std::vector<Departure> departures;
    double utilization;
    std::uint64_t arrivals;
  };

  RunResult run(double horizon, std::uint64_t seed) const {
    const QueueCase& c = GetParam();
    Simulator s;
    RunResult out;
    ServiceStation st(s, std::make_unique<dist::Exponential>(c.mu),
                      dist::Rng(seed), [&](const Departure& d) {
                        out.departures.push_back(d);
                      });
    const double batch_rate = (1.0 - c.q) * c.key_rate;
    const auto gap =
        dist::GeneralizedPareto::with_mean(c.xi, 1.0 / batch_rate);
    std::uint64_t id = 0;
    BatchSource src(s, gap.clone(), dist::GeometricBatch(c.q),
                    dist::Rng(seed ^ 0x77), [&](std::uint64_t n) {
                      for (std::uint64_t i = 0; i < n; ++i) st.arrive(id++);
                    });
    src.start();
    s.run_until(horizon);
    out.utilization = st.utilization(s.now());
    out.arrivals = id;
    return out;
  }
};

TEST_P(QueueLaws, TimestampsAreCausal) {
  const RunResult r = run(5.0, 3);
  for (const Departure& d : r.departures) {
    EXPECT_LE(d.arrival, d.service_start);
    EXPECT_LT(d.service_start, d.departure);
  }
}

TEST_P(QueueLaws, FifoDepartureOrderPreservesJobIds) {
  const RunResult r = run(5.0, 4);
  for (std::size_t i = 1; i < r.departures.size(); ++i) {
    EXPECT_EQ(r.departures[i].job_id, r.departures[i - 1].job_id + 1)
        << "single FIFO queue must depart in arrival order";
  }
}

TEST_P(QueueLaws, WorkConservation) {
  // Completed + in-system = arrivals; no job is created or lost.
  const RunResult r = run(5.0, 5);
  EXPECT_LE(r.departures.size(), r.arrivals);
  EXPECT_GE(r.departures.size() + 200, r.arrivals)
      << "backlog at horizon should be bounded for a stable queue";
}

TEST_P(QueueLaws, UtilizationMatchesRho) {
  const QueueCase& c = GetParam();
  const RunResult r = run(20.0, 6);
  EXPECT_NEAR(r.utilization, c.key_rate / c.mu, 0.05);
}

TEST_P(QueueLaws, LittlesLawOnWaitingArea) {
  // L = λW: average number in system inferred from sojourns equals key rate
  // times mean sojourn (sampled at departures; tolerance generous).
  const QueueCase& c = GetParam();
  const RunResult r = run(20.0, 7);
  double mean_sojourn = 0.0;
  for (const Departure& d : r.departures) mean_sojourn += d.sojourn_time();
  mean_sojourn /= static_cast<double>(r.departures.size());
  // Time-average L via integral of (sojourn contributions)/horizon.
  double area = 0.0;
  for (const Departure& d : r.departures) area += d.sojourn_time();
  const double L = area / 20.0;
  EXPECT_NEAR(L, c.key_rate * mean_sojourn, 0.15 * L + 0.1);
}

TEST_P(QueueLaws, DeterministicReplay) {
  const RunResult a = run(3.0, 11);
  const RunResult b = run(3.0, 11);
  ASSERT_EQ(a.departures.size(), b.departures.size());
  for (std::size_t i = 0; i < a.departures.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.departures[i].departure, b.departures[i].departure);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadGrid, QueueLaws,
    ::testing::Values(
        QueueCase{"poisson_light", 0.0, 0.0, 20'000.0, 80'000.0},
        QueueCase{"poisson_heavy", 0.0, 0.0, 70'000.0, 80'000.0},
        QueueCase{"facebook", 0.15, 0.1, 62'500.0, 80'000.0},
        QueueCase{"bursty", 0.5, 0.2, 40'000.0, 80'000.0},
        QueueCase{"very_bursty_batchy", 0.7, 0.4, 24'000.0, 80'000.0}),
    [](const ::testing::TestParamInfo<QueueCase>& pinfo) {
      return pinfo.param.label;
    });

}  // namespace
}  // namespace mclat::sim
