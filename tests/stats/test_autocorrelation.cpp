#include "stats/autocorrelation.h"

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "dist/exponential.h"
#include "dist/rng.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include <gtest/gtest.h>

namespace mclat::stats {
namespace {

std::vector<double> ar1(double rho, std::size_t n, std::uint64_t seed) {
  dist::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x = rho * x + rng.normal();
    xs.push_back(x);
  }
  return xs;
}

TEST(Autocorrelation, IidSeriesIsUncorrelated) {
  dist::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.normal());
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
  for (const std::size_t k : {1u, 5u, 20u}) {
    EXPECT_NEAR(autocorrelation(xs, k), 0.0, 0.02) << "lag " << k;
  }
  EXPECT_NEAR(integrated_autocorrelation_time(xs), 1.0, 0.15);
  EXPECT_GT(effective_sample_size(xs), 0.8 * xs.size());
}

TEST(Autocorrelation, Ar1MatchesTheory) {
  const double rho = 0.8;
  const auto xs = ar1(rho, 200'000, 2);
  // ρ_k = ρ^k for AR(1).
  for (const std::size_t k : {1u, 2u, 5u}) {
    EXPECT_NEAR(autocorrelation(xs, k), std::pow(rho, k), 0.03)
        << "lag " << k;
  }
  // τ = (1+ρ)/(1-ρ) = 9.
  EXPECT_NEAR(integrated_autocorrelation_time(xs), 9.0, 1.5);
  EXPECT_NEAR(effective_sample_size(xs), xs.size() / 9.0,
              0.25 * xs.size() / 9.0);
}

TEST(Autocorrelation, ConstantSeriesIsDegenerate) {
  const std::vector<double> xs(100, 3.0);
  EXPECT_EQ(autocorrelation(xs, 3), 0.0);
  EXPECT_EQ(integrated_autocorrelation_time(xs), 1.0);
}

TEST(Autocorrelation, QueueWaitsCorrelateMoreAtHigherLoad) {
  // The phenomenon that forces batch-means CIs: successive waiting times
  // in an M/M/1 queue share busy periods, and the correlation strengthens
  // with utilisation.
  const auto waits_at = [](double lambda) {
    sim::Simulator s;
    std::vector<double> waits;
    sim::ServiceStation st(s, std::make_unique<dist::Exponential>(1000.0),
                           dist::Rng(7), [&](const sim::Departure& d) {
                             waits.push_back(d.waiting_time());
                           });
    dist::Rng arr(8);
    std::uint64_t id = 0;
    std::function<void()> arrive = [&] {
      st.arrive(id++);
      s.schedule_in(arr.exponential(lambda), arrive);
    };
    s.schedule_in(arr.exponential(lambda), arrive);
    s.run_until(120.0);
    return waits;
  };
  const auto light = waits_at(300.0);
  const auto heavy = waits_at(850.0);
  const double tau_light = integrated_autocorrelation_time(light);
  const double tau_heavy = integrated_autocorrelation_time(heavy);
  EXPECT_GT(tau_heavy, 3.0 * tau_light);
  // And the ESS justifies batch-means: far fewer effective samples than raw.
  EXPECT_LT(effective_sample_size(heavy), 0.2 * heavy.size());
}

TEST(Autocorrelation, ValidatesArguments) {
  const std::vector<double> tiny = {1.0};
  EXPECT_THROW((void)autocorrelation(tiny, 0), std::invalid_argument);
  const std::vector<double> ok = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW((void)autocorrelation(ok, 4), std::invalid_argument);
  EXPECT_THROW((void)integrated_autocorrelation_time(ok, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::stats
