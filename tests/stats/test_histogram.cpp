#include "stats/histogram.h"

#include <cmath>

#include "dist/exponential.h"
#include "dist/rng.h"
#include <gtest/gtest.h>

namespace mclat::stats {
namespace {

TEST(LinearHistogram, BucketsAndOverflow) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(-1.0);  // underflow
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);  // overflow (right-open)
  h.add(42.0);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
  EXPECT_EQ(h.bucket_lower(5), 5.0);
  EXPECT_EQ(h.bucket_upper(5), 6.0);
}

TEST(LinearHistogram, QuantileInterpolates) {
  LinearHistogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i % 100 + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(LinearHistogram, QuantileOnEmptyThrows) {
  LinearHistogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(0.5), std::invalid_argument);
}

TEST(LinearHistogram, ValidatesConstruction) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, RelativePrecisionBuckets) {
  // 1 % buckets from 1 µs to 1 s: recorded quantiles are within ~1 %.
  LogHistogram h(1e-6, 1.0, 0.01);
  const dist::Exponential e(1000.0);  // mean 1 ms
  dist::Rng rng(3);
  for (int i = 0; i < 300'000; ++i) h.add(e.sample(rng));
  for (const double p : {0.5, 0.9, 0.99}) {
    const double want = e.quantile(p);
    EXPECT_NEAR(h.quantile(p), want, 0.03 * want) << "p=" << p;
  }
}

TEST(LogHistogram, MeanEstimateTracksTrueMean) {
  LogHistogram h(1e-6, 1.0, 0.01);
  const dist::Exponential e(2000.0);
  dist::Rng rng(9);
  for (int i = 0; i < 200'000; ++i) h.add(e.sample(rng));
  EXPECT_NEAR(h.mean_estimate(), 5e-4, 2e-5);
}

TEST(LogHistogram, SpansDecadesWithoutManyBuckets) {
  const LogHistogram h(1e-6, 10.0, 0.01);
  // log(1e7)/log(1.01) ≈ 1620 buckets — bounded memory across 7 decades.
  EXPECT_LT(h.bucket_count(), 2000u);
  EXPECT_GT(h.bucket_count(), 1000u);
}

TEST(LogHistogram, BelowMinimumCountsAsUnderflow) {
  LogHistogram h(1e-3, 1.0, 0.05);
  h.add(1e-6);
  h.add(0.5);
  EXPECT_EQ(h.count(), 2u);
  // Quantile 0 falls into the underflow mass → reports the minimum.
  EXPECT_EQ(h.quantile(0.25), 1e-3);
}

TEST(LogHistogram, ValidatesConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1e-6, 1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::stats
