#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dist/exponential.h"
#include "dist/rng.h"
#include <gtest/gtest.h>

namespace mclat::stats {
namespace {

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_EQ(q.value(), 3.0);
  q.add(1.0);
  EXPECT_NEAR(q.value(), 2.0, 1e-12);  // interpolated median of {1,3}
  q.add(2.0);
  EXPECT_EQ(q.value(), 2.0);
}

TEST(P2Quantile, MedianOfUniformStream) {
  P2Quantile q(0.5);
  dist::Rng rng(5);
  for (int i = 0; i < 100'000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailQuantileOfExponential) {
  P2Quantile q99(0.99);
  const dist::Exponential e(1.0);
  dist::Rng rng(42);
  for (int i = 0; i < 500'000; ++i) q99.add(e.sample(rng));
  // true p99 = -ln(0.01) ≈ 4.605
  EXPECT_NEAR(q99.value(), 4.605, 0.15);
}

TEST(P2Quantile, AgreesWithExactQuantileOnFixedData) {
  // Compare against the exact order statistic on a deterministic stream.
  std::vector<double> xs;
  dist::Rng rng(7);
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.uniform() * rng.uniform());
  P2Quantile q(0.9);
  for (const double x : xs) q.add(x);
  std::sort(xs.begin(), xs.end());
  const double exact = xs[static_cast<std::size_t>(0.9 * xs.size())];
  EXPECT_NEAR(q.value(), exact, 0.02 * exact + 0.005);
}

TEST(P2Quantile, HandlesMonotoneStream) {
  P2Quantile q(0.25);
  for (int i = 1; i <= 10'000; ++i) q.add(static_cast<double>(i));
  EXPECT_NEAR(q.value(), 2500.0, 100.0);
}

TEST(P2Quantile, CountTracksAdds) {
  P2Quantile q(0.5);
  for (int i = 0; i < 17; ++i) q.add(i);
  EXPECT_EQ(q.count(), 17u);
}

TEST(P2Quantile, RejectsDegenerateP) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::stats
