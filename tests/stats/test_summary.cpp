#include "stats/summary.h"

#include <cmath>
#include <vector>

#include "dist/exponential.h"
#include "dist/rng.h"
#include <gtest/gtest.h>

namespace mclat::stats {
namespace {

TEST(MeanCi, CoversTrueMeanAtNominalRate) {
  // 95 % CIs over iid exponential samples should cover the truth ~95 % of
  // the time; demand at least 90 % over 200 repetitions.
  const dist::Exponential e(1.0);
  int covered = 0;
  const int reps = 200;
  for (int t = 0; t < reps; ++t) {
    dist::Rng rng(500 + t);
    Welford w;
    for (int i = 0; i < 400; ++i) w.add(e.sample(rng));
    if (mean_ci(w, 0.95).contains(1.0)) ++covered;
  }
  EXPECT_GE(covered, 180);
  EXPECT_LE(covered, 200);
}

TEST(MeanCi, DegenerateCases) {
  Welford w;
  const MeanCI empty = mean_ci(w);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.halfwidth, 0.0);
  w.add(2.0);
  const MeanCI one = mean_ci(w);
  EXPECT_EQ(one.mean, 2.0);
  EXPECT_EQ(one.halfwidth, 0.0);
}

TEST(BatchMeans, WiderThanNaiveCiOnCorrelatedSeries) {
  // AR(1) with strong positive correlation: the naive iid CI is far too
  // narrow; batch means must widen it.
  dist::Rng rng(9);
  std::vector<double> series;
  double x = 0.0;
  for (int i = 0; i < 60'000; ++i) {
    x = 0.98 * x + rng.normal(0.0, 1.0);
    series.push_back(x);
  }
  Welford w;
  for (const double v : series) w.add(v);
  const MeanCI naive = mean_ci(w);
  const MeanCI batched = batch_means_ci(series, 30);
  EXPECT_GT(batched.halfwidth, 3.0 * naive.halfwidth);
}

TEST(BatchMeans, MatchesNaiveOnIidSeries) {
  dist::Rng rng(10);
  std::vector<double> series;
  for (int i = 0; i < 30'000; ++i) series.push_back(rng.normal());
  Welford w;
  for (const double v : series) w.add(v);
  const MeanCI naive = mean_ci(w);
  const MeanCI batched = batch_means_ci(series, 30);
  EXPECT_NEAR(batched.mean, naive.mean, 1e-9);
  EXPECT_NEAR(batched.halfwidth, naive.halfwidth, 0.6 * naive.halfwidth);
}

TEST(BatchMeans, ValidatesInput) {
  const std::vector<double> tiny = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)batch_means_ci(tiny, 30), std::invalid_argument);
  EXPECT_THROW((void)batch_means_ci(tiny, 1), std::invalid_argument);
}

TEST(Format, TimesRenderLikeThePaper) {
  EXPECT_EQ(format_time_us(20e-6), "20us");
  EXPECT_EQ(format_time_us(367.4e-6), "367us");
  EXPECT_EQ(format_time_us(10.01e-3), "10.01ms");
  MeanCI ci;
  ci.mean = 368e-6;
  ci.halfwidth = 5.5e-6;
  const std::string s = format_us(ci);
  EXPECT_NE(s.find("368us"), std::string::npos);
  EXPECT_NE(s.find("["), std::string::npos);
}

}  // namespace
}  // namespace mclat::stats
