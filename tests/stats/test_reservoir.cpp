#include "stats/reservoir.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::stats {
namespace {

TEST(Reservoir, KeepsEverythingBelowCapacity) {
  Reservoir r(10);
  dist::Rng rng(1);
  for (int i = 0; i < 7; ++i) r.add(static_cast<double>(i), rng);
  EXPECT_EQ(r.seen(), 7u);
  EXPECT_EQ(r.sample().size(), 7u);
}

TEST(Reservoir, CapsAtCapacity) {
  Reservoir r(100);
  dist::Rng rng(2);
  for (int i = 0; i < 100'000; ++i) r.add(static_cast<double>(i), rng);
  EXPECT_EQ(r.seen(), 100'000u);
  EXPECT_EQ(r.sample().size(), 100u);
}

TEST(Reservoir, SampleIsApproximatelyUniform) {
  // Stream 0..9999; with capacity 1000 the retained mean should approach
  // the stream mean 4999.5.
  double grand = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    Reservoir r(1000);
    dist::Rng rng(100 + t);
    for (int i = 0; i < 10'000; ++i) r.add(static_cast<double>(i), rng);
    const auto& s = r.sample();
    grand += std::accumulate(s.begin(), s.end(), 0.0) / s.size();
  }
  EXPECT_NEAR(grand / trials, 4999.5, 60.0);
}

TEST(Reservoir, EarlyAndLateItemsEquallyLikely) {
  // Probability that element 0 (first) and element 9999 (last) survive a
  // capacity-100 reservoir over 10k items should both be ≈ 1 %.
  int first_kept = 0;
  int last_kept = 0;
  const int trials = 20'000;
  for (int t = 0; t < trials; ++t) {
    Reservoir r(100);
    dist::Rng rng(t);
    for (int i = 0; i < 10'000; ++i) r.add(static_cast<double>(i), rng);
    for (const double x : r.sample()) {
      if (x == 0.0) ++first_kept;
      if (x == 9999.0) ++last_kept;
    }
  }
  EXPECT_NEAR(first_kept / static_cast<double>(trials), 0.01, 0.003);
  EXPECT_NEAR(last_kept / static_cast<double>(trials), 0.01, 0.003);
}

TEST(Reservoir, TakeMovesAndResets) {
  Reservoir r(4);
  dist::Rng rng(3);
  r.add(1.0, rng);
  r.add(2.0, rng);
  const auto s = r.take();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(r.seen(), 0u);
}

TEST(Reservoir, RejectsZeroCapacity) {
  EXPECT_THROW(Reservoir(0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::stats
