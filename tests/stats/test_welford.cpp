#include "stats/welford.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::stats {
namespace {

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Welford w;
  for (const double x : xs) w.add(x);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_NEAR(w.mean(), 5.0, 1e-14);
  // Sample variance with n-1: Σ(x-5)² = 32, / 7.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(w.min(), 2.0);
  EXPECT_EQ(w.max(), 9.0);
}

TEST(Welford, EmptyAndSingle) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.variance(), 0.0);
  w.add(3.5);
  EXPECT_EQ(w.mean(), 3.5);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(Welford, NumericallyStableAtLargeOffsets) {
  // Classic catastrophic-cancellation trap: tiny variance on a huge mean.
  Welford w;
  const double base = 1e12;
  for (int i = 0; i < 1000; ++i) w.add(base + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(w.mean(), base, 1e-3);
  EXPECT_NEAR(w.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(Welford, MergeEqualsSequential) {
  Welford a;
  Welford b;
  Welford whole;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + 1.0;
    (i < 37 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(Welford, MergeWithEmptySides) {
  Welford a;
  Welford empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean_before);
  Welford c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.mean(), mean_before);
}

TEST(Welford, ResetClearsState) {
  Welford w;
  w.add(5.0);
  w.reset();
  EXPECT_EQ(w.count(), 0u);
  w.add(1.0);
  EXPECT_EQ(w.mean(), 1.0);
}

}  // namespace
}  // namespace mclat::stats
