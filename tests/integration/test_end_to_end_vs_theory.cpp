// Integration: the *explicit* fork-join cluster (Mode B) against theory.
//
// Mode B's per-server arrival process is whatever the request fan-out
// produces — for N = 1 that is exactly Poisson (thinned from the Poisson
// request stream), so M/M/1 closed forms must hold *exactly*. For N > 1
// the fan-out creates binomial arrival bursts that the paper's geometric
// batch model only approximates; there we assert the structural laws
// (ordering, monotone growth in N, envelope consistency) rather than
// point equality — the quantitative validation of the paper's model runs
// against Mode A, which reproduces the paper's measurement methodology.
#include <cmath>

#include "cluster/end_to_end.h"
#include "core/theorem1.h"
#include <gtest/gtest.h>

namespace mclat {
namespace {

cluster::EndToEndConfig base_config() {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * 48'000.0;  // ρ = 0.6
  cfg.system.miss_ratio = 0.02;
  cfg.common.warmup_time = 0.5;
  cfg.common.measure_time = 4.0;
  cfg.common.seed = 4242;
  return cfg;
}

TEST(EndToEndVsTheory, SingleKeyRequestsMatchMM1Exactly) {
  cluster::EndToEndConfig cfg = base_config();
  cfg.system.keys_per_request = 1;
  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();

  // Per-server arrivals: Poisson at 48 Kps against μ_S = 80 Kps.
  const double want_sojourn = 1.0 / (80'000.0 - 48'000.0);
  EXPECT_NEAR(r.server.mean, want_sojourn, 0.06 * want_sojourn);

  // Database component: miss w.p. r, then one exp(μ_D) fetch.
  const double want_db = 0.02 / 1'000.0;
  EXPECT_NEAR(r.database.mean, want_db, 0.1 * want_db);

  // Network is the constant; total = net + server + db in expectation
  // (for N = 1 the max over one key is the sum itself).
  EXPECT_DOUBLE_EQ(r.network.mean, cfg.system.network_latency);
  EXPECT_NEAR(r.total.mean, r.network.mean + r.server.mean + r.database.mean,
              1e-9);
}

TEST(EndToEndVsTheory, SingleKeyMatchesTheorem1Envelope) {
  cluster::EndToEndConfig cfg = base_config();
  cfg.system.keys_per_request = 1;
  // Theory at the matching arrival pattern: Poisson (ξ = 0), no batching.
  core::SystemConfig model_cfg = cfg.system;
  model_cfg.burst_xi = 0.0;
  model_cfg.concurrency_q = 0.0;
  const core::LatencyModel model(model_cfg);
  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();
  // At N = 1 compare against the TRUE mean band E[T_Q] <= E[T_S] <= E[T_C]
  // (eq. 12's quantile shortcut degenerates to the median at N = 1 and is
  // not a mean bound there — see bench_fig12's note).
  const core::Bounds mean_band =
      model.server_stage().server(0).mean_sojourn_bounds();
  EXPECT_GE(r.server.mean, mean_band.lower * 0.9);
  EXPECT_LE(r.server.mean, mean_band.upper * 1.1);
}

TEST(EndToEndVsTheory, SelfQueueingBreaksTheLogLawWhenNExceedsM) {
  // A domain-of-validity result the Mode-B cluster makes visible: when one
  // request's fan-out is thick relative to the cluster (N >> M), its own
  // Binomial(N, 1/M) keys arrive at a server simultaneously and queue
  // BEHIND EACH OTHER. T_S(N) then grows ~linearly in N (≈ N/(M·μ_S) of
  // self-queueing), not Θ(log N) — the paper's independence assumption
  // ("the number of keys belonging to the same end-user request is quite
  // limited relative to the number of simultaneous end-user requests", §3)
  // is load-bearing, and this test pins down what happens outside it.
  cluster::EndToEndConfig cfg = base_config();
  cfg.system.total_key_rate = 4.0 * 32'000.0;
  cfg.system.miss_ratio = 0.0;
  cfg.system.keys_per_request = 32;  // 8 keys per server per request
  const double at_32 = cluster::EndToEndSim(cfg).run().server.mean;
  cfg.system.keys_per_request = 128;  // 32 keys per server per request
  const double at_128 = cluster::EndToEndSim(cfg).run().server.mean;
  // Log-law would predict a ratio of ln(129)/ln(33) ≈ 1.4; self-queueing
  // pushes it far beyond.
  EXPECT_GT(at_128 / at_32, 2.0);
  // The linear self-queueing floor: the last of ~N/M simultaneous keys
  // waits at least (N/M - 1) services.
  EXPECT_GT(at_128, (128.0 / 4.0 - 1.0) / 80'000.0);
}

TEST(EndToEndVsTheory, EnvelopeHoldsPerRequest) {
  cluster::EndToEndConfig cfg = base_config();
  cfg.system.keys_per_request = 32;
  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();
  // Theorem 1's pointwise envelope, verified on measured means.
  const double lo = std::max({r.network.mean, r.server.mean, r.database.mean});
  EXPECT_GE(r.total.mean, lo - 1e-12);
  EXPECT_LE(r.total.mean,
            r.network.mean + r.server.mean + r.database.mean + 1e-12);
}

TEST(EndToEndVsTheory, HigherMissRatioShiftsLoadToDatabase) {
  cluster::EndToEndConfig cfg = base_config();
  cfg.system.keys_per_request = 64;
  cfg.system.miss_ratio = 0.005;
  const double db_low = cluster::EndToEndSim(cfg).run().database.mean;
  cfg.system.miss_ratio = 0.05;
  const double db_high = cluster::EndToEndSim(cfg).run().database.mean;
  EXPECT_GT(db_high, 1.5 * db_low);
}

}  // namespace
}  // namespace mclat
