// Integration: GI/M/1 (no batching) — simulated waiting/sojourn
// distributions against the δ-based closed forms, for arrival patterns with
// closed-form Laplace transforms (Erlang, HyperExponential) and the paper's
// Generalized Pareto.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/gixm1.h"
#include "dist/empirical.h"
#include "dist/erlang.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "dist/hyperexponential.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include <gtest/gtest.h>

namespace mclat {
namespace {

struct GiM1Case {
  std::string label;
  std::function<dist::DistributionPtr()> gap;
};

class GiM1Sweep : public ::testing::TestWithParam<GiM1Case> {};

TEST_P(GiM1Sweep, WaitingAndSojournMatchDeltaForms) {
  const double mu = 1000.0;
  const auto gap = GetParam().gap();
  const core::GixM1Queue model(*gap, 0.0, mu);
  ASSERT_TRUE(model.stable());

  // Simulate the renewal arrivals into an exponential server.
  sim::Simulator s;
  std::vector<double> waits;
  std::vector<double> sojourns;
  sim::ServiceStation st(s, std::make_unique<dist::Exponential>(mu),
                         dist::Rng(7), [&](const sim::Departure& d) {
                           if (d.arrival > 20.0) {  // warm-up
                             waits.push_back(d.waiting_time());
                             sojourns.push_back(d.sojourn_time());
                           }
                         });
  dist::Rng arr(9);
  std::uint64_t id = 0;
  std::function<void()> arrive = [&] {
    st.arrive(id++);
    s.schedule_in(gap->sample(arr), arrive);
  };
  s.schedule_in(gap->sample(arr), arrive);
  s.run_until(400.0);
  ASSERT_GT(waits.size(), 100'000u);

  const dist::Empirical wait_dist(std::move(waits));
  const dist::Empirical sojourn_dist(std::move(sojourns));

  // Mean waiting: δ/η.
  EXPECT_NEAR(wait_dist.mean(), model.mean_queueing(),
              0.07 * model.mean_queueing() + 1e-5)
      << GetParam().label;
  // GI/M/1 sojourn is *exactly* Exp(η): mean and quantiles must match.
  EXPECT_NEAR(sojourn_dist.mean(), model.mean_completion(),
              0.06 * model.mean_completion())
      << GetParam().label;
  for (const double k : {0.5, 0.9, 0.99}) {
    const double want = model.completion_quantile(k);
    EXPECT_NEAR(sojourn_dist.quantile(k), want, 0.10 * want)
        << GetParam().label << " k=" << k;
  }
  // Waiting-time CDF: P{W <= t} = 1 - δe^{-ηt}; spot-check the atom and a
  // tail point.
  EXPECT_NEAR(wait_dist.cdf(1e-9), 1.0 - model.delta(), 0.02)
      << GetParam().label;
  const double t90 = model.queueing_quantile(0.9);
  EXPECT_NEAR(wait_dist.cdf(t90), 0.9, 0.02) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    ArrivalPatterns, GiM1Sweep,
    ::testing::Values(
        GiM1Case{"Erlang3_rho07",
                 [] {
                   return std::make_unique<dist::Erlang>(
                       dist::Erlang::with_mean(3, 1.0 / 700.0));
                 }},
        GiM1Case{"HyperExp_scv4_rho06",
                 [] {
                   return std::make_unique<dist::HyperExponential>(
                       dist::HyperExponential::fit_mean_scv(1.0 / 600.0, 4.0));
                 }},
        GiM1Case{"GP_xi015_rho078",
                 [] {
                   return std::make_unique<dist::GeneralizedPareto>(
                       dist::GeneralizedPareto::with_mean(0.15, 1.0 / 781.25));
                 }},
        GiM1Case{"GP_xi04_rho05",
                 [] {
                   return std::make_unique<dist::GeneralizedPareto>(
                       dist::GeneralizedPareto::with_mean(0.4, 1.0 / 500.0));
                 }}),
    [](const ::testing::TestParamInfo<GiM1Case>& pinfo) {
      return pinfo.param.label;
    });

}  // namespace
}  // namespace mclat
