// Integration: the multi-server station against M/M/c closed forms, plus
// the queue-length laws the new station accounting enables (geometric(δ)
// number-found-at-arrival, Little's law from the time-average L).
#include <functional>
#include <memory>

#include "core/gixm1.h"
#include "core/mmc.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "sim/multi_station.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"
#include <gtest/gtest.h>

namespace mclat {
namespace {

struct MmcParams {
  unsigned c;
  double lambda;
  double mu;
};

class MmcSweep : public ::testing::TestWithParam<MmcParams> {};

TEST_P(MmcSweep, SimMatchesErlangC) {
  const auto [c, lambda, mu] = GetParam();
  const core::MmcQueue model(c, lambda, mu);

  sim::Simulator s;
  sim::MultiServerStation st(s, c, std::make_unique<dist::Exponential>(mu),
                             dist::Rng(31), [](const sim::Departure&) {});
  dist::Rng arr(32);
  std::uint64_t id = 0;
  std::function<void()> arrive = [&] {
    st.arrive(id++);
    s.schedule_in(arr.exponential(lambda), arrive);
  };
  s.schedule_in(arr.exponential(lambda), arrive);
  const double horizon = 400'000.0 / lambda;  // ~400k arrivals
  s.run_until(horizon);

  EXPECT_NEAR(st.waited_fraction(), model.p_wait(), 0.02)
      << "Erlang-C mismatch";
  EXPECT_NEAR(st.waiting_stats().mean(), model.mean_wait(),
              0.08 * model.mean_wait() + 1e-6);
  EXPECT_NEAR(st.sojourn_stats().mean(), model.mean_sojourn(),
              0.05 * model.mean_sojourn());
  EXPECT_NEAR(st.utilization(s.now()), model.utilization(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MmcSweep,
    ::testing::Values(MmcParams{1, 700.0, 1000.0},
                      MmcParams{2, 1'500.0, 1000.0},
                      MmcParams{4, 3'200.0, 1000.0},
                      MmcParams{8, 7'000.0, 1000.0}),
    [](const ::testing::TestParamInfo<MmcParams>& pinfo) {
      return "c" + std::to_string(pinfo.param.c) + "_lam" +
             std::to_string(static_cast<int>(pinfo.param.lambda));
    });

TEST(QueueLengthLaw, FoundInSystemIsGeometricDelta) {
  // GI/M/1 embedded chain: an arriving batch finds Geometric(δ) batches in
  // the system. Facebook workload, no batching for clean counting.
  const double key_rate = 60'000.0;
  const double mu = 80'000.0;
  const auto gap = dist::GeneralizedPareto::with_mean(0.15, 1.0 / key_rate);
  const core::GixM1Queue model(gap, 0.0, mu);

  sim::Simulator s;
  sim::ServiceStation st(s, std::make_unique<dist::Exponential>(mu),
                         dist::Rng(41), [](const sim::Departure&) {});
  dist::Rng arr(42);
  std::uint64_t id = 0;
  std::function<void()> arrive = [&] {
    st.arrive(id++);
    s.schedule_in(gap.sample(arr), arrive);
  };
  s.schedule_in(gap.sample(arr), arrive);
  s.run_until(60.0);

  // Mean found-in-system = δ/(1-δ).
  EXPECT_NEAR(st.found_in_system_stats().mean(), model.mean_queue_length(),
              0.08 * model.mean_queue_length());
}

TEST(QueueLengthLaw, LittleHoldsFromTimeAverageL) {
  const double lambda = 650.0;
  const double mu = 1000.0;
  sim::Simulator s;
  sim::ServiceStation st(s, std::make_unique<dist::Exponential>(mu),
                         dist::Rng(43), [](const sim::Departure&) {});
  dist::Rng arr(44);
  std::uint64_t id = 0;
  std::function<void()> arrive = [&] {
    st.arrive(id++);
    s.schedule_in(arr.exponential(lambda), arrive);
  };
  s.schedule_in(arr.exponential(lambda), arrive);
  s.run_until(600.0);
  const double L = st.time_average_number_in_system(s.now());
  const double W = st.sojourn_stats().mean();
  EXPECT_NEAR(L, lambda * W, 0.05 * L);
  // And both match the M/M/1 value ρ/(1-ρ).
  EXPECT_NEAR(L, 0.65 / 0.35, 0.1);
}

}  // namespace
}  // namespace mclat
