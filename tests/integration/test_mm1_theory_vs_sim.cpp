// Integration: the simulated M/M/1 queue against the textbook closed forms
// across a utilisation sweep. This is the ground-truth anchor for the whole
// testbed — if this drifts, nothing downstream can be trusted.
#include <functional>
#include <memory>

#include "dist/exponential.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include <gtest/gtest.h>

namespace mclat {
namespace {

struct MM1Result {
  double mean_sojourn;
  double mean_waiting;
  double p_wait;  // fraction of jobs that waited at all
  double utilization;
};

MM1Result run_mm1(double lambda, double mu, double horizon,
                  std::uint64_t seed) {
  sim::Simulator s;
  std::uint64_t waited = 0;
  std::uint64_t total = 0;
  sim::ServiceStation st(s, std::make_unique<dist::Exponential>(mu),
                         dist::Rng(seed), [&](const sim::Departure& d) {
                           ++total;
                           if (d.waiting_time() > 1e-12) ++waited;
                         });
  dist::Rng arr(seed ^ 0x1234u);
  std::uint64_t id = 0;
  std::function<void()> arrive = [&] {
    st.arrive(id++);
    s.schedule_in(arr.exponential(lambda), arrive);
  };
  s.schedule_in(arr.exponential(lambda), arrive);
  s.run_until(horizon);
  return MM1Result{st.sojourn_stats().mean(), st.waiting_stats().mean(),
                   static_cast<double>(waited) / static_cast<double>(total),
                   st.utilization(s.now())};
}

class MM1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(MM1Sweep, MatchesClosedFormsAtUtilization) {
  const double rho = GetParam();
  const double mu = 1000.0;
  const double lambda = rho * mu;
  // Longer horizons at higher load: relaxation time scales like 1/(1-ρ)².
  const double horizon = 200.0 / ((1.0 - rho) * (1.0 - rho));
  const MM1Result r = run_mm1(lambda, mu, horizon, 42);

  const double want_sojourn = 1.0 / (mu - lambda);
  const double want_waiting = rho / (mu - lambda);
  EXPECT_NEAR(r.mean_sojourn, want_sojourn, 0.05 * want_sojourn)
      << "rho=" << rho;
  EXPECT_NEAR(r.mean_waiting, want_waiting, 0.07 * want_waiting)
      << "rho=" << rho;
  // PASTA: P{wait > 0} = ρ.
  EXPECT_NEAR(r.p_wait, rho, 0.03) << "rho=" << rho;
  EXPECT_NEAR(r.utilization, rho, 0.03) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(UtilizationGrid, MM1Sweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8, 0.9),
                         [](const ::testing::TestParamInfo<double>& pinfo) {
                           return "rho" +
                                  std::to_string(static_cast<int>(
                                      pinfo.param * 100.0));
                         });

}  // namespace
}  // namespace mclat
