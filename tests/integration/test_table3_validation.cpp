// Integration: a scaled-down Table 3 — theory vs the Mode-A testbed under
// the Facebook workload. The full-duration run lives in
// bench/bench_table3_validation; this keeps CI fast while still executing
// the entire theory+experiment pipeline end to end.
#include <cmath>

#include "cluster/workload_driven.h"
#include "core/theorem1.h"
#include <gtest/gtest.h>

namespace mclat {
namespace {

class Table3 : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster::WorkloadDrivenConfig cfg;
    cfg.system = core::SystemConfig::facebook();
    cfg.common.warmup_time = 0.5;
    cfg.common.measure_time = 4.0;
    cfg.common.seed = 2024;
    requests_ = new cluster::AssembledRequests(
        cluster::run_workload_experiment(cfg, 20'000));
    estimate_ = new core::LatencyEstimate(
        core::LatencyModel(cfg.system).estimate());
  }
  static void TearDownTestSuite() {
    delete requests_;
    delete estimate_;
    requests_ = nullptr;
    estimate_ = nullptr;
  }

  static cluster::AssembledRequests* requests_;
  static core::LatencyEstimate* estimate_;
};

cluster::AssembledRequests* Table3::requests_ = nullptr;
core::LatencyEstimate* Table3::estimate_ = nullptr;

TEST_F(Table3, NetworkRowIsConstant) {
  const auto ci = requests_->network_ci();
  EXPECT_DOUBLE_EQ(ci.mean, estimate_->network);
  EXPECT_EQ(ci.halfwidth, 0.0);
}

TEST_F(Table3, ServerRowNearTheoreticalBand) {
  // The quantile-based E[max] approximation undershoots the true maximum by
  // ≈ γ/η (≈ 40 µs here, documented in EXPERIMENTS.md), so accept the
  // simulated mean within [lower, upper + γ/η] stretched by 5 %.
  const auto ci = requests_->server_ci();
  const double gamma_over_eta = 0.5772 * (estimate_->server.upper /
                                          std::log(151.0));
  EXPECT_GE(ci.mean, estimate_->server.lower * 0.95);
  EXPECT_LE(ci.mean, (estimate_->server.upper + gamma_over_eta) * 1.05);
}

TEST_F(Table3, DatabaseRowNearTheory) {
  // eq. (23) vs simulation: same systematic undershoot; the exact harmonic
  // estimator should land within the CI noise.
  const auto ci = requests_->database_ci();
  EXPECT_GE(ci.mean, estimate_->database * 0.9);
  const core::DatabaseStage db(0.01, 1000.0);
  EXPECT_NEAR(ci.mean, db.expected_max_harmonic(150), 0.06 * ci.mean);
}

TEST_F(Table3, TotalRowInsideTheorem1Envelope) {
  const auto ci = requests_->total_ci();
  // Envelope with the same γ/η allowance on the upper edge.
  EXPECT_GE(ci.mean, estimate_->total.lower * 0.95);
  EXPECT_LE(ci.mean, estimate_->total.upper * 1.25);
}

TEST_F(Table3, ComponentsDominateEachOtherConsistently) {
  // In this configuration the DB stage dominates the server stage, which
  // dominates the network — the paper's qualitative story.
  EXPECT_GT(requests_->database_ci().mean, requests_->server_ci().mean);
  EXPECT_GT(requests_->server_ci().mean, requests_->network_ci().mean);
}

TEST_F(Table3, ConfidenceIntervalsAreTight) {
  // 20k requests should pin the means to a few percent.
  const auto total = requests_->total_ci();
  EXPECT_LT(total.halfwidth, 0.05 * total.mean);
}

}  // namespace
}  // namespace mclat
