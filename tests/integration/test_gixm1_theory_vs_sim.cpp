// Integration: GI^X/M/1 with real geometric batches — the paper's actual
// server model (§4.3.1) — simulated vs the δ-based bounds of eq. (9).
#include <memory>
#include <vector>

#include "core/gixm1.h"
#include "dist/empirical.h"
#include "dist/generalized_pareto.h"
#include "dist/exponential.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"
#include <gtest/gtest.h>

namespace mclat {
namespace {

dist::Empirical simulate_sojourns(double xi, double q, double key_rate,
                                  double mu, double horizon,
                                  std::uint64_t seed) {
  sim::Simulator s;
  std::vector<double> sojourns;
  sim::ServiceStation st(s, std::make_unique<dist::Exponential>(mu),
                         dist::Rng(seed), [&](const sim::Departure& d) {
                           if (d.arrival > 5.0) {
                             sojourns.push_back(d.sojourn_time());
                           }
                         });
  const double batch_rate = (1.0 - q) * key_rate;
  const auto gap = dist::GeneralizedPareto::with_mean(xi, 1.0 / batch_rate);
  std::uint64_t id = 0;
  sim::BatchSource src(s, gap.clone(), dist::GeometricBatch(q),
                       dist::Rng(seed ^ 0xabcd),
                       [&](std::uint64_t n) {
                         for (std::uint64_t i = 0; i < n; ++i)
                           st.arrive(id++);
                       });
  src.start();
  s.run_until(horizon);
  return dist::Empirical(std::move(sojourns));
}

TEST(GixM1Integration, FacebookWorkloadQuantilesRespectEq9) {
  // The Fig. 4 check at test scale: simulated per-key sojourn quantiles sit
  // inside (and near) the eq. (9) band.
  const double xi = 0.15;
  const double q = 0.1;
  const double key_rate = 62'500.0;
  const double mu = 80'000.0;
  const auto gap =
      dist::GeneralizedPareto::with_mean(xi, 1.0 / ((1.0 - q) * key_rate));
  const core::GixM1Queue model(gap, q, mu);
  const dist::Empirical sim =
      simulate_sojourns(xi, q, key_rate, mu, 60.0, 3);
  ASSERT_GT(sim.size(), 1'000'000u);

  for (const double k : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    const core::Bounds b = model.sojourn_quantile_bounds(k);
    const double measured = sim.quantile(k);
    // Allow a small statistical margin around the theoretical band.
    EXPECT_GE(measured, b.lower * 0.9 - 2e-6) << "k=" << k;
    EXPECT_LE(measured, b.upper * 1.1 + 2e-6) << "k=" << k;
  }
  // Mean within the [δ/η, 1/η] band.
  const core::Bounds mean_b = model.mean_sojourn_bounds();
  EXPECT_GE(sim.mean(), mean_b.lower * 0.93);
  EXPECT_LE(sim.mean(), mean_b.upper * 1.07);
}

TEST(GixM1Integration, ConcurrencyDrivesLatencyTheta1Over1MinusQ) {
  // §5.2.1 i at fixed key rate: measured mean sojourn grows like 1/(1-q).
  const double key_rate = 40'000.0;
  const double mu = 80'000.0;
  const double m_q0 =
      simulate_sojourns(0.0, 0.0, key_rate, mu, 30.0, 5).mean();
  const double m_q05 =
      simulate_sojourns(0.0, 0.5, key_rate, mu, 30.0, 6).mean();
  EXPECT_NEAR(m_q05 / m_q0, 2.0, 0.35);
}

TEST(GixM1Integration, BurstDegreeInflatesTail) {
  const double key_rate = 48'000.0;
  const double mu = 80'000.0;
  const dist::Empirical calm =
      simulate_sojourns(0.0, 0.1, key_rate, mu, 30.0, 7);
  const dist::Empirical bursty =
      simulate_sojourns(0.6, 0.1, key_rate, mu, 30.0, 8);
  EXPECT_GT(bursty.quantile(0.99), 1.5 * calm.quantile(0.99));
  EXPECT_GT(bursty.mean(), calm.mean());
}

TEST(GixM1Integration, ModelTracksSimAcrossUtilizations) {
  // Fig. 7's engine at test scale: mean sojourn vs λ stays inside the
  // eq.-9 mean band across the sweep.
  const double mu = 80'000.0;
  for (const double key_rate : {20'000.0, 40'000.0, 60'000.0}) {
    const double q = 0.1;
    const auto gap = dist::GeneralizedPareto::with_mean(
        0.15, 1.0 / ((1.0 - q) * key_rate));
    const core::GixM1Queue model(gap, q, mu);
    const double measured =
        simulate_sojourns(0.15, q, key_rate, mu, 40.0, 11).mean();
    const core::Bounds b = model.mean_sojourn_bounds();
    EXPECT_GE(measured, b.lower * 0.9) << "rate=" << key_rate;
    EXPECT_LE(measured, b.upper * 1.1) << "rate=" << key_rate;
  }
}

}  // namespace
}  // namespace mclat
