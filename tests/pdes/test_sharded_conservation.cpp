// Conservation laws of the sharded engine: nothing forked is ever lost
// across the shard mailboxes — every key joins, every miss either fetches
// or parks-and-releases, every replica resolves (win, lose, or cancel).
// The engine also asserts these internally after the drain (check_drained
// throws on any leak), so each passing run doubles as a structural check.
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "cluster/trace_replay.h"
#include "cluster/workload_driven.h"
#include "workload/request_stream.h"

namespace mclat::cluster {
namespace {

EndToEndConfig base_config() {
  EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = 6;
  cfg.system.total_key_rate = 6.0 * 20'000.0;
  cfg.system.keys_per_request = 8;
  cfg.system.network_latency = 1e-3;
  cfg.common.warmup_time = 0.05;
  cfg.common.measure_time = 0.4;
  cfg.common.seed = 11;
  cfg.common.shard_jobs = 3;
  return cfg;
}

/// Recovers the measured miss count from the reported ratio (the ratio is
/// computed as misses / keys in exact integer arithmetic cast to double,
/// so the round-trip is exact for any realistic count).
std::uint64_t measured_misses(double ratio, std::uint64_t keys) {
  return static_cast<std::uint64_t>(
      std::llround(ratio * static_cast<double>(keys)));
}

TEST(ShardedConservation, MissesSplitExactlyIntoFetchesAndDelayedHits) {
  EndToEndConfig cfg = base_config();
  cfg.system.miss_ratio = 0.3;
  cfg.common.coalescing = MissCoalescing::kPerServer;
  const EndToEndResult r = EndToEndSim(cfg).run();
  EXPECT_GT(r.requests_completed, 100u);
  // Bernoulli keys carry rank 0, so coalescing degenerates to per-server
  // single-flight and delayed hits are plentiful at r = 0.3.
  EXPECT_GT(r.measured_delayed_hits, 0u);
  const std::uint64_t misses = measured_misses(
      r.measured_miss_ratio,
      r.requests_completed * cfg.system.keys_per_request);
  EXPECT_EQ(misses, r.measured_db_fetches + r.measured_delayed_hits);
}

TEST(ShardedConservation, EveryForkedKeyJoins) {
  const EndToEndConfig cfg = base_config();
  const EndToEndResult r = EndToEndSim(cfg).run();
  // keys_completed counts every key of every request (measured or not);
  // requests_completed only measured joins. Both only exist because the
  // engine's post-drain invariants (no open requests, no in-flight keys,
  // no outstanding fetches, no live replicas) held.
  EXPECT_GT(r.keys_completed,
            r.requests_completed * cfg.system.keys_per_request);
  EXPECT_EQ(r.total_samples.size(), r.requests_completed);
}

TEST(ShardedConservation, ImmediateReplicationResolvesEveryReplica) {
  EndToEndConfig cfg = base_config();
  cfg.redundancy = RedundancyPolicy::immediate(3, LoserMode::kLetLosersRun);
  const EndToEndResult r = EndToEndSim(cfg).run();
  EXPECT_GT(r.requests_completed, 100u);
  // Losers ran to completion: no cancellations, wasted service piled up.
  EXPECT_EQ(r.replicas_cancelled, 0u);
  EXPECT_GT(r.replica_wasted_service, 0.0);
  EXPECT_EQ(r.hedges_fired, 0u);
}

TEST(ShardedConservation, CancelOnWinCancelsOnlyQueuedLosers) {
  EndToEndConfig cfg = base_config();
  cfg.system.total_key_rate = 6.0 * 45'000.0;  // queues long enough to catch
  cfg.redundancy = RedundancyPolicy::immediate(2, LoserMode::kCancelOnWin);
  const EndToEndResult r = EndToEndSim(cfg).run();
  EXPECT_GT(r.replicas_cancelled, 0u);
  // A cancelled replica burned no service; in-service losers still show up
  // as wasted service. Both paths must coexist under load.
  EXPECT_GT(r.replica_wasted_service, 0.0);
}

TEST(ShardedConservation, ReplayCompletesEveryTraceRecord) {
  workload::RequestStreamConfig sc;
  sc.request_rate = 3000.0;
  sc.keys_per_request = 12;
  sc.keyspace_size = 30'000;
  sc.zipf_exponent = 0.9;
  workload::RequestStream stream(sc, dist::Rng(17));
  const workload::Trace trace = stream.generate_trace(600);

  TraceReplayConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = 6;
  cfg.system.miss_ratio = 0.2;
  cfg.system.network_latency = 1e-3;
  cfg.common.seed = 5;
  cfg.common.shard_jobs = 3;
  cfg.common.coalescing = MissCoalescing::kPerServer;
  const TraceReplayResult r = TraceReplaySim(cfg).run(trace, stream.keyspace());
  EXPECT_EQ(r.requests_completed, 600u);
  EXPECT_EQ(r.keys_completed, trace.size());
  // Replay counters are ungated, so conservation is exact by field.
  const std::uint64_t misses =
      measured_misses(r.measured_miss_ratio, r.keys_completed);
  EXPECT_EQ(misses, r.db_fetches + r.delayed_hits);
  EXPECT_GT(r.delayed_hits, 0u);

  // And the replay contract is shard-count invariant too.
  TraceReplayConfig cfg6 = cfg;
  cfg6.common.shard_jobs = 6;
  const TraceReplayResult r6 =
      TraceReplaySim(cfg6).run(trace, stream.keyspace());
  EXPECT_EQ(r6.keys_completed, r.keys_completed);
  EXPECT_EQ(r6.db_fetches, r.db_fetches);
  EXPECT_EQ(r6.delayed_hits, r.delayed_hits);
  EXPECT_DOUBLE_EQ(r6.total.mean, r.total.mean);
  EXPECT_DOUBLE_EQ(r6.horizon, r.horizon);
}

TEST(ShardedConservation, WorkloadDrivenRejectsShardJobs) {
  WorkloadDrivenConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.common.shard_jobs = 2;
  EXPECT_THROW(WorkloadDrivenSim{cfg}, std::invalid_argument);
}

TEST(ShardedConservation, ZeroShardJobsIsRejectedByValidation) {
  EndToEndConfig cfg = base_config();
  cfg.common.shard_jobs = 0;
  EXPECT_THROW(EndToEndSim{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster
