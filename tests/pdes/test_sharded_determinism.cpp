// The sharded cluster engine's determinism contract (DESIGN.md §4i):
//
//   * shard_jobs == 1 routes through the untouched serial loop — results
//     are bit-identical to a config that never mentions shard_jobs;
//   * a sharded run is bit-reproducible across repeated runs (the worker
//     threads race only over wall-clock, never over the schedule);
//   * results are invariant under the shard count K — the RNG streams are
//     split per *global* server and all cross-shard traffic is totally
//     ordered by (time, origin, sequence) with K-independent origins.
//
// "Bit-identical" is meant literally: memcmp on doubles, == on counters.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "workload/request_stream.h"

namespace mclat::cluster {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// Small but non-trivial: 8 servers, moderate load, a fat network delay so
// the lookahead windows are coarse and the test stays fast on one core.
EndToEndConfig sharded_config(std::size_t shard_jobs) {
  EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = 8;
  cfg.system.total_key_rate = 8.0 * 20'000.0;
  cfg.system.keys_per_request = 10;
  cfg.system.network_latency = 1e-3;
  cfg.common.warmup_time = 0.05;
  cfg.common.measure_time = 0.4;
  cfg.common.seed = 33;
  cfg.common.shard_jobs = shard_jobs;
  return cfg;
}

void expect_identical(const EndToEndResult& a, const EndToEndResult& b) {
  EXPECT_TRUE(same_bits(a.total.mean, b.total.mean));
  EXPECT_TRUE(same_bits(a.server.mean, b.server.mean));
  EXPECT_TRUE(same_bits(a.database.mean, b.database.mean));
  EXPECT_TRUE(same_bits(a.measured_miss_ratio, b.measured_miss_ratio));
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.keys_completed, b.keys_completed);
  EXPECT_EQ(a.measured_db_fetches, b.measured_db_fetches);
  EXPECT_EQ(a.measured_delayed_hits, b.measured_delayed_hits);
  ASSERT_EQ(a.total_samples.size(), b.total_samples.size());
  for (std::size_t i = 0; i < a.total_samples.size(); ++i) {
    ASSERT_TRUE(same_bits(a.total_samples[i], b.total_samples[i]))
        << "sample " << i;
  }
  ASSERT_EQ(a.server_utilization.size(), b.server_utilization.size());
  for (std::size_t j = 0; j < a.server_utilization.size(); ++j) {
    EXPECT_TRUE(same_bits(a.server_utilization[j], b.server_utilization[j]))
        << "server " << j;
  }
}

TEST(ShardedDeterminism, ShardJobsOneIsTheSerialPathBitForBit) {
  EndToEndConfig plain = sharded_config(1);
  // A config that predates the knob entirely (the default value).
  EndToEndConfig untouched = sharded_config(1);
  untouched.common.shard_jobs = 1;
  const EndToEndResult a = EndToEndSim(plain).run();
  const EndToEndResult b = EndToEndSim(untouched).run();
  expect_identical(a, b);
  EXPECT_GT(a.requests_completed, 100u);
}

TEST(ShardedDeterminism, ShardedRunIsBitReproducible) {
  const EndToEndResult a = EndToEndSim(sharded_config(4)).run();
  const EndToEndResult b = EndToEndSim(sharded_config(4)).run();
  expect_identical(a, b);
  EXPECT_GT(a.requests_completed, 100u);
}

TEST(ShardedDeterminism, ResultsAreInvariantUnderTheShardCount) {
  const EndToEndResult k2 = EndToEndSim(sharded_config(2)).run();
  const EndToEndResult k3 = EndToEndSim(sharded_config(3)).run();
  const EndToEndResult k8 = EndToEndSim(sharded_config(8)).run();
  // Requesting more shards than servers clamps to M.
  const EndToEndResult k64 = EndToEndSim(sharded_config(64)).run();
  expect_identical(k2, k3);
  expect_identical(k2, k8);
  expect_identical(k8, k64);
}

TEST(ShardedDeterminism, ShardedAgreesWithSerialStatistically) {
  // Distinct sampling contracts, same system: means must agree within CI
  // noise even though the schedules differ sample for sample.
  EndToEndConfig serial_cfg = sharded_config(1);
  serial_cfg.common.measure_time = 1.0;
  EndToEndConfig sharded_cfg = sharded_config(4);
  sharded_cfg.common.measure_time = 1.0;
  const EndToEndResult s = EndToEndSim(serial_cfg).run();
  const EndToEndResult p = EndToEndSim(sharded_cfg).run();
  EXPECT_NEAR(p.total.mean, s.total.mean, 0.25 * s.total.mean);
  EXPECT_NEAR(p.measured_miss_ratio, s.measured_miss_ratio, 0.01);
  EXPECT_TRUE(same_bits(p.network.mean, s.network.mean));
}

TEST(ShardedDeterminism, CoalescingShardedRunsAreShardCountInvariant) {
  EndToEndConfig cfg = sharded_config(2);
  cfg.system.miss_ratio = 0.2;
  cfg.common.coalescing = MissCoalescing::kPerServer;
  EndToEndConfig cfg5 = cfg;
  cfg5.common.shard_jobs = 5;
  const EndToEndResult a = EndToEndSim(cfg).run();
  const EndToEndResult b = EndToEndSim(cfg5).run();
  expect_identical(a, b);
  EXPECT_GT(a.measured_delayed_hits, 0u);
}

TEST(ShardedDeterminism, HedgedCancellingRunsAreShardCountInvariant) {
  EndToEndConfig cfg = sharded_config(2);
  // Load the servers enough that hedges actually fire.
  cfg.system.total_key_rate = 8.0 * 50'000.0;
  cfg.redundancy = RedundancyPolicy::hedged(2, 0.9, /*deadline_floor=*/1e-4);
  EndToEndConfig cfg4 = cfg;
  cfg4.common.shard_jobs = 4;
  const EndToEndResult a = EndToEndSim(cfg).run();
  const EndToEndResult b = EndToEndSim(cfg4).run();
  expect_identical(a, b);
  EXPECT_EQ(a.hedges_fired, b.hedges_fired);
  EXPECT_EQ(a.replicas_cancelled, b.replicas_cancelled);
  EXPECT_TRUE(same_bits(a.replica_wasted_service, b.replica_wasted_service));
}

TEST(ShardedDeterminism, RealCacheRunsAreShardCountInvariant) {
  EndToEndConfig cfg = sharded_config(2);
  cfg.miss_mode = MissMode::kRealCache;
  cfg.mapper = MapperKind::kRing;
  cfg.keyspace_size = 20'000;
  cfg.zipf_exponent = 1.0;
  cfg.common.cache_bytes_per_server = 1u << 20;
  cfg.system.total_key_rate = 8.0 * 10'000.0;
  EndToEndConfig cfg7 = cfg;
  cfg7.common.shard_jobs = 7;
  const EndToEndResult a = EndToEndSim(cfg).run();
  const EndToEndResult b = EndToEndSim(cfg7).run();
  expect_identical(a, b);
  EXPECT_GT(a.measured_miss_ratio, 0.0);
}

TEST(ShardedDeterminism, LargeKeyspaceBoundedTableIsShardCountInvariant) {
  // The ISSUE-9 scale point: 10^7 keys across 128 ring servers with the
  // KeyTable capped at 8 MiB — far below the ~500 MiB an unbounded table
  // would need for this keyspace. Under shard_jobs > 1 every shard owns a
  // *private* bounded table (plus the coordinator's routing table), so
  // which chunks are resident at any instant differs wildly between K=2
  // and K=4 — yet every column is a pure function of rank, so the results
  // must stay bit-identical (DESIGN.md §4i/§4j).
  //
  // Arrival volume is deliberately tiny: with Zipf 0.99 over 10^7 ranks
  // most tail accesses land in distinct cold chunks, and each cold chunk
  // build costs ~2 ms (1024 rank-seeded RNG constructions) — multiplied
  // again under TSan, where this suite also runs.
  EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = 128;
  cfg.system.total_key_rate = 128.0 * 60.0;
  cfg.system.keys_per_request = 4;
  cfg.system.network_latency = 1e-3;
  cfg.miss_mode = MissMode::kRealCache;
  cfg.mapper = MapperKind::kRing;
  cfg.keyspace_size = 10'000'000;
  cfg.zipf_exponent = 0.99;
  cfg.common.cache_bytes_per_server = 128u << 10;
  cfg.common.keytable_budget_bytes = 8u << 20;
  cfg.common.warmup_time = 0.02;
  cfg.common.measure_time = 0.1;
  cfg.common.seed = 91;
  cfg.common.shard_jobs = 2;
  EndToEndConfig cfg4 = cfg;
  cfg4.common.shard_jobs = 4;
  const EndToEndResult a = EndToEndSim(cfg).run();
  const EndToEndResult b = EndToEndSim(cfg4).run();
  expect_identical(a, b);
  EXPECT_GT(a.requests_completed, 50u);
  // Nearly every access is a cold miss at this cache:keyspace ratio.
  EXPECT_GT(a.measured_miss_ratio, 0.5);
}

TEST(ShardedDeterminism, ShardedRejectsAQueueingDatabase) {
  EndToEndConfig cfg = sharded_config(4);
  cfg.db_mode = DbMode::kSingleServer;
  EXPECT_THROW(EndToEndSim{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster
