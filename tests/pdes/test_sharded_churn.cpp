// Shard-count invariance of membership churn (DESIGN.md §4k).
//
// Churn events originate at the coordinator LP and reach the shards as
// lookahead-respecting messages, the ring slots (initial + every possible
// join) are RNG-provisioned up front, and failover bounces ride the same
// totally-ordered (time, origin, sequence) channel as arrivals — so a churn
// run must be bit-identical across --shard-jobs, exactly like the static
// contract tests in test_sharded_determinism.cpp. Runs under TSan in CI.
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "cluster/membership.h"

namespace mclat::cluster {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// 8 ring servers with real caches, one cold join and one abrupt leave mid
// measurement; fat network delay keeps the lookahead windows coarse.
EndToEndConfig churned_config(std::size_t shard_jobs) {
  EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = 8;
  cfg.system.total_key_rate = 8.0 * 20'000.0;
  cfg.system.keys_per_request = 10;
  cfg.system.network_latency = 1e-3;
  cfg.miss_mode = MissMode::kRealCache;
  cfg.mapper = MapperKind::kRing;
  cfg.keyspace_size = 20'000;
  cfg.zipf_exponent = 1.0;
  cfg.common.cache_bytes_per_server = 256u << 10;
  cfg.common.warmup_time = 0.05;
  cfg.common.measure_time = 0.4;
  cfg.common.seed = 33;
  cfg.common.shard_jobs = shard_jobs;
  cfg.common.churn = MembershipSchedule::parse("join@0.15,leave:2@0.3");
  return cfg;
}

void expect_identical(const EndToEndResult& a, const EndToEndResult& b) {
  EXPECT_TRUE(same_bits(a.total.mean, b.total.mean));
  EXPECT_TRUE(same_bits(a.server.mean, b.server.mean));
  EXPECT_TRUE(same_bits(a.database.mean, b.database.mean));
  EXPECT_TRUE(same_bits(a.measured_miss_ratio, b.measured_miss_ratio));
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.keys_completed, b.keys_completed);
  EXPECT_EQ(a.measured_db_fetches, b.measured_db_fetches);
  ASSERT_EQ(a.total_samples.size(), b.total_samples.size());
  for (std::size_t i = 0; i < a.total_samples.size(); ++i) {
    ASSERT_TRUE(same_bits(a.total_samples[i], b.total_samples[i]))
        << "sample " << i;
  }
  ASSERT_EQ(a.server_utilization.size(), b.server_utilization.size());
  for (std::size_t j = 0; j < a.server_utilization.size(); ++j) {
    EXPECT_TRUE(same_bits(a.server_utilization[j], b.server_utilization[j]))
        << "server " << j;
  }
  // The churn observability must agree too — not just the latency stats.
  const ChurnStats& ca = a.churn;
  const ChurnStats& cb = b.churn;
  EXPECT_EQ(ca.events, cb.events);
  EXPECT_EQ(ca.failovers, cb.failovers);
  EXPECT_EQ(ca.slots_retired, cb.slots_retired);
  EXPECT_EQ(ca.refill_storm_bytes, cb.refill_storm_bytes);
  EXPECT_EQ(ca.resident_items_end, cb.resident_items_end);
  EXPECT_EQ(ca.resident_bytes_end, cb.resident_bytes_end);
  ASSERT_EQ(ca.epochs.size(), cb.epochs.size());
  for (std::size_t e = 0; e < ca.epochs.size(); ++e) {
    EXPECT_EQ(ca.epochs[e].keys, cb.epochs[e].keys) << "epoch " << e;
    EXPECT_EQ(ca.epochs[e].misses, cb.epochs[e].misses) << "epoch " << e;
    EXPECT_TRUE(same_bits(ca.epochs[e].p99_key_latency_us,
                          cb.epochs[e].p99_key_latency_us))
        << "epoch " << e;
  }
}

TEST(ShardedChurn, RunsAreBitReproducible) {
  const EndToEndResult a = EndToEndSim(churned_config(4)).run();
  const EndToEndResult b = EndToEndSim(churned_config(4)).run();
  expect_identical(a, b);
  EXPECT_GT(a.requests_completed, 100u);
  EXPECT_EQ(a.churn.events, 2u);
}

TEST(ShardedChurn, ResultsAreInvariantUnderTheShardCount) {
  const EndToEndResult k2 = EndToEndSim(churned_config(2)).run();
  const EndToEndResult k4 = EndToEndSim(churned_config(4)).run();
  const EndToEndResult k8 = EndToEndSim(churned_config(8)).run();
  expect_identical(k2, k4);
  expect_identical(k2, k8);
  // The scenario actually exercised both event kinds.
  EXPECT_EQ(k2.churn.joins, 1u);
  EXPECT_EQ(k2.churn.leaves, 1u);
  EXPECT_GT(k2.churn.refill_storm_bytes, 0u);
}

}  // namespace
}  // namespace mclat::cluster
