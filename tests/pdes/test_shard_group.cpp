// sim::ShardGroup kernel contracts: the lookahead precondition on post(),
// message conservation, window safety under randomized cross-LP traffic,
// and bit-level invariance of the committed schedule under the worker
// count (the whole point of a *conservative* parallel DES: threads change
// wall-clock, never results).
#include "sim/sharded.h"

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "dist/rng.h"

namespace mclat::sim {
namespace {

constexpr double kLookahead = 0.25;

/// A randomized message storm: each LP runs a chain of local events; every
/// event logs (lp, time-bits) into its LP's private log and with some
/// probability posts a continuation to a random LP at now + lookahead.
/// Per-LP logs are written only by the owning LP's thread, so the harness
/// itself is race-free; concatenated in LP order they are the committed
/// schedule the worker-count invariance test compares.
struct Storm {
  explicit Storm(std::size_t lps, std::uint64_t seed)
      : group(lps, kLookahead), logs(lps), posted(lps, 0) {
    for (std::size_t lp = 0; lp < lps; ++lp) rngs.emplace_back(seed + lp);
  }

  void local_chain(std::size_t lp, int remaining) {
    Simulator& s = group.shard(lp);
    logs[lp].push_back(Simulator::time_key(s.now()));
    if (remaining <= 0) return;
    // Local hop, always strictly inside the current window's reach.
    s.schedule_in(0.01 + rngs[lp].uniform() * 0.05,
                  [this, lp, remaining] { local_chain(lp, remaining - 1); });
    if (rngs[lp].uniform() < 0.6) {
      const auto to = static_cast<std::size_t>(
          rngs[lp].uniform_index(group.lps()));
      ++posted[lp];
      group.post(lp, to, /*origin=*/lp, s.now() + kLookahead,
                 InlineCallback([this, to, remaining] {
                   local_chain(to, remaining - 1);
                 }));
    }
  }

  void seed_and_run(std::size_t workers, int chains, int depth) {
    for (std::size_t lp = 0; lp < group.lps(); ++lp) {
      for (int c = 0; c < chains; ++c) {
        group.shard(lp).schedule_at(0.1 * (c + 1), [this, lp, depth] {
          local_chain(lp, depth);
        });
      }
    }
    group.run(workers);
  }

  [[nodiscard]] std::uint64_t total_posted() const {
    std::uint64_t t = 0;
    for (const std::uint64_t p : posted) t += p;
    return t;
  }

  ShardGroup group;
  std::vector<dist::Rng> rngs;
  std::vector<std::vector<std::uint64_t>> logs;
  std::vector<std::uint64_t> posted;  // per-LP, like the logs: one writer
};

TEST(ShardGroup, PostBelowTheLookaheadBoundThrows) {
  ShardGroup g(2, kLookahead);
  g.shard(0).schedule_at(1.0, [&g] {
    g.post(0, 1, 0, 1.0 + kLookahead * 0.5, InlineCallback([] {}));
  });
  EXPECT_THROW(g.run(1), std::invalid_argument);
}

TEST(ShardGroup, PostAtExactlyTheLookaheadIsAccepted) {
  ShardGroup g(2, kLookahead);
  bool delivered = false;
  g.shard(0).schedule_at(1.0, [&] {
    g.post(0, 1, 0, 1.0 + kLookahead,
           InlineCallback([&delivered] { delivered = true; }));
  });
  g.run(1);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(g.messages_delivered(), 1u);
}

TEST(ShardGroup, OutOfRangeLpThrows) {
  ShardGroup g(2, kLookahead);
  g.shard(0).schedule_at(1.0, [&g] {
    g.post(0, 2, 0, 1.0 + kLookahead, InlineCallback([] {}));
  });
  EXPECT_THROW(g.run(1), std::invalid_argument);
}

TEST(ShardGroup, EveryPostIsDeliveredExactlyOnce) {
  // Single worker: Storm::posted has one writer, so the count is exact.
  Storm storm(4, /*seed=*/7);
  storm.seed_and_run(/*workers=*/1, /*chains=*/3, /*depth=*/12);
  EXPECT_GT(storm.total_posted(), 0u);
  EXPECT_EQ(storm.group.messages_delivered(), storm.total_posted());
  EXPECT_GT(storm.group.windows_run(), 1u);
}

TEST(ShardGroup, CommittedScheduleIsInvariantUnderWorkerCount) {
  // The same storm on 1 worker and on one-thread-per-LP must execute the
  // identical per-LP event sequences, bit for bit. Window safety is
  // enforced inside the group (a message landing inside a committed window
  // throws), so a passing run doubles as the safety property.
  Storm serial(5, /*seed=*/21);
  serial.seed_and_run(/*workers=*/1, /*chains=*/2, /*depth=*/16);
  Storm parallel(5, /*seed=*/21);
  parallel.seed_and_run(/*workers=*/5, /*chains=*/2, /*depth=*/16);
  ASSERT_EQ(serial.logs.size(), parallel.logs.size());
  for (std::size_t lp = 0; lp < serial.logs.size(); ++lp) {
    EXPECT_EQ(serial.logs[lp], parallel.logs[lp]) << "LP " << lp;
  }
  EXPECT_EQ(serial.group.events_executed(), parallel.group.events_executed());
  EXPECT_EQ(serial.group.messages_delivered(),
            parallel.group.messages_delivered());
}

TEST(ShardGroup, WorkerExceptionsPropagateAfterTheBarrier) {
  ShardGroup g(3, kLookahead);
  g.shard(1).schedule_at(0.5, [] {
    throw std::runtime_error("boom inside LP 1");
  });
  g.shard(0).schedule_at(0.4, [] {});
  EXPECT_THROW(g.run(3), std::runtime_error);
}

TEST(ShardGroup, EmptyGroupTerminates) {
  ShardGroup g(4, kLookahead);
  g.run(4);
  EXPECT_EQ(g.events_executed(), 0u);
}

}  // namespace
}  // namespace mclat::sim
