// Redundant request assembly (the Mode-A side of the redundancy extension).
#include "cluster/workload_driven.h"

#include "core/redundancy.h"
#include <gtest/gtest.h>

namespace mclat::cluster {
namespace {

class RedundantAssembly : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::SystemConfig sys = core::SystemConfig::facebook();
    sys.total_key_rate = 4.0 * 2.0 * 16'000.0;  // inflated for d = 2
    WorkloadDrivenConfig cfg;
    cfg.system = sys;
    cfg.common.warmup_time = 0.2;
    cfg.common.measure_time = 2.0;
    cfg.common.seed = 5;
    pools_ = new MeasurementPools(WorkloadDrivenSim(cfg).run());
    base_ = new core::SystemConfig(sys);
    base_->total_key_rate = 4.0 * 16'000.0;  // the pre-inflation base
  }
  static void TearDownTestSuite() {
    delete pools_;
    delete base_;
    pools_ = nullptr;
    base_ = nullptr;
  }

  static MeasurementPools* pools_;
  static core::SystemConfig* base_;
};

MeasurementPools* RedundantAssembly::pools_ = nullptr;
core::SystemConfig* RedundantAssembly::base_ = nullptr;

TEST_F(RedundantAssembly, DOneMatchesPlainAssembly) {
  dist::Rng rng_a(1);
  dist::Rng rng_b(1);
  const AssembledRequests plain =
      assemble_requests(*pools_, *base_, 4000, 100, rng_a);
  const AssembledRequests red =
      assemble_requests_redundant(*pools_, *base_, 4000, 100, 1, rng_b);
  // Same RNG stream and semantics at d = 1: identical results.
  ASSERT_EQ(plain.total.size(), red.total.size());
  for (std::size_t i = 0; i < plain.total.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.server[i], red.server[i]);
    EXPECT_DOUBLE_EQ(plain.total[i], red.total[i]);
  }
}

TEST_F(RedundantAssembly, MinOfTwoShrinksTheServerComponent) {
  dist::Rng rng(2);
  const double d1 =
      assemble_requests_redundant(*pools_, *base_, 6000, 100, 1, rng)
          .server_ci()
          .mean;
  const double d2 =
      assemble_requests_redundant(*pools_, *base_, 6000, 100, 2, rng)
          .server_ci()
          .mean;
  EXPECT_LT(d2, d1);
}

TEST_F(RedundantAssembly, MatchesRedundancyModelBand) {
  // The pools were generated at the d=2-inflated load; theory at d=2 of
  // the base config must bracket the measurement (with the usual gamma
  // slack on the upper edge).
  const core::RedundancyModel model(*base_, 2);
  ASSERT_TRUE(model.stable());
  dist::Rng rng(3);
  const double measured =
      assemble_requests_redundant(*pools_, *base_, 10'000, 150, 2, rng)
          .server_ci()
          .mean;
  const core::Bounds b = model.expected_max_bounds(150);
  EXPECT_GE(measured, b.lower * 0.85);
  EXPECT_LE(measured, b.upper * 1.45);
}

TEST_F(RedundantAssembly, EnvelopeHoldsPerRequest) {
  dist::Rng rng(4);
  const AssembledRequests reqs =
      assemble_requests_redundant(*pools_, *base_, 2000, 50, 3, rng);
  for (std::size_t i = 0; i < reqs.total.size(); ++i) {
    EXPECT_LE(reqs.server[i], reqs.total[i]);
    EXPECT_LE(reqs.total[i],
              reqs.network[i] + reqs.server[i] + reqs.database[i] + 1e-12);
  }
}

TEST_F(RedundantAssembly, ValidatesArguments) {
  dist::Rng rng(5);
  EXPECT_THROW((void)assemble_requests_redundant(*pools_, *base_, 10, 10, 0,
                                                 rng),
               std::invalid_argument);
  EXPECT_THROW((void)assemble_requests_redundant(*pools_, *base_, 0, 10, 2,
                                                 rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster
