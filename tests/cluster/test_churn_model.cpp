// Model-validation tier: post-rebalance steady state vs the Ji/Quan/Tan
// asymptotics (arXiv:1801.02436; DESIGN.md §4k).
//
// Their theorem: as the server count grows, a cluster of LRU caches behind
// consistent hashing has the same asymptotic miss ratio as ONE LRU cache of
// the aggregate capacity — evaluated here with the Che characteristic-time
// approximation (core/lru_asymptotics.h). A membership event is exactly the
// perturbation the theorem says washes out: the ring rebalances, ~1/M of
// keys move, the refill storm passes, and the *post-event steady state*
// must return to the same aggregate-capacity prediction.
//
// The comparison is self-calibrating: the predicted miss ratio is evaluated
// at the cluster's own measured end-of-run occupancy (churn.resident_items
// summed over live stores), so no assumption about the value-size model or
// slab overheads enters the theory side.
//
// The same ≥128-server configuration also pins the acceptance bit: churn
// results are invariant under --shard-jobs ∈ {1, 2, 4}.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "cluster/membership.h"
#include "core/lru_asymptotics.h"
#include "workload/keyspace.h"

namespace mclat::cluster {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// 128 ring servers joined by a cold 129th at t = 0.4. Light per-server
// load (no queueing) keeps the event count down; the horizon leaves ~2.6
// simulated seconds (~650k key accesses, ~45x the aggregate capacity in
// items) for the post-join LRU contents to reach steady state.
EndToEndConfig model_config(std::size_t shard_jobs) {
  EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = 128;
  cfg.system.total_key_rate = 128.0 * 2'000.0;
  cfg.system.keys_per_request = 8;
  cfg.system.network_latency = 1e-3;
  cfg.miss_mode = MissMode::kRealCache;
  cfg.mapper = MapperKind::kRing;
  cfg.keyspace_size = 100'000;
  cfg.zipf_exponent = 0.99;
  cfg.common.cache_bytes_per_server = 8u << 10;
  // Clamp the value-size model to constant 1-byte values: every item lands
  // in one slab class, so the store's per-class LRU *is* the single global
  // LRU the theorem's aggregate-capacity equivalence assumes. With the
  // heavy-tailed Facebook sizes at this tiny per-server capacity the
  // per-class LRUs hold a handful of items each and slab granularity — not
  // LRU dynamics — dominates the measured miss ratio.
  cfg.common.max_value_bytes = 1;
  cfg.common.warmup_time = 0.3;
  cfg.common.measure_time = 2.7;
  cfg.common.seed = 71;
  cfg.common.shard_jobs = shard_jobs;
  cfg.common.churn = MembershipSchedule::parse("join@0.4");
  return cfg;
}

TEST(ChurnModel, PostRebalanceSteadyStateMatchesJiQuanTan) {
  const EndToEndConfig cfg = model_config(1);
  const EndToEndResult r = EndToEndSim(cfg).run();
  const ChurnStats& cs = r.churn;
  ASSERT_EQ(cs.live_servers_end, 129u);
  ASSERT_EQ(cs.epochs.size(), 2u);
  const ChurnEpochWindow& post = cs.epochs.back();
  ASSERT_GT(post.keys, 100'000u) << "post-join window too thin to compare";

  // Aggregate-capacity equivalence: one LRU cache holding exactly as many
  // items as the 129 live stores hold together.
  ASSERT_GT(cs.resident_items_end, 0u);
  const workload::KeySpace keyspace(cfg.keyspace_size, cfg.zipf_exponent);
  std::vector<double> pmf(cfg.keyspace_size);
  for (std::uint64_t k = 0; k < cfg.keyspace_size; ++k) {
    pmf[k] = keyspace.popularity().pmf(k);
  }
  const double predicted = core::lru_miss_ratio_che(
      pmf, static_cast<double>(cs.resident_items_end));
  ASSERT_GT(predicted, 0.0);
  ASSERT_LT(predicted, 1.0);

  // The post-join window still contains the refill storm's cold misses, so
  // the measured ratio sits slightly above the infinite-horizon
  // asymptote; 15% relative captures the transient plus finite-M ring
  // imbalance at 129 servers.
  EXPECT_NEAR(post.miss_ratio, predicted, 0.15 * predicted)
      << "measured=" << post.miss_ratio << " predicted=" << predicted
      << " items=" << cs.resident_items_end;

  // And the refill storm itself was real and observable.
  EXPECT_GT(cs.refill_storm_bytes, 0u);
  EXPECT_GT(cs.ranks_remapped, 0u);
}

TEST(ChurnModel, ModelRunIsShardCountInvariant) {
  const EndToEndResult k1 = EndToEndSim(model_config(1)).run();
  const EndToEndResult k2 = EndToEndSim(model_config(2)).run();
  const EndToEndResult k4 = EndToEndSim(model_config(4)).run();
  for (const EndToEndResult* other : {&k2, &k4}) {
    EXPECT_TRUE(same_bits(k1.total.mean, other->total.mean));
    EXPECT_TRUE(
        same_bits(k1.measured_miss_ratio, other->measured_miss_ratio));
    EXPECT_EQ(k1.keys_completed, other->keys_completed);
    ASSERT_EQ(k1.churn.epochs.size(), other->churn.epochs.size());
    for (std::size_t e = 0; e < k1.churn.epochs.size(); ++e) {
      EXPECT_EQ(k1.churn.epochs[e].keys, other->churn.epochs[e].keys);
      EXPECT_EQ(k1.churn.epochs[e].misses, other->churn.epochs[e].misses);
    }
    EXPECT_EQ(k1.churn.refill_storm_bytes, other->churn.refill_storm_bytes);
    EXPECT_EQ(k1.churn.resident_items_end, other->churn.resident_items_end);
  }
}

}  // namespace
}  // namespace mclat::cluster
