// Model validation for MissCoalescing::kPerServer: the simulated delayed-hit
// dynamics must match closed-form predictions for exponential fetch latency.
//
// The single-hot-key regime (one server, every departure a miss of "the"
// key) has an exact analysis:
//
//   1. The server is a stationary M/M/1 with arrival rate λ and service
//      rate μ_S ≫ λ. By Burke's theorem its departure process is Poisson
//      with rate λ, so with miss ratio r = 1 the coalescer sees a Poisson(λ)
//      miss stream.
//   2. Under single-flight the fetch state alternates renewal-style:
//      an idle period (Exp(λ), memorylessness of the Poisson stream) until
//      the next miss leads a fetch, then a busy period S ~ Exp(μ_D) while
//      that fetch is in flight. The mean cycle is 1/λ + 1/μ_D, so
//
//        effective DB submission rate = 1 / (1/λ + 1/μ_D)
//                                     = λ·μ_D / (λ + μ_D),
//
//      and, dividing by the miss rate λ, the fraction of misses that lead is
//      μ_D/(λ + μ_D); the delayed-hit fraction is λ/(λ + μ_D).
//      (PASTA: Poisson misses sample the time-stationary fetch state, whose
//      busy probability is the renewal-reward busy fraction
//      (1/μ_D)/(1/λ + 1/μ_D) = λ/(λ + μ_D).)
//   3. A delayed hit waits for the in-flight fetch's residual service; the
//      exponential S is memoryless, so the wait is Exp(μ_D) — mean 1/μ_D —
//      regardless of how far along the fetch was.
//
// With λ = 2000/s and μ_D = 1000/s: lead fraction 1/3, delayed fraction
// 2/3, effective DB rate 666.7/s, mean delayed wait 1 ms. The multi-key
// variant sums the per-key renewal rates: thinned Poisson streams are
// independent Poisson(λ_k = λ·pmf(k)), so the effective DB rate is
// Σ_k λ_k·μ_D/(λ_k + μ_D).
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "cluster/workload_driven.h"
#include "dist/zipf.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace mclat {
namespace {

using cluster::DbMode;
using cluster::MissCoalescing;
using cluster::MissMode;

constexpr double kLambda = 2000.0;  // miss arrivals/s into the coalescer
constexpr double kMuD = 1000.0;     // fetch service rate (mean 1 ms)

TEST(DelayedHitModel, EndToEndSingleFlightMatchesClosedForm) {
  cluster::EndToEndConfig cfg;
  cfg.system.servers = 1;
  cfg.system.total_key_rate = kLambda;
  cfg.system.keys_per_request = 1;
  cfg.system.service_rate = 10'000.0;  // ρ = 0.2, comfortably stable
  cfg.system.miss_ratio = 1.0;         // every departure reaches the DB path
  cfg.system.db_service_rate = kMuD;
  cfg.miss_mode = MissMode::kBernoulli;  // rank 0 always: the single hot key
  cfg.db_mode = DbMode::kInfiniteServer;
  cfg.common.coalescing = MissCoalescing::kPerServer;
  cfg.common.warmup_time = 2.0;
  cfg.common.measure_time = 30.0;
  cfg.common.seed = 42;
  obs::Registry reg;
  cfg.recorder = obs::Recorder(reg);

  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();

  // Conservation: every measured miss either led a fetch or parked.
  const std::uint64_t measured_misses = reg.counter("db.misses").value();
  ASSERT_GT(measured_misses, 0u);
  EXPECT_EQ(measured_misses, r.measured_db_fetches + r.measured_delayed_hits);
  EXPECT_EQ(reg.counter("db.coalesced").value(), r.measured_delayed_hits);

  // Lead / delayed-hit split: μ_D/(λ+μ_D) and λ/(λ+μ_D).
  const double lead_frac = static_cast<double>(r.measured_db_fetches) /
                           static_cast<double>(measured_misses);
  EXPECT_NEAR(lead_frac, kMuD / (kLambda + kMuD), 0.05)
      << "lead fraction should be 1/3";
  EXPECT_NEAR(1.0 - lead_frac, kLambda / (kLambda + kMuD), 0.05);

  // Effective DB submission rate λ·μ_D/(λ+μ_D) ≈ 666.7/s.
  const double fetch_rate =
      static_cast<double>(r.measured_db_fetches) / cfg.common.measure_time;
  const double expected_rate = kLambda * kMuD / (kLambda + kMuD);
  EXPECT_NEAR(fetch_rate / expected_rate, 1.0, 0.05);

  // Delayed-hit wait ~ Exp(μ_D) by memorylessness: mean 1/μ_D = 1000 us.
  const obs::LatencyStat& wait = reg.latency("delayed_hit.wait_us");
  EXPECT_EQ(wait.count(), r.measured_delayed_hits);
  EXPECT_NEAR(wait.mean(), 1e6 / kMuD, 0.05 * 1e6 / kMuD);
  // Exponential shape checks (generous: P² quantile estimates).
  EXPECT_NEAR(wait.p50(), std::log(2.0) * 1e6 / kMuD,
              0.10 * std::log(2.0) * 1e6 / kMuD);
  EXPECT_NEAR(wait.p95(), std::log(20.0) * 1e6 / kMuD,
              0.15 * std::log(20.0) * 1e6 / kMuD);

  // The high-water mark of outstanding fetches is exactly 1: single flight
  // on one server with one key identity.
  EXPECT_DOUBLE_EQ(reg.gauge("db.fetch.outstanding").value(), 1.0);
}

TEST(DelayedHitModel, WorkloadDrivenSingleKeyMatchesClosedForm) {
  // Mode A drives the coalescer directly with a Poisson(r·Λ) miss stream —
  // no Burke argument needed. coalesce_keyspace_size = 1 pins every miss to
  // rank 0: the same alternating-renewal regime as above.
  cluster::WorkloadDrivenConfig cfg;
  cfg.system.total_key_rate = 100'000.0;
  cfg.system.miss_ratio = kLambda / 100'000.0;  // r·Λ = λ = 2000/s
  cfg.system.db_service_rate = kMuD;
  cfg.common.coalescing = MissCoalescing::kPerServer;
  cfg.coalesce_keyspace_size = 1;
  cfg.common.warmup_time = 1.0;
  cfg.common.measure_time = 30.0;
  cfg.common.seed = 7;
  obs::Registry reg;
  cfg.recorder = obs::Recorder(reg);

  const cluster::MeasurementPools pools = cluster::WorkloadDrivenSim(cfg).run();

  const double total =
      static_cast<double>(pools.db_fetches + pools.db_delayed_hits);
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(static_cast<double>(pools.db_fetches) / total,
              kMuD / (kLambda + kMuD), 0.05);
  const double fetch_rate =
      static_cast<double>(pools.db_fetches) / cfg.common.measure_time;
  EXPECT_NEAR(fetch_rate / (kLambda * kMuD / (kLambda + kMuD)), 1.0, 0.05);

  // The pooled "database sojourn" now mixes leader fetches (Exp(μ_D)) with
  // delayed-hit waits (also Exp(μ_D) by memorylessness): the mean stays
  // 1/μ_D either way — delayed hits change the DB's load, not the latency
  // an individual miss observes, exactly as the renewal analysis predicts.
  double sum = 0.0;
  for (const double x : pools.db_sojourns) sum += x;
  ASSERT_FALSE(pools.db_sojourns.empty());
  const double mean = sum / static_cast<double>(pools.db_sojourns.size());
  EXPECT_NEAR(mean, 1.0 / kMuD, 0.05 / kMuD);
  EXPECT_NEAR(reg.latency("delayed_hit.wait_us").mean(), 1e6 / kMuD,
              0.05 * 1e6 / kMuD);
}

TEST(DelayedHitModel, WorkloadDrivenMultiKeyRateSumsPerKeyRenewals) {
  // K independent thinned Poisson streams, each its own single-flight
  // renewal: expected effective DB rate Σ_k λ_k·μ_D/(λ_k + μ_D) with
  // λ_k = λ·pmf(k).
  constexpr std::uint64_t kKeys = 4;
  constexpr double kZipfS = 1.0;
  cluster::WorkloadDrivenConfig cfg;
  cfg.system.total_key_rate = 100'000.0;
  cfg.system.miss_ratio = 0.04;  // λ = 4000/s over 4 keys
  cfg.system.db_service_rate = kMuD;
  cfg.common.coalescing = MissCoalescing::kPerServer;
  cfg.coalesce_keyspace_size = kKeys;
  cfg.coalesce_zipf_exponent = kZipfS;
  cfg.common.warmup_time = 1.0;
  cfg.common.measure_time = 30.0;
  cfg.common.seed = 11;

  const cluster::MeasurementPools pools = cluster::WorkloadDrivenSim(cfg).run();

  const double lambda = cfg.system.miss_ratio * cfg.system.total_key_rate;
  const dist::Zipf zipf(kKeys, kZipfS);
  double expected_rate = 0.0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const double lk = lambda * zipf.pmf(k);
    expected_rate += lk * kMuD / (lk + kMuD);
  }
  const double fetch_rate =
      static_cast<double>(pools.db_fetches) / cfg.common.measure_time;
  EXPECT_NEAR(fetch_rate / expected_rate, 1.0, 0.05);
  EXPECT_GT(pools.db_delayed_hits, 0u);
}

TEST(DelayedHitModel, RealCacheCoalescingConservesAndCoalesces) {
  // Real-cache mode: ranks are genuine, so coalescing is per (server, key).
  // A tiny cache under a hot Zipf head forces repeated concurrent misses of
  // the same hot keys against 1 ms fetches.
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 40'000.0;
  cfg.system.keys_per_request = 4;
  cfg.system.db_service_rate = kMuD;
  cfg.miss_mode = MissMode::kRealCache;
  cfg.db_mode = DbMode::kInfiniteServer;
  cfg.common.coalescing = MissCoalescing::kPerServer;
  cfg.keyspace_size = 100;
  cfg.zipf_exponent = 1.1;
  cfg.common.cache_bytes_per_server = 8u << 10;  // a few dozen values at most
  cfg.common.warmup_time = 0.5;
  cfg.common.measure_time = 2.0;
  cfg.common.seed = 3;
  obs::Registry reg;
  cfg.recorder = obs::Recorder(reg);

  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();

  const std::uint64_t measured_misses = reg.counter("db.misses").value();
  ASSERT_GT(measured_misses, 0u);
  EXPECT_EQ(measured_misses, r.measured_db_fetches + r.measured_delayed_hits);
  EXPECT_GT(r.measured_delayed_hits, 0u);
  EXPECT_GT(r.measured_db_fetches, 0u);
  EXPECT_GE(reg.gauge("db.fetch.outstanding").value(), 1.0);
  // Even in the multi-key real-cache regime the delayed-hit wait stays
  // Exp(μ_D) — the residual of an exponential fetch is exponential no
  // matter which key it was for or when the waiter parked. Generous
  // tolerance: this run's delayed-hit sample count is in the hundreds.
  const obs::LatencyStat& wait = reg.latency("delayed_hit.wait_us");
  EXPECT_EQ(wait.count(), r.measured_delayed_hits);
  EXPECT_NEAR(wait.mean(), 1e6 / kMuD, 0.30 * 1e6 / kMuD);
}

}  // namespace
}  // namespace mclat
