// Mode C: trace-driven replay.
#include "cluster/trace_replay.h"

#include <sstream>

#include "cluster/end_to_end.h"

#include "workload/request_stream.h"
#include <gtest/gtest.h>

namespace mclat::cluster {
namespace {

TraceReplayConfig light_config() {
  TraceReplayConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.keys_per_request = 20;
  cfg.system.miss_ratio = 0.02;
  cfg.common.seed = 9;
  return cfg;
}

workload::RequestStreamConfig stream_config(double rate) {
  workload::RequestStreamConfig c;
  c.request_rate = rate;
  c.keys_per_request = 20;
  c.keyspace_size = 50'000;
  c.zipf_exponent = 0.9;
  return c;
}

TEST(TraceReplay, CompletesEveryRequestInTheTrace) {
  workload::RequestStream stream(stream_config(2000.0), dist::Rng(3));
  const workload::Trace trace = stream.generate_trace(500);
  TraceReplaySim sim(light_config());
  const TraceReplayResult r = sim.run(trace, stream.keyspace());
  EXPECT_EQ(r.requests_completed, 500u);
  EXPECT_EQ(r.keys_completed, trace.size());
  EXPECT_GT(r.total.mean, 0.0);
  EXPECT_GE(r.horizon, trace.duration());
}

TEST(TraceReplay, ComponentsObeyTheEnvelope) {
  workload::RequestStream stream(stream_config(3000.0), dist::Rng(4));
  const workload::Trace trace = stream.generate_trace(800);
  const TraceReplayResult r =
      TraceReplaySim(light_config()).run(trace, stream.keyspace());
  const double lo =
      std::max({r.network.mean, r.server.mean, r.database.mean});
  EXPECT_GE(r.total.mean, lo - 1e-12);
  EXPECT_LE(r.total.mean,
            r.network.mean + r.server.mean + r.database.mean + 1e-12);
  EXPECT_DOUBLE_EQ(r.network.mean, light_config().system.network_latency);
}

TEST(TraceReplay, MissRatioMatchesConfig) {
  workload::RequestStream stream(stream_config(3000.0), dist::Rng(5));
  const workload::Trace trace = stream.generate_trace(1500);
  TraceReplayConfig cfg = light_config();
  cfg.system.miss_ratio = 0.05;
  const TraceReplayResult r =
      TraceReplaySim(cfg).run(trace, stream.keyspace());
  EXPECT_NEAR(r.measured_miss_ratio, 0.05, 0.01);
}

TEST(TraceReplay, DeterministicGivenSeed) {
  workload::RequestStream stream(stream_config(1000.0), dist::Rng(6));
  const workload::Trace trace = stream.generate_trace(300);
  const TraceReplayResult a =
      TraceReplaySim(light_config()).run(trace, stream.keyspace());
  const TraceReplayResult b =
      TraceReplaySim(light_config()).run(trace, stream.keyspace());
  EXPECT_DOUBLE_EQ(a.total.mean, b.total.mean);
  EXPECT_EQ(a.keys_completed, b.keys_completed);
}

TEST(TraceReplay, AgreesWithEndToEndAtMatchedParameters) {
  // Mode B generates Poisson requests internally; Mode C replaying a
  // Poisson-generated trace through the same machinery must land close.
  const double rate = 128'000.0 / 20.0;  // 32 Kps/server over 4 servers
  workload::RequestStream stream(stream_config(rate), dist::Rng(7));
  const workload::Trace trace = stream.generate_trace(20'000);
  TraceReplayConfig cfg = light_config();
  cfg.system.total_key_rate = 4.0 * 32'000.0;
  const TraceReplayResult c =
      TraceReplaySim(cfg).run(trace, stream.keyspace());

  EndToEndConfig e2e;
  e2e.system = cfg.system;
  e2e.common.warmup_time = 0.3;
  e2e.common.measure_time = 2.5;
  e2e.common.seed = 70;
  const EndToEndResult b = EndToEndSim(e2e).run();
  EXPECT_NEAR(c.server.mean, b.server.mean, 0.25 * b.server.mean);
  EXPECT_NEAR(c.total.mean, b.total.mean, 0.25 * b.total.mean);
}

TEST(TraceReplay, CsvRoundTrippedTraceReplaysIdentically) {
  workload::RequestStream stream(stream_config(1000.0), dist::Rng(8));
  const workload::Trace trace = stream.generate_trace(200);
  std::stringstream csv;
  trace.save_csv(csv);
  const workload::Trace back = workload::Trace::load_csv(csv);
  const TraceReplayResult a =
      TraceReplaySim(light_config()).run(trace, stream.keyspace());
  const TraceReplayResult b =
      TraceReplaySim(light_config()).run(back, stream.keyspace());
  EXPECT_DOUBLE_EQ(a.total.mean, b.total.mean);
}

TEST(TraceReplay, RejectsEmptyAndUnsortedTraces) {
  const workload::KeySpace ks(100, 1.0);
  TraceReplaySim sim(light_config());
  EXPECT_THROW((void)sim.run(workload::Trace{}, ks), std::invalid_argument);
  workload::Trace unsorted;
  unsorted.append({1.0, 1, 0});
  unsorted.append({0.5, 2, 0});
  EXPECT_THROW((void)sim.run(unsorted, ks), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster
