// The scenarios the engine refactor unlocked: real-cache trace replay,
// trace-replay warmup windows (measure_from), event-driven redundant
// fan-out, and the recorded redundant assembly.
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "cluster/trace_replay.h"
#include "cluster/workload_driven.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "workload/request_stream.h"

namespace mclat {
namespace {

workload::RequestStreamConfig stream_config() {
  workload::RequestStreamConfig c;
  c.request_rate = 2000.0;
  c.keys_per_request = 10;
  c.keyspace_size = 5'000;
  c.zipf_exponent = 1.0;
  return c;
}

cluster::TraceReplayConfig replay_config() {
  cluster::TraceReplayConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.keys_per_request = 10;
  cfg.common.seed = 9;
  return cfg;
}

TEST(EngineScenarios, RealCacheTraceReplayProducesEmergentMissRatio) {
  workload::RequestStream stream(stream_config(), dist::Rng(3));
  const workload::Trace trace = stream.generate_trace(1500);
  cluster::TraceReplayConfig cfg = replay_config();
  cfg.miss_mode = cluster::MissMode::kRealCache;
  cfg.common.cache_bytes_per_server = 256u << 10;
  // Bernoulli parameter must be ignored in real-cache mode.
  cfg.system.miss_ratio = 0.9;
  const cluster::TraceReplayResult r =
      cluster::TraceReplaySim(cfg).run(trace, stream.keyspace());
  EXPECT_GT(r.measured_miss_ratio, 0.0);
  EXPECT_LT(r.measured_miss_ratio, 0.8);  // the Zipf head stays cached
  EXPECT_GT(r.database.mean, 0.0);
  // Deterministic: replaying the same trace reproduces it exactly.
  const cluster::TraceReplayResult again =
      cluster::TraceReplaySim(cfg).run(trace, stream.keyspace());
  EXPECT_DOUBLE_EQ(r.total.mean, again.total.mean);
  EXPECT_DOUBLE_EQ(r.measured_miss_ratio, again.measured_miss_ratio);
}

TEST(EngineScenarios, BiggerCacheMissesLessInTraceReplay) {
  workload::RequestStream stream(stream_config(), dist::Rng(4));
  const workload::Trace trace = stream.generate_trace(1500);
  cluster::TraceReplayConfig cfg = replay_config();
  cfg.miss_mode = cluster::MissMode::kRealCache;
  cfg.common.cache_bytes_per_server = 64u << 10;
  const double small = cluster::TraceReplaySim(cfg)
                           .run(trace, stream.keyspace())
                           .measured_miss_ratio;
  cfg.common.cache_bytes_per_server = 4u << 20;
  const double large = cluster::TraceReplaySim(cfg)
                           .run(trace, stream.keyspace())
                           .measured_miss_ratio;
  EXPECT_LT(large, small);
}

TEST(EngineScenarios, TraceReplayMeasureFromGatesStatistics) {
  workload::RequestStream stream(stream_config(), dist::Rng(5));
  const workload::Trace trace = stream.generate_trace(800);
  cluster::TraceReplayConfig cfg = replay_config();
  cfg.system.miss_ratio = 0.02;

  obs::Registry full_reg;
  cfg.recorder = obs::Recorder(full_reg);
  const cluster::TraceReplayResult full =
      cluster::TraceReplaySim(cfg).run(trace, stream.keyspace());

  cfg.common.warmup_time = trace.duration() / 2.0;
  obs::Registry half_reg;
  cfg.recorder = obs::Recorder(half_reg);
  const cluster::TraceReplayResult half =
      cluster::TraceReplaySim(cfg).run(trace, stream.keyspace());

  // Every request still replays; only the statistics window shrinks.
  EXPECT_EQ(half.requests_completed, full.requests_completed);
  EXPECT_EQ(half.keys_completed, full.keys_completed);
  EXPECT_GT(half.measured_requests, 0u);
  EXPECT_LT(half.measured_requests, half.requests_completed);
  EXPECT_EQ(half.total.count, half.measured_requests);
  // stage.* observations and the per-server splits honor the same cut.
  EXPECT_EQ(half_reg.latency("stage.total_us").count(),
            half.measured_requests);
  EXPECT_LT(half_reg.latency("server.0.wait_us").count(),
            full_reg.latency("server.0.wait_us").count());
}

TEST(EngineScenarios, TraceReplayValidatesConfig) {
  cluster::TraceReplayConfig cfg = replay_config();
  cfg.common.warmup_time = -1.0;
  EXPECT_THROW(cluster::TraceReplaySim s(cfg), std::invalid_argument);
  cfg = replay_config();
  cfg.db_servers = 0;
  EXPECT_THROW(cluster::TraceReplaySim s(cfg), std::invalid_argument);
}

TEST(EngineScenarios, TraceReplayRejectsOutOfRangeRanksByName) {
  const workload::KeySpace ks(100, 1.0);
  workload::Trace trace;
  trace.append({0.0, 5, 0});
  trace.append({0.1, 100, 1});  // rank == keyspace size: out of range
  cluster::TraceReplaySim sim(replay_config());
  try {
    (void)sim.run(trace, ks);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("record 1"), std::string::npos)
        << e.what();
  }
}

cluster::EndToEndConfig fanout_config() {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  // Low utilization (~0.1) and single-key requests: replicas then compete
  // only with other requests, so the min-of-d gain dominates the
  // self-queueing cost and the server stage must get faster. (At N = 5 keys
  // over 4 servers the request's own 2N-replica burst floods the cluster
  // and replication loses — the effect pool resampling cannot show.)
  cfg.system.total_key_rate = 4.0 * 8'000.0;
  cfg.system.keys_per_request = 1;
  cfg.system.miss_ratio = 0.02;
  cfg.common.warmup_time = 0.1;
  cfg.common.measure_time = 0.5;
  cfg.common.seed = 13;
  return cfg;
}

TEST(EngineScenarios, RedundancyOneIsThePlainForkJoinPath) {
  const cluster::EndToEndResult plain =
      cluster::EndToEndSim(fanout_config()).run();
  cluster::EndToEndConfig cfg = fanout_config();
  cfg.redundancy = cluster::RedundancyPolicy(1);
  const cluster::EndToEndResult one = cluster::EndToEndSim(cfg).run();
  EXPECT_EQ(plain.events_executed, one.events_executed);
  EXPECT_DOUBLE_EQ(plain.total.mean, one.total.mean);
  EXPECT_TRUE(plain.total_samples == one.total_samples);
}

TEST(EngineScenarios, RedundantFanoutTradesServerLatencyForLoad) {
  const cluster::EndToEndResult d1 =
      cluster::EndToEndSim(fanout_config()).run();
  cluster::EndToEndConfig cfg = fanout_config();
  cfg.redundancy = cluster::RedundancyPolicy(2);
  const cluster::EndToEndResult d2 = cluster::EndToEndSim(cfg).run();
  // First-replica-wins shortens the server stage at low load …
  EXPECT_LT(d2.server.mean, d1.server.mean);
  EXPECT_LT(d2.total.mean, d1.total.mean);
  // … but every replica occupies a queue: offered load really doubles.
  double util_d1 = 0.0;
  double util_d2 = 0.0;
  for (const double u : d1.server_utilization) util_d1 += u;
  for (const double u : d2.server_utilization) util_d2 += u;
  EXPECT_GT(util_d2, 1.6 * util_d1);
  EXPECT_GT(d2.events_executed, d1.events_executed);
  // Requests and keys joined are unchanged — replicas are not extra keys.
  EXPECT_EQ(d2.keys_completed, d1.keys_completed);
}

TEST(EngineScenarios, EndToEndValidatesRedundancy) {
  // Degenerate policies are rejected at policy construction, not sim
  // construction — with messages naming the offending field.
  try {
    cluster::RedundancyPolicy p(0);
    FAIL() << "expected std::invalid_argument for degree 0";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("RedundancyPolicy.degree"),
              std::string::npos)
        << e.what();
  }
  try {
    cluster::RedundancyPolicy p(1, cluster::HedgeTrigger::kHedged);
    FAIL() << "expected std::invalid_argument for hedged degree 1";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("RedundancyPolicy.trigger"),
              std::string::npos)
        << e.what();
  }
  // Cross-field constraint (policy x miss mode) still lives on the sim.
  cluster::EndToEndConfig cfg = fanout_config();
  cfg.redundancy = cluster::RedundancyPolicy(2);
  cfg.miss_mode = cluster::MissMode::kRealCache;
  EXPECT_THROW(cluster::EndToEndSim s(cfg), std::invalid_argument);
}

TEST(EngineScenarios, RedundantAssemblyRecordsStageMetrics) {
  cluster::WorkloadDrivenConfig wcfg;
  wcfg.system = core::SystemConfig::facebook();
  wcfg.system.miss_ratio = 0.03;
  wcfg.common.warmup_time = 0.1;
  wcfg.common.measure_time = 0.5;
  wcfg.common.seed = 5;
  const cluster::MeasurementPools pools =
      cluster::WorkloadDrivenSim(wcfg).run();

  obs::Registry reg;
  dist::Rng plain_rng(7);
  dist::Rng recorded_rng(7);
  const cluster::AssembledRequests plain = cluster::assemble_requests_redundant(
      pools, wcfg.system, 200, 5, 2, plain_rng);
  const cluster::AssembledRequests recorded =
      cluster::assemble_requests_redundant(pools, wcfg.system, 200, 5, 2,
                                           recorded_rng, obs::Recorder(reg));
  // Recording is a pure observer: same draws, same outputs.
  EXPECT_TRUE(plain.total == recorded.total);
  EXPECT_TRUE(plain.server == recorded.server);
  EXPECT_TRUE(plain.database == recorded.database);
  // Same instrument set as assemble_requests.
  EXPECT_EQ(reg.latency("stage.total_us").count(), 200u);
  EXPECT_EQ(reg.latency("request.sync_gap_us").count(), 200u);
  EXPECT_EQ(reg.latency("request.sync_slack_us").count(), 200u);
  EXPECT_EQ(reg.counter("assembly.keys").value(), 200u * 5u);
  EXPECT_GE(reg.latency("request.sync_slack_us").min(), -1e-9);
}

}  // namespace
}  // namespace mclat
