// Unit tests for the engine's shared fork-join joiner (the one place the
// max/sum/sync-gap accounting lives) and the trace-rank validation that
// front-stops out-of-range key ranks.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/engine/arrival.h"
#include "cluster/engine/fork_join.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "workload/trace.h"

namespace mclat::cluster::engine {
namespace {

TEST(ForkJoinJoiner, FoldsMaximaAndJoinsOnLastKey) {
  const StageObserver null_obs;  // all handles nullptr
  ForkJoinJoiner j(0.001, null_obs, /*keep_total_samples=*/true, nullptr);
  const std::uint64_t rid = j.open_request(1.0, 2, /*measured=*/true);
  EXPECT_EQ(rid, 0u);
  const std::uint64_t k0 = j.open_key(rid, 7, 0);
  const std::uint64_t k1 = j.open_key(rid, 8, 1);
  j.key(k0, "test").server_sojourn = 0.5;
  j.key(k1, "test").server_sojourn = 0.25;
  j.key(k1, "test").db_sojourn = 0.125;

  j.complete_key(k0, 2.0);  // per-key total 1.0
  EXPECT_EQ(j.requests_joined(), 0u);
  EXPECT_EQ(j.in_flight_keys(), 1u);
  EXPECT_EQ(j.open_requests(), 1u);

  j.complete_key(k1, 3.0);  // per-key total 2.0, joins the request
  EXPECT_EQ(j.requests_joined(), 1u);
  EXPECT_EQ(j.measured_requests(), 1u);
  EXPECT_EQ(j.keys_completed(), 2u);
  EXPECT_EQ(j.open_requests(), 0u);
  EXPECT_EQ(j.in_flight_keys(), 0u);
  EXPECT_DOUBLE_EQ(j.network_stats().mean(), 0.001);
  EXPECT_DOUBLE_EQ(j.server_stats().mean(), 0.5);    // max over keys
  EXPECT_DOUBLE_EQ(j.database_stats().mean(), 0.125);
  EXPECT_DOUBLE_EQ(j.total_stats().mean(), 2.0);     // last-key completion
  const std::vector<double> samples = j.take_total_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0], 2.0);
}

TEST(ForkJoinJoiner, UnmeasuredRequestsJoinButDoNotAccumulate) {
  const StageObserver null_obs;
  ForkJoinJoiner j(0.0, null_obs, /*keep_total_samples=*/true, nullptr);
  const std::uint64_t rid = j.open_request(0.0, 1, /*measured=*/false);
  EXPECT_FALSE(j.request_measured(rid));
  const std::uint64_t k = j.open_key(rid, 0, 0);
  j.complete_key(k, 1.5);
  EXPECT_EQ(j.requests_joined(), 1u);
  EXPECT_EQ(j.measured_requests(), 0u);
  EXPECT_EQ(j.total_stats().count(), 0u);
  EXPECT_TRUE(j.take_total_samples().empty());
  EXPECT_EQ(j.keys_completed(), 1u);  // keys count regardless
}

TEST(ForkJoinJoiner, PerKeyCounterBumpsEveryKeyButStagesGateOnMeasured) {
  obs::Registry reg;
  const obs::Recorder rec(reg);
  const StageObserver sobs = StageObserver::for_sim(rec);
  ForkJoinJoiner j(0.0, sobs, /*keep_total_samples=*/false, sobs.keys);

  const std::uint64_t warm = j.open_request(0.0, 1, /*measured=*/false);
  j.complete_key(j.open_key(warm, 0, 0), 0.5);
  const std::uint64_t hot = j.open_request(1.0, 1, /*measured=*/true);
  j.complete_key(j.open_key(hot, 0, 0), 1.5);

  EXPECT_EQ(reg.counter("sim.keys_completed").value(), 2u);
  EXPECT_EQ(reg.latency("stage.total_us").count(), 1u);
  EXPECT_DOUBLE_EQ(reg.latency("stage.total_us").mean(), 0.5 * 1e6);
}

TEST(ForkJoinJoiner, SyncGapUsesThePerRequestKeyCount) {
  obs::Registry reg;
  const obs::Recorder rec(reg);
  const StageObserver sobs = StageObserver::for_sim(rec);
  ForkJoinJoiner j(0.0, sobs, /*keep_total_samples=*/false, nullptr);
  // 2-key request starting at t=0: keys complete at 1.0 and 3.0, so the
  // gap is max_total - mean = 3.0 - (1.0 + 3.0)/2 = 1.0 s.
  const std::uint64_t rid = j.open_request(0.0, 2, /*measured=*/true);
  j.complete_key(j.open_key(rid, 0, 0), 1.0);
  j.complete_key(j.open_key(rid, 1, 1), 3.0);
  ASSERT_EQ(reg.latency("request.sync_gap_us").count(), 1u);
  EXPECT_DOUBLE_EQ(reg.latency("request.sync_gap_us").mean(), 1.0 * 1e6);
}

TEST(ForkJoinJoiner, ChecksJobAndRequestIds) {
  const StageObserver null_obs;
  ForkJoinJoiner j(0.0, null_obs, false, nullptr);
  EXPECT_THROW(j.complete_key(99, 1.0), std::invalid_argument);
  EXPECT_THROW((void)j.key(99, "test"), std::invalid_argument);
  EXPECT_THROW((void)j.request_measured(99), std::invalid_argument);
  const std::uint64_t rid = j.open_request(0.0, 1, true);
  const std::uint64_t k = j.open_key(rid, 0, 0);
  j.complete_key(k, 1.0);
  EXPECT_THROW(j.complete_key(k, 2.0), std::invalid_argument);
}

TEST(TraceRankValidation, AcceptsInRangeRanks) {
  workload::Trace t;
  t.append({0.0, 0, 0});
  t.append({1.0, 9, 1});
  EXPECT_NO_THROW(t.require_ranks_below(10));
}

TEST(TraceRankValidation, NamesTheOffendingRecord) {
  workload::Trace t;
  t.append({0.0, 3, 0});
  t.append({1.5, 42, 7});
  try {
    t.require_ranks_below(10);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("record 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("42"), std::string::npos) << msg;
    EXPECT_NE(msg.find("10"), std::string::npos) << msg;
  }
}

TEST(TraceInjector, RejectsEmptyAndOutOfRangeTracesUpFront) {
  EXPECT_THROW(TraceInjector(workload::Trace{}, 10), std::invalid_argument);
  workload::Trace t;
  t.append({0.0, 10, 0});  // rank == limit: one past the last valid rank
  EXPECT_THROW(TraceInjector(t, 10), std::invalid_argument);
}

TEST(TraceInjector, PlansRecordsInOrderAndRejectsUnsortedOnStart) {
  workload::Trace sorted;
  sorted.append({0.0, 1, 0});
  sorted.append({0.5, 2, 0});
  const TraceInjector ok(sorted, 10);
  EXPECT_EQ(ok.records(), 2u);
  std::vector<std::uint64_t> ranks;
  ok.start([&](const workload::TraceRecord& r) { ranks.push_back(r.key_rank); });
  EXPECT_EQ(ranks, (std::vector<std::uint64_t>{1, 2}));

  workload::Trace unsorted;
  unsorted.append({1.0, 1, 0});
  unsorted.append({0.5, 2, 0});
  const TraceInjector bad(unsorted, 10);  // rank check passes
  EXPECT_THROW(bad.start([](const workload::TraceRecord&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster::engine
