// The Mode-A testbed: pools, assembly, and statistical sanity. Horizons are
// kept short — full-scale validation lives in tests/integration and bench/.
#include "cluster/workload_driven.h"

#include <gtest/gtest.h>

namespace mclat::cluster {
namespace {

WorkloadDrivenConfig quick_config() {
  WorkloadDrivenConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.common.warmup_time = 0.2;
  cfg.common.measure_time = 1.0;
  cfg.pool_cap = 50'000;
  cfg.common.seed = 11;
  return cfg;
}

TEST(WorkloadDriven, PoolsAreFilledForEveryServer) {
  WorkloadDrivenSim sim(quick_config());
  const MeasurementPools pools = sim.run();
  ASSERT_EQ(pools.server_sojourns.size(), 4u);
  for (const auto& pool : pools.server_sojourns) {
    EXPECT_GT(pool.size(), 10'000u);
    for (const double x : pool) ASSERT_GT(x, 0.0);
  }
  EXPECT_FALSE(pools.db_sojourns.empty());
  EXPECT_GT(pools.total_keys, 200'000u);
}

TEST(WorkloadDriven, MeasuredUtilizationMatchesConfig) {
  WorkloadDrivenSim sim(quick_config());
  const MeasurementPools pools = sim.run();
  for (const double u : pools.server_utilization) {
    EXPECT_NEAR(u, 0.781, 0.05);
  }
}

TEST(WorkloadDriven, ZeroMissSkipsDatabase) {
  WorkloadDrivenConfig cfg = quick_config();
  cfg.system.miss_ratio = 0.0;
  const MeasurementPools pools = WorkloadDrivenSim(cfg).run();
  EXPECT_TRUE(pools.db_sojourns.empty());
  dist::Rng rng(1);
  const AssembledRequests reqs =
      assemble_requests(pools, cfg.system, 1000, 150, rng);
  for (const double d : reqs.database) EXPECT_EQ(d, 0.0);
}

TEST(WorkloadDriven, AssembledComponentsAreConsistent) {
  const WorkloadDrivenConfig cfg = quick_config();
  const MeasurementPools pools = WorkloadDrivenSim(cfg).run();
  dist::Rng rng(2);
  const AssembledRequests reqs =
      assemble_requests(pools, cfg.system, 5000, 150, rng);
  ASSERT_EQ(reqs.total.size(), 5000u);
  for (std::size_t i = 0; i < reqs.total.size(); ++i) {
    // Each component max is a lower bound on the total max...
    EXPECT_LE(reqs.server[i], reqs.total[i]);
    EXPECT_LE(reqs.database[i], reqs.total[i]);
    // ...and the total never exceeds the sum of component maxima (eq. 1).
    EXPECT_LE(reqs.total[i],
              reqs.network[i] + reqs.server[i] + reqs.database[i] + 1e-12);
    EXPECT_DOUBLE_EQ(reqs.network[i], cfg.system.network_latency);
  }
}

TEST(WorkloadDriven, MoreKeysMeansLargerMax) {
  const WorkloadDrivenConfig cfg = quick_config();
  const MeasurementPools pools = WorkloadDrivenSim(cfg).run();
  dist::Rng rng(3);
  const double m10 =
      assemble_requests(pools, cfg.system, 3000, 10, rng).server_ci().mean;
  const double m1000 =
      assemble_requests(pools, cfg.system, 3000, 1000, rng).server_ci().mean;
  EXPECT_GT(m1000, 1.5 * m10);
}

TEST(WorkloadDriven, SeedReproducibility) {
  const WorkloadDrivenConfig cfg = quick_config();
  const MeasurementPools a = WorkloadDrivenSim(cfg).run();
  const MeasurementPools b = WorkloadDrivenSim(cfg).run();
  ASSERT_EQ(a.server_sojourns[0].size(), b.server_sojourns[0].size());
  EXPECT_EQ(a.server_sojourns[0], b.server_sojourns[0]);
  EXPECT_EQ(a.total_keys, b.total_keys);
}

TEST(WorkloadDriven, PerKeyDistributionReflectsPools) {
  const WorkloadDrivenConfig cfg = quick_config();
  const MeasurementPools pools = WorkloadDrivenSim(cfg).run();
  dist::Rng rng(4);
  const dist::Empirical e =
      per_key_sojourn_distribution(pools, cfg.system, 50'000, rng);
  EXPECT_EQ(e.size(), 50'000u);
  EXPECT_GT(e.mean(), 0.0);
  // Per-key mean sits inside the per-server pool means' hull.
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& pool : pools.server_sojourns) {
    double m = 0.0;
    for (const double x : pool) m += x;
    m /= static_cast<double>(pool.size());
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GE(e.mean(), lo * 0.9);
  EXPECT_LE(e.mean(), hi * 1.1);
}

TEST(WorkloadDriven, RunExperimentConvenience) {
  const AssembledRequests reqs = run_workload_experiment(quick_config(), 2000);
  EXPECT_EQ(reqs.total.size(), 2000u);
  EXPECT_GT(reqs.total_ci().mean, 0.0);
}

TEST(WorkloadDriven, ValidatesConfigAndInputs) {
  WorkloadDrivenConfig bad = quick_config();
  bad.common.measure_time = 0.0;
  EXPECT_THROW(WorkloadDrivenSim s(bad), std::invalid_argument);
  bad = quick_config();
  bad.pool_cap = 0;
  EXPECT_THROW(WorkloadDrivenSim s(bad), std::invalid_argument);

  MeasurementPools empty;
  empty.server_sojourns.resize(4);
  dist::Rng rng(5);
  EXPECT_THROW((void)assemble_requests(empty, quick_config().system, 10, 10,
                                       rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster
