// test_job_table.cpp — the dense free-list slot table backing the cluster
// simulators' in-flight request/key records.
#include "cluster/job_table.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::cluster {
namespace {

TEST(JobTable, InsertLookupErase) {
  JobTable<std::string> t;
  EXPECT_TRUE(t.empty());
  const auto a = t.insert("alpha");
  const auto b = t.insert("beta");
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(a, "a"), "alpha");
  EXPECT_EQ(t.at(b, "b"), "beta");
  t.erase(a, "erase a");
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.is_live(a));
  EXPECT_TRUE(t.is_live(b));
}

TEST(JobTable, SlotsAreRecycledLifo) {
  JobTable<int> t;
  const auto a = t.insert(1);
  const auto b = t.insert(2);
  const auto c = t.insert(3);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
  t.erase(b, "b");
  t.erase(a, "a");
  // LIFO free list: the most recently freed slot is reissued first.
  EXPECT_EQ(t.insert(4), a);
  EXPECT_EQ(t.insert(5), b);
  EXPECT_EQ(t.insert(6), c + 1);  // list empty again: fresh slot
  EXPECT_EQ(t.size(), 4u);
}

TEST(JobTable, TakeMovesTheValueOutAndFreesTheSlot) {
  JobTable<std::unique_ptr<int>> t;
  const auto id = t.insert(std::make_unique<int>(42));
  auto out = t.take(id, "take");
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 42);
  EXPECT_FALSE(t.is_live(id));
  EXPECT_TRUE(t.empty());
}

TEST(JobTable, CheckedAccessThrowsWithDiagnostic) {
  JobTable<int> t;
  const auto id = t.insert(9);
  t.erase(id, "first erase");
  // Stale id, never-issued id, and double-erase all trip the caller's
  // diagnostic instead of touching a dead slot.
  EXPECT_THROW((void)t.at(id, "stale id"), std::invalid_argument);
  EXPECT_THROW((void)t.at(12345, "unknown id"), std::invalid_argument);
  EXPECT_THROW(t.erase(id, "double erase"), std::invalid_argument);
  EXPECT_THROW((void)t.take(id, "take after erase"), std::invalid_argument);
  try {
    (void)t.at(id, "complete_key: unknown key-fetch id");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "complete_key: unknown key-fetch id");
  }
}

TEST(JobTable, SurvivesHighChurn) {
  // The simulators' usage pattern: ids issued monotonically per wave,
  // retired within a bounded window, slots reused indefinitely.
  JobTable<std::uint64_t> t;
  std::vector<std::uint64_t> live;
  std::uint64_t next_val = 0;
  for (int wave = 0; wave < 100; ++wave) {
    for (int i = 0; i < 64; ++i) live.push_back(t.insert(next_val++));
    // Retire from the middle out, exercising non-LIFO erase order.
    while (live.size() > 16) {
      const auto id = live[live.size() / 2];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(live.size() / 2));
      t.erase(id, "churn erase");
    }
  }
  EXPECT_EQ(t.size(), live.size());
  for (const auto id : live) EXPECT_TRUE(t.is_live(id));
}

}  // namespace
}  // namespace mclat::cluster
