// Engine-vs-twin equivalence: the engine-backed simulators must reproduce
// the pre-refactor implementations *sample for sample* — same RNG streams,
// same event schedule, same floating-point folds — for every
// MissMode × DbMode × MapperKind combination. The twins in
// bench/legacy_cluster.h are the verbatim pre-engine run() bodies; any
// divergence here means the refactor changed behavior, not just structure.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/legacy_cluster.h"
#include "cluster/end_to_end.h"
#include "cluster/trace_replay.h"
#include "cluster/workload_driven.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "workload/request_stream.h"

namespace mclat {
namespace {

using cluster::DbMode;
using cluster::MapperKind;
using cluster::MissMode;

cluster::EndToEndConfig e2e_config(MissMode miss, DbMode db,
                                   MapperKind mapper) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * 10'000.0;
  cfg.system.keys_per_request = 5;
  cfg.system.miss_ratio = 0.05;
  cfg.miss_mode = miss;
  cfg.db_mode = db;
  cfg.mapper = mapper;
  cfg.db_servers = 3;
  cfg.keyspace_size = 10'000;
  cfg.common.cache_bytes_per_server = 1u << 20;
  cfg.common.warmup_time = 0.1;
  cfg.common.measure_time = 0.4;
  cfg.common.seed = 77;
  return cfg;
}

void expect_identical(const cluster::EndToEndResult& a,
                      const cluster::EndToEndResult& b) {
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.keys_completed, b.keys_completed);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.network.mean, b.network.mean);
  EXPECT_DOUBLE_EQ(a.server.mean, b.server.mean);
  EXPECT_DOUBLE_EQ(a.database.mean, b.database.mean);
  EXPECT_DOUBLE_EQ(a.total.mean, b.total.mean);
  EXPECT_DOUBLE_EQ(a.total.halfwidth, b.total.halfwidth);
  EXPECT_DOUBLE_EQ(a.measured_miss_ratio, b.measured_miss_ratio);
  EXPECT_TRUE(a.server_utilization == b.server_utilization);
  // Exact vector equality: every per-request T(N) sample, bit for bit.
  EXPECT_TRUE(a.total_samples == b.total_samples);
}

TEST(EngineEquivalence, EndToEndMatchesTwinForEveryModeCombo) {
  for (const MissMode miss : {MissMode::kBernoulli, MissMode::kRealCache}) {
    for (const DbMode db :
         {DbMode::kInfiniteServer, DbMode::kSingleServer, DbMode::kPooled}) {
      for (const MapperKind mapper :
           {MapperKind::kWeighted, MapperKind::kRing, MapperKind::kModulo}) {
        SCOPED_TRACE("miss=" + std::to_string(static_cast<int>(miss)) +
                     " db=" + std::to_string(static_cast<int>(db)) +
                     " mapper=" + std::to_string(static_cast<int>(mapper)));
        const cluster::EndToEndConfig cfg = e2e_config(miss, db, mapper);
        const cluster::EndToEndResult engine =
            cluster::EndToEndSim(cfg).run();
        const cluster::EndToEndResult twin =
            bench::legacy_cluster::run_end_to_end(cfg);
        expect_identical(engine, twin);
      }
    }
  }
}

TEST(EngineEquivalence, EndToEndObservabilityMatchesTwin) {
  obs::Registry engine_reg;
  obs::Registry twin_reg;
  cluster::EndToEndConfig cfg =
      e2e_config(MissMode::kBernoulli, DbMode::kSingleServer,
                 MapperKind::kWeighted);
  cfg.recorder = obs::Recorder(engine_reg);
  (void)cluster::EndToEndSim(cfg).run();
  cfg.recorder = obs::Recorder(twin_reg);
  (void)bench::legacy_cluster::run_end_to_end(cfg);

  for (const char* name :
       {"stage.network_us", "stage.server_us", "stage.database_us",
        "stage.total_us", "request.sync_gap_us", "request.sync_slack_us",
        "db.sojourn_us", "server.0.wait_us", "server.0.service_us",
        "server.3.wait_us", "server.3.service_us"}) {
    SCOPED_TRACE(name);
    EXPECT_EQ(engine_reg.latency(name).count(), twin_reg.latency(name).count());
    EXPECT_DOUBLE_EQ(engine_reg.latency(name).mean(),
                     twin_reg.latency(name).mean());
  }
  EXPECT_EQ(engine_reg.counter("sim.keys_completed").value(),
            twin_reg.counter("sim.keys_completed").value());
  EXPECT_EQ(engine_reg.counter("db.misses").value(),
            twin_reg.counter("db.misses").value());
  for (int j = 0; j < 4; ++j) {
    const std::string g = "server." + std::to_string(j) + ".utilization";
    EXPECT_DOUBLE_EQ(engine_reg.gauge(g).value(), twin_reg.gauge(g).value());
  }
}

TEST(EngineEquivalence, TraceReplayMatchesTwinForMapperAndMissCombos) {
  workload::RequestStreamConfig sc;
  sc.request_rate = 2000.0;
  sc.keys_per_request = 10;
  sc.keyspace_size = 20'000;
  sc.zipf_exponent = 0.9;
  workload::RequestStream stream(sc, dist::Rng(3));
  const workload::Trace trace = stream.generate_trace(400);

  for (const MapperKind mapper :
       {MapperKind::kWeighted, MapperKind::kRing, MapperKind::kModulo}) {
    for (const double miss_ratio : {0.0, 0.05}) {
      SCOPED_TRACE("mapper=" + std::to_string(static_cast<int>(mapper)) +
                   " r=" + std::to_string(miss_ratio));
      cluster::TraceReplayConfig cfg;
      cfg.system = core::SystemConfig::facebook();
      cfg.system.keys_per_request = 10;
      cfg.system.miss_ratio = miss_ratio;
      cfg.mapper = mapper;
      cfg.common.seed = 9;
      const cluster::TraceReplayResult engine =
          cluster::TraceReplaySim(cfg).run(trace, stream.keyspace());
      const cluster::TraceReplayResult twin =
          bench::legacy_cluster::run_trace_replay(cfg, trace,
                                                  stream.keyspace());
      EXPECT_EQ(engine.requests_completed, twin.requests_completed);
      EXPECT_EQ(engine.keys_completed, twin.keys_completed);
      EXPECT_DOUBLE_EQ(engine.network.mean, twin.network.mean);
      EXPECT_DOUBLE_EQ(engine.server.mean, twin.server.mean);
      EXPECT_DOUBLE_EQ(engine.database.mean, twin.database.mean);
      EXPECT_DOUBLE_EQ(engine.total.mean, twin.total.mean);
      EXPECT_DOUBLE_EQ(engine.total.halfwidth, twin.total.halfwidth);
      EXPECT_DOUBLE_EQ(engine.measured_miss_ratio, twin.measured_miss_ratio);
      EXPECT_DOUBLE_EQ(engine.horizon, twin.horizon);
      EXPECT_TRUE(engine.server_utilization == twin.server_utilization);
      // With the default measure_from = 0 every request is measured.
      EXPECT_EQ(engine.measured_requests, engine.requests_completed);
    }
  }
}

TEST(EngineEquivalence, WorkloadDrivenPoolsMatchTwin) {
  cluster::WorkloadDrivenConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.miss_ratio = 0.03;
  cfg.common.warmup_time = 0.2;
  cfg.common.measure_time = 1.0;
  cfg.common.seed = 5;
  cluster::MeasurementPools engine = cluster::WorkloadDrivenSim(cfg).run();
  cluster::MeasurementPools twin =
      bench::legacy_cluster::run_workload_driven(cfg);
  EXPECT_EQ(engine.total_keys, twin.total_keys);
  EXPECT_DOUBLE_EQ(engine.measured_miss_rate_hz, twin.measured_miss_rate_hz);
  EXPECT_TRUE(engine.server_utilization == twin.server_utilization);
  // Exact pool equality, sample for sample.
  EXPECT_TRUE(engine.server_sojourns == twin.server_sojourns);
  EXPECT_TRUE(engine.db_sojourns == twin.db_sojourns);

  // And identical pools assemble into identical requests.
  dist::Rng rng_a(11);
  dist::Rng rng_b(11);
  const cluster::AssembledRequests a =
      cluster::assemble_requests(engine, cfg.system, 300, 8, rng_a);
  const cluster::AssembledRequests b =
      cluster::assemble_requests(twin, cfg.system, 300, 8, rng_b);
  EXPECT_TRUE(a.total == b.total);
  EXPECT_TRUE(a.server == b.server);
  EXPECT_TRUE(a.database == b.database);
}

}  // namespace
}  // namespace mclat
