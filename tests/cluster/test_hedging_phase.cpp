// The replication phase diagram (Poloczek & Ciucu, arXiv 1602.07978),
// reproduced through the event-driven fork-join cluster: at low utilization
// first-replica-wins fan-out lowers the tail, past a load threshold the
// self-queueing cost inverts the sign and replication *raises* it,
// cancel-on-win recovers most of that penalty, and deadline-triggered
// hedging buys the min-of-d tail without doubling the offered load.
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "cluster/engine/hedge.h"

namespace mclat {
namespace {

using cluster::HedgeTrigger;
using cluster::LoserMode;
using cluster::RedundancyPolicy;

// Facebook deployment, single-key requests: replicas then compete only with
// other requests, so the phase transition is driven purely by utilization
// (at large N the request's own replica burst floods the cluster and the
// harmful phase starts far earlier). Misses are off to isolate the server
// stage — a 2% miss tail at the 1ms database would otherwise own P99 and
// smear the transition.
cluster::EndToEndConfig phase_config(double per_server_rate) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * per_server_rate;
  cfg.system.keys_per_request = 1;
  cfg.system.miss_ratio = 0.0;
  cfg.common.warmup_time = 0.1;
  cfg.common.measure_time = 0.6;
  cfg.common.seed = 17;
  return cfg;
}

double p99(std::vector<double> samples) {
  EXPECT_GT(samples.size(), 1000u);
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(
      0.99 * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

cluster::EndToEndResult run(cluster::EndToEndConfig cfg,
                            const RedundancyPolicy& policy) {
  cfg.redundancy = policy;
  return cluster::EndToEndSim(cfg).run();
}

// mu_S = 80k: 8k keys/s/server is rho ~ 0.1 (d = 2 doubles it to ~0.2 —
// still far below the cliff), 36k is rho ~ 0.45 (d = 2 pushes ~0.9).
constexpr double kLowRate = 8'000.0;
constexpr double kHighRate = 36'000.0;

TEST(HedgingPhase, ReplicationHelpsAtLowUtilization) {
  const cluster::EndToEndResult d1 = run(phase_config(kLowRate),
                                         RedundancyPolicy());
  const cluster::EndToEndResult d2 = run(phase_config(kLowRate),
                                         RedundancyPolicy(2));
  EXPECT_LT(p99(d2.total_samples), p99(d1.total_samples));
  EXPECT_LT(d2.total.mean, d1.total.mean);
}

TEST(HedgingPhase, ReplicationHurtsPastTheLoadThreshold) {
  const cluster::EndToEndResult d1 = run(phase_config(kHighRate),
                                         RedundancyPolicy());
  const cluster::EndToEndResult d2 = run(phase_config(kHighRate),
                                         RedundancyPolicy(2));
  // Past the threshold the doubled offered load dominates min-of-two: the
  // tail inverts. This is the phase transition.
  EXPECT_GT(p99(d2.total_samples), 1.5 * p99(d1.total_samples));
}

TEST(HedgingPhase, CancelOnWinRecoversMostOfThePenalty) {
  const cluster::EndToEndResult d1 = run(phase_config(kHighRate),
                                         RedundancyPolicy());
  const cluster::EndToEndResult let_run = run(phase_config(kHighRate),
                                              RedundancyPolicy(2));
  const cluster::EndToEndResult cancel = run(
      phase_config(kHighRate),
      RedundancyPolicy(2, HedgeTrigger::kImmediate, LoserMode::kCancelOnWin));
  const double base = p99(d1.total_samples);
  const double penalty_let_run = p99(let_run.total_samples) - base;
  const double penalty_cancel = p99(cancel.total_samples) - base;
  ASSERT_GT(penalty_let_run, 0.0);
  // Losers pulled out of queues stop inflating everyone else's wait: the
  // cancel variant keeps less than half the let-run penalty.
  EXPECT_LT(penalty_cancel, 0.5 * penalty_let_run);
  EXPECT_GT(cancel.replicas_cancelled, 0u);
  EXPECT_EQ(let_run.replicas_cancelled, 0u);
  // Cancelled replicas never reach service: the cancel variant burns
  // strictly less wasted service than letting every loser run.
  EXPECT_LT(cancel.replica_wasted_service, let_run.replica_wasted_service);
}

TEST(HedgingPhase, HedgingBeatsImmediateFanoutAtHighUtilization) {
  const cluster::EndToEndResult immediate = run(phase_config(kHighRate),
                                                RedundancyPolicy(2));
  const cluster::EndToEndResult hedged =
      run(phase_config(kHighRate), RedundancyPolicy::hedged(2));
  // The deadline gates backups to the slow tail, so the offered load stays
  // near 1x instead of 2x — the tail must come out below immediate fan-out.
  EXPECT_LT(p99(hedged.total_samples), p99(immediate.total_samples));
  EXPECT_GT(hedged.hedges_fired, 0u);
  // A P95 deadline hedges roughly the slowest ~5% of keys, never most of
  // them.
  EXPECT_LT(hedged.hedges_fired, hedged.keys_completed / 5);
  EXPECT_EQ(immediate.hedges_fired, 0u);
}

TEST(HedgingPhase, PolicyValidationNamesTheField) {
  const auto expect_throw_naming = [](const char* field, auto make) {
    try {
      make();
      FAIL() << "expected std::invalid_argument naming " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  expect_throw_naming("RedundancyPolicy.degree",
                      [] { RedundancyPolicy p(0); });
  expect_throw_naming("RedundancyPolicy.trigger", [] {
    RedundancyPolicy p(1, HedgeTrigger::kHedged);
  });
  expect_throw_naming("RedundancyPolicy.hedge_quantile", [] {
    RedundancyPolicy p(2, HedgeTrigger::kHedged, LoserMode::kLetLosersRun,
                       1.0);
  });
  expect_throw_naming("RedundancyPolicy.hedge_deadline_floor", [] {
    RedundancyPolicy p(2, HedgeTrigger::kHedged, LoserMode::kLetLosersRun,
                       0.95, -1.0);
  });
}

TEST(HedgingPhase, HedgeDeadlineColdStartUsesTheFloor) {
  // No samples, no floor: no deadline — the hedge never arms.
  cluster::engine::HedgeDeadline bare(0.95, 0.0);
  EXPECT_FALSE(bare.deadline().has_value());
  // A floor covers the cold start...
  cluster::engine::HedgeDeadline floored(0.95, 0.002);
  ASSERT_TRUE(floored.deadline().has_value());
  EXPECT_DOUBLE_EQ(*floored.deadline(), 0.002);
  // ...and once the estimator warms past kMinSamples observations, the
  // deadline is the online quantile, floored from below.
  for (int i = 1; i <= 100; ++i) {
    const double x = 1e-4 * i;
    bare.observe(x);
    floored.observe(x);
  }
  ASSERT_TRUE(bare.deadline().has_value());
  EXPECT_NEAR(*bare.deadline(), 95e-4, 15e-4);
  EXPECT_GE(*floored.deadline(), *bare.deadline());
}

TEST(HedgingPhase, CancellationShrinksTheEventSchedule) {
  // Same arrivals, same replicas dispatched; cancellation only *removes*
  // work, so the cancel run executes strictly fewer events and joins the
  // same requests.
  const cluster::EndToEndResult let_run = run(phase_config(kLowRate),
                                              RedundancyPolicy(2));
  const cluster::EndToEndResult cancel = run(
      phase_config(kLowRate),
      RedundancyPolicy(2, HedgeTrigger::kImmediate, LoserMode::kCancelOnWin));
  EXPECT_EQ(cancel.keys_completed, let_run.keys_completed);
  EXPECT_EQ(cancel.requests_completed, let_run.requests_completed);
  EXPECT_LT(cancel.events_executed, let_run.events_executed);
}

}  // namespace
}  // namespace mclat
