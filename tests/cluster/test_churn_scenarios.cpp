// Membership-churn scenarios through the full cluster path (DESIGN.md §4k):
// drain vs abrupt leave, the cold-join refill storm, slot reuse, epoch
// window conservation, and the validation surface. The asymptotic
// (Ji/Quan/Tan) validation lives in test_churn_model.cpp; ring-level
// properties in tests/hashing/test_ring_churn.cpp.
#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "cluster/membership.h"
#include "cluster/trace_replay.h"
#include "cluster/workload_driven.h"
#include "workload/request_stream.h"

namespace mclat::cluster {
namespace {

// The RealCacheRunsAreShardCountInvariant deployment, with a horizon long
// enough for events at t <= 0.35 and a fat network delay so the sharded
// engine's lookahead windows stay coarse on one core.
EndToEndConfig churn_config() {
  EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = 8;
  cfg.system.total_key_rate = 8.0 * 20'000.0;
  cfg.system.keys_per_request = 10;
  cfg.system.network_latency = 1e-3;
  cfg.miss_mode = MissMode::kRealCache;
  cfg.mapper = MapperKind::kRing;
  cfg.keyspace_size = 20'000;
  cfg.zipf_exponent = 1.0;
  cfg.common.cache_bytes_per_server = 256u << 10;
  cfg.common.warmup_time = 0.05;
  cfg.common.measure_time = 0.45;
  cfg.common.seed = 33;
  return cfg;
}

EndToEndResult run_with(const char* spec) {
  EndToEndConfig cfg = churn_config();
  cfg.common.churn = MembershipSchedule::parse(spec);
  return EndToEndSim(cfg).run();
}

TEST(ChurnScenarios, DrainFinishesInFlightWorkWithoutFailovers) {
  const EndToEndResult r = run_with("drain:3@0.2");
  const ChurnStats& cs = r.churn;
  EXPECT_EQ(cs.events, 1u);
  EXPECT_EQ(cs.drains, 1u);
  EXPECT_EQ(cs.leaves, 0u);
  EXPECT_EQ(cs.joins, 0u);
  // The defining property of a planned drain: nothing is bounced.
  EXPECT_EQ(cs.failovers, 0u);
  EXPECT_EQ(cs.slots_retired, 1u);
  EXPECT_EQ(cs.live_servers_end, 7u);
  // No slot was added, so the utilization vector keeps its original width.
  EXPECT_EQ(r.server_utilization.size(), 8u);
  ASSERT_EQ(cs.epochs.size(), 2u);
  EXPECT_DOUBLE_EQ(cs.epochs[1].start_time, 0.2);
  EXPECT_GT(cs.epochs[0].keys, 0u);
  EXPECT_GT(cs.epochs[1].keys, 0u);
}

TEST(ChurnScenarios, AbruptLeaveFailsQueuedWorkOverToTheSuccessor) {
  // Load the stations hard enough (rho ~0.9) that the victim has queued
  // and in-service jobs at the event instant.
  EndToEndConfig cfg = churn_config();
  cfg.system.servers = 4;
  cfg.system.total_key_rate = 4.0 * 72'000.0;
  cfg.common.churn = MembershipSchedule::parse("leave:0@0.25");
  const EndToEndResult r = EndToEndSim(cfg).run();
  const ChurnStats& cs = r.churn;
  EXPECT_EQ(cs.leaves, 1u);
  EXPECT_EQ(cs.slots_retired, 1u);
  EXPECT_GT(cs.failovers, 0u);  // bounced jobs re-routed under the new ring
  EXPECT_EQ(cs.live_servers_end, 3u);
  // The dead slot serves nothing after the event but its pre-event busy
  // time still counts; the survivors absorb its keys.
  EXPECT_GT(r.requests_completed, 100u);
  EXPECT_GT(cs.ranks_remapped, 0u);
}

TEST(ChurnScenarios, ColdJoinTriggersARefillStorm) {
  const EndToEndResult r = run_with("join@0.2");
  const ChurnStats& cs = r.churn;
  EXPECT_EQ(cs.joins, 1u);
  EXPECT_EQ(cs.slots_retired, 0u);
  EXPECT_EQ(cs.failovers, 0u);
  EXPECT_EQ(cs.live_servers_end, 9u);
  ASSERT_EQ(r.server_utilization.size(), 9u);
  // The joiner starts empty: every key moved onto it misses and refills.
  EXPECT_GT(cs.refill_storm_bytes, 0u);
  EXPECT_GT(r.server_utilization[8], 0.0);
  EXPECT_GT(cs.ranks_remapped, 0u);
  ASSERT_EQ(cs.epochs.size(), 2u);
  EXPECT_GT(cs.epochs[1].keys, 0u);
}

TEST(ChurnScenarios, JoinAfterLeaveReusesTheRetiredSlot) {
  const EndToEndResult r = run_with("leave:5@0.15,join@0.3");
  const ChurnStats& cs = r.churn;
  EXPECT_EQ(cs.events, 2u);
  EXPECT_EQ(cs.leaves, 1u);
  EXPECT_EQ(cs.joins, 1u);
  EXPECT_EQ(cs.slots_retired, 1u);
  EXPECT_EQ(cs.live_servers_end, 8u);
  // Every possible slot (8 initial + 1 pre-provisioned join) reports
  // utilization, but the join revived retired slot 5 rather than entering
  // the fresh slot 8: the revived slot serves again and the fresh slot
  // never turns a key.
  ASSERT_EQ(r.server_utilization.size(), 9u);
  EXPECT_GT(r.server_utilization[5], 0.0);
  EXPECT_EQ(r.server_utilization[8], 0.0);
  EXPECT_GT(cs.refill_storm_bytes, 0u);  // the reused slot rejoins cold
  ASSERT_EQ(cs.epochs.size(), 3u);
}

TEST(ChurnScenarios, EpochWindowsConserveTheMeasuredTotals) {
  const EndToEndResult r = run_with("join@0.15,leave:2@0.25,drain:1@0.35");
  const ChurnStats& cs = r.churn;
  EXPECT_EQ(cs.events, 3u);
  ASSERT_EQ(cs.epochs.size(), 4u);
  std::uint64_t keys = 0;
  std::uint64_t misses = 0;
  for (const ChurnEpochWindow& w : cs.epochs) {
    keys += w.keys;
    misses += w.misses;
    if (w.keys > 0) {
      EXPECT_DOUBLE_EQ(
          w.miss_ratio,
          static_cast<double>(w.misses) / static_cast<double>(w.keys));
      EXPECT_GT(w.p99_key_latency_us, 0.0);
    }
  }
  // Every *measured* key lands in exactly one window, so the windows must
  // re-aggregate to the run's own measured totals: misses match the DB
  // fetch count exactly (coalescing off: every measured miss fetches) and
  // the pooled ratio reproduces measured_miss_ratio. keys_completed also
  // counts warmup keys, so it strictly exceeds the windowed sum.
  EXPECT_GT(keys, 0u);
  EXPECT_LT(keys, r.keys_completed);
  EXPECT_EQ(misses, r.measured_db_fetches);
  EXPECT_NEAR(static_cast<double>(misses) / static_cast<double>(keys),
              r.measured_miss_ratio, 1e-12);
  EXPECT_EQ(cs.resident_items_end > 0u, true);
  EXPECT_GT(cs.resident_bytes_end, 0u);
}

TEST(ChurnScenarios, ReplayRunsTheSameTimelineOverATrace) {
  workload::RequestStreamConfig sc;
  sc.request_rate = 4'000.0;
  sc.keys_per_request = 10;
  sc.keyspace_size = 20'000;
  sc.zipf_exponent = 1.0;
  workload::RequestStream stream(sc, dist::Rng(3));
  const workload::Trace trace = stream.generate_trace(2'000);

  TraceReplayConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.keys_per_request = 10;
  cfg.miss_mode = MissMode::kRealCache;
  cfg.common.cache_bytes_per_server = 256u << 10;
  cfg.common.seed = 11;
  cfg.common.churn = MembershipSchedule::parse("join@0.1,drain:1@0.25");
  TraceReplaySim sim(cfg);
  const TraceReplayResult r = sim.run(trace, stream.keyspace());
  EXPECT_EQ(r.requests_completed, 2'000u);
  EXPECT_EQ(r.keys_completed, trace.size());
  const ChurnStats& cs = r.churn;
  EXPECT_EQ(cs.events, 2u);
  EXPECT_EQ(cs.joins, 1u);
  EXPECT_EQ(cs.drains, 1u);
  EXPECT_EQ(cs.failovers, 0u);
  EXPECT_EQ(cs.live_servers_end, 4u);  // 4 + join - drain
  EXPECT_GT(cs.refill_storm_bytes, 0u);
  EXPECT_GT(cs.ranks_remapped, 0u);
  ASSERT_EQ(cs.epochs.size(), 3u);
  std::uint64_t keys = 0;
  for (const ChurnEpochWindow& w : cs.epochs) keys += w.keys;
  EXPECT_EQ(keys, r.keys_completed);
}

TEST(ChurnScenarios, ValidatesItsConfigurationSurface) {
  // Bernoulli keys carry no identity, so churn demands the real cache.
  {
    EndToEndConfig cfg = churn_config();
    cfg.miss_mode = MissMode::kBernoulli;
    cfg.common.churn = MembershipSchedule::parse("join@0.1");
    EXPECT_THROW(EndToEndSim{cfg}, std::invalid_argument);
  }
  // Churn mutates the ring; the weighted mapper has no ring to mutate.
  {
    EndToEndConfig cfg = churn_config();
    cfg.mapper = MapperKind::kWeighted;
    cfg.common.churn = MembershipSchedule::parse("join@0.1");
    EXPECT_THROW(EndToEndSim{cfg}, std::invalid_argument);
  }
  // Events past the horizon would silently never fire.
  {
    EndToEndConfig cfg = churn_config();
    cfg.common.churn = MembershipSchedule::parse("join@0.9");
    EXPECT_THROW(EndToEndSim{cfg}, std::invalid_argument);
  }
  // Replicated dispatch and churn are separate contracts.
  {
    EndToEndConfig cfg = churn_config();
    cfg.redundancy = RedundancyPolicy::immediate(2);
    cfg.common.churn = MembershipSchedule::parse("join@0.1");
    EXPECT_THROW(EndToEndSim{cfg}, std::invalid_argument);
  }
  // The workload-driven testbed has isolated stations — no ring at all.
  {
    WorkloadDrivenConfig cfg;
    cfg.system = core::SystemConfig::facebook();
    cfg.common.churn = MembershipSchedule::parse("join@0.1");
    EXPECT_THROW(WorkloadDrivenSim{cfg}, std::invalid_argument);
  }
  // The schedule itself validates its spec.
  EXPECT_THROW(MembershipSchedule::parse("join@0"), std::invalid_argument);
  EXPECT_THROW(MembershipSchedule::parse("leave@1"), std::invalid_argument);
  EXPECT_THROW(MembershipSchedule::parse("evict:1@1"), std::invalid_argument);
  EXPECT_THROW(MembershipSchedule::parse("join@2,leave:0@1"),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster
