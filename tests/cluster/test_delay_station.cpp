#include "cluster/delay_station.h"

#include <functional>
#include <memory>
#include <vector>

#include "dist/deterministic.h"
#include "dist/exponential.h"
#include <gtest/gtest.h>

namespace mclat::cluster {
namespace {

TEST(DelayStation, NoQueueingEver) {
  sim::Simulator s;
  std::vector<sim::Departure> done;
  DelayStation d(s, std::make_unique<dist::Deterministic>(1.0), dist::Rng(1),
                 [&](const sim::Departure& dep) { done.push_back(dep); });
  // Ten simultaneous jobs all finish exactly one service later.
  s.schedule_at(0.0, [&] {
    for (int i = 0; i < 10; ++i) d.submit(i);
  });
  s.run();
  ASSERT_EQ(done.size(), 10u);
  for (const auto& dep : done) {
    EXPECT_DOUBLE_EQ(dep.waiting_time(), 0.0);
    EXPECT_DOUBLE_EQ(dep.sojourn_time(), 1.0);
  }
}

TEST(DelayStation, SojournIsPureServiceDraw) {
  // Exponential service at μ = 1000: mean sojourn 1 ms regardless of load —
  // this is exactly the paper's eq.-19 "ρ → 0" database.
  sim::Simulator s;
  DelayStation d(s, std::make_unique<dist::Exponential>(1000.0), dist::Rng(2),
                 [](const sim::Departure&) {});
  dist::Rng arr(3);
  std::function<void()> submit = [&] {
    static std::uint64_t id = 0;
    d.submit(id++);
    s.schedule_in(arr.exponential(5000.0), submit);  // heavy offered load
  };
  s.schedule_in(0.0, submit);
  s.run_until(20.0);
  s.clear();
  EXPECT_NEAR(d.sojourn_stats().mean(), 1e-3, 5e-5);
  EXPECT_GT(d.completed(), 50'000u);
}

TEST(DelayStation, TracksInFlight) {
  sim::Simulator s;
  DelayStation d(s, std::make_unique<dist::Deterministic>(2.0), dist::Rng(1),
                 [](const sim::Departure&) {});
  s.schedule_at(0.0, [&] {
    d.submit(1);
    d.submit(2);
  });
  s.schedule_at(1.0, [&] { EXPECT_EQ(d.in_flight(), 2u); });
  s.schedule_at(3.0, [&] { EXPECT_EQ(d.in_flight(), 0u); });
  s.run();
  EXPECT_EQ(d.completed(), 2u);
}

TEST(DelayStation, RejectsNullArguments) {
  sim::Simulator s;
  EXPECT_THROW(DelayStation(s, nullptr, dist::Rng(1),
                            [](const sim::Departure&) {}),
               std::invalid_argument);
  EXPECT_THROW(DelayStation(s, std::make_unique<dist::Deterministic>(1.0),
                            dist::Rng(1), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster
