// Mode B: the explicit fork-join cluster. Scaled-down horizons; the focus
// is wiring correctness (components add up, misses route through the DB,
// the real cache produces an emergent miss ratio).
#include "cluster/end_to_end.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace mclat::cluster {
namespace {

EndToEndConfig quick_config() {
  EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  // Lighten: fewer keys per request and a lazier horizon keep the test fast.
  cfg.system.total_key_rate = 4.0 * 40'000.0;
  cfg.system.keys_per_request = 50;
  cfg.common.warmup_time = 0.2;
  cfg.common.measure_time = 1.0;
  cfg.common.seed = 21;
  return cfg;
}

TEST(EndToEnd, CompletesRequestsAndAccountsComponents) {
  EndToEndSim sim(quick_config());
  const EndToEndResult r = sim.run();
  EXPECT_GT(r.requests_completed, 1000u);
  EXPECT_EQ(r.total_samples.size(), r.requests_completed);
  // Component means obey Theorem 1's envelope (eq. 1) on averages.
  const double lo =
      std::max({r.network.mean, r.server.mean, r.database.mean});
  EXPECT_GE(r.total.mean, lo - 1e-9);
  EXPECT_LE(r.total.mean,
            r.network.mean + r.server.mean + r.database.mean + 1e-9);
  EXPECT_DOUBLE_EQ(r.network.mean, quick_config().system.network_latency);
}

TEST(EndToEnd, MeasuredMissRatioMatchesBernoulliParameter) {
  EndToEndConfig cfg = quick_config();
  cfg.system.miss_ratio = 0.05;
  const EndToEndResult r = EndToEndSim(cfg).run();
  EXPECT_NEAR(r.measured_miss_ratio, 0.05, 0.01);
  EXPECT_GT(r.database.mean, 0.0);
}

TEST(EndToEnd, ZeroMissRatioNeverTouchesDatabase) {
  EndToEndConfig cfg = quick_config();
  cfg.system.miss_ratio = 0.0;
  const EndToEndResult r = EndToEndSim(cfg).run();
  EXPECT_EQ(r.measured_miss_ratio, 0.0);
  EXPECT_EQ(r.database.mean, 0.0);
}

TEST(EndToEnd, UtilizationTracksOfferedLoad) {
  const EndToEndConfig cfg = quick_config();
  const EndToEndResult r = EndToEndSim(cfg).run();
  ASSERT_EQ(r.server_utilization.size(), 4u);
  for (const double u : r.server_utilization) {
    EXPECT_NEAR(u, 0.5, 0.06);  // 40 Kps offered / 80 Kps capacity
  }
}

TEST(EndToEnd, SkewedSharesShowUpInUtilization) {
  EndToEndConfig cfg = quick_config();
  cfg.system.total_key_rate = 4.0 * 30'000.0;
  cfg.system.load_shares = {0.55, 0.15, 0.15, 0.15};
  const EndToEndResult r = EndToEndSim(cfg).run();
  EXPECT_GT(r.server_utilization[0], 2.5 * r.server_utilization[1]);
}

TEST(EndToEnd, RealCacheProducesEmergentMissRatio) {
  EndToEndConfig cfg = quick_config();
  cfg.miss_mode = MissMode::kRealCache;
  cfg.mapper = MapperKind::kRing;
  cfg.keyspace_size = 20'000;
  cfg.zipf_exponent = 1.0;
  cfg.common.cache_bytes_per_server = 2u << 20;
  cfg.system.total_key_rate = 4.0 * 20'000.0;
  cfg.common.warmup_time = 0.5;  // cache needs filling
  const EndToEndResult r = EndToEndSim(cfg).run();
  // Somewhere strictly between never-miss and always-miss, and the refill
  // path keeps the hot head cached, so the ratio must be well below 50 %.
  EXPECT_GT(r.measured_miss_ratio, 0.001);
  EXPECT_LT(r.measured_miss_ratio, 0.5);
  EXPECT_GT(r.database.mean, 0.0);
}

TEST(EndToEnd, BiggerCacheMissesLess) {
  EndToEndConfig cfg = quick_config();
  cfg.miss_mode = MissMode::kRealCache;
  cfg.mapper = MapperKind::kRing;
  cfg.keyspace_size = 50'000;
  cfg.system.total_key_rate = 4.0 * 20'000.0;
  cfg.common.warmup_time = 0.5;
  cfg.common.cache_bytes_per_server = 1u << 20;
  const double small = EndToEndSim(cfg).run().measured_miss_ratio;
  cfg.common.cache_bytes_per_server = 16u << 20;
  const double large = EndToEndSim(cfg).run().measured_miss_ratio;
  EXPECT_LT(large, small);
}

TEST(EndToEnd, SingleServerDbQueuesUnderLoad) {
  // With μ_D = 1000/s and miss rate r·Λ = 0.05·160 Kps = 8 Kps, a real
  // M/M/1 database saturates — sojourns must blow far past the 1 ms mean
  // service time that the infinite-server mode reports.
  EndToEndConfig cfg = quick_config();
  cfg.system.miss_ratio = 0.05;
  cfg.common.measure_time = 0.5;
  cfg.db_mode = DbMode::kInfiniteServer;
  const EndToEndResult inf = EndToEndSim(cfg).run();
  cfg.db_mode = DbMode::kSingleServer;
  const EndToEndResult mm1 = EndToEndSim(cfg).run();
  EXPECT_GT(mm1.database.mean, 3.0 * inf.database.mean);
}

TEST(EndToEnd, PooledDbAbsorbsTheMissStream) {
  // kSingleServer saturates at this miss rate; a 4-shard M/M/c pool sized
  // by core::shards_for_offloaded_db keeps T_D near the 1 ms ideal.
  EndToEndConfig cfg = quick_config();
  cfg.system.miss_ratio = 0.02;  // 3.2 Kps misses vs muD = 1 Kps
  cfg.common.measure_time = 0.5;
  cfg.db_mode = DbMode::kPooled;
  cfg.db_servers = 6;  // rho_D = 0.53
  const EndToEndResult pooled = EndToEndSim(cfg).run();
  EXPECT_LT(pooled.database.mean, 3.0e-3);
  cfg.db_mode = DbMode::kSingleServer;
  const EndToEndResult single = EndToEndSim(cfg).run();
  EXPECT_GT(single.database.mean, 2.0 * pooled.database.mean);
}

TEST(EndToEnd, SeedReproducibility) {
  const EndToEndConfig cfg = quick_config();
  const EndToEndResult a = EndToEndSim(cfg).run();
  const EndToEndResult b = EndToEndSim(cfg).run();
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_DOUBLE_EQ(a.total.mean, b.total.mean);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(EndToEnd, EffectiveRequestRateDerivation) {
  EndToEndConfig cfg = quick_config();
  cfg.request_rate = 0.0;
  EXPECT_NEAR(cfg.effective_request_rate(),
              cfg.system.total_key_rate / cfg.system.keys_per_request, 1e-9);
  cfg.request_rate = 123.0;
  EXPECT_EQ(cfg.effective_request_rate(), 123.0);
}

TEST(EndToEnd, ValidatesConfig) {
  EndToEndConfig cfg = quick_config();
  cfg.common.measure_time = 0.0;
  EXPECT_THROW(EndToEndSim s(cfg), std::invalid_argument);
  cfg = quick_config();
  cfg.system.keys_per_request = 0;
  EXPECT_THROW(EndToEndSim s(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cluster
