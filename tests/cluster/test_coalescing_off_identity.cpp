// MissCoalescing::kOff is the identity: with coalescing off, every
// simulator must reproduce the pre-coalescing implementation *sample for
// sample* — same RNG streams, same event schedule, same floating-point
// folds. The twins in bench/legacy_cluster.h are the verbatim pre-engine
// run() bodies and predate the coalescing field entirely (they ignore it),
// so agreement here proves the FetchTable wiring added no RNG draw, no
// event, and no reordering to the off path, across MissMode × DbMode.
// The goldens under tests/golden/ pin the same contract end-to-end through
// the CLI; this suite localizes a violation to the simulator that drifted.
#include <string>

#include <gtest/gtest.h>

#include "bench/legacy_cluster.h"
#include "cluster/end_to_end.h"
#include "cluster/trace_replay.h"
#include "cluster/workload_driven.h"
#include "workload/request_stream.h"

namespace mclat {
namespace {

using cluster::DbMode;
using cluster::MapperKind;
using cluster::MissCoalescing;
using cluster::MissMode;

TEST(CoalescingOffIdentity, EndToEndMatchesTwinAcrossMissAndDbModes) {
  for (const MissMode miss : {MissMode::kBernoulli, MissMode::kRealCache}) {
    for (const DbMode db :
         {DbMode::kInfiniteServer, DbMode::kSingleServer, DbMode::kPooled}) {
      SCOPED_TRACE("miss=" + std::to_string(static_cast<int>(miss)) +
                   " db=" + std::to_string(static_cast<int>(db)));
      cluster::EndToEndConfig cfg;
      cfg.system = core::SystemConfig::facebook();
      cfg.system.total_key_rate = 4.0 * 10'000.0;
      cfg.system.keys_per_request = 5;
      cfg.system.miss_ratio = 0.08;
      cfg.miss_mode = miss;
      cfg.db_mode = db;
      cfg.db_servers = 3;
      cfg.keyspace_size = 10'000;
      cfg.common.cache_bytes_per_server = 1u << 20;
      cfg.common.warmup_time = 0.1;
      cfg.common.measure_time = 0.4;
      cfg.common.seed = 1234;
      cfg.common.coalescing = MissCoalescing::kOff;
      const cluster::EndToEndResult engine = cluster::EndToEndSim(cfg).run();
      const cluster::EndToEndResult twin =
          bench::legacy_cluster::run_end_to_end(cfg);
      EXPECT_EQ(engine.requests_completed, twin.requests_completed);
      EXPECT_EQ(engine.keys_completed, twin.keys_completed);
      EXPECT_EQ(engine.events_executed, twin.events_executed);
      EXPECT_DOUBLE_EQ(engine.network.mean, twin.network.mean);
      EXPECT_DOUBLE_EQ(engine.server.mean, twin.server.mean);
      EXPECT_DOUBLE_EQ(engine.database.mean, twin.database.mean);
      EXPECT_DOUBLE_EQ(engine.total.mean, twin.total.mean);
      EXPECT_DOUBLE_EQ(engine.total.halfwidth, twin.total.halfwidth);
      EXPECT_DOUBLE_EQ(engine.measured_miss_ratio, twin.measured_miss_ratio);
      EXPECT_TRUE(engine.server_utilization == twin.server_utilization);
      // Exact vector equality: every per-request T(N) sample, bit for bit.
      EXPECT_TRUE(engine.total_samples == twin.total_samples);
      // Off means every miss submitted its own fetch: no delayed hits.
      // (test_delayed_hit_model.cpp checks the exact fetch accounting.)
      EXPECT_EQ(engine.measured_delayed_hits, 0u);
      EXPECT_GT(engine.measured_db_fetches, 0u);
    }
  }
}

TEST(CoalescingOffIdentity, TraceReplayMatchesTwinOnLegacyEnvelope) {
  // The trace-replay twin is the verbatim *pre-engine* implementation: it
  // predates MissMode and DbMode and always runs Bernoulli misses into an
  // infinite-server database. Twin comparison therefore pins the off path
  // on exactly that envelope (across every mapper); the full mode grid is
  // pinned by the conservation test below plus the engine-era suites.
  workload::RequestStreamConfig sc;
  sc.request_rate = 2000.0;
  sc.keys_per_request = 10;
  sc.keyspace_size = 20'000;
  sc.zipf_exponent = 0.9;
  workload::RequestStream stream(sc, dist::Rng(3));
  const workload::Trace trace = stream.generate_trace(400);

  for (const MapperKind mapper :
       {MapperKind::kWeighted, MapperKind::kRing, MapperKind::kModulo}) {
    SCOPED_TRACE("mapper=" + std::to_string(static_cast<int>(mapper)));
    cluster::TraceReplayConfig cfg;
    cfg.system = core::SystemConfig::facebook();
    cfg.system.keys_per_request = 10;
    cfg.system.miss_ratio = 0.05;
    cfg.mapper = mapper;
    cfg.common.seed = 9;
    cfg.common.coalescing = MissCoalescing::kOff;
    const cluster::TraceReplayResult engine =
        cluster::TraceReplaySim(cfg).run(trace, stream.keyspace());
    const cluster::TraceReplayResult twin =
        bench::legacy_cluster::run_trace_replay(cfg, trace, stream.keyspace());
    EXPECT_EQ(engine.requests_completed, twin.requests_completed);
    EXPECT_EQ(engine.keys_completed, twin.keys_completed);
    EXPECT_DOUBLE_EQ(engine.network.mean, twin.network.mean);
    EXPECT_DOUBLE_EQ(engine.server.mean, twin.server.mean);
    EXPECT_DOUBLE_EQ(engine.database.mean, twin.database.mean);
    EXPECT_DOUBLE_EQ(engine.total.mean, twin.total.mean);
    EXPECT_DOUBLE_EQ(engine.total.halfwidth, twin.total.halfwidth);
    EXPECT_DOUBLE_EQ(engine.measured_miss_ratio, twin.measured_miss_ratio);
    EXPECT_DOUBLE_EQ(engine.horizon, twin.horizon);
    EXPECT_TRUE(engine.server_utilization == twin.server_utilization);
    EXPECT_EQ(engine.delayed_hits, 0u);
  }
}

TEST(CoalescingOffIdentity, TraceReplayOffConservesAcrossMissAndDbModes) {
  // Across the full MissMode × DbMode grid (beyond the twin's envelope):
  // with coalescing off, no miss ever parks and every miss submits its own
  // fetch — db_fetches reconstructs the ungated miss count exactly.
  workload::RequestStreamConfig sc;
  sc.request_rate = 2000.0;
  sc.keys_per_request = 10;
  sc.keyspace_size = 20'000;
  sc.zipf_exponent = 0.9;
  workload::RequestStream stream(sc, dist::Rng(3));
  const workload::Trace trace = stream.generate_trace(400);

  for (const MissMode miss : {MissMode::kBernoulli, MissMode::kRealCache}) {
    for (const DbMode db :
         {DbMode::kInfiniteServer, DbMode::kSingleServer, DbMode::kPooled}) {
      SCOPED_TRACE("miss=" + std::to_string(static_cast<int>(miss)) +
                   " db=" + std::to_string(static_cast<int>(db)));
      cluster::TraceReplayConfig cfg;
      cfg.system = core::SystemConfig::facebook();
      cfg.system.keys_per_request = 10;
      cfg.system.miss_ratio = 0.05;
      cfg.miss_mode = miss;
      cfg.db_mode = db;
      cfg.db_servers = 3;
      cfg.common.cache_bytes_per_server = 1u << 20;
      cfg.common.seed = 9;
      cfg.common.coalescing = MissCoalescing::kOff;
      const cluster::TraceReplayResult r =
          cluster::TraceReplaySim(cfg).run(trace, stream.keyspace());
      EXPECT_EQ(r.delayed_hits, 0u);
      const auto misses = static_cast<std::uint64_t>(
          r.measured_miss_ratio * static_cast<double>(r.keys_completed) + 0.5);
      EXPECT_EQ(r.db_fetches, misses);
      EXPECT_EQ(r.keys_completed, trace.size());
    }
  }
}

TEST(CoalescingOffIdentity, WorkloadDrivenPoolsMatchTwin) {
  cluster::WorkloadDrivenConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.miss_ratio = 0.03;
  cfg.common.warmup_time = 0.2;
  cfg.common.measure_time = 1.0;
  cfg.common.seed = 5;
  cfg.common.coalescing = MissCoalescing::kOff;
  const cluster::MeasurementPools engine =
      cluster::WorkloadDrivenSim(cfg).run();
  const cluster::MeasurementPools twin =
      bench::legacy_cluster::run_workload_driven(cfg);
  EXPECT_EQ(engine.total_keys, twin.total_keys);
  EXPECT_DOUBLE_EQ(engine.measured_miss_rate_hz, twin.measured_miss_rate_hz);
  EXPECT_TRUE(engine.server_utilization == twin.server_utilization);
  // Exact pool equality, sample for sample: the off path took exactly the
  // splits the twin took — the rank stream's split never happened.
  EXPECT_TRUE(engine.server_sojourns == twin.server_sojourns);
  EXPECT_TRUE(engine.db_sojourns == twin.db_sojourns);
  EXPECT_EQ(engine.db_delayed_hits, 0u);
  EXPECT_GT(engine.db_fetches, 0u);
}

}  // namespace
}  // namespace mclat
