#include "dist/hyperexponential.h"

#include <cmath>

#include "dist/exponential.h"
#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

TEST(HyperExponential, SinglePhaseIsExponential) {
  const HyperExponential h({1.0}, {2.0});
  const Exponential e(2.0);
  for (const double t : {0.1, 0.5, 2.0}) {
    EXPECT_NEAR(h.cdf(t), e.cdf(t), 1e-14);
    EXPECT_NEAR(h.pdf(t), e.pdf(t), 1e-14);
    EXPECT_NEAR(h.laplace(t), e.laplace(t), 1e-14);
  }
}

TEST(HyperExponential, MixtureMoments) {
  const HyperExponential h({0.3, 0.7}, {1.0, 5.0});
  EXPECT_NEAR(h.mean(), 0.3 / 1.0 + 0.7 / 5.0, 1e-14);
  const double m2 = 0.3 * 2.0 + 0.7 * 2.0 / 25.0;
  EXPECT_NEAR(h.variance(), m2 - h.mean() * h.mean(), 1e-14);
}

TEST(HyperExponential, FitMeanScvIsExact) {
  for (const double scv : {1.0, 2.0, 5.0, 20.0}) {
    const HyperExponential h = HyperExponential::fit_mean_scv(0.4, scv);
    EXPECT_NEAR(h.mean(), 0.4, 1e-12) << "scv=" << scv;
    EXPECT_NEAR(h.scv(), scv, 1e-9) << "scv=" << scv;
  }
}

TEST(HyperExponential, FitRejectsScvBelowOne) {
  EXPECT_THROW(HyperExponential::fit_mean_scv(1.0, 0.5),
               std::invalid_argument);
}

TEST(HyperExponential, LaplaceClosedForm) {
  const HyperExponential h({0.25, 0.75}, {2.0, 8.0});
  for (const double s : {0.5, 3.0, 12.0}) {
    const double want = 0.25 * 2.0 / (2.0 + s) + 0.75 * 8.0 / (8.0 + s);
    EXPECT_NEAR(h.laplace(s), want, 1e-14);
  }
}

TEST(HyperExponential, SampleMomentsMatch) {
  const HyperExponential h = HyperExponential::fit_mean_scv(1.0, 4.0);
  Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) {
    const double x = h.sample(rng);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.15);
}

TEST(HyperExponential, ValidatesConstructorInputs) {
  EXPECT_THROW(HyperExponential({0.5, 0.6}, {1.0, 2.0}),
               std::invalid_argument);  // probs don't sum to 1
  EXPECT_THROW(HyperExponential({0.5, 0.5}, {1.0}),
               std::invalid_argument);  // size mismatch
  EXPECT_THROW(HyperExponential({0.5, 0.5}, {1.0, 0.0}),
               std::invalid_argument);  // zero rate
  EXPECT_THROW(HyperExponential({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::dist
