#include "dist/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

TEST(Zipf, PmfNormalises) {
  const Zipf z(100, 1.0);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, PmfFollowsPowerLaw) {
  const Zipf z(1000, 1.2);
  // pmf(k) / pmf(2k-1) = ((2k)/(k))^s = 2^s for ranks k, 2k (1-based).
  EXPECT_NEAR(z.pmf(0) / z.pmf(1), std::pow(2.0, 1.2), 1e-12);
  EXPECT_NEAR(z.pmf(4) / z.pmf(9), std::pow(2.0, 1.2), 1e-12);
}

TEST(Zipf, HeadMassCapturesSkew) {
  const Zipf z(1'000'000, 1.0);
  // Classic Zipf: the top 1 % of keys attract a large share of accesses.
  const double head = z.head_mass(10'000);
  EXPECT_GT(head, 0.6);
  EXPECT_LT(head, 1.0);
  EXPECT_NEAR(z.head_mass(1'000'000), 1.0, 1e-12);
  EXPECT_EQ(z.head_mass(0), 0.0);
}

TEST(Zipf, SamplerMatchesPmf) {
  const Zipf z(50, 0.8);
  Rng rng(123);
  std::vector<int> counts(50, 0);
  const int n = 2'000'000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t k = z.sample(rng);
    ASSERT_LT(k, 50u);
    ++counts[k];
  }
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k),
                0.02 * z.pmf(k) + 5e-5)
        << "rank " << k;
  }
}

TEST(Zipf, SamplerCoversHugeKeySpacesWithoutTables) {
  // 10^9 keys: rejection-inversion needs O(1) memory; just verify draws are
  // in range and skewed toward low ranks.
  const Zipf z(1'000'000'000ull, 1.0);
  Rng rng(9);
  std::uint64_t below_1000 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t k = z.sample(rng);
    ASSERT_LT(k, 1'000'000'000ull);
    if (k < 1000) ++below_1000;
  }
  // head_mass(1000) ≈ H(1000)/H(1e9) ≈ 7.49/21.3 ≈ 0.35 for s=1.
  EXPECT_GT(static_cast<double>(below_1000) / n, 0.25);
  EXPECT_LT(static_cast<double>(below_1000) / n, 0.45);
}

TEST(Zipf, ExponentGreaterThanOne) {
  const Zipf z(10'000, 1.5);
  Rng rng(4);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(z.sample(rng), 10'000u);
  }
  // s > 1 concentrates even harder on the head.
  EXPECT_GT(z.head_mass(10), 0.75);
}

TEST(Zipf, SingleItemDegenerate) {
  const Zipf z(1, 1.0);
  Rng rng(2);
  EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_EQ(z.pmf(0), 1.0);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Zipf(10, 0.0), std::invalid_argument);
  const Zipf z(10, 1.0);
  EXPECT_THROW((void)z.pmf(10), std::invalid_argument);
  EXPECT_THROW((void)z.head_mass(11), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::dist
