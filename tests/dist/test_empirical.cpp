#include "dist/empirical.h"

#include <vector>

#include "dist/exponential.h"
#include "dist/rng.h"
#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

TEST(Empirical, SortsAndComputesMoments) {
  const Empirical e({3.0, 1.0, 2.0});
  EXPECT_EQ(e.min(), 1.0);
  EXPECT_EQ(e.max(), 3.0);
  EXPECT_NEAR(e.mean(), 2.0, 1e-15);
  EXPECT_NEAR(e.variance(), 1.0, 1e-15);  // unbiased: ((1)+(0)+(1))/2
}

TEST(Empirical, EcdfSteps) {
  const Empirical e({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(e.cdf(0.5), 0.0);
  EXPECT_EQ(e.cdf(1.0), 0.25);
  EXPECT_EQ(e.cdf(2.5), 0.5);
  EXPECT_EQ(e.cdf(4.0), 1.0);
  EXPECT_EQ(e.cdf(100.0), 1.0);
}

TEST(Empirical, QuantileInterpolatesType7) {
  const Empirical e({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_EQ(e.quantile(0.0), 10.0);
  EXPECT_EQ(e.quantile(1.0), 50.0);
  EXPECT_EQ(e.quantile(0.5), 30.0);
  EXPECT_NEAR(e.quantile(0.125), 15.0, 1e-12);  // halfway between 10 and 20
}

TEST(Empirical, SingleSample) {
  const Empirical e({7.0});
  EXPECT_EQ(e.quantile(0.3), 7.0);
  EXPECT_EQ(e.mean(), 7.0);
  EXPECT_EQ(e.variance(), 0.0);
  EXPECT_EQ(e.mean_ci_halfwidth(), 0.0);
}

TEST(Empirical, RejectsEmptySample) {
  EXPECT_THROW(Empirical({}), std::invalid_argument);
}

TEST(Empirical, CiShrinksWithSampleSize) {
  Rng rng(31);
  const Exponential ex(1.0);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 100; ++i) small.push_back(ex.sample(rng));
  for (int i = 0; i < 10'000; ++i) large.push_back(ex.sample(rng));
  const Empirical es(std::move(small));
  const Empirical el(std::move(large));
  EXPECT_GT(es.mean_ci_halfwidth(), el.mean_ci_halfwidth());
  // 95 % CI of a 10k exponential sample comfortably contains the truth.
  EXPECT_NEAR(el.mean(), 1.0, 3.0 * el.mean_ci_halfwidth());
}

TEST(Empirical, QuantilesConvergeToPopulation) {
  Rng rng(17);
  const Exponential ex(2.0);
  std::vector<double> xs;
  xs.reserve(200'000);
  for (int i = 0; i < 200'000; ++i) xs.push_back(ex.sample(rng));
  const Empirical e(std::move(xs));
  for (const double p : {0.5, 0.9, 0.99}) {
    EXPECT_NEAR(e.quantile(p), ex.quantile(p), 0.03 * ex.quantile(p) + 1e-3)
        << "p=" << p;
  }
}

}  // namespace
}  // namespace mclat::dist
