#include "dist/erlang.h"

#include <cmath>

#include "dist/exponential.h"
#include "math/integration.h"
#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

TEST(Erlang, K1IsExponential) {
  const Erlang e1(1, 3.0);
  const Exponential ex(3.0);
  for (const double t : {0.05, 0.2, 1.0}) {
    EXPECT_NEAR(e1.cdf(t), ex.cdf(t), 1e-12);
    EXPECT_NEAR(e1.pdf(t), ex.pdf(t), 1e-12);
    EXPECT_NEAR(e1.laplace(t), ex.laplace(t), 1e-12);
  }
}

TEST(Erlang, MomentsAndScv) {
  const Erlang e(4, 8.0);
  EXPECT_DOUBLE_EQ(e.mean(), 0.5);
  EXPECT_DOUBLE_EQ(e.variance(), 4.0 / 64.0);
  EXPECT_DOUBLE_EQ(e.scv(), 0.25);  // SCV = 1/k
}

TEST(Erlang, LaplaceClosedForm) {
  const Erlang e(3, 2.0);
  for (const double s : {0.5, 1.0, 4.0}) {
    EXPECT_NEAR(e.laplace(s), std::pow(2.0 / (2.0 + s), 3.0), 1e-14);
  }
}

TEST(Erlang, NumericLaplaceAgreesWithClosedForm) {
  // Route around the override to exercise the base-class integrator.
  const Erlang e(2, 5.0);
  const auto base_laplace = [&](double s) {
    const auto integrand = [&](double t) {
      return std::exp(-s * t) * e.pdf(t);
    };
    return math::integrate_semi_infinite(integrand, 0.0);
  };
  for (const double s : {1.0, 3.0, 10.0}) {
    EXPECT_NEAR(base_laplace(s), e.laplace(s), 1e-7);
  }
}

TEST(Erlang, CdfViaGammaPMatchesConvolutionSeries) {
  const Erlang e(5, 2.0);
  const double t = 1.7;
  // 1 - e^{-rt} Σ_{i<5} (rt)^i / i!
  double sum = 0.0;
  double term = 1.0;
  for (int i = 0; i < 5; ++i) {
    if (i > 0) term *= 2.0 * t / i;
    sum += term;
  }
  EXPECT_NEAR(e.cdf(t), 1.0 - std::exp(-2.0 * t) * sum, 1e-12);
}

TEST(Erlang, SampleMomentsMatch) {
  const Erlang e = Erlang::with_mean(3, 0.3);
  Rng rng(99);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = e.sample(rng);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.3, 0.002);
  EXPECT_NEAR(sq / n - mean * mean, e.variance(), 0.002);
}

TEST(Erlang, WithMeanFactory) {
  const Erlang e = Erlang::with_mean(7, 2.1);
  EXPECT_EQ(e.phases(), 7);
  EXPECT_NEAR(e.mean(), 2.1, 1e-12);
}

TEST(Erlang, RejectsBadParameters) {
  EXPECT_THROW(Erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Erlang(2, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::dist
