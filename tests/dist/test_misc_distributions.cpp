// Deterministic, Uniform, Weibull and LogNormal.
#include <cmath>

#include "dist/deterministic.h"
#include "dist/lognormal.h"
#include "dist/uniform.h"
#include "dist/weibull.h"
#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

// ---------- Deterministic ----------

TEST(Deterministic, PointMassBehaviour) {
  const Deterministic d(2.5);
  EXPECT_EQ(d.cdf(2.4999), 0.0);
  EXPECT_EQ(d.cdf(2.5), 1.0);
  EXPECT_EQ(d.mean(), 2.5);
  EXPECT_EQ(d.variance(), 0.0);
  EXPECT_EQ(d.quantile(0.3), 2.5);
  Rng rng(1);
  EXPECT_EQ(d.sample(rng), 2.5);
}

TEST(Deterministic, LaplaceIsPureExponential) {
  const Deterministic d(0.4);
  for (const double s : {0.0, 1.0, 5.0}) {
    EXPECT_NEAR(d.laplace(s), std::exp(-0.4 * s), 1e-15);
  }
}

// ---------- Uniform ----------

TEST(Uniform, BasicLaws) {
  const Uniform u(1.0, 3.0);
  EXPECT_EQ(u.mean(), 2.0);
  EXPECT_NEAR(u.variance(), 4.0 / 12.0, 1e-15);
  EXPECT_EQ(u.cdf(0.5), 0.0);
  EXPECT_EQ(u.cdf(2.0), 0.5);
  EXPECT_EQ(u.cdf(5.0), 1.0);
  EXPECT_EQ(u.quantile(0.25), 1.5);
}

TEST(Uniform, LaplaceClosedForm) {
  const Uniform u(0.0, 2.0);
  for (const double s : {0.5, 2.0, 7.0}) {
    EXPECT_NEAR(u.laplace(s), (1.0 - std::exp(-2.0 * s)) / (2.0 * s), 1e-14);
  }
  EXPECT_EQ(u.laplace(0.0), 1.0);
}

TEST(Uniform, RejectsDegenerateInterval) {
  EXPECT_THROW(Uniform(2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(Uniform(-1.0, 1.0), std::invalid_argument);
}

// ---------- Weibull ----------

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(1.0, 0.5);
  for (const double t : {0.1, 0.5, 2.0}) {
    EXPECT_NEAR(w.cdf(t), 1.0 - std::exp(-t / 0.5), 1e-13);
  }
  EXPECT_NEAR(w.mean(), 0.5, 1e-13);
  EXPECT_NEAR(w.scv(), 1.0, 1e-10);
}

TEST(Weibull, QuantileInvertsCdf) {
  const Weibull w(2.3, 1.7);
  for (double p = 0.0; p < 0.999; p += 0.041) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-12);
  }
}

TEST(Weibull, WithMeanHitsTarget) {
  for (const double shape : {0.7, 1.0, 3.0}) {
    const Weibull w = Weibull::with_mean(shape, 2.0);
    EXPECT_NEAR(w.mean(), 2.0, 1e-10) << "shape=" << shape;
  }
}

TEST(Weibull, ScvRegimes) {
  // k < 1 ⇒ SCV > 1 (bursty), k > 1 ⇒ SCV < 1 (smooth).
  EXPECT_GT(Weibull(0.5, 1.0).scv(), 1.0);
  EXPECT_LT(Weibull(2.0, 1.0).scv(), 1.0);
}

// ---------- LogNormal ----------

TEST(LogNormal, MomentFormulas) {
  const LogNormal ln(0.3, 0.8);
  EXPECT_NEAR(ln.mean(), std::exp(0.3 + 0.5 * 0.64), 1e-12);
  EXPECT_NEAR(ln.variance(),
              (std::exp(0.64) - 1.0) * std::exp(2.0 * 0.3 + 0.64), 1e-12);
}

TEST(LogNormal, FitMeanScvIsExact) {
  for (const double scv : {0.25, 1.0, 9.0}) {
    const LogNormal ln = LogNormal::fit_mean_scv(3.0, scv);
    EXPECT_NEAR(ln.mean(), 3.0, 1e-10) << "scv=" << scv;
    EXPECT_NEAR(ln.scv(), scv, 1e-9) << "scv=" << scv;
  }
}

TEST(LogNormal, MedianIsExpMu) {
  const LogNormal ln(1.2, 0.5);
  EXPECT_NEAR(ln.quantile(0.5), std::exp(1.2), 1e-9);
  EXPECT_NEAR(ln.cdf(std::exp(1.2)), 0.5, 1e-12);
}

TEST(LogNormal, SampleMeanMatches) {
  const LogNormal ln = LogNormal::fit_mean_scv(2.0, 1.5);
  Rng rng(11);
  double sum = 0.0;
  const int n = 300'000;
  for (int i = 0; i < n; ++i) sum += ln.sample(rng);
  EXPECT_NEAR(sum / n, 2.0, 0.02);
}

TEST(LogNormal, RejectsBadSigma) {
  EXPECT_THROW(LogNormal(0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::dist
