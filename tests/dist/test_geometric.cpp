// GeometricBatch — the batch-size law X of GI^X/M/1.
#include "dist/geometric.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

TEST(GeometricBatch, PmfMatchesPaperDefinition) {
  // P{X = n} = q^{n-1}(1-q)  (paper §3).
  const GeometricBatch g(0.1159);  // Facebook's measured concurrency
  for (std::uint64_t n = 1; n <= 6; ++n) {
    EXPECT_NEAR(g.pmf(n), std::pow(0.1159, n - 1.0) * (1.0 - 0.1159), 1e-15);
  }
  EXPECT_EQ(g.pmf(0), 0.0);
}

TEST(GeometricBatch, PmfSumsToOne) {
  const GeometricBatch g(0.4);
  double sum = 0.0;
  for (std::uint64_t n = 1; n <= 200; ++n) sum += g.pmf(n);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(GeometricBatch, MeanAndVariance) {
  const GeometricBatch g(0.25);
  EXPECT_NEAR(g.mean(), 1.0 / 0.75, 1e-15);
  EXPECT_NEAR(g.variance(), 0.25 / (0.75 * 0.75), 1e-15);
}

TEST(GeometricBatch, ZeroQIsAlwaysSingleton) {
  const GeometricBatch g(0.0);
  EXPECT_EQ(g.mean(), 1.0);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(g.sample(rng), 1u);
}

TEST(GeometricBatch, CdfComplementIsGeometricTail) {
  const GeometricBatch g(0.3);
  for (std::uint64_t n = 1; n <= 10; ++n) {
    EXPECT_NEAR(1.0 - g.cdf(n), std::pow(0.3, static_cast<double>(n)), 1e-13);
  }
}

TEST(GeometricBatch, PgfMatchesClosedForm) {
  const GeometricBatch g(0.2);
  for (const double z : {0.1, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(g.pgf(z), 0.8 * z / (1.0 - 0.2 * z), 1e-14);
  }
  EXPECT_NEAR(g.pgf(1.0), 1.0, 1e-14);  // normalisation
}

TEST(GeometricBatch, SampleMomentsMatch) {
  const GeometricBatch g(0.5);
  Rng rng(21);
  double sum = 0.0;
  const int n = 500'000;
  std::uint64_t max_seen = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t x = g.sample(rng);
    ASSERT_GE(x, 1u);
    max_seen = std::max<std::uint64_t>(max_seen, x);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.01);
  EXPECT_GE(max_seen, 10u);  // the tail is actually exercised
}

TEST(GeometricBatch, SampleFrequenciesMatchPmf) {
  const GeometricBatch g(0.35);
  Rng rng(13);
  std::vector<int> counts(12, 0);
  const int n = 1'000'000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t x = g.sample(rng);
    if (x < counts.size()) ++counts[x];
  }
  for (std::uint64_t k = 1; k <= 8; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, g.pmf(k),
                0.02 * g.pmf(k) + 1e-4)
        << "batch size " << k;
  }
}

TEST(GeometricBatch, RejectsBadQ) {
  EXPECT_THROW(GeometricBatch(-0.1), std::invalid_argument);
  EXPECT_THROW(GeometricBatch(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::dist
