// Property tests applied uniformly to every continuous distribution: the
// consistency laws the ContinuousDistribution interface promises. New
// distributions only need to be added to the instantiation list.
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "dist/deterministic.h"
#include "dist/distribution.h"
#include "dist/erlang.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "dist/hyperexponential.h"
#include "dist/lognormal.h"
#include "dist/uniform.h"
#include "dist/weibull.h"
#include "math/integration.h"
#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

struct DistCase {
  std::string label;
  std::function<DistributionPtr()> make;
  bool continuous_cdf = true;  // Deterministic has a step CDF
};

class DistributionLaws : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionLaws, CdfIsMonotoneAndBounded) {
  const auto d = GetParam().make();
  double prev = 0.0;
  const double top = d->quantile(0.999) * 1.5 + 1.0;
  for (int i = 0; i <= 200; ++i) {
    const double t = top * i / 200.0;
    const double c = d->cdf(t);
    EXPECT_GE(c, prev - 1e-12) << "t=" << t;
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_EQ(d->cdf(-1.0), 0.0);
}

TEST_P(DistributionLaws, QuantileInvertsCdf) {
  if (!GetParam().continuous_cdf) GTEST_SKIP() << "step CDF";
  const auto d = GetParam().make();
  for (double p = 0.01; p < 0.995; p += 0.04) {
    const double t = d->quantile(p);
    EXPECT_NEAR(d->cdf(t), p, 1e-7) << "p=" << p;
  }
}

TEST_P(DistributionLaws, QuantileIsMonotone) {
  const auto d = GetParam().make();
  double prev = -1.0;
  for (double p = 0.0; p < 0.999; p += 0.013) {
    const double t = d->quantile(p);
    EXPECT_GE(t, prev - 1e-12) << "p=" << p;
    prev = t;
  }
}

TEST_P(DistributionLaws, LaplaceBasicProperties) {
  const auto d = GetParam().make();
  EXPECT_NEAR(d->laplace(0.0), 1.0, 1e-9);
  // L is decreasing in s and bounded in (0, 1].
  double prev = 1.0;
  const double s_unit = 1.0 / d->mean();
  for (int i = 1; i <= 10; ++i) {
    const double v = d->laplace(s_unit * i);
    EXPECT_LT(v, prev + 1e-12);
    EXPECT_GT(v, 0.0);
    prev = v;
  }
}

TEST_P(DistributionLaws, LaplaceFirstDerivativeGivesMean) {
  // -L'(0) = E[T]; finite difference at small s.
  const auto d = GetParam().make();
  const double h = 1e-6 / d->mean();
  const double deriv = (1.0 - d->laplace(h)) / h;
  EXPECT_NEAR(deriv, d->mean(), 0.02 * d->mean());
}

TEST_P(DistributionLaws, PdfIntegratesToCdf) {
  if (!GetParam().continuous_cdf) GTEST_SKIP() << "step CDF";
  const auto d = GetParam().make();
  const double t = d->quantile(0.7);
  const double integral = math::adaptive_simpson(
      [&](double x) { return d->pdf(x); }, 0.0, t,
      {.abs_tol = 1e-12, .rel_tol = 1e-10});
  EXPECT_NEAR(integral, d->cdf(t), 2e-6);
}

TEST_P(DistributionLaws, SampleMeanConverges) {
  const auto d = GetParam().make();
  Rng rng(1234);
  double sum = 0.0;
  const int n = 150'000;
  for (int i = 0; i < n; ++i) {
    const double x = d->sample(rng);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  // Heavy-tailed members converge slowly; 5 % tolerance is enough to catch
  // wiring bugs without flaking.
  EXPECT_NEAR(sum / n, d->mean(), 0.05 * d->mean() + 1e-9);
}

TEST_P(DistributionLaws, CloneBehavesIdentically) {
  const auto d = GetParam().make();
  const auto c = d->clone();
  EXPECT_EQ(c->name(), d->name());
  for (double p = 0.05; p < 1.0; p += 0.11) {
    EXPECT_DOUBLE_EQ(c->quantile(p), d->quantile(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionLaws,
    ::testing::Values(
        DistCase{"Exponential",
                 [] { return std::make_unique<Exponential>(3.0); }},
        DistCase{"GP_xi015",
                 [] {
                   return std::make_unique<GeneralizedPareto>(
                       GeneralizedPareto::with_rate(0.15, 62'500.0));
                 }},
        DistCase{"GP_xi06",
                 [] {
                   return std::make_unique<GeneralizedPareto>(
                       GeneralizedPareto::with_rate(0.6, 100.0));
                 }},
        DistCase{"Erlang4",
                 [] { return std::make_unique<Erlang>(4, 10.0); }},
        DistCase{"HyperExp_scv4",
                 [] {
                   return std::make_unique<HyperExponential>(
                       HyperExponential::fit_mean_scv(0.5, 4.0));
                 }},
        DistCase{"Uniform", [] { return std::make_unique<Uniform>(0.5, 2.5); }},
        DistCase{"Weibull07",
                 [] { return std::make_unique<Weibull>(0.7, 1.0); }},
        DistCase{"Weibull2",
                 [] { return std::make_unique<Weibull>(2.0, 3.0); }},
        DistCase{"LogNormal",
                 [] {
                   return std::make_unique<LogNormal>(
                       LogNormal::fit_mean_scv(1.0, 2.0));
                 }},
        DistCase{"Deterministic",
                 [] { return std::make_unique<Deterministic>(1.5); },
                 /*continuous_cdf=*/false}),
    [](const ::testing::TestParamInfo<DistCase>& pinfo) {
      return pinfo.param.label;
    });

}  // namespace
}  // namespace mclat::dist
