#include "dist/exponential.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

TEST(Exponential, ClosedForms) {
  const Exponential e(4.0);
  EXPECT_DOUBLE_EQ(e.mean(), 0.25);
  EXPECT_DOUBLE_EQ(e.variance(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(e.scv(), 1.0);
  EXPECT_NEAR(e.cdf(0.25), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(e.pdf(0.0), 4.0, 1e-15);
  EXPECT_EQ(e.cdf(-1.0), 0.0);
  EXPECT_EQ(e.pdf(-1.0), 0.0);
}

TEST(Exponential, LaplaceTransform) {
  const Exponential e(3.0);
  EXPECT_DOUBLE_EQ(e.laplace(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.laplace(3.0), 0.5);
  EXPECT_DOUBLE_EQ(e.laplace(6.0), 1.0 / 3.0);
}

TEST(Exponential, QuantileInvertsCdf) {
  const Exponential e(2.5);
  for (double p = 0.0; p < 1.0; p += 0.05) {
    EXPECT_NEAR(e.cdf(e.quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(Exponential, WithMeanFactory) {
  const Exponential e = Exponential::with_mean(0.2);
  EXPECT_DOUBLE_EQ(e.rate(), 5.0);
  EXPECT_DOUBLE_EQ(e.mean(), 0.2);
}

TEST(Exponential, SampleMomentsMatch) {
  const Exponential e(10.0);
  Rng rng(42);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = e.sample(rng);
    ASSERT_GE(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.1, 0.001);
  EXPECT_NEAR(var, 0.01, 0.0005);
}

TEST(Exponential, Memorylessness) {
  // P{T > s+t | T > s} = P{T > t}: check via the CDF identity.
  const Exponential e(1.7);
  const double s = 0.4;
  const double t = 0.9;
  const double lhs = (1.0 - e.cdf(s + t)) / (1.0 - e.cdf(s));
  EXPECT_NEAR(lhs, 1.0 - e.cdf(t), 1e-12);
}

TEST(Exponential, RejectsNonPositiveRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Exponential, CloneIsIndependentCopy) {
  const Exponential e(2.0);
  const auto c = e.clone();
  EXPECT_DOUBLE_EQ(c->mean(), e.mean());
  EXPECT_EQ(c->name(), e.name());
}

}  // namespace
}  // namespace mclat::dist
