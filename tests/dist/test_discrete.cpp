// Discrete / alias-method categorical distribution and the skewed_load
// helper behind Fig. 10.
#include "dist/discrete.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

TEST(Discrete, NormalisesWeights) {
  const Discrete d({2.0, 6.0});
  EXPECT_NEAR(d.pmf(0), 0.25, 1e-15);
  EXPECT_NEAR(d.pmf(1), 0.75, 1e-15);
}

TEST(Discrete, UniformFactory) {
  const Discrete d = Discrete::uniform(5);
  for (std::size_t j = 0; j < 5; ++j) EXPECT_NEAR(d.pmf(j), 0.2, 1e-15);
}

TEST(Discrete, ArgmaxFindsHeaviest) {
  const Discrete d({0.1, 0.5, 0.4});
  EXPECT_EQ(d.argmax(), 1u);
}

TEST(Discrete, SamplingFrequenciesMatchAliasTable) {
  const std::vector<double> w = {0.05, 0.5, 0.2, 0.25};
  const Discrete d(w);
  Rng rng(77);
  std::vector<int> counts(w.size(), 0);
  const int n = 1'000'000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  for (std::size_t j = 0; j < w.size(); ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, w[j], 0.003)
        << "category " << j;
  }
}

TEST(Discrete, HandlesZeroWeightCategories) {
  const Discrete d({0.0, 1.0, 0.0});
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(d.sample(rng), 1u);
  }
}

TEST(Discrete, SingleCategory) {
  const Discrete d({42.0});
  Rng rng(1);
  EXPECT_EQ(d.sample(rng), 0u);
  EXPECT_EQ(d.pmf(0), 1.0);
}

TEST(Discrete, ManyCategoriesStayExact) {
  std::vector<double> w(1000);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<double>(i + 1);
  const Discrete d(std::move(w));
  const double total = 1000.0 * 1001.0 / 2.0;
  EXPECT_NEAR(d.pmf(999), 1000.0 / total, 1e-15);
  const double sum = std::accumulate(d.probabilities().begin(),
                                     d.probabilities().end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Discrete, RejectsBadWeights) {
  EXPECT_THROW(Discrete({}), std::invalid_argument);
  EXPECT_THROW(Discrete({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Discrete({1.0, -0.1}), std::invalid_argument);
}

TEST(SkewedLoad, MatchesFig10Construction) {
  // p1 = 0.6 with 4 servers: {0.6, 0.4/3, 0.4/3, 0.4/3}.
  const auto p = skewed_load(4, 0.6);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_NEAR(p[0], 0.6, 1e-15);
  for (std::size_t j = 1; j < 4; ++j) EXPECT_NEAR(p[j], 0.4 / 3.0, 1e-15);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
}

TEST(SkewedLoad, BalancedBoundary) {
  const auto p = skewed_load(4, 0.25);
  for (const double x : p) EXPECT_NEAR(x, 0.25, 1e-15);
}

TEST(SkewedLoad, RejectsInfeasibleP1) {
  EXPECT_THROW(skewed_load(4, 0.2), std::invalid_argument);   // < 1/M
  EXPECT_THROW(skewed_load(4, 1.0), std::invalid_argument);   // = 1
}

}  // namespace
}  // namespace mclat::dist
