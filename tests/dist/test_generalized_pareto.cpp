// Generalized Pareto — the paper's inter-arrival law (eq. 24).
#include "dist/generalized_pareto.h"

#include <cmath>

#include "dist/exponential.h"
#include <gtest/gtest.h>

namespace mclat::dist {
namespace {

TEST(GeneralizedPareto, CdfMatchesPaperEquation24) {
  // T_X(t) = 1 - (1 + ξλt/(1-ξ))^{-1/ξ} with mean 1/λ.
  const double xi = 0.15;
  const double lambda = 62'500.0;
  const GeneralizedPareto gp = GeneralizedPareto::with_rate(xi, lambda);
  for (const double t : {1e-6, 16e-6, 100e-6, 1e-3}) {
    const double want =
        1.0 - std::pow(1.0 + xi * lambda * t / (1.0 - xi), -1.0 / xi);
    EXPECT_NEAR(gp.cdf(t), want, 1e-12) << "t=" << t;
  }
  EXPECT_NEAR(gp.mean(), 1.0 / lambda, 1e-15);
}

TEST(GeneralizedPareto, ShapeZeroDegeneratesToExponential) {
  const GeneralizedPareto gp = GeneralizedPareto::with_rate(0.0, 5.0);
  const Exponential e(5.0);
  for (const double t : {0.01, 0.1, 0.5, 2.0}) {
    EXPECT_NEAR(gp.cdf(t), e.cdf(t), 1e-12);
    EXPECT_NEAR(gp.pdf(t), e.pdf(t), 1e-9);
  }
}

TEST(GeneralizedPareto, QuantileClosedFormInvertsCdf) {
  const GeneralizedPareto gp(0.3, 2.0);
  for (double p = 0.0; p < 0.999; p += 0.037) {
    EXPECT_NEAR(gp.cdf(gp.quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(GeneralizedPareto, VarianceFiniteOnlyBelowHalf) {
  const GeneralizedPareto light(0.3, 1.0);
  EXPECT_TRUE(std::isfinite(light.variance()));
  // Var = σ²/((1-ξ)²(1-2ξ)).
  EXPECT_NEAR(light.variance(), 1.0 / (0.49 * 0.4), 1e-12);
  const GeneralizedPareto heavy(0.6, 1.0);
  EXPECT_TRUE(std::isinf(heavy.variance()));
}

TEST(GeneralizedPareto, HeavierTailThanExponentialAtSameMean) {
  const double mean = 1.0;
  const GeneralizedPareto gp = GeneralizedPareto::with_mean(0.4, mean);
  const Exponential e = Exponential::with_mean(mean);
  // Survival function dominates far in the tail.
  for (const double t : {5.0, 10.0, 20.0}) {
    EXPECT_GT(1.0 - gp.cdf(t), 1.0 - e.cdf(t)) << "t=" << t;
  }
}

TEST(GeneralizedPareto, NumericLaplaceMatchesExponentialLimit) {
  // ξ = 0 must reproduce the exponential's closed form through the numeric
  // integration path of the base class.
  const GeneralizedPareto gp = GeneralizedPareto::with_rate(0.0, 4.0);
  for (const double s : {0.5, 2.0, 8.0}) {
    EXPECT_NEAR(gp.laplace(s), 4.0 / (4.0 + s), 1e-8) << "s=" << s;
  }
}

TEST(GeneralizedPareto, LaplaceIsCompletelyMonotoneInS) {
  const GeneralizedPareto gp(0.15, 1.6e-5);
  double prev = 1.0;
  for (double s = 0.0; s <= 1e5; s += 1e4) {
    const double v = gp.laplace(s);
    EXPECT_LE(v, prev + 1e-12);
    EXPECT_GE(v, 0.0);
    prev = v;
  }
}

TEST(GeneralizedPareto, SampleMeanMatches) {
  const GeneralizedPareto gp = GeneralizedPareto::with_mean(0.15, 2e-5);
  Rng rng(7);
  double sum = 0.0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) sum += gp.sample(rng);
  EXPECT_NEAR(sum / n, 2e-5, 2e-7);
}

TEST(GeneralizedPareto, RejectsBadParameters) {
  EXPECT_THROW(GeneralizedPareto(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(GeneralizedPareto(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GeneralizedPareto(0.2, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::dist
