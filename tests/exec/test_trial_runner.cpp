// Determinism and semantics of exec::TrialRunner: identical merged
// statistics for any job count, seed-stream properties, index-ordered
// results under adversarial completion order, and exception propagation.
#include "exec/trial_runner.h"

#include <chrono>
#include <cstring>
#include <random>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "dist/rng.h"
#include "stats/summary.h"
#include "stats/welford.h"

namespace mclat::exec {
namespace {

// Bitwise equality — determinism here means *identical*, not "close".
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

stats::Welford sample_trial(std::uint64_t seed, int samples) {
  dist::Rng rng(seed);
  stats::Welford w;
  for (int i = 0; i < samples; ++i) w.add(rng.exponential(1.0 + seed % 7));
  return w;
}

TEST(SeedStream, TrialSeedIsAPureFunction) {
  EXPECT_EQ(trial_seed(42, 7), trial_seed(42, 7));
  EXPECT_NE(trial_seed(42, 7), trial_seed(42, 8));
  EXPECT_NE(trial_seed(42, 7), trial_seed(43, 7));
}

TEST(SeedStream, ConsecutiveIndicesDecorrelate) {
  // splitmix64 is a bijection: 1000 consecutive trials of the same base
  // seed must produce 1000 distinct seeds.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(trial_seed(9, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SeedStream, NamedStreamsNeverCollide) {
  for (std::uint64_t seed = 0; seed < 512; ++seed) {
    const auto sim = stream_seed(seed, Stream::simulation);
    const auto asm_ = stream_seed(seed, Stream::assembly);
    const auto wl = stream_seed(seed, Stream::workload);
    EXPECT_NE(sim, asm_);
    EXPECT_NE(sim, wl);
    EXPECT_NE(asm_, wl);
  }
}

TEST(TrialRunner, MergedSummaryIsJobCountInvariant) {
  // Property test: for randomized trial counts, jobs ∈ {1, 2, 8} produce
  // bit-identical merged summaries.
  std::mt19937_64 meta(2024);
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t trials = 1 + meta() % 40;
    const std::uint64_t base_seed = meta();
    std::vector<stats::MeanCI> merged;
    for (const std::size_t jobs : {1u, 2u, 8u}) {
      const TrialRunner runner({jobs, base_seed});
      const auto parts =
          runner.run(trials, [](std::uint64_t, std::uint64_t seed) {
            return sample_trial(seed, 500);
          });
      merged.push_back(stats::pooled_mean_ci(parts));
    }
    for (std::size_t j = 1; j < merged.size(); ++j) {
      EXPECT_TRUE(same_bits(merged[0].mean, merged[j].mean));
      EXPECT_TRUE(same_bits(merged[0].halfwidth, merged[j].halfwidth));
      EXPECT_EQ(merged[0].count, merged[j].count);
    }
  }
}

TEST(TrialRunner, ResultsArriveInTrialOrder) {
  // Adversarial completion order: early trials sleep longest, so with 4
  // workers the *last* trials finish first. Results must still be indexed.
  const TrialRunner runner({4, 1});
  const auto out = runner.run(12, [](std::uint64_t idx, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(12 - idx));
    return idx;
  });
  ASSERT_EQ(out.size(), 12u);
  for (std::uint64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(TrialRunner, SeedsMatchTheSerialDerivation) {
  const TrialRunner runner({8, 77});
  const auto seeds = runner.run(
      32, [](std::uint64_t, std::uint64_t seed) { return seed; });
  for (std::uint64_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], trial_seed(77, i));
  }
}

TEST(TrialRunner, ZeroTrialsYieldsEmpty) {
  const TrialRunner runner({4, 1});
  const auto out =
      runner.run(0, [](std::uint64_t, std::uint64_t) { return 1; });
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats::pooled_mean_ci({}).count, 0u);
}

TEST(TrialRunner, ZeroJobsIsInvalid) {
  const TrialOptions zero_jobs{0, 1};
  EXPECT_THROW(TrialRunner runner(zero_jobs), std::invalid_argument);
}

TEST(TrialRunner, TrialExceptionPropagates) {
  for (const std::size_t jobs : {1u, 4u}) {
    const TrialRunner runner({jobs, 1});
    EXPECT_THROW(
        (void)runner.run(10,
                         [](std::uint64_t idx, std::uint64_t) -> int {
                           if (idx == 3) throw std::runtime_error("trial 3");
                           return 0;
                         }),
        std::runtime_error);
  }
}

TEST(TrialRunner, CoalescedTrialsAreJobCountInvariant) {
  // Multi-trial delayed-hit coalescing under the runner (and, with
  // -DMCLAT_SANITIZE=thread, under TSan): each trial owns its simulator,
  // FetchTable, and RNG streams, so jobs ∈ {1, 4} must merge to
  // bit-identical statistics — parallelism may not leak into the
  // coalescing bookkeeping.
  std::vector<stats::MeanCI> merged;
  std::vector<std::uint64_t> fetch_totals;
  for (const std::size_t jobs : {1u, 4u}) {
    const TrialRunner runner({jobs, 99});
    const auto parts =
        runner.run(6, [](std::uint64_t, std::uint64_t seed) {
          cluster::EndToEndConfig cfg;
          cfg.system.servers = 2;
          cfg.system.total_key_rate = 4000.0;
          cfg.system.keys_per_request = 2;
          cfg.system.service_rate = 20'000.0;
          cfg.system.miss_ratio = 0.5;
          cfg.system.db_service_rate = 500.0;  // slow fetches pile waiters
          cfg.common.coalescing = cluster::MissCoalescing::kPerServer;
          cfg.common.warmup_time = 0.05;
          cfg.common.measure_time = 0.3;
          cfg.common.seed = seed;
          const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();
          stats::Welford w;
          for (const double x : r.total_samples) w.add(x);
          return std::make_pair(w, r.measured_db_fetches +
                                       r.measured_delayed_hits);
        });
    stats::Welford all;
    std::uint64_t fetches = 0;
    for (const auto& [w, f] : parts) {
      all.merge(w);
      fetches += f;
    }
    merged.push_back(stats::mean_ci(all));
    fetch_totals.push_back(fetches);
  }
  EXPECT_GT(fetch_totals[0], 0u);
  EXPECT_EQ(fetch_totals[0], fetch_totals[1]);
  EXPECT_TRUE(same_bits(merged[0].mean, merged[1].mean));
  EXPECT_TRUE(same_bits(merged[0].halfwidth, merged[1].halfwidth));
  EXPECT_EQ(merged[0].count, merged[1].count);
}

TEST(TrialRunner, HedgedTrialsAreJobCountInvariant) {
  // Multi-trial hedged cancellation under the runner (and, with
  // -DMCLAT_SANITIZE=thread, under TSan): each trial owns its simulator,
  // ReplicaSet, deadline estimator, and RNG streams, so jobs ∈ {1, 4} must
  // merge to bit-identical statistics and identical replica-lifecycle
  // totals — parallelism may not leak into the hedge/cancel bookkeeping.
  std::vector<stats::MeanCI> merged;
  std::vector<std::uint64_t> lifecycle_totals;
  for (const std::size_t jobs : {1u, 4u}) {
    const TrialRunner runner({jobs, 4242});
    const auto parts =
        runner.run(6, [](std::uint64_t, std::uint64_t seed) {
          cluster::EndToEndConfig cfg;
          cfg.system.servers = 2;
          cfg.system.total_key_rate = 16'000.0;
          cfg.system.keys_per_request = 2;
          cfg.system.service_rate = 20'000.0;  // rho 0.4: hedges do fire
          cfg.system.miss_ratio = 0.05;
          cfg.redundancy = cluster::RedundancyPolicy::hedged(2);
          cfg.common.warmup_time = 0.05;
          cfg.common.measure_time = 0.3;
          cfg.common.seed = seed;
          const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();
          stats::Welford w;
          for (const double x : r.total_samples) w.add(x);
          return std::make_pair(w, r.hedges_fired + r.replicas_cancelled);
        });
    stats::Welford all;
    std::uint64_t lifecycle = 0;
    for (const auto& [w, c] : parts) {
      all.merge(w);
      lifecycle += c;
    }
    merged.push_back(stats::mean_ci(all));
    lifecycle_totals.push_back(lifecycle);
  }
  EXPECT_GT(lifecycle_totals[0], 0u);
  EXPECT_EQ(lifecycle_totals[0], lifecycle_totals[1]);
  EXPECT_TRUE(same_bits(merged[0].mean, merged[1].mean));
  EXPECT_TRUE(same_bits(merged[0].halfwidth, merged[1].halfwidth));
  EXPECT_EQ(merged[0].count, merged[1].count);
}

TEST(TrialRunner, WelfordMergeOrderIsDeterministic) {
  // merge_welford folds left-to-right: same parts, same result, every time.
  std::vector<stats::Welford> parts;
  for (std::uint64_t i = 0; i < 16; ++i) {
    parts.push_back(sample_trial(trial_seed(5, i), 200));
  }
  const stats::Welford a = stats::merge_welford(parts);
  const stats::Welford b = stats::merge_welford(parts);
  EXPECT_TRUE(same_bits(a.mean(), b.mean()));
  EXPECT_TRUE(same_bits(a.variance(), b.variance()));
  EXPECT_EQ(a.count(), 16u * 200u);
}

}  // namespace
}  // namespace mclat::exec
