// Lifecycle and stress tests for exec::ThreadPool: shutdown semantics,
// exception propagation through futures, and edge cases (zero tasks, more
// workers than work, concurrent submitters).
#include "exec/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::exec {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int want = 0;
  for (int i = 0; i < 100; ++i) want += i * i;
  EXPECT_EQ(sum, want);
}

TEST(ThreadPool, ZeroTasksShutsDownCleanly) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  pool.shutdown();  // nothing ever submitted
  EXPECT_TRUE(pool.stopped());
}

TEST(ThreadPool, DestructorAloneIsACleanShutdown) {
  // Purely scoping the pool must join the workers without deadlock.
  { ThreadPool pool(2); }
  SUCCEED();
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&ran] { ++ran; }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 50);
  for (auto& f : futures) f.get();  // all fulfilled, none broken
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ZeroWorkersIsInvalid) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW((void)bad.get(), std::runtime_error);
  // A throwing sibling must not poison the pool.
  EXPECT_EQ(good.get(), 7);
  EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, ManyWorkersFewTasks) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, ConcurrentSubmittersAreSafe) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &ran, &futs = futures[t]] {
      for (int i = 0; i < 200; ++i) {
        futs.push_back(pool.submit([&ran] { ++ran; }));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) f.get();
  }
  EXPECT_EQ(ran.load(), 800);
}

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

}  // namespace
}  // namespace mclat::exec
