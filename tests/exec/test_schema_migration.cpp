// v1 → v2 schema migration guard.
//
// The printf-era (v1) golden files are preserved verbatim under
// tests/golden/v1/; the live goldens at tests/golden/*.json are schema v2
// (obs::JsonWriter). These tests assert the migration changed *shape only*:
// every numeric field shared by both schemas must be exactly equal, v2 must
// carry schema_version=2, and v1 must not — so a regeneration that silently
// moved the statistics cannot hide behind the format change.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "../support/mini_json.h"

#ifndef MCLAT_GOLDEN_DIR
#error "tests/CMakeLists.txt must define MCLAT_GOLDEN_DIR"
#endif

namespace mclat {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void expect_numeric_equality(const std::string& name) {
  const std::string dir(MCLAT_GOLDEN_DIR);
  const auto v1 = testjson::parse(slurp(dir + "/v1/" + name));
  const auto v2 = testjson::parse(slurp(dir + "/" + name));

  EXPECT_FALSE(v1->has("schema_version")) << name;
  ASSERT_TRUE(v2->has("schema_version")) << name;
  EXPECT_EQ(v2->at("schema_version").num(), 2.0) << name;

  for (const char* k : {"seed", "reps", "requests", "n"}) {
    EXPECT_EQ(v1->at(k).num(), v2->at(k).num()) << name << " ." << k;
  }

  ASSERT_EQ(v1->has("theory"), v2->has("theory")) << name;
  if (v1->has("theory")) {
    const auto& t1 = v1->at("theory");
    const auto& t2 = v2->at("theory");
    EXPECT_EQ(t1.at("network_us").num(), t2.at("network_us").num()) << name;
    EXPECT_EQ(t1.at("database_us").num(), t2.at("database_us").num()) << name;
    for (const char* k : {"server_us", "total_us"}) {
      for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(t1.at(k).at(i).num(), t2.at(k).at(i).num())
            << name << " theory." << k << "[" << i << "]";
      }
    }
  }

  const auto& m1 = v1->at("measured");
  const auto& m2 = v2->at("measured");
  for (const char* comp : {"network", "server", "database", "total"}) {
    for (const char* field : {"mean_us", "half_us", "count"}) {
      EXPECT_EQ(m1.at(comp).at(field).num(), m2.at(comp).at(field).num())
          << name << " measured." << comp << "." << field;
    }
  }
}

TEST(SchemaMigration, FacebookSingleRep) {
  expect_numeric_equality("simulate_fb_seed1_rep1.json");
}

TEST(SchemaMigration, FacebookEightReps) {
  expect_numeric_equality("simulate_fb_seed1_rep8.json");
}

TEST(SchemaMigration, SkewedTwoReps) {
  expect_numeric_equality("simulate_skewed_seed1_rep2.json");
}

}  // namespace
}  // namespace mclat
