// Golden-regression harness for the parallel trial-execution engine.
//
// The serial (jobs=1) path is the reference implementation: its output on
// fixed seeds is recorded byte-for-byte in tests/golden/*.json. These tests
// assert (a) the serial path still reproduces the recorded bytes — catching
// any accidental change to seed derivation, merge order, or the simulation
// kernel — and (b) the parallel path (jobs=8) reproduces the serial bytes
// exactly, which is the determinism contract of exec::TrialRunner.
//
// Regenerate the golden files after an *intentional* statistics change:
//   MCLAT_UPDATE_GOLDEN=1 ./build/tests/tests_exec \
//       --gtest_filter='Golden*'
// and commit the diff together with the change that caused it.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/config.h"
#include "tools/simulate_runner.h"

#ifndef MCLAT_GOLDEN_DIR
#error "tests/CMakeLists.txt must define MCLAT_GOLDEN_DIR"
#endif

namespace mclat {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(MCLAT_GOLDEN_DIR) + "/" + name;
}

bool update_requested() {
  const char* env = std::getenv("MCLAT_UPDATE_GOLDEN");
  return env != nullptr && env[0] == '1';
}

// Compares `got` to the recorded golden file, or rewrites the file when
// MCLAT_UPDATE_GOLDEN=1.
void check_golden(const std::string& name, const std::string& got) {
  const std::string path = golden_path(name);
  if (update_requested()) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got << "\n";
    GTEST_SKIP() << "golden file " << name << " rewritten";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run once with MCLAT_UPDATE_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got + "\n")
      << "serial reference output drifted from " << path
      << "; if the change is intentional, regenerate with "
         "MCLAT_UPDATE_GOLDEN=1";
}

// A deliberately small testbed so the golden runs stay fast: the paper's
// Facebook deployment, 0.5 simulated seconds, 2000 assembled requests.
tools::SimulateOptions quick_options(std::uint64_t reps) {
  tools::SimulateOptions opt;
  opt.seconds = 0.5;
  opt.requests = 2'000;
  opt.seed = 1;
  opt.reps = reps;
  opt.jobs = 1;
  return opt;
}

TEST(GoldenRegression, SerialSimulateSingleRep) {
  const core::SystemConfig sys = core::SystemConfig::facebook();
  const tools::SimulateOptions opt = quick_options(1);
  const std::string json =
      tools::simulate_json(sys, opt, tools::run_simulate(sys, opt));
  check_golden("simulate_fb_seed1_rep1.json", json);
}

TEST(GoldenRegression, SerialSimulateEightReps) {
  const core::SystemConfig sys = core::SystemConfig::facebook();
  const tools::SimulateOptions opt = quick_options(8);
  const std::string json =
      tools::simulate_json(sys, opt, tools::run_simulate(sys, opt));
  check_golden("simulate_fb_seed1_rep8.json", json);
}

TEST(GoldenRegression, ParallelPathReproducesSerialBytes) {
  const core::SystemConfig sys = core::SystemConfig::facebook();
  tools::SimulateOptions opt = quick_options(8);
  const std::string serial =
      tools::simulate_json(sys, opt, tools::run_simulate(sys, opt));
  for (const std::size_t jobs : {2u, 8u}) {
    opt.jobs = jobs;
    const std::string parallel =
        tools::simulate_json(sys, opt, tools::run_simulate(sys, opt));
    // simulate_json embeds reps/seed but not jobs, so byte equality here
    // is exactly the thread-count-invariance contract.
    EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
  }
}

TEST(GoldenRegression, RecordersEnabledPreserveGoldenBytes) {
  // Observability must be a pure observer: running the same testbed with a
  // metrics registry attached may not move a single byte of the simulate
  // output, serial or pooled (recording draws no random numbers).
  const core::SystemConfig sys = core::SystemConfig::facebook();
  tools::SimulateOptions opt = quick_options(8);
  obs::Registry serial_reg;
  opt.metrics = &serial_reg;
  const std::string serial =
      tools::simulate_json(sys, opt, tools::run_simulate(sys, opt));
  check_golden("simulate_fb_seed1_rep8.json", serial);
  for (const std::size_t jobs : {2u, 8u}) {
    obs::Registry reg;
    opt.jobs = jobs;
    opt.metrics = &reg;
    const std::string parallel =
        tools::simulate_json(sys, opt, tools::run_simulate(sys, opt));
    EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
  }
}

TEST(GoldenRegression, SkewedLoadSimulate) {
  core::SystemConfig sys = core::SystemConfig::facebook();
  sys.load_shares = {0.4, 0.3, 0.2, 0.1};
  const tools::SimulateOptions opt = quick_options(2);
  const std::string json =
      tools::simulate_json(sys, opt, tools::run_simulate(sys, opt));
  check_golden("simulate_skewed_seed1_rep2.json", json);
}

}  // namespace
}  // namespace mclat
