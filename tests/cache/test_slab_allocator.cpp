#include "cache/slab_allocator.h"

#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::cache {
namespace {

SlabAllocator::Config small_config() {
  SlabAllocator::Config c;
  c.min_chunk = 64;
  c.growth_factor = 2.0;
  c.page_size = 4096;
  c.memory_limit = 64 * 1024;
  return c;
}

TEST(SlabAllocator, ClassLadderGrowsGeometrically) {
  const SlabAllocator a(small_config());
  ASSERT_GE(a.num_classes(), 4u);
  for (std::size_t c = 1; c < a.num_classes() - 1; ++c) {
    EXPECT_GT(a.chunk_size(c), a.chunk_size(c - 1));
  }
  // Final class is one whole page (minus the hidden header).
  EXPECT_GE(a.chunk_size(a.num_classes() - 1), 4096u - 64u);
}

TEST(SlabAllocator, ClassForPicksSmallestFit) {
  const SlabAllocator a(small_config());
  const std::size_t c0 = a.class_for(1);
  const std::size_t c_same = a.class_for(a.chunk_size(c0));
  EXPECT_EQ(c0, c_same);
  const std::size_t c_next = a.class_for(a.chunk_size(c0) + 1);
  EXPECT_EQ(c_next, c0 + 1);
}

TEST(SlabAllocator, AllocateWritesDoNotCollide) {
  SlabAllocator a(small_config());
  std::vector<void*> ptrs;
  for (int i = 0; i < 50; ++i) {
    void* p = a.allocate(100);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  // All distinct and usable for their advertised size.
  const std::set<void*> unique(ptrs.begin(), ptrs.end());
  EXPECT_EQ(unique.size(), ptrs.size());
  const std::size_t cls = a.class_for(100);
  const std::size_t usable = a.chunk_size(cls);
  for (void* p : ptrs) {
    std::memset(p, 0xAB, usable);
  }
}

TEST(SlabAllocator, DeallocateRecyclesChunks) {
  SlabAllocator a(small_config());
  void* p = a.allocate(100);
  ASSERT_NE(p, nullptr);
  const auto used_before = a.stats(a.class_for(100)).used_chunks;
  a.deallocate(p);
  EXPECT_EQ(a.stats(a.class_for(100)).used_chunks, used_before - 1);
  void* p2 = a.allocate(100);
  EXPECT_EQ(p2, p);  // LIFO free list hands the same chunk back
}

TEST(SlabAllocator, MemoryLimitStopsGrowth) {
  SlabAllocator::Config c = small_config();
  c.memory_limit = 2 * c.page_size;
  SlabAllocator a(c);
  std::size_t got = 0;
  while (a.allocate(64) != nullptr) ++got;
  EXPECT_GT(got, 0u);
  EXPECT_LE(a.memory_used(), c.memory_limit);
  // Freeing one chunk makes exactly one allocation possible again.
  // (Grab a fresh pointer to free.)
  SlabAllocator b(c);
  void* p = b.allocate(64);
  while (void* q = b.allocate(64)) (void)q;
  b.deallocate(p);
  EXPECT_NE(b.allocate(64), nullptr);
  EXPECT_EQ(b.allocate(64), nullptr);
}

TEST(SlabAllocator, ClassOfRoundTrips) {
  SlabAllocator a(small_config());
  void* small = a.allocate(10);
  void* big = a.allocate(1000);
  EXPECT_EQ(SlabAllocator::class_of(small), a.class_for(10));
  EXPECT_EQ(SlabAllocator::class_of(big), a.class_for(1000));
}

TEST(SlabAllocator, OversizeItemThrows) {
  SlabAllocator a(small_config());
  EXPECT_THROW((void)a.class_for(a.max_item_size() + 1), std::length_error);
}

TEST(SlabAllocator, DoubleFreeIsCaught) {
  SlabAllocator a(small_config());
  void* p = a.allocate(64);
  a.deallocate(p);
  EXPECT_THROW(a.deallocate(p), std::invalid_argument);
  EXPECT_THROW(a.deallocate(nullptr), std::invalid_argument);
}

TEST(SlabAllocator, StatsAreConsistent) {
  SlabAllocator a(small_config());
  (void)a.allocate(64);
  (void)a.allocate(64);
  const auto st = a.stats(a.class_for(64));
  EXPECT_EQ(st.used_chunks, 2u);
  EXPECT_GE(st.total_chunks, st.used_chunks);
  EXPECT_GE(st.pages, 1u);
}

TEST(SlabAllocator, ValidatesConfig) {
  SlabAllocator::Config c = small_config();
  c.growth_factor = 1.0;
  EXPECT_THROW(SlabAllocator a(c), std::invalid_argument);
  c = small_config();
  c.min_chunk = 4;
  EXPECT_THROW(SlabAllocator a(c), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::cache
