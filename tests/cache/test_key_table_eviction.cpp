// test_key_table_eviction.cpp — the memory-bounded KeyTable's eviction
// contract (DESIGN.md §4j).
//
// Three pinned properties:
//   1. Rebuild determinism: a chunk evicted under budget pressure and
//      re-materialized on the next touch is bit-identical to its first
//      construction — every column (key bytes, hash, server, value size)
//      is a pure function of rank, so eviction can never change what any
//      simulator computes, only when the metadata gets rebuilt.
//   2. No dangling views: the chunk behind the most recently returned
//      view() is pinned — the next access may build and evict, but never
//      the pinned chunk, so the engines' view-then-use pattern is safe
//      under any budget (ASan turns a violation into a hard stop; this
//      file is in the `cache` label joined to the ASan/UBSan tier).
//   3. Budget invariance end-to-end: a real-cache EndToEndSim run with a
//      tight budget is bit-identical to the unbounded run — the goldens
//      cannot move, whatever the budget.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "core/config.h"
#include "hashing/consistent_hash.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "workload/key_table.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"

namespace mclat {
namespace {

/// A captured chunk's worth of views, by value (safe across eviction).
struct RankFacts {
  std::string key;
  std::uint64_t hash = 0;
  std::uint32_t server = 0;
  std::uint32_t value_bytes = 0;
};

RankFacts capture(workload::KeyTable& t, std::uint64_t rank) {
  const workload::KeyTable::View v = t.view(rank);
  return RankFacts{std::string(v.key), v.hash, v.server, v.value_bytes};
}

TEST(KeyTableEviction, EvictedChunkRebuildsBitIdentical) {
  const workload::KeySpace keyspace(64 * 1024, 0.99);
  const hashing::ConsistentHashRing ring(8);
  const workload::ValueSizeModel values(214.476, 0.348238, 1, 4096);
  // ~64 chunks of metadata; budget them down to a handful so a sweep over
  // the keyspace is all eviction, all the time.
  workload::KeyTable bounded(keyspace, ring, &values,
                             workload::KeyTable::Build::kLazy, 256 * 1024);
  workload::KeyTable unbounded(keyspace, ring, &values);

  // First pass: capture every 97th rank from the bounded table while its
  // chunks churn, against the unbounded reference.
  std::vector<std::uint64_t> ranks;
  for (std::uint64_t r = 0; r < keyspace.size(); r += 97) ranks.push_back(r);
  for (const std::uint64_t r : ranks) {
    const RankFacts a = capture(bounded, r);
    const RankFacts b = capture(unbounded, r);
    ASSERT_EQ(a.key, b.key) << "rank " << r;
    ASSERT_EQ(a.hash, b.hash) << "rank " << r;
    ASSERT_EQ(a.server, b.server) << "rank " << r;
    ASSERT_EQ(a.value_bytes, b.value_bytes) << "rank " << r;
  }
  // The sweep must actually have evicted and rebuilt (else this test
  // proves nothing): the budget holds only a few of the ~64 chunks.
  EXPECT_GT(bounded.chunks_built(), bounded.chunks_resident());
  EXPECT_LE(bounded.bytes_resident(), bounded.budget_bytes());

  // Second pass in reverse: every chunk the first pass evicted rebuilds —
  // and must rebuild identically.
  for (auto it = ranks.rbegin(); it != ranks.rend(); ++it) {
    const RankFacts a = capture(bounded, *it);
    const RankFacts b = capture(unbounded, *it);
    ASSERT_EQ(a.key, b.key) << "rank " << *it;
    ASSERT_EQ(a.hash, b.hash) << "rank " << *it;
    ASSERT_EQ(a.server, b.server) << "rank " << *it;
    ASSERT_EQ(a.value_bytes, b.value_bytes) << "rank " << *it;
  }
  EXPECT_GT(bounded.chunk_rebuilds(), 0u);
}

TEST(KeyTableEviction, LastReturnedViewNeverDanglesAcrossEviction) {
  const workload::KeySpace keyspace(32 * 1024, 0.99);
  const hashing::ConsistentHashRing ring(4);
  const workload::ValueSizeModel values(214.476, 0.348238, 1, 4096);
  // Budget ≈ one chunk: every cross-chunk access pair forces a build that
  // wants to evict everything else — including, without the pin, the
  // chunk behind the view still in the caller's hands.
  workload::KeyTable table(keyspace, ring, &values,
                           workload::KeyTable::Build::kLazy, 80 * 1024);

  const std::uint64_t chunk = workload::KeyTable::chunk_size();
  for (std::uint64_t r1 = 0; r1 + chunk < keyspace.size(); r1 += 3 * chunk + 7) {
    const std::uint64_t r2 = r1 + chunk;  // a different chunk, cold by now
    const workload::KeyTable::View v1 = table.view(r1);
    const std::string expected(v1.key);
    const std::uint64_t expected_hash = v1.hash;
    const workload::KeyTable::View v2 = table.view(r2);  // may build + evict
    // v1 must still be readable and correct (ASan catches the dangle even
    // if the bytes happen to linger).
    EXPECT_EQ(std::string(v1.key), expected);
    EXPECT_EQ(v1.hash, expected_hash);
    EXPECT_NE(v2.key.data(), nullptr);
  }
  EXPECT_GT(table.chunks_built(), 2u);
}

TEST(KeyTableEviction, EndToEndRealCacheResultsAreBudgetInvariant) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.keys_per_request = 20;
  // Identity is per-sample, so a modest arrival volume proves as much as a
  // huge one; what matters is steady chunk churn relative to the budget.
  cfg.system.total_key_rate = 60'000;
  cfg.miss_mode = cluster::MissMode::kRealCache;
  cfg.keyspace_size = 20'000;
  cfg.common.seed = 17;
  cfg.common.warmup_time = 0.05;
  cfg.common.measure_time = 0.15;
  cfg.common.cache_bytes_per_server = 512u << 10;

  obs::Registry unbounded_reg;
  cfg.recorder = obs::Recorder(unbounded_reg);
  const cluster::EndToEndResult unbounded = cluster::EndToEndSim(cfg).run();
  // ~3/4 of the ~20 chunks fit: the Zipf tail keeps evicting and
  // rebuilding cold chunks without degenerating into a rebuild per access
  // (a deliberately mis-sized budget is a CPU trade-off, not a bug, but
  // it would make this a slow test for no extra coverage).
  cfg.common.keytable_budget_bytes = 768 * 1024;
  obs::Registry bounded_reg;
  cfg.recorder = obs::Recorder(bounded_reg);
  const cluster::EndToEndResult bounded = cluster::EndToEndSim(cfg).run();

  EXPECT_DOUBLE_EQ(unbounded.total.mean, bounded.total.mean);
  EXPECT_DOUBLE_EQ(unbounded.server.mean, bounded.server.mean);
  EXPECT_DOUBLE_EQ(unbounded.database.mean, bounded.database.mean);
  EXPECT_DOUBLE_EQ(unbounded.measured_miss_ratio,
                   bounded.measured_miss_ratio);
  EXPECT_EQ(unbounded.keys_completed, bounded.keys_completed);
  EXPECT_EQ(unbounded.events_executed, bounded.events_executed);

  // The budget gauges register only on the budgeted run (schema-v2
  // discipline: an unbudgeted run's metrics document is byte-identical to
  // the pre-PR output), and they carry the end-of-run truth.
  EXPECT_EQ(unbounded_reg.gauges().count("keytable.chunks_resident"), 0u);
  EXPECT_EQ(unbounded_reg.gauges().count("cache.index.probe_len"), 0u);
  ASSERT_EQ(bounded_reg.gauges().count("keytable.chunks_resident"), 1u);
  ASSERT_EQ(bounded_reg.gauges().count("keytable.bytes"), 1u);
  ASSERT_EQ(bounded_reg.gauges().count("cache.index.probe_len"), 1u);
  ASSERT_EQ(bounded_reg.gauges().count("cache.index.probe_max"), 1u);
  EXPECT_GE(bounded_reg.gauge("keytable.chunks_resident").value(), 1.0);
  EXPECT_LE(bounded_reg.gauge("keytable.bytes").value(),
            static_cast<double>(cfg.common.keytable_budget_bytes));
  EXPECT_GE(bounded_reg.gauge("cache.index.probe_len").value(), 1.0);
  EXPECT_GE(bounded_reg.gauge("cache.index.probe_max").value(),
            bounded_reg.gauge("cache.index.probe_len").value());
}

}  // namespace
}  // namespace mclat
