#include "cache/lru_store.h"

#include <string>

#include "dist/rng.h"
#include "dist/zipf.h"
#include <gtest/gtest.h>

namespace mclat::cache {
namespace {

SlabAllocator::Config tiny_config() {
  SlabAllocator::Config c;
  c.min_chunk = 96;
  c.growth_factor = 2.0;
  c.page_size = 4096;
  c.memory_limit = 8 * 4096;
  return c;
}

TEST(LruStore, SetGetRoundTrip) {
  LruStore s(tiny_config());
  EXPECT_TRUE(s.set("hello", "world"));
  const auto v = s.get("hello");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "world");
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.stats().hits, 1u);
  EXPECT_EQ(s.stats().misses, 0u);
}

TEST(LruStore, MissOnAbsentKey) {
  LruStore s(tiny_config());
  EXPECT_FALSE(s.get("nope").has_value());
  EXPECT_EQ(s.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(s.stats().miss_ratio(), 1.0);
}

TEST(LruStore, ReplaceUpdatesValue) {
  LruStore s(tiny_config());
  EXPECT_TRUE(s.set("k", "v1"));
  EXPECT_TRUE(s.set("k", "a-considerably-longer-second-value"));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(*s.get("k"), "a-considerably-longer-second-value");
}

TEST(LruStore, RemoveDeletes) {
  LruStore s(tiny_config());
  (void)s.set("k", "v");
  EXPECT_TRUE(s.remove("k"));
  EXPECT_FALSE(s.remove("k"));
  EXPECT_FALSE(s.get("k").has_value());
  EXPECT_EQ(s.stats().deletes, 1u);
}

TEST(LruStore, TtlExpiryIsLazy) {
  LruStore s(tiny_config());
  (void)s.set("k", "v", /*now=*/0.0, /*ttl=*/10.0);
  EXPECT_TRUE(s.get("k", 5.0).has_value());
  EXPECT_FALSE(s.get("k", 10.0).has_value());
  EXPECT_EQ(s.stats().expirations, 1u);
  EXPECT_EQ(s.size(), 0u);
}

TEST(LruStore, ContainsDoesNotPromoteOrCount) {
  LruStore s(tiny_config());
  (void)s.set("k", "v");
  const auto gets_before = s.stats().gets;
  EXPECT_TRUE(s.contains("k"));
  EXPECT_FALSE(s.contains("absent"));
  EXPECT_EQ(s.stats().gets, gets_before);
}

TEST(LruStore, EvictsLeastRecentlyUsedInClass) {
  LruStore s(tiny_config());
  // Fill one class until eviction, touching "key0" to keep it hot.
  const std::string value(32, 'x');
  (void)s.set("key0", value);
  int i = 1;
  while (s.stats().evictions == 0 && i < 10'000) {
    (void)s.get("key0");  // promote to MRU
    (void)s.set("key" + std::to_string(i++), value);
  }
  ASSERT_GT(s.stats().evictions, 0u);
  EXPECT_TRUE(s.contains("key0")) << "hot key must not be evicted";
  EXPECT_FALSE(s.contains("key1")) << "cold key should be the victim";
}

TEST(LruStore, RejectsOversizeItem) {
  LruStore s(tiny_config());
  const std::string huge(100'000, 'x');
  EXPECT_FALSE(s.set("k", huge));
  EXPECT_EQ(s.stats().set_failures, 1u);
}

TEST(LruStore, FlushEmptiesEverything) {
  LruStore s(tiny_config());
  for (int i = 0; i < 20; ++i) {
    (void)s.set("k" + std::to_string(i), "v");
  }
  s.flush();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.get("k0").has_value());
  // Chunks were returned: we can fill again.
  EXPECT_TRUE(s.set("fresh", "v"));
}

TEST(LruStore, HitRatioGrowsWithCacheSizeUnderZipf) {
  // The fundamental cache property the paper's related work optimises:
  // more memory ⇒ higher hit ratio on a skewed workload.
  const auto run = [](std::size_t pages) {
    SlabAllocator::Config c = tiny_config();
    c.memory_limit = pages * c.page_size;
    LruStore s(c);
    dist::Zipf zipf(5'000, 1.0);
    dist::Rng rng(4);
    const std::string value(20, 'v');
    for (int i = 0; i < 60'000; ++i) {
      const std::string key = "key" + std::to_string(zipf.sample(rng));
      if (!s.get(key).has_value()) {
        (void)s.set(key, value);
      }
    }
    return s.stats().hit_ratio();
  };
  const double small = run(4);
  const double large = run(64);
  EXPECT_GT(large, small + 0.05);
  EXPECT_GT(small, 0.1);  // even a tiny cache catches the hot head
}

TEST(LruStore, SetSizedMatchesSetByteForByte) {
  // set_sized(key, n) must be indistinguishable from set(key, n x 'v') —
  // same stored value, same occupancy, same slab-class placement — so the
  // cluster real-cache refill can skip materialising payloads.
  LruStore a(tiny_config());
  LruStore b(tiny_config());
  const std::string value(200, 'v');
  EXPECT_TRUE(a.set("k", value));
  EXPECT_TRUE(b.set_sized("k", value.size()));
  EXPECT_EQ(a.size(), b.size());
  const auto va = a.get("k");
  const auto vb = b.get("k");
  ASSERT_TRUE(va.has_value());
  ASSERT_TRUE(vb.has_value());
  EXPECT_EQ(*va, *vb);
  EXPECT_EQ(vb->size(), 200u);
}

TEST(LruStore, SetSizedEvictionParityWithSet) {
  // Drive two stores through the same overflowing insertion sequence, one
  // with set and one with set_sized: eviction counts and the surviving key
  // set must match exactly.
  LruStore with_set(tiny_config());
  LruStore with_sized(tiny_config());
  for (int i = 0; i < 400; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::size_t n = 20 + static_cast<std::size_t>(i % 7) * 50;
    (void)with_set.set(key, std::string(n, 'v'));
    (void)with_sized.set_sized(key, n);
  }
  EXPECT_GT(with_set.stats().evictions, 0u);
  EXPECT_EQ(with_set.stats().evictions, with_sized.stats().evictions);
  EXPECT_EQ(with_set.size(), with_sized.size());
  for (int i = 0; i < 400; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(with_set.contains(key), with_sized.contains(key)) << key;
  }
}

TEST(LruStore, SetSizedHonorsTtlAndReplace) {
  LruStore s(tiny_config());
  EXPECT_TRUE(s.set_sized("k", 10, /*now=*/0.0, /*ttl=*/5.0));
  EXPECT_TRUE(s.get("k", 1.0).has_value());
  EXPECT_FALSE(s.get("k", 5.0).has_value());
  EXPECT_TRUE(s.set_sized("k", 30));
  EXPECT_EQ(s.get("k")->size(), 30u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(LruStore, SetSizedOversizedValueFails) {
  const SlabAllocator::Config cfg = tiny_config();
  LruStore s(cfg);
  // A value larger than a slab page can never be stored; both entry points
  // must agree on the failure.
  EXPECT_FALSE(s.set_sized("big", cfg.page_size * 2));
  EXPECT_FALSE(s.set("big", std::string(cfg.page_size * 2, 'v')));
  EXPECT_EQ(s.size(), 0u);
}

TEST(LruStore, StatsCountersAreCoherent) {
  LruStore s(tiny_config());
  (void)s.set("a", "1");
  (void)s.get("a");
  (void)s.get("b");
  const StoreStats& st = s.stats();
  EXPECT_EQ(st.gets, 2u);
  EXPECT_EQ(st.hits + st.misses, st.gets);
  EXPECT_NEAR(st.hit_ratio() + st.miss_ratio(), 1.0, 1e-12);
}

TEST(LruStore, PrehashedGetMatchesPlainGet) {
  LruStore s(tiny_config());
  EXPECT_TRUE(s.set("hello", "world"));
  const std::uint64_t h = hashing::fnv1a64("hello");
  const auto v = s.get("hello", h, 0.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "world");
  EXPECT_TRUE(s.contains("hello", h, 0.0));
  // A miss through the prehashed path counts like a plain miss.
  EXPECT_FALSE(s.get("absent", hashing::fnv1a64("absent"), 0.0).has_value());
  EXPECT_EQ(s.stats().hits, 1u);
  EXPECT_EQ(s.stats().misses, 1u);
}

TEST(LruStore, PrehashedGetHonorsExpiryAndPromotion) {
  LruStore s(tiny_config());
  EXPECT_TRUE(s.set_sized_hashed("k", hashing::fnv1a64("k"), 10,
                                 /*now=*/0.0, /*ttl=*/5.0));
  const std::uint64_t h = hashing::fnv1a64("k");
  EXPECT_TRUE(s.get("k", h, 1.0).has_value());
  EXPECT_FALSE(s.get("k", h, 5.0).has_value());   // expired
  EXPECT_FALSE(s.contains("k", h, 5.0));
}

TEST(LruStore, SetSizedHashedMatchesSetSized) {
  LruStore plain(tiny_config());
  LruStore hashed(tiny_config());
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::size_t n = 16 + (static_cast<std::size_t>(i) * 37) % 200;
    const bool a = plain.set_sized(key, n);
    const bool b = hashed.set_sized_hashed(key, hashing::fnv1a64(key), n);
    ASSERT_EQ(a, b) << key;
  }
  EXPECT_EQ(plain.size(), hashed.size());
  EXPECT_EQ(plain.stats().sets, hashed.stats().sets);
  EXPECT_EQ(plain.stats().evictions, hashed.stats().evictions);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(plain.contains(key),
              hashed.contains(key, hashing::fnv1a64(key), 0.0))
        << key;
  }
}

}  // namespace
}  // namespace mclat::cache
