// test_flat_index_twin.cpp — the flat open-addressing index (flat_index.h)
// proven against the pre-rewrite std::unordered_map store, sample for
// sample.
//
// bench/legacy_cache.h preserves the unordered_map LruStore verbatim. Both
// stores are driven through identical randomized operation sequences —
// set / set_sized / set_sized_hashed / get (hashed and unhashed) /
// contains / remove (hashed and unhashed) / TTL expiry / flush — under
// eviction pressure across several slab classes, and every operation's
// return value plus the full StoreStats (including resident_bytes) must
// agree at every step. Any divergence in the index — a lost key after
// backward-shift deletion, an entry dropped mid-incremental-rehash, a
// replace that probed the wrong table — shows up as the first unequal
// sample, not as a statistical anomaly.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/legacy_cache.h"
#include "cache/lru_store.h"
#include "hashing/hashes.h"

namespace mclat {
namespace {

void expect_stats_equal(const cache::StoreStats& a, const cache::StoreStats& b,
                        std::uint64_t step) {
  ASSERT_EQ(a.gets, b.gets) << "step " << step;
  ASSERT_EQ(a.hits, b.hits) << "step " << step;
  ASSERT_EQ(a.misses, b.misses) << "step " << step;
  ASSERT_EQ(a.sets, b.sets) << "step " << step;
  ASSERT_EQ(a.set_failures, b.set_failures) << "step " << step;
  ASSERT_EQ(a.evictions, b.evictions) << "step " << step;
  ASSERT_EQ(a.expirations, b.expirations) << "step " << step;
  ASSERT_EQ(a.deletes, b.deletes) << "step " << step;
  ASSERT_EQ(a.resident_bytes, b.resident_bytes) << "step " << step;
}

/// Key pool spanning several lengths (and so several slab classes once a
/// value is attached): "k<i>" plus i%3-dependent padding.
std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string k = "k" + std::to_string(i);
    k.append((i % 7) * 9, '#');
    keys.push_back(std::move(k));
  }
  return keys;
}

TEST(FlatIndexTwin, RandomizedOpsMatchUnorderedMapStoreSampleForSample) {
  // Small store under heavy churn: ~2000 keys of up to ~1.3 KB items into
  // 256 KiB forces constant eviction, exactly where index erase bugs hide.
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 256 * 1024;
  cfg.page_size = 16 * 1024;
  cfg.growth_factor = 2.0;

  cache::LruStore flat(cfg);
  bench::legacy_cache::LruStore legacy(cfg);

  const std::vector<std::string> keys = make_keys(2000);
  std::mt19937_64 rng(0xf1a7u);
  std::uniform_int_distribution<std::size_t> pick_key(0, keys.size() - 1);
  std::uniform_int_distribution<int> pick_op(0, 99);
  std::uniform_int_distribution<std::size_t> pick_bytes(0, 1200);
  double now = 0.0;

  for (std::uint64_t step = 0; step < 200000; ++step) {
    const std::string& key = keys[pick_key(rng)];
    const std::uint64_t hash = hashing::fnv1a64(key);
    const int op = pick_op(rng);
    now += 0.001;
    if (op < 25) {  // set_sized_hashed, sometimes with a TTL
      const std::size_t bytes = pick_bytes(rng);
      const double ttl = op < 5 ? 0.05 : 0.0;
      ASSERT_EQ(flat.set_sized_hashed(key, hash, bytes, now, ttl),
                legacy.set_sized_hashed(key, hash, bytes, now, ttl))
          << "step " << step;
    } else if (op < 32) {  // set with a real value (value bytes compared)
      const std::string value(pick_bytes(rng), 'x');
      ASSERT_EQ(flat.set(key, value, now), legacy.set(key, value, now))
          << "step " << step;
    } else if (op < 38) {  // set_sized (unhashed entry point)
      const std::size_t bytes = pick_bytes(rng);
      ASSERT_EQ(flat.set_sized(key, bytes, now),
                legacy.set_sized(key, bytes, now))
          << "step " << step;
    } else if (op < 70) {  // prehashed get (the hot path)
      const auto a = flat.get(key, hash, now);
      const auto b = legacy.get(key, hash, now);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a.has_value()) ASSERT_EQ(*a, *b) << "step " << step;
    } else if (op < 78) {  // unhashed get
      const auto a = flat.get(key, now);
      const auto b = legacy.get(key, now);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
    } else if (op < 86) {  // contains, both entry points
      ASSERT_EQ(flat.contains(key, hash, now), legacy.contains(key, hash, now))
          << "step " << step;
      ASSERT_EQ(flat.contains(key, now), legacy.contains(key, now))
          << "step " << step;
    } else if (op < 94) {  // prehashed remove
      ASSERT_EQ(flat.remove(key, hash), legacy.remove(key, hash))
          << "step " << step;
    } else if (op < 99) {  // unhashed remove
      ASSERT_EQ(flat.remove(key), legacy.remove(key)) << "step " << step;
    } else {  // rare flush: both indexes drop to empty together
      flat.flush();
      legacy.flush();
      ASSERT_EQ(flat.size(), 0u) << "step " << step;
    }
    ASSERT_EQ(flat.size(), legacy.size()) << "step " << step;
    expect_stats_equal(flat.stats(), legacy.stats(), step);
  }

  // Final sweep: every key's presence and value agree.
  for (const std::string& key : keys) {
    const std::uint64_t hash = hashing::fnv1a64(key);
    ASSERT_EQ(flat.contains(key, hash, now), legacy.contains(key, hash, now))
        << key;
    const auto a = flat.get(key, hash, now);
    const auto b = legacy.get(key, hash, now);
    ASSERT_EQ(a.has_value(), b.has_value()) << key;
    if (a.has_value()) ASSERT_EQ(*a, *b) << key;
  }
  expect_stats_equal(flat.stats(), legacy.stats(), ~0ull);
}

TEST(FlatIndexTwin, GrowthHeavyInsertOnlyLoadMatches) {
  // Insert-only growth through many incremental-rehash cycles (16 → 64Ki
  // slots), then read everything back: exercises find-during-drain and the
  // migration drain itself without delete churn masking it.
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cfg.page_size = 256 * 1024;
  cfg.growth_factor = 2.0;
  cache::LruStore flat(cfg);
  bench::legacy_cache::LruStore legacy(cfg);

  const std::vector<std::string> keys = make_keys(40000);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t hash = hashing::fnv1a64(keys[i]);
    ASSERT_EQ(flat.set_sized_hashed(keys[i], hash, i % 200, 0.0),
              legacy.set_sized_hashed(keys[i], hash, i % 200, 0.0))
        << i;
  }
  ASSERT_EQ(flat.size(), legacy.size());
  for (const std::string& key : keys) {
    const std::uint64_t hash = hashing::fnv1a64(key);
    ASSERT_EQ(flat.contains(key, hash, 0.0), legacy.contains(key, hash, 0.0))
        << key;
  }
  expect_stats_equal(flat.stats(), legacy.stats(), 0);
  // The probe statistics exist and look sane (mean >= 1 inspection).
  EXPECT_GT(flat.index_stats().lookups, 0u);
  EXPECT_GE(flat.index_stats().mean_probe(), 1.0);
  EXPECT_GE(flat.index_stats().max_probe, 1u);
}

}  // namespace
}  // namespace mclat
