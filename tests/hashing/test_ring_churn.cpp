// Ring-mutation contract behind membership churn (DESIGN.md §4k):
//
//   * remove_server validates before mutating, with field-naming messages,
//     and a dead server's arc share is exactly 0.0;
//   * every mutation bumps epoch() — the version the KeyTable's
//     epoch-validated server column revalidates against;
//   * add_server moves at most ~1/(M+1) (+ vnode slack) of a sampled
//     keyspace, all of it onto the new server;
//   * remove_server moves exactly the victim's keys, each to its ring
//     successor (predicted from the pre-removal points(), not re-derived);
//   * revive_server restores the exact pre-removal arcs (slot reuse);
//   * an epoch-tracked KeyTable remaps lazily, ~1/M of ranks per event.
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hashing/consistent_hash.h"
#include "hashing/hashes.h"
#include "workload/key_table.h"
#include "workload/keyspace.h"

namespace mclat::hashing {
namespace {

std::vector<std::string> test_keys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back("object:" + std::to_string(i));
  return keys;
}

std::string message_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(RingChurn, RemoveServerValidationNamesTheField) {
  ConsistentHashRing ring(4);
  EXPECT_NE(message_of([&] { ring.remove_server(9); })
                .find("ConsistentHashRing::remove_server: server index out of "
                      "range"),
            std::string::npos);
  ring.remove_server(1);
  EXPECT_NE(message_of([&] { ring.remove_server(1); })
                .find("ConsistentHashRing::remove_server: server is not live"),
            std::string::npos);
  ring.remove_server(0);
  ring.remove_server(2);
  EXPECT_NE(message_of([&] { ring.remove_server(3); })
                .find("ConsistentHashRing::remove_server: cannot remove the "
                      "last live server"),
            std::string::npos);
  // Validation happens before mutation: the survivor still owns the ring.
  EXPECT_EQ(ring.server_count(), 1u);
  EXPECT_TRUE(ring.is_alive(3));
}

TEST(RingChurn, ReviveServerValidationNamesTheField) {
  ConsistentHashRing ring(3);
  EXPECT_NE(message_of([&] { ring.revive_server(7); })
                .find("ConsistentHashRing::revive_server: server index out of "
                      "range"),
            std::string::npos);
  EXPECT_NE(message_of([&] { ring.revive_server(1); })
                .find("ConsistentHashRing::revive_server: server is already "
                      "live"),
            std::string::npos);
}

TEST(RingChurn, DeadServerArcShareIsExactlyZero) {
  ConsistentHashRing ring(5, 64);
  ring.remove_server(2);
  const std::vector<double> shares = ring.arc_shares();
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(shares[2], 0.0);  // exact, not approximate
  double sum = 0.0;
  for (const double s : shares) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RingChurn, EveryMutationBumpsTheEpoch) {
  ConsistentHashRing ring(3);
  EXPECT_EQ(ring.epoch(), 0u);
  ring.remove_server(0);
  EXPECT_EQ(ring.epoch(), 1u);
  EXPECT_EQ(ring.add_server(), 3u);
  EXPECT_EQ(ring.epoch(), 2u);
  ring.revive_server(0);
  EXPECT_EQ(ring.epoch(), 3u);
  EXPECT_EQ(ring.total_slots(), 4u);
  EXPECT_EQ(ring.server_count(), 4u);
}

TEST(RingChurn, AddServerMovesAtMostItsFairShare) {
  const std::size_t M = 8;
  ConsistentHashRing ring(M, 160);
  const auto keys = test_keys(40'000);
  std::map<std::string, std::size_t> before;
  for (const auto& k : keys) before[k] = ring.server_for(k);
  const std::size_t fresh = ring.add_server();
  EXPECT_EQ(fresh, M);
  int moved = 0;
  for (const auto& k : keys) {
    const std::size_t now = ring.server_for(k);
    if (now != before[k]) {
      EXPECT_EQ(now, fresh) << "keys may only move to the joined server";
      ++moved;
    }
  }
  const double fraction = static_cast<double>(moved) / keys.size();
  // Ideal is 1/(M+1); 160 vnodes keep the realised share within ~0.05.
  EXPECT_LT(fraction, 1.0 / (M + 1) + 0.05);
  EXPECT_GT(fraction, 0.02);  // and the new server is not starved
}

TEST(RingChurn, RemovedKeysGoToTheRingSuccessor) {
  ConsistentHashRing ring(6, 160);
  const std::size_t victim = 3;
  // Predict each key's post-removal owner from the *pre-removal* ring: the
  // first point clockwise from the key's hash whose server is not the
  // victim (the ring successor).
  const std::vector<ConsistentHashRing::Point> pts = ring.points();
  const auto keys = test_keys(30'000);
  std::map<std::string, std::size_t> before;
  std::map<std::string, std::size_t> successor;
  for (const auto& k : keys) {
    before[k] = ring.server_for(k);
    const std::uint64_t h = mix64(fnv1a64(k));
    std::size_t idx = pts.size();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (pts[i].hash >= h) {
        idx = i;
        break;
      }
    }
    for (std::size_t step = 0; step < pts.size(); ++step) {
      const auto& p = pts[(idx + step) % pts.size()];
      if (p.server != victim) {
        successor[k] = p.server;
        break;
      }
    }
  }
  ring.remove_server(victim);
  int moved = 0;
  for (const auto& k : keys) {
    const std::size_t now = ring.server_for(k);
    if (before[k] == victim) {
      EXPECT_EQ(now, successor[k]) << "victim key must land on its successor";
      ++moved;
    } else {
      EXPECT_EQ(now, before[k])
          << "keys between live servers must not move";
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(RingChurn, ReviveRestoresTheExactArcs) {
  ConsistentHashRing ring(5, 96);
  const std::vector<double> original = ring.arc_shares();
  const auto keys = test_keys(5'000);
  std::map<std::string, std::size_t> before;
  for (const auto& k : keys) before[k] = ring.server_for(k);
  ring.remove_server(4);
  ring.revive_server(4);
  const std::vector<double> restored = ring.arc_shares();
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t j = 0; j < original.size(); ++j) {
    EXPECT_EQ(restored[j], original[j]) << "server " << j;
  }
  for (const auto& k : keys) EXPECT_EQ(ring.server_for(k), before[k]);
}

TEST(RingChurn, EpochTrackedKeyTableRemapsIncrementally) {
  // The workload-layer half of the contract: an epoch-tracked KeyTable
  // revalidates chunks lazily against mapper.epoch() and remaps in place —
  // no rebuild, counting exactly the ranks whose server changed.
  const workload::KeySpace keyspace(4'096, 0.9);
  ConsistentHashRing ring(8, 160);
  workload::KeyTable table(keyspace, ring, nullptr,
                           workload::KeyTable::Build::kLazy, 0);
  table.track_epochs();
  const std::uint64_t n = keyspace.size();
  std::vector<std::uint32_t> before(n);
  for (std::uint64_t r = 0; r < n; ++r) before[r] = table.server(r);
  EXPECT_EQ(table.ranks_remapped(), 0u);

  ring.remove_server(5);
  std::uint64_t moved = 0;
  std::string key;
  for (std::uint64_t r = 0; r < n; ++r) {
    const std::uint32_t now = table.server(r);
    keyspace.key_for_rank(r, key);
    EXPECT_EQ(now, ring.server_for(key)) << "rank " << r;
    if (now != before[r]) {
      EXPECT_EQ(before[r], 5u) << "only the victim's ranks may move";
      ++moved;
    }
  }
  EXPECT_EQ(table.ranks_remapped(), moved);
  EXPECT_GT(moved, 0u);
  // ~1/8 of ranks lived on the victim; remapping is incremental, never a
  // full rebuild, so the count stays near that fair share.
  EXPECT_LT(static_cast<double>(moved) / static_cast<double>(n), 0.25);

  // A second event invalidates chunks again; reads stay epoch-consistent.
  const std::size_t fresh = ring.add_server();
  for (std::uint64_t r = 0; r < n; ++r) {
    keyspace.key_for_rank(r, key);
    EXPECT_EQ(table.server(r), ring.server_for(key)) << "rank " << r;
  }
  EXPECT_GE(table.chunk_remaps(), 1u);
  EXPECT_TRUE(ring.is_alive(fresh));
}

}  // namespace
}  // namespace mclat::hashing
