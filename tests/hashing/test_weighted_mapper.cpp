#include "hashing/weighted_mapper.h"

#include <string>
#include <vector>

#include "dist/discrete.h"
#include "hashing/key_mapper.h"
#include <gtest/gtest.h>

namespace mclat::hashing {
namespace {

std::vector<int> route_keys(const KeyMapper& m, int n) {
  std::vector<int> hits(m.server_count(), 0);
  for (int i = 0; i < n; ++i) {
    ++hits[m.server_for("user:profile:" + std::to_string(i))];
  }
  return hits;
}

TEST(WeightedMapper, RealisesTargetShares) {
  const WeightedMapper m({0.6, 0.2, 0.1, 0.1});
  const int n = 300'000;
  const auto hits = route_keys(m, n);
  const std::vector<double> want = {0.6, 0.2, 0.1, 0.1};
  for (std::size_t j = 0; j < want.size(); ++j) {
    EXPECT_NEAR(static_cast<double>(hits[j]) / n, want[j], 0.01)
        << "server " << j;
  }
}

TEST(WeightedMapper, IsDeterministicPerKey) {
  const WeightedMapper m({0.3, 0.7});
  for (int i = 0; i < 1000; ++i) {
    const std::string k = "k" + std::to_string(i);
    EXPECT_EQ(m.server_for(k), m.server_for(k));
  }
}

TEST(WeightedMapper, NormalisesWeights) {
  const WeightedMapper a({1.0, 3.0});
  const WeightedMapper b({0.25, 0.75});
  for (int i = 0; i < 2000; ++i) {
    const std::string k = "x" + std::to_string(i);
    EXPECT_EQ(a.server_for(k), b.server_for(k));
  }
}

TEST(WeightedMapper, TargetSharesRoundTrip) {
  const WeightedMapper m({2.0, 3.0, 5.0});
  const auto p = m.target_shares();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 0.2, 1e-12);
  EXPECT_NEAR(p[1], 0.3, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(WeightedMapper, SkewedLoadForFig10) {
  // The Fig. 10 construction: p1 from 0.3 to 0.9, rest uniform.
  for (const double p1 : {0.3, 0.5, 0.75, 0.9}) {
    const WeightedMapper m(dist::skewed_load(4, p1));
    const int n = 200'000;
    const auto hits = route_keys(m, n);
    EXPECT_NEAR(static_cast<double>(hits[0]) / n, p1, 0.012) << "p1=" << p1;
  }
}

TEST(WeightedMapper, ZeroWeightServerNeverChosen) {
  const WeightedMapper m({0.5, 0.0, 0.5});
  const auto hits = route_keys(m, 50'000);
  EXPECT_EQ(hits[1], 0);
}

TEST(WeightedMapper, ValidatesWeights) {
  EXPECT_THROW(WeightedMapper({}), std::invalid_argument);
  EXPECT_THROW(WeightedMapper({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(WeightedMapper({1.0, -1.0}), std::invalid_argument);
}

TEST(ModuloMapper, UniformAndDeterministic) {
  const ModuloMapper m(8);
  EXPECT_EQ(m.server_count(), 8u);
  const int n = 160'000;
  const auto hits = route_keys(m, n);
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / n, 0.125, 0.01);
  }
  EXPECT_EQ(m.server_for("same"), m.server_for("same"));
}

TEST(ModuloMapper, RejectsZeroServers) {
  EXPECT_THROW(ModuloMapper(0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::hashing
