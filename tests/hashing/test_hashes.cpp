#include "hashing/hashes.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::hashing {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Canonical FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, IsConstexpr) {
  static_assert(fnv1a64("abc") != fnv1a64("abd"));
  SUCCEED();
}

TEST(Fnv1a, SensitiveToEveryByte) {
  EXPECT_NE(fnv1a64("key:1"), fnv1a64("key:2"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
  EXPECT_NE(fnv1a64(std::string("a\0b", 3)), fnv1a64(std::string("a\0c", 3)));
}

TEST(Mix64, IsBijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10'000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10'000u);
}

TEST(Mix64, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 1000;
  for (std::uint64_t i = 0; i < trials; ++i) {
    const std::uint64_t a = mix64(i);
    const std::uint64_t b = mix64(i ^ 1ull);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(ToUnitInterval, InRangeAndUniformish) {
  double sum = 0.0;
  const int n = 100'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double u = to_unit_interval(mix64(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(HashCombine, OrderSensitive) {
  const std::uint64_t ab = hash_combine(hash_combine(0, 1), 2);
  const std::uint64_t ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Fnv1a, UniformBucketsOnRealKeys) {
  // Hashing "key:<i>" into 16 buckets should be near-uniform — the property
  // the whole key→server mapping relies on.
  std::vector<int> buckets(16, 0);
  const int n = 160'000;
  for (int i = 0; i < n; ++i) {
    ++buckets[fnv1a64("key:" + std::to_string(i)) % 16];
  }
  for (const int c : buckets) {
    EXPECT_NEAR(static_cast<double>(c), n / 16.0, 0.05 * n / 16.0);
  }
}

}  // namespace
}  // namespace mclat::hashing
