#include "hashing/consistent_hash.h"

#include <map>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::hashing {
namespace {

std::vector<std::string> test_keys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back("object:" + std::to_string(i));
  return keys;
}

TEST(ConsistentHashRing, IsDeterministic) {
  const ConsistentHashRing r1(4);
  const ConsistentHashRing r2(4);
  for (const auto& k : test_keys(1000)) {
    EXPECT_EQ(r1.server_for(k), r2.server_for(k));
  }
}

TEST(ConsistentHashRing, CoversAllServers) {
  const ConsistentHashRing ring(8, 160);
  std::vector<int> hits(8, 0);
  for (const auto& k : test_keys(20'000)) ++hits[ring.server_for(k)];
  for (const int h : hits) EXPECT_GT(h, 0);
}

TEST(ConsistentHashRing, LoadRoughlyBalancedWithManyVnodes) {
  const ConsistentHashRing ring(4, 500);
  std::vector<int> hits(4, 0);
  const int n = 100'000;
  for (const auto& k : test_keys(n)) ++hits[ring.server_for(k)];
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / n, 0.25, 0.05);
  }
}

TEST(ConsistentHashRing, FewVnodesMeansVisibleImbalance) {
  // This is the imbalance phenomenon §2.1 describes: with few ring points
  // the realised {p_j} deviates noticeably from uniform.
  const ConsistentHashRing ring(4, 2);
  const auto shares = ring.arc_shares();
  double spread = 0.0;
  for (const double s : shares) spread = std::max(spread, std::abs(s - 0.25));
  EXPECT_GT(spread, 0.05);
}

TEST(ConsistentHashRing, ArcSharesSumToOne) {
  const ConsistentHashRing ring(5, 64);
  const auto shares = ring.arc_shares();
  EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), 1.0, 1e-9);
}

TEST(ConsistentHashRing, ArcSharesPredictKeyShares) {
  const ConsistentHashRing ring(4, 100);
  const auto arcs = ring.arc_shares();
  std::vector<int> hits(4, 0);
  const int n = 200'000;
  for (const auto& k : test_keys(n)) ++hits[ring.server_for(k)];
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(static_cast<double>(hits[j]) / n, arcs[j], 0.02)
        << "server " << j;
  }
}

TEST(ConsistentHashRing, RemovalOnlyMovesVictimsKeys) {
  ConsistentHashRing ring(4, 160);
  const auto keys = test_keys(20'000);
  std::map<std::string, std::size_t> before;
  for (const auto& k : keys) before[k] = ring.server_for(k);
  ring.remove_server(2);
  int moved_from_others = 0;
  for (const auto& k : keys) {
    const std::size_t now = ring.server_for(k);
    EXPECT_NE(now, 2u);
    if (before[k] != 2 && now != before[k]) ++moved_from_others;
  }
  EXPECT_EQ(moved_from_others, 0)
      << "keys not owned by the removed server must stay put";
}

TEST(ConsistentHashRing, AddServerMovesBoundedFraction) {
  ConsistentHashRing ring(4, 160);
  const auto keys = test_keys(30'000);
  std::map<std::string, std::size_t> before;
  for (const auto& k : keys) before[k] = ring.server_for(k);
  ring.add_server();
  int moved = 0;
  for (const auto& k : keys) {
    const std::size_t now = ring.server_for(k);
    if (now != before[k]) {
      EXPECT_EQ(now, 4u) << "keys may only move to the new server";
      ++moved;
    }
  }
  // Ideal movement is 1/5 of keys; allow generous slack for vnode variance.
  EXPECT_NEAR(static_cast<double>(moved) / keys.size(), 0.2, 0.08);
}

TEST(ConsistentHashRing, ValidatesArguments) {
  EXPECT_THROW(ConsistentHashRing(0), std::invalid_argument);
  EXPECT_THROW(ConsistentHashRing(2, 0), std::invalid_argument);
  ConsistentHashRing ring(2);
  EXPECT_THROW(ring.remove_server(7), std::invalid_argument);
  ring.remove_server(0);
  EXPECT_THROW(ring.remove_server(0), std::invalid_argument);  // already gone
}

}  // namespace
}  // namespace mclat::hashing
