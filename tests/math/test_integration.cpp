// Tests for adaptive Simpson, semi-infinite integration and Gauss–Laguerre
// against integrals with known closed forms.
#include "math/integration.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mclat::math {
namespace {

TEST(AdaptiveSimpson, IntegratesPolynomialExactly) {
  // Simpson is exact on cubics.
  const auto f = [](double x) { return 3.0 * x * x * x - x + 2.0; };
  const double got = adaptive_simpson(f, 0.0, 2.0);
  const double want = 3.0 / 4.0 * 16.0 - 2.0 + 4.0;  // 12 - 2 + 4 = 14
  EXPECT_NEAR(got, want, 1e-12);
}

TEST(AdaptiveSimpson, IntegratesSine) {
  const double got = adaptive_simpson([](double x) { return std::sin(x); },
                                      0.0, M_PI);
  EXPECT_NEAR(got, 2.0, 1e-10);
}

TEST(AdaptiveSimpson, HandlesEmptyInterval) {
  EXPECT_EQ(adaptive_simpson([](double) { return 1.0; }, 1.0, 1.0), 0.0);
}

TEST(AdaptiveSimpson, RejectsReversedInterval) {
  EXPECT_THROW((void)adaptive_simpson([](double) { return 1.0; }, 2.0, 1.0),
               std::invalid_argument);
}

TEST(AdaptiveSimpson, ResolvesNarrowSpike) {
  // Gaussian spike of width 1e-3 centred at 0.5; integral over [0,1] ≈ 1.
  const double s = 1e-3;
  const auto f = [s](double x) {
    const double z = (x - 0.5) / s;
    return std::exp(-0.5 * z * z) / (s * std::sqrt(2.0 * M_PI));
  };
  EXPECT_NEAR(adaptive_simpson(f, 0.0, 1.0), 1.0, 1e-6);
}

TEST(SemiInfinite, ExponentialIntegral) {
  // ∫₀^∞ e^{-3t} dt = 1/3.
  const double got = integrate_semi_infinite(
      [](double t) { return std::exp(-3.0 * t); }, 0.0);
  EXPECT_NEAR(got, 1.0 / 3.0, 1e-9);
}

TEST(SemiInfinite, GammaIntegral) {
  // ∫₀^∞ t² e^{-t} dt = Γ(3) = 2.
  const double got = integrate_semi_infinite(
      [](double t) { return t * t * std::exp(-t); }, 0.0);
  EXPECT_NEAR(got, 2.0, 1e-8);
}

TEST(SemiInfinite, ShiftedLowerLimit) {
  // ∫₁^∞ e^{-t} dt = e^{-1}.
  const double got = integrate_semi_infinite(
      [](double t) { return std::exp(-t); }, 1.0);
  EXPECT_NEAR(got, std::exp(-1.0), 1e-9);
}

TEST(SemiInfinite, VeryFastDecay) {
  // ∫₀^∞ e^{-10⁶ t} dt = 1e-6 — probes the width-shrinking first phase.
  const double got = integrate_semi_infinite(
      [](double t) { return std::exp(-1e6 * t); }, 0.0);
  EXPECT_NEAR(got, 1e-6, 1e-12);
}

TEST(SemiInfinite, HeavyTailTimesExponential) {
  // ∫₀^∞ e^{-t} (1+t)^{-2} dt — the Laplace-transform-of-Pareto shape; the
  // reference value comes from the exponential-integral identity
  // ∫₀^∞ e^{-t}/(1+t)² dt = 1 - e·E₁(1) with E₁(1) ≈ 0.21938393439552026.
  const double got = integrate_semi_infinite(
      [](double t) { return std::exp(-t) / ((1.0 + t) * (1.0 + t)); }, 0.0);
  const double want = 1.0 - std::exp(1.0) * 0.21938393439552026;
  EXPECT_NEAR(got, want, 1e-8);
}

TEST(GaussLaguerre, IntegratesPolynomialsExactly) {
  // An n-point rule is exact for polynomials up to degree 2n-1.
  const GaussLaguerre rule(8);
  // ∫₀^∞ e^{-x} x³ dx = 3! = 6.
  EXPECT_NEAR(rule.integrate([](double x) { return x * x * x; }), 6.0, 1e-9);
  // ∫₀^∞ e^{-x} dx = 1.
  EXPECT_NEAR(rule.integrate([](double) { return 1.0; }), 1.0, 1e-12);
}

TEST(GaussLaguerre, WeightsSumToOne) {
  const GaussLaguerre rule(32);
  double sum = 0.0;
  for (const double w : rule.weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(GaussLaguerre, NodesAreSortedAndPositive) {
  const GaussLaguerre rule(16);
  double prev = 0.0;
  for (const double x : rule.nodes()) {
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(GaussLaguerre, LaplaceOfExponentialPdf) {
  // L{2e^{-2t}}(s) = 2/(2+s).
  const GaussLaguerre rule(48);
  const auto pdf = [](double t) { return 2.0 * std::exp(-2.0 * t); };
  for (const double s : {0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(rule.laplace(pdf, s), 2.0 / (2.0 + s), 1e-6) << "s=" << s;
  }
}

TEST(GaussLaguerre, RejectsTinyOrder) {
  EXPECT_THROW(GaussLaguerre(1), std::invalid_argument);
}

TEST(GaussLaguerre, AgreesWithPanelIntegratorOnGpTransform) {
  // Cross-check the two independent integrators on a Generalized-Pareto
  // Laplace transform (the δ-solver's actual workload).
  const double xi = 0.3;
  const double sigma = (1.0 - xi) / 50.0;
  const auto pdf = [xi, sigma](double t) {
    return std::pow(1.0 + xi * t / sigma, -(1.0 / xi + 1.0)) / sigma;
  };
  const double s = 40.0;
  const double panel = integrate_semi_infinite(
      [&](double t) { return std::exp(-s * t) * pdf(t); }, 0.0);
  const double gl = GaussLaguerre(64).laplace(pdf, s);
  EXPECT_NEAR(panel, gl, 5e-5);
}

}  // namespace
}  // namespace mclat::math
