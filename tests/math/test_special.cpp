// Tests for the special functions: normal CDF/quantile, incomplete gamma,
// Student-t critical values.
#include "math/special.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mclat::math {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-12);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-10);
  EXPECT_NEAR(normal_quantile(1e-10), -6.361340902404056, 1e-6);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p = 0.01; p < 1.0; p += 0.007) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, RejectsOutOfDomain) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(-0.5), std::invalid_argument);
}

TEST(GammaP, IntegerShapeMatchesErlangSeries) {
  // P(k, x) = 1 - e^{-x} Σ_{i<k} x^i/i! for integer k.
  const auto erlang_cdf = [](int k, double x) {
    double term = 1.0;
    double sum = 1.0;
    for (int i = 1; i < k; ++i) {
      term *= x / i;
      sum += term;
    }
    return 1.0 - std::exp(-x) * sum;
  };
  for (const int k : {1, 2, 5, 10}) {
    for (const double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(gamma_p(k, x), erlang_cdf(k, x), 1e-12)
          << "k=" << k << " x=" << x;
    }
  }
}

TEST(GammaP, HalfShapeIsErf) {
  // P(1/2, x) = erf(√x).
  for (const double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(GammaP, BoundaryAndComplement) {
  EXPECT_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_EQ(gamma_q(3.0, 0.0), 1.0);
  for (const double a : {0.5, 2.0, 7.5}) {
    for (const double x : {0.3, 2.0, 9.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(GammaP, RejectsBadArguments) {
  EXPECT_THROW((void)gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(StudentT, LargeDfApproachesNormal) {
  EXPECT_NEAR(student_t_critical(1e6, 0.95), 1.959963984540054, 1e-4);
}

TEST(StudentT, TabulatedValues) {
  // Standard table values for two-sided 95 %.
  EXPECT_NEAR(student_t_critical(10.0, 0.95), 2.228, 0.012);
  EXPECT_NEAR(student_t_critical(30.0, 0.95), 2.042, 0.005);
  EXPECT_NEAR(student_t_critical(100.0, 0.95), 1.984, 0.002);
}

TEST(StudentT, WiderForSmallSamples) {
  EXPECT_GT(student_t_critical(5.0, 0.95), student_t_critical(50.0, 0.95));
  EXPECT_GT(student_t_critical(50.0, 0.99), student_t_critical(50.0, 0.95));
}

TEST(StudentT, RejectsBadArguments) {
  EXPECT_THROW((void)student_t_critical(0.0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)student_t_critical(10.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mclat::math
