// Tests for bisection, Brent and fixed-point iteration.
#include "math/roots.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mclat::math {
namespace {

TEST(Bisect, FindsSimpleRoot) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, AcceptsRootAtEndpoint) {
  const auto r = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.x, 0.0);
}

TEST(Bisect, RejectsBadBracket) {
  EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Brent, FindsSimpleRoot) {
  const auto r = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-12);
}

TEST(Brent, ConvergesFasterThanBisection) {
  int calls_brent = 0;
  int calls_bisect = 0;
  const auto fb = [&](double x) {
    ++calls_brent;
    return std::exp(x) - 5.0;
  };
  const auto fs = [&](double x) {
    ++calls_bisect;
    return std::exp(x) - 5.0;
  };
  (void)brent(fb, 0.0, 3.0);
  (void)bisect(fs, 0.0, 3.0);
  EXPECT_LT(calls_brent, calls_bisect);
}

TEST(Brent, HandlesNearlyFlatFunction) {
  // f(x) = (x-1)³ is flat at the root; Brent must still land on it.
  const auto r = brent([](double x) { return std::pow(x - 1.0, 3.0); },
                       0.0, 3.0, {.x_tol = 1e-12, .f_tol = 1e-30});
  EXPECT_NEAR(r.x, 1.0, 1e-4);
}

TEST(Brent, RootOfGim1StyleEquation) {
  // δ = L(μ(1-δ)) with Poisson arrivals, rate 0.8, μ = 1 ⇒ δ = 0.8.
  const double lambda = 0.8;
  const auto f = [lambda](double d) {
    return lambda / (lambda + (1.0 - d)) - d;
  };
  const auto r = brent(f, 1e-9, 1.0 - 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.8, 1e-9);
}

TEST(FixedPoint, ConvergesOnContraction) {
  // x = cos(x) is a contraction near the Dottie number.
  const auto r = fixed_point([](double x) { return std::cos(x); }, 0.5);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-9);
}

TEST(FixedPoint, DampingRescuesOscillation) {
  // x = -2x + 3 has fixed point 1 but |g'| = 2: undamped diverges, damped
  // with ω = 0.25 gives map slope 1-0.25*3 = 0.25 — converges.
  const auto g = [](double x) { return -2.0 * x + 3.0; };
  const auto undamped = fixed_point(g, 0.9, 1.0, {.max_iter = 50});
  EXPECT_FALSE(undamped.converged);
  const auto damped = fixed_point(g, 0.9, 0.25);
  EXPECT_TRUE(damped.converged);
  EXPECT_NEAR(damped.x, 1.0, 1e-9);
}

TEST(FixedPoint, RejectsBadDamping) {
  EXPECT_THROW((void)fixed_point([](double x) { return x; }, 0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)fixed_point([](double x) { return x; }, 0.0, 1.5),
               std::invalid_argument);
}

TEST(BracketSignChange, FindsBracket) {
  const auto b = bracket_sign_change(
      [](double x) { return x * x - 2.0; }, 0.0, 2.0, 16);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(b->first, std::sqrt(2.0));
  EXPECT_GE(b->second, std::sqrt(2.0));
}

TEST(BracketSignChange, ReturnsNulloptWithoutCrossing) {
  const auto b = bracket_sign_change(
      [](double x) { return x * x + 1.0; }, -1.0, 1.0, 16);
  EXPECT_FALSE(b.has_value());
}

TEST(BracketSignChange, ValidatesArguments) {
  EXPECT_THROW((void)bracket_sign_change([](double) { return 0.0; }, 1.0, 0.0, 4),
               std::invalid_argument);
  EXPECT_THROW((void)bracket_sign_change([](double) { return 0.0; }, 0.0, 1.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::math
