// Pins the shared deployment-flag layer (tools/deployment_flags.h): the
// Table-3 defaults must be exactly SystemConfig::facebook(), flags must
// override individual fields, and the bench banner must be generated from
// the same constants.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "tools/deployment_flags.h"

namespace mclat {
namespace {

tools::CliArgs make_args(std::vector<std::string> argv_strings) {
  static std::vector<std::string> storage;  // keeps c_str()s alive
  storage = std::move(argv_strings);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("mclat"));
  for (auto& s : storage) argv.push_back(s.data());
  return tools::CliArgs(static_cast<int>(argv.size()), argv.data(), 1);
}

TEST(DeploymentFlags, DefaultsAreExactlyFacebook) {
  tools::CliArgs args = make_args({});
  const core::SystemConfig got = tools::deployment_config_from(args);
  const core::SystemConfig fb = core::SystemConfig::facebook();
  EXPECT_EQ(got.servers, fb.servers);
  EXPECT_DOUBLE_EQ(got.total_key_rate, fb.total_key_rate);
  EXPECT_DOUBLE_EQ(got.concurrency_q, fb.concurrency_q);
  EXPECT_DOUBLE_EQ(got.burst_xi, fb.burst_xi);
  EXPECT_DOUBLE_EQ(got.service_rate, fb.service_rate);
  EXPECT_EQ(got.keys_per_request, fb.keys_per_request);
  EXPECT_DOUBLE_EQ(got.miss_ratio, fb.miss_ratio);
  EXPECT_DOUBLE_EQ(got.db_service_rate, fb.db_service_rate);
  EXPECT_DOUBLE_EQ(got.network_latency, fb.network_latency);
  EXPECT_TRUE(got.load_shares.empty());  // balanced by default
  EXPECT_FALSE(got.db_queueing);
}

TEST(DeploymentFlags, Table3ConstantsMatchFacebookConfig) {
  // The kTable3 literals themselves (not just the parse path) must agree
  // with SystemConfig::facebook(), after unit conversion.
  const core::SystemConfig fb = core::SystemConfig::facebook();
  EXPECT_DOUBLE_EQ(tools::kTable3.servers, static_cast<double>(fb.servers));
  EXPECT_DOUBLE_EQ(tools::kTable3.kps * 1000.0 * tools::kTable3.servers,
                   fb.total_key_rate);
  EXPECT_DOUBLE_EQ(tools::kTable3.q, fb.concurrency_q);
  EXPECT_DOUBLE_EQ(tools::kTable3.xi, fb.burst_xi);
  EXPECT_DOUBLE_EQ(tools::kTable3.mus * 1000.0, fb.service_rate);
  EXPECT_DOUBLE_EQ(tools::kTable3.n,
                   static_cast<double>(fb.keys_per_request));
  EXPECT_DOUBLE_EQ(tools::kTable3.r, fb.miss_ratio);
  EXPECT_DOUBLE_EQ(tools::kTable3.mud * 1000.0, fb.db_service_rate);
  EXPECT_DOUBLE_EQ(tools::kTable3.net_us * 1e-6, fb.network_latency);
}

TEST(DeploymentFlags, FlagsOverrideDefaults) {
  tools::CliArgs args =
      make_args({"--servers", "6", "--kps", "50", "--r", "0.02"});
  const core::SystemConfig got = tools::deployment_config_from(args);
  EXPECT_EQ(got.servers, 6u);
  EXPECT_DOUBLE_EQ(got.total_key_rate, 50.0 * 1000.0 * 6.0);
  EXPECT_DOUBLE_EQ(got.miss_ratio, 0.02);
  // Untouched fields keep Table-3 values.
  EXPECT_DOUBLE_EQ(got.concurrency_q, tools::kTable3.q);
}

TEST(DeploymentFlags, SkewFlagBuildsLoadShares) {
  tools::CliArgs args = make_args({"--p1", "0.4"});
  const core::SystemConfig got = tools::deployment_config_from(args);
  ASSERT_EQ(got.load_shares.size(), got.servers);
  EXPECT_DOUBLE_EQ(got.load_shares.front(), 0.4);
}

TEST(DeploymentFlags, BannerIsGeneratedFromTable3) {
  const std::string b = tools::table3_banner();
  EXPECT_NE(b.find("lambda=62.5Kps"), std::string::npos) << b;
  EXPECT_NE(b.find("q=0.1"), std::string::npos) << b;
  EXPECT_NE(b.find("xi=0.15"), std::string::npos) << b;
  EXPECT_NE(b.find("muS=80Kps"), std::string::npos) << b;
  EXPECT_NE(b.find("N=150"), std::string::npos) << b;
  EXPECT_NE(b.find("r=1%"), std::string::npos) << b;
}

TEST(DeploymentFlags, ShardJobsFlagFlowsIntoCommonConfig) {
  tools::CliArgs args = make_args({"--shard-jobs", "4"});
  cluster::CommonConfig common;
  tools::common_sim_flags_from(args, common);
  EXPECT_EQ(common.shard_jobs, 4u);
}

TEST(DeploymentFlags, ShardJobsDefaultsToTheSerialLoop) {
  tools::CliArgs args = make_args({});
  cluster::CommonConfig common;
  tools::common_sim_flags_from(args, common);
  EXPECT_EQ(common.shard_jobs, 1u);
}

}  // namespace
}  // namespace mclat
