// Unit tests for the CLI argument parser (tools/cli_args.h).
#include "tools/cli_args.h"

#include <vector>

#include <gtest/gtest.h>

namespace mclat::tools {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(CliArgs, ParsesNumbersAndDefaults) {
  Argv a({"prog", "cmd", "--kps", "55.5", "--servers", "6"});
  CliArgs args(a.argc(), a.argv(), 2);
  EXPECT_DOUBLE_EQ(args.number("kps", 62.5, "rate"), 55.5);
  EXPECT_DOUBLE_EQ(args.number("servers", 4, "count"), 6.0);
  EXPECT_DOUBLE_EQ(args.number("absent", 1.25, "missing"), 1.25);
}

TEST(CliArgs, ParsesTextAndFlags) {
  Argv a({"prog", "cmd", "--mode", "fast", "--verbose"});
  CliArgs args(a.argc(), a.argv(), 2);
  EXPECT_EQ(args.text("mode", "slow", "mode"), "fast");
  EXPECT_EQ(args.text("other", "dflt", "other"), "dflt");
  EXPECT_TRUE(args.flag("verbose", "chatty"));
  EXPECT_FALSE(args.flag("quiet", "quiet"));
}

TEST(CliArgs, BareFlagBeforeAnotherFlag) {
  Argv a({"prog", "cmd", "--json", "--kps", "10"});
  CliArgs args(a.argc(), a.argv(), 2);
  EXPECT_TRUE(args.flag("json", "json output"));
  EXPECT_DOUBLE_EQ(args.number("kps", 0.0, "rate"), 10.0);
}

TEST(CliArgs, FlagValueZeroMeansOff) {
  Argv a({"prog", "cmd", "--json", "0"});
  CliArgs args(a.argc(), a.argv(), 2);
  EXPECT_FALSE(args.flag("json", "json output"));
}

TEST(CliArgs, NegativeNumbersParse) {
  // "--x -3" would look like a flag; the parser requires "--x" then a
  // non-flag token, and "-3" does not start with "--", so it works.
  Argv a({"prog", "cmd", "--x", "-3.5"});
  CliArgs args(a.argc(), a.argv(), 2);
  EXPECT_DOUBLE_EQ(args.number("x", 0.0, "x"), -3.5);
}

TEST(CliArgs, CountParsesAndDefaults) {
  Argv a({"prog", "cmd", "--jobs", "8", "--reps", "3"});
  CliArgs args(a.argc(), a.argv(), 2);
  EXPECT_EQ(args.count("jobs", 1, "workers"), 8u);
  EXPECT_EQ(args.count("reps", 1, "replications"), 3u);
  EXPECT_EQ(args.count("absent", 4, "missing"), 4u);
}

TEST(CliArgsDeath, CountRejectsZero) {
  EXPECT_EXIT(
      {
        Argv a({"prog", "cmd", "--jobs", "0"});
        CliArgs args(a.argc(), a.argv(), 2);
        (void)args.count("jobs", 1, "workers");
      },
      ::testing::ExitedWithCode(2), "positive integer");
}

TEST(CliArgsDeath, CountRejectsNegative) {
  EXPECT_EXIT(
      {
        Argv a({"prog", "cmd", "--reps", "-2"});
        CliArgs args(a.argc(), a.argv(), 2);
        (void)args.count("reps", 1, "replications");
      },
      ::testing::ExitedWithCode(2), "positive integer");
}

TEST(CliArgsDeath, CountRejectsGarbage) {
  EXPECT_EXIT(
      {
        Argv a({"prog", "cmd", "--jobs", "many"});
        CliArgs args(a.argc(), a.argv(), 2);
        (void)args.count("jobs", 1, "workers");
      },
      ::testing::ExitedWithCode(2), "positive integer");
}

TEST(CliArgsDeath, CountRejectsFractional) {
  EXPECT_EXIT(
      {
        Argv a({"prog", "cmd", "--jobs", "2.5"});
        CliArgs args(a.argc(), a.argv(), 2);
        (void)args.count("jobs", 1, "workers");
      },
      ::testing::ExitedWithCode(2), "positive integer");
}

TEST(CliArgsDeath, RejectsPositionalArguments) {
  EXPECT_EXIT(
      {
        Argv a({"prog", "cmd", "oops"});
        CliArgs args(a.argc(), a.argv(), 2);
      },
      ::testing::ExitedWithCode(2), "unexpected positional");
}

TEST(CliArgsDeath, RejectsUnknownFlagsAtFinish) {
  EXPECT_EXIT(
      {
        Argv a({"prog", "cmd", "--typo", "1"});
        CliArgs args(a.argc(), a.argv(), 2);
        (void)args.number("kps", 1.0, "rate");
        args.finish("usage");
      },
      ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(CliArgsDeath, HelpPrintsAndExitsZero) {
  EXPECT_EXIT(
      {
        Argv a({"prog", "cmd", "--help"});
        CliArgs args(a.argc(), a.argv(), 2);
        (void)args.number("kps", 1.0, "per-server rate");
        args.finish("usage line");
      },
      ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace mclat::tools
