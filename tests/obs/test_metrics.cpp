// Tests for the obs metrics registry: instrument semantics, deterministic
// merge (the property that keeps --jobs byte-invariance alive with
// observability enabled), and the JSON/CSV exports.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "../support/mini_json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace mclat {
namespace {

TEST(Counter, AddAndMerge) {
  obs::Counter a, b;
  a.add();
  a.add(4);
  b.add(10);
  a.merge(b);
  EXPECT_EQ(a.value(), 15u);
}

TEST(Gauge, MergeIsLastWriteWins) {
  obs::Gauge a, b, unset;
  a.set(1.0);
  b.set(2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
  a.merge(unset);  // merging an unset gauge must not clobber
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
  EXPECT_TRUE(a.is_set());
  EXPECT_FALSE(unset.is_set());
}

TEST(LatencyStat, MomentsMatchDirectAccumulation) {
  obs::LatencyStat s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // P² on a uniform ramp should land near the true quantiles.
  EXPECT_NEAR(s.p50(), 50.5, 3.0);
  EXPECT_NEAR(s.p95(), 95.0, 3.0);
  EXPECT_NEAR(s.p99(), 99.0, 2.0);
}

TEST(LatencyStat, EmptyQuantilesAreNaN) {
  const obs::LatencyStat s;
  EXPECT_TRUE(std::isnan(s.p50()));
  EXPECT_TRUE(std::isnan(s.p99()));
}

TEST(LatencyStat, MergeMomentsAreExact) {
  obs::LatencyStat a, b, whole;
  for (int i = 0; i < 50; ++i) {
    a.add(i * 0.1);
    whole.add(i * 0.1);
  }
  for (int i = 50; i < 200; ++i) {
    b.add(i * 0.1);
    whole.add(i * 0.1);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  // Quantiles after merge are the documented count-weighted approximation:
  // still inside the data range and ordered.
  EXPECT_GE(a.p50(), 0.0);
  EXPECT_LE(a.p99(), 19.9);
  EXPECT_LE(a.p50(), a.p95());
  EXPECT_LE(a.p95(), a.p99());
}

TEST(Registry, LookupCreatesAndIsStable) {
  obs::Registry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a.count").add(2);
  reg.counter("a.count").add(3);
  reg.gauge("g").set(1.5);
  reg.latency("l.us").add(10.0);
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.counter("a.count").value(), 5u);
  EXPECT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.latencies().size(), 1u);
}

TEST(Registry, MergeInTrialOrderIsDeterministic) {
  // Two "trials" recorded independently, merged in index order, must give
  // the same export bytes no matter which thread produced which trial.
  auto make_trial = [](int shift) {
    obs::Registry r;
    for (int i = 0; i < 20; ++i) {
      r.latency("stage.total_us").add(static_cast<double>(i + shift));
    }
    r.counter("sim.keys_completed").add(20);
    return r;
  };
  obs::Registry merged_a;
  merged_a.merge(make_trial(0));
  merged_a.merge(make_trial(100));
  obs::Registry merged_b;
  merged_b.merge(make_trial(0));
  merged_b.merge(make_trial(100));
  EXPECT_EQ(merged_a.to_json(), merged_b.to_json());
  EXPECT_EQ(merged_a.counter("sim.keys_completed").value(), 40u);
  EXPECT_EQ(merged_a.latency("stage.total_us").count(), 40u);
}

TEST(Registry, ToJsonParsesAndCarriesAllSections) {
  obs::Registry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(0.25);
  reg.latency("l_us").add(1.0);
  reg.latency("l_us").add(3.0);
  const auto doc = testjson::parse(reg.to_json());
  EXPECT_EQ(doc->at("schema_version").num(), 2.0);
  const auto& m = doc->at("metrics");
  EXPECT_EQ(m.at("counters").at("c").num(), 7.0);
  EXPECT_DOUBLE_EQ(m.at("gauges").at("g").num(), 0.25);
  const auto& l = m.at("latency").at("l_us");
  EXPECT_EQ(l.at("count").num(), 2.0);
  EXPECT_DOUBLE_EQ(l.at("mean").num(), 2.0);
  EXPECT_DOUBLE_EQ(l.at("min").num(), 1.0);
  EXPECT_DOUBLE_EQ(l.at("max").num(), 3.0);
  EXPECT_TRUE(m.at("latency").at("l_us").has("p99"));
}

TEST(Registry, ToCsvHasHeaderAndOneRowPerInstrument) {
  obs::Registry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(2.0);
  reg.latency("l").add(3.0);
  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("kind,name,count,value,mean,stddev,min,max,p50,p95,p99",
                      0),
            0u)
      << csv;
  int rows = 0;
  for (const char ch : csv) rows += ch == '\n' ? 1 : 0;
  EXPECT_EQ(rows, 4);  // header + counter + gauge + latency
}

TEST(Recorder, NullRecorderIsSafeNoOp) {
  const obs::Recorder rec;  // disabled
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.latency("x"), nullptr);
  EXPECT_EQ(rec.counter("x"), nullptr);
  EXPECT_EQ(rec.gauge("x"), nullptr);
  // Free helpers must tolerate null handles.
  obs::observe(nullptr, 1.0);
  obs::bump(nullptr);
  obs::set_gauge(nullptr, 1.0);
}

TEST(Recorder, EnabledRecorderWritesThrough) {
  obs::Registry reg;
  const obs::Recorder rec(reg);
  EXPECT_TRUE(rec.enabled());
  obs::observe(rec.latency("l.us"), obs::to_us(0.001));
  obs::bump(rec.counter("c"), 2);
  obs::set_gauge(rec.gauge("g"), 0.5);
  EXPECT_EQ(reg.latency("l.us").count(), 1u);
  EXPECT_DOUBLE_EQ(reg.latency("l.us").mean(), 1000.0);
  EXPECT_EQ(reg.counter("c").value(), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.5);
}

}  // namespace
}  // namespace mclat
