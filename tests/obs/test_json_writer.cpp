// Round-trip and byte-level tests for obs::JsonWriter / obs::CsvWriter —
// the single emitter behind every machine-readable output of the repo.
#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "../support/mini_json.h"
#include "obs/json_writer.h"

namespace mclat {
namespace {

TEST(JsonWriter, SimpleObjectBytes) {
  obs::JsonWriter w;
  w.begin_object()
      .field("a", std::uint64_t{1})
      .field("b", "x")
      .field("c", true)
      .end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\",\"c\":true}");
}

TEST(JsonWriter, DocumentStampsSchemaVersionFirst) {
  obs::JsonWriter w;
  w.begin_document().field("k", std::uint64_t{7}).end_object();
  EXPECT_EQ(w.str().rfind("{\"schema_version\":2,", 0), 0u) << w.str();
  const auto doc = testjson::parse(w.str());
  EXPECT_EQ(doc->at("schema_version").num(), obs::kSchemaVersion);
}

TEST(JsonWriter, FixedPrecisionDoubles) {
  obs::JsonWriter w;
  w.begin_object().field("x", 1.5, 3).field("y", 2.0 / 3.0, 6).end_object();
  EXPECT_EQ(w.str(), "{\"x\":1.500,\"y\":0.666667}");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  obs::JsonWriter w;
  w.begin_object()
      .field("nan", std::nan(""), 3)
      .field("inf", INFINITY, 3)
      .field("ninf", -INFINITY, 3)
      .end_object();
  EXPECT_EQ(w.str(), "{\"nan\":null,\"inf\":null,\"ninf\":null}");
  const auto doc = testjson::parse(w.str());
  EXPECT_TRUE(doc->at("nan").is_null());
}

TEST(JsonWriter, EscapesStringsRfc8259) {
  obs::JsonWriter w;
  w.begin_object().field("k\"ey", "a\\b\"c\n\t\x01").end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"a\\\\b\\\"c\\n\\t\\u0001\"}");
  // And the escaping round-trips through a conforming reader.
  const auto doc = testjson::parse(w.str());
  EXPECT_EQ(doc->at("k\"ey").str(), "a\\b\"c\n\t\x01");
}

TEST(JsonWriter, NestedObjectsAndArrays) {
  obs::JsonWriter w;
  w.begin_object()
      .begin_object("o")
      .begin_array("xs")
      .element(1.0, 1)
      .element(2.0, 1)
      .end_array()
      .field("n", std::uint64_t{3})
      .end_object()
      .null_field("z")
      .end_object();
  EXPECT_EQ(w.str(), "{\"o\":{\"xs\":[1.0,2.0],\"n\":3},\"z\":null}");
  const auto doc = testjson::parse(w.str());
  EXPECT_EQ(doc->at("o").at("xs").at(1).num(), 2.0);
}

TEST(JsonWriter, StrThrowsOnUnbalancedDocument) {
  obs::JsonWriter w;
  w.begin_object().begin_object("inner");
  EXPECT_THROW((void)w.str(), std::invalid_argument);
}

TEST(JsonWriter, ParserRejectsTruncatedDocument) {
  EXPECT_THROW((void)testjson::parse("{\"a\":1"), std::runtime_error);
}

TEST(CsvWriter, QuotesOnlyWhenNeeded) {
  obs::CsvWriter w;
  w.cell("plain").cell("a,b").cell("q\"q").cell("l1\nl2").end_row();
  EXPECT_EQ(w.str(), "plain,\"a,b\",\"q\"\"q\",\"l1\nl2\"\n");
}

TEST(CsvWriter, NumericCells) {
  obs::CsvWriter w;
  w.cell(1.25, 2).cell(std::uint64_t{42}).cell(std::nan(""), 2).end_row();
  EXPECT_EQ(w.str(), "1.25,42,\n");
}

}  // namespace
}  // namespace mclat
