// Schema tests for the machine-readable output API (schema v2): the exact
// documents `mclat estimate/tail/simulate --json` and `--metrics` print,
// exercised in-process through the same functions the CLI calls.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "../support/mini_json.h"
#include "core/config.h"
#include "core/theorem1.h"
#include "dist/discrete.h"
#include "obs/metrics.h"
#include "tools/json_output.h"
#include "tools/simulate_runner.h"

namespace mclat {
namespace {

// A quick simulate configuration shared by the registry tests below.
tools::SimulateOptions quick_options() {
  tools::SimulateOptions opt;
  opt.seconds = 0.3;
  opt.requests = 500;
  opt.seed = 7;
  opt.reps = 2;
  opt.jobs = 1;
  return opt;
}

TEST(OutputSchema, EstimateJsonCarriesVersionAndFields) {
  const core::SystemConfig sys = core::SystemConfig::facebook();
  const core::LatencyModel model(sys);
  const auto doc = testjson::parse(tools::estimate_json(model,
                                                        model.estimate()));
  EXPECT_EQ(doc->at("schema_version").num(), 2.0);
  EXPECT_EQ(doc->at("n").num(), 150.0);
  EXPECT_GT(doc->at("network_us").num(), 0.0);
  EXPECT_LE(doc->at("server_us").at("lower").num(),
            doc->at("server_us").at("upper").num());
  EXPECT_LE(doc->at("total_us").at("lower").num(),
            doc->at("total_us").at("upper").num());
  EXPECT_GT(doc->at("utilization").num(), 0.0);
  EXPECT_LT(doc->at("utilization").num(), 1.0);
}

TEST(OutputSchema, EstimateJsonReportsHeaviestServerUnderSkew) {
  // The v1 printf path reported server(0); the human-readable path reported
  // the heaviest server. v2 unifies on heaviest() — under a skewed load the
  // two differ, so pin the JSON to the heaviest server's numbers.
  core::SystemConfig sys = core::SystemConfig::facebook();
  sys.load_shares = {0.1, 0.2, 0.3, 0.4};  // heaviest is server 3, not 0
  const core::LatencyModel model(sys);
  const auto& heavy =
      model.server_stage().server(model.server_stage().heaviest());
  const auto& first = model.server_stage().server(0);
  const auto doc = testjson::parse(tools::estimate_json(model,
                                                        model.estimate()));
  EXPECT_NEAR(doc->at("utilization").num(), heavy.utilization(), 1e-6);
  EXPECT_NEAR(doc->at("delta").num(), heavy.delta(), 1e-6);
  // Sanity: the fix is observable (heaviest ≠ server 0 in this setup).
  ASSERT_NE(model.server_stage().heaviest(), 0u);
  EXPECT_GT(std::abs(heavy.utilization() - first.utilization()), 1e-3);
}

TEST(OutputSchema, TailJsonCarriesVersionAndNetwork) {
  const core::SystemConfig sys = core::SystemConfig::facebook();
  const core::LatencyModel model(sys);
  const core::TailEstimate t = model.tail(sys.keys_per_request, 0.99);
  const auto doc = testjson::parse(tools::tail_json(t));
  EXPECT_EQ(doc->at("schema_version").num(), 2.0);
  EXPECT_DOUBLE_EQ(doc->at("k").num(), 0.99);
  EXPECT_GT(doc->at("network_us").num(), 0.0);  // absent from v1
  EXPECT_LE(doc->at("server_us").at("lower").num(),
            doc->at("server_us").at("upper").num());
}

TEST(OutputSchema, SimulateJsonParsesWithTheoryAndMeasured) {
  const core::SystemConfig sys = core::SystemConfig::facebook();
  const tools::SimulateOptions opt = quick_options();
  const tools::SimulateResult r = tools::run_simulate(sys, opt);
  const auto doc = testjson::parse(tools::simulate_json(sys, opt, r));
  EXPECT_EQ(doc->at("schema_version").num(), 2.0);
  EXPECT_EQ(doc->at("seed").num(), 7.0);
  EXPECT_EQ(doc->at("reps").num(), 2.0);
  ASSERT_TRUE(doc->has("theory"));
  EXPECT_EQ(doc->at("theory").at("server_us").at(0).num() <=
                doc->at("theory").at("server_us").at(1).num(),
            true);
  const auto& m = doc->at("measured");
  for (const char* k : {"network", "server", "database", "total"}) {
    EXPECT_GT(m.at(k).at("mean_us").num(), 0.0) << k;
    EXPECT_EQ(m.at(k).at("count").num(), 1000.0) << k;  // 2 reps × 500
  }
}

TEST(OutputSchema, MetricsRegistryStagesSumConsistently) {
  // Acceptance criterion: the per-stage breakdown must sum consistently
  // with the end-to-end totals. Per request,
  //   T_N + max(T_S) + max(T_D) = T(N) + sync_slack      (exactly),
  // so over any number of requests the means obey
  //   mean(network) + mean(server) + mean(db)
  //     = mean(total) + mean(sync_slack).
  const core::SystemConfig sys = core::SystemConfig::facebook();
  tools::SimulateOptions opt = quick_options();
  obs::Registry reg;
  opt.metrics = &reg;
  const tools::SimulateResult r = tools::run_simulate(sys, opt);

  const auto& net = reg.latency("stage.network_us");
  const auto& server = reg.latency("stage.server_us");
  const auto& db = reg.latency("stage.database_us");
  const auto& total = reg.latency("stage.total_us");
  const auto& slack = reg.latency("request.sync_slack_us");
  ASSERT_EQ(total.count(), opt.requests * opt.reps);
  ASSERT_EQ(slack.count(), total.count());
  const double lhs = net.mean() + server.mean() + db.mean();
  const double rhs = total.mean() + slack.mean();
  EXPECT_NEAR(lhs, rhs, 1e-6 * rhs);
  // Slack is a max-decomposition residue: nonnegative by construction.
  EXPECT_GE(slack.min(), -1e-9);
  // And the registry agrees with the SimulateResult means (same samples).
  EXPECT_NEAR(total.mean(), r.total.mean * 1e6, 1e-6 * total.mean());
  EXPECT_NEAR(server.mean(), r.server.mean * 1e6, 1e-6 * server.mean());
}

TEST(OutputSchema, MetricsJsonSeparatesSections) {
  const core::SystemConfig sys = core::SystemConfig::facebook();
  tools::SimulateOptions opt = quick_options();
  obs::Registry reg;
  opt.metrics = &reg;
  (void)tools::run_simulate(sys, opt);
  const auto doc = testjson::parse(tools::metrics_json(opt, reg));
  EXPECT_EQ(doc->at("schema_version").num(), 2.0);
  EXPECT_EQ(doc->at("jobs").num(), 1.0);
  const auto& m = doc->at("metrics");
  EXPECT_GT(m.at("counters").at("sim.keys_completed").num(), 0.0);
  EXPECT_GT(m.at("counters").at("assembly.keys").num(), 0.0);
  EXPECT_TRUE(m.at("gauges").has("server.0.utilization"));
  EXPECT_TRUE(m.at("gauges").has("exec.jobs"));
  EXPECT_TRUE(m.at("latency").has("server.0.wait_us"));
  EXPECT_GT(m.at("latency").at("exec.trial_wall_us").at("count").num(), 0.0);
}

// Strips "exec.*" rows (wall-clock, exempt from determinism) from a CSV
// export so the rest can be compared byte-for-byte across thread counts.
std::string sim_domain_csv(const obs::Registry& reg) {
  const std::string csv = reg.to_csv();
  std::string out;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    const std::string line = csv.substr(start, end - start);
    if (line.find(",exec.") == std::string::npos) out += line + "\n";
    start = end + 1;
  }
  return out;
}

TEST(OutputSchema, SimDomainMetricsAreJobsInvariant) {
  const core::SystemConfig sys = core::SystemConfig::facebook();
  obs::Registry serial;
  tools::SimulateOptions opt = quick_options();
  opt.reps = 4;
  opt.metrics = &serial;
  (void)tools::run_simulate(sys, opt);
  for (const std::size_t jobs : {2u, 4u}) {
    obs::Registry parallel;
    opt.jobs = jobs;
    opt.metrics = &parallel;
    (void)tools::run_simulate(sys, opt);
    EXPECT_EQ(sim_domain_csv(serial), sim_domain_csv(parallel))
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace mclat
