// Recorder wiring through the Mode-B (EndToEndSim) and Mode-C
// (TraceReplaySim) hot paths: attaching a registry must populate the
// per-stage metrics, agree with the simulator's own statistics, and — the
// null-object contract — leave the simulation results untouched.
#include <string>

#include <gtest/gtest.h>

#include "cluster/end_to_end.h"
#include "cluster/trace_replay.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "workload/request_stream.h"

namespace mclat {
namespace {

cluster::EndToEndConfig quick_b_config() {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * 40'000.0;
  cfg.system.keys_per_request = 50;
  cfg.common.warmup_time = 0.2;
  cfg.common.measure_time = 1.0;
  cfg.common.seed = 21;
  return cfg;
}

TEST(RecorderPaths, EndToEndPopulatesStageMetrics) {
  cluster::EndToEndConfig cfg = quick_b_config();
  obs::Registry reg;
  cfg.recorder = obs::Recorder(reg);
  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();

  // One stage sample per measured request, matching the sim's own count.
  EXPECT_EQ(reg.latency("stage.total_us").count(), r.requests_completed);
  EXPECT_NEAR(reg.latency("stage.total_us").mean(), r.total.mean * 1e6,
              1e-6 * reg.latency("stage.total_us").mean());
  EXPECT_NEAR(reg.latency("stage.server_us").mean(), r.server.mean * 1e6,
              1e-6 * reg.latency("stage.server_us").mean());
  // Sum consistency: net + max_server + max_db = total + slack, exactly.
  const double lhs = reg.latency("stage.network_us").mean() +
                     reg.latency("stage.server_us").mean() +
                     reg.latency("stage.database_us").mean();
  const double rhs = reg.latency("stage.total_us").mean() +
                     reg.latency("request.sync_slack_us").mean();
  EXPECT_NEAR(lhs, rhs, 1e-6 * rhs);
  EXPECT_GE(reg.latency("request.sync_slack_us").min(), -1e-9);
  // Per-server split and utilization gauges exist for all 4 servers.
  for (int j = 0; j < 4; ++j) {
    const std::string p = "server." + std::to_string(j);
    EXPECT_GT(reg.latency(p + ".wait_us").count(), 0u) << p;
    EXPECT_GT(reg.latency(p + ".service_us").count(), 0u) << p;
    EXPECT_TRUE(reg.gauge(p + ".utilization").is_set()) << p;
    EXPECT_NEAR(reg.gauge(p + ".utilization").value(),
                r.server_utilization[static_cast<std::size_t>(j)], 1e-12);
  }
}

TEST(RecorderPaths, EndToEndRecordingIsAPureObserver) {
  const cluster::EndToEndResult plain =
      cluster::EndToEndSim(quick_b_config()).run();
  cluster::EndToEndConfig cfg = quick_b_config();
  obs::Registry reg;
  cfg.recorder = obs::Recorder(reg);
  const cluster::EndToEndResult recorded = cluster::EndToEndSim(cfg).run();
  EXPECT_EQ(plain.requests_completed, recorded.requests_completed);
  EXPECT_DOUBLE_EQ(plain.total.mean, recorded.total.mean);
  EXPECT_DOUBLE_EQ(plain.server.mean, recorded.server.mean);
  EXPECT_DOUBLE_EQ(plain.database.mean, recorded.database.mean);
}

TEST(RecorderPaths, TraceReplayPopulatesStageMetrics) {
  workload::RequestStreamConfig sc;
  sc.request_rate = 2000.0;
  sc.keys_per_request = 20;
  sc.keyspace_size = 50'000;
  sc.zipf_exponent = 0.9;
  workload::RequestStream stream(sc, dist::Rng(3));
  const workload::Trace trace = stream.generate_trace(500);

  cluster::TraceReplayConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.keys_per_request = 20;
  cfg.system.miss_ratio = 0.02;
  cfg.common.seed = 9;
  obs::Registry reg;
  cfg.recorder = obs::Recorder(reg);
  const cluster::TraceReplayResult r =
      cluster::TraceReplaySim(cfg).run(trace, stream.keyspace());

  EXPECT_EQ(reg.latency("stage.total_us").count(), r.requests_completed);
  EXPECT_EQ(reg.counter("sim.keys_completed").value(), r.keys_completed);
  EXPECT_NEAR(reg.latency("stage.total_us").mean(), r.total.mean * 1e6,
              1e-6 * reg.latency("stage.total_us").mean());
  EXPECT_GT(reg.latency("server.0.wait_us").count(), 0u);
  EXPECT_GE(reg.latency("request.sync_slack_us").min(), -1e-9);
  if (reg.counter("db.misses").value() > 0) {
    EXPECT_GT(reg.latency("db.sojourn_us").count(), 0u);
  }
}

}  // namespace
}  // namespace mclat
